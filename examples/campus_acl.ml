(* Campus ACL: a two-tier enterprise network enforcing a ClassBench-style
   five-tuple ACL with DIFANE.

   Generates a 1500-rule ACL, deploys it across a campus topology with
   the distribution switches as authorities, replays Zipf traffic from
   every edge switch through the discrete-event simulator, and reports
   what the operator cares about: TCAM usage, cache hit rates, setup
   delay, and per-rule counter attribution (transparency).

     dune exec examples/campus_acl.exe *)

let printf = Printf.printf

let () =
  let seed = 2026 in
  let rng = Prng.create seed in

  (* Policy: campus-core ACL stand-in. *)
  let policy =
    Policy_gen.acl (Prng.split rng)
      { Policy_gen.default_acl with rules = 1500; chains = 60; chain_depth = 6 }
  in
  printf "Policy: %d rules, dependency depth %d\n" (Classifier.length policy)
    (Classifier.dependency_depth policy);

  (* Topology: 2 cores, distribution pairs, 12 edge switches. *)
  let topo_rng = Prng.split rng in
  let topology = Topology.campus ~rand:(fun () -> Prng.float topo_rng) ~edge_switches:12 () in
  let distribution = [ 2; 3; 4 ] (* the distribution tier hosts authority duties *) in
  let edges = List.init 12 (fun e -> 2 + 3 + e) in
  printf "Topology: %s; authorities at distribution switches %s\n"
    (Format.asprintf "%a" Topology.pp topology)
    (String.concat "," (List.map string_of_int distribution));

  let config =
    {
      Deployment.default_config with
      k = 12;
      cache_capacity = 150 (* a tenth of the policy *);
      cache_idle_timeout = Some 5.0;
      balance = `Volume;
    }
  in
  let d = Deployment.build ~config ~policy ~topology ~authority_ids:distribution () in
  let part = Deployment.partitioner d in
  printf "Partitioning: %d -> %d TCAM entries (%.2fx duplication), max %d per authority\n\n"
    part.Partitioner.source_rules part.Partitioner.total_entries part.Partitioner.duplication
    part.Partitioner.max_entries;

  (* Zipf traffic from every edge switch. *)
  let profile =
    {
      Traffic.default with
      flows = 30_000;
      rate = 20_000.;
      alpha = 1.1;
      distinct_headers = 2_000;
      packets_per_flow_mean = 4.0;
      ingresses = edges;
    }
  in
  let flows = Traffic.generate (Prng.split rng) policy profile in
  let r = Flowsim.run Flowsim.Config.default d flows in

  printf "Traffic: %d flows, %d packets delivered over %.2f s\n" r.Flowsim.offered_flows
    r.Flowsim.delivered_packets r.Flowsim.duration;
  printf "Cache hits: %s of packets\n"
    (Table.fmt_pct
       (float_of_int r.Flowsim.cache_hit_packets /. float_of_int r.Flowsim.delivered_packets));
  (match r.Flowsim.first_packet_delay with
  | Some s ->
      printf "First-packet delay: p50 %.0f us, p99 %.0f us\n" (1e6 *. s.Summary.p50)
        (1e6 *. s.Summary.p99)
  | None -> ());
  if Array.length r.Flowsim.stretches > 0 then begin
    let s = Summary.of_array r.Flowsim.stretches in
    printf "Miss-packet stretch: mean %.2f, p95 %.2f\n" s.Summary.mean s.Summary.p95
  end;

  (* Per-switch cache behaviour. *)
  printf "\nPer-edge-switch caches (capacity %d):\n" config.Deployment.cache_capacity;
  Table.print ~title:"edge switch cache statistics"
    ~header:[ "switch"; "occupancy"; "hit rate"; "evictions"; "expirations" ]
    (List.map
       (fun e ->
         let sw = Deployment.switch d e in
         let st = Tcam.stats (Switch.cache sw) in
         [
           string_of_int e;
           string_of_int (Switch.cache_occupancy sw);
           (let hr = Tcam.hit_rate (Switch.cache sw) in
            if Float.is_nan hr then "-" else Table.fmt_pct hr);
           Int64.to_string st.Tcam.evictions;
           Int64.to_string st.Tcam.expirations;
         ])
       edges);

  (* Transparency: counters aggregate back to original policy rules. *)
  let totals = Hashtbl.create 64 in
  Array.iter
    (fun sw ->
      List.iter
        (fun (origin, n) ->
          Hashtbl.replace totals origin
            (Int64.add n (Option.value ~default:0L (Hashtbl.find_opt totals origin))))
        (Switch.aggregate_counters sw))
    (Deployment.switches d);
  let top =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals []
    |> List.sort (fun (_, a) (_, b) -> Int64.compare b a)
    |> List.filteri (fun i _ -> i < 8)
  in
  Table.print ~title:"hottest policy rules (packets attributed across all switches)"
    ~header:[ "rule id"; "packets"; "rule" ]
    (List.map
       (fun (id, n) ->
         [
           string_of_int id;
           Int64.to_string n;
           (match Classifier.find policy id with
           | Some rl -> Format.asprintf "%a" Rule.pp rl
           | None -> "(partition-clipped)");
         ])
       top)

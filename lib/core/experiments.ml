(* Shared machinery for the experiment drivers. *)

let eval_sets ~seed ~quick =
  if not quick then Policy_gen.evaluation_sets ~seed
  else
    (* Scaled-down twins of the Table-1 rule sets, for the test suite. *)
    let rng = Prng.create seed in
    let mk label description classifier = { Policy_gen.label; classifier; description } in
    [
      mk "acl-small" "campus-edge ACL stand-in (quick)"
        (Policy_gen.acl (Prng.split rng)
           { Policy_gen.default_acl with rules = 60; chains = 8; chain_depth = 3 });
      mk "acl-medium" "campus-core ACL stand-in (quick)"
        (Policy_gen.acl (Prng.split rng)
           { Policy_gen.default_acl with rules = 120; chains = 12; chain_depth = 5 });
      mk "acl-deep" "ClassBench-style deep-chain ACL (quick)"
        (Policy_gen.acl (Prng.split rng)
           { Policy_gen.default_acl with rules = 150; chains = 12; chain_depth = 8 });
      mk "prefix-5k" "ISP VPN stand-in (quick)"
        (Policy_gen.prefix_table (Prng.split rng)
           { Policy_gen.default_prefixes with prefixes = 300 });
      mk "prefix-20k" "backbone stand-in (quick)"
        (Policy_gen.prefix_table (Prng.split rng)
           { Policy_gen.default_prefixes with prefixes = 800 });
    ]

(* A small total policy for the timing experiments: the saturation points
   depend on service rates, not on rule-set size, so a compact table keeps
   data-plane lookups cheap inside the event loop. *)
let timing_policy ~seed =
  Policy_gen.acl (Prng.create seed)
    { Policy_gen.default_acl with rules = 120; chains = 10; chain_depth = 4; egresses = 4 }

(* Distinct single-packet flows at a Poisson rate — the paper's worst-case
   flow-setup workload (every flow misses). *)

(* splitmix64 finaliser: uniform and uncorrelated in every bit, so header
   fields are independent — correlated fields would skew traffic across
   the flowspace partitions. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let distinct_flows ~rng ~schema ~rate ~duration ~ingresses =
  let ingresses = Array.of_list ingresses in
  let arity = Schema.arity schema in
  let rec gen acc now flow_id =
    let now = now +. Prng.exponential rng ~rate in
    if now > duration then List.rev acc
    else
      let header =
        Header.make schema
          (Array.init arity (fun f -> mix64 (Int64.of_int ((flow_id * arity) + f + 1))))
      in
      let flow =
        {
          Traffic.flow_id;
          header;
          ingress = ingresses.(flow_id mod Array.length ingresses);
          start = now;
          packets = 1;
          interval = 1e-4;
        }
      in
      gen (flow :: acc) now (flow_id + 1)
  in
  gen [] 0. 0

(* Prefix-chain depth, specialised for destination-prefix tables: the
   generic O(n^2) dependency analysis is wasteful when every predicate is
   a dst_ip prefix — nesting depth is computable by hashing truncations. *)
let prefix_chain_depth classifier =
  let dst = Schema.index (Classifier.schema classifier) "dst_ip" in
  let table = Hashtbl.create 1024 in
  let prefixes =
    List.filter_map
      (fun (r : Rule.t) ->
        match Range.of_ternary (Pred.field r.pred dst) with
        | Some _ ->
            let f = Pred.field r.pred dst in
            Some (Ternary.value f, Ternary.specified_bits f)
        | None -> None)
      (Classifier.rules classifier)
  in
  List.iter (fun (v, l) -> Hashtbl.replace table (v, l) ()) prefixes;
  let truncate v l = Int64.logand v (Int64.shift_left Int64.minus_one (32 - l)) in
  let depth_of (v, l) =
    let d = ref 1 in
    for l' = 0 to l - 1 do
      if Hashtbl.mem table (truncate v l', l') then incr d
    done;
    !d
  in
  List.fold_left (fun acc p -> max acc (depth_of p)) 0 prefixes

let is_prefix_set label = String.length label >= 6 && String.sub label 0 6 = "prefix"

(* Overlapping pairs in a prefix table = nested-prefix pairs: count each
   rule's proper ancestors by hashing truncations (O(n * width)). *)
let prefix_overlap_count classifier =
  let dst = Schema.index (Classifier.schema classifier) "dst_ip" in
  let table = Hashtbl.create 1024 in
  let prefixes =
    List.map
      (fun (r : Rule.t) ->
        let f = Pred.field r.pred dst in
        (Ternary.value f, Ternary.specified_bits f))
      (Classifier.rules classifier)
  in
  List.iter (fun (v, l) -> Hashtbl.replace table (v, l) ()) prefixes;
  let truncate v l = if l = 0 then 0L else Int64.logand v (Int64.shift_left Int64.minus_one (32 - l)) in
  List.fold_left
    (fun acc (v, l) ->
      let ancestors = ref 0 in
      for l' = 0 to l - 1 do
        if Hashtbl.mem table (truncate v l', l') then incr ancestors
      done;
      acc + !ancestors)
    0 prefixes

(* ------------------------------------------------------------------ *)

module T1 = struct
  type row = {
    label : string;
    description : string;
    rules : int;
    fields : int;
    depth : int;
    overlaps : int;
  }

  let run ?(seed = 42) ?(quick = false) () =
    List.map
      (fun (s : Policy_gen.named) ->
        let c = s.classifier in
        let depth =
          if is_prefix_set s.label then prefix_chain_depth c
          else if Classifier.length c > 2500 then
            (* exact dependency depth is O(n^2) subtractions; the overlap
               chain is a tight upper bound on these generated ACLs *)
            Classifier.overlap_depth c
          else Classifier.dependency_depth c
        in
        let overlaps =
          if is_prefix_set s.label then prefix_overlap_count c
          else Classifier.overlap_count c
        in
        {
          label = s.label;
          description = s.description;
          rules = Classifier.length c;
          fields = Schema.arity (Classifier.schema c);
          depth;
          overlaps;
        })
      (eval_sets ~seed ~quick)

  let print rows =
    Table.print ~title:"Table 1: evaluation rule sets"
      ~header:[ "rule set"; "rules"; "fields"; "dep. depth"; "overlap pairs"; "stands in for" ]
      (List.map
         (fun r ->
           [
             r.label;
             string_of_int r.rules;
             string_of_int r.fields;
             string_of_int r.depth;
             (if r.overlaps < 0 then "-" else string_of_int r.overlaps);
             r.description;
           ])
         rows)
end

(* ------------------------------------------------------------------ *)

let throughput_topology = Topology.star 6 ~latency:100e-6 ()
(* hub 0 = authority candidate pool is spokes 1..4; ingresses at hub+spoke 5 *)

let throughput_deployment ~seed ~authorities () =
  let policy = timing_policy ~seed in
  (* Worst case of the paper's throughput runs: every flow must miss, so
     ingress caches are disabled (a spliced wildcard entry would otherwise
     absorb most "distinct" headers and flatter DIFANE). *)
  let config =
    {
      Deployment.default_config with
      k = max 8 (2 * List.length authorities);
      cache_capacity = 0;
      cache_idle_timeout = Some 1.0;
      balance = `Volume;
    }
  in
  Deployment.build ~config ~policy ~topology:throughput_topology
    ~authority_ids:authorities ()

module F_tput = struct
  type point = { offered_rate : float; difane : Flowsim.result; nox : Flowsim.result }

  let rates ~quick =
    if quick then [ 10e3; 50e3; 200e3 ]
    else [ 10e3; 20e3; 50e3; 100e3; 200e3; 400e3; 800e3; 1200e3 ]

  let duration ~quick = if quick then 0.02 else 0.1

  let run ?(seed = 42) ?(quick = false) () =
    let policy = timing_policy ~seed in
    let schema = Classifier.schema policy in
    let duration = duration ~quick in
    List.map
      (fun rate ->
        let flows =
          distinct_flows ~rng:(Prng.create (seed + int_of_float rate)) ~schema ~rate
            ~duration ~ingresses:[ 5 ]
        in
        let difane =
          Flowsim.run Flowsim.Config.default
            (throughput_deployment ~seed ~authorities:[ 1 ] ())
            flows
        in
        let nox_net =
          (* microflow entries never aggregate, but disable them too so the
             two systems face the identical all-miss workload *)
          Nox.build
            ~config:{ Nox.default_config with cache_capacity = 1 }
            ~policy ~topology:throughput_topology ()
        in
        let nox = Flowsim.run_nox nox_net flows in
        { offered_rate = rate; difane; nox })
      (rates ~quick)

  let print points =
    Table.print ~title:"Fig: flow-setup throughput, DIFANE (1 authority) vs NOX"
      ~header:
        [ "offered (flows/s)"; "DIFANE tput"; "DIFANE drop%"; "NOX tput"; "NOX drop%" ]
      (List.map
         (fun p ->
           let dropf (r : Flowsim.result) =
             if r.offered_flows = 0 then 0.
             else float_of_int r.dropped_flows /. float_of_int r.offered_flows
           in
           [
             Table.fmt_si p.offered_rate;
             Table.fmt_si p.difane.Flowsim.setup_throughput;
             Table.fmt_pct (dropf p.difane);
             Table.fmt_si p.nox.Flowsim.setup_throughput;
             Table.fmt_pct (dropf p.nox);
           ])
         points)
end

module F_scale = struct
  type point = { authority_switches : int; throughput : float; per_switch : float }

  let run ?(seed = 42) ?(quick = false) () =
    let policy = timing_policy ~seed in
    let schema = Classifier.schema policy in
    let timing = Flowsim.default_timing in
    let capacity_per_switch = 1. /. timing.Flowsim.authority_service in
    let duration = if quick then 0.01 else 0.05 in
    List.map
      (fun n_auth ->
        (* offer ~1.5x the aggregate capacity so every configuration
           saturates *)
        let rate = 1.5 *. capacity_per_switch *. float_of_int n_auth in
        let flows =
          distinct_flows ~rng:(Prng.create (seed + n_auth)) ~schema ~rate ~duration
            ~ingresses:[ 5 ]
        in
        let authorities = List.init n_auth (fun i -> i + 1) in
        let d = throughput_deployment ~seed ~authorities () in
        let r = Flowsim.run { Flowsim.Config.default with timing } d flows in
        {
          authority_switches = n_auth;
          throughput = r.Flowsim.setup_throughput;
          per_switch = r.Flowsim.setup_throughput /. float_of_int n_auth;
        })
      (if quick then [ 1; 2 ] else [ 1; 2; 3; 4 ])

  let print points =
    Table.print ~title:"Fig: DIFANE throughput vs number of authority switches"
      ~header:[ "authority switches"; "throughput (flows/s)"; "per switch" ]
      (List.map
         (fun p ->
           [
             string_of_int p.authority_switches;
             Table.fmt_si p.throughput;
             Table.fmt_si p.per_switch;
           ])
         points)
end

module F_delay = struct
  type t = {
    difane_delays : Cdf.t;
    nox_delays : Cdf.t;
    difane_median : float;
    nox_median : float;
    ratio : float;
  }

  let run ?(seed = 42) ?(quick = false) () =
    let policy = timing_policy ~seed in
    let schema = Classifier.schema policy in
    let n_flows_rate = 5e3 (* far below every capacity: pure latency *) in
    let duration = if quick then 0.1 else 1.0 in
    (* a line gives a spread of ingress->authority->egress distances, so
       the CDF has the shape the paper plots rather than a step *)
    let topology = Topology.line 8 ~latency:100e-6 () in
    let ingresses = [ 0; 2; 4; 6; 7 ] in
    let flows ~salt =
      distinct_flows ~rng:(Prng.create (seed + salt)) ~schema ~rate:n_flows_rate ~duration
        ~ingresses
    in
    let config =
      { Deployment.default_config with k = 8; cache_capacity = 0; balance = `Volume }
    in
    let d = Deployment.build ~config ~policy ~topology ~authority_ids:[ 1; 5 ] () in
    let rd = Flowsim.run Flowsim.Config.default d (flows ~salt:1) in
    let nox_net = Nox.build ~policy ~topology () in
    let rn = Flowsim.run_nox nox_net (flows ~salt:1) in
    let difane_delays = Cdf.of_array rd.Flowsim.miss_delays in
    let nox_delays = Cdf.of_array rn.Flowsim.miss_delays in
    let difane_median = Cdf.inverse difane_delays 0.5 in
    let nox_median = Cdf.inverse nox_delays 0.5 in
    { difane_delays; nox_delays; difane_median; nox_median;
      ratio = nox_median /. difane_median }

  let print t =
    Table.print ~title:"Fig: first-packet delay CDF (seconds)"
      ~header:[ "percentile"; "DIFANE"; "NOX" ]
      (List.map
         (fun q ->
           [
             Printf.sprintf "p%.0f" (100. *. q);
             Printf.sprintf "%.6f" (Cdf.inverse t.difane_delays q);
             Printf.sprintf "%.6f" (Cdf.inverse t.nox_delays q);
           ])
         [ 0.1; 0.25; 0.5; 0.75; 0.9; 0.99 ]);
    Printf.printf "median ratio (NOX / DIFANE): %.1fx\n" t.ratio
end

(* ------------------------------------------------------------------ *)

module F_part = struct
  type point = {
    label : string;
    k : int;
    max_entries : int;
    total_entries : int;
    duplication : float;
  }

  let ks ~quick = if quick then [ 1; 4; 16 ] else [ 1; 2; 4; 8; 16; 32; 64; 128; 256 ]

  let run ?(seed = 42) ?(quick = false) () =
    let sets = eval_sets ~seed ~quick in
    List.concat_map
      (fun (s : Policy_gen.named) ->
        List.map
          (fun k ->
            let r = Partitioner.compute s.classifier ~k in
            {
              label = s.label;
              k;
              max_entries = r.Partitioner.max_entries;
              total_entries = r.Partitioner.total_entries;
              duplication = r.Partitioner.duplication;
            })
          (ks ~quick))
      sets

  let print points =
    Table.print ~title:"Fig: TCAM entries vs number of partitions"
      ~header:[ "rule set"; "k"; "max entries/switch"; "total entries"; "duplication" ]
      (List.map
         (fun p ->
           [
             p.label;
             string_of_int p.k;
             string_of_int p.max_entries;
             string_of_int p.total_entries;
             Printf.sprintf "%.2fx" p.duplication;
           ])
         points)
end

module F_miss = struct
  type point = {
    alpha : float;
    cache_size : int;
    wildcard_miss_rate : float;
    wildcard_opt_miss_rate : float;  (** Belady floor for the same keys *)
    microflow_miss_rate : float;
  }

  let run ?(seed = 42) ?(quick = false) () =
    let rng = Prng.create seed in
    let policy =
      Policy_gen.acl (Prng.split rng)
        (if quick then { Policy_gen.default_acl with rules = 150; chains = 15 }
         else { Policy_gen.default_acl with rules = 2000; chains = 70; chain_depth = 6 })
    in
    let alphas = if quick then [ 1.0 ] else [ 0.8; 1.0; 1.2 ] in
    let sizes =
      if quick then [ 8; 32; 128 ] else [ 20; 50; 100; 200; 400; 800; 1600 ]
    in
    List.concat_map
      (fun alpha ->
        let profile =
          {
            Traffic.default with
            flows = (if quick then 2_000 else 50_000);
            distinct_headers = (if quick then 300 else 5_000);
            alpha;
            packets_per_flow_mean = 3.0;
          }
        in
        let flows = Traffic.generate (Prng.split rng) policy profile in
        let stream = Cachesim.packet_stream flows in
        List.map
          (fun (size, (wild : Cachesim.result), (opt : Cachesim.result),
                (micro : Cachesim.result)) ->
            {
              alpha;
              cache_size = size;
              wildcard_miss_rate = wild.Cachesim.miss_rate;
              wildcard_opt_miss_rate = opt.Cachesim.miss_rate;
              microflow_miss_rate = micro.Cachesim.miss_rate;
            })
          (Cachesim.sweep_with_opt policy ~cache_sizes:sizes stream))
      alphas

  let print points =
    Table.print ~title:"Fig: cache miss rate vs cache size (Zipf traffic)"
      ~header:
        [ "alpha"; "cache entries"; "wildcard (DIFANE) miss"; "wildcard OPT floor";
          "microflow miss" ]
      (List.map
         (fun p ->
           [
             Printf.sprintf "%.1f" p.alpha;
             string_of_int p.cache_size;
             Table.fmt_pct p.wildcard_miss_rate;
             Table.fmt_pct p.wildcard_opt_miss_rate;
             Table.fmt_pct p.microflow_miss_rate;
           ])
         points)
end

(* ------------------------------------------------------------------ *)

module F_stretch = struct
  type series = { placement : string; stretch : Cdf.t; mean : float; p95 : float }

  let pick_placement topo rng ~k = function
    | `Random -> Placement.random ~rand:(fun () -> Prng.float rng) topo ~k
    | `Degree -> Placement.by_degree topo ~k
    | `Centroid -> Placement.centroid topo ~k
    | `K_median -> Placement.k_median topo ~k

  let run ?(seed = 42) ?(quick = false) () =
    let rng = Prng.create seed in
    let topo_rng = Prng.split rng in
    let topo =
      Topology.waxman ~rand:(fun () -> Prng.float topo_rng)
        ~nodes:(if quick then 20 else 50) ()
    in
    let policy =
      Policy_gen.prefix_table (Prng.split rng)
        { Policy_gen.default_prefixes with prefixes = (if quick then 200 else 2000) }
    in
    let n_probes = if quick then 500 else 5000 in
    List.map
      (fun (name, strategy, tunnel_to, replication) ->
        let placement_rng = Prng.split rng in
        let authorities = pick_placement topo placement_rng ~k:4 strategy in
        let config =
          {
            Deployment.default_config with
            cache_capacity = 0 (* every packet misses *);
            tunnel_to;
            replication;
          }
        in
        let d = Deployment.build ~config ~policy ~topology:topo ~authority_ids:authorities () in
        let probe_rng = Prng.split rng in
        let headers =
          Traffic.headers_for (Prng.split rng) policy (min n_probes 1000)
        in
        let stretches = ref [] in
        for i = 0 to n_probes - 1 do
          let ingress = Prng.int probe_rng (Topology.nodes topo) in
          let h = headers.(i mod Array.length headers) in
          let o = Deployment.inject d ~now:0. ~ingress h in
          match (o.Deployment.authority, Action.egress o.Deployment.action) with
          | Some via, Some egress when ingress <> egress ->
              stretches := Topology.stretch topo ~src:ingress ~via ~dst:egress :: !stretches
          | _ -> ()
        done;
        let cdf = Cdf.of_list !stretches in
        let s = Summary.of_list !stretches in
        { placement = name; stretch = cdf; mean = s.Summary.mean; p95 = s.Summary.p95 })
      [
        ("random", `Random, `Primary, 1);
        ("top-degree", `Degree, `Primary, 1);
        ("centroid", `Centroid, `Primary, 1);
        ("k-median", `K_median, `Primary, 1);
        (* with every partition replicated on every authority and misses
           tunnelled to the nearest replica, spread-out placement pays *)
        ("k-median+nearest", `K_median, `Nearest_replica, 4);
      ]

  let print series =
    Table.print ~title:"Fig: stretch of miss packets by authority placement"
      ~header:[ "placement"; "p50"; "mean"; "p95"; "max" ]
      (List.map
         (fun s ->
           [
             s.placement;
             Printf.sprintf "%.2f" (Cdf.inverse s.stretch 0.5);
             Printf.sprintf "%.2f" s.mean;
             Printf.sprintf "%.2f" s.p95;
             Printf.sprintf "%.2f" (Cdf.inverse s.stretch 1.0);
           ])
         series)
end

(* ------------------------------------------------------------------ *)

module F_dyn = struct
  type mode = Lazy_expiry | Strict_flush | Targeted

  type point = {
    timeout : float;  (** cache hard timeout (lazy mode's staleness bound) *)
    mode : mode;
    stale_packets : int;
    post_update_packets : int;
    stale_fraction : float;
    stale_window : float;
    invalidated : int;  (** cache entries removed by the update *)
    preserved : int;  (** cache entries that survived it *)
  }

  (* Flip forwarding decisions (all rules, or a selected subset) so stale
     cache entries are observable. *)
  let flipped ?(select = fun _ -> true) policy =
    let rules =
      List.map
        (fun (r : Rule.t) ->
          if not (select r.Rule.id) then r
          else
            let action' =
              match r.action with
              | Action.Forward p -> Action.Forward (p + 1)
              | Action.Count_and_forward p -> Action.Count_and_forward (p + 1)
              | Action.Drop -> Action.Forward 0
              | a -> a
            in
            Rule.with_action r action')
        (Classifier.rules policy)
    in
    Classifier.create (Classifier.schema policy) rules

  let run_one ~seed ~quick ~timeout ~mode =
    let rng = Prng.create seed in
    let policy =
      Policy_gen.acl (Prng.split rng)
        { Policy_gen.default_acl with rules = (if quick then 60 else 200); chains = 10 }
    in
    let topo = Topology.line 6 () in
    let config =
      {
        Deployment.default_config with
        cache_capacity = 4096;
        cache_idle_timeout = None;
        cache_hard_timeout = Some timeout;
      }
    in
    let d = ref (Deployment.build ~config ~policy ~topology:topo ~authority_ids:[ 1; 2 ] ()) in
    let profile =
      {
        Traffic.default with
        flows = (if quick then 2_000 else 20_000);
        rate = 5_000.;
        distinct_headers = 200;
        alpha = 1.0;
        packets_per_flow_mean = 2.0;
      }
    in
    let flows = Traffic.generate (Prng.split rng) policy profile in
    let stream =
      List.concat_map
        (fun (f : Traffic.flow) ->
          List.init f.packets (fun i ->
              (f.start +. (float_of_int i *. f.interval), f.header)))
        flows
      |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
    in
    let t_update =
      (* halfway through the packet stream, so both phases are populated *)
      match List.rev stream with (t_end, _) :: _ -> t_end /. 2. | [] -> 0.
    in
    (* targeted mode updates a quarter of the rules — the realistic
       incremental change where selective invalidation pays *)
    let new_policy =
      match mode with
      | Targeted -> flipped ~select:(fun id -> id mod 4 = 0) policy
      | Lazy_expiry | Strict_flush -> flipped policy
    in
    let updated = ref false in
    let invalidated = ref 0 and preserved = ref 0 in
    let stale = ref 0 and post = ref 0 in
    let last_stale = ref 0. in
    let last_expiry = ref 0. in
    List.iter
      (fun (t, h) ->
        if (not !updated) && t >= t_update then begin
          let old_policy = Deployment.policy !d in
          d :=
            Deployment.update_policy
              ~flush:(mode = Strict_flush)
              !d ~now:t new_policy;
          (if mode = Targeted then begin
             let changed = Deployment.changed_rule_ids ~old_policy new_policy in
             invalidated :=
               Deployment.invalidate_origins !d ~origins:(fun o -> List.mem o changed);
             preserved := Deployment.total_cache_entries !d
           end);
          updated := true
        end;
        (* idle expiry sweep, as a switch's slow path would run it *)
        if t -. !last_expiry > timeout /. 8. then begin
          ignore (Deployment.expire_caches !d ~now:t);
          last_expiry := t
        end;
        let o = Deployment.inject !d ~now:t ~ingress:0 h in
        if !updated then begin
          incr post;
          let expected = Option.value ~default:Action.Drop (Classifier.action new_policy h) in
          if not (Action.equal o.Deployment.action expected) then begin
            incr stale;
            if t -. t_update > !last_stale then last_stale := t -. t_update
          end
        end)
      stream;
    {
      timeout;
      mode;
      stale_packets = !stale;
      post_update_packets = !post;
      stale_fraction =
        (if !post = 0 then 0. else float_of_int !stale /. float_of_int !post);
      stale_window = !last_stale;
      invalidated = !invalidated;
      preserved = !preserved;
    }

  let run ?(seed = 42) ?(quick = false) () =
    let timeouts = if quick then [ 0.1; 0.4 ] else [ 0.25; 0.5; 1.0; 2.0; 5.0 ] in
    List.map (fun timeout -> run_one ~seed ~quick ~timeout ~mode:Lazy_expiry) timeouts
    @ [
        run_one ~seed ~quick ~timeout:1.0 ~mode:Targeted;
        run_one ~seed ~quick ~timeout:1.0 ~mode:Strict_flush;
      ]

  let print points =
    Table.print ~title:"Fig: policy-update consistency vs cache timeout"
      ~header:
        [ "hard timeout (s)"; "mode"; "stale packets"; "stale %"; "stale window (s)";
          "cache invalidated/kept" ]
      (List.map
         (fun p ->
           [
             Printf.sprintf "%.2f" p.timeout;
             (match p.mode with
             | Lazy_expiry -> "lazy expiry"
             | Strict_flush -> "strict flush"
             | Targeted -> "targeted invalidation");
             string_of_int p.stale_packets;
             Table.fmt_pct p.stale_fraction;
             Printf.sprintf "%.2f" p.stale_window;
             (match p.mode with
             | Targeted -> Printf.sprintf "%d/%d" p.invalidated p.preserved
             | Lazy_expiry | Strict_flush -> "-");
           ])
         points)
end

(* ------------------------------------------------------------------ *)

module A_cut = struct
  type point = {
    k : int;
    best_max : int;
    best_total : int;
    src_max : int;  (** always cutting src_ip — an informed fixed choice *)
    src_total : int;
    proto_max : int;  (** always cutting proto — a poor fixed choice *)
    proto_total : int;
  }

  let run ?(seed = 42) ?(quick = false) () =
    let policy =
      Policy_gen.acl (Prng.create seed)
        { Policy_gen.default_acl with rules = (if quick then 150 else 1500); chains = 50 }
    in
    let proto_dim = Schema.index (Classifier.schema policy) "proto" in
    List.map
      (fun k ->
        let best = Partitioner.compute ~heuristic:Partitioner.Best_cut policy ~k in
        let src = Partitioner.compute ~heuristic:(Partitioner.Fixed_dimension 0) policy ~k in
        let proto =
          Partitioner.compute ~heuristic:(Partitioner.Fixed_dimension proto_dim) policy ~k
        in
        {
          k;
          best_max = best.Partitioner.max_entries;
          best_total = best.Partitioner.total_entries;
          src_max = src.Partitioner.max_entries;
          src_total = src.Partitioner.total_entries;
          proto_max = proto.Partitioner.max_entries;
          proto_total = proto.Partitioner.total_entries;
        })
      (if quick then [ 4; 16 ] else [ 2; 4; 8; 16; 32; 64 ])

  let print points =
    Table.print ~title:"Ablation: best-cut heuristic vs fixed-dimension cuts"
      ~header:
        [ "k"; "best max"; "best total"; "src-only max"; "src-only total";
          "proto-only max"; "proto-only total" ]
      (List.map
         (fun p ->
           [
             string_of_int p.k;
             string_of_int p.best_max;
             string_of_int p.best_total;
             string_of_int p.src_max;
             string_of_int p.src_total;
             string_of_int p.proto_max;
             string_of_int p.proto_total;
           ])
         points)
end

module A_splice = struct
  type t = {
    rules_sampled : int;
    splice_mean : float;
    splice_p95 : float;
    dependent_mean : float;
    dependent_p95 : float;
    worst_dependent : int;
    worst_splice : int;
  }

  let run ?(seed = 42) ?(quick = false) () =
    let policy =
      Policy_gen.acl (Prng.create seed)
        {
          Policy_gen.default_acl with
          rules = (if quick then 120 else 600);
          chains = (if quick then 10 else 30);
          chain_depth = 10;
        }
    in
    let rules = Classifier.rules policy in
    (* Cost per cached flow: splicing installs 1 entry; dependent-set
       caching installs the rule's whole upward closure. *)
    let splice_costs =
      List.map (fun _ -> 1.) rules (* one spliced piece per cached flow *)
    in
    let dependent_costs =
      List.map (fun r -> float_of_int (Splice.dependent_set_cost policy r)) rules
    in
    (* Worst-case splice fragmentation: pieces a single rule can shatter
       into if every piece ends up cached.  Catch-all rules overlapped by
       hundreds of others fragment combinatorially — computing their exact
       piece count is both expensive and uninformative, so the statistic
       covers rules with a bounded blocker set (the table reports the
       coverage). *)
    let bounded_blockers (r : Rule.t) =
      let n =
        List.length
          (List.filter (fun r' -> Rule.beats r' r && Rule.overlaps r' r) rules)
      in
      n <= 12 && not (Pred.is_any r.pred)
    in
    let fragmentation =
      List.filter_map
        (fun r ->
          if bounded_blockers r then Some (List.length (Splice.pieces_of_rule policy r))
          else None)
        rules
    in
    let s1 = Summary.of_list splice_costs and s2 = Summary.of_list dependent_costs in
    {
      rules_sampled = List.length rules;
      splice_mean = s1.Summary.mean;
      splice_p95 = s1.Summary.p95;
      dependent_mean = s2.Summary.mean;
      dependent_p95 = s2.Summary.p95;
      worst_dependent = int_of_float (Summary.of_list dependent_costs).Summary.max;
      worst_splice = List.fold_left max 0 fragmentation;
    }

  let print t =
    Table.print ~title:"Ablation: cache cost per flow, splicing vs dependent-set"
      ~header:[ "metric"; "splice"; "dependent-set" ]
      [
        [ "mean entries per cached flow"; Printf.sprintf "%.2f" t.splice_mean;
          Printf.sprintf "%.2f" t.dependent_mean ];
        [ "p95"; Printf.sprintf "%.2f" t.splice_p95; Printf.sprintf "%.2f" t.dependent_p95 ];
        [ "worst case"; string_of_int t.worst_splice; string_of_int t.worst_dependent ];
      ];
    Printf.printf "(%d rules; splice worst case counts total pieces of one rule)\n"
      t.rules_sampled
end

(* ------------------------------------------------------------------ *)

module E_ctrl = struct
  type row = { scenario : string; frames : int; bytes : int }

  let run ?(seed = 42) ?(quick = false) () =
    let rng = Prng.create seed in
    let policy =
      Policy_gen.acl (Prng.split rng)
        { Policy_gen.default_acl with rules = (if quick then 200 else 2000); chains = 40 }
    in
    let topo_rng = Prng.split rng in
    let topology =
      Topology.campus ~rand:(fun () -> Prng.float topo_rng)
        ~edge_switches:(if quick then 6 else 12) ()
    in
    let config =
      { Deployment.default_config with k = 16; replication = 2; cache_capacity = 256 }
    in
    (* blank switches: every byte of configuration crosses the channels *)
    let d =
      Deployment.build ~install:false ~config ~policy ~topology ~authority_ids:[ 2; 3; 4 ] ()
    in
    let cp = Control_plane.create d in
    let drive ~from ~until ~step =
      let t = ref from in
      while !t <= until do
        Control_plane.tick cp ~now:!t;
        t := !t +. step
      done
    in
    let measure f =
      let f0 = Control_plane.control_frames cp and b0 = Control_plane.control_bytes cp in
      f ();
      (Control_plane.control_frames cp - f0, Control_plane.control_bytes cp - b0)
    in
    (* 1. initial installation, as really transmitted *)
    let install_frames, install_bytes =
      measure (fun () ->
          Control_plane.push_deployment cp ~now:0.;
          drive ~from:0.001 ~until:0.2 ~step:0.01)
    in
    (* 2. steady state: echoes + stats for a simulated minute *)
    let horizon = if quick then 10. else 60. in
    let steady_frames, steady_bytes =
      measure (fun () -> drive ~from:1. ~until:(1. +. horizon) ~step:0.25)
    in
    (* 3. one full policy change, retransmitted *)
    let policy2 =
      Policy_gen.acl (Prng.split rng)
        { Policy_gen.default_acl with rules = (if quick then 200 else 2000); chains = 40 }
    in
    let update_frames, update_bytes =
      measure (fun () ->
          let _d' = Deployment.update_policy (Control_plane.deployment cp)
                      ~now:(2. +. horizon) policy2 in
          (* update_policy recomputes in place on the same switches; the
             transmission cost is one full push of the new configuration *)
          Control_plane.push_deployment cp ~now:(2. +. horizon);
          drive ~from:(2.001 +. horizon) ~until:(2.2 +. horizon) ~step:0.01)
    in
    [
      { scenario = "initial install (partition rules + authority tables)";
        frames = install_frames; bytes = install_bytes };
      { scenario = Printf.sprintf "steady state (%.0f s: echo 1 s, stats 5 s)" horizon;
        frames = steady_frames; bytes = steady_bytes };
      { scenario = "policy update (full reinstall)";
        frames = update_frames; bytes = update_bytes };
    ]

  let print rows =
    Table.print ~title:"Supplementary: control-plane overhead (encoded frames on the wire)"
      ~header:[ "scenario"; "frames"; "bytes" ]
      (List.map
         (fun r -> [ r.scenario; string_of_int r.frames; Table.fmt_si (float_of_int r.bytes) ])
         rows)
end

(* ------------------------------------------------------------------ *)

module E_cache = struct
  type point = {
    cache_size : int;
    hit_rate : float;
    authority_load : float;
    evictions : int64;  (* LRU victims: capacity pressure *)
    expirations : int64;  (* idle/hard timeouts: cache churn *)
    installed_rules : int64;  (* TCAM writes over the run (seed path) *)
    agg_hit_rate : float;  (* same workload, aggregation on *)
    agg_installed_rules : int64;
    compression : float;
        (* 1 - aggregated installs / seed installs: the fraction of TCAM
           writes aggregation saved at this capacity *)
  }

  let run ?(seed = 42) ?(quick = false) () =
    let rng = Prng.create seed in
    let policy =
      Policy_gen.acl (Prng.split rng)
        { Policy_gen.default_acl with rules = (if quick then 150 else 1000); chains = 40 }
    in
    let topology = Topology.line 4 () in
    let profile =
      {
        Traffic.default with
        flows = (if quick then 3_000 else 30_000);
        rate = 20_000.;
        alpha = 1.0;
        distinct_headers = (if quick then 400 else 3_000);
        packets_per_flow_mean = 3.0;
        ingresses = [ 0 ];
      }
    in
    let sizes = if quick then [ 4; 32; 256 ] else [ 8; 16; 32; 64; 128; 256; 512; 1024 ] in
    List.map
      (fun cache_size ->
        (* one run per arm at identical capacity and workload (same
           generator seed): the seed install path vs the aggregation
           pipeline (suppression + buddy merging + cover sets) *)
        let arm aggregation =
          let config =
            { Deployment.default_config with k = 8; cache_capacity = cache_size;
              aggregation }
          in
          let d = Deployment.build ~config ~policy ~topology ~authority_ids:[ 1; 2 ] () in
          let flows = Traffic.generate (Prng.create (seed + 1)) policy profile in
          let r = Flowsim.run Flowsim.Config.default d flows in
          let sum f =
            Array.fold_left
              (fun acc sw -> Int64.add acc (f (Tcam.stats (Switch.cache sw))))
              0L (Deployment.switches d)
          in
          (d, r, sum)
        in
        let d0, r0, sum0 = arm Aggregate.default in
        let _d1, r1, sum1 = arm Aggregate.enabled_default in
        ignore d0;
        let packets = float_of_int (max 1 r0.Flowsim.delivered_packets) in
        let packets1 = float_of_int (max 1 r1.Flowsim.delivered_packets) in
        let installs = sum0 (fun (s : Tcam.stats) -> s.Tcam.inserts) in
        let agg_installs = sum1 (fun (s : Tcam.stats) -> s.Tcam.inserts) in
        {
          cache_size;
          hit_rate = float_of_int r0.Flowsim.cache_hit_packets /. packets;
          authority_load =
            (packets -. float_of_int r0.Flowsim.cache_hit_packets) /. packets;
          evictions = sum0 (fun (s : Tcam.stats) -> s.Tcam.evictions);
          expirations = sum0 (fun (s : Tcam.stats) -> s.Tcam.expirations);
          installed_rules = installs;
          agg_hit_rate = float_of_int r1.Flowsim.cache_hit_packets /. packets1;
          agg_installed_rules = agg_installs;
          compression =
            (if installs = 0L then 0.
             else 1. -. (Int64.to_float agg_installs /. Int64.to_float installs));
        })
      sizes

  let print points =
    Table.print
      ~title:
        "Supplementary: ingress cache size vs authority load (plain vs aggregated)"
      ~header:
        [ "cache entries"; "hit rate"; "agg hit rate"; "authority load"; "evictions";
          "expirations"; "installs"; "agg installs"; "compression" ]
      (List.map
         (fun p ->
           [
             string_of_int p.cache_size;
             Table.fmt_pct p.hit_rate;
             Table.fmt_pct p.agg_hit_rate;
             Table.fmt_pct p.authority_load;
             Int64.to_string p.evictions;
             Int64.to_string p.expirations;
             Int64.to_string p.installed_rules;
             Int64.to_string p.agg_installed_rules;
             Table.fmt_pct p.compression;
           ])
         points)
end

(* ------------------------------------------------------------------ *)

(* Shared by the fault experiments: the reliable-channel timers the CLI
   exposes (--echo-interval and the --retx flags), defaulting to the
   tight values the chaos scenarios have always run with. *)
let reliability_config ?(echo_interval = 1.0) ?(retx_timeout = 0.05)
    ?(retx_backoff = 2.0) ?(retx_limit = 8) () =
  {
    Control_plane.default_config with
    echo_interval;
    retx_timeout;
    retx_backoff;
    retx_limit;
  }

module E_chaos = struct
  type row = {
    loss : float;
    dropped : int;
    corrupted : int;
    decode_errors : int;
    retransmissions : int;
    giveups : int;
    detect_time : float;
    converge_time : float;
    degraded : int;
    recovered : bool;
    replay_identical : bool;
  }

  (* One chaos scenario: two of the three authority switches crash half a
     second apart (so some partitions lose every replica), the control
     channels drop/duplicate/corrupt/reorder frames at the given rate
     throughout, and both switches restart and get resynced.  Everything
     below is a pure function of [seed]. *)
  let crash_a = 2.0
  let crash_b = 2.5
  let restart_a = 6.0
  let restart_b = 7.0
  let horizon = 14.0

  let scenario ~cp_config ~congestion ~seed ~quick ~loss =
    let rng = Prng.create seed in
    let policy =
      Policy_gen.acl (Prng.split rng)
        { Policy_gen.default_acl with rules = (if quick then 100 else 500); chains = 20 }
    in
    let topology = Topology.line 6 () in
    let config =
      { Deployment.default_config with k = 8; replication = 2; cache_capacity = 128;
        congestion }
    in
    let d =
      Deployment.build ~install:false ~config ~policy ~topology ~authority_ids:[ 1; 3; 4 ] ()
    in
    let a, b = (1, 3) in
    let faults =
      Fault.plan ~seed
        ~link:(if loss > 0. then Fault.lossy_link ~jitter:2e-3 loss else Fault.ideal_link)
        ~events:
          [
            Fault.Crash { switch = a; at = crash_a };
            Fault.Crash { switch = b; at = crash_b };
            Fault.Restart { switch = a; at = restart_a };
            Fault.Restart { switch = b; at = restart_b };
          ]
        ()
    in
    let cp = Control_plane.create ~config:cp_config ~faults d in
    let probes =
      Array.to_list (Traffic.headers_for (Prng.split rng) policy (if quick then 100 else 400))
    in
    let inject_batch ~now =
      let d = Control_plane.deployment cp in
      Deployment.flush_caches d;
      List.iter (fun h -> ignore (Deployment.inject d ~now ~ingress:0 h)) probes
    in
    let detect = ref nan and converge = ref nan in
    let degraded_before = ref 0 in
    let step = 0.02 in
    Control_plane.push_deployment cp ~now:0.;
    let t = ref step in
    while !t <= horizon do
      let now = !t in
      Control_plane.tick cp ~now;
      if Float.is_nan !detect && List.mem a (Control_plane.failed_switches cp) then
        detect := now -. crash_a;
      if now > restart_b && Float.is_nan !converge
         && Control_plane.pending_requests cp = 0
      then converge := now -. restart_b;
      (* traffic batches: a warm-up, one in the double-crash window (some
         partitions have no live replica -> degraded path), one after
         recovery *)
      if now -. step < 1.0 && 1.0 <= now then inject_batch ~now;
      if now -. step < 3.0 && 3.0 <= now then begin
        degraded_before := Deployment.degraded_misses (Control_plane.deployment cp);
        inject_batch ~now
      end;
      if now -. step < 12.0 && 12.0 <= now then inject_batch ~now;
      t := !t +. step
    done;
    let d = Control_plane.deployment cp in
    let stats = Control_plane.stats cp in
    let recovered =
      Control_plane.pending_requests cp = 0
      && Control_plane.failed_switches cp = []
      && Deployment.semantically_equal d probes
    in
    ( {
        loss;
        dropped = stats.Control_plane.dropped + stats.Control_plane.link_dropped;
        corrupted = stats.Control_plane.corrupted;
        decode_errors = stats.Control_plane.decode_errors;
        retransmissions = Control_plane.retransmissions cp;
        giveups = Control_plane.giveups cp;
        detect_time = !detect;
        converge_time = !converge;
        degraded =
          Deployment.degraded_misses (Control_plane.deployment cp) - !degraded_before;
        recovered;
        replay_identical = false;
      },
      Control_plane.fault_log cp )

  let run ?(seed = 42) ?(quick = false) ?(congestion = Congestion.default) ?echo_interval
      ?retx_timeout ?retx_backoff ?retx_limit () =
    let cp_config =
      reliability_config ?echo_interval ?retx_timeout ?retx_backoff ?retx_limit ()
    in
    let rates = if quick then [ 0.0; 0.10 ] else [ 0.0; 0.05; 0.10; 0.20 ] in
    List.map
      (fun loss ->
        let row, log1 = scenario ~cp_config ~congestion ~seed ~quick ~loss in
        (* the reproducibility claim, checked where it matters most: the
           acceptance scenario's 10% loss point is replayed end to end *)
        if Float.equal loss 0.10 then begin
          let _, log2 = scenario ~cp_config ~congestion ~seed ~quick ~loss in
          { row with replay_identical = log1 = log2 }
        end
        else { row with replay_identical = true })
      rates

  (* One scenario, no sweep, no replay check: what [difane trace] runs
     with the trace ring enabled to print the causal timeline. *)
  let replay_one ?(seed = 42) ?(quick = false) ?(loss = 0.10)
      ?(congestion = Congestion.default) ?echo_interval ?retx_timeout ?retx_backoff
      ?retx_limit () =
    let cp_config =
      reliability_config ?echo_interval ?retx_timeout ?retx_backoff ?retx_limit ()
    in
    ignore (scenario ~cp_config ~congestion ~seed ~quick ~loss)

  let print rows =
    Table.print
      ~title:
        "Supplementary: chaos sweep (frame loss vs recovery; 2 authority crashes + resync)"
      ~header:
        [ "loss"; "frames lost"; "corrupt"; "decode err"; "retx"; "giveups";
          "detect (s)"; "converge (s)"; "degraded misses"; "recovered"; "replay" ]
      (List.map
         (fun r ->
           [
             Table.fmt_pct r.loss;
             string_of_int r.dropped;
             string_of_int r.corrupted;
             string_of_int r.decode_errors;
             string_of_int r.retransmissions;
             string_of_int r.giveups;
             Printf.sprintf "%.2f" r.detect_time;
             Printf.sprintf "%.2f" r.converge_time;
             string_of_int r.degraded;
             (if r.recovered then "yes" else "NO");
             (if r.replay_identical then "identical" else "DIVERGED");
           ])
         rows)
end

(* ------------------------------------------------------------------ *)

module E_ha = struct
  type row = {
    loss : float;
    dropped : int;
    retransmissions : int;
    giveups : int;
    takeover1 : float;
    takeover2 : float;
    replayed : int;
    snapshots : int;
    dup_installs : int;
    stale_rejected : int;
    stale_accepted : int;
    fenced_appends : int;
    degraded : int;
    recovered : bool;
    replay_identical : bool;
  }

  (* The high-availability gauntlet, all from one seed.  Two of the three
     authority switches crash early; in the middle of deploying a policy
     update the leader process dies, so a standby rebuilds the exact
     deployment from the journal and takes over at epoch 2; the switches
     restart and get resynced; the crashed controller returns as a
     standby; then the *new* leader is partitioned away (not crashed) —
     the returned controller wins the next election at epoch 3 while the
     isolated one keeps mastering until the switches fence it (the
     split-brain case).  Probes run before, between and after. *)
  let crash_a = 1.5
  let crash_b = 1.8
  let update_at = 2.8
  let leader_crash = 3.0
  let restart_a = 8.5
  let restart_b = 8.8
  let leader_restart = 9.5
  let isolate_at = 10.5
  let horizon = 16.0

  let scenario ~cp_config ~congestion ~seed ~quick ~loss =
    let rng = Prng.create seed in
    let policy =
      Policy_gen.acl (Prng.split rng)
        { Policy_gen.default_acl with rules = (if quick then 80 else 400); chains = 20 }
    in
    let policy' = F_dyn.flipped ~select:(fun id -> id mod 4 = 0) policy in
    let topology = Topology.line 6 () in
    let dconfig =
      { Deployment.default_config with k = 8; replication = 2; cache_capacity = 128;
        congestion }
    in
    let faults =
      Fault.plan ~seed ~controllers:3
        ~link:(if loss > 0. then Fault.lossy_link ~jitter:2e-3 loss else Fault.ideal_link)
        ~events:
          [
            Fault.Crash { switch = 3; at = crash_a };
            Fault.Crash { switch = 4; at = crash_b };
            Fault.Controller_crash { controller = 0; at = leader_crash };
            Fault.Restart { switch = 3; at = restart_a };
            Fault.Restart { switch = 4; at = restart_b };
            Fault.Controller_restart { controller = 0; at = leader_restart };
          ]
        ()
    in
    let config = { Cluster.default_config with snapshot_every = 8; cp = cp_config } in
    let cl =
      Cluster.create ~config ~faults ~dconfig ~policy ~topology ~authority_ids:[ 1; 3; 4 ] ()
    in
    let probes =
      Array.to_list (Traffic.headers_for (Prng.split rng) policy (if quick then 100 else 300))
    in
    let inject_batch ~now =
      let d = Cluster.deployment cl in
      Deployment.flush_caches d;
      List.iter (fun h -> ignore (Deployment.inject d ~now ~ingress:0 h)) probes
    in
    let step = 0.02 in
    Cluster.push_deployment cl ~now:0.;
    let updated = ref false in
    let isolated = ref false in
    let t = ref step in
    while !t <= horizon do
      let now = !t in
      Cluster.tick cl ~now;
      if (not !updated) && now >= update_at then begin
        Cluster.update_policy cl ~now policy';
        updated := true
      end;
      if (not !isolated) && now >= isolate_at then begin
        Cluster.isolate cl ~now 1 true;
        isolated := true
      end;
      List.iter
        (fun batch_at -> if now -. step < batch_at && batch_at <= now then inject_batch ~now)
        [ 1.0; 2.5; 5.5; 13.5 ];
      t := !t +. step
    done;
    let d = Cluster.deployment cl in
    let stats = Cluster.stats cl in
    let latencies = Cluster.takeover_latencies cl in
    let nth_latency n = match List.nth_opt latencies n with Some l -> l | None -> nan in
    let recovered =
      Cluster.takeovers cl = 2
      && Cluster.leader cl = 0
      && Cluster.pending_requests cl = 0
      && Control_plane.failed_switches (Cluster.leader_cp cl) = []
      && Deployment.semantically_equal d probes
    in
    ( {
        loss;
        dropped = stats.Control_plane.dropped + stats.Control_plane.link_dropped;
        retransmissions = Cluster.retransmissions cl;
        giveups = Cluster.giveups cl;
        takeover1 = nth_latency 0;
        takeover2 = nth_latency 1;
        replayed = Cluster.entries_replayed cl;
        snapshots = Cluster.snapshots cl;
        dup_installs = Cluster.duplicate_installs cl;
        stale_rejected = Cluster.stale_rejected cl;
        stale_accepted = Cluster.stale_accepted cl;
        fenced_appends = Cluster.fenced_appends cl;
        degraded = Deployment.degraded_misses d;
        recovered;
        replay_identical = false;
      },
      (Cluster.cluster_log cl, Bytes.to_string (Journal.encode (Cluster.journal cl))) )

  let run ?(seed = 42) ?(quick = false) ?(congestion = Congestion.default) ?echo_interval
      ?retx_timeout ?retx_backoff ?retx_limit () =
    let cp_config =
      reliability_config ?echo_interval ?retx_timeout ?retx_backoff ?retx_limit ()
    in
    let rates = if quick then [ 0.0; 0.10 ] else [ 0.0; 0.05; 0.10; 0.20 ] in
    List.map
      (fun loss ->
        let row, trace1 = scenario ~cp_config ~congestion ~seed ~quick ~loss in
        (* the acceptance criterion: the same seed must replay the whole
           run bit-identically — cluster event log and journal bytes *)
        if Float.equal loss 0.10 then begin
          let _, trace2 = scenario ~cp_config ~congestion ~seed ~quick ~loss in
          { row with replay_identical = trace1 = trace2 }
        end
        else { row with replay_identical = true })
      rates

  let replay_one ?(seed = 42) ?(quick = false) ?(loss = 0.10)
      ?(congestion = Congestion.default) ?echo_interval ?retx_timeout ?retx_backoff
      ?retx_limit () =
    let cp_config =
      reliability_config ?echo_interval ?retx_timeout ?retx_backoff ?retx_limit ()
    in
    ignore (scenario ~cp_config ~congestion ~seed ~quick ~loss)

  let print rows =
    Table.print
      ~title:
        "Supplementary: controller HA sweep (leader crash + split brain vs frame loss)"
      ~header:
        [ "loss"; "frames lost"; "retx"; "giveups"; "takeover1 (s)"; "takeover2 (s)";
          "replayed"; "snaps"; "dup installs"; "stale rej"; "stale acc"; "fenced";
          "degraded"; "recovered"; "replay" ]
      (List.map
         (fun r ->
           [
             Table.fmt_pct r.loss;
             string_of_int r.dropped;
             string_of_int r.retransmissions;
             string_of_int r.giveups;
             Printf.sprintf "%.2f" r.takeover1;
             Printf.sprintf "%.2f" r.takeover2;
             string_of_int r.replayed;
             string_of_int r.snapshots;
             string_of_int r.dup_installs;
             string_of_int r.stale_rejected;
             string_of_int r.stale_accepted;
             string_of_int r.fenced_appends;
             string_of_int r.degraded;
             (if r.recovered then "yes" else "NO");
             (if r.replay_identical then "identical" else "DIVERGED");
           ])
         rows)
end

(* E-INCAST: many ingresses fan into one authority switch over a slow
   fabric — the incast pattern that motivates the congestion model.
   Every link serializes a default packet in 100 µs (10k packets/s per
   port), matched to the authority's 100 µs setup service, so past
   ~10k flows/s the authority's inbound port and setup queue congest
   together.  The sweep replays the identical seeded workload under
   drop-tail and under credit-based flow control: drop-tail sheds
   misses at the full port buffer; credit mode backpressures the
   ingresses, which defer re-splicing and fall back to the (slower but
   lossless) controller path — the graceful-degradation trade the
   tentpole exists to demonstrate. *)
module E_incast = struct
  type row = { offered_rate : float; mode : string; result : Flowsim.result }

  (* Hub 0, authority 1, ingresses 2..9.  The hub->authority port is the
     incast bottleneck: all eight ingresses' misses serialize onto it. *)
  let topology =
    Topology.create ~nodes:10
      (List.init 9 (fun i ->
           { Topology.src = 0; dst = i + 1; latency = 100e-6; bandwidth = 1.2e8 }))

  (* Authority at 10k setups/s; controller twice as fast per request but
     10 ms of RTT away — credit mode buys its loss-freedom with latency. *)
  let timing =
    { Flowsim.default_timing with authority_service = 100e-6; controller_service = 50e-6 }

  let congestion mode =
    {
      Congestion.default with
      model_bandwidth = true;
      buffer_capacity = Some 64;
      ecn_threshold = Some 16;
      mode;
      credit_pool = 32;
      credit_low_water = 8;
    }

  let deployment ~seed ~mode =
    let config =
      {
        Deployment.default_config with
        k = 8;
        cache_capacity = 0;
        cache_idle_timeout = Some 1.0;
        balance = `Volume;
        congestion = congestion mode;
      }
    in
    Deployment.build ~config ~policy:(timing_policy ~seed) ~topology ~authority_ids:[ 1 ]
      ()

  let rates ~quick = if quick then [ 5e3; 20e3 ] else [ 5e3; 10e3; 20e3; 40e3 ]
  let duration ~quick = if quick then 0.05 else 0.2
  let modes = [ ("drop-tail", Congestion.Drop_tail); ("credit", Congestion.Credit) ]

  let run ?(seed = 42) ?(quick = false) () =
    let schema = Classifier.schema (timing_policy ~seed) in
    let duration = duration ~quick in
    List.concat_map
      (fun rate ->
        List.map
          (fun (name, mode) ->
            (* same seeded workload for both modes: the curves differ only
               in what the network does under pressure *)
            let flows =
              distinct_flows ~rng:(Prng.create (seed + int_of_float rate)) ~schema ~rate
                ~duration ~ingresses:[ 2; 3; 4; 5; 6; 7; 8; 9 ]
            in
            { offered_rate = rate; mode = name;
              result =
                Flowsim.run
                  { Flowsim.Config.default with timing }
                  (deployment ~seed ~mode) flows })
          modes)
      (rates ~quick)

  let miss_drop_rate (r : Flowsim.result) =
    if r.Flowsim.offered_flows = 0 then 0.
    else float_of_int r.Flowsim.dropped_flows /. float_of_int r.Flowsim.offered_flows

  (* The graceful-degradation claims [difane incast --check] enforces,
     at the saturating (top) rate of the sweep. *)
  let check rows =
    let top = List.fold_left (fun acc r -> Float.max acc r.offered_rate) 0. rows in
    let at mode =
      (List.find (fun r -> Float.equal r.offered_rate top && r.mode = mode) rows).result
    in
    let dt = at "drop-tail" and cr = at "credit" in
    List.filter_map
      (fun (ok, msg) -> if ok then None else Some msg)
      [
        (dt.Flowsim.queue_drops > 0,
         "drop-tail never filled a port buffer at the top rate");
        (cr.Flowsim.backpressured > 0, "credit mode never backpressured at the top rate");
        (miss_drop_rate cr < miss_drop_rate dt,
         "credit mode dropped at least as large a fraction as drop-tail at the top rate");
        (cr.Flowsim.completed_flows > dt.Flowsim.completed_flows,
         "credit mode completed no more flows than drop-tail at the top rate");
      ]

  let print rows =
    Table.print
      ~title:"E-INCAST: incast on one authority — drop-tail vs credit flow control"
      ~header:
        [ "offered (flows/s)"; "mode"; "completed"; "drop%"; "queue drops"; "ECN marks";
          "backpressured"; "p50 (us)"; "p99 (us)" ]
      (List.map
         (fun r ->
           let res = r.result in
           let pctl f =
             match res.Flowsim.first_packet_delay with
             | None -> "-"
             | Some s -> Printf.sprintf "%.0f" (f s *. 1e6)
           in
           [
             Table.fmt_si r.offered_rate;
             r.mode;
             string_of_int res.Flowsim.completed_flows;
             Table.fmt_pct (miss_drop_rate res);
             string_of_int res.Flowsim.queue_drops;
             string_of_int res.Flowsim.ecn_marks;
             string_of_int res.Flowsim.backpressured;
             pctl (fun (s : Summary.t) -> s.Summary.p50);
             pctl (fun (s : Summary.t) -> s.Summary.p99);
           ])
         rows)
end

(* E-MON: flow-level monitoring on a skewed Zipf workload.  A star of
   edge switches feeds three authority switches; high Zipf skew plus a
   deliberately small ingress cache keeps the hot rules' partitions
   missing all run, so the authority holding them runs hot — the
   monitor's job is to see that happen, window by window, and say
   which rules did it. *)
module E_mon = struct
  type report = {
    packets : int;
    hit_rate : float;
    sampled : int;
    exported : int;
    heavy : Monitor.rule_report list;
    dead : int;
    regions : Monitor.region_report list;
    hotspot_windows : int;
    worst : Hotspot.event option;
    replay_identical : bool;
  }

  let run_monitored ?(seed = 42) ?(quick = false) ?(alpha = 1.4) ?(sample_rate = 1)
      ?interval ?(threshold = 1.5) ?(top_k = 10) () =
    let rng = Prng.create seed in
    let policy =
      Policy_gen.acl (Prng.split rng)
        { Policy_gen.default_acl with rules = (if quick then 150 else 600); chains = 40 }
    in
    let topology = Topology.star 8 () in
    let config =
      { Deployment.default_config with k = 8; cache_capacity = 64; balance = `Volume }
    in
    let d = Deployment.build ~config ~policy ~topology ~authority_ids:[ 1; 2; 3 ] () in
    let profile =
      {
        Traffic.default with
        flows = (if quick then 4_000 else 20_000);
        rate = 20_000.;
        alpha;
        distinct_headers = (if quick then 600 else 2_500);
        packets_per_flow_mean = 3.0;
        ingresses = [ 4; 5; 6; 7 ];
      }
    in
    let flows = Traffic.generate (Prng.create (seed + 1)) policy profile in
    let span = float_of_int profile.Traffic.flows /. profile.Traffic.rate in
    (* flash crowd: halfway through, a burst of single-packet flows
       confined to one flowspace region (headers drawn from that
       partition's clipped table).  Steady-state Zipf misses spread
       evenly over the authorities; this is the transient imbalance the
       hotspot detector exists to catch. *)
    let hot =
      List.hd (Deployment.partitioner d).Partitioner.partitions
    in
    let burst_profile =
      {
        Traffic.default with
        flows = profile.Traffic.flows / 4;
        rate = 2. *. profile.Traffic.rate;
        alpha = 0.3;
        distinct_headers = max 300 (profile.Traffic.flows / 8);
        packets_per_flow_mean = 1.0;
        ingresses = profile.Traffic.ingresses;
      }
    in
    let burst =
      Traffic.generate (Prng.create (seed + 2)) hot.Partitioner.table burst_profile
      |> List.map (fun (f : Traffic.flow) ->
             { f with Traffic.flow_id = f.Traffic.flow_id + 1_000_000;
               start = f.Traffic.start +. (span /. 2.) })
    in
    let flows =
      List.sort
        (fun (a : Traffic.flow) b -> Float.compare a.Traffic.start b.Traffic.start)
        (flows @ burst)
    in
    let interval = Option.value ~default:(span /. 20.) interval in
    let mon_config =
      {
        Monitor.default_config with
        flow =
          {
            Flow_records.default_config with
            sample_rate;
            idle_timeout = 4. *. interval;
            active_timeout = 10. *. interval;
          };
        interval;
        threshold;
        top_k;
      }
    in
    let m = Monitor.create ~config:mon_config d in
    let r = Flowsim.run { Flowsim.Config.default with monitor = Some m } d flows in
    (m, r)

  let run ?(seed = 42) ?(quick = false) () =
    let m1, r1 = run_monitored ~seed ~quick () in
    let flows_json = Flow_records.to_json (Monitor.flow_records m1) in
    (* seed-for-seed determinism: a second identical run must export a
       bit-identical flow-record document *)
    let m2, _ = run_monitored ~seed ~quick () in
    let replay_identical =
      String.equal flows_json (Flow_records.to_json (Monitor.flow_records m2))
    in
    let hotspots = Monitor.hotspots m1 in
    let fr = Monitor.flow_records m1 in
    {
      packets = r1.Flowsim.delivered_packets;
      hit_rate =
        float_of_int r1.Flowsim.cache_hit_packets
        /. float_of_int (max 1 r1.Flowsim.delivered_packets);
      sampled = Flow_records.sampled_packets fr;
      exported = List.length (Flow_records.exports fr);
      heavy = Monitor.heavy_hitters ~k:5 m1;
      dead = List.length (Monitor.dead_rules m1);
      regions = Monitor.region_efficacy m1;
      hotspot_windows = List.length hotspots;
      worst = Hotspot.worst hotspots;
      replay_identical;
    }

  let print (r : report) =
    Table.print ~title:"E-MON: top heavy-hitter rules (skewed Zipf workload)"
      ~header:[ "rule"; "prio"; "cache hits"; "auth hits"; "provenance" ]
      (List.map
         (fun (h : Monitor.rule_report) ->
           [
             string_of_int h.Monitor.rule_id;
             string_of_int h.Monitor.priority;
             Int64.to_string h.Monitor.cache_hits;
             Int64.to_string h.Monitor.authority_hits;
             String.concat ", "
               (List.map
                  (fun (pid, auth) -> Printf.sprintf "pid %d@sw%d" pid auth)
                  h.Monitor.partitions);
           ])
         r.heavy);
    Printf.printf "packets %d, cache hit rate %s; %d sampled into %d flow records\n"
      r.packets (Table.fmt_pct r.hit_rate) r.sampled r.exported;
    Printf.printf "dead rules: %d\n" r.dead;
    List.iter
      (fun (g : Monitor.region_report) ->
        Printf.printf "  region pid %d @ sw%d: efficacy %s\n" g.Monitor.pid
          g.Monitor.authority
          (Table.fmt_pct g.Monitor.efficacy))
      r.regions;
    (match r.worst with
    | Some e ->
        Printf.printf "hotspots: %d windows flagged; worst %s\n" r.hotspot_windows
          (Format.asprintf "%a" Hotspot.pp_event e)
    | None -> Printf.printf "hotspots: none flagged\n");
    Printf.printf "flow-record replay identical: %b\n" r.replay_identical
end

(* E-REBALANCE: closed-loop adaptive repartitioning under a flash
   crowd.  A star of four ingresses feeds three authority switches; at
   t=3 s a sustained crowd of single-packet flows confined to one
   flowspace region overloads the authority that owns it (offered rate
   1.5x its setup capacity), so its queue — and the region's tail
   first-packet delay — grows without bound.  The live cluster ticks
   against the same deployment the packets walk (the flowsim
   [?controller] hook): with the adaptive config, the hotspot detector
   flags the authority for [hotspot_window] consecutive windows, the
   hot region is re-cut and the split-off half migrated (staged:
   install -> flip -> retire) to the least-loaded authority, after
   which each half runs below capacity and the tail drains.  The
   static baseline replays the identical workload with the loop off
   and never recovers.  A third run crashes the master between the
   flip and the commit; the elected replica replays the journal,
   finishes the retirement, and every gate still holds. *)
module E_rebalance = struct
  type row = {
    label : string;  (** ["static"], ["adaptive"] or ["adaptive+crash"] *)
    offered : int;
    completed : int;
    dropped : int;
    baseline_p99 : float;  (** pre-crowd window *)
    crowd_p99 : float;  (** during the crowd, before recovery *)
    final_p99 : float;  (** last window of the run *)
    recovered : bool;  (** [final_p99 < 2 * baseline_p99] *)
    migrations_started : int;
    migrations_committed : int;
    migrations_aborted : int;
    rules_moved : int;
    takeovers : int;
    dup_installs : int;
    stale_accepted : int;
    pending : int;
    violations : string list;  (** per-run invariant failures; [] = green *)
    replay_identical : bool;
  }

  let crowd_start = 3.0
  let crash_at = 4.2

  let p99_between (res : Flowsim.result) ~lo ~hi =
    let ds =
      Array.to_list res.Flowsim.flow_delays
      |> List.filter_map (fun (s, d) -> if lo <= s && s < hi then Some d else None)
    in
    match ds with [] -> nan | l -> (Summary.of_list l).Summary.p99

  let scenario ~seed ~quick ~hotspot_threshold ~hotspot_window ~mode =
    let rng = Prng.create seed in
    let policy =
      Policy_gen.acl (Prng.split rng)
        { Policy_gen.default_acl with rules = (if quick then 120 else 300); chains = 20 }
    in
    let topology = Topology.star 8 () in
    (* ingress caches far smaller than the working set: the traffic mix
       churns them, so the crowd's spliced pieces keep getting evicted
       and its misses keep landing on the authority — the sustained
       flow-setup overload the detector exists to catch *)
    let dconfig =
      { Deployment.default_config with k = 8; replication = 2; cache_capacity = 8;
        balance = `Volume }
    in
    (* quick scales time, not dynamics: service x4, rates /4, so the
       crowd still offers 1.5x the hot authority's setup capacity *)
    let service = if quick then 1e-3 else 250e-6 in
    let horizon = if quick then 7.5 else 10.0 in
    let baseline_rate = if quick then 200. else 800. in
    let crowd_rate = if quick then 1200. else 4800. in
    let cp_config =
      {
        Control_plane.default_config with
        rebalance_interval = (if mode = `Static then None else Some 0.25);
        adaptive = mode <> `Static;
        hotspot_threshold;
        hotspot_window;
        (* the crash run stretches the stages so the master dies with the
           migration flipped but not yet committed *)
        migration_step = (if mode = `Crash then 0.3 else 0.05);
      }
    in
    let config = { Cluster.default_config with snapshot_every = 64; cp = cp_config } in
    let faults =
      if mode = `Crash then
        Some
          (Fault.plan ~seed ~controllers:3 ~link:Fault.ideal_link
             ~events:[ Fault.Controller_crash { controller = 0; at = crash_at } ]
             ())
      else None
    in
    let cl =
      Cluster.create ~config ?faults ~dconfig ~policy ~topology ~authority_ids:[ 1; 2; 3 ]
        ()
    in
    Cluster.push_deployment cl ~now:0.;
    let d = Cluster.deployment cl in
    let span = horizon -. 1.0 in
    let base_profile =
      {
        Traffic.default with
        flows = int_of_float (baseline_rate *. span);
        rate = baseline_rate;
        alpha = 1.0;
        distinct_headers = (if quick then 400 else 1500);
        packets_per_flow_mean = 2.0;
        ingresses = [ 4; 5; 6; 7 ];
      }
    in
    let base =
      Traffic.generate (Prng.create (seed + 1)) policy base_profile
      |> List.map (fun (f : Traffic.flow) -> { f with Traffic.start = f.Traffic.start +. 1.0 })
    in
    (* the flash crowd: single-packet flows drawn from one partition's
       clipped table, sustained until the end of the run *)
    let hot = List.hd (Deployment.partitioner d).Partitioner.partitions in
    let crowd_span = horizon -. crowd_start in
    let crowd_flows = int_of_float (crowd_rate *. crowd_span) in
    let crowd_profile =
      {
        Traffic.default with
        flows = crowd_flows;
        rate = crowd_rate;
        alpha = 0.3;
        distinct_headers = max 500 (crowd_flows / 2);
        packets_per_flow_mean = 1.0;
        ingresses = [ 4; 5; 6; 7 ];
      }
    in
    let crowd =
      Traffic.generate (Prng.create (seed + 2)) hot.Partitioner.table crowd_profile
      |> List.map (fun (f : Traffic.flow) ->
             { f with Traffic.flow_id = f.Traffic.flow_id + 1_000_000;
               start = f.Traffic.start +. crowd_start })
    in
    let flows =
      List.sort
        (fun (a : Traffic.flow) b -> Float.compare a.Traffic.start b.Traffic.start)
        (base @ crowd)
    in
    let timing =
      { Flowsim.default_timing with authority_service = service; queue_capacity = 4000 }
    in
    let ctr name = Telemetry.value (Telemetry.counter name) in
    let started0 = ctr "rebalance_migrations_started" in
    let committed0 = ctr "rebalance_migrations_committed" in
    let aborted0 = ctr "rebalance_migrations_aborted" in
    let moved0 = ctr "rebalance_rules_moved" in
    let res =
      Flowsim.run
        { Flowsim.Config.default with timing;
          controller = Some (fun ~now -> Cluster.tick cl ~now);
          controller_interval = 0.01 }
        d flows
    in
    (* let retransmissions and any tail migration stage settle *)
    let t = ref horizon in
    while !t <= horizon +. 1.0 do
      Cluster.tick cl ~now:!t;
      t := !t +. 0.01
    done;
    let baseline_p99 = p99_between res ~lo:1.5 ~hi:crowd_start in
    let crowd_p99 = p99_between res ~lo:(crowd_start +. 0.25) ~hi:(crowd_start +. 1.25) in
    let final_lo = horizon -. (if quick then 1.25 else 1.5) in
    let final_p99 = p99_between res ~lo:final_lo ~hi:horizon in
    let recovered =
      Float.is_finite baseline_p99 && Float.is_finite final_p99
      && final_p99 < 2. *. baseline_p99
    in
    let probes =
      Array.to_list
        (Traffic.headers_for (Prng.split rng) policy (if quick then 100 else 300))
    in
    let journal_ok =
      match Journal.decode (Classifier.schema policy) (Journal.encode (Cluster.journal cl)) with
      | Ok _ -> true
      | Error _ -> false
    in
    let started = ctr "rebalance_migrations_started" - started0 in
    let committed = ctr "rebalance_migrations_committed" - committed0 in
    let aborted = ctr "rebalance_migrations_aborted" - aborted0 in
    let dup_installs = Cluster.duplicate_installs cl in
    let stale_accepted = Cluster.stale_accepted cl in
    let pending = Cluster.pending_requests cl in
    let dangling = Control_plane.migration_active (Cluster.leader_cp cl) in
    let violations =
      List.filter_map
        (fun (ok, msg) -> if ok then None else Some msg)
        [
          (res.Flowsim.outage_drops = 0, "packets dropped in a controller outage");
          (dup_installs = 0, "duplicate installs in a switch bank");
          (stale_accepted = 0, "a switch accepted a stale-epoch frame");
          (pending = 0, "control requests still pending after the drain");
          (not dangling, "a migration was left in flight");
          (journal_ok, "journal failed to decode");
          (Deployment.semantically_equal (Cluster.deployment cl) probes,
           "deployment lost semantic equivalence");
        ]
      @
      match mode with
      | `Static ->
          List.filter_map
            (fun (ok, msg) -> if ok then None else Some msg)
            [ (started = 0, "static run started a migration") ]
      | `Adaptive | `Crash ->
          List.filter_map
            (fun (ok, msg) -> if ok then None else Some msg)
            [
              (started >= 1, "no migration was triggered");
              (committed >= 1, "no migration committed");
              (res.Flowsim.dropped_flows = 0, "the adaptive run dropped flows");
              (recovered, "tail delay did not recover under 2x the pre-crowd baseline");
              ((mode <> `Crash) || Cluster.takeovers cl = 1,
               "the crash run did not fail over exactly once");
            ]
    in
    ( {
        label =
          (match mode with
          | `Static -> "static"
          | `Adaptive -> "adaptive"
          | `Crash -> "adaptive+crash");
        offered = res.Flowsim.offered_flows;
        completed = res.Flowsim.completed_flows;
        dropped = res.Flowsim.dropped_flows;
        baseline_p99;
        crowd_p99;
        final_p99;
        recovered;
        migrations_started = started;
        migrations_committed = committed;
        migrations_aborted = aborted;
        rules_moved = ctr "rebalance_rules_moved" - moved0;
        takeovers = Cluster.takeovers cl;
        dup_installs;
        stale_accepted;
        pending;
        violations;
        replay_identical = false;
      },
      (Cluster.cluster_log cl, Bytes.to_string (Journal.encode (Cluster.journal cl)),
       res.Flowsim.flow_delays) )

  (* One adaptive run, nothing else: the replay target [difane paths]
     traces — flash crowd, hotspot detection, staged migration, cache
     invalidation — without the static/crash/replay-gate siblings. *)
  let replay_one ?(seed = 42) ?(quick = false) ?(hotspot_threshold = 2.0)
      ?(hotspot_window = 3) () =
    ignore (scenario ~seed ~quick ~hotspot_threshold ~hotspot_window ~mode:`Adaptive)

  let run ?(seed = 42) ?(quick = false) ?(hotspot_threshold = 2.0) ?(hotspot_window = 3)
      () =
    let scenario = scenario ~seed ~quick ~hotspot_threshold ~hotspot_window in
    let static, _ = scenario ~mode:`Static in
    let adaptive, trace1 = scenario ~mode:`Adaptive in
    (* determinism gate: the same seed must replay the adaptive run
       bit-identically — cluster log, journal bytes and per-flow delays *)
    let _, trace2 = scenario ~mode:`Adaptive in
    let adaptive = { adaptive with replay_identical = trace1 = trace2 } in
    let crash, _ = scenario ~mode:`Crash in
    [ static; adaptive; { crash with replay_identical = true } ]

  (* The claims [difane rebalance --check] enforces. *)
  let check rows =
    let find l = List.find_opt (fun r -> r.label = l) rows in
    let row_violations =
      List.concat_map
        (fun r -> List.map (Printf.sprintf "%s: %s" r.label) r.violations)
        rows
    in
    let cross =
      List.filter_map
        (fun (ok, msg) -> if ok then None else Some msg)
        [
          ((match find "static" with Some r -> not r.recovered | None -> false),
           "the static baseline recovered by itself (scenario not stressful enough)");
          ((match find "adaptive" with Some r -> r.replay_identical | None -> false),
           "the adaptive run did not replay bit-identically");
        ]
    in
    row_violations @ cross

  let print rows =
    Table.print
      ~title:
        "E-REBALANCE: flash crowd — static vs closed-loop adaptive repartitioning"
      ~header:
        [ "run"; "flows"; "done"; "drop"; "p99 pre (ms)"; "p99 crowd (ms)";
          "p99 final (ms)"; "recovered"; "migr"; "commit"; "abort"; "rules moved";
          "takeovers"; "ok" ]
      (List.map
         (fun r ->
           let ms v = if Float.is_finite v then Printf.sprintf "%.2f" (v *. 1e3) else "-" in
           [
             r.label;
             string_of_int r.offered;
             string_of_int r.completed;
             string_of_int r.dropped;
             ms r.baseline_p99;
             ms r.crowd_p99;
             ms r.final_p99;
             (if r.recovered then "yes" else "no");
             string_of_int r.migrations_started;
             string_of_int r.migrations_committed;
             string_of_int r.migrations_aborted;
             string_of_int r.rules_moved;
             string_of_int r.takeovers;
             (if r.violations = [] then "green" else String.concat "; " r.violations);
           ])
         rows)
end

(* E-SCALE: multicore ingress sharding at scale.  The network decomposes
   into independent shards — one authority star (hub, authority, ingress
   spokes) per shard, no cross-shard links — so each shard replays its
   own seeded workload on its own engine and Flowsim.run_sharded merges
   the results in shard-index order.  The decomposition is a function of
   the shard index alone, so the merged result is byte-identical at any
   domain count: [digest] canonicalizes a result for that comparison. *)
module E_scale = struct
  type spec = {
    shards : int;
    spokes : int;  (** per-shard star spokes; switches = shards * (spokes + 1) *)
    flows_per_shard : int;
    domains : int;
  }

  (* 32 shards x 8 switches = 256 switches, 32 x 32768 = 1,048,576 flows *)
  let default_spec = { shards = 32; spokes = 7; flows_per_shard = 32_768; domains = 1 }

  (* small enough for unit tests; same decomposition shape *)
  let quick_spec = { shards = 8; spokes = 3; flows_per_shard = 512; domains = 1 }

  let switches spec = spec.shards * (spec.spokes + 1)

  let shard_policy ~seed s = timing_policy ~seed:(seed + (7919 * (s + 1)))

  let shard_deployment ~seed spec s =
    let config =
      { Deployment.default_config with k = 8; cache_idle_timeout = Some 1.0;
        balance = `Volume }
    in
    Deployment.build ~config ~policy:(shard_policy ~seed s)
      ~topology:(Topology.star (spec.spokes + 1) ~latency:100e-6 ())
      ~authority_ids:[ 1 ] ()

  (* Exactly [flows_per_shard] single-packet flows with seeded Poisson
     arrivals; headers are splitmix-mixed so they spread uniformly over
     the shard policy's flowspace. *)
  let shard_flows ~seed spec s =
    let schema = Classifier.schema (shard_policy ~seed s) in
    let arity = Schema.arity schema in
    let rng = Prng.create (seed + (104729 * (s + 1))) in
    let ingresses = Array.init (spec.spokes - 1) (fun i -> i + 2) in
    let rate = 50_000. in
    let rec gen acc now flow_id =
      if flow_id >= spec.flows_per_shard then List.rev acc
      else
        let now = now +. Prng.exponential rng ~rate in
        let header =
          Header.make schema
            (Array.init arity (fun f ->
                 mix64
                   (Int64.of_int
                      ((((s * spec.flows_per_shard) + flow_id) * arity) + f + 1))))
        in
        let flow =
          { Traffic.flow_id; header;
            ingress = ingresses.(flow_id mod Array.length ingresses);
            start = now; packets = 1; interval = 1e-4 }
        in
        gen (flow :: acc) now (flow_id + 1)
    in
    gen [] 0. 0

  let run ?(seed = 42) spec =
    if spec.spokes < 3 then invalid_arg "E_scale.run: spokes < 3";
    Flowsim.run_sharded
      { Flowsim.Config.default with domains = spec.domains }
      ~shards:spec.shards
      ~deployment:(shard_deployment ~seed spec)
      ~flows:(shard_flows ~seed spec)

  (* Canonical fingerprint of a result — every field, including the raw
     per-flow sample arrays, so two runs agree iff they are
     byte-identical.  Results are pure data (no closures), so Marshal is
     a stable canonical form. *)
  let digest (r : Flowsim.result) =
    Digest.to_hex (Digest.string (Marshal.to_string r []))

  (* The scale-experiment claims [difane scale --check] enforces.  The
     magnitude floors only make sense for the full spec; a quick run
     ([floors:false]) still checks the conservation invariants. *)
  let check ?(floors = true) spec (r : Flowsim.result) =
    List.filter_map
      (fun (ok, msg) -> if ok then None else Some msg)
      ([
         (r.Flowsim.offered_flows = spec.shards * spec.flows_per_shard,
          "offered flow count does not match the spec");
         (r.Flowsim.completed_flows + r.Flowsim.dropped_flows
          = r.Flowsim.offered_flows,
          "flows leaked: completed + dropped <> offered");
         (r.Flowsim.setup_throughput > 0., "zero setup throughput");
         (r.Flowsim.first_packet_delay <> None, "no first-packet delays recorded");
       ]
      @
      if floors then
        [
          (r.Flowsim.offered_flows >= 1_000_000,
           "fewer than one million flows offered");
          (switches spec >= 200, "fewer than 200 switches deployed");
        ]
      else [])

  let print spec (r : Flowsim.result) =
    Table.print ~title:"E-SCALE: sharded ingress simulation"
      ~header:[ "metric"; "value" ]
      [
        [ "shards"; string_of_int spec.shards ];
        [ "switches"; string_of_int (switches spec) ];
        [ "domains"; string_of_int spec.domains ];
        [ "offered flows"; string_of_int r.Flowsim.offered_flows ];
        [ "completed flows"; string_of_int r.Flowsim.completed_flows ];
        [ "dropped flows"; string_of_int r.Flowsim.dropped_flows ];
        [ "delivered packets"; string_of_int r.Flowsim.delivered_packets ];
        [ "cache-hit packets"; string_of_int r.Flowsim.cache_hit_packets ];
        [ "setup throughput"; Table.fmt_si r.Flowsim.setup_throughput ^ " flows/s" ];
        (match r.Flowsim.first_packet_delay with
        | None -> [ "first-packet delay"; "-" ]
        | Some s ->
            [ "first-packet delay";
              Printf.sprintf "p50 %.0f us, p99 %.0f us" (1e6 *. s.Summary.p50)
                (1e6 *. s.Summary.p99) ]);
        [ "digest"; digest r ];
      ]
end

(* ------------------------------------------------------------------ *)

let run_all ?(seed = 42) ?(quick = false) () =
  T1.print (T1.run ~seed ~quick ());
  F_tput.print (F_tput.run ~seed ~quick ());
  F_scale.print (F_scale.run ~seed ~quick ());
  F_delay.print (F_delay.run ~seed ~quick ());
  F_part.print (F_part.run ~seed ~quick ());
  F_miss.print (F_miss.run ~seed ~quick ());
  F_stretch.print (F_stretch.run ~seed ~quick ());
  F_dyn.print (F_dyn.run ~seed ~quick ());
  A_cut.print (A_cut.run ~seed ~quick ());
  A_splice.print (A_splice.run ~seed ~quick ());
  E_ctrl.print (E_ctrl.run ~seed ~quick ());
  E_cache.print (E_cache.run ~seed ~quick ());
  E_chaos.print (E_chaos.run ~seed ~quick ());
  E_ha.print (E_ha.run ~seed ~quick ());
  E_mon.print (E_mon.run ~seed ~quick ())

(** The paper's evaluation, experiment by experiment.

    Each submodule reproduces one table or figure of {e Scalable
    Flow-Based Networking with DIFANE} (SIGCOMM 2010) on the simulated
    substrate (see DESIGN.md §2 for the substitution table and §4 for the
    experiment index).  Every [run] is deterministic given its [seed];
    [quick] shrinks workload sizes for use in the test suite.  [print]
    renders the same rows the bench harness and EXPERIMENTS.md use. *)

(** Table 1 — characteristics of the evaluation rule sets. *)
module T1 : sig
  type row = {
    label : string;
    description : string;
    rules : int;
    fields : int;
    depth : int;  (** longest priority-dependency chain *)
    overlaps : int;  (** overlapping rule pairs *)
  }

  val run : ?seed:int -> ?quick:bool -> unit -> row list
  val print : row list -> unit
end

(** Fig. "Throughput of flow setup": DIFANE (1 authority switch) vs NOX,
    achieved setup throughput as the offered rate of single-packet flows
    sweeps past both systems' capacities. *)
module F_tput : sig
  type point = {
    offered_rate : float;
    difane : Flowsim.result;
    nox : Flowsim.result;
  }

  val run : ?seed:int -> ?quick:bool -> unit -> point list
  val print : point list -> unit
end

(** Fig. "Throughput with multiple authority switches": peak setup
    throughput as authority switches scale 1→4 (near-linear). *)
module F_scale : sig
  type point = { authority_switches : int; throughput : float; per_switch : float }

  val run : ?seed:int -> ?quick:bool -> unit -> point list
  val print : point list -> unit
end

(** Fig. "First-packet delay CDF": DIFANE's extra data-plane hop vs NOX's
    controller round trip, at low load. *)
module F_delay : sig
  type t = {
    difane_delays : Cdf.t;
    nox_delays : Cdf.t;
    difane_median : float;
    nox_median : float;
    ratio : float;  (** nox median / difane median *)
  }

  val run : ?seed:int -> ?quick:bool -> unit -> t
  val print : t -> unit
end

(** Fig. "TCAM entries vs number of authority switches": partitioning
    overhead for each Table-1 rule set. *)
module F_part : sig
  type point = {
    label : string;
    k : int;
    max_entries : int;  (** biggest per-authority table *)
    total_entries : int;
    duplication : float;
  }

  val run : ?seed:int -> ?quick:bool -> unit -> point list
  val print : point list -> unit
end

(** Fig. "Cache miss rate vs cache size": spliced wildcard caching vs
    microflow caching under Zipf traffic. *)
module F_miss : sig
  type point = {
    alpha : float;
    cache_size : int;
    wildcard_miss_rate : float;
    wildcard_opt_miss_rate : float;  (** Belady floor for the same keys *)
    microflow_miss_rate : float;
  }

  val run : ?seed:int -> ?quick:bool -> unit -> point list
  val print : point list -> unit
end

(** Fig. "Stretch CDF": the detour of miss packets through their authority
    switch under three placement strategies. *)
module F_stretch : sig
  type series = { placement : string; stretch : Cdf.t; mean : float; p95 : float }

  val run : ?seed:int -> ?quick:bool -> unit -> series list
  val print : series list -> unit
end

(** Fig./§ "Network dynamics": after a policy change, how long stale
    cached decisions linger as a function of the cache idle timeout
    (lazy expiry), and that strict flushing removes them entirely. *)
module F_dyn : sig
  type mode =
    | Lazy_expiry  (** stale entries drain via their hard timeout *)
    | Strict_flush  (** the update flushes every reactive entry *)
    | Targeted  (** only entries spliced from changed rules are deleted *)

  type point = {
    timeout : float;  (** cache hard timeout: the lazy mode's staleness bound *)
    mode : mode;
    stale_packets : int;  (** packets served with the old policy's action *)
    post_update_packets : int;
    stale_fraction : float;
    stale_window : float;  (** time of last stale packet after the update *)
    invalidated : int;  (** cache entries removed by a targeted update *)
    preserved : int;  (** cache entries that survived a targeted update *)
  }

  val run : ?seed:int -> ?quick:bool -> unit -> point list
  val print : point list -> unit
end

(** Ablation: the best-cut split heuristic vs always cutting one fixed
    dimension (an informed choice, src_ip, and a poor one, proto). *)
module A_cut : sig
  type point = {
    k : int;
    best_max : int;
    best_total : int;
    src_max : int;  (** always cutting src_ip — an informed fixed choice *)
    src_total : int;
    proto_max : int;  (** always cutting proto — a poor fixed choice *)
    proto_total : int;
  }

  val run : ?seed:int -> ?quick:bool -> unit -> point list
  val print : point list -> unit
end

(** Ablation: spliced cache cost vs CacheFlow-style dependent-set cost,
    per cached rule, on a deep-chain ACL. *)
module A_splice : sig
  type t = {
    rules_sampled : int;
    splice_mean : float;
    splice_p95 : float;
    dependent_mean : float;
    dependent_p95 : float;
    worst_dependent : int;
    worst_splice : int;
  }

  val run : ?seed:int -> ?quick:bool -> unit -> t
  val print : t -> unit
end

(** Supplementary: control-plane overhead of a DIFANE deployment — the
    proactive install cost, the steady-state keepalive/statistics load,
    and the cost of a full policy update, all measured in encoded control
    frames and bytes. *)
module E_ctrl : sig
  type row = { scenario : string; frames : int; bytes : int }

  val run : ?seed:int -> ?quick:bool -> unit -> row list
  val print : row list -> unit
end

(** Supplementary: how the ingress cache budget shifts load off the
    authority switches — hit rate and authority-served misses as the
    cache size sweeps, under fixed Zipf traffic.  Each capacity now runs
    two arms on the identical workload: the seed install path and the
    aggregation pipeline ({!Aggregate.enabled_default}: subsumption
    suppression, buddy merging, cover sets), reporting the TCAM writes
    each needed and the hit rate each achieved. *)
module E_cache : sig
  type point = {
    cache_size : int;
    hit_rate : float;  (** fraction of packets served by ingress caches *)
    authority_load : float;  (** misses per offered packet *)
    evictions : int64;  (** LRU victims — capacity pressure only *)
    expirations : int64;  (** idle/hard timeouts — churn, counted apart *)
    installed_rules : int64;  (** cumulative TCAM writes, seed path *)
    agg_hit_rate : float;  (** hit rate with aggregation on *)
    agg_installed_rules : int64;  (** TCAM writes with aggregation on *)
    compression : float;
        (** 1 - aggregated/seed installs: fraction of writes saved *)
  }

  val run : ?seed:int -> ?quick:bool -> unit -> point list
  val print : point list -> unit
end

(** Supplementary: the chaos sweep — frame loss rate vs recovery.  Each
    point replays the same seeded scenario (two of three authority
    switches crash mid-run and later restart, traffic probes before,
    during and after) over control channels that drop, duplicate,
    corrupt and reorder frames at the given rate, and reports the
    failure-detection and resync-convergence times, the retransmission
    work, the degraded (controller-served) misses while no replica was
    alive, and whether the final state recovered exactly.  The 10%-loss
    point is replayed end to end to verify seed-for-seed
    reproducibility. *)
module E_chaos : sig
  type row = {
    loss : float;
    dropped : int;  (** frames lost in flight (injector + downed links) *)
    corrupted : int;
    decode_errors : int;
    retransmissions : int;
    giveups : int;
    detect_time : float;  (** crash -> declared dead (echo detection) *)
    converge_time : float;  (** last restart -> no pending requests *)
    degraded : int;  (** misses served by the controller fallback *)
    recovered : bool;  (** semantics intact and nothing pending at the end *)
    replay_identical : bool;  (** same seed reproduced the same event log *)
  }

  val run :
    ?seed:int ->
    ?quick:bool ->
    ?congestion:Congestion.config ->
    ?echo_interval:float ->
    ?retx_timeout:float ->
    ?retx_backoff:float ->
    ?retx_limit:int ->
    unit ->
    row list
  (** The reliability timers default to the chaos tuning (1 s echoes,
      retransmit after 50 ms doubling up to 8 attempts) and are the knobs
      the CLI's [--echo-interval]/[--retx-*] flags thread through.
      [congestion] (default {!Congestion.default}, everything off)
      re-runs the scenario on a finite-buffer data plane — the published
      numbers assume the legacy infinite-buffer plane. *)

  val replay_one :
    ?seed:int ->
    ?quick:bool ->
    ?loss:float ->
    ?congestion:Congestion.config ->
    ?echo_interval:float ->
    ?retx_timeout:float ->
    ?retx_backoff:float ->
    ?retx_limit:int ->
    unit ->
    unit
  (** Run a single scenario (default: the 10% loss point) for its side
      effects on the telemetry registry and trace ring — what
      [difane trace] calls with {!Telemetry.Trace} enabled. *)

  val print : row list -> unit
end

(** Supplementary: the controller high-availability sweep.  One seeded
    scenario per loss rate: a 3-replica controller cluster deploys,
    two authority switches crash, and mid-way through pushing a policy
    update the leader process dies — a standby rebuilds the deployment
    from the shared journal (snapshot + replay) and takes over at epoch
    2.  After the switches restart and the crashed controller returns,
    the {e new} leader is partitioned away: the next election seats
    epoch 3 while the isolated leader keeps mastering until the
    switches' epoch fencing deposes it (split brain).  Reported per
    point: both takeover latencies, journal entries replayed and
    snapshots taken, the duplicate-install and stale-epoch audits (both
    must show zero accepted), fenced journal appends, degraded misses,
    and whether the same seed replays bit-identically (event log +
    journal bytes, checked at the 10% point). *)
module E_ha : sig
  type row = {
    loss : float;
    dropped : int;
    retransmissions : int;
    giveups : int;
    takeover1 : float;  (** leader crash -> standby seated (s) *)
    takeover2 : float;  (** leader isolated -> next leader seated (s) *)
    replayed : int;  (** journal entries replayed across both takeovers *)
    snapshots : int;
    dup_installs : int;  (** duplicate ids across all switch banks; must be 0 *)
    stale_rejected : int;  (** stale-epoch frames the switches fenced *)
    stale_accepted : int;  (** fencing violations; must be 0 *)
    fenced_appends : int;  (** journal writes refused from stale leaders *)
    degraded : int;
    recovered : bool;
    replay_identical : bool;
  }

  val run :
    ?seed:int ->
    ?quick:bool ->
    ?congestion:Congestion.config ->
    ?echo_interval:float ->
    ?retx_timeout:float ->
    ?retx_backoff:float ->
    ?retx_limit:int ->
    unit ->
    row list

  val replay_one :
    ?seed:int ->
    ?quick:bool ->
    ?loss:float ->
    ?congestion:Congestion.config ->
    ?echo_interval:float ->
    ?retx_timeout:float ->
    ?retx_backoff:float ->
    ?retx_limit:int ->
    unit ->
    unit
  (** Run a single HA scenario for its trace/registry side effects. *)

  val print : row list -> unit
end

(** Supplementary: the incast/overload sweep behind the congestion
    model.  Eight ingresses fan distinct-flow misses into a single
    authority switch over links that serialize one packet per 100 µs —
    the authority's inbound port and its setup queue saturate together
    near 10k flows/s.  Each offered rate replays the identical seeded
    workload twice: under drop-tail port buffers (misses shed at the
    full buffer) and under credit-based flow control (saturation
    backpressures the ingresses, which defer re-splicing and take the
    slower lossless controller path).  The loss-vs-latency curves are
    the tentpole's graceful-degradation evidence; [check] encodes the
    claims the CLI's [--check] flag enforces.  Not part of {!run_all} —
    it exercises the congestion model that every legacy experiment must
    run without. *)
module E_incast : sig
  type row = {
    offered_rate : float;  (** offered distinct-flow arrival rate, flows/s *)
    mode : string;  (** ["drop-tail"] or ["credit"] *)
    result : Flowsim.result;
  }

  val run : ?seed:int -> ?quick:bool -> unit -> row list

  val check : row list -> string list
  (** Graceful-degradation invariants at the sweep's top (saturating)
      rate: drop-tail actually shed at a port buffer, credit mode
      actually backpressured, and credit mode both dropped a strictly
      smaller fraction of flows and completed strictly more than
      drop-tail.  Returns the violated claims, [[]] when all hold. *)

  val print : row list -> unit
end

(** Supplementary: flow-level monitoring on a skewed Zipf workload.  A
    star of edge switches feeds three authority switches through small
    ingress caches, so the hot rules' regions keep missing and the
    authority that owns them runs hot.  The run is monitored end to end
    ({!Monitor}): it reports the top heavy-hitter rules with their
    provenance chains (policy rule → partition → authority switch),
    dead rules, per-region cache efficacy, the per-authority load
    timeline and every hotspot window flagged — then replays the same
    seed and checks the exported [difane-flows-v1] document is
    bit-identical. *)
module E_mon : sig
  type report = {
    packets : int;
    hit_rate : float;
    sampled : int;  (** packets the flow sampler saw *)
    exported : int;  (** flow records exported *)
    heavy : Monitor.rule_report list;  (** top 5 by total hits *)
    dead : int;  (** policy rules never hit *)
    regions : Monitor.region_report list;
    hotspot_windows : int;  (** sampler windows with a flagged authority *)
    worst : Hotspot.event option;
    replay_identical : bool;  (** flow export bit-identical across replays *)
  }

  val run_monitored :
    ?seed:int ->
    ?quick:bool ->
    ?alpha:float ->
    ?sample_rate:int ->
    ?interval:float ->
    ?threshold:float ->
    ?top_k:int ->
    unit ->
    Monitor.t * Flowsim.result
  (** One monitored run of the scenario — the hook [difane monitor]
      drives directly, with the monitor left full of the run's data. *)

  val run : ?seed:int -> ?quick:bool -> unit -> report
  val print : report -> unit
end

(** Supplementary: closed-loop adaptive repartitioning under a flash
    crowd.  At t=3 s a sustained crowd confined to one flowspace region
    offers 1.5x its authority's setup capacity; the region's tail
    first-packet delay grows without bound.  Three runs of the identical
    seeded workload: a static baseline (no rebalancing, never recovers),
    an adaptive run (the cluster's hotspot detector re-cuts the hot
    region and migrates the split-off half via the staged journaled
    protocol; the tail drains back under 2x the pre-crowd baseline), and
    a master-crash run (the leader dies between the migration's flip and
    commit; the elected replica replays the journal and finishes the
    retirement with every gate still green).  [check] encodes the claims
    [difane rebalance --check] enforces.  Not part of {!run_all}. *)
module E_rebalance : sig
  type row = {
    label : string;  (** ["static"], ["adaptive"] or ["adaptive+crash"] *)
    offered : int;
    completed : int;
    dropped : int;
    baseline_p99 : float;  (** pre-crowd window *)
    crowd_p99 : float;  (** during the crowd, before recovery *)
    final_p99 : float;  (** last window of the run *)
    recovered : bool;  (** [final_p99 < 2 * baseline_p99] *)
    migrations_started : int;
    migrations_committed : int;
    migrations_aborted : int;
    rules_moved : int;
    takeovers : int;
    dup_installs : int;  (** duplicate ids across switch banks; must be 0 *)
    stale_accepted : int;  (** epoch-fencing violations; must be 0 *)
    pending : int;  (** unacknowledged control requests after the drain *)
    violations : string list;  (** per-run invariant failures; [] = green *)
    replay_identical : bool;  (** same-seed rerun bit-identical (adaptive row) *)
  }

  val run :
    ?seed:int ->
    ?quick:bool ->
    ?hotspot_threshold:float ->
    ?hotspot_window:int ->
    unit ->
    row list
  (** [hotspot_threshold] (default 2.0) and [hotspot_window] (default 3)
      are the adaptive controller's detection knobs
      ({!Control_plane.config}). *)

  val replay_one :
    ?seed:int ->
    ?quick:bool ->
    ?hotspot_threshold:float ->
    ?hotspot_window:int ->
    unit ->
    unit
  (** Run just the adaptive scenario once — the tracing target
      [difane paths --scenario rebalance] replays with postcard
      recording enabled. *)

  val check : row list -> string list
  (** Violated claims across the three rows ([[]] when all hold): every
      per-run invariant, the static baseline {e not} recovering, and the
      adaptive run replaying bit-identically. *)

  val print : row list -> unit
end

(** Supplementary: multicore ingress sharding at scale.  The network
    decomposes into independent authority stars (one per shard, no
    cross-shard links), each replaying its own seeded workload on its own
    engine via {!Flowsim.run_sharded}; the default spec offers over a
    million flows across 256 switches.  The decomposition is a function
    of the shard index alone and shards merge in index order, so the
    merged result — and hence {!E_scale.digest} — is byte-identical at
    any domain count.  Not part of {!run_all}; driven by [difane scale]
    and the CI scale-smoke job. *)
module E_scale : sig
  type spec = {
    shards : int;
    spokes : int;  (** per-shard star spokes; switches = shards * (spokes + 1) *)
    flows_per_shard : int;
    domains : int;  (** worker domains for {!Flowsim.run_sharded} *)
  }

  val default_spec : spec
  (** 32 shards of 8 switches (256 switches), 32768 flows each
      (1,048,576 flows), one domain. *)

  val quick_spec : spec
  (** Small enough for unit tests (8 shards of 4 switches, 512 flows
      each), same decomposition shape. *)

  val switches : spec -> int

  val run : ?seed:int -> spec -> Flowsim.result
  (** @raise Invalid_argument if [spec.spokes < 3] (a shard needs a hub,
      an authority and at least one ingress). *)

  val digest : Flowsim.result -> string
  (** Canonical fingerprint covering every result field including the raw
      per-flow sample arrays: two runs agree iff byte-identical. *)

  val check : ?floors:bool -> spec -> Flowsim.result -> string list
  (** Violated scale claims ([[]] when all hold): the spec's flow count
      was offered, no flow leaked, nonzero throughput, delays recorded —
      plus, with [floors] (the default), at least one million flows and
      200 switches.  Pass [~floors:false] for quick-spec runs. *)

  val print : spec -> Flowsim.result -> unit
end

val run_all : ?seed:int -> ?quick:bool -> unit -> unit
(** Run and print every experiment in DESIGN.md order. *)

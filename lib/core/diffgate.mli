(** Differential equivalence gate: aggregation must not change forwarding.

    Cache-rule aggregation ({!Aggregate}) compresses what the ingress
    TCAMs hold — buddy-merged wildcards, suppressed subsumed installs,
    cover sets — but a packet's fate must be bit-identical with the
    feature on or off.  This gate builds twin deployments differing only
    in [config.aggregation], drives both with identical randomized
    policies, packet streams and cache-management interleavings (idle
    expiry, full flushes, targeted origin invalidation), and compares
    every packet's forwarding action, plus end-of-case
    {!Deployment.semantically_equal} probes against the warm caches.

    Exposed as [difane aggregate]; [--check] exits nonzero unless
    {!passed}, which is what the CI aggregate-smoke job runs. *)

type mismatch = {
  case : int;
  step : int;  (** packet index within the case's stream *)
  header : Header.t;
  plain : Action.t;  (** what the aggregation-off deployment did *)
  aggregated : Action.t;  (** what the aggregation-on deployment did *)
}

type report = {
  cases : int;
  packets : int;  (** packets compared across all cases *)
  mismatch_count : int;
  mismatches : mismatch list;  (** first few, for diagnosis *)
  semantic_failures : int;
      (** warm-cache probe sets where some header's action diverged from
          the policy's (either arm) *)
  merges : int;  (** aggregated arm: buddy-union steps *)
  suppressed : int;  (** aggregated arm: installs skipped as subsumed *)
  cover_installs : int;  (** aggregated arm: cover-set member installs *)
  agg_installs : int;  (** aggregated arm: entries actually written *)
}

val passed : report -> bool
(** No action mismatches and no semantic-probe failures. *)

val run : ?seed:int -> ?cases:int -> ?packets_per_case:int -> unit -> report
(** Run the gate.  Deterministic given [seed].  Each case draws a fresh
    policy (alternating ACL and prefix-table generators, varying rule
    counts and chain depths), a fresh Zipf packet stream, and a cache
    capacity from a small/medium/large rotation so both eviction-heavy
    and resident regimes are covered.  Defaults: 8 cases of 400 packets. *)

val print : report -> unit
(** Human-readable summary; lists the first few mismatches if any. *)

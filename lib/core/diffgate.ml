(* Differential equivalence gate for cache-rule aggregation.

   Aggregation (Aggregate) may only change *which entries* sit in the
   ingress TCAMs — never what happens to a packet.  This module is the
   executable form of that claim: build two deployments identical in
   every respect except [config.aggregation], drive both with the same
   randomized policies, packet streams and cache-management operations
   (expiry, flush, targeted invalidation), and demand bit-identical
   forwarding actions packet by packet.  `difane aggregate --check`
   (and the CI aggregate-smoke job) exit nonzero on any divergence. *)

type mismatch = {
  case : int;
  step : int;
  header : Header.t;
  plain : Action.t;
  aggregated : Action.t;
}

type report = {
  cases : int;
  packets : int;
  mismatch_count : int;
  mismatches : mismatch list;  (* first few, for diagnosis *)
  semantic_failures : int;
  merges : int;
  suppressed : int;
  cover_installs : int;
  agg_installs : int;
}

let passed r = r.mismatch_count = 0 && r.semantic_failures = 0

(* Vary the policy shape across cases so the gate covers both generators
   and a range of dependency-chain depths. *)
let policy_for rng case =
  if case mod 3 = 2 then
    Policy_gen.prefix_table rng
      { Policy_gen.default_prefixes with
        prefixes = 60 + (20 * (case mod 4));
        egresses = 4 (* the 4-node line topology below *) }
  else
    Policy_gen.acl rng
      {
        Policy_gen.default_acl with
        rules = 60 + (30 * (case mod 4));
        chain_depth = 3 + (case mod 4);
        chains = 6;
      }

(* Small capacities force evictions (and cover-set thrash), large ones a
   mostly-resident cache; both must stay equivalent. *)
let capacities = [| 4; 16; 64; 256 |]

let run ?(seed = 42) ?(cases = 8) ?(packets_per_case = 400) () =
  let mismatch_count = ref 0 in
  let mismatches = ref [] in
  let semantic_failures = ref 0 in
  let total_packets = ref 0 in
  let merges = ref 0 in
  let suppressed = ref 0 in
  let cover_installs = ref 0 in
  let agg_installs = ref 0 in
  for case = 0 to cases - 1 do
    let rng = Prng.create (seed + (31 * case)) in
    let policy = policy_for (Prng.split rng) case in
    let topology = Topology.line 4 () in
    let arm aggregation =
      let config =
        {
          Deployment.default_config with
          k = 8;
          cache_capacity = capacities.(case mod Array.length capacities);
          cache_idle_timeout = Some 0.05;
          aggregation;
        }
      in
      Deployment.build ~config ~policy ~topology ~authority_ids:[ 1; 2 ] ()
    in
    let plain = arm Aggregate.default in
    let agg = arm Aggregate.enabled_default in
    let flows =
      Traffic.generate
        (Prng.create (seed + (7 * case) + 1))
        policy
        {
          Traffic.default with
          flows = packets_per_case;
          rate = 10_000.;
          distinct_headers = 40 + (20 * case);
          packets_per_flow_mean = 2.0;
          ingresses = [ 0 ];
        }
    in
    let stream = Cachesim.packet_stream flows in
    let steps = min (Array.length stream) packets_per_case in
    for step = 0 to steps - 1 do
      let h = stream.(step) in
      let now = float_of_int step /. 2_000. in
      (* Interleave the cache-management operations a live deployment
         performs, identically on both arms, so equivalence holds across
         expiry/flush/invalidation races, not just a cold-to-warm run. *)
      if step mod 97 = 96 then begin
        ignore (Deployment.expire_caches plain ~now);
        ignore (Deployment.expire_caches agg ~now)
      end;
      if step mod 149 = 148 then begin
        let pred o = o mod 5 = case mod 5 in
        ignore (Deployment.invalidate_origins ~now plain ~origins:pred);
        ignore (Deployment.invalidate_origins ~now agg ~origins:pred)
      end;
      if step mod 233 = 232 then begin
        Deployment.flush_caches plain;
        Deployment.flush_caches agg
      end;
      let o0 = Deployment.inject plain ~now ~ingress:0 h in
      let o1 = Deployment.inject agg ~now ~ingress:0 h in
      incr total_packets;
      if not (Action.equal o0.Deployment.action o1.Deployment.action) then begin
        incr mismatch_count;
        if List.length !mismatches < 5 then
          mismatches :=
            {
              case;
              step;
              header = h;
              plain = o0.Deployment.action;
              aggregated = o1.Deployment.action;
            }
            :: !mismatches
      end
    done;
    (* End-of-case probe: with the caches warm (merged entries resident),
       every header must still get exactly the policy's action. *)
    let probes =
      Array.to_list (Traffic.headers_for (Prng.split rng) policy 64)
    in
    if not (Deployment.semantically_equal agg probes) then incr semantic_failures;
    if not (Deployment.semantically_equal plain probes) then incr semantic_failures;
    let s = Deployment.aggregate_stats agg in
    merges := !merges + s.Aggregate.merges;
    suppressed := !suppressed + s.Aggregate.suppressed;
    cover_installs := !cover_installs + s.Aggregate.cover_installs;
    agg_installs := !agg_installs + s.Aggregate.installs
  done;
  {
    cases;
    packets = !total_packets;
    mismatch_count = !mismatch_count;
    mismatches = List.rev !mismatches;
    semantic_failures = !semantic_failures;
    merges = !merges;
    suppressed = !suppressed;
    cover_installs = !cover_installs;
    agg_installs = !agg_installs;
  }

let print r =
  Format.printf "aggregation differential gate: %d cases, %d packets@."
    r.cases r.packets;
  Format.printf
    "  aggregated arm: %d installs, %d merges, %d suppressed, %d cover installs@."
    r.agg_installs r.merges r.suppressed r.cover_installs;
  List.iter
    (fun m ->
      Format.printf "  MISMATCH case %d step %d: %a  plain=%s aggregated=%s@."
        m.case m.step Header.pp m.header
        (Action.to_string m.plain)
        (Action.to_string m.aggregated))
    r.mismatches;
  if r.mismatch_count > List.length r.mismatches then
    Format.printf "  ... and %d more mismatches@."
      (r.mismatch_count - List.length r.mismatches);
  if r.semantic_failures > 0 then
    Format.printf "  %d semantic-equivalence probe failures@." r.semantic_failures;
  if passed r then
    Format.printf "  PASS: forwarding is bit-identical with aggregation on@."
  else
    Format.printf "  FAIL: %d mismatches, %d semantic failures@."
      r.mismatch_count r.semantic_failures

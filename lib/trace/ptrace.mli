(** Causal packet-path tracing: postcard rings.

    NetSight-style packet histories for the DIFANE planes: every hop
    event a packet causes — ingress TCAM verdict (with the matched rule
    id and its provenance), tunnel transit, authority redirect,
    cache-rule install/replace/invalidate, controller fallback,
    congestion drop/ECN/backpressure — appends one fixed-width,
    int-packed {e postcard} to a bounded ring.  {!Paths} reconstructs
    per-packet paths from the rings and checks the causal invariants;
    [difane paths] queries them.

    Engineering constraints, matching the PR-8 hot-path standard:

    - {b zero-allocation emission}: a ring is a structure of scalar
      arrays (time, kind, switch, rule, aux, packet id, packed 5-tuple
      key); {!emit} writes eight lanes in place.  Disabled, an emission
      site is one atomic load and a branch — cheap enough to compile
      into every verdict dispatch and port booking in the tree;
    - {b deterministic sharded merge}: under {!Flowsim.run_sharded}
      each shard {!bind}s its own ring, and the read side concatenates
      rings in {e shard-index order} — the PR-8 engine merge rule — so
      the reconstructed paths (and their JSON) are byte-identical at
      any domain count;
    - {b bounded memory}: rings overwrite oldest-first; {!overwritten}
      reports how much history was lost so the checker can refuse to
      judge truncated paths.

    Emission context is domain-local: a simulator {!bind}s a shard ring
    once per run and {!begin_packet}/{!resume_packet} stamp the current
    packet id and 5-tuple key, so the switch, congestion and data-plane
    layers emit without any API threading.  Unbound domains fall back
    to ring 0 — the single-domain default.  Tracing is off by default
    and meant to be toggled outside runs, from the domain that spawns
    the workers. *)

(** What happened at this hop.  The [rule]/[aux] lanes are
    kind-specific; see the emission sites. *)
type kind =
  | Cache_hit  (** ingress cache-bank hit; rule = cache rule id, aux = packed provenance *)
  | Authority_hit  (** authority-bank local hit; rule = policy rule id *)
  | Miss  (** partition-bank tunnel verdict; aux = nominal authority switch *)
  | Transit  (** one forwarded hop; switch = node entered, aux = 1 if ECN-marked *)
  | Authority_serve  (** authority spliced the miss; rule = origin rule id, aux = pid *)
  | Install  (** cache rule installed; rule = cache rule id, aux = packed provenance *)
  | Replace  (** cache entry displaced; rule = victim id, aux = {!replace_evicted}.. *)
  | Invalidate  (** cache entry scrubbed; rule = victim id, aux = {!invalidate_migration}.. *)
  | Controller  (** controller fallback served the packet; aux = 0 failure, 1 backpressure *)
  | Backpressure  (** credit low-water deferral; switch = saturated authority *)
  | Ecn  (** congestion model marked the packet; switch = port's from-node, aux = depth *)
  | Queue_drop  (** congestion model shed the packet at a port buffer; switch = from-node *)
  | Drop  (** terminal: packet dropped; aux = a [drop_*] reason code *)
  | Deliver  (** terminal: packet delivered; switch = egress, aux = 1 if cache hit *)

val kind_name : kind -> string
(** Lower-snake name, e.g. ["authority_serve"] — the JSON spelling. *)

(** {1 Reason codes} *)

(** [aux] codes of {!Drop} postcards. *)

val drop_unmatched : int
val drop_misconfigured : int
val drop_ttl : int
val drop_unreachable : int
val drop_no_authority : int
val drop_queue_full : int
val drop_rejected : int
(** the setup queue (authority or controller server) refused the miss *)

val drop_outage : int
(** no live controller replica behind a failed/backpressured miss *)

val drop_reason_name : int -> string

(** [aux] codes of {!Replace} postcards. *)

val replace_evicted : int

val replace_displaced : int
(** a same-id reinstall displaced the entry *)

val replace_idle : int
val replace_hard : int

(** [aux] codes of {!Invalidate} postcards. *)

val invalidate_migration : int

val invalidate_delete : int
(** an explicit control-plane cache delete *)

val invalidate_cover_orphan : int
(** a surviving cover-set member scrubbed because its group lost a member
    (cover sets are only sound while complete) *)

(** {1 Provenance packing} *)

val pack_provenance : origin:int -> pid:int -> int
(** The [(origin rule, partition id)] pair of {!Cache_hit}/{!Install}
    postcards, packed into one lane ([-1] = unknown, packs with [-1]
    for both to [0]).  Both components must fit 21 bits — policy rule
    ids and pids do by construction. *)

val provenance_origin : int -> int
val provenance_pid : int -> int

(** {1 Recording} *)

val enable : ?capacity:int -> unit -> unit
(** Start recording into fresh rings ([capacity] postcards per shard
    ring, default 65536) and clear this domain's binding.
    @raise Invalid_argument if [capacity < 1]. *)

val disable : unit -> unit
(** Stop recording (rings stay readable) and fold the postcard tallies
    into the [ptrace_postcards]/[ptrace_overwritten] registry counters. *)

val enabled : unit -> bool

val bind : shard:int -> unit
(** Route this domain's emissions to [shard]'s ring (created on first
    use).  No-op when disabled.  A sharded simulator calls this at the
    top of each shard's run; shard indices must be distinct across
    concurrent binds — one writer per ring. *)

val unbind : unit -> unit
(** Drop this domain's binding and mirror the bound ring's tallies into
    the registry counters. *)

(** {1 Emission} *)

val begin_packet : float -> Header.t -> int
(** [begin_packet at h]: allocate the next packet id in the bound ring
    and stamp the context (packet id + packed 5-tuple key) subsequent
    {!emit}s attribute to.  Returns the id ([-1] when disabled) for
    {!resume_packet}.  [at] is accepted for symmetry and future use;
    postcards carry their own times. *)

val begin_packet_key : float -> lo:int -> hi:int -> int
(** {!begin_packet} for callers that identify packets by a bare packed
    key instead of a {!Header.t} (the standalone cache simulator keys
    its stream by small ints). *)

val resume_packet : pkt:int -> Header.t -> unit
(** Restore the packet context inside a deferred continuation (event
    callbacks interleave packets, so each callback re-stamps before
    emitting).  No-op when disabled. *)

val emit : at:float -> kind -> switch:int -> rule:int -> aux:int -> unit
(** Append one postcard for the current packet context.  Disabled: one
    load and a branch.  Enabled: eight scalar stores, no allocation. *)

val emit_control : at:float -> kind -> switch:int -> rule:int -> aux:int -> unit
(** A control-plane postcard (packet id [-1], no key): cache scrubs,
    expiry, control-pushed installs — events not caused by the packet
    currently in context. *)

(** {1 Read-back} *)

type postcard = {
  at : float;  (** simulated seconds *)
  shard : int;
  pkt : int;  (** per-shard packet id; [-1] = control plane *)
  kind : kind;
  switch : int;
  rule : int;
  aux : int;
  key_lo : int;  (** packed 5-tuple key lanes ({!Header.key_lo}) *)
  key_hi : int;
}

val postcards : unit -> postcard array
(** Every surviving postcard: rings in shard-index order, each ring
    oldest-first — the deterministic merge. *)

val emitted : unit -> int
(** Postcards emitted since {!enable}, across all rings, including any
    the rings have overwritten. *)

val overwritten : unit -> int
(** Postcards lost to ring wraparound, across all rings. *)

val shard_wrapped : int -> bool
(** Did [shard]'s ring overwrite anything?  (False for unknown shards.) *)

val clear : unit -> unit
(** Empty every ring (bindings and capacity survive). *)

(* Postcard rings.  One ring per shard, one writer per ring: the
   simulator binds a shard's ring to the domain running it, so emission
   is plain (unsynchronised) stores into that ring's scalar lanes.  The
   only shared state is the ring registry itself (mutated under a lock
   at bind/enable time, never per postcard) and the global on/off flag
   (an atomic read per emission site — the entire cost when tracing is
   off). *)

type kind =
  | Cache_hit
  | Authority_hit
  | Miss
  | Transit
  | Authority_serve
  | Install
  | Replace
  | Invalidate
  | Controller
  | Backpressure
  | Ecn
  | Queue_drop
  | Drop
  | Deliver

let kind_code = function
  | Cache_hit -> 0
  | Authority_hit -> 1
  | Miss -> 2
  | Transit -> 3
  | Authority_serve -> 4
  | Install -> 5
  | Replace -> 6
  | Invalidate -> 7
  | Controller -> 8
  | Backpressure -> 9
  | Ecn -> 10
  | Queue_drop -> 11
  | Drop -> 12
  | Deliver -> 13

let kind_of_code = function
  | 0 -> Cache_hit
  | 1 -> Authority_hit
  | 2 -> Miss
  | 3 -> Transit
  | 4 -> Authority_serve
  | 5 -> Install
  | 6 -> Replace
  | 7 -> Invalidate
  | 8 -> Controller
  | 9 -> Backpressure
  | 10 -> Ecn
  | 11 -> Queue_drop
  | 12 -> Drop
  | 13 -> Deliver
  | c -> invalid_arg (Printf.sprintf "Ptrace.kind_of_code: %d" c)

let kind_name = function
  | Cache_hit -> "cache_hit"
  | Authority_hit -> "authority_hit"
  | Miss -> "miss"
  | Transit -> "transit"
  | Authority_serve -> "authority_serve"
  | Install -> "install"
  | Replace -> "replace"
  | Invalidate -> "invalidate"
  | Controller -> "controller"
  | Backpressure -> "backpressure"
  | Ecn -> "ecn"
  | Queue_drop -> "queue_drop"
  | Drop -> "drop"
  | Deliver -> "deliver"

let drop_unmatched = 0
let drop_misconfigured = 1
let drop_ttl = 2
let drop_unreachable = 3
let drop_no_authority = 4
let drop_queue_full = 5
let drop_rejected = 6
let drop_outage = 7

let drop_reason_name = function
  | 0 -> "unmatched"
  | 1 -> "misconfigured"
  | 2 -> "ttl"
  | 3 -> "unreachable"
  | 4 -> "no_authority"
  | 5 -> "queue_full"
  | 6 -> "rejected"
  | 7 -> "outage"
  | r -> Printf.sprintf "unknown(%d)" r

let replace_evicted = 0
let replace_displaced = 1
let replace_idle = 2
let replace_hard = 3
let invalidate_migration = 0
let invalidate_delete = 1
let invalidate_cover_orphan = 2

(* (origin, pid) in one lane: 21 bits each, +1-shifted so the unknown
   (-1) components pack to zero and (-1, -1) packs to aux = 0. *)
let prov_mask = (1 lsl 21) - 1
let pack_provenance ~origin ~pid = ((origin + 1) land prov_mask) lsl 21 lor ((pid + 1) land prov_mask)
let provenance_origin aux = ((aux lsr 21) land prov_mask) - 1
let provenance_pid aux = (aux land prov_mask) - 1

(* Registry mirrors, folded in at unbind/disable — never per postcard. *)
let m_postcards = Telemetry.counter "ptrace_postcards"
let m_overwritten = Telemetry.counter "ptrace_overwritten"

type ring = {
  shard : int;
  cap : int;
  r_at : float array;
  r_kind : Bytes.t;
  r_switch : int array;
  r_rule : int array;
  r_aux : int array;
  r_pkt : int array;
  r_lo : int array;
  r_hi : int array;
  mutable total : int;  (* postcards emitted; next slot = total mod cap *)
  mutable mirrored : int;  (* totals already folded into the registry *)
  mutable ov_mirrored : int;
  mutable pkts : int;  (* packet ids allocated *)
  mutable cur_pkt : int;  (* emission context *)
  mutable cur_lo : int;
  mutable cur_hi : int;
}

let on = Atomic.make false
let lock = Mutex.create ()
let rings : ring list ref = ref []
let capacity = ref 65536

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let make_ring shard cap =
  {
    shard;
    cap;
    r_at = Array.make cap 0.;
    r_kind = Bytes.make cap '\000';
    r_switch = Array.make cap 0;
    r_rule = Array.make cap 0;
    r_aux = Array.make cap 0;
    r_pkt = Array.make cap 0;
    r_lo = Array.make cap 0;
    r_hi = Array.make cap 0;
    total = 0;
    mirrored = 0;
    ov_mirrored = 0;
    pkts = 0;
    cur_pkt = -1;
    cur_lo = 0;
    cur_hi = 0;
  }

let ring_for shard =
  locked @@ fun () ->
  match List.find_opt (fun r -> r.shard = shard) !rings with
  | Some r -> r
  | None ->
      let r = make_ring shard !capacity in
      rings := r :: !rings;
      r

let dls : ring option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(* Unbound emission lands in ring 0 — the single-domain default; sharded
   runs bind explicitly around each shard.  [enable] clears the calling
   domain's binding, so a stale ring from a previous enable can never be
   written through the main domain's cached binding. *)
let cur_ring () =
  match Domain.DLS.get dls with
  | Some r -> r
  | None ->
      let r = ring_for 0 in
      Domain.DLS.set dls (Some r);
      r

let enabled () = Atomic.get on

let enable ?capacity:(cap = 65536) () =
  if cap < 1 then invalid_arg "Ptrace.enable: capacity < 1";
  locked (fun () ->
      capacity := cap;
      rings := []);
  Domain.DLS.set dls None;
  Atomic.set on true

let mirror r =
  Telemetry.add m_postcards (r.total - r.mirrored);
  r.mirrored <- r.total;
  let ov = max 0 (r.total - r.cap) in
  Telemetry.add m_overwritten (ov - r.ov_mirrored);
  r.ov_mirrored <- ov

let disable () =
  Atomic.set on false;
  locked @@ fun () -> List.iter mirror !rings

let bind ~shard =
  if Atomic.get on then Domain.DLS.set dls (Some (ring_for shard))

let unbind () =
  (match Domain.DLS.get dls with Some r -> locked (fun () -> mirror r) | None -> ());
  Domain.DLS.set dls None

let begin_packet_key at ~lo ~hi =
  ignore at;
  if not (Atomic.get on) then -1
  else begin
    let r = cur_ring () in
    let id = r.pkts in
    r.pkts <- id + 1;
    r.cur_pkt <- id;
    r.cur_lo <- lo;
    r.cur_hi <- hi;
    id
  end

let begin_packet at h =
  if not (Atomic.get on) then -1
  else
    begin_packet_key at ~lo:(Int64.to_int (Header.key_lo h))
      ~hi:(Int64.to_int (Header.key_hi h))

let resume_packet ~pkt h =
  if Atomic.get on then begin
    let r = cur_ring () in
    r.cur_pkt <- pkt;
    r.cur_lo <- Int64.to_int (Header.key_lo h);
    r.cur_hi <- Int64.to_int (Header.key_hi h)
  end

let push r ~at kind ~switch ~rule ~aux ~pkt ~lo ~hi =
  let i = r.total mod r.cap in
  Array.unsafe_set r.r_at i at;
  Bytes.unsafe_set r.r_kind i (Char.unsafe_chr (kind_code kind));
  Array.unsafe_set r.r_switch i switch;
  Array.unsafe_set r.r_rule i rule;
  Array.unsafe_set r.r_aux i aux;
  Array.unsafe_set r.r_pkt i pkt;
  Array.unsafe_set r.r_lo i lo;
  Array.unsafe_set r.r_hi i hi;
  r.total <- r.total + 1

let emit ~at kind ~switch ~rule ~aux =
  if Atomic.get on then begin
    let r = cur_ring () in
    push r ~at kind ~switch ~rule ~aux ~pkt:r.cur_pkt ~lo:r.cur_lo ~hi:r.cur_hi
  end

let emit_control ~at kind ~switch ~rule ~aux =
  if Atomic.get on then
    push (cur_ring ()) ~at kind ~switch ~rule ~aux ~pkt:(-1) ~lo:0 ~hi:0

type postcard = {
  at : float;
  shard : int;
  pkt : int;
  kind : kind;
  switch : int;
  rule : int;
  aux : int;
  key_lo : int;
  key_hi : int;
}

let sorted_rings () =
  locked (fun () ->
      List.sort (fun (a : ring) (b : ring) -> Int.compare a.shard b.shard) !rings)

let ring_postcards r =
  let n = min r.total r.cap in
  let first = if r.total <= r.cap then 0 else r.total mod r.cap in
  Array.init n (fun i ->
      let j = (first + i) mod r.cap in
      {
        at = r.r_at.(j);
        shard = r.shard;
        pkt = r.r_pkt.(j);
        kind = kind_of_code (Char.code (Bytes.get r.r_kind j));
        switch = r.r_switch.(j);
        rule = r.r_rule.(j);
        aux = r.r_aux.(j);
        key_lo = r.r_lo.(j);
        key_hi = r.r_hi.(j);
      })

let postcards () = Array.concat (List.map ring_postcards (sorted_rings ()))
let emitted () = List.fold_left (fun acc r -> acc + r.total) 0 (sorted_rings ())

let overwritten () =
  List.fold_left (fun acc r -> acc + max 0 (r.total - r.cap)) 0 (sorted_rings ())

let shard_wrapped shard =
  match
    locked (fun () -> List.find_opt (fun (r : ring) -> r.shard = shard) !rings)
  with
  | Some r -> r.total > r.cap
  | None -> false

let clear () =
  locked @@ fun () ->
  List.iter
    (fun r ->
      r.total <- 0;
      r.mirrored <- 0;
      r.ov_mirrored <- 0;
      r.pkts <- 0;
      r.cur_pkt <- -1;
      r.cur_lo <- 0;
      r.cur_hi <- 0)
    !rings

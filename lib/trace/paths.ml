type hop = { at : float; kind : Ptrace.kind; switch : int; rule : int; aux : int }

type path = {
  shard : int;
  pkt : int;
  key_lo : int;
  key_hi : int;
  hops : hop list;
  truncated : bool;
}

type outcome = Delivered | Dropped of int | Incomplete

let outcome p =
  let rec last acc = function
    | [] -> acc
    | h :: rest ->
        let acc =
          match h.kind with
          | Ptrace.Deliver -> Delivered
          | Ptrace.Drop -> Dropped h.aux
          | _ -> acc
        in
        last acc rest
  in
  last Incomplete p.hops

type trace = {
  all : Ptrace.postcard array;
  paths : path list;
  emitted : int;
  overwritten : int;
}

(* A surviving path whose first postcard is not an ingress verdict lost
   its prefix to ring wraparound: overwriting eats oldest-first, so a
   packet's missing postcards are always a prefix of its sequence. *)
let verdict_start (p : Ptrace.postcard) =
  match p.kind with
  | Ptrace.Cache_hit | Ptrace.Authority_hit | Ptrace.Miss -> true
  | Ptrace.Drop -> p.aux = Ptrace.drop_unmatched || p.aux = Ptrace.drop_misconfigured
  | _ -> false

let group ~wrapped (all : Ptrace.postcard array) =
  let tbl : (int * int, Ptrace.postcard * hop list ref) Hashtbl.t =
    Hashtbl.create 1024
  in
  Array.iter
    (fun (p : Ptrace.postcard) ->
      if p.Ptrace.pkt >= 0 then begin
        let h =
          { at = p.Ptrace.at; kind = p.Ptrace.kind; switch = p.Ptrace.switch;
            rule = p.Ptrace.rule; aux = p.Ptrace.aux }
        in
        match Hashtbl.find_opt tbl (p.Ptrace.shard, p.Ptrace.pkt) with
        | Some (_, hops) -> hops := h :: !hops
        | None -> Hashtbl.add tbl (p.Ptrace.shard, p.Ptrace.pkt) (p, ref [ h ])
      end)
    all;
  Hashtbl.fold
    (fun (shard, pkt) (first, hops) acc ->
      {
        shard;
        pkt;
        key_lo = first.Ptrace.key_lo;
        key_hi = first.Ptrace.key_hi;
        hops = List.rev !hops;
        truncated = wrapped shard && not (verdict_start first);
      }
      :: acc)
    tbl []
  |> List.sort (fun a b ->
         match Int.compare a.shard b.shard with
         | 0 -> Int.compare a.pkt b.pkt
         | c -> c)

let of_postcards ?(wrapped = fun _ -> false) all =
  {
    all;
    paths = group ~wrapped all;
    emitted = Array.length all;
    overwritten = 0;
  }

let reconstruct () =
  let all = Ptrace.postcards () in
  {
    all;
    paths = group ~wrapped:Ptrace.shard_wrapped all;
    emitted = Ptrace.emitted ();
    overwritten = Ptrace.overwritten ();
  }

(* ---- invariants ---- *)

let max_reported = 20

let check t =
  let n = ref 0 in
  let out = ref [] in
  let report fmt =
    Printf.ksprintf
      (fun s ->
        incr n;
        if !n <= max_reported then out := s :: !out)
      fmt
  in
  let where p = Printf.sprintf "shard %d pkt %d" p.shard p.pkt in
  List.iter
    (fun p ->
      if not p.truncated then begin
        (* terminal: exactly one, and only deferred install traffic after *)
        let terminals =
          List.filter
            (fun h -> h.kind = Ptrace.Deliver || h.kind = Ptrace.Drop)
            p.hops
        in
        (match terminals with
        | [] -> report "terminal: %s has no terminal postcard" (where p)
        | [ _ ] -> ()
        | l -> report "terminal: %s has %d terminal postcards" (where p) (List.length l));
        let rec after_terminal seen = function
          | [] -> ()
          | h :: rest ->
              let terminal = h.kind = Ptrace.Deliver || h.kind = Ptrace.Drop in
              if seen && (not terminal)
                 && h.kind <> Ptrace.Install && h.kind <> Ptrace.Replace
              then
                report "terminal: %s has a %s postcard after its terminal" (where p)
                  (Ptrace.kind_name h.kind)
              else after_terminal (seen || terminal) rest
        in
        after_terminal false p.hops;
        (* no-loop: distinct switches within each consecutive-transit leg *)
        let leg = Hashtbl.create 8 in
        List.iter
          (fun h ->
            if h.kind = Ptrace.Transit then begin
              if Hashtbl.mem leg h.switch then
                report "no-loop: %s revisits switch %d within one leg" (where p)
                  h.switch;
              Hashtbl.replace leg h.switch ()
            end
            else Hashtbl.reset leg)
          p.hops;
        (* causal ordering within the path *)
        let seen_miss = ref false and seen_serve = ref false in
        let seen_bp = ref false in
        List.iter
          (fun h ->
            match h.kind with
            | Ptrace.Miss -> seen_miss := true
            | Ptrace.Authority_serve ->
                if not !seen_miss then
                  report "serve-cause: %s authority-served without an ingress miss"
                    (where p);
                if !seen_bp then
                  report
                    "backpressure: %s was authority-served after a backpressure \
                     deferral"
                    (where p);
                seen_serve := true
            | Ptrace.Controller -> seen_serve := true
            | Ptrace.Backpressure -> seen_bp := true
            | Ptrace.Install when h.aux <> 0 ->
                if not !seen_serve then
                  report
                    "install-cause: %s installed rule %d with no authority serve or \
                     controller fallback"
                    (where p) h.rule
            | _ -> ())
          p.hops;
        let oc = outcome p in
        (if !seen_bp then
           match oc with
           | Dropped _ -> ()
           | _ when List.exists (fun h -> h.kind = Ptrace.Controller) p.hops -> ()
           | _ ->
               report "backpressure: %s deferred but reached neither controller nor \
                       drop"
                 (where p));
        (* cross-layer: the simulator's queue_full verdict and the
           congestion model's port-buffer shed must agree *)
        let qd = List.exists (fun h -> h.kind = Ptrace.Queue_drop) p.hops in
        (match oc with
        | Dropped r when r = Ptrace.drop_queue_full ->
            if not qd then
              report "queue-drop: %s dropped queue_full with no congestion-layer \
                      shed"
                (where p)
        | Dropped r when r < 0 || r > Ptrace.drop_outage ->
            report "drop-reason: %s dropped with unknown reason code %d" (where p) r
        | _ ->
            if qd then
              report "queue-drop: %s saw a congestion-layer shed but was not \
                      dropped queue_full"
                (where p))
      end)
    t.paths;
  (* hit-install: global, in each shard's emission order, over packet
     and control postcards alike.  Needs the full install history, so a
     wrapped ring disqualifies the rule rather than risking a false
     alarm on a hit whose install was overwritten. *)
  if t.overwritten = 0 then begin
    let live = Hashtbl.create 1024 in
    let shard = ref min_int in
    Array.iter
      (fun (p : Ptrace.postcard) ->
        if p.Ptrace.shard <> !shard then begin
          (* rule liveness is per shard: shards run disjoint switch sets *)
          Hashtbl.reset live;
          shard := p.Ptrace.shard
        end;
        match p.Ptrace.kind with
        | Ptrace.Install -> Hashtbl.replace live (p.Ptrace.switch, p.Ptrace.rule) ()
        | Ptrace.Replace | Ptrace.Invalidate ->
            Hashtbl.remove live (p.Ptrace.switch, p.Ptrace.rule)
        | Ptrace.Cache_hit when p.Ptrace.pkt >= 0 ->
            if not (Hashtbl.mem live (p.Ptrace.switch, p.Ptrace.rule)) then
              report
                "hit-install: shard %d pkt %d hit rule %d at switch %d with no \
                 live install"
                p.Ptrace.shard p.Ptrace.pkt p.Ptrace.rule p.Ptrace.switch
        | _ -> ())
      t.all
  end;
  let out = List.rev !out in
  if !n > max_reported then
    out @ [ Printf.sprintf "... %d more violations" (!n - max_reported) ]
  else out

(* ---- queries ---- *)

type query = {
  q_key : (int * int) option;
  q_switch : int option;
  q_outcome : [ `Delivered | `Dropped | `Incomplete ] option;
  q_since : float option;
  q_until : float option;
}

let any = { q_key = None; q_switch = None; q_outcome = None; q_since = None; q_until = None }

let select q t =
  List.filter
    (fun p ->
      (match q.q_key with
      | Some (lo, hi) -> p.key_lo = lo && p.key_hi = hi
      | None -> true)
      && (match q.q_switch with
         | Some s -> List.exists (fun h -> h.switch = s) p.hops
         | None -> true)
      && (match q.q_outcome with
         | Some `Delivered -> outcome p = Delivered
         | Some `Dropped -> ( match outcome p with Dropped _ -> true | _ -> false)
         | Some `Incomplete -> outcome p = Incomplete
         | None -> true)
      && (match (p.hops, q.q_since) with
         | h :: _, Some s -> h.at >= s
         | _, _ -> true)
      && match (p.hops, q.q_until) with h :: _, Some u -> h.at <= u | _, _ -> true)
    t.paths

(* ---- rendering ---- *)

let outcome_name = function
  | Delivered -> "delivered"
  | Dropped r -> Printf.sprintf "dropped:%s" (Ptrace.drop_reason_name r)
  | Incomplete -> "incomplete"

let has_provenance k = k = Ptrace.Cache_hit || k = Ptrace.Install

let pp_hop ?describe ppf h =
  let detail =
    match h.kind with
    | Ptrace.Drop -> Printf.sprintf " reason=%s" (Ptrace.drop_reason_name h.aux)
    | Ptrace.Deliver -> if h.aux = 1 then " cache-hit" else ""
    | Ptrace.Miss -> Printf.sprintf " authority=%d" h.aux
    | Ptrace.Authority_serve -> Printf.sprintf " origin=%d pid=%d" h.rule h.aux
    | Ptrace.Ecn | Ptrace.Queue_drop -> Printf.sprintf " depth=%d" h.aux
    | Ptrace.Controller ->
        if h.aux = 1 then " cause=backpressure" else " cause=failure"
    | k when has_provenance k && h.aux <> 0 ->
        let origin = Ptrace.provenance_origin h.aux
        and pid = Ptrace.provenance_pid h.aux in
        let base = Printf.sprintf " origin=%d pid=%d" origin pid in
        let joined =
          match describe with
          | Some f -> ( match f ~origin ~pid with Some s -> " (" ^ s ^ ")" | None -> "")
          | None -> ""
        in
        base ^ joined
    | _ -> ""
  in
  let rule = if h.rule >= 0 then Printf.sprintf " rule %d" h.rule else "" in
  Format.fprintf ppf "  %12.6f  %-15s sw %d%s%s@." h.at (Ptrace.kind_name h.kind)
    h.switch rule detail

let pp ?describe ?(limit = 20) ppf paths =
  let total = List.length paths in
  List.iteri
    (fun i p ->
      if i < limit then begin
        Format.fprintf ppf "path shard %d pkt %d key %x:%x — %s%s (%d hops)@." p.shard
          p.pkt p.key_hi p.key_lo
          (outcome_name (outcome p))
          (if p.truncated then " [truncated]" else "")
          (List.length p.hops);
        List.iter (pp_hop ?describe ppf) p.hops
      end)
    paths;
  if total > limit then Format.fprintf ppf "... %d more paths@." (total - limit)

let pp_summary ppf t =
  let count f = List.length (List.filter f t.paths) in
  let delivered = count (fun p -> outcome p = Delivered) in
  let dropped = count (fun p -> match outcome p with Dropped _ -> true | _ -> false) in
  let incomplete = count (fun p -> outcome p = Incomplete) in
  let truncated = count (fun p -> p.truncated) in
  Format.fprintf ppf
    "postcards %d (%d overwritten); %d paths: %d delivered, %d dropped, %d \
     incomplete, %d truncated@."
    t.emitted t.overwritten (List.length t.paths) delivered dropped incomplete
    truncated

let to_json ?paths t =
  let paths = match paths with Some l -> l | None -> t.paths in
  let b = Buffer.create 8192 in
  Buffer.add_string b
    (Printf.sprintf "{\"schema\":\"difane-paths-v1\",\"emitted\":%d,\"overwritten\":%d,\"paths\":["
       t.emitted t.overwritten);
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"shard\":%d,\"pkt\":%d,\"key_lo\":\"%x\",\"key_hi\":\"%x\",\"outcome\":%S,\"truncated\":%b,\"hops\":["
           p.shard p.pkt p.key_lo p.key_hi
           (outcome_name (outcome p))
           p.truncated);
      List.iteri
        (fun j h ->
          if j > 0 then Buffer.add_char b ',';
          Buffer.add_string b
            (Printf.sprintf "{\"at\":%s,\"kind\":%S,\"switch\":%d,\"rule\":%d,\"aux\":%d"
               (Telemetry.json_float h.at) (Ptrace.kind_name h.kind) h.switch h.rule
               h.aux);
          if has_provenance h.kind && h.aux <> 0 then
            Buffer.add_string b
              (Printf.sprintf ",\"origin\":%d,\"pid\":%d"
                 (Ptrace.provenance_origin h.aux)
                 (Ptrace.provenance_pid h.aux));
          if h.kind = Ptrace.Drop then
            Buffer.add_string b
              (Printf.sprintf ",\"reason\":%S" (Ptrace.drop_reason_name h.aux));
          Buffer.add_char b '}')
        p.hops;
      Buffer.add_string b "]}")
    paths;
  Buffer.add_string b "]}";
  Buffer.contents b

(** Packet-path reconstruction, causal invariants and trace queries.

    The read side of {!Ptrace}: group the shard-merged postcard stream
    into per-packet paths, judge each path's outcome, check the causal
    properties DIFANE's correctness story rests on, and render the
    result as text or [difane-paths-v1] JSON.  Everything here is a
    pure function of the postcard stream, so two runs that emitted the
    same postcards — e.g. the same seed at different domain counts —
    produce byte-identical output.

    The invariants ([check]):

    - {b terminal}: every complete path ends in exactly one
      {!Ptrace.Deliver}/{!Ptrace.Drop} postcard; only deferred
      {!Ptrace.Install}/{!Ptrace.Replace} postcards (the install
      message lands off the packet's critical path) may follow it;
    - {b no-loop}: within each tunnel leg (a maximal run of consecutive
      {!Ptrace.Transit} hops) no switch repeats;
    - {b hit-install}: every cache hit was preceded, in the shard's
      emission order, by an install of that rule at that switch still
      live (not replaced/invalidated) at hit time — skipped when the
      ring wrapped, because install history may be lost;
    - {b install-cause}: every in-path install carrying provenance was
      preceded in its path by an authority serve or controller
      fallback; {b serve-cause}: every authority serve by an ingress
      miss;
    - {b backpressure}: a backpressured miss is never subsequently
      authority-served; it ends at the controller or in a drop;
    - {b queue-drop}: a path terminally dropped with reason
      [queue_full] contains a congestion-layer {!Ptrace.Queue_drop}
      postcard, and vice versa — the cross-layer consistency check
      between the simulators' verdicts and the congestion model. *)

type hop = { at : float; kind : Ptrace.kind; switch : int; rule : int; aux : int }

type path = {
  shard : int;
  pkt : int;
  key_lo : int;  (** packed 5-tuple key, {!Header.key_lo} lanes *)
  key_hi : int;
  hops : hop list;  (** emission order *)
  truncated : bool;  (** ring wraparound ate this path's prefix *)
}

type outcome = Delivered | Dropped of int  (** drop reason code *) | Incomplete

val outcome : path -> outcome
(** The path's last terminal postcard; [Incomplete] if none survived. *)

type trace = {
  all : Ptrace.postcard array;  (** the raw shard-merged stream *)
  paths : path list;  (** sorted by [(shard, pkt)] *)
  emitted : int;
  overwritten : int;
}

val reconstruct : unit -> trace
(** Group the live {!Ptrace} rings into paths. *)

val of_postcards : ?wrapped:(int -> bool) -> Ptrace.postcard array -> trace
(** The same reconstruction over an explicit postcard stream (tests
    build corrupted ones).  [wrapped shard] says whether that shard's
    ring overwrote history (default: never). *)

val check : trace -> string list
(** Violated causal invariants, [[]] when all hold.  Truncated paths
    are skipped (wraparound is reported by the renderers, not judged);
    at most 20 violations are spelled out, with a final [... n more]
    line beyond that. *)

(** {1 Queries} *)

type query = {
  q_key : (int * int) option;  (** exact packed 5-tuple key (lo, hi) *)
  q_switch : int option;  (** any hop at this switch *)
  q_outcome : [ `Delivered | `Dropped | `Incomplete ] option;
  q_since : float option;  (** first hop at or after *)
  q_until : float option;  (** first hop at or before *)
}

val any : query
val select : query -> trace -> path list

(** {1 Rendering} *)

val pp :
  ?describe:(origin:int -> pid:int -> string option) ->
  ?limit:int ->
  Format.formatter ->
  path list ->
  unit
(** Human-readable paths, at most [limit] (default 20) spelled out.
    [describe] is the provenance join: given the [(origin, pid)] pair
    off a {!Ptrace.Cache_hit}/{!Ptrace.Install} postcard it renders
    the chain (policy rule → partition → authority) —
    {!Monitor.describe_provenance} is the canonical source. *)

val pp_summary : Format.formatter -> trace -> unit
(** One block of totals: postcards, wraparound, paths per outcome. *)

val to_json : ?paths:path list -> trace -> string
(** The [difane-paths-v1] document.  [paths] (default: all of them)
    substitutes a filtered selection; the header totals always describe
    the whole trace. *)

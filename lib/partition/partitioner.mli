(** The DIFANE flowspace partitioner.

    The controller carves the flowspace into [k] disjoint
    hyper-rectangular regions and gives each to an authority switch.  A
    rule whose predicate spans several regions is {e split}: each region
    holds the rule clipped to the region, so per-region tables stay
    semantically self-contained but the total TCAM count grows.  The
    partitioner is a decision tree of single-bit cuts (in the spirit of
    HiCuts): it repeatedly splits the fullest region along the cut that
    best balances the two halves while duplicating the fewest rules.

    Invariants (property-tested):
    {ul
    {- regions are pairwise disjoint and cover the whole flowspace;}
    {- for every header, looking up the clipped table of the covering
       region gives exactly the action of the original classifier;}
    {- every partition's table is non-empty whenever the original
       classifier is total.}} *)

type partition = {
  pid : int;
  region : Pred.t;
  table : Classifier.t;  (** original rules clipped to [region] *)
}

type heuristic =
  | Best_cut  (** per-split search over all fields' next wildcard bit (paper) *)
  | Fixed_dimension of int  (** always cut the same field — the ablation baseline *)

type t = {
  partitions : partition list;
  heuristic : heuristic;
  source_rules : int;  (** rules in the input classifier *)
  total_entries : int;  (** sum of clipped-table sizes over all partitions *)
  max_entries : int;  (** largest partition table *)
  duplication : float;  (** [total_entries / source_rules] — splitting overhead *)
}

val compute : ?heuristic:heuristic -> Classifier.t -> k:int -> t
(** Partition into at most [k] regions ([k >= 1]).  Fewer than [k] regions
    are returned only when the flowspace cannot be cut further (all
    wildcard bits exhausted).  @raise Invalid_argument if [k < 1] or the
    classifier is empty. *)

val compute_bounded :
  ?heuristic:heuristic -> ?max_partitions:int -> Classifier.t -> max_entries:int -> t
(** The paper's actual sizing rule: split until {e every} partition's
    clipped table fits in an authority switch's TCAM budget
    ([max_entries]), rather than to a fixed region count.  Stops early
    when an oversized region has no productive cut left (rules that
    cannot be separated by any bit), or at [max_partitions]
    (default 4096).  @raise Invalid_argument if [max_entries < 1]. *)

val refit : t -> Classifier.t -> regions:(int * Pred.t) list -> t
(** Rebuild the partition set over {e exactly} the given [(pid, region)]
    list — the incremental path: regions come from a prior compute plus
    explicit splits, not from re-running the decision tree (which could
    land on a different cut and desynchronise replicas).  Tables are the
    classifier's rules clipped per region; the heuristic is kept for
    future splits.  Callers maintain the disjoint-cover invariant.
    @raise Invalid_argument on an empty classifier or region list. *)

val split_region :
  t -> Classifier.t -> pid:int -> ((int * Pred.t) * (int * Pred.t)) option
(** Re-cut one region with the same HiCuts heuristic used at build time:
    the best single-bit cut of [pid]'s region over the classifier's rules.
    Returns [((lo_pid, lo), (hi_pid, hi))] with fresh pids (max existing
    pid + 1 and + 2, so retired pids are never reused and cached-rule
    provenance stays unambiguous), or [None] when the pid is unknown or
    no productive cut remains. *)

val find : t -> Header.t -> partition
(** The unique partition whose region contains the header. *)

val partition_rules : t -> assignment:(int -> int) -> Rule.t list
(** The low-priority partition rules every switch carries: region [pid]
    maps to [To_authority (assignment pid)].  Rule ids are fresh
    (>= 1_000_000), priorities all equal (regions are disjoint). *)

val balance : t -> float
(** [max_entries / (total_entries / k)]: 1.0 is perfectly balanced. *)

val pp : Format.formatter -> t -> unit

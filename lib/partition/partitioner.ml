type partition = { pid : int; region : Pred.t; table : Classifier.t }
type heuristic = Best_cut | Fixed_dimension of int

type t = {
  partitions : partition list;
  heuristic : heuristic;
  source_rules : int;
  total_entries : int;
  max_entries : int;
  duplication : float;
}

(* A leaf of the decision tree during construction: a region and the rules
   overlapping it (unclipped — clipping happens once at the end). *)
type leaf = { region : Pred.t; rules : Rule.t list; count : int }

let leaf_of region rules =
  let rules = List.filter (fun (r : Rule.t) -> Pred.overlaps r.pred region) rules in
  { region; rules; count = List.length rules }

(* Candidate cuts of a region: for each field, the most significant
   wildcard bit.  Cutting at the MSB wildcard halves the region along the
   coarsest granularity, mirroring the paper's top-down splitting. *)
let candidate_cuts region =
  List.filter_map
    (fun fi ->
      match Ternary.first_wildcard_msb (Pred.field region fi) with
      | Some bit -> Some (fi, bit)
      | None -> None)
    (List.init (Pred.arity region) (fun i -> i))

(* Cost of a cut: (max child size, total size).  Lexicographic: balance
   first, duplication second. *)
let cut_cost leaf (fi, bit) =
  match Pred.split leaf.region fi bit with
  | None -> None
  | Some (lo, hi) ->
      let n_lo =
        List.length (List.filter (fun (r : Rule.t) -> Pred.overlaps r.pred lo) leaf.rules)
      in
      let n_hi =
        List.length (List.filter (fun (r : Rule.t) -> Pred.overlaps r.pred hi) leaf.rules)
      in
      Some ((max n_lo n_hi, n_lo + n_hi), (lo, hi))

let best_cut heuristic leaf =
  let cuts =
    match heuristic with
    | Best_cut -> candidate_cuts leaf.region
    | Fixed_dimension fi -> (
        match Ternary.first_wildcard_msb (Pred.field leaf.region fi) with
        | Some bit -> [ (fi, bit) ]
        | None -> [])
  in
  let scored = List.filter_map (cut_cost leaf) cuts in
  match scored with
  | [] -> None
  | first :: rest ->
      let better (c1, _) (c2, _) = compare c1 c2 < 0 in
      Some (snd (List.fold_left (fun acc x -> if better x acc then x else acc) first rest))

(* Greedy growth: repeatedly split the leaf chosen by [pick] until [stop]
   says the forest is good enough or nothing productive is left to cut.
   [pick] only considers leaves for which [eligible] holds. *)
let grow_until ~heuristic ~stop ~eligible start =
  let rec grow leaves n_leaves =
    if stop leaves n_leaves then leaves
    else
      let sorted =
        List.sort (fun a b -> compare b.count a.count)
          (List.filter eligible leaves)
      in
      let untouched = List.filter (fun l -> not (eligible l)) leaves in
      let rec try_split tried = function
        | [] -> None (* nothing splittable *)
        | leaf :: rest -> (
            match best_cut heuristic leaf with
            | Some (lo, hi) ->
                Some (leaf_of lo leaf.rules :: leaf_of hi leaf.rules :: (tried @ rest))
            | None -> try_split (leaf :: tried) rest)
      in
      match try_split [] sorted with
      | None -> leaves
      | Some split_leaves -> grow (split_leaves @ untouched) (n_leaves + 1)
  in
  grow start (List.length start)

let compute_generic ~heuristic classifier ~stop ~eligible =
  let rules = Classifier.rules classifier in
  if rules = [] then invalid_arg "Partitioner.compute: empty classifier";
  let schema = Classifier.schema classifier in
  let leaves =
    grow_until ~heuristic ~stop ~eligible [ leaf_of (Pred.any schema) rules ]
  in
  let partitions =
    List.mapi
      (fun pid leaf ->
        let clipped =
          List.filter_map
            (fun (r : Rule.t) ->
              Option.map (Rule.with_pred r) (Pred.inter r.pred leaf.region))
            leaf.rules
        in
        { pid; region = leaf.region; table = Classifier.create schema clipped })
      leaves
  in
  let sizes = List.map (fun (p : partition) -> Classifier.length p.table) partitions in
  let total_entries = List.fold_left ( + ) 0 sizes in
  let max_entries = List.fold_left max 0 sizes in
  let source_rules = List.length rules in
  {
    partitions;
    heuristic;
    source_rules;
    total_entries;
    max_entries;
    duplication = float_of_int total_entries /. float_of_int source_rules;
  }

let compute ?(heuristic = Best_cut) classifier ~k =
  if k < 1 then invalid_arg "Partitioner.compute: k must be >= 1";
  compute_generic ~heuristic classifier
    ~stop:(fun _ n -> n >= k)
    ~eligible:(fun _ -> true)

let compute_bounded ?(heuristic = Best_cut) ?(max_partitions = 4096) classifier
    ~max_entries =
  if max_entries < 1 then invalid_arg "Partitioner.compute_bounded: max_entries < 1";
  compute_generic ~heuristic classifier
    ~stop:(fun leaves n ->
      n >= max_partitions || List.for_all (fun l -> l.count <= max_entries) leaves)
    ~eligible:(fun l -> l.count > max_entries)

let clip_table schema rules region =
  let clipped =
    List.filter_map
      (fun (r : Rule.t) ->
        Option.map (Rule.with_pred r) (Pred.inter r.pred region))
      rules
  in
  Classifier.create schema clipped

let refit t classifier ~regions =
  let rules = Classifier.rules classifier in
  if rules = [] then invalid_arg "Partitioner.refit: empty classifier";
  if regions = [] then invalid_arg "Partitioner.refit: no regions";
  let schema = Classifier.schema classifier in
  let partitions =
    List.map
      (fun (pid, region) ->
        { pid; region; table = clip_table schema rules region })
      regions
  in
  let sizes = List.map (fun (p : partition) -> Classifier.length p.table) partitions in
  let total_entries = List.fold_left ( + ) 0 sizes in
  let max_entries = List.fold_left max 0 sizes in
  let source_rules = List.length rules in
  {
    partitions;
    heuristic = t.heuristic;
    source_rules;
    total_entries;
    max_entries;
    duplication = float_of_int total_entries /. float_of_int source_rules;
  }

let max_pid t =
  List.fold_left (fun m (p : partition) -> max m p.pid) (-1) t.partitions

let split_region t classifier ~pid =
  match List.find_opt (fun (p : partition) -> p.pid = pid) t.partitions with
  | None -> None
  | Some p -> (
      let leaf = leaf_of p.region (Classifier.rules classifier) in
      match best_cut t.heuristic leaf with
      | None -> None
      | Some (lo, hi) ->
          let base = max_pid t in
          Some ((base + 1, lo), (base + 2, hi)))

let find t h =
  match List.find_opt (fun (p : partition) -> Pred.matches p.region h) t.partitions with
  | Some p -> p
  | None ->
      (* impossible by the covering invariant; fail loudly if it breaks *)
      invalid_arg "Partitioner.find: header not covered by any partition"

let partition_rule_base = 1_000_000

let partition_rules t ~assignment =
  List.map
    (fun (p : partition) ->
      Rule.make
        ~id:(partition_rule_base + p.pid)
        ~priority:0 p.region
        (Action.To_authority (assignment p.pid)))
    t.partitions

let balance t =
  let k = List.length t.partitions in
  if k = 0 then 1.0
  else
    let avg = float_of_int t.total_entries /. float_of_int k in
    if avg = 0. then 1.0 else float_of_int t.max_entries /. avg

let pp ppf t =
  Format.fprintf ppf "@[<v>%d partitions, %d->%d entries (x%.2f), max %d@,%a@]"
    (List.length t.partitions) t.source_rules t.total_entries t.duplication t.max_entries
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (p : partition) ->
         Format.fprintf ppf "P%d %a : %d rules" p.pid Pred.pp p.region
           (Classifier.length p.table)))
    t.partitions

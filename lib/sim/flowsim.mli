(** Flow-level discrete-event simulation of DIFANE and the NOX baseline.

    Replays a {!Traffic.flow} workload against a deployed network with
    explicit capacity models:

    {ul
    {- {b DIFANE}: cache hits and already-cached flows forward at line rate
       (not modelled as a bottleneck); each {e miss} consumes one
       flow-setup slot at its authority switch — a FIFO {!Server} per
       authority with service time [authority_service].  Misses arriving
       to a full authority queue are lost (as in the paper's overload
       runs).}
    {- {b NOX}: each miss consumes a slot at the single controller server
       ([controller_service]) and pays the control-channel RTT.}}

    The timing defaults follow the paper's prototype numbers: an authority
    switch sustains ~800K flow setups/s (Click data plane), the controller
    ~50K/s, the controller RTT ~10 ms, data-plane link latencies come from
    the topology. *)

type timing = {
  authority_service : float;  (** seconds per miss at an authority switch *)
  controller_service : float;  (** seconds per packet-in at the controller *)
  controller_rtt : float;
  queue_capacity : int;  (** backlog bound per server *)
  install_latency : float;
      (** delay between an authority serving a miss and the cache rule
          becoming active at the ingress switch (flow-mod propagation +
          table update).  Packets of the flow arriving inside this window
          still miss — the paper's in-flight-setup effect.  0 models the
          Click prototype's in-memory tables; hardware TCAMs are
          milliseconds. *)
}

val default_timing : timing
(** 1.25 µs authority service, 20 µs controller service, 10 ms RTT,
    queue 2000, instantaneous installs. *)

(** One typed value for everything that parameterises a simulation run —
    the single argument surface replacing the sprawl of optional
    arguments ([?timing ?faults ?monitor ?controller ...]) plus the
    congestion config that used to ride in on the deployment alone.
    Build with record update on {!Config.default}:
    [{ Config.default with timing; domains = 4 }]. *)
module Config : sig
  type t = {
    timing : timing;
    faults : Fault.plan option;
        (** scheduled crash/flap events + lossy install fabric *)
    monitor : Monitor.t option;
        (** offered every packet at simulated time; finished at drain *)
    congestion : Congestion.config option;
        (** [Some c] overrides the deployment's congestion config for
            this run; [None] uses the deployment's own *)
    controller : (now:float -> unit) option;
        (** live control-loop co-simulation hook *)
    controller_interval : float;  (** tick period, seconds *)
    domains : int;
        (** worker domains for {!run_sharded}; {!run} requires [1] *)
  }

  val default : t
  (** [default_timing], no faults, no monitor, deployment's congestion,
      no controller (10 ms interval), one domain. *)
end

type authority_stat = {
  switch_id : int;
  misses_served : int;  (** misses this authority's setup server completed *)
  misses_rejected : int;  (** misses lost to its full setup queue *)
}

type result = {
  offered_flows : int;
  completed_flows : int;  (** first packet delivered *)
  dropped_flows : int;  (** lost to a full setup queue *)
  delivered_packets : int;
  cache_hit_packets : int;
  duration : float;  (** makespan: last delivery - first arrival *)
  setup_throughput : float;
      (** completed flows over the {e arrival} window, so in-flight tails
          past the last arrival do not deflate the rate *)
  first_packet_delay : Summary.t option;  (** None when nothing completed *)
  delays : float array;  (** raw per-flow first-packet delays *)
  flow_delays : (float * float) array;
      (** [(flow start, first-packet delay)] per completed flow — lets a
          caller bucket tail latency by simulated time (e.g. p99 before
          vs after a flash crowd) instead of only end-of-run aggregates *)
  miss_delays : float array;
      (** first-packet delays of flows whose first packet required setup —
          the paper's flow-setup RTT *)
  stretches : float array;  (** per-miss path stretch (DIFANE only) *)
  authority_stats : authority_stat list;
      (** per-authority-switch miss-service tallies, ascending by
          [switch_id], DIFANE only — verifies the load balance behind
          the scaling figure *)
  degraded_packets : int;
      (** packets served through the controller fallback because no
          replica of their partition was alive (fault runs only) *)
  install_drops : int;
      (** cache-install messages lost to the fault plan's lossy fabric;
          the affected flow keeps missing until a later packet
          retriggers the install *)
  outage_drops : int;
      (** packets that needed the degraded controller path while {e every}
          controller replica was down ([Controller_crash] events) — the
          one combination DIFANE cannot survive, reported separately *)
  queue_drops : int;
      (** packets shed by a finite per-port buffer (drop-tail), summed
          over every port — 0 unless the deployment config enables the
          congestion model (DIFANE only) *)
  ecn_marks : int;
      (** packets forwarded with congestion-experienced marks (queue
          depth at or past the ECN threshold) *)
  backpressured : int;
      (** misses the credit-based flow control deferred to the controller
          path because their authority's shared credit pool had drained
          to the low-water mark — DIFANE's graceful-degradation
          alternative to shedding the miss at a full buffer *)
}

val run : Config.t -> Deployment.t -> Traffic.flow list -> result
(** Replay the workload against a DIFANE deployment under one config.
    Switch state (caches, counters) is mutated — build a fresh deployment
    per run.

    With a monitor, every packet entering the network is offered to the
    monitor's flow sampler as it fires (simulated time), and the monitor
    is {!Monitor.finish}ed when the event queue drains — after the run
    its reports cover exactly this workload.

    With faults, the plan's scheduled events drive the data-plane
    reachability model (crash/link-down marks the switch unreachable,
    restart/link-up restores it), each cache-install message is dropped
    with the plan's link drop probability (deterministically, from the
    plan's seed), and misses with no live replica take the degraded
    controller path — [controller_rtt/2] up, a [controller_service]
    slot, [controller_rtt/2] back, with an exact-match entry installed
    at the ingress — instead of being lost.  [Controller_crash] /
    [Controller_restart] events track how many of the plan's
    [controllers] replicas are up: while none is, degraded misses are
    dropped and counted in [outage_drops].

    With a controller hook, the callback runs at every
    [controller_interval] boundary the simulation clock crosses, called
    with the boundary time — the deterministic co-simulation hook that
    lets a live {!Control_plane} (or {!Cluster}) tick against the same
    deployment the packets are walking, e.g. for closed-loop adaptive
    rebalancing.  Boundaries are caught up lazily at the next packet
    event, and once more when the event queue drains.

    @raise Invalid_argument if [domains <> 1] — parallel execution needs
    per-shard deployments; use {!run_sharded}. *)

val run_sharded :
  Config.t ->
  shards:int ->
  deployment:(int -> Deployment.t) ->
  flows:(int -> Traffic.flow list) ->
  result
(** Run [shards] independent single-engine simulations — shard [i] gets
    [deployment i] and replays [flows i] — spread over
    [min Config.domains shards] OCaml domains, and merge the results.

    Determinism contract: the shard decomposition is a function of the
    shard index alone, shards are merged strictly in shard-index order
    (counters sum, extrema min/max, sample arrays concatenate, authority
    tallies sum per switch id), and registry mirroring uses only
    commutative atomic operations — so a same-seed run is byte-identical
    at {e any} domain count, including [domains = 1].  The callbacks run
    on worker domains: they must touch only shard-local state (building a
    fresh deployment and workload from a per-shard seed is the intended
    shape).

    @raise Invalid_argument if [shards < 1], or if the config carries
    faults, a monitor, or a controller hook — those are cross-shard
    global state and require a single-domain {!run}. *)

val run_difane :
  ?timing:timing ->
  ?faults:Fault.plan ->
  ?monitor:Monitor.t ->
  ?controller:(now:float -> unit) ->
  ?controller_interval:float ->
  Deployment.t ->
  Traffic.flow list -> result
(** @deprecated Thin wrapper over {!run} kept for one release: builds a
    {!Config.t} from the optional arguments ([controller_interval]
    defaults to 10 ms) and runs single-domain.  New code should build a
    config value. *)

val run_nox : ?timing:timing -> Nox.t -> Traffic.flow list -> result
(** Replay against the reactive baseline. *)

val saturation_throughput :
  ?timing:timing ->
  mode:[ `Difane of unit -> Deployment.t | `Nox of unit -> Nox.t ] ->
  workload:(rate:float -> Traffic.flow list) ->
  rates:float list ->
  unit ->
  (float * result) list
(** Sweep offered flow-arrival rates and report the achieved setup
    throughput at each — the paper's throughput-vs-sending-rate curve.
    Fresh network state is built for every rate via the thunks. *)

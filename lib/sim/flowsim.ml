type timing = {
  authority_service : float;
  controller_service : float;
  controller_rtt : float;
  queue_capacity : int;
  install_latency : float;
}

let default_timing =
  {
    authority_service = 1.25e-6;
    controller_service = 20e-6;
    controller_rtt = 10e-3;
    queue_capacity = 2000;
    install_latency = 0.;
  }

type authority_stat = {
  switch_id : int;
  misses_served : int;
  misses_rejected : int;
}

(* Registry mirrors for packet outcomes; the first-packet-delay histogram
   is the registry's view of the per-run Summary. *)
let m_delivered = Telemetry.counter "sim_packets_delivered"
let m_cache_hits = Telemetry.counter "sim_cache_hit_packets"
let m_completed = Telemetry.counter "sim_flows_completed"
let m_dropped = Telemetry.counter "sim_flows_dropped"
let m_degraded = Telemetry.counter "sim_degraded_packets"
let m_install_drops = Telemetry.counter "sim_install_drops"
let m_outage_drops = Telemetry.counter "sim_outage_drops"
let m_backpressured = Telemetry.counter "sim_backpressured_misses"
let h_first_packet = Telemetry.histogram "sim_first_packet_delay"

type result = {
  offered_flows : int;
  completed_flows : int;
  dropped_flows : int;
  delivered_packets : int;
  cache_hit_packets : int;
  duration : float;
  setup_throughput : float;
  first_packet_delay : Summary.t option;
  delays : float array;
  flow_delays : (float * float) array;
  miss_delays : float array;
  stretches : float array;
  authority_stats : authority_stat list;
  degraded_packets : int;
  install_drops : int;
  outage_drops : int;
  queue_drops : int;
  ecn_marks : int;
  backpressured : int;
}

type acc = {
  mutable completed : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable cache_hits : int;
  mutable first_arrival : float;
  mutable last_arrival : float;
  mutable first_delivery : float;
  mutable last_delivery : float;
  mutable delays : float list;
  mutable flow_delays : (float * float) list;
  mutable miss_delays : float list;
  mutable stretches : float list;
  mutable degraded : int;
  mutable install_drops : int;
  mutable outage : int;
}

let fresh_acc () =
  {
    completed = 0;
    dropped = 0;
    delivered = 0;
    cache_hits = 0;
    first_arrival = infinity;
    last_arrival = 0.;
    first_delivery = infinity;
    last_delivery = 0.;
    delays = [];
    flow_delays = [];
    miss_delays = [];
    stretches = [];
    degraded = 0;
    install_drops = 0;
    outage = 0;
  }

let finish ?(authority_stats = []) ?(queue_drops = 0) ?(ecn_marks = 0) ?(backpressured = 0)
    acc ~offered =
  let duration =
    if acc.last_delivery > acc.first_arrival then acc.last_delivery -. acc.first_arrival
    else 0.
  in
  (* Setup rate over max(arrival window, completion span): at low load the
     completions track arrivals (throughput = offered); at saturation the
     completion span stretches to the service capacity, so queued tails
     neither inflate nor deflate the rate. *)
  let arrival_window = acc.last_arrival -. acc.first_arrival in
  let completion_span =
    if acc.first_delivery < acc.last_delivery then acc.last_delivery -. acc.first_delivery
    else 0.
  in
  let window = Float.max arrival_window completion_span in
  {
    offered_flows = offered;
    completed_flows = acc.completed;
    dropped_flows = acc.dropped;
    delivered_packets = acc.delivered;
    cache_hit_packets = acc.cache_hits;
    duration;
    setup_throughput =
      (if window > 0. then float_of_int acc.completed /. window else 0.);
    first_packet_delay =
      (if acc.delays = [] then None else Some (Summary.of_list acc.delays));
    delays = Array.of_list acc.delays;
    flow_delays = Array.of_list acc.flow_delays;
    miss_delays = Array.of_list acc.miss_delays;
    stretches = Array.of_list acc.stretches;
    authority_stats;
    degraded_packets = acc.degraded;
    install_drops = acc.install_drops;
    outage_drops = acc.outage;
    queue_drops;
    ecn_marks;
    backpressured;
  }

let deliver ?(was_miss = false) acc engine ~is_first ~arrival ~extra_latency ~cache_hit =
  let t = Engine.now engine +. extra_latency in
  acc.delivered <- acc.delivered + 1;
  Telemetry.incr m_delivered;
  if cache_hit then begin
    acc.cache_hits <- acc.cache_hits + 1;
    Telemetry.incr m_cache_hits
  end;
  if t > acc.last_delivery then acc.last_delivery <- t;
  if t < acc.first_delivery then acc.first_delivery <- t;
  if is_first then begin
    acc.completed <- acc.completed + 1;
    Telemetry.incr m_completed;
    acc.delays <- (t -. arrival) :: acc.delays;
    acc.flow_delays <- (arrival, t -. arrival) :: acc.flow_delays;
    Telemetry.observe h_first_packet (t -. arrival);
    if was_miss then acc.miss_delays <- (t -. arrival) :: acc.miss_delays
  end

let prop topo a b = Option.value ~default:0. (Topology.distance topo a b)

let egress_latency topo ~from action =
  match Action.egress action with Some e -> prop topo from e | None -> 0.

let run_difane ?(timing = default_timing) ?faults ?monitor ?controller
    ?(controller_interval = 0.01) d flows =
  let engine = Engine.create () in
  let acc = fresh_acc () in
  (* Live-controller co-simulation: before each packet event, run the
     caller's control-loop callback at every crossed tick boundary (with
     the boundary time, so the controller's own clocks stay exact).  The
     controller mutates the same deployment the packets walk — this is
     how the adaptive rebalancer closes the loop on live traffic. *)
  let next_tick = ref controller_interval in
  let catch_up now =
    match controller with
    | None -> ()
    | Some tick ->
        while !next_tick <= now do
          tick ~now:!next_tick;
          next_tick := !next_tick +. controller_interval
        done
  in
  let topo = Deployment.topology d in
  let servers = Hashtbl.create 8 in
  let server_for auth =
    match Hashtbl.find_opt servers auth with
    | Some s -> s
    | None ->
        let s =
          Server.create engine ~service_time:timing.authority_service
            ~queue_capacity:timing.queue_capacity
        in
        Hashtbl.add servers auth s;
        s
  in
  (* the degraded path's controller, created only if a miss ever needs it *)
  let controller = ref None in
  let controller_server () =
    match !controller with
    | Some s -> s
    | None ->
        let s =
          Server.create engine ~service_time:timing.controller_service
            ~queue_capacity:timing.queue_capacity
        in
        controller := Some s;
        s
  in
  (* Fault plan hooks: install messages cross the same lossy fabric as
     the control plane, so each draws an independent Bernoulli from the
     plan's seed; scheduled crash/restart and link flaps drive the
     data-plane reachability model. *)
  let install_rng, install_drop =
    match faults with
    | None -> (Prng.create 0, 0.)
    | Some (p : Fault.plan) -> (Prng.create (p.Fault.seed lxor 0x51ab), p.Fault.link.Fault.drop)
  in
  (* Live controller replicas: while every one is down, the degraded
     (NOX-style fallback) path has no one to answer it. *)
  let controllers_up =
    ref (match faults with None -> 1 | Some (p : Fault.plan) -> p.Fault.controllers)
  in
  (match faults with
  | None -> ()
  | Some p ->
      List.iter
        (fun ev ->
          Engine.schedule engine ~at:(Fault.event_time ev) (fun () ->
              match ev with
              | Fault.Crash { switch; _ } | Fault.Link_down { switch; _ } ->
                  Deployment.mark_unreachable d switch
              | Fault.Restart { switch; _ } | Fault.Link_up { switch; _ } ->
                  Deployment.mark_reachable d switch
              | Fault.Controller_crash _ -> decr controllers_up
              | Fault.Controller_restart _ -> incr controllers_up))
        p.Fault.events);
  let idle_timeout = (Deployment.config d).Deployment.cache_idle_timeout in
  let hard_timeout = (Deployment.config d).Deployment.cache_hard_timeout in
  (* Congestion model: per-port virtual-clock queues shared with the
     deployment walk's semantics.  [None] (the default config) is the
     legacy plane — infinite buffers, zero serialization — and every
     congestion hook below degenerates to a no-op, keeping legacy runs
     bit-identical. *)
  let ccfg = (Deployment.config d).Deployment.congestion in
  let cong = if Congestion.enabled ccfg then Some (Congestion.create ccfg) else None in
  let credit_mode = cong <> None && ccfg.Congestion.mode = Congestion.Credit in
  (* Credit-based flow control: one shared pool per authority bounds its
     misses in flight (tunnelled or queued for a setup slot).  Credits
     return when the authority finishes — or sheds — the miss. *)
  let credits = Hashtbl.create 8 in
  let credit_for auth =
    match Hashtbl.find_opt credits auth with
    | Some r -> r
    | None ->
        let r = ref ccfg.Congestion.credit_pool in
        Hashtbl.add credits auth r;
        r
  in
  let backpressured = ref 0 in
  (* Book the congestion model along the shortest path [a -> b] starting
     at [now]: [`Ok extra] is queueing delay on top of propagation,
     [`Queue_full] a drop-tail shed at some hop's port buffer. *)
  let congested_path ~now a b =
    match cong with
    | None -> `Ok 0.
    | Some c -> (
        if a = b then `Ok 0.
        else
          match Topology.shortest_path topo a b with
          | None -> `Ok 0.
          | Some path ->
              let rec go extra elapsed = function
                | [] | [ _ ] -> `Ok extra
                | x :: (y :: _ as rest) -> (
                    match Topology.link_between topo x y with
                    | None -> `Ok extra
                    | Some l -> (
                        match Congestion.transit c ~now:(now +. elapsed) ~from:x l with
                        | `Drop -> `Queue_full
                        | `Forward (delay, _marked) ->
                            go (extra +. delay) (elapsed +. delay +. l.Topology.latency) rest))
              in
              go 0. 0. path)
  in
  let deliver_leg ~now ~from action =
    match Action.egress action with None -> `Ok 0. | Some e -> congested_path ~now from e
  in
  let flow_dropped ~is_first =
    if is_first then (acc.dropped <- acc.dropped + 1;
         Telemetry.incr m_dropped)
  in
  (* Controller path, NOX-style: half an RTT up, a controller service
     slot, half an RTT back.  Reached for [`Failure] (no live replica for
     the header's partition — [Deployment.inject] then answers from the
     policy and installs the reactive microflow at the ingress) and for
     [`Backpressure] (credit mode found the authority saturated, so the
     ingress defers re-splicing; the replicas are alive, so the
     controller is asked directly and the accounting stays separate). *)
  let serve_via_controller ~cause (flow : Traffic.flow) ~is_first =
    if !controllers_up <= 0 then begin
      (* total controller outage on top of total replica loss: the packet
         has nowhere to go — the one genuinely fatal combination *)
      acc.outage <- acc.outage + 1;
      Telemetry.incr m_outage_drops;
      if is_first then (acc.dropped <- acc.dropped + 1;
         Telemetry.incr m_dropped)
    end
    else
    Engine.after engine ~delay:(timing.controller_rtt /. 2.) (fun () ->
        let accepted =
          Server.submit (controller_server ()) (fun () ->
              let now = Engine.now engine in
              let o =
                match cause with
                | `Failure ->
                    let o = Deployment.inject d ~now ~ingress:flow.ingress flow.header in
                    acc.degraded <- acc.degraded + 1;
                    Telemetry.incr m_degraded;
                    o
                | `Backpressure ->
                    Deployment.controller_serve ~cause:`Backpressure d ~now
                      ~ingress:flow.ingress flow.header
              in
              deliver ~was_miss:true acc engine ~is_first ~arrival:flow.start
                ~extra_latency:
                  ((timing.controller_rtt /. 2.)
                  +. egress_latency topo ~from:flow.ingress o.Deployment.action)
                ~cache_hit:false)
        in
        if (not accepted) && is_first then (acc.dropped <- acc.dropped + 1;
         Telemetry.incr m_dropped))
  in
  let serve_degraded = serve_via_controller ~cause:`Failure in
  let process_packet (flow : Traffic.flow) ~is_first =
    let now = Engine.now engine in
    catch_up now;
    (match monitor with
    | Some m -> Monitor.observe_packet m ~now ~ingress:flow.ingress flow.header
    | None -> ());
    let ingress_sw = Deployment.switch d flow.ingress in
    match Switch.process ingress_sw ~now flow.header with
    | Switch.Local (action, bank) -> (
        match deliver_leg ~now ~from:flow.ingress action with
        | `Queue_full -> flow_dropped ~is_first
        | `Ok extra ->
            deliver acc engine ~is_first ~arrival:now
              ~extra_latency:(egress_latency topo ~from:flow.ingress action +. extra)
              ~cache_hit:(bank = Switch.Cache_bank))
    | Switch.Unmatched | Switch.Misconfigured ->
        if is_first then (acc.dropped <- acc.dropped + 1;
         Telemetry.incr m_dropped)
    | Switch.Tunnel nominal -> (
        match Deployment.resolve_authority d ~ingress:flow.ingress flow.header ~nominal with
        | None -> serve_degraded flow ~is_first
        | Some auth ->
        if credit_mode && !(credit_for auth) <= ccfg.Congestion.credit_low_water then begin
          (* the pool is drained to the low-water mark: the authority is
             saturated, so defer re-splicing instead of piling on *)
          incr backpressured;
          Telemetry.incr m_backpressured;
          serve_via_controller ~cause:`Backpressure flow ~is_first
        end
        else begin
        if credit_mode then decr (credit_for auth);
        let return_credit () = if credit_mode then incr (credit_for auth) in
        match congested_path ~now flow.ingress auth with
        | `Queue_full ->
            return_credit ();
            flow_dropped ~is_first
        | `Ok tunnel_extra ->
        let tunnel_latency = prop topo flow.ingress auth +. tunnel_extra in
        (* the miss packet reaches the authority, then queues for a
           flow-setup slot *)
        Engine.after engine ~delay:tunnel_latency (fun () ->
            let accepted =
              Server.submit (server_for auth) (fun () ->
                  return_credit ();
                  let now = Engine.now engine in
                  match
                    Switch.serve_miss ~mode:(Deployment.config d).Deployment.cache_mode
                      (Deployment.switch d auth) ~now flow.header
                  with
                  | None -> if is_first then (acc.dropped <- acc.dropped + 1;
         Telemetry.incr m_dropped)
                  | Some { Switch.action; cache_rule; origin_id; pid } -> (
                      (* the install message travels back to the ingress
                         and updates its table off the packet's critical
                         path — unless the lossy fabric eats it, in which
                         case later packets of the flow miss again and
                         retrigger the install (the recovery path) *)
                      if install_drop > 0. && Prng.float install_rng < install_drop then
                        begin
                          acc.install_drops <- acc.install_drops + 1;
                          Telemetry.incr m_install_drops
                        end
                      else
                        Engine.after engine ~delay:timing.install_latency (fun () ->
                            ignore
                              (Switch.install_cache_rule ?idle_timeout ?hard_timeout
                                 ~origin_id ~pid ingress_sw ~now:(Engine.now engine)
                                 cache_rule));
                      (match Action.egress action with
                      | Some e ->
                          acc.stretches
                          <- Topology.stretch topo ~src:flow.ingress ~via:auth ~dst:e
                             :: acc.stretches
                      | None -> ());
                      match deliver_leg ~now:(Engine.now engine) ~from:auth action with
                      | `Queue_full -> flow_dropped ~is_first
                      | `Ok extra ->
                          deliver ~was_miss:true acc engine ~is_first ~arrival:flow.start
                            ~extra_latency:(egress_latency topo ~from:auth action +. extra)
                            ~cache_hit:false))
            in
            if not accepted then begin
              return_credit ();
              if is_first then (acc.dropped <- acc.dropped + 1;
         Telemetry.incr m_dropped)
            end)
        end)
  in
  List.iter
    (fun (flow : Traffic.flow) ->
      if flow.start < acc.first_arrival then acc.first_arrival <- flow.start;
      if flow.start > acc.last_arrival then acc.last_arrival <- flow.start;
      Engine.schedule engine ~at:flow.start (fun () -> process_packet flow ~is_first:true);
      for i = 1 to flow.packets - 1 do
        Engine.schedule engine
          ~at:(flow.start +. (float_of_int i *. flow.interval))
          (fun () -> process_packet flow ~is_first:false)
      done)
    flows;
  Engine.run engine;
  catch_up (Engine.now engine);
  (match monitor with
  | Some m -> Monitor.finish m ~now:(Engine.now engine)
  | None -> ());
  let authority_stats =
    Hashtbl.fold
      (fun auth server acc ->
        { switch_id = auth;
          misses_served = Server.completed server;
          misses_rejected = Server.rejected server }
        :: acc)
      servers []
    |> List.sort (fun a b -> Int.compare a.switch_id b.switch_id)
  in
  let queue_drops, ecn_marks =
    match cong with
    | None -> (0, 0)
    | Some c ->
        let s = Congestion.stats c in
        (s.Congestion.drops, s.Congestion.marks)
  in
  finish ~authority_stats ~queue_drops ~ecn_marks ~backpressured:!backpressured acc
    ~offered:(List.length flows)

let run_nox ?(timing = default_timing) n flows =
  let engine = Engine.create () in
  let acc = fresh_acc () in
  let controller =
    Server.create engine ~service_time:timing.controller_service
      ~queue_capacity:timing.queue_capacity
  in
  let topo = Nox.topology n in
  let process_packet (flow : Traffic.flow) ~is_first =
    let now = Engine.now engine in
    let sw = Nox.switch n flow.ingress in
    match Tcam.lookup (Switch.cache sw) ~now flow.header with
    | Some r ->
        deliver acc engine ~is_first ~arrival:now
          ~extra_latency:(egress_latency topo ~from:flow.ingress r.Rule.action)
          ~cache_hit:true
    | None ->
        (* packet-in: half an RTT to reach the controller, queue + service,
           half an RTT back with the packet-out, then the data-plane leg *)
        Engine.after engine ~delay:(timing.controller_rtt /. 2.) (fun () ->
            let accepted =
              Server.submit controller (fun () ->
                  let now = Engine.now engine in
                  let o = Nox.inject n ~now ~ingress:flow.ingress flow.header in
                  deliver ~was_miss:true acc engine ~is_first ~arrival:flow.start
                    ~extra_latency:
                      ((timing.controller_rtt /. 2.)
                      +. egress_latency topo ~from:flow.ingress o.Nox.action)
                    ~cache_hit:false)
            in
            if (not accepted) && is_first then (acc.dropped <- acc.dropped + 1;
         Telemetry.incr m_dropped))
  in
  List.iter
    (fun (flow : Traffic.flow) ->
      if flow.start < acc.first_arrival then acc.first_arrival <- flow.start;
      if flow.start > acc.last_arrival then acc.last_arrival <- flow.start;
      Engine.schedule engine ~at:flow.start (fun () -> process_packet flow ~is_first:true);
      for i = 1 to flow.packets - 1 do
        Engine.schedule engine
          ~at:(flow.start +. (float_of_int i *. flow.interval))
          (fun () -> process_packet flow ~is_first:false)
      done)
    flows;
  Engine.run engine;
  finish acc ~offered:(List.length flows)

let saturation_throughput ?timing ~mode ~workload ~rates () =
  List.map
    (fun rate ->
      let flows = workload ~rate in
      let result =
        match mode with
        | `Difane mk -> run_difane ?timing (mk ()) flows
        | `Nox mk -> run_nox ?timing (mk ()) flows
      in
      (rate, result))
    rates

type timing = {
  authority_service : float;
  controller_service : float;
  controller_rtt : float;
  queue_capacity : int;
  install_latency : float;
}

let default_timing =
  {
    authority_service = 1.25e-6;
    controller_service = 20e-6;
    controller_rtt = 10e-3;
    queue_capacity = 2000;
    install_latency = 0.;
  }

module Config = struct
  type t = {
    timing : timing;
    faults : Fault.plan option;
    monitor : Monitor.t option;
    congestion : Congestion.config option;
    controller : (now:float -> unit) option;
    controller_interval : float;
    domains : int;
  }

  let default =
    {
      timing = default_timing;
      faults = None;
      monitor = None;
      congestion = None;
      controller = None;
      controller_interval = 0.01;
      domains = 1;
    }
end

type authority_stat = {
  switch_id : int;
  misses_served : int;
  misses_rejected : int;
}

(* Registry mirrors for packet outcomes; the first-packet-delay histogram
   is the registry's view of the per-run Summary. *)
let m_delivered = Telemetry.counter "sim_packets_delivered"
let m_cache_hits = Telemetry.counter "sim_cache_hit_packets"
let m_completed = Telemetry.counter "sim_flows_completed"
let m_dropped = Telemetry.counter "sim_flows_dropped"
let m_degraded = Telemetry.counter "sim_degraded_packets"
let m_install_drops = Telemetry.counter "sim_install_drops"
let m_outage_drops = Telemetry.counter "sim_outage_drops"
let m_backpressured = Telemetry.counter "sim_backpressured_misses"
let h_first_packet = Telemetry.histogram "sim_first_packet_delay"

type result = {
  offered_flows : int;
  completed_flows : int;
  dropped_flows : int;
  delivered_packets : int;
  cache_hit_packets : int;
  duration : float;
  setup_throughput : float;
  first_packet_delay : Summary.t option;
  delays : float array;
  flow_delays : (float * float) array;
  miss_delays : float array;
  stretches : float array;
  authority_stats : authority_stat list;
  degraded_packets : int;
  install_drops : int;
  outage_drops : int;
  queue_drops : int;
  ecn_marks : int;
  backpressured : int;
}

(* Growable float vector: the per-flow sample accumulators used to cons
   list cells on the packet hot path; now they write into a doubling
   array, allocation-free in steady state. *)
module Fvec = struct
  type t = { mutable a : float array; mutable n : int }

  let create () = { a = [||]; n = 0 }

  let push t x =
    if t.n = Array.length t.a then begin
      let b = Array.make (max 16 (2 * t.n)) 0. in
      Array.blit t.a 0 b 0 t.n;
      t.a <- b
    end;
    t.a.(t.n) <- x;
    t.n <- t.n + 1

  let to_array t = Array.sub t.a 0 t.n

  let iter f t =
    for i = 0 to t.n - 1 do
      f t.a.(i)
    done

  let append dst src = iter (push dst) src
end

type acc = {
  mutable completed : int;
  mutable dropped : int;
  mutable delivered : int;
  mutable cache_hits : int;
  mutable first_arrival : float;
  mutable last_arrival : float;
  mutable first_delivery : float;
  mutable last_delivery : float;
  delays : Fvec.t;
  fd_starts : Fvec.t;  (* flow_delays, split into parallel lanes *)
  fd_delays : Fvec.t;
  miss_delays : Fvec.t;
  stretches : Fvec.t;
  mutable degraded : int;
  mutable install_drops : int;
  mutable outage : int;
  mutable backpressured : int;
}

let fresh_acc () =
  {
    completed = 0;
    dropped = 0;
    delivered = 0;
    cache_hits = 0;
    first_arrival = infinity;
    last_arrival = 0.;
    first_delivery = infinity;
    last_delivery = 0.;
    delays = Fvec.create ();
    fd_starts = Fvec.create ();
    fd_delays = Fvec.create ();
    miss_delays = Fvec.create ();
    stretches = Fvec.create ();
    degraded = 0;
    install_drops = 0;
    outage = 0;
    backpressured = 0;
  }

(* Fold one run's (or shard's) tallies into the registry, once, after the
   event loop drains.  Every operation is a commutative atomic add, so
   worker domains mirroring concurrently produce the same final registry
   values as any serial order — and the packet hot path pays nothing. *)
let mirror_registry acc =
  Telemetry.add m_delivered acc.delivered;
  Telemetry.add m_cache_hits acc.cache_hits;
  Telemetry.add m_completed acc.completed;
  Telemetry.add m_dropped acc.dropped;
  Telemetry.add m_degraded acc.degraded;
  Telemetry.add m_install_drops acc.install_drops;
  Telemetry.add m_outage_drops acc.outage;
  Telemetry.add m_backpressured acc.backpressured;
  Fvec.iter (Telemetry.observe h_first_packet) acc.delays

let finish ?(authority_stats = []) ?(queue_drops = 0) ?(ecn_marks = 0)
    acc ~offered =
  let duration =
    if acc.last_delivery > acc.first_arrival then acc.last_delivery -. acc.first_arrival
    else 0.
  in
  (* Setup rate over max(arrival window, completion span): at low load the
     completions track arrivals (throughput = offered); at saturation the
     completion span stretches to the service capacity, so queued tails
     neither inflate nor deflate the rate. *)
  let arrival_window = acc.last_arrival -. acc.first_arrival in
  let completion_span =
    if acc.first_delivery < acc.last_delivery then acc.last_delivery -. acc.first_delivery
    else 0.
  in
  let window = Float.max arrival_window completion_span in
  let delays = Fvec.to_array acc.delays in
  let starts = Fvec.to_array acc.fd_starts in
  let fdelays = Fvec.to_array acc.fd_delays in
  {
    offered_flows = offered;
    completed_flows = acc.completed;
    dropped_flows = acc.dropped;
    delivered_packets = acc.delivered;
    cache_hit_packets = acc.cache_hits;
    duration;
    setup_throughput =
      (if window > 0. then float_of_int acc.completed /. window else 0.);
    first_packet_delay =
      (if Array.length delays = 0 then None
       else Some (Summary.of_list (Array.to_list delays)));
    delays;
    flow_delays = Array.init (Array.length starts) (fun i -> (starts.(i), fdelays.(i)));
    miss_delays = Fvec.to_array acc.miss_delays;
    stretches = Fvec.to_array acc.stretches;
    authority_stats;
    degraded_packets = acc.degraded;
    install_drops = acc.install_drops;
    outage_drops = acc.outage;
    queue_drops;
    ecn_marks;
    backpressured = acc.backpressured;
  }

(* [live] keeps the registry bumped per event instead of batched at the
   end of the run: required when a monitor or a live controller co-runs,
   because both can snapshot registry counters at simulated times. *)
let deliver ?(was_miss = false) ~live acc engine ~is_first ~arrival ~extra_latency
    ~cache_hit =
  let t = Engine.now engine +. extra_latency in
  acc.delivered <- acc.delivered + 1;
  if live then Telemetry.incr m_delivered;
  if cache_hit then begin
    acc.cache_hits <- acc.cache_hits + 1;
    if live then Telemetry.incr m_cache_hits
  end;
  if t > acc.last_delivery then acc.last_delivery <- t;
  if t < acc.first_delivery then acc.first_delivery <- t;
  if is_first then begin
    acc.completed <- acc.completed + 1;
    if live then Telemetry.incr m_completed;
    let delay = t -. arrival in
    Fvec.push acc.delays delay;
    Fvec.push acc.fd_starts arrival;
    Fvec.push acc.fd_delays delay;
    if live then Telemetry.observe h_first_packet delay;
    if was_miss then Fvec.push acc.miss_delays delay
  end

let prop topo a b = Option.value ~default:0. (Topology.distance topo a b)

let egress_latency topo ~from action =
  match Action.egress action with Some e -> prop topo from e | None -> 0.

(* One single-engine run: the core every entry point (and every shard of
   a sharded run) executes.  Returns the raw tallies; [finish] renders
   them (or a shard-ordered merge of several) into a [result]. *)
type raw = {
  racc : acc;
  rastats : authority_stat list;
  rqueue_drops : int;
  recn_marks : int;
}

let run_core ?(shard = 0) (cfg : Config.t) d flows =
  let timing = cfg.timing in
  let engine = Engine.create () in
  (* Tracing rails: this shard's postcards (and Trace events) go to the
     shard's own ring/lane, so the read side's shard-index-ordered merge
     is byte-identical at any domain count.  Both binds are no-ops when
     the facility is off. *)
  Ptrace.bind ~shard;
  Telemetry.Trace.bind ~lane:shard;
  let acc = fresh_acc () in
  let live = cfg.monitor <> None || cfg.controller <> None in
  (* Live-controller co-simulation: before each packet event, run the
     caller's control-loop callback at every crossed tick boundary (with
     the boundary time, so the controller's own clocks stay exact).  The
     controller mutates the same deployment the packets walk — this is
     how the adaptive rebalancer closes the loop on live traffic. *)
  let next_tick = ref cfg.controller_interval in
  let catch_up now =
    match cfg.controller with
    | None -> ()
    | Some tick ->
        while !next_tick <= now do
          tick ~now:!next_tick;
          next_tick := !next_tick +. cfg.controller_interval
        done
  in
  let topo = Deployment.topology d in
  let servers = Hashtbl.create 8 in
  let server_for auth =
    match Hashtbl.find_opt servers auth with
    | Some s -> s
    | None ->
        let s =
          Server.create engine ~service_time:timing.authority_service
            ~queue_capacity:timing.queue_capacity
        in
        Hashtbl.add servers auth s;
        s
  in
  (* the degraded path's controller, created only if a miss ever needs it *)
  let controller = ref None in
  let controller_server () =
    match !controller with
    | Some s -> s
    | None ->
        let s =
          Server.create engine ~service_time:timing.controller_service
            ~queue_capacity:timing.queue_capacity
        in
        controller := Some s;
        s
  in
  (* Fault plan hooks: install messages cross the same lossy fabric as
     the control plane, so each draws an independent Bernoulli from the
     plan's seed; scheduled crash/restart and link flaps drive the
     data-plane reachability model. *)
  let install_rng, install_drop =
    match cfg.faults with
    | None -> (Prng.create 0, 0.)
    | Some (p : Fault.plan) -> (Prng.create (p.Fault.seed lxor 0x51ab), p.Fault.link.Fault.drop)
  in
  (* Live controller replicas: while every one is down, the degraded
     (NOX-style fallback) path has no one to answer it. *)
  let controllers_up =
    ref (match cfg.faults with None -> 1 | Some (p : Fault.plan) -> p.Fault.controllers)
  in
  (match cfg.faults with
  | None -> ()
  | Some p ->
      List.iter
        (fun ev ->
          Engine.schedule engine ~at:(Fault.event_time ev) (fun () ->
              match ev with
              | Fault.Crash { switch; _ } | Fault.Link_down { switch; _ } ->
                  Deployment.mark_unreachable d switch
              | Fault.Restart { switch; _ } | Fault.Link_up { switch; _ } ->
                  Deployment.mark_reachable d switch
              | Fault.Controller_crash _ -> decr controllers_up
              | Fault.Controller_restart _ -> incr controllers_up))
        p.Fault.events);
  let idle_timeout = (Deployment.config d).Deployment.cache_idle_timeout in
  let hard_timeout = (Deployment.config d).Deployment.cache_hard_timeout in
  (* Congestion model: per-port virtual-clock queues shared with the
     deployment walk's semantics.  The config override (if any) wins over
     the deployment's; a disabled config is the legacy plane — infinite
     buffers, zero serialization — and every congestion hook below
     degenerates to a no-op, keeping legacy runs bit-identical. *)
  let ccfg =
    match cfg.congestion with
    | Some c -> c
    | None -> (Deployment.config d).Deployment.congestion
  in
  let cong = if Congestion.enabled ccfg then Some (Congestion.create ccfg) else None in
  let credit_mode = cong <> None && ccfg.Congestion.mode = Congestion.Credit in
  (* Credit-based flow control: one shared pool per authority bounds its
     misses in flight (tunnelled or queued for a setup slot).  Credits
     return when the authority finishes — or sheds — the miss. *)
  let credits = Hashtbl.create 8 in
  let credit_for auth =
    match Hashtbl.find_opt credits auth with
    | Some r -> r
    | None ->
        let r = ref ccfg.Congestion.credit_pool in
        Hashtbl.add credits auth r;
        r
  in
  (* Book the congestion model along the shortest path [a -> b] starting
     at [now]: [`Ok extra] is queueing delay on top of propagation,
     [`Queue_full] a drop-tail shed at some hop's port buffer. *)
  let congested_path ~now a b =
    match cong with
    | None -> `Ok 0.
    | Some c -> (
        if a = b then `Ok 0.
        else
          match Topology.shortest_path topo a b with
          | None -> `Ok 0.
          | Some path ->
              let rec go extra elapsed = function
                | [] | [ _ ] -> `Ok extra
                | x :: (y :: _ as rest) -> (
                    match Topology.link_between topo x y with
                    | None -> `Ok extra
                    | Some l -> (
                        match Congestion.transit c ~now:(now +. elapsed) ~from:x l with
                        | `Drop -> `Queue_full
                        | `Forward (delay, _marked) ->
                            go (extra +. delay) (elapsed +. delay +. l.Topology.latency) rest))
              in
              go 0. 0. path)
  in
  let deliver_leg ~now ~from action =
    match Action.egress action with None -> `Ok 0. | Some e -> congested_path ~now from e
  in
  let flow_dropped ~is_first =
    if is_first then begin
      acc.dropped <- acc.dropped + 1;
      if live then Telemetry.incr m_dropped
    end
  in
  (* Controller path, NOX-style: half an RTT up, a controller service
     slot, half an RTT back.  Reached for [`Failure] (no live replica for
     the header's partition — [Deployment.inject] then answers from the
     policy and installs the reactive microflow at the ingress) and for
     [`Backpressure] (credit mode found the authority saturated, so the
     ingress defers re-splicing; the replicas are alive, so the
     controller is asked directly and the accounting stays separate). *)
  let serve_via_controller ~cause (flow : Traffic.flow) ~is_first ~pkt =
    if !controllers_up <= 0 then begin
      (* total controller outage on top of total replica loss: the packet
         has nowhere to go — the one genuinely fatal combination *)
      acc.outage <- acc.outage + 1;
      if live then Telemetry.incr m_outage_drops;
      Ptrace.emit ~at:(Engine.now engine) Ptrace.Drop ~switch:flow.ingress ~rule:(-1)
        ~aux:Ptrace.drop_outage;
      flow_dropped ~is_first
    end
    else
    Engine.after engine ~delay:(timing.controller_rtt /. 2.) (fun () ->
        Ptrace.resume_packet ~pkt flow.header;
        let accepted =
          Server.submit (controller_server ()) (fun () ->
              let now = Engine.now engine in
              Ptrace.resume_packet ~pkt flow.header;
              (* the Deployment walk emits this packet's remaining
                 postcards (controller verdict, install, terminal) on the
                 resumed context — no terminal is emitted here *)
              let o =
                match cause with
                | `Failure ->
                    let o =
                      Deployment.inject ~pkt d ~now ~ingress:flow.ingress flow.header
                    in
                    acc.degraded <- acc.degraded + 1;
                    if live then Telemetry.incr m_degraded;
                    o
                | `Backpressure ->
                    Deployment.controller_serve ~cause:`Backpressure d ~now
                      ~ingress:flow.ingress flow.header
              in
              deliver ~was_miss:true ~live acc engine ~is_first ~arrival:flow.start
                ~extra_latency:
                  ((timing.controller_rtt /. 2.)
                  +. egress_latency topo ~from:flow.ingress o.Deployment.action)
                ~cache_hit:false)
        in
        if not accepted then begin
          Ptrace.emit ~at:(Engine.now engine) Ptrace.Drop ~switch:flow.ingress
            ~rule:(-1) ~aux:Ptrace.drop_rejected;
          flow_dropped ~is_first
        end)
  in
  let serve_degraded = serve_via_controller ~cause:`Failure in
  let process_packet (flow : Traffic.flow) ~is_first =
    let now = Engine.now engine in
    catch_up now;
    (* opened after [catch_up], so controller ticks never inherit a
       packet context; the packet id rides into every deferred
       continuation below via [resume_packet] *)
    let pkt = Ptrace.begin_packet now flow.header in
    (match cfg.monitor with
    | Some m -> Monitor.observe_packet m ~now ~ingress:flow.ingress flow.header
    | None -> ());
    let ingress_sw = Deployment.switch d flow.ingress in
    match Switch.process ingress_sw ~now flow.header with
    | Switch.Local (action, bank) -> (
        match deliver_leg ~now ~from:flow.ingress action with
        | `Queue_full ->
            Ptrace.emit ~at:now Ptrace.Drop ~switch:flow.ingress ~rule:(-1)
              ~aux:Ptrace.drop_queue_full;
            flow_dropped ~is_first
        | `Ok extra ->
            let lat = egress_latency topo ~from:flow.ingress action +. extra in
            Ptrace.emit ~at:(now +. lat) Ptrace.Deliver
              ~switch:
                (match Action.egress action with Some e -> e | None -> flow.ingress)
              ~rule:(-1)
              ~aux:(if bank = Switch.Cache_bank then 1 else 0);
            deliver ~live acc engine ~is_first ~arrival:now ~extra_latency:lat
              ~cache_hit:(bank = Switch.Cache_bank))
    | Switch.Unmatched ->
        Ptrace.emit ~at:now Ptrace.Drop ~switch:flow.ingress ~rule:(-1)
          ~aux:Ptrace.drop_unmatched;
        flow_dropped ~is_first
    | Switch.Misconfigured ->
        Ptrace.emit ~at:now Ptrace.Drop ~switch:flow.ingress ~rule:(-1)
          ~aux:Ptrace.drop_misconfigured;
        flow_dropped ~is_first
    | Switch.Tunnel nominal -> (
        match Deployment.resolve_authority d ~ingress:flow.ingress flow.header ~nominal with
        | None -> serve_degraded flow ~is_first ~pkt
        | Some auth ->
        if credit_mode && !(credit_for auth) <= ccfg.Congestion.credit_low_water then begin
          (* the pool is drained to the low-water mark: the authority is
             saturated, so defer re-splicing instead of piling on *)
          acc.backpressured <- acc.backpressured + 1;
          if live then Telemetry.incr m_backpressured;
          Ptrace.emit ~at:now Ptrace.Backpressure ~switch:auth ~rule:(-1) ~aux:0;
          serve_via_controller ~cause:`Backpressure flow ~is_first ~pkt
        end
        else begin
        if credit_mode then decr (credit_for auth);
        let return_credit () = if credit_mode then incr (credit_for auth) in
        match congested_path ~now flow.ingress auth with
        | `Queue_full ->
            return_credit ();
            Ptrace.emit ~at:now Ptrace.Drop ~switch:flow.ingress ~rule:(-1)
              ~aux:Ptrace.drop_queue_full;
            flow_dropped ~is_first
        | `Ok tunnel_extra ->
        let tunnel_latency = prop topo flow.ingress auth +. tunnel_extra in
        (* the miss packet reaches the authority, then queues for a
           flow-setup slot *)
        Engine.after engine ~delay:tunnel_latency (fun () ->
            Ptrace.resume_packet ~pkt flow.header;
            Ptrace.emit ~at:(Engine.now engine) Ptrace.Transit ~switch:auth ~rule:(-1)
              ~aux:0;
            let accepted =
              Server.submit (server_for auth) (fun () ->
                  return_credit ();
                  let now = Engine.now engine in
                  Ptrace.resume_packet ~pkt flow.header;
                  match
                    Switch.serve_miss ~mode:(Deployment.config d).Deployment.cache_mode
                      ?cover_limit:
                        (Aggregate.cover_limit
                           (Deployment.config d).Deployment.aggregation)
                      (Deployment.switch d auth) ~now flow.header
                  with
                  | None ->
                      Ptrace.emit ~at:now Ptrace.Drop ~switch:auth ~rule:(-1)
                        ~aux:Ptrace.drop_no_authority;
                      flow_dropped ~is_first
                  | Some { Switch.action; cache_rule = _; origin_id = _; pid = _; installs } -> (
                      (* the install message travels back to the ingress
                         and updates its table off the packet's critical
                         path — unless the lossy fabric eats it, in which
                         case later packets of the flow miss again and
                         retrigger the install (the recovery path) *)
                      if install_drop > 0. && Prng.float install_rng < install_drop then
                        begin
                          acc.install_drops <- acc.install_drops + 1;
                          if live then Telemetry.incr m_install_drops
                        end
                      else
                        Engine.after engine ~delay:timing.install_latency (fun () ->
                            Ptrace.resume_packet ~pkt flow.header;
                            ignore
                              (Aggregate.install ?idle_timeout ?hard_timeout
                                 (Deployment.aggregator d) ingress_sw
                                 ~now:(Engine.now engine) installs));
                      (match Action.egress action with
                      | Some e ->
                          Fvec.push acc.stretches
                            (Topology.stretch topo ~src:flow.ingress ~via:auth ~dst:e)
                      | None -> ());
                      match deliver_leg ~now:(Engine.now engine) ~from:auth action with
                      | `Queue_full ->
                          Ptrace.emit ~at:(Engine.now engine) Ptrace.Drop ~switch:auth
                            ~rule:(-1) ~aux:Ptrace.drop_queue_full;
                          flow_dropped ~is_first
                      | `Ok extra ->
                          let lat = egress_latency topo ~from:auth action +. extra in
                          Ptrace.emit ~at:(Engine.now engine +. lat) Ptrace.Deliver
                            ~switch:
                              (match Action.egress action with
                              | Some e -> e
                              | None -> auth)
                            ~rule:(-1) ~aux:0;
                          deliver ~was_miss:true ~live acc engine ~is_first
                            ~arrival:flow.start ~extra_latency:lat ~cache_hit:false))
            in
            if not accepted then begin
              return_credit ();
              Ptrace.emit ~at:(Engine.now engine) Ptrace.Drop ~switch:auth ~rule:(-1)
                ~aux:Ptrace.drop_rejected;
              flow_dropped ~is_first
            end)
        end)
  in
  (* Packet arrivals are packed events: the payload carries the flow's
     index and the first-packet bit, so a million-flow schedule costs four
     scalar lanes per event and no closures. *)
  let flows_arr = Array.of_list flows in
  let k_packet =
    Engine.kind engine (fun payload ->
        process_packet flows_arr.(payload lsr 1) ~is_first:(payload land 1 = 1))
  in
  Array.iteri
    (fun idx (flow : Traffic.flow) ->
      if flow.start < acc.first_arrival then acc.first_arrival <- flow.start;
      if flow.start > acc.last_arrival then acc.last_arrival <- flow.start;
      Engine.post engine ~at:flow.start k_packet ((idx lsl 1) lor 1);
      for i = 1 to flow.packets - 1 do
        Engine.post engine
          ~at:(flow.start +. (float_of_int i *. flow.interval))
          k_packet (idx lsl 1)
      done)
    flows_arr;
  Engine.run engine;
  catch_up (Engine.now engine);
  (match cfg.monitor with
  | Some m -> Monitor.finish m ~now:(Engine.now engine)
  | None -> ());
  if not live then mirror_registry acc;
  let authority_stats =
    Hashtbl.fold
      (fun auth server acc ->
        { switch_id = auth;
          misses_served = Server.completed server;
          misses_rejected = Server.rejected server }
        :: acc)
      servers []
    |> List.sort (fun a b -> Int.compare a.switch_id b.switch_id)
  in
  let queue_drops, ecn_marks =
    match cong with
    | None -> (0, 0)
    | Some c ->
        let s = Congestion.stats c in
        (s.Congestion.drops, s.Congestion.marks)
  in
  { racc = acc; rastats = authority_stats; rqueue_drops = queue_drops;
    recn_marks = ecn_marks }

let run (cfg : Config.t) d flows =
  if cfg.domains <> 1 then
    invalid_arg "Flowsim.run: domains > 1 needs run_sharded (per-shard deployments)";
  let r = run_core cfg d flows in
  finish ~authority_stats:r.rastats ~queue_drops:r.rqueue_drops
    ~ecn_marks:r.recn_marks r.racc ~offered:(List.length flows)

(* Deterministic cross-shard merge: always in shard-index order,
   whatever domain ran which shard — counters sum, extrema min/max,
   sample vectors concatenate, authority tallies sum per switch id. *)
let merge_raws raws ~offered =
  let macc = fresh_acc () in
  let auth = Hashtbl.create 16 in
  let queue_drops = ref 0 and ecn_marks = ref 0 in
  Array.iter
    (fun { racc = a; rastats; rqueue_drops; recn_marks } ->
      macc.completed <- macc.completed + a.completed;
      macc.dropped <- macc.dropped + a.dropped;
      macc.delivered <- macc.delivered + a.delivered;
      macc.cache_hits <- macc.cache_hits + a.cache_hits;
      macc.first_arrival <- Float.min macc.first_arrival a.first_arrival;
      macc.last_arrival <- Float.max macc.last_arrival a.last_arrival;
      macc.first_delivery <- Float.min macc.first_delivery a.first_delivery;
      macc.last_delivery <- Float.max macc.last_delivery a.last_delivery;
      Fvec.append macc.delays a.delays;
      Fvec.append macc.fd_starts a.fd_starts;
      Fvec.append macc.fd_delays a.fd_delays;
      Fvec.append macc.miss_delays a.miss_delays;
      Fvec.append macc.stretches a.stretches;
      macc.degraded <- macc.degraded + a.degraded;
      macc.install_drops <- macc.install_drops + a.install_drops;
      macc.outage <- macc.outage + a.outage;
      macc.backpressured <- macc.backpressured + a.backpressured;
      queue_drops := !queue_drops + rqueue_drops;
      ecn_marks := !ecn_marks + recn_marks;
      List.iter
        (fun s ->
          let served, rejected =
            Option.value ~default:(0, 0) (Hashtbl.find_opt auth s.switch_id)
          in
          Hashtbl.replace auth s.switch_id
            (served + s.misses_served, rejected + s.misses_rejected))
        rastats)
    raws;
  let authority_stats =
    Hashtbl.fold
      (fun switch_id (misses_served, misses_rejected) l ->
        { switch_id; misses_served; misses_rejected } :: l)
      auth []
    |> List.sort (fun a b -> Int.compare a.switch_id b.switch_id)
  in
  finish ~authority_stats ~queue_drops:!queue_drops ~ecn_marks:!ecn_marks macc
    ~offered

let run_sharded (cfg : Config.t) ~shards ~deployment ~flows =
  if shards < 1 then invalid_arg "Flowsim.run_sharded: shards < 1";
  if cfg.faults <> None || cfg.monitor <> None || cfg.controller <> None then
    invalid_arg
      "Flowsim.run_sharded: faults/monitor/controller are cross-shard global \
       state; run them single-domain";
  let cfg1 = { cfg with Config.domains = 1 } in
  let raws = Array.make shards None in
  let offered = Array.make shards 0 in
  (* The shard decomposition and everything computed inside a shard are
     functions of the shard index alone; the domain count only decides
     which domain executes which shard (round-robin), so any count yields
     byte-identical merged results. *)
  let work me nd =
    let i = ref me in
    while !i < shards do
      let s = !i in
      let d = deployment s in
      let fl = flows s in
      offered.(s) <- List.length fl;
      raws.(s) <- Some (run_core ~shard:s cfg1 d fl);
      i := s + nd
    done
  in
  let nd = max 1 (min cfg.Config.domains shards) in
  if nd = 1 then work 0 1
  else begin
    let doms =
      Array.init (nd - 1) (fun j -> Domain.spawn (fun () -> work (j + 1) nd))
    in
    work 0 nd;
    Array.iter Domain.join doms
  end;
  let raws =
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* every shard index is covered above *))
      raws
  in
  merge_raws raws ~offered:(Array.fold_left ( + ) 0 offered)

let run_difane ?(timing = default_timing) ?faults ?monitor ?controller
    ?(controller_interval = 0.01) d flows =
  run
    { Config.timing; faults; monitor; congestion = None; controller;
      controller_interval; domains = 1 }
    d flows

let run_nox ?(timing = default_timing) n flows =
  let engine = Engine.create () in
  let acc = fresh_acc () in
  let controller =
    Server.create engine ~service_time:timing.controller_service
      ~queue_capacity:timing.queue_capacity
  in
  let topo = Nox.topology n in
  let process_packet (flow : Traffic.flow) ~is_first =
    let now = Engine.now engine in
    let sw = Nox.switch n flow.ingress in
    match Tcam.lookup (Switch.cache sw) ~now flow.header with
    | Some r ->
        deliver ~live:false acc engine ~is_first ~arrival:now
          ~extra_latency:(egress_latency topo ~from:flow.ingress r.Rule.action)
          ~cache_hit:true
    | None ->
        (* packet-in: half an RTT to reach the controller, queue + service,
           half an RTT back with the packet-out, then the data-plane leg *)
        Engine.after engine ~delay:(timing.controller_rtt /. 2.) (fun () ->
            let accepted =
              Server.submit controller (fun () ->
                  let now = Engine.now engine in
                  let o = Nox.inject n ~now ~ingress:flow.ingress flow.header in
                  deliver ~was_miss:true ~live:false acc engine ~is_first
                    ~arrival:flow.start
                    ~extra_latency:
                      ((timing.controller_rtt /. 2.)
                      +. egress_latency topo ~from:flow.ingress o.Nox.action)
                    ~cache_hit:false)
            in
            if (not accepted) && is_first then acc.dropped <- acc.dropped + 1)
  in
  let flows_arr = Array.of_list flows in
  let k_packet =
    Engine.kind engine (fun payload ->
        process_packet flows_arr.(payload lsr 1) ~is_first:(payload land 1 = 1))
  in
  Array.iteri
    (fun idx (flow : Traffic.flow) ->
      if flow.start < acc.first_arrival then acc.first_arrival <- flow.start;
      if flow.start > acc.last_arrival then acc.last_arrival <- flow.start;
      Engine.post engine ~at:flow.start k_packet ((idx lsl 1) lor 1);
      for i = 1 to flow.packets - 1 do
        Engine.post engine
          ~at:(flow.start +. (float_of_int i *. flow.interval))
          k_packet (idx lsl 1)
      done)
    flows_arr;
  Engine.run engine;
  mirror_registry acc;
  finish acc ~offered:(List.length flows)

let saturation_throughput ?(timing = default_timing) ~mode ~workload ~rates () =
  List.map
    (fun rate ->
      let flows = workload ~rate in
      let result =
        match mode with
        | `Difane mk ->
            run { Config.default with Config.timing } (mk ()) flows
        | `Nox mk -> run_nox ~timing (mk ()) flows
      in
      (rate, result))
    rates

(* Structure-of-arrays event queue keyed by (time, sequence); sequence
   preserves FIFO order among simultaneous events.

   The hot path is allocation-free: an event is three flat lanes —
   [tf] (time, a float array, so loads/stores/compares are raw double
   ops; a mutable float field in this mixed record would box on every
   write, and converting times to order-isomorphic int bits costs a
   foreign call per event since [Int64.bits_of_float] has no inline
   intrinsic), [meta] (sequence lsl 16 | kind), [arg] (a packed int
   payload) — and dispatch indexes an int-kind jump table instead of
   calling a heap-allocated thunk.  The clock lives in a one-element
   float array for the same no-boxing reason.  The legacy closure API
   ([schedule]/[after]) survives on top of this as kind 0, whose
   argument indexes a free-listed closure slab.

   Two structures hold pending events:

   - a {b staging run}: events posted outside dispatch (the bulk load —
     packet arrivals, fault schedules) append to a flat vector.  If the
     appends arrive already (time, seq)-ordered — the common case: a
     workload generated in time order — the run is consumed in place with
     {e zero} ordering work; otherwise it is sorted once, when [run]
     starts, by a three-lane quicksort.
   - a {b dynamic heap}: events posted from inside a handler (server
     completions, tunnel hops) go to a classic SoA binary min-heap.  Its
     population is the simulation's {e in-flight} work, not its total
     schedule, so it stays small and its log factor cheap.

   [run] repeatedly takes the smaller of (run head, heap top) — so the
   merged order is exactly the (time, seq) order a single heap would
   produce (the differential test against [Engine_legacy] proves it),
   but the common event costs O(1) instead of O(log pending). *)

type kind = int

let kind_bits = 16
let kind_mask = (1 lsl kind_bits) - 1

type t = {
  (* staging run *)
  mutable s_tf : float array;
  mutable s_meta : int array;
  mutable s_arg : int array;
  mutable s_head : int;  (* first unconsumed *)
  mutable s_len : int;  (* first free slot *)
  mutable s_sorted : bool;
  (* dynamic heap *)
  mutable h_tf : float array;
  mutable h_meta : int array;
  mutable h_arg : int array;
  mutable h_size : int;
  mutable running : bool;
  (* [0] = clock; [1] = time of the last staged append (neg_infinity when
     the run is empty) *)
  fcells : float array;
  mutable next_seq : int;
  mutable processed : int;
  mutable queue_peak : int;
  mutable mirrored : int;  (* processed already added to the registry *)
  mutable handlers : (int -> unit) array;
  mutable nkinds : int;
  (* closure slab backing the legacy thunk API (kind 0) *)
  mutable slab : (unit -> unit) array;
  mutable free : int array;  (* stack of free slab indices *)
  mutable free_top : int;
}

(* Registered here, at module init in the main domain; worker domains only
   bump the (atomic) cells when their runs finish. *)
let m_dispatched = Telemetry.counter "engine_events_dispatched"
let g_queue_peak = Telemetry.gauge "engine_queue_peak"

let initial_capacity = 1024
let heap_initial_capacity = 64
let nothing () = ()
let no_handler _ = ()

let kind t h =
  if t.nkinds > kind_mask then invalid_arg "Engine.kind: too many kinds";
  if t.nkinds = Array.length t.handlers then begin
    let bigger = Array.make (2 * t.nkinds) no_handler in
    Array.blit t.handlers 0 bigger 0 t.nkinds;
    t.handlers <- bigger
  end;
  let k = t.nkinds in
  t.handlers.(k) <- h;
  t.nkinds <- k + 1;
  k

let closure_kind = 0

let create () =
  let t =
    {
      s_tf = Array.make initial_capacity 0.;
      s_meta = Array.make initial_capacity 0;
      s_arg = Array.make initial_capacity 0;
      s_head = 0;
      s_len = 0;
      s_sorted = true;
      h_tf = Array.make heap_initial_capacity 0.;
      h_meta = Array.make heap_initial_capacity 0;
      h_arg = Array.make heap_initial_capacity 0;
      h_size = 0;
      running = false;
      fcells = [| 0.; neg_infinity |];
      next_seq = 0;
      processed = 0;
      queue_peak = 0;
      mirrored = 0;
      handlers = Array.make 8 no_handler;
      nkinds = 0;
      (* allocated on first use: packed-only engines never pay for it *)
      slab = [||];
      free = [||];
      free_top = 0;
    }
  in
  let run_thunk i =
    let f = t.slab.(i) in
    t.slab.(i) <- nothing;
    t.free.(t.free_top) <- i;
    t.free_top <- t.free_top + 1;
    f ()
  in
  ignore (kind t run_thunk : kind);
  t

let now t = Array.unsafe_get t.fcells 0
let pending t = t.s_len - t.s_head + t.h_size

(* ---- staging run ---- *)

let grow_staging t =
  let cap = Array.length t.s_tf in
  let ncap = 2 * cap in
  let tf = Array.make ncap 0. and meta = Array.make ncap 0 and arg = Array.make ncap 0 in
  Array.blit t.s_tf 0 tf 0 t.s_len;
  Array.blit t.s_meta 0 meta 0 t.s_len;
  Array.blit t.s_arg 0 arg 0 t.s_len;
  t.s_tf <- tf;
  t.s_meta <- meta;
  t.s_arg <- arg

(* three-lane in-place quicksort over [lo, hi) by (time, meta); meta
   carries the unique sequence in its high bits, so the order is total
   and any correct sort yields the same permutation *)
let sort_staging t =
  let tf = t.s_tf and meta = t.s_meta and arg = t.s_arg in
  let swap i j =
    let x = Array.unsafe_get tf i in
    Array.unsafe_set tf i (Array.unsafe_get tf j);
    Array.unsafe_set tf j x;
    let x = Array.unsafe_get meta i in
    Array.unsafe_set meta i (Array.unsafe_get meta j);
    Array.unsafe_set meta j x;
    let x = Array.unsafe_get arg i in
    Array.unsafe_set arg i (Array.unsafe_get arg j);
    Array.unsafe_set arg j x
  in
  let before i pt pmeta =
    let it = Array.unsafe_get tf i in
    it < pt || (it = pt && Array.unsafe_get meta i < pmeta)
  in
  let rec qsort lo hi =
    let n = hi - lo in
    if n > 1 then
      if n <= 12 then
        (* insertion sort: shift the three lanes together *)
        for i = lo + 1 to hi - 1 do
          let kt = tf.(i) and kmeta = meta.(i) and karg = arg.(i) in
          let j = ref (i - 1) in
          while
            !j >= lo
            && (tf.(!j) > kt || (tf.(!j) = kt && meta.(!j) > kmeta))
          do
            tf.(!j + 1) <- tf.(!j);
            meta.(!j + 1) <- meta.(!j);
            arg.(!j + 1) <- arg.(!j);
            decr j
          done;
          tf.(!j + 1) <- kt;
          meta.(!j + 1) <- kmeta;
          arg.(!j + 1) <- karg
        done
      else begin
        (* median-of-three pivot, parked at hi-2; Lomuto partition *)
        let mid = lo + (n / 2) in
        if before mid tf.(lo) meta.(lo) then swap lo mid;
        if before (hi - 1) tf.(lo) meta.(lo) then swap lo (hi - 1);
        if before (hi - 1) tf.(mid) meta.(mid) then swap mid (hi - 1);
        swap mid (hi - 2);
        let pt = tf.(hi - 2) and pmeta = meta.(hi - 2) in
        let store = ref lo in
        for i = lo to hi - 3 do
          if before i pt pmeta then begin
            swap i !store;
            incr store
          end
        done;
        swap !store (hi - 2);
        qsort lo !store;
        qsort (!store + 1) hi
      end
  in
  qsort t.s_head t.s_len;
  t.s_sorted <- true

(* consumed runs release their memory: reset indices, and drop a grown
   buffer back to the initial size once it drains (the never-shrinks fix) *)
let recycle_staging t =
  if t.s_head = t.s_len then begin
    t.s_head <- 0;
    t.s_len <- 0;
    t.s_sorted <- true;
    Array.unsafe_set t.fcells 1 neg_infinity;
    if Array.length t.s_tf > initial_capacity then begin
      t.s_tf <- Array.make initial_capacity 0.;
      t.s_meta <- Array.make initial_capacity 0;
      t.s_arg <- Array.make initial_capacity 0
    end
  end

(* ---- dynamic heap ---- *)

let grow_heap t =
  let cap = Array.length t.h_tf in
  let ncap = 2 * cap in
  let tf = Array.make ncap 0. and meta = Array.make ncap 0 and arg = Array.make ncap 0 in
  Array.blit t.h_tf 0 tf 0 t.h_size;
  Array.blit t.h_meta 0 meta 0 t.h_size;
  Array.blit t.h_arg 0 arg 0 t.h_size;
  t.h_tf <- tf;
  t.h_meta <- meta;
  t.h_arg <- arg

let shrink_heap t cap =
  let ncap = cap / 2 in
  t.h_tf <- Array.sub t.h_tf 0 ncap;
  t.h_meta <- Array.sub t.h_meta 0 ncap;
  t.h_arg <- Array.sub t.h_arg 0 ncap

let heap_push t tf meta arg =
  if t.h_size = Array.length t.h_tf then grow_heap t;
  let htf = t.h_tf and hmeta = t.h_meta and harg = t.h_arg in
  (* hole-based sift-up *)
  let j = ref t.h_size in
  t.h_size <- t.h_size + 1;
  let continue = ref true in
  while !continue && !j > 0 do
    let p = (!j - 1) / 2 in
    let pt = Array.unsafe_get htf p in
    if pt > tf || (pt = tf && Array.unsafe_get hmeta p > meta) then begin
      Array.unsafe_set htf !j pt;
      Array.unsafe_set hmeta !j (Array.unsafe_get hmeta p);
      Array.unsafe_set harg !j (Array.unsafe_get harg p);
      j := p
    end
    else continue := false
  done;
  Array.unsafe_set htf !j tf;
  Array.unsafe_set hmeta !j meta;
  Array.unsafe_set harg !j arg

(* remove the root: move the last element's hole down from the top *)
let heap_remove_root t =
  let n = t.h_size - 1 in
  t.h_size <- n;
  if n > 0 then begin
    let htf = t.h_tf and hmeta = t.h_meta and harg = t.h_arg in
    let lt = Array.unsafe_get htf n and lmeta = Array.unsafe_get hmeta n in
    let j = ref 0 in
    let continue = ref true in
    while !continue do
      let l = (2 * !j) + 1 in
      if l >= n then continue := false
      else begin
        let r = l + 1 in
        let c =
          if r < n then begin
            let lt' = Array.unsafe_get htf l and rt = Array.unsafe_get htf r in
            if
              rt < lt'
              || (rt = lt' && Array.unsafe_get hmeta r < Array.unsafe_get hmeta l)
            then r
            else l
          end
          else l
        in
        let ct = Array.unsafe_get htf c in
        if ct < lt || (ct = lt && Array.unsafe_get hmeta c < lmeta) then begin
          Array.unsafe_set htf !j ct;
          Array.unsafe_set hmeta !j (Array.unsafe_get hmeta c);
          Array.unsafe_set harg !j (Array.unsafe_get harg c);
          j := c
        end
        else continue := false
      end
    done;
    Array.unsafe_set htf !j (Array.unsafe_get htf n);
    Array.unsafe_set hmeta !j (Array.unsafe_get hmeta n);
    Array.unsafe_set harg !j (Array.unsafe_get harg n)
  end;
  let cap = Array.length t.h_tf in
  if cap > heap_initial_capacity && n <= cap / 4 then shrink_heap t cap

(* ---- posting ---- *)

(* The queue-peak gauge needs [max pending] over the engine's lifetime.
   Pending only rises on a post, and while staging (not running) it rises
   monotonically — so the staged path skips the check entirely and [run]
   samples pending once on entry; only posts made during dispatch (heap
   path) check per post. *)
let post t ~at k arg =
  if at < Array.unsafe_get t.fcells 0 then
    invalid_arg "Engine.schedule: time in the past";
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let meta = (seq lsl kind_bits) lor k in
  if t.running then begin
    (* empty-heap fast path: the common shape is one in-flight completion
       event at a time (capacity is never below heap_initial_capacity) *)
    if t.h_size = 0 then begin
      Array.unsafe_set t.h_tf 0 at;
      Array.unsafe_set t.h_meta 0 meta;
      Array.unsafe_set t.h_arg 0 arg;
      t.h_size <- 1
    end
    else heap_push t at meta arg;
    let p = pending t in
    if p > t.queue_peak then t.queue_peak <- p
  end
  else begin
    (* staged bulk-load path; meta (i.e. seq) ascends with append order,
       so order only breaks on a strictly earlier time than the previous
       append (neg_infinity when the run is empty, so the first append
       never trips it) *)
    let n = t.s_len in
    if n = Array.length t.s_tf then grow_staging t;
    if at < Array.unsafe_get t.fcells 1 then t.s_sorted <- false;
    Array.unsafe_set t.fcells 1 at;
    Array.unsafe_set t.s_tf n at;
    Array.unsafe_set t.s_meta n meta;
    Array.unsafe_set t.s_arg n arg;
    t.s_len <- n + 1
  end

let post_after t ~delay k arg =
  if delay < 0. then invalid_arg "Engine.after: negative delay";
  post t ~at:(now t +. delay) k arg

let slab_alloc t f =
  if t.free_top = 0 then begin
    let cap = Array.length t.slab in
    let ncap = if cap = 0 then initial_capacity else 2 * cap in
    let nslab = Array.make ncap nothing in
    Array.blit t.slab 0 nslab 0 cap;
    t.slab <- nslab;
    let nfree = Array.make ncap 0 in
    for i = 0 to ncap - cap - 1 do
      nfree.(i) <- ncap - 1 - i
    done;
    t.free <- nfree;
    t.free_top <- ncap - cap
  end;
  t.free_top <- t.free_top - 1;
  let i = t.free.(t.free_top) in
  t.slab.(i) <- f;
  i

let schedule t ~at f = post t ~at closure_kind (slab_alloc t f)
let after t ~delay f = post_after t ~delay closure_kind (slab_alloc t f)
(* a [kind] is valid by construction (abstract type), so no bounds check *)
let invoke t k arg = (Array.unsafe_get t.handlers k) arg

(* ---- execution ---- *)

(* Mirror per-engine tallies into the process-wide registry.  Done once
   per [run], not per event: the registry cells are atomic and both
   operations (add, max) are commutative, so concurrent engines on worker
   domains produce the same final registry values as any serial order. *)
let mirror t =
  if t.processed > t.mirrored then begin
    Telemetry.add m_dispatched (t.processed - t.mirrored);
    t.mirrored <- t.processed
  end;
  if t.queue_peak > 0 then
    Telemetry.set_max g_queue_peak (float_of_int t.queue_peak)

let run ?(until = infinity) t =
  if not t.s_sorted then begin
    (* compact the unconsumed tail to the front, then sort it once *)
    if t.s_head > 0 then begin
      let n = t.s_len - t.s_head in
      Array.blit t.s_tf t.s_head t.s_tf 0 n;
      Array.blit t.s_meta t.s_head t.s_meta 0 n;
      Array.blit t.s_arg t.s_head t.s_arg 0 n;
      t.s_head <- 0;
      t.s_len <- n
    end;
    sort_staging t
  end;
  let p = pending t in
  if p > t.queue_peak then t.queue_peak <- p;
  t.running <- true;
  (* The staged lanes cannot move during dispatch — posts from handlers
     go to the heap — so they are hoisted out of the loop; the heap lanes
     are reloaded each event because a handler's post may grow them.
     [t.s_head] is kept current before each handler call (handlers read
     [pending]); [np] counts dispatches in a register and is flushed to
     [t.processed] when the loop exits — nothing observes the counter
     mid-run.  The unsafe accesses are guarded by have_s / have_h, and a
     [kind] is valid by construction (the type is abstract). *)
  let s_tf = t.s_tf and s_meta = t.s_meta and s_arg = t.s_arg in
  let s_len = t.s_len in
  let rec loop sh np =
    let have_s = sh < s_len and have_h = t.h_size > 0 in
    if not (have_s || have_h) then np
    else begin
      let from_s =
        have_s
        && ((not have_h)
           ||
           let st = Array.unsafe_get s_tf sh
           and ht = Array.unsafe_get t.h_tf 0 in
           st < ht
           || (st = ht
              && Array.unsafe_get s_meta sh < Array.unsafe_get t.h_meta 0))
      in
      let tm =
        if from_s then Array.unsafe_get s_tf sh else Array.unsafe_get t.h_tf 0
      in
      if tm > until then np
      else begin
        Array.unsafe_set t.fcells 0 tm;
        if from_s then begin
          t.s_head <- sh + 1;
          (Array.unsafe_get t.handlers
             (Array.unsafe_get s_meta sh land kind_mask))
            (Array.unsafe_get s_arg sh);
          loop (sh + 1) (np + 1)
        end
        else begin
          let k = Array.unsafe_get t.h_meta 0 land kind_mask
          and a = Array.unsafe_get t.h_arg 0 in
          heap_remove_root t;
          (Array.unsafe_get t.handlers k) a;
          loop sh (np + 1)
        end
      end
    end
  in
  t.processed <- t.processed + loop t.s_head 0;
  t.running <- false;
  recycle_staging t;
  mirror t

let processed t = t.processed

type stats = { processed : int; pending : int; queue_peak : int }

let stats (t : t) =
  { processed = t.processed; pending = pending t; queue_peak = t.queue_peak }

let reset_stats (t : t) =
  t.processed <- 0;
  t.mirrored <- 0;
  t.queue_peak <- pending t

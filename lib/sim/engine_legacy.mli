(** The pre-packed closure-heap engine, kept as reference semantics for
    the differential test proving the structure-of-arrays {!Engine}
    dispatches event-for-event identically (including FIFO order among
    equal timestamps).  Not used by the simulator itself. *)

type t

val create : unit -> t
val now : t -> float
val schedule : t -> at:float -> (unit -> unit) -> unit
val after : t -> delay:float -> (unit -> unit) -> unit
val run : ?until:float -> t -> unit
val pending : t -> int
val processed : t -> int

(* The original closure-heap engine, kept verbatim (minus telemetry) as
   the reference semantics for the packed-engine differential test: a
   binary min-heap of event records keyed by (time, sequence), sequence
   preserving FIFO order among simultaneous events.  Nothing in the
   simulator proper uses this module. *)

type event = { time : float; seq : int; run : unit -> unit }

type t = {
  mutable heap : event array;
  mutable size : int;
  mutable clock : float;
  mutable next_seq : int;
  mutable processed : int;
}

let dummy = { time = 0.; seq = 0; run = (fun () -> ()) }
let create () = { heap = Array.make 256 dummy; size = 0; clock = 0.; next_seq = 0; processed = 0 }
let now t = t.clock

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if before t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && before t.heap.(l) t.heap.(!smallest) then smallest := l;
  if r < t.size && before t.heap.(r) t.heap.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let schedule t ~at run =
  if at < t.clock then invalid_arg "Engine.schedule: time in the past";
  if t.size = Array.length t.heap then begin
    let bigger = Array.make (2 * t.size) dummy in
    Array.blit t.heap 0 bigger 0 t.size;
    t.heap <- bigger
  end;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.heap.(t.size) <- { time = at; seq; run };
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let after t ~delay run =
  if delay < 0. then invalid_arg "Engine.after: negative delay";
  schedule t ~at:(t.clock +. delay) run

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    t.heap.(0) <- t.heap.(t.size);
    t.heap.(t.size) <- dummy;
    sift_down t 0;
    Some top
  end

let run ?(until = infinity) t =
  let rec loop () =
    if t.size > 0 && t.heap.(0).time <= until then
      match pop t with
      | None -> ()
      | Some ev ->
          t.clock <- ev.time;
          t.processed <- t.processed + 1;
          ev.run ();
          loop ()
  in
  loop ()

let pending t = t.size
let processed t = t.processed

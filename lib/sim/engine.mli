(** A discrete-event simulation engine.

    A binary event heap executed in (time, sequence) order — FIFO among
    equal timestamps.  All the timing experiments — flow-setup throughput,
    first-packet delay, policy-update convergence — run on this engine.

    The heap is a preallocated structure of arrays (float times + int
    sequence/kind/argument lanes), so the hot path allocates nothing:

    - {b packed events} ({!kind}/{!post}): dispatch indexes an int-kind
      jump table registered per engine and hands the handler a packed int
      argument.  Zero allocation per event — the form every hot path
      should use;
    - {b closure events} ({!schedule}/{!after}): the classic thunk API,
      implemented as a reserved kind whose argument indexes a free-listed
      closure slab.  Convenient for setup, tests and cold paths.

    Both forms interleave in one queue and share the FIFO guarantee.
    Equal-timestamp events are dispatched as one batch: the clock is
    written once and the batch drains before the [until] horizon is
    reconsidered.  [Engine_legacy] keeps the original closure-heap
    implementation as the reference semantics for the differential test.

    Engines are single-domain values; a sharded simulation runs one
    engine per domain.  Per-engine tallies ({!stats}) are mirrored into
    the process-wide registry once per {!run} — the registry cells are
    atomic and the mirroring operations commutative, so concurrent
    engines yield deterministic final registry values. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time, seconds.  Starts at [0.]. *)

(** {1 Packed events} *)

type kind [@@immediate]
(** An int index into the engine's dispatch table. *)

val kind : t -> (int -> unit) -> kind
(** Register a handler and get its kind.  Registration allocates; do it
    once at setup, then {!post} events of this kind for free. *)

val post : t -> at:float -> kind -> int -> unit
(** Schedule a packed event: at [at], the handler registered for [kind]
    is called with the int argument.  Allocation-free.
    @raise Invalid_argument if [at] is in the past. *)

val post_after : t -> delay:float -> kind -> int -> unit
(** [post t ~at:(now t +. delay)].  @raise Invalid_argument on a
    negative delay. *)

val invoke : t -> kind -> int -> unit
(** Call [kind]'s handler with the argument right now, bypassing the
    queue — the packed analogue of calling a stored continuation.  Used
    by components (e.g. {!Server}) that hold a packed continuation and
    must run it synchronously inside their own event. *)

(** {1 Closure events} *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** Schedule a callback.  @raise Invalid_argument if [at] is in the past. *)

val after : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~at:(now t +. delay)].  @raise Invalid_argument on a
    negative delay. *)

(** {1 Execution} *)

val run : ?until:float -> t -> unit
(** Execute events until the heap is empty (or the clock passes [until];
    remaining events stay queued).  The clock advances to each event's
    timestamp.  On return, per-engine tallies are mirrored into the
    registry ([engine_events_dispatched], [engine_queue_peak]). *)

val pending : t -> int
(** Events still queued. *)

val processed : t -> int
(** Events executed so far. *)

type stats = { processed : int; pending : int; queue_peak : int }

val stats : t -> stats
(** Per-engine dispatch tallies.  [queue_peak] is this engine's own
    high-water mark (not the process-wide gauge), so it is race-free
    under domains. *)

val reset_stats : t -> unit
(** Zero the processed count and re-arm the queue-peak high-water mark at
    the current queue depth (queued events survive). *)

(** A discrete-event simulation engine.

    A classic event-heap executor: callbacks scheduled at absolute times,
    executed in time order (FIFO among equal timestamps).  All the timing
    experiments — flow-setup throughput, first-packet delay, policy-update
    convergence — run on this engine. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time, seconds.  Starts at [0.]. *)

val schedule : t -> at:float -> (unit -> unit) -> unit
(** Schedule a callback.  @raise Invalid_argument if [at] is in the past. *)

val after : t -> delay:float -> (unit -> unit) -> unit
(** [schedule t ~at:(now t +. delay)].  @raise Invalid_argument on a
    negative delay. *)

val run : ?until:float -> t -> unit
(** Execute events until the heap is empty (or the clock passes [until];
    remaining events stay queued).  The clock advances to each event's
    timestamp. *)

val pending : t -> int
(** Events still queued. *)

val processed : t -> int
(** Events executed so far. *)

type stats = { processed : int; pending : int }

val stats : t -> stats
(** Dispatch tallies; the registry mirrors them process-wide as
    [engine_events_dispatched] and the [engine_queue_peak] high-water
    gauge. *)

val reset_stats : t -> unit
(** Zero the processed count (queued events survive). *)

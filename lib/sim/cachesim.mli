(** Trace-driven cache simulation: spliced wildcard caching vs microflow
    caching.

    The architectural difference between DIFANE's ingress caches and
    Ethane/NOX-style microflow caches is {e aggregation}: a spliced
    wildcard entry covers every header that falls in the same independent
    piece of a policy rule, while a microflow entry covers exactly one
    header.  This module replays a packet stream through an LRU cache of
    each kind and reports miss rates — the cache-size sweep of experiment
    F-MISS — without discrete-event machinery (a miss costs one cache
    fill; timing is irrelevant to the hit ratio). *)

type kind =
  | Wildcard_splice  (** DIFANE: one entry per independent rule piece *)
  | Microflow  (** Ethane/NOX: one exact-match entry per header *)
  | Aggregated
      (** DIFANE + cache-rule aggregation: spliced pieces with the same
          action whose predicates are adjacent (exact buddy unions) are
          statically merged to fixpoint, so several pieces share one
          resident entry — the trace-driven model of {!Aggregate}'s
          buddy merging.  Hit attribution stays per pre-merge piece, so
          [origin_hits] is exactly as fine-grained as the other kinds;
          [distinct_keys] reports the {e merged} working set (the
          installed-entry count a TCAM would hold). *)

type result = {
  kind : kind;
  cache_size : int;
  lookups : int;
  misses : int;
  miss_rate : float;
  distinct_keys : int;  (** working-set size under this caching scheme *)
  origin_hits : (int * int) list;
      (** cache hits attributed to the policy rule each key was derived
          from (the spliced piece's origin, or the microflow header's
          first match), ascending rule id — the trace-driven face of the
          provenance attribution the live switches keep *)
}

val packet_stream : Traffic.flow list -> Header.t array
(** Expand flows into their individual packets, ordered by packet
    timestamp — the reference stream fed to the cache. *)

val run : kind -> Classifier.t -> cache_size:int -> Header.t array -> result
(** LRU simulation of one cache kind at one size.
    @raise Invalid_argument if [cache_size < 1]. *)

val run_opt : kind -> Classifier.t -> cache_size:int -> Header.t array -> result
(** Belady's OPT replacement (evict the entry reused furthest in the
    future) — unrealisable online, but the floor any replacement policy
    is measured against.  Same keys as {!run}. *)

val sweep :
  Classifier.t -> cache_sizes:int list -> Header.t array -> (int * result * result) list
(** For each cache size: [(size, wildcard result, microflow result)].
    Spliced keys are computed once and shared across sizes. *)

val sweep_with_opt :
  Classifier.t ->
  cache_sizes:int list ->
  Header.t array ->
  (int * result * result * result) list
(** Like {!sweep} plus Belady-OPT replacement on the wildcard keys:
    [(size, wildcard LRU, wildcard OPT, microflow LRU)]. *)

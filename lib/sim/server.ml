(* The backlog is a ring of parallel lanes rather than a closure queue:
   a packed job is a (kind, arg) pair in two int-compatible lanes and
   costs no allocation to enqueue, serve, or complete; a thunk job parks
   its closure in the third lane.  The completion event itself is one
   packed engine event per job (kind [k_done], no payload — the job in
   service lives in [cur_*]), so a fully packed submit/serve/complete
   cycle allocates nothing. *)

type t = {
  engine : Engine.t;
  service_time : float;
  queue_capacity : int;
  mutable jk : Engine.kind array;
  mutable ja : int array;
  mutable jf : (unit -> unit) array;
  mutable head : int;
  mutable len : int;
  (* job currently in service (dequeued at start, like the legacy closure
     capture, so [queue_length] excludes it) *)
  mutable cur_k : Engine.kind;
  mutable cur_a : int;
  mutable cur_f : unit -> unit;
  mutable k_done : Engine.kind;
  mutable busy : bool;
  mutable accepted : int;
  mutable rejected : int;
  mutable completed : int;
  mutable started_at : float;
}

(* unique physical sentinel: a slot holding it is a packed job *)
let no_thunk : unit -> unit = fun () -> ()

let start_next t =
  if t.len = 0 then t.busy <- false
  else begin
    t.busy <- true;
    (* ring capacity is a power of two, so wraparound is a mask *)
    let i = t.head in
    t.head <- (i + 1) land (Array.length t.jk - 1);
    t.len <- t.len - 1;
    t.cur_k <- t.jk.(i);
    t.cur_a <- t.ja.(i);
    (* the [!=] guards skip the pointer-write barrier on the all-packed
       steady state, where every closure slot already holds [no_thunk] *)
    let f = t.jf.(i) in
    if f != no_thunk then begin
      t.jf.(i) <- no_thunk;
      t.cur_f <- f
    end
    else if t.cur_f != no_thunk then t.cur_f <- no_thunk;
    (* service_time is validated positive at create, so this bypasses
       post_after's per-call delay check *)
    Engine.post t.engine ~at:(Engine.now t.engine +. t.service_time) t.k_done 0
  end

let create engine ~service_time ~queue_capacity =
  if service_time <= 0. then invalid_arg "Server.create: nonpositive service time";
  if queue_capacity < 0 then invalid_arg "Server.create: negative capacity";
  let dummy = Engine.kind engine (fun _ -> ()) in
  let cap = 16 in
  let t =
    {
      engine;
      service_time;
      queue_capacity;
      jk = Array.make cap dummy;
      ja = Array.make cap 0;
      jf = Array.make cap no_thunk;
      head = 0;
      len = 0;
      cur_k = dummy;
      cur_a = 0;
      cur_f = no_thunk;
      k_done = dummy;
      busy = false;
      accepted = 0;
      rejected = 0;
      completed = 0;
      started_at = 0.;
    }
  in
  t.k_done <-
    Engine.kind engine (fun _ ->
        t.completed <- t.completed + 1;
        let f = t.cur_f in
        if f == no_thunk then Engine.invoke t.engine t.cur_k t.cur_a
        else begin
          t.cur_f <- no_thunk;
          f ()
        end;
        start_next t);
  t

let grow t =
  let cap = Array.length t.jk in
  let ncap = 2 * cap in
  let jk = Array.make ncap t.jk.(0) in
  let ja = Array.make ncap 0 in
  let jf = Array.make ncap no_thunk in
  for i = 0 to t.len - 1 do
    let s = (t.head + i) mod cap in
    jk.(i) <- t.jk.(s);
    ja.(i) <- t.ja.(s);
    jf.(i) <- t.jf.(s)
  done;
  t.jk <- jk;
  t.ja <- ja;
  t.jf <- jf;
  t.head <- 0

let enqueue t k a f =
  if t.accepted = 1 then t.started_at <- Engine.now t.engine;
  if t.len = Array.length t.jk then grow t;
  let i = (t.head + t.len) land (Array.length t.jk - 1) in
  t.jk.(i) <- k;
  t.ja.(i) <- a;
  (* free slots hold [no_thunk]; packed jobs can skip the barrier *)
  if f != no_thunk then t.jf.(i) <- f;
  t.len <- t.len + 1;
  if not t.busy then start_next t

let admit t =
  if t.len >= t.queue_capacity && t.busy then begin
    t.rejected <- t.rejected + 1;
    false
  end
  else begin
    t.accepted <- t.accepted + 1;
    true
  end

let submit t job =
  admit t
  && begin
       enqueue t t.k_done 0 job;
       true
     end

let submit_packed t k a =
  (* admit + enqueue fused: this is the per-miss hot path *)
  if t.len >= t.queue_capacity && t.busy then begin
    t.rejected <- t.rejected + 1;
    false
  end
  else begin
    t.accepted <- t.accepted + 1;
    enqueue t k a no_thunk;
    true
  end

let queue_length t = t.len
let accepted t = t.accepted
let rejected t = t.rejected
let completed t = t.completed

let utilisation t =
  (* service is deterministic, so busy time is completions x service —
     accumulating it per completion would box a float every job *)
  let elapsed = Engine.now t.engine -. t.started_at in
  if elapsed <= 0. then 0.
  else Float.min 1. (float_of_int t.completed *. t.service_time /. elapsed)

(** A single-server FIFO service queue with bounded backlog.

    Models the two serial bottlenecks of the evaluation: the reactive
    controller's CPU (NOX) and an authority switch's flow-setup path
    (DIFANE).  Jobs are served one at a time, each taking [service_time];
    jobs arriving to a full queue are rejected — which is what saturates
    throughput past capacity in the paper's figures. *)

type t

val create : Engine.t -> service_time:float -> queue_capacity:int -> t
(** @raise Invalid_argument on nonpositive service time or negative
    capacity. *)

val submit : t -> (unit -> unit) -> bool
(** Enqueue a job; its callback runs at service completion.  Returns
    [false] (and drops the job) when the backlog is at capacity. *)

val submit_packed : t -> Engine.kind -> int -> bool
(** Like {!submit}, but the continuation is a packed engine event:
    at service completion the handler registered for the kind is invoked
    (synchronously) with the int argument.  Allocation-free — the form
    the simulator's hot paths use. *)

val queue_length : t -> int
val accepted : t -> int
val rejected : t -> int
val completed : t -> int

val utilisation : t -> float
(** Busy time over elapsed time so far. *)

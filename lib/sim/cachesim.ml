type kind = Wildcard_splice | Microflow

let m_lookups = Telemetry.counter "cachesim_lookups"
let m_misses = Telemetry.counter "cachesim_misses"

type result = {
  kind : kind;
  cache_size : int;
  lookups : int;
  misses : int;
  miss_rate : float;
  distinct_keys : int;
  origin_hits : (int * int) list;
}

let packet_stream flows =
  let packets =
    List.concat_map
      (fun (f : Traffic.flow) ->
        List.init f.packets (fun i ->
            (f.start +. (float_of_int i *. f.interval), f.header)))
      flows
  in
  let arr = Array.of_list packets in
  Array.sort (fun (a, _) (b, _) -> Float.compare a b) arr;
  Array.map snd arr

(* Cache keys are small ints: headers (or spliced pieces) are interned
   once, so the LRU inner loop is allocation-free. *)

let header_key_table () : (string, int) Hashtbl.t = Hashtbl.create 1024

let header_repr h =
  let vs = Header.values h in
  String.concat "," (Array.to_list (Array.map Int64.to_string vs))

let intern tbl repr =
  match Hashtbl.find_opt tbl repr with
  | Some k -> k
  | None ->
      let k = Hashtbl.length tbl in
      Hashtbl.add tbl repr k;
      k

(* Besides the per-packet key stream, record each key's provenance: the
   policy rule whose piece (wildcard) or first match (microflow) the key
   stands for, -1 for unmatched headers.  One key has one origin, so the
   mapping is a side table filled while interning. *)
let keys_for kind classifier stream =
  let tbl = header_key_table () in
  let origin_of_key : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  let memo : (string, int) Hashtbl.t = Hashtbl.create 1024 in
  let keys =
    Array.map
      (fun h ->
        let repr = header_repr h in
        match kind with
        | Microflow ->
            let k = intern tbl repr in
            if not (Hashtbl.mem origin_of_key k) then
              Hashtbl.add origin_of_key k
                (match Classifier.first_match classifier h with
                | Some r -> r.Rule.id
                | None -> -1);
            k
        | Wildcard_splice -> (
            match Hashtbl.find_opt memo repr with
            | Some k -> k
            | None ->
                let k =
                  match Splice.for_header classifier h with
                  | Some piece ->
                      let k = intern tbl (Pred.to_string piece.Splice.pred) in
                      if not (Hashtbl.mem origin_of_key k) then
                        Hashtbl.add origin_of_key k piece.Splice.origin.Rule.id;
                      k
                  | None ->
                      let k = intern tbl ("nomatch:" ^ repr) in
                      if not (Hashtbl.mem origin_of_key k) then
                        Hashtbl.add origin_of_key k (-1);
                      k
                in
                Hashtbl.add memo repr k;
                k))
      stream
  in
  (keys, origin_of_key)

(* LRU over int keys: intrusive doubly-linked list + array index. *)
module Lru = struct
  type t = {
    capacity : int;
    position : (int, int) Hashtbl.t; (* key -> node *)
    keys : int array; (* node -> key *)
    prev : int array;
    next : int array;
    mutable head : int; (* most recent node, -1 if empty *)
    mutable tail : int; (* least recent node *)
    mutable size : int;
  }

  let create capacity =
    {
      capacity;
      position = Hashtbl.create (2 * capacity);
      keys = Array.make capacity (-1);
      prev = Array.make capacity (-1);
      next = Array.make capacity (-1);
      head = -1;
      tail = -1;
      size = 0;
    }

  let unlink t node =
    let p = t.prev.(node) and n = t.next.(node) in
    if p >= 0 then t.next.(p) <- n else t.head <- n;
    if n >= 0 then t.prev.(n) <- p else t.tail <- p

  let push_front t node =
    t.prev.(node) <- -1;
    t.next.(node) <- t.head;
    if t.head >= 0 then t.prev.(t.head) <- node else t.tail <- node;
    t.head <- node

  (* returns true on hit *)
  let access t key =
    match Hashtbl.find_opt t.position key with
    | Some node ->
        if t.head <> node then begin
          unlink t node;
          push_front t node
        end;
        true
    | None ->
        let node =
          if t.size < t.capacity then begin
            let n = t.size in
            t.size <- t.size + 1;
            n
          end
          else begin
            let victim = t.tail in
            Hashtbl.remove t.position t.keys.(victim);
            unlink t victim;
            victim
          end
        in
        t.keys.(node) <- key;
        Hashtbl.replace t.position key node;
        push_front t node;
        false
end

let distinct_of keys =
  let seen = Hashtbl.create 1024 in
  Array.iter (fun k -> Hashtbl.replace seen k ()) keys;
  Hashtbl.length seen

(* Cache hits per origin rule, sorted by rule id; unmatched (-1) excluded. *)
let origin_hits_of ~origins hit_counts =
  Hashtbl.fold
    (fun key hits acc ->
      if hits = 0 then acc
      else
        match Hashtbl.find_opt origins key with
        | Some origin when origin >= 0 -> (origin, hits) :: acc
        | _ -> acc)
    hit_counts []
  |> List.fold_left
       (fun tbl (origin, hits) ->
         Hashtbl.replace tbl origin
           (hits + Option.value ~default:0 (Hashtbl.find_opt tbl origin));
         tbl)
       (Hashtbl.create 64)
  |> fun tbl ->
  Hashtbl.fold (fun o h acc -> (o, h) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let run_keys kind ~cache_size (keys, origins) =
  if cache_size < 1 then invalid_arg "Cachesim.run: cache_size must be >= 1";
  let lru = Lru.create cache_size in
  let misses = ref 0 in
  let hit_counts : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  Array.iter
    (fun k ->
      if Lru.access lru k then
        Hashtbl.replace hit_counts k
          (1 + Option.value ~default:0 (Hashtbl.find_opt hit_counts k))
      else incr misses)
    keys;
  let lookups = Array.length keys in
  Telemetry.add m_lookups lookups;
  Telemetry.add m_misses !misses;
  {
    kind;
    cache_size;
    lookups;
    misses = !misses;
    miss_rate = (if lookups = 0 then 0. else float_of_int !misses /. float_of_int lookups);
    distinct_keys = distinct_of keys;
    origin_hits = origin_hits_of ~origins hit_counts;
  }

let run kind classifier ~cache_size stream =
  run_keys kind ~cache_size (keys_for kind classifier stream)

(* Belady's OPT: evict the resident key whose next use lies furthest in
   the future.  Next-use positions are precomputed by a single backward
   pass; the eviction scan is linear in the cache size. *)
let run_opt_keys kind ~cache_size (keys, origins) =
  if cache_size < 1 then invalid_arg "Cachesim.run_opt: cache_size must be >= 1";
  let n = Array.length keys in
  let next_use = Array.make n max_int in
  let last_seen = Hashtbl.create 1024 in
  for i = n - 1 downto 0 do
    (match Hashtbl.find_opt last_seen keys.(i) with
    | Some j -> next_use.(i) <- j
    | None -> next_use.(i) <- max_int);
    Hashtbl.replace last_seen keys.(i) i
  done;
  let resident : (int, int) Hashtbl.t = Hashtbl.create (2 * cache_size) in
  (* key -> its next use position, kept current as the stream advances *)
  let misses = ref 0 in
  let hit_counts : (int, int) Hashtbl.t = Hashtbl.create 1024 in
  Array.iteri
    (fun i key ->
      (match Hashtbl.find_opt resident key with
      | Some _ ->
          Hashtbl.replace hit_counts key
            (1 + Option.value ~default:0 (Hashtbl.find_opt hit_counts key))
      | None ->
          incr misses;
          if Hashtbl.length resident >= cache_size then begin
            let victim, _ =
              Hashtbl.fold
                (fun k nu (bk, bnu) -> if nu > bnu then (k, nu) else (bk, bnu))
                resident (-1, min_int)
            in
            Hashtbl.remove resident victim
          end);
      Hashtbl.replace resident key next_use.(i))
    keys;
  Telemetry.add m_lookups n;
  Telemetry.add m_misses !misses;
  {
    kind;
    cache_size;
    lookups = n;
    misses = !misses;
    miss_rate = (if n = 0 then 0. else float_of_int !misses /. float_of_int n);
    distinct_keys = distinct_of keys;
    origin_hits = origin_hits_of ~origins hit_counts;
  }

let run_opt kind classifier ~cache_size stream =
  run_opt_keys kind ~cache_size (keys_for kind classifier stream)

let sweep classifier ~cache_sizes stream =
  let wild_keys = keys_for Wildcard_splice classifier stream in
  let micro_keys = keys_for Microflow classifier stream in
  List.map
    (fun size ->
      ( size,
        run_keys Wildcard_splice ~cache_size:size wild_keys,
        run_keys Microflow ~cache_size:size micro_keys ))
    cache_sizes

let sweep_with_opt classifier ~cache_sizes stream =
  let wild_keys = keys_for Wildcard_splice classifier stream in
  let micro_keys = keys_for Microflow classifier stream in
  List.map
    (fun size ->
      ( size,
        run_keys Wildcard_splice ~cache_size:size wild_keys,
        run_opt_keys Wildcard_splice ~cache_size:size wild_keys,
        run_keys Microflow ~cache_size:size micro_keys ))
    cache_sizes

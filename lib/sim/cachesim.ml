type kind = Wildcard_splice | Microflow | Aggregated

let m_lookups = Telemetry.counter "cachesim_lookups"
let m_misses = Telemetry.counter "cachesim_misses"

type result = {
  kind : kind;
  cache_size : int;
  lookups : int;
  misses : int;
  miss_rate : float;
  distinct_keys : int;
  origin_hits : (int * int) list;
}

let packet_stream flows =
  let packets =
    List.concat_map
      (fun (f : Traffic.flow) ->
        List.init f.packets (fun i ->
            (f.start +. (float_of_int i *. f.interval), f.header)))
      flows
  in
  let arr = Array.of_list packets in
  Array.sort (fun (a, _) (b, _) -> Float.compare a b) arr;
  Array.map snd arr

(* Cache keys are small ints: headers (or spliced pieces) are interned
   once, so the LRU inner loop is allocation-free.  Interning is keyed on
   the header itself — its int-packed key and precomputed hash make the
   per-packet lookup a two-int compare — instead of a per-packet decimal
   string of its field values. *)

module Htbl = Hashtbl.Make (struct
  type t = Header.t

  let equal = Header.equal
  let hash = Header.hash
end)

(* A keyed stream, plus each key's provenance: the policy rule whose
   piece (wildcard) or first match (microflow) the key stands for, -1 for
   unmatched headers.  Microflow provenance is resolved lazily —
   [origin_of] walks the classifier only for keys somebody asks about
   (the ones with cache hits), so a thrashing stream never pays for
   attribution it will not report.

   [attr_keys] separates cache identity from hit attribution: for the
   plain kinds it is [keys] itself (same array), but the [Aggregated]
   kind merges several pieces into one resident entry while [attr_keys]
   keeps each position's pre-merge piece — so per-origin hit counts stay
   exact even when one installed entry stands for several rules, the
   trace-driven mirror of the live switches' multi-part metas. *)
type keyed = { keys : int array; attr_keys : int array; origin_of : int -> int }

let keys_for kind classifier stream =
  match kind with
  | Microflow ->
      let tbl : int Htbl.t = Htbl.create 1024 in
      let headers_rev = ref [] in
      let keys =
        Array.map
          (fun h ->
            match Htbl.find_opt tbl h with
            | Some k -> k
            | None ->
                let k = Htbl.length tbl in
                Htbl.add tbl h k;
                headers_rev := h :: !headers_rev;
                k)
          stream
      in
      (* key -> header, materialized only if provenance is ever asked *)
      let header_of =
        lazy
          (let a = Array.of_list !headers_rev in
           let n = Array.length a in
           fun k -> a.(n - 1 - k))
      in
      let origin_memo : (int, int) Hashtbl.t = Hashtbl.create 64 in
      let origin_of k =
        match Hashtbl.find_opt origin_memo k with
        | Some o -> o
        | None ->
            let o =
              match Classifier.first_match classifier (Lazy.force header_of k) with
              | Some r -> r.Rule.id
              | None -> -1
            in
            Hashtbl.add origin_memo k o;
            o
      in
      { keys; attr_keys = keys; origin_of }
  | Wildcard_splice | Aggregated ->
      (* Key identity is the spliced piece, so splicing cannot be
         deferred — but it is memoized per distinct header, and piece
         interning goes through the piece's predicate rendering only once
         per distinct header. *)
      let memo : int Htbl.t = Htbl.create 1024 in
      let piece_tbl : (string, int) Hashtbl.t = Hashtbl.create 1024 in
      let origin_of_key : (int, int) Hashtbl.t = Hashtbl.create 1024 in
      (* piece key -> (pred, action): the merge inputs of the Aggregated
         kind; nomatch keys carry no pred and never merge *)
      let info_of_key : (int, Pred.t * Action.t) Hashtbl.t = Hashtbl.create 1024 in
      let intern ?info repr origin =
        match Hashtbl.find_opt piece_tbl repr with
        | Some k -> k
        | None ->
            let k = Hashtbl.length piece_tbl in
            Hashtbl.add piece_tbl repr k;
            Hashtbl.add origin_of_key k origin;
            Option.iter (fun i -> Hashtbl.add info_of_key k i) info;
            k
      in
      let nomatch = ref 0 in
      let attr_keys =
        Array.map
          (fun h ->
            match Htbl.find_opt memo h with
            | Some k -> k
            | None ->
                let k =
                  match Splice.for_header classifier h with
                  | Some piece ->
                      intern
                        ~info:(piece.Splice.pred, piece.Splice.origin.Rule.action)
                        (Pred.to_string piece.Splice.pred)
                        piece.Splice.origin.Rule.id
                  | None ->
                      (* each unmatched header is its own key, as before
                         (exact headers never collide with piece preds) *)
                      incr nomatch;
                      intern (Printf.sprintf "nomatch:%d" !nomatch) (-1)
                in
                Htbl.add memo h k;
                k)
          stream
      in
      let origin_of k = Option.value ~default:(-1) (Hashtbl.find_opt origin_of_key k) in
      if kind = Wildcard_splice then { keys = attr_keys; attr_keys; origin_of }
      else begin
        (* Aggregated: statically buddy-merge the distinct pieces to
           fixpoint — two pieces with the same action whose predicates
           are adjacent become one resident entry, exactly the merges
           the live Aggregate engine performs on installed rules.
           Pieces stay resident or evict together; attribution keeps the
           pre-merge key per position, so origin hit counts are exact. *)
        let n = Hashtbl.length piece_tbl in
        let parent = Array.init n (fun i -> i) in
        let rec find i = if parent.(i) = i then i else find parent.(i) in
        let info = Array.make (max 1 n) None in
        Hashtbl.iter (fun k i -> info.(k) <- Some i) info_of_key;
        let changed = ref true in
        while !changed do
          changed := false;
          for i = 0 to n - 1 do
            if find i = i then
              match info.(i) with
              | None -> ()
              | Some (pi, ai) ->
                  for j = i + 1 to n - 1 do
                    if find j = j && find i = i then
                      match info.(j) with
                      | Some (pj, aj) when Action.equal ai aj -> (
                          match Pred.buddy_union pi pj with
                          | Some u ->
                              parent.(j) <- i;
                              info.(i) <- Some (u, ai);
                              info.(j) <- None;
                              changed := true
                          | None -> ())
                      | Some _ | None -> ()
                  done
          done
        done;
        { keys = Array.map find attr_keys; attr_keys; origin_of }
      end

(* LRU over dense int keys: intrusive doubly-linked list, with the
   key->node index a flat array — interned keys are 0..bound-1, so the
   whole access path is array arithmetic, no hashing. *)
module Lru = struct
  type t = {
    capacity : int;
    position : int array; (* key -> node, -1 if absent *)
    keys : int array; (* node -> key *)
    prev : int array;
    next : int array;
    mutable head : int; (* most recent node, -1 if empty *)
    mutable tail : int; (* least recent node *)
    mutable size : int;
  }

  let create ~key_bound capacity =
    {
      capacity;
      position = Array.make (max 1 key_bound) (-1);
      keys = Array.make capacity (-1);
      prev = Array.make capacity (-1);
      next = Array.make capacity (-1);
      head = -1;
      tail = -1;
      size = 0;
    }

  let unlink t node =
    let p = t.prev.(node) and n = t.next.(node) in
    if p >= 0 then t.next.(p) <- n else t.head <- n;
    if n >= 0 then t.prev.(n) <- p else t.tail <- p

  let push_front t node =
    t.prev.(node) <- -1;
    t.next.(node) <- t.head;
    if t.head >= 0 then t.prev.(t.head) <- node else t.tail <- node;
    t.head <- node

  (* returns true on hit *)
  let access t key =
    let node = Array.unsafe_get t.position key in
    if node >= 0 then begin
      if t.head <> node then begin
        unlink t node;
        push_front t node
      end;
      true
    end
    else begin
      let node =
        if t.size < t.capacity then begin
          let n = t.size in
          t.size <- t.size + 1;
          n
        end
        else begin
          let victim = t.tail in
          t.position.(t.keys.(victim)) <- -1;
          unlink t victim;
          victim
        end
      in
      t.keys.(node) <- key;
      Array.unsafe_set t.position key node;
      push_front t node;
      false
    end
end

(* every key is < key_bound, so distinct counting is a flat mark array *)
let key_bound_of keys = 1 + Array.fold_left max (-1) keys

let distinct_of ~key_bound keys =
  let seen = Bytes.make (max 1 key_bound) '\000' in
  let n = ref 0 in
  Array.iter
    (fun k ->
      if Bytes.get seen k = '\000' then begin
        Bytes.set seen k '\001';
        incr n
      end)
    keys;
  !n

(* Cache hits per origin rule, sorted by rule id; unmatched (-1) excluded.
   Provenance is resolved here, per key with hits — never for the
   (possibly huge) hitless tail of a thrashing stream. *)
let origin_hits_of ~origin_of hit_counts =
  let acc = ref [] in
  Array.iteri
    (fun key hits ->
      if hits > 0 then
        match origin_of key with
        | origin when origin >= 0 -> acc := (origin, hits) :: !acc
        | _ -> ())
    hit_counts;
  !acc
  |> List.fold_left
       (fun tbl (origin, hits) ->
         Hashtbl.replace tbl origin
           (hits + Option.value ~default:0 (Hashtbl.find_opt tbl origin));
         tbl)
       (Hashtbl.create 64)
  |> fun tbl ->
  Hashtbl.fold (fun o h acc -> (o, h) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let run_keys kind ~cache_size { keys; attr_keys; origin_of } =
  if cache_size < 1 then invalid_arg "Cachesim.run: cache_size must be >= 1";
  (* attribution keys bound the cache keys too: a merged key reuses the
     index of its lowest-numbered member *)
  let key_bound = key_bound_of attr_keys in
  let lru = Lru.create ~key_bound cache_size in
  let misses = ref 0 in
  (* hits are counted against the position's attribution key (the
     pre-merge piece), not the resident key, so per-origin counts stay
     exact under aggregation; identical arrays for the plain kinds *)
  let hit_counts = Array.make (max 1 key_bound) 0 in
  (* Traced and untraced loops are split so the untraced hot loop stays
     exactly the PR-8 shape; the model has no switches, so postcards
     carry switch -1 and the key as both packet key and rule id. *)
  if Ptrace.enabled () then
    Array.iteri
      (fun i k ->
        let at = float_of_int i in
        ignore (Ptrace.begin_packet_key at ~lo:k ~hi:0);
        if Lru.access lru k then begin
          let a = Array.unsafe_get attr_keys i in
          Array.unsafe_set hit_counts a (1 + Array.unsafe_get hit_counts a);
          Ptrace.emit ~at Ptrace.Cache_hit ~switch:(-1) ~rule:k ~aux:0;
          Ptrace.emit ~at Ptrace.Deliver ~switch:(-1) ~rule:(-1) ~aux:1
        end
        else begin
          incr misses;
          Ptrace.emit ~at Ptrace.Miss ~switch:(-1) ~rule:(-1) ~aux:(-1);
          Ptrace.emit ~at Ptrace.Install ~switch:(-1) ~rule:k ~aux:0;
          Ptrace.emit ~at Ptrace.Deliver ~switch:(-1) ~rule:(-1) ~aux:0
        end)
      keys
  else
    Array.iteri
      (fun i k ->
        if Lru.access lru k then begin
          let a = Array.unsafe_get attr_keys i in
          Array.unsafe_set hit_counts a (1 + Array.unsafe_get hit_counts a)
        end
        else incr misses)
      keys;
  let lookups = Array.length keys in
  Telemetry.add m_lookups lookups;
  Telemetry.add m_misses !misses;
  {
    kind;
    cache_size;
    lookups;
    misses = !misses;
    miss_rate = (if lookups = 0 then 0. else float_of_int !misses /. float_of_int lookups);
    distinct_keys = distinct_of ~key_bound keys;
    origin_hits = origin_hits_of ~origin_of hit_counts;
  }

let run kind classifier ~cache_size stream =
  run_keys kind ~cache_size (keys_for kind classifier stream)

(* Belady's OPT: evict the resident key whose next use lies furthest in
   the future.  Next-use positions are precomputed by a single backward
   pass; the eviction scan is linear in the cache size. *)
let run_opt_keys kind ~cache_size { keys; attr_keys; origin_of } =
  if cache_size < 1 then invalid_arg "Cachesim.run_opt: cache_size must be >= 1";
  let n = Array.length keys in
  let key_bound = key_bound_of attr_keys in
  let next_use = Array.make n max_int in
  let last_seen = Array.make (max 1 key_bound) (-1) in
  for i = n - 1 downto 0 do
    let j = last_seen.(keys.(i)) in
    next_use.(i) <- (if j >= 0 then j else max_int);
    last_seen.(keys.(i)) <- i
  done;
  let resident : (int, int) Hashtbl.t = Hashtbl.create (2 * cache_size) in
  (* key -> its next use position, kept current as the stream advances *)
  let misses = ref 0 in
  let hit_counts = Array.make (max 1 key_bound) 0 in
  Array.iteri
    (fun i key ->
      (match Hashtbl.find_opt resident key with
      | Some _ -> hit_counts.(attr_keys.(i)) <- 1 + hit_counts.(attr_keys.(i))
      | None ->
          incr misses;
          if Hashtbl.length resident >= cache_size then begin
            let victim, _ =
              Hashtbl.fold
                (fun k nu (bk, bnu) -> if nu > bnu then (k, nu) else (bk, bnu))
                resident (-1, min_int)
            in
            Hashtbl.remove resident victim
          end);
      Hashtbl.replace resident key next_use.(i))
    keys;
  Telemetry.add m_lookups n;
  Telemetry.add m_misses !misses;
  {
    kind;
    cache_size;
    lookups = n;
    misses = !misses;
    miss_rate = (if n = 0 then 0. else float_of_int !misses /. float_of_int n);
    distinct_keys = distinct_of ~key_bound keys;
    origin_hits = origin_hits_of ~origin_of hit_counts;
  }

let run_opt kind classifier ~cache_size stream =
  run_opt_keys kind ~cache_size (keys_for kind classifier stream)

let sweep classifier ~cache_sizes stream =
  let wild_keys = keys_for Wildcard_splice classifier stream in
  let micro_keys = keys_for Microflow classifier stream in
  List.map
    (fun size ->
      ( size,
        run_keys Wildcard_splice ~cache_size:size wild_keys,
        run_keys Microflow ~cache_size:size micro_keys ))
    cache_sizes

let sweep_with_opt classifier ~cache_sizes stream =
  let wild_keys = keys_for Wildcard_splice classifier stream in
  let micro_keys = keys_for Microflow classifier stream in
  List.map
    (fun size ->
      ( size,
        run_keys Wildcard_splice ~cache_size:size wild_keys,
        run_opt_keys Wildcard_splice ~cache_size:size wild_keys,
        run_keys Microflow ~cache_size:size micro_keys ))
    cache_sizes

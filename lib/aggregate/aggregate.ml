type config = {
  enabled : bool;
  cover_limit : int option;
  merge_fragments : bool;
  merge_exact : bool;
  merge_covers : bool;
}

let default =
  {
    enabled = false;
    cover_limit = None;
    merge_fragments = true;
    merge_exact = true;
    merge_covers = true;
  }

let enabled_default = { default with enabled = true; cover_limit = Some 4 }

let cover_limit c = if c.enabled then c.cover_limit else None

type stats = {
  installs : int;
  merges : int;
  suppressed : int;
  cover_installs : int;
}

type t = {
  config : config;
  mutable n_installs : int;
  mutable n_merges : int;
  mutable n_suppressed : int;
  mutable n_cover_installs : int;
  m_merges : Telemetry.counter;
  m_suppressed : Telemetry.counter;
}

let create config =
  {
    config;
    n_installs = 0;
    n_merges = 0;
    n_suppressed = 0;
    n_cover_installs = 0;
    m_merges = Telemetry.counter "aggregate_merges";
    m_suppressed = Telemetry.counter "aggregate_suppressed";
  }

let stats t =
  {
    installs = t.n_installs;
    merges = t.n_merges;
    suppressed = t.n_suppressed;
    cover_installs = t.n_cover_installs;
  }

let config t = t.config

(* An incoming install is redundant when a live entry with the same
   action subsumes its predicate at priority >= its own: any header the
   new entry could win is already matched by the subsumer at no lower
   priority, so the TCAM's verdict is the same action either way.  (An
   entry that would beat the new rule also beats the subsumer; a
   priority tie breaks toward the older — lower — id, which suppression
   also preserves.)

   Cover-set members are exempt: a group is only sound while every
   member is physically resident (Switch.drop_cover_orphans), and two
   origins' cover sets routinely share dependencies — suppressing the
   shared member against the other group's live copy would leave this
   group permanently incomplete and scrubbed at the batch boundary,
   reinstall churn in place of caching.  The duplicate it installs
   instead is semantically inert: same predicate, same rank, same
   action, so whichever copy the TCAM picks the verdict is identical. *)
let subsumed_by_live sw (rule : Rule.t) =
  List.exists
    (fun (e : Tcam.entry) ->
      e.Tcam.rule.Rule.priority >= rule.Rule.priority
      && Action.equal e.Tcam.rule.Rule.action rule.Rule.action
      && Pred.subsumes e.Tcam.rule.Rule.pred rule.Rule.pred)
    (Tcam.entries (Switch.cache sw))

let kind_mergeable config (k : Switch.cache_kind) =
  match k with
  | Switch.Fragment -> config.merge_fragments
  | Switch.Exact -> config.merge_exact
  | Switch.Cover -> config.merge_covers

(* Merge legality for two entries of the same kind and partition,
   already known to carry the same action:

   - fragments merge at any rank pair; the union installs at the higher
     rank.  Fragments of different origins are disjoint and each
     excludes every rule beating its own origin, so raising one side to
     the other's (higher) rank can never steal a packet — nothing
     ranked above either origin overlaps either side — and per-part
     predicates keep hit attribution exact;
   - cover rules merge only at {e equal} rank: a cover entry reproduces
     one authority rule verbatim, and moving it in the priority order
     would invert a dependency the cover set exists to preserve;
   - exact entries all sit at priority 0 (microflows and degraded
     fallbacks), so equal-rank holds trivially. *)
let ranks_compatible (k : Switch.cache_kind) pa pb =
  match k with Switch.Fragment -> true | Switch.Cover | Switch.Exact -> pa = pb

let merge_parts a b =
  List.sort
    (fun (p : Switch.cache_part) (q : Switch.cache_part) ->
      compare q.Switch.part_rank p.Switch.part_rank)
    (a @ b)

(* One buddy-merge step: find a live entry adjacent to [pred] (equal on
   every field but one, buddies there — so the union is exact and covers
   no new header) that is legal to merge.  [Pred.buddy_union] only
   succeeds on disjoint operands, so merged parts partition the merged
   predicate exactly.  Cover-set members additionally require the same
   group: cross-group merging would entangle two atomically-evicted sets
   (and within one group ranks are distinct, so cover merges never fire
   in practice — the group machinery stays simple). *)
let find_merge sw ~pid ~kind ~group ~priority ~action pred =
  List.find_map
    (fun (e : Tcam.entry) ->
      let r = e.Tcam.rule in
      if not (Action.equal r.Rule.action action) then None
      else
        match Switch.cache_meta_of_rule sw r.Rule.id with
        | Some m
          when m.Switch.pid = pid && m.Switch.kind = kind
               && m.Switch.group = group
               && ranks_compatible kind r.Rule.priority priority -> (
            match Pred.buddy_union pred r.Rule.pred with
            | Some u -> Some (r, m, u)
            | None -> None)
        | Some _ | None -> None)
    (Tcam.entries (Switch.cache sw))

let install_one ?idle_timeout ?hard_timeout t sw ~now
    ((rule : Rule.t), (meta : Switch.cache_meta)) =
  if not t.config.enabled then begin
    t.n_installs <- t.n_installs + 1;
    Switch.install_cache_meta ?idle_timeout ?hard_timeout sw ~now rule (Some meta)
  end
  else if meta.Switch.group = None && subsumed_by_live sw rule then begin
    t.n_suppressed <- t.n_suppressed + 1;
    Telemetry.incr t.m_suppressed;
    []
  end
  else if not (kind_mergeable t.config meta.Switch.kind) then begin
    t.n_installs <- t.n_installs + 1;
    if meta.Switch.kind = Switch.Cover then
      t.n_cover_installs <- t.n_cover_installs + 1;
    Switch.install_cache_meta ?idle_timeout ?hard_timeout sw ~now rule (Some meta)
  end
  else begin
    (* widen to fixpoint: each absorbed neighbour may expose another
       buddy one bit further out, collapsing chains of adjacent entries
       into one maximally wide rule *)
    let pid = meta.Switch.pid and kind = meta.Switch.kind in
    let group = meta.Switch.group in
    let action = rule.Rule.action in
    let rec widen pred priority parts merged =
      match find_merge sw ~pid ~kind ~group ~priority ~action pred with
      | None -> (pred, priority, parts, merged)
      | Some (victim, vmeta, union) ->
          ignore (Switch.absorb_cache_rule sw ~now victim.Rule.id);
          t.n_merges <- t.n_merges + 1;
          Telemetry.incr t.m_merges;
          widen union
            (max priority victim.Rule.priority)
            (merge_parts parts vmeta.Switch.parts)
            true
    in
    let pred, priority, parts, merged =
      widen rule.Rule.pred rule.Rule.priority meta.Switch.parts false
    in
    let rule =
      if merged then
        Rule.make ~id:(Switch.fresh_cache_id sw) ~priority pred action
      else rule
    in
    t.n_installs <- t.n_installs + 1;
    if kind = Switch.Cover then t.n_cover_installs <- t.n_cover_installs + 1;
    Switch.install_cache_meta ?idle_timeout ?hard_timeout sw ~now rule
      (Some { meta with Switch.parts })
  end

(* An exactly-equivalent live cover entry: same predicate, rank, action
   and partition.  Reusing it (below) instead of installing a duplicate
   is what lets overlapping cover sets share their common dependencies —
   the compression the cover path is for. *)
let equivalent_live_cover sw (rule : Rule.t) (meta : Switch.cache_meta) =
  List.find_map
    (fun (e : Tcam.entry) ->
      let r = e.Tcam.rule in
      if
        r.Rule.priority = rule.Rule.priority
        && Action.equal r.Rule.action rule.Rule.action
        && Pred.equal r.Rule.pred rule.Rule.pred
      then
        match Switch.cache_meta_of_rule sw r.Rule.id with
        | Some m when m.Switch.kind = Switch.Cover && m.Switch.pid = meta.Switch.pid
          ->
            Some r.Rule.id
        | _ -> None
      else None)
    (Tcam.entries (Switch.cache sw))

let install ?idle_timeout ?hard_timeout t sw ~now installs =
  (* Cover-set sharing: overlapping origins' cover sets carry the same
     high-rank dependencies.  A member with an exactly-equivalent live
     entry is not installed again — the existing entry's id is
     substituted into this group's member list, so completeness checks
     (Tcam membership) and warmth refresh (touch) flow through the
     shared entry.  If the shared entry later goes, this group is
     incomplete and [drop_cover_orphans] scrubs it — atomicity holds
     across the sharing. *)
  let subst = Hashtbl.create 8 in
  let installs =
    List.filter
      (fun ((rule : Rule.t), (meta : Switch.cache_meta)) ->
        (not t.config.enabled)
        || meta.Switch.group = None
        ||
        match equivalent_live_cover sw rule meta with
        | Some id ->
            Hashtbl.replace subst rule.Rule.id id;
            t.n_suppressed <- t.n_suppressed + 1;
            Telemetry.incr t.m_suppressed;
            false
        | None -> true)
      installs
  in
  let remap id = Option.value ~default:id (Hashtbl.find_opt subst id) in
  let installs =
    List.map
      (fun (rule, (meta : Switch.cache_meta)) ->
        match meta.Switch.group with
        | Some (gid, members) ->
            (rule, { meta with Switch.group = Some (gid, List.map remap members) })
        | None -> (rule, meta))
      installs
  in
  let evicted =
    List.concat_map (install_one ?idle_timeout ?hard_timeout t sw ~now) installs
  in
  (* batch boundary: capacity evictions during the batch may have broken
     a resident cover group, and this batch's own group is incomplete if
     any member was suppressed or evicted mid-install — scrub survivors
     of any group that is not whole (no-op when no cover sets live) *)
  ignore (Switch.drop_cover_orphans sw ~now);
  evicted

(** Cache-rule aggregation: fewer, wider TCAM entries for the same
    forwarding behaviour.

    Sits between the authority's miss reply ({!Switch.serve_miss}) and
    the ingress TCAM install, applying three transformations — each
    provably forwarding-equivalent, so a deployment with aggregation on
    and one with it off decide every packet identically (the
    differential gate in the test suite and [difane aggregate --check]
    enforce this on random policies):

    - {b suppression}: an install whose predicate is subsumed by a live
      entry with the same action at no lower priority is skipped — the
      subsumer already decides every header the new entry could win;
    - {b buddy merging}: two entries of the same kind, partition and
      action whose predicates are adjacent (equal on every field but
      one, where the ternary values are buddies) are replaced by their
      exact union, iterated to fixpoint.  Multi-part provenance
      ({!Switch.cache_meta}) keeps per-origin hit attribution exact
      across merges;
    - {b cover sets} (configured via {!cover_limit} and threaded to
      {!Switch.serve_miss}): a rule with a small CacheFlow dependent set
      is cached whole, together with its higher-priority dependencies at
      correct relative ranks, instead of per-packet clipped fragments.

    Legality is kind-aware: fragments merge across ranks (they exclude
    everything that beats their origins), cover rules only at equal rank
    (reordering would invert a dependency), exact entries at their
    shared priority 0. *)

type config = {
  enabled : bool;  (** master switch; [false] reproduces seed behaviour *)
  cover_limit : int option;
      (** install the whole cover set when the dependent set has at most
          this many members; [None] never covers *)
  merge_fragments : bool;
  merge_exact : bool;
  merge_covers : bool;
}

val default : config
(** Disabled — bit-identical to the un-aggregated cache path. *)

val enabled_default : config
(** Aggregation on, all merges on, [cover_limit = Some 4]. *)

val cover_limit : config -> int option
(** The [?cover_limit] to pass to {!Switch.serve_miss}: the configured
    limit when enabled, [None] otherwise. *)

type stats = {
  installs : int;  (** entries actually written to a TCAM *)
  merges : int;  (** buddy-union steps performed (= entries absorbed) *)
  suppressed : int;  (** installs skipped as subsumed *)
  cover_installs : int;  (** installs that were cover-set members *)
}

type t
(** Aggregation engine: configuration plus counters.  One per
    deployment; safe to share across its ingress switches (merging only
    ever consults the switch being installed into). *)

val create : config -> t
val config : t -> config
val stats : t -> stats

val install :
  ?idle_timeout:float -> ?hard_timeout:float -> t -> Switch.t -> now:float ->
  (Rule.t * Switch.cache_meta) list -> Rule.t list
(** Install a miss reply's rules ({!Switch.miss_reply.installs}) into an
    ingress switch's cache through the aggregation pipeline:
    suppression, then buddy-merge to fixpoint (absorbed entries leave
    via {!Switch.absorb_cache_rule}, reporting [Replaced] with final
    counters), then a provenance-carrying install.  Returns LRU
    evictions, as {!Switch.install_cache_rule} does.  With aggregation
    disabled this is exactly a sequence of plain meta installs. *)

(** The controller's write-ahead journal.

    Replicated controllers need the standby to reconstruct the leader's
    {e exact} deployment state at takeover.  Rather than replicating the
    deployment object (big, and full of derived state), the leader
    journals every {e decision} — the initial build, policy updates,
    authority failovers and restorations, liveness verdicts, rebalances,
    epoch bumps — as deterministic, replayable entries.  Replaying the
    journal through the same deployment code rebuilds the same state:
    the journal is the ground truth, the deployment is its cache.

    Entries are kept in two segments: a {e snapshot} base (a compacted
    entry list that summarises everything before it) and the tail of
    entries appended since.  Snapshotting periodically keeps replay cost
    bounded; a snapshot is itself just entries, so replay code does not
    distinguish the two.

    The binary codec frames every record with a magic byte, sequence
    number, timestamp and an FNV-1a checksum (the same framing discipline
    as {!Message}'s wire format), so a journal round-trips through bytes
    and a corrupted record is detected, not silently replayed.  Encoding
    is canonical: two runs that made the same decisions encode to
    byte-identical journals — the E-HA experiment's replay check. *)

type migration = {
  mid : int;  (** migration id, unique within the journal *)
  src_pid : int;
  src_region : Pred.t;
  src_replicas : int list;  (** replica switches holding [src_pid], primary first *)
  lo_pid : int;
  lo_region : Pred.t;
  lo_replicas : int list;
  hi_pid : int;
  hi_region : Pred.t;
  hi_replicas : int list;
}
(** A staged region migration: the overloaded partition [src_pid] is
    re-cut into [lo_pid] (kept at the source replicas) and [hi_pid]
    (moved to an underloaded authority).  The full split spec — regions
    and replica placements — is journaled so replay reproduces the live
    engine's decision exactly instead of re-running the partitioner. *)

type entry =
  | Build of { policy : Rule.t list; authority_ids : int list }
      (** initial deployment: the policy and the authority pool *)
  | Policy_update of { rules : Rule.t list; strict : bool }
  | Fail_authority of int  (** authority failover away from this switch *)
  | Restore_authority of int  (** a demoted switch rejoined the pool *)
  | Declared_dead of int  (** liveness verdict (non-authority switches too) *)
  | Recovered of int  (** a declared-dead switch answered again *)
  | Rebalance of (int * float) list
      (** partition re-placement from these measured per-partition loads *)
  | Epoch of { epoch : int; leader : int }
      (** leader election: [leader] took over at [epoch] *)
  | Migration_begin of migration
      (** stage 1: sub-region tables installed at their new replicas;
          ingress partition rules still point at the source *)
  | Migration_flip of int
      (** stage 2: ingress partition rules flipped to the sub-regions
          (by migration id) *)
  | Migration_commit of int
      (** stage 3: source tables retired; the migration is durable *)
  | Migration_abort of int
      (** the migration was rolled back before commit (source failure,
          or a takeover that found it not yet flipped) *)
  | Partition_layout of {
      regions : (int * Pred.t) list;
      replicas : (int * int list) list;
    }
      (** snapshot summary of the current partition table: every region
          by pid plus its replica placement — preserves re-cuts and
          rebalances that a replayed [Build] could not reproduce *)

val equal_entry : entry -> entry -> bool
val pp_entry : Format.formatter -> entry -> unit

type t

val create : unit -> t

val append : t -> at:float -> entry -> int
(** Record a decision; returns its sequence number (monotonic from 0,
    surviving snapshots). *)

val length : t -> int
(** Records currently held (snapshot base + tail). *)

val tail_length : t -> int
(** Records appended since the last snapshot — what {!snapshot} resets. *)

val snapshot : t -> at:float -> entry list -> unit
(** Replace everything recorded so far with [entries], a compacted
    summary of the state they rebuilt (produced by the leader from its
    live state).  Sequence numbers keep counting — a snapshot compacts
    history, it does not rewrite it. *)

val entries : t -> (int * float * entry) list
(** All records in replay order, as [(seq, at, entry)]. *)

val replay : t -> (entry -> unit) -> unit
(** Apply every entry in order — snapshot base first, then the tail. *)

val equal : t -> t -> bool

(** {1 Binary codec} *)

val encode : t -> Bytes.t
(** Canonical bytes: deterministic in the record sequence. *)

val decode : Schema.t -> Bytes.t -> (t, string) result
(** Rebuild a journal from {!encode}'s output.  Errors (rather than
    raising) on truncation, bad magic, unknown kinds, or a record whose
    checksum does not match — a corrupt journal must never be silently
    replayed. *)

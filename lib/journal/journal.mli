(** The controller's write-ahead journal.

    Replicated controllers need the standby to reconstruct the leader's
    {e exact} deployment state at takeover.  Rather than replicating the
    deployment object (big, and full of derived state), the leader
    journals every {e decision} — the initial build, policy updates,
    authority failovers and restorations, liveness verdicts, rebalances,
    epoch bumps — as deterministic, replayable entries.  Replaying the
    journal through the same deployment code rebuilds the same state:
    the journal is the ground truth, the deployment is its cache.

    Entries are kept in two segments: a {e snapshot} base (a compacted
    entry list that summarises everything before it) and the tail of
    entries appended since.  Snapshotting periodically keeps replay cost
    bounded; a snapshot is itself just entries, so replay code does not
    distinguish the two.

    The binary codec frames every record with a magic byte, sequence
    number, timestamp and an FNV-1a checksum (the same framing discipline
    as {!Message}'s wire format), so a journal round-trips through bytes
    and a corrupted record is detected, not silently replayed.  Encoding
    is canonical: two runs that made the same decisions encode to
    byte-identical journals — the E-HA experiment's replay check. *)

type entry =
  | Build of { policy : Rule.t list; authority_ids : int list }
      (** initial deployment: the policy and the authority pool *)
  | Policy_update of { rules : Rule.t list; strict : bool }
  | Fail_authority of int  (** authority failover away from this switch *)
  | Restore_authority of int  (** a demoted switch rejoined the pool *)
  | Declared_dead of int  (** liveness verdict (non-authority switches too) *)
  | Recovered of int  (** a declared-dead switch answered again *)
  | Rebalance of (int * float) list
      (** partition re-placement from these measured per-partition loads *)
  | Epoch of { epoch : int; leader : int }
      (** leader election: [leader] took over at [epoch] *)

val equal_entry : entry -> entry -> bool
val pp_entry : Format.formatter -> entry -> unit

type t

val create : unit -> t

val append : t -> at:float -> entry -> int
(** Record a decision; returns its sequence number (monotonic from 0,
    surviving snapshots). *)

val length : t -> int
(** Records currently held (snapshot base + tail). *)

val tail_length : t -> int
(** Records appended since the last snapshot — what {!snapshot} resets. *)

val snapshot : t -> at:float -> entry list -> unit
(** Replace everything recorded so far with [entries], a compacted
    summary of the state they rebuilt (produced by the leader from its
    live state).  Sequence numbers keep counting — a snapshot compacts
    history, it does not rewrite it. *)

val entries : t -> (int * float * entry) list
(** All records in replay order, as [(seq, at, entry)]. *)

val replay : t -> (entry -> unit) -> unit
(** Apply every entry in order — snapshot base first, then the tail. *)

val equal : t -> t -> bool

(** {1 Binary codec} *)

val encode : t -> Bytes.t
(** Canonical bytes: deterministic in the record sequence. *)

val decode : Schema.t -> Bytes.t -> (t, string) result
(** Rebuild a journal from {!encode}'s output.  Errors (rather than
    raising) on truncation, bad magic, unknown kinds, or a record whose
    checksum does not match — a corrupt journal must never be silently
    replayed. *)

type migration = {
  mid : int;
  src_pid : int;
  src_region : Pred.t;
  src_replicas : int list;
  lo_pid : int;
  lo_region : Pred.t;
  lo_replicas : int list;
  hi_pid : int;
  hi_region : Pred.t;
  hi_replicas : int list;
}

type entry =
  | Build of { policy : Rule.t list; authority_ids : int list }
  | Policy_update of { rules : Rule.t list; strict : bool }
  | Fail_authority of int
  | Restore_authority of int
  | Declared_dead of int
  | Recovered of int
  | Rebalance of (int * float) list
  | Epoch of { epoch : int; leader : int }
  | Migration_begin of migration
  | Migration_flip of int
  | Migration_commit of int
  | Migration_abort of int
  | Partition_layout of {
      regions : (int * Pred.t) list;
      replicas : (int * int list) list;
    }

let equal_rules a b =
  List.length a = List.length b && List.for_all2 Rule.equal a b

let equal_migration a b =
  a.mid = b.mid && a.src_pid = b.src_pid && a.lo_pid = b.lo_pid
  && a.hi_pid = b.hi_pid
  && Pred.equal a.src_region b.src_region
  && Pred.equal a.lo_region b.lo_region
  && Pred.equal a.hi_region b.hi_region
  && a.src_replicas = b.src_replicas
  && a.lo_replicas = b.lo_replicas
  && a.hi_replicas = b.hi_replicas

let equal_regions a b =
  List.length a = List.length b
  && List.for_all2
       (fun (pa, ra) (pb, rb) -> pa = pb && Pred.equal ra rb)
       a b

let equal_entry a b =
  match (a, b) with
  | Build x, Build y ->
      equal_rules x.policy y.policy && x.authority_ids = y.authority_ids
  | Policy_update x, Policy_update y ->
      equal_rules x.rules y.rules && x.strict = y.strict
  | Fail_authority x, Fail_authority y
  | Restore_authority x, Restore_authority y
  | Declared_dead x, Declared_dead y
  | Recovered x, Recovered y ->
      x = y
  | Rebalance x, Rebalance y -> x = y
  | Epoch x, Epoch y -> x.epoch = y.epoch && x.leader = y.leader
  | Migration_begin x, Migration_begin y -> equal_migration x y
  | Migration_flip x, Migration_flip y
  | Migration_commit x, Migration_commit y
  | Migration_abort x, Migration_abort y ->
      x = y
  | Partition_layout x, Partition_layout y ->
      equal_regions x.regions y.regions && x.replicas = y.replicas
  | ( ( Build _ | Policy_update _ | Fail_authority _ | Restore_authority _
      | Declared_dead _ | Recovered _ | Rebalance _ | Epoch _
      | Migration_begin _ | Migration_flip _ | Migration_commit _
      | Migration_abort _ | Partition_layout _ ),
      _ ) ->
      false

let pp_entry ppf = function
  | Build { policy; authority_ids } ->
      Format.fprintf ppf "build(%d rules, auths %a)" (List.length policy)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
           Format.pp_print_int)
        authority_ids
  | Policy_update { rules; strict } ->
      Format.fprintf ppf "policy_update(%d rules%s)" (List.length rules)
        (if strict then ", strict" else "")
  | Fail_authority s -> Format.fprintf ppf "fail_authority(sw%d)" s
  | Restore_authority s -> Format.fprintf ppf "restore_authority(sw%d)" s
  | Declared_dead s -> Format.fprintf ppf "declared_dead(sw%d)" s
  | Recovered s -> Format.fprintf ppf "recovered(sw%d)" s
  | Rebalance loads -> Format.fprintf ppf "rebalance(%d loads)" (List.length loads)
  | Epoch { epoch; leader } -> Format.fprintf ppf "epoch(%d, leader c%d)" epoch leader
  | Migration_begin m ->
      Format.fprintf ppf "migration_begin(m%d, p%d -> p%d@%a + p%d@%a)" m.mid
        m.src_pid m.lo_pid
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
           Format.pp_print_int)
        m.lo_replicas m.hi_pid
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
           Format.pp_print_int)
        m.hi_replicas
  | Migration_flip mid -> Format.fprintf ppf "migration_flip(m%d)" mid
  | Migration_commit mid -> Format.fprintf ppf "migration_commit(m%d)" mid
  | Migration_abort mid -> Format.fprintf ppf "migration_abort(m%d)" mid
  | Partition_layout { regions; replicas } ->
      Format.fprintf ppf "partition_layout(%d regions, %d placements)"
        (List.length regions) (List.length replicas)

type record = { seq : int; at : float; snap : bool; entry : entry }

let m_appends = Telemetry.counter "journal_appends"
let m_snapshots = Telemetry.counter "journal_snapshots"
let m_replayed = Telemetry.counter "journal_replayed"

type t = {
  mutable base : record list;  (* snapshot, replay order *)
  mutable tail : record list;  (* appended since, reverse order *)
  mutable next_seq : int;
}

let create () = { base = []; tail = []; next_seq = 0 }

let append t ~at entry =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.tail <- { seq; at; snap = false; entry } :: t.tail;
  Telemetry.incr m_appends;
  seq

let length t = List.length t.base + List.length t.tail
let tail_length t = List.length t.tail

let snapshot t ~at entries =
  Telemetry.incr m_snapshots;
  t.base <-
    List.map
      (fun entry ->
        let seq = t.next_seq in
        t.next_seq <- seq + 1;
        { seq; at; snap = true; entry })
      entries;
  t.tail <- []

let records t = t.base @ List.rev t.tail

let entries t = List.map (fun r -> (r.seq, r.at, r.entry)) (records t)

let replay t f =
  List.iter
    (fun r ->
      Telemetry.incr m_replayed;
      f r.entry)
    (records t)

let equal a b =
  let ra = records a and rb = records b in
  List.length ra = List.length rb
  && List.for_all2
       (fun x y ->
         x.seq = y.seq && x.at = y.at && x.snap = y.snap && equal_entry x.entry y.entry)
       ra rb

(* ---- binary codec ----

   Per-record framing, same discipline as the control-plane wire format:

     magic u8 | kind u8 | flags u8 | len u32 | seq u32 | at f64 | checksum u64 | body

   [len] is the whole record; the FNV-1a checksum covers the record with
   its own slot (bytes 19..26) zeroed — {!Message.fnv1a}'s hole. *)

let magic = 0xd1
let header_len = 1 + 1 + 1 + 4 + 4 + 8 + 8
let checksum_off = 1 + 1 + 1 + 4 + 4 + 8

module W = struct
  let u8 b v = Buffer.add_uint8 b (v land 0xff)
  let u32 b v = Buffer.add_int32_be b (Int32.of_int v)
  let u64 b v = Buffer.add_int64_be b v
  let f64 b v = u64 b (Int64.bits_of_float v)
end

let kind_code = function
  | Build _ -> 0
  | Policy_update _ -> 1
  | Fail_authority _ -> 2
  | Restore_authority _ -> 3
  | Declared_dead _ -> 4
  | Recovered _ -> 5
  | Rebalance _ -> 6
  | Epoch _ -> 7
  | Migration_begin _ -> 8
  | Migration_flip _ -> 9
  | Migration_commit _ -> 10
  | Migration_abort _ -> 11
  | Partition_layout _ -> 12

(* Regions ride the rule-list codec as a single placeholder rule (id 0,
   priority 0, Drop): {!Message} exports no bare-predicate codec, and
   inventing a second ternary wire format here would be a third place to
   get masks wrong.  The blob is length-prefixed because, unlike the
   Build/Policy_update bodies, a region is never the final field. *)
let write_region b region =
  let blob =
    Message.rules_to_bytes [ Rule.make ~id:0 ~priority:0 region Action.Drop ]
  in
  W.u32 b (Bytes.length blob);
  Buffer.add_bytes b blob

let write_placement b (pid, region, replicas) =
  W.u32 b pid;
  W.u32 b (List.length replicas);
  List.iter (W.u32 b) replicas;
  write_region b region

let encode_body b = function
  | Build { policy; authority_ids } ->
      W.u32 b (List.length authority_ids);
      List.iter (W.u32 b) authority_ids;
      Buffer.add_bytes b (Message.rules_to_bytes policy)
  | Policy_update { rules; strict } ->
      W.u8 b (if strict then 1 else 0);
      Buffer.add_bytes b (Message.rules_to_bytes rules)
  | Fail_authority s | Restore_authority s | Declared_dead s | Recovered s -> W.u32 b s
  | Rebalance loads ->
      W.u32 b (List.length loads);
      List.iter
        (fun (pid, w) ->
          W.u32 b pid;
          W.f64 b w)
        loads
  | Epoch { epoch; leader } ->
      W.u32 b epoch;
      W.u32 b leader
  | Migration_begin m ->
      W.u32 b m.mid;
      write_placement b (m.src_pid, m.src_region, m.src_replicas);
      write_placement b (m.lo_pid, m.lo_region, m.lo_replicas);
      write_placement b (m.hi_pid, m.hi_region, m.hi_replicas)
  | Migration_flip mid | Migration_commit mid | Migration_abort mid ->
      W.u32 b mid
  | Partition_layout { regions; replicas } ->
      W.u32 b (List.length regions);
      List.iter
        (fun (pid, region) ->
          W.u32 b pid;
          write_region b region)
        regions;
      W.u32 b (List.length replicas);
      List.iter
        (fun (pid, switches) ->
          W.u32 b pid;
          W.u32 b (List.length switches);
          List.iter (W.u32 b) switches)
        replicas

let encode_record r =
  let body = Buffer.create 64 in
  encode_body body r.entry;
  let frame = Buffer.create (Buffer.length body + header_len) in
  W.u8 frame magic;
  W.u8 frame (kind_code r.entry);
  W.u8 frame (if r.snap then 1 else 0);
  W.u32 frame (Buffer.length body + header_len);
  W.u32 frame r.seq;
  W.f64 frame r.at;
  W.u64 frame 0L;
  Buffer.add_buffer frame body;
  let bytes = Buffer.to_bytes frame in
  Bytes.set_int64_be bytes checksum_off (Message.fnv1a ~hole:(checksum_off, 8) bytes);
  bytes

let encode t =
  let b = Buffer.create 1024 in
  List.iter (fun r -> Buffer.add_bytes b (encode_record r)) (records t);
  Buffer.to_bytes b

let ( let* ) = Result.bind

(* positioned reads over the whole buffer *)
let need buf pos n =
  if pos + n > Bytes.length buf then Error "truncated journal" else Ok ()

let read_u8 buf pos =
  let* () = need buf pos 1 in
  Ok (Bytes.get_uint8 buf pos)

let read_u32 buf pos =
  let* () = need buf pos 4 in
  Ok (Int32.to_int (Bytes.get_int32_be buf pos) land 0xffffffff)

let read_f64 buf pos =
  let* () = need buf pos 8 in
  Ok (Int64.float_of_bits (Bytes.get_int64_be buf pos))

let read_u32_list buf pos n =
  let rec go i acc =
    if i >= n then Ok (List.rev acc, pos + (4 * n))
    else
      let* v = read_u32 buf (pos + (4 * i)) in
      go (i + 1) (v :: acc)
  in
  go 0 []

let read_region schema buf pos =
  let* blob_len = read_u32 buf pos in
  let* () = need buf (pos + 4) blob_len in
  let blob = Bytes.sub buf (pos + 4) blob_len in
  let* rules = Message.rules_of_bytes schema blob in
  match rules with
  | [ r ] -> Ok (r.Rule.pred, pos + 4 + blob_len)
  | _ -> Error "bad region encoding"

let read_placement schema buf pos =
  let* pid = read_u32 buf pos in
  let* n = read_u32 buf (pos + 4) in
  let* replicas, pos = read_u32_list buf (pos + 8) n in
  let* region, pos = read_region schema buf pos in
  Ok ((pid, region, replicas), pos)

let decode_body schema kind body =
  match kind with
  | 0 ->
      let* n = read_u32 body 0 in
      let rec ids i acc =
        if i >= n then Ok (List.rev acc)
        else
          let* v = read_u32 body (4 + (4 * i)) in
          ids (i + 1) (v :: acc)
      in
      let* authority_ids = ids 0 [] in
      let off = 4 + (4 * n) in
      let* () = need body off 0 in
      let rest = Bytes.sub body off (Bytes.length body - off) in
      let* policy = Message.rules_of_bytes schema rest in
      Ok (Build { policy; authority_ids })
  | 1 ->
      let* s = read_u8 body 0 in
      let rest = Bytes.sub body 1 (Bytes.length body - 1) in
      let* rules = Message.rules_of_bytes schema rest in
      Ok (Policy_update { rules; strict = s <> 0 })
  | 2 | 3 | 4 | 5 ->
      let* s = read_u32 body 0 in
      if Bytes.length body <> 4 then Error "bad switch-entry length"
      else
        Ok
          (match kind with
          | 2 -> Fail_authority s
          | 3 -> Restore_authority s
          | 4 -> Declared_dead s
          | _ -> Recovered s)
  | 6 ->
      let* n = read_u32 body 0 in
      if Bytes.length body <> 4 + (12 * n) then Error "bad rebalance length"
      else
        let rec loads i acc =
          if i >= n then Ok (Rebalance (List.rev acc))
          else
            let off = 4 + (12 * i) in
            let* pid = read_u32 body off in
            let* w = read_f64 body (off + 4) in
            loads (i + 1) ((pid, w) :: acc)
        in
        loads 0 []
  | 7 ->
      let* epoch = read_u32 body 0 in
      let* leader = read_u32 body 4 in
      if Bytes.length body <> 8 then Error "bad epoch-entry length"
      else Ok (Epoch { epoch; leader })
  | 8 ->
      let* mid = read_u32 body 0 in
      let* (src_pid, src_region, src_replicas), pos =
        read_placement schema body 4
      in
      let* (lo_pid, lo_region, lo_replicas), pos =
        read_placement schema body pos
      in
      let* (hi_pid, hi_region, hi_replicas), pos =
        read_placement schema body pos
      in
      if Bytes.length body <> pos then Error "bad migration length"
      else
        Ok
          (Migration_begin
             {
               mid;
               src_pid;
               src_region;
               src_replicas;
               lo_pid;
               lo_region;
               lo_replicas;
               hi_pid;
               hi_region;
               hi_replicas;
             })
  | 9 | 10 | 11 ->
      let* mid = read_u32 body 0 in
      if Bytes.length body <> 4 then Error "bad migration-ref length"
      else
        Ok
          (match kind with
          | 9 -> Migration_flip mid
          | 10 -> Migration_commit mid
          | _ -> Migration_abort mid)
  | 12 ->
      let* nr = read_u32 body 0 in
      let rec regions i pos acc =
        if i >= nr then Ok (List.rev acc, pos)
        else
          let* pid = read_u32 body pos in
          let* region, pos = read_region schema body (pos + 4) in
          regions (i + 1) pos ((pid, region) :: acc)
      in
      let* regions, pos = regions 0 4 [] in
      let* np = read_u32 body pos in
      let rec placements i pos acc =
        if i >= np then Ok (List.rev acc, pos)
        else
          let* pid = read_u32 body pos in
          let* n = read_u32 body (pos + 4) in
          let* switches, pos = read_u32_list body (pos + 8) n in
          placements (i + 1) pos ((pid, switches) :: acc)
      in
      let* replicas, pos = placements 0 (pos + 4) [] in
      if Bytes.length body <> pos then Error "bad partition-layout length"
      else Ok (Partition_layout { regions; replicas })
  | _ -> Error "unknown journal entry kind"

let decode schema buf =
  let rec go pos acc =
    if pos = Bytes.length buf then Ok (List.rev acc)
    else
      let* m = read_u8 buf pos in
      if m <> magic then Error "bad journal magic"
      else
        let* kind = read_u8 buf (pos + 1) in
        let* flags = read_u8 buf (pos + 2) in
        let* len = read_u32 buf (pos + 3) in
        if len < header_len then Error "bad record length"
        else
          let* () = need buf pos len in
          let record = Bytes.sub buf pos len in
          let stored = Bytes.get_int64_be record checksum_off in
          if not (Int64.equal stored (Message.fnv1a ~hole:(checksum_off, 8) record))
          then Error "journal checksum mismatch"
          else
            let* seq = read_u32 record 7 in
            let* at = read_f64 record 11 in
            let body = Bytes.sub record header_len (len - header_len) in
            let* entry = decode_body schema kind body in
            go (pos + len) ({ seq; at; snap = flags land 1 = 1; entry } :: acc)
  in
  let* rs = go 0 [] in
  let t = create () in
  let base, tail = List.partition (fun r -> r.snap) rs in
  t.base <- base;
  t.tail <- List.rev tail;
  t.next_seq <- List.fold_left (fun m r -> max m (r.seq + 1)) 0 rs;
  Ok t

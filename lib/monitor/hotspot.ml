type event = {
  window_start : float;
  window_end : float;
  switch_id : int;
  load : float;
  total : float;
  share : float;
  ratio : float;
}

let detect ?(threshold = 1.5) ?(min_load = 1.) series =
  if threshold <= 1.0 then invalid_arg "Hotspot.detect: threshold <= 1.0";
  let series = List.sort (fun (a, _) (b, _) -> Int.compare a b) series in
  let n = List.length series in
  if n = 0 then []
  else begin
    let windows =
      List.fold_left (fun m (_, pts) -> max m (Array.length pts)) 0 series
    in
    (* timestamps from the longest series; all series share boundaries *)
    let times =
      match List.find_opt (fun (_, pts) -> Array.length pts = windows) series with
      | Some (_, pts) -> Array.map (fun (p : Sampler.point) -> p.Sampler.at) pts
      | None -> [||]
    in
    (* cumulative value of a series at window [w]; flat past its end,
       zero before its start (counters are baselined at track time) *)
    let value pts w =
      let len = Array.length pts in
      if w < 0 || len = 0 then 0.
      else if w >= len then pts.(len - 1).Sampler.v
      else pts.(w).Sampler.v
    in
    let fair = 1. /. float_of_int n in
    let events = ref [] in
    for w = 0 to windows - 1 do
      let deltas =
        List.map (fun (id, pts) -> (id, value pts w -. value pts (w - 1))) series
      in
      let total = List.fold_left (fun acc (_, d) -> acc +. d) 0. deltas in
      if total >= min_load then
        List.iter
          (fun (id, load) ->
            let share = load /. total in
            if share > threshold *. fair then
              events :=
                {
                  window_start = (if w = 0 then 0. else times.(w - 1));
                  window_end = times.(w);
                  switch_id = id;
                  load;
                  total;
                  share;
                  ratio = share /. fair;
                }
                :: !events)
          deltas
    done;
    List.rev !events
  end

let persistent ~windows events =
  if windows < 1 then invalid_arg "Hotspot.persistent: windows < 1";
  (* events arrive window-ordered; a streak continues when a switch's next
     event starts exactly where its previous one ended *)
  let streaks = Hashtbl.create 8 in
  List.filter
    (fun e ->
      let streak =
        match Hashtbl.find_opt streaks e.switch_id with
        | Some (prev_end, n) when prev_end = e.window_start -> n + 1
        | _ -> 1
      in
      Hashtbl.replace streaks e.switch_id (e.window_end, streak);
      streak >= windows)
    events

let worst events =
  List.fold_left
    (fun acc e ->
      match acc with
      | None -> Some e
      | Some best -> if e.ratio > best.ratio then Some e else acc)
    None events

let pp_event ppf e =
  Format.fprintf ppf
    "[%.9g..%.9g] switch %d served %.9g of %.9g misses (share %.3f, %.2fx fair)"
    e.window_start e.window_end e.switch_id e.load e.total e.share e.ratio

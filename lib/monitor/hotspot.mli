(** Online authority hotspot detection.

    DIFANE's partitioner promises balanced authority load ({e in
    aggregate}); skewed traffic can still pile misses onto one authority
    switch for stretches of a run that end-of-run totals average away.
    The detector replays the sampler's per-authority load timelines
    window by window: in each inter-sample window it computes every
    switch's share of the misses served and flags those whose share
    exceeds [threshold] times the fair share ([1/n]).  Windows with
    fewer than [min_load] total misses are skipped — an idle network has
    no hotspots, only noise. *)

type event = {
  window_start : float;
  window_end : float;
  switch_id : int;
  load : float;  (** this switch's misses in the window *)
  total : float;  (** all switches' misses in the window *)
  share : float;  (** [load / total] *)
  ratio : float;  (** [share / (1/n)] — 1.0 is exactly fair *)
}

val detect :
  ?threshold:float ->
  ?min_load:float ->
  (int * Sampler.point array) list ->
  event list
(** [detect series] over per-switch {e cumulative} load timelines
    sampled at common boundaries (as one {!Sampler.t} produces).
    [threshold] defaults to 1.5 (50% over fair share), [min_load] to
    1.0.  Events are ordered by window, then switch id.  Series shorter
    than the longest are treated as flat at their last value.
    @raise Invalid_argument if [threshold <= 1.0]. *)

val persistent : windows:int -> event list -> event list
(** Filter {!detect}'s output down to {e persistent} hotspots: events
    whose switch has been hot in at least [windows] consecutive windows
    (adjacent = each event's window starts where the switch's previous
    one ended).  The first [windows - 1] events of every streak are
    dropped; a transient one-window spike never survives.  This is the
    same streak rule the adaptive rebalancer uses to trigger a
    migration, exposed for offline reports.
    @raise Invalid_argument if [windows < 1]. *)

val worst : event list -> event option
(** The event with the highest ratio (ties: earliest window, lowest
    switch id) — the headline number for reports. *)

val pp_event : Format.formatter -> event -> unit

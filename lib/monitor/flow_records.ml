type reason = Idle | Active | Evicted | Flush

let reason_name = function
  | Idle -> "idle"
  | Active -> "active"
  | Evicted -> "evicted"
  | Flush -> "flush"

type record = {
  seq : int;
  ingress : int;
  header : Header.t;
  packets : int;
  bytes : int;
  first_seen : float;
  last_seen : float;
  reason : reason;
}

type config = {
  sample_rate : int;
  active_timeout : float;
  idle_timeout : float;
  max_entries : int;
}

let default_config =
  { sample_rate = 1; active_timeout = 60.; idle_timeout = 15.; max_entries = 4096 }

module Key = struct
  type t = int * Header.t

  let equal (i1, h1) (i2, h2) = i1 = i2 && Header.equal h1 h2
  let hash (i, h) = (i * 0x9e3779b1) lxor Header.hash h
end

module Tbl = Hashtbl.Make (Key)

(* Creation order ([born]) breaks every tie — eviction choice and batch
   export order — so nothing depends on hash-table iteration order. *)
type entry = {
  born : int;
  mutable packets : int;
  mutable bytes : int;
  mutable first_seen : float;
  mutable last_seen : float;
}

type t = {
  cfg : config;
  cache : entry Tbl.t;
  mutable observed : int;
  mutable sampled : int;
  mutable next_born : int;
  mutable next_seq : int;
  mutable rev_exports : record list;
}

(* Registry mirrors, shared across instances (the registry is process-wide). *)
let m_observed = Telemetry.counter "flowrec_observed_packets"
let m_sampled = Telemetry.counter "flowrec_sampled_packets"
let m_exported = Telemetry.counter "flowrec_exported_records"
let g_active = Telemetry.gauge "flowrec_active_entries"

let create ?(config = default_config) () =
  if config.sample_rate < 1 then invalid_arg "Flow_records.create: sample_rate < 1";
  if config.max_entries < 1 then invalid_arg "Flow_records.create: max_entries < 1";
  {
    cfg = config;
    cache = Tbl.create 256;
    observed = 0;
    sampled = 0;
    next_born = 0;
    next_seq = 0;
    rev_exports = [];
  }

let config t = t.cfg
let observed_packets t = t.observed
let sampled_packets t = t.sampled
let active_entries t = Tbl.length t.cache

(* Packets in the simulator have no sizes; derive one deterministically
   from the header so byte counts exercise the schema without a second
   source of randomness. *)
let packet_bytes h = 64 + (Header.hash h land 0x5ff)

let sync_active t =
  Telemetry.set g_active (float_of_int (Tbl.length t.cache))

let export t ~key:(ingress, header) ~(entry : entry) ~reason =
  Tbl.remove t.cache (ingress, header);
  let r =
    {
      seq = t.next_seq;
      ingress;
      header;
      packets = entry.packets;
      bytes = entry.bytes;
      first_seen = entry.first_seen;
      last_seen = entry.last_seen;
      reason;
    }
  in
  t.next_seq <- t.next_seq + 1;
  Telemetry.incr m_exported;
  t.rev_exports <- r :: t.rev_exports

(* Every multi-entry export path sorts by creation order first. *)
let export_batch t victims =
  List.sort (fun ((_, e1), _) ((_, e2), _) -> Int.compare e1.born e2.born) victims
  |> List.iter (fun ((key, entry), reason) -> export t ~key ~entry ~reason)

let expired t ~now (e : entry) =
  if now -. e.last_seen >= t.cfg.idle_timeout then Some Idle
  else if now -. e.first_seen >= t.cfg.active_timeout then Some Active
  else None

let sweep t ~now =
  let victims =
    Tbl.fold
      (fun key entry acc ->
        match expired t ~now entry with
        | Some reason -> (((key, entry), reason)) :: acc
        | None -> acc)
      t.cache []
  in
  export_batch t victims;
  sync_active t

let flush t ~now =
  sweep t ~now;
  let rest = Tbl.fold (fun key entry acc -> ((key, entry), Flush) :: acc) t.cache [] in
  export_batch t rest;
  sync_active t

let evict_one t =
  (* longest idle loses; creation order breaks exact-time ties *)
  let victim =
    Tbl.fold
      (fun key entry acc ->
        match acc with
        | None -> Some (key, entry)
        | Some (_, best) ->
            if
              entry.last_seen < best.last_seen
              || (entry.last_seen = best.last_seen && entry.born < best.born)
            then Some (key, entry)
            else acc)
      t.cache None
  in
  match victim with
  | None -> ()
  | Some (key, entry) -> export t ~key ~entry ~reason:Evicted

let observe t ~now ~ingress header =
  t.observed <- t.observed + 1;
  Telemetry.incr m_observed;
  if t.observed mod t.cfg.sample_rate = 0 then begin
    t.sampled <- t.sampled + 1;
    Telemetry.incr m_sampled;
    let key = (ingress, header) in
    let bytes = packet_bytes header in
    (* the touched entry's own timeouts are checked here, so a flow that
       outlives its active window splits into periodic records even if
       nobody sweeps *)
    (match Tbl.find_opt t.cache key with
    | Some e -> (
        match expired t ~now e with
        | Some reason -> export t ~key ~entry:e ~reason
        | None -> ())
    | None -> ());
    match Tbl.find_opt t.cache key with
    | Some e ->
        e.packets <- e.packets + 1;
        e.bytes <- e.bytes + bytes;
        e.last_seen <- now
    | None ->
        if Tbl.length t.cache >= t.cfg.max_entries then evict_one t;
        Tbl.add t.cache key
          { born = t.next_born; packets = 1; bytes; first_seen = now; last_seen = now };
        t.next_born <- t.next_born + 1;
        sync_active t
  end

let exports t = List.rev t.rev_exports

(* {2 Rendering} *)

let fl = Printf.sprintf "%.9g"

let header_json h =
  let schema = Header.schema h in
  let b = Buffer.create 64 in
  Buffer.add_char b '{';
  Array.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\"%s\":%Ld" (Schema.field_name schema i) v))
    (Header.values h);
  Buffer.add_char b '}';
  Buffer.contents b

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"difane-flows-v1\"";
  Buffer.add_string b (Printf.sprintf ",\"sample_rate\":%d" t.cfg.sample_rate);
  Buffer.add_string b (Printf.sprintf ",\"observed_packets\":%d" t.observed);
  Buffer.add_string b (Printf.sprintf ",\"sampled_packets\":%d" t.sampled);
  Buffer.add_string b ",\"records\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"seq\":%d,\"ingress\":%d,\"key\":%s,\"packets\":%d,\"bytes\":%d,\
            \"first_seen\":%s,\"last_seen\":%s,\"reason\":\"%s\"}"
           r.seq r.ingress (header_json r.header) r.packets r.bytes
           (fl r.first_seen) (fl r.last_seen) (reason_name r.reason)))
    (exports t);
  Buffer.add_string b "]}";
  Buffer.contents b

let pp ppf t =
  List.iter
    (fun r ->
      Format.fprintf ppf "#%d ingress=%d %a pkts=%d bytes=%d [%s..%s] %s@." r.seq
        r.ingress Header.pp r.header r.packets r.bytes (fl r.first_seen)
        (fl r.last_seen) (reason_name r.reason))
    (exports t)

(** NetFlow-style sampled flow records for the DIFANE data plane.

    A bounded flow cache keyed by [(ingress switch, header)] — for the
    stock 5-tuple schema that key {e is} the classic NetFlow 5-tuple —
    fed by deterministic count-based 1-in-N packet sampling.  Entries
    age out on simulated time: an {e idle} timeout exports a flow that
    stopped sending, an {e active} timeout cuts long-lived flows into
    periodic records (the NetFlow convention that bounds how stale a
    collector's view can get), and cache pressure evicts the
    longest-idle entry.  Exported records carry a monotonically
    increasing sequence number, so the export stream — and the
    [difane-flows-v1] JSON rendering of it — is byte-identical across
    runs for a fixed seed.

    Packet sampling is count-based (every Nth observed packet), not
    probabilistic: determinism is a design constraint here, and the
    sampled counts still scale by N in expectation exactly as NetFlow's
    random 1-in-N does for aggregate questions. *)

type reason =
  | Idle  (** no sampled packet for [idle_timeout] seconds *)
  | Active  (** flow exceeded [active_timeout] since its first packet *)
  | Evicted  (** cache full: longest-idle entry pushed out *)
  | Flush  (** end-of-run {!flush} *)

type record = {
  seq : int;  (** export order; dense from 0 *)
  ingress : int;  (** ingress switch node id *)
  header : Header.t;
  packets : int;  (** {e sampled} packets — multiply by the rate for an estimate *)
  bytes : int;  (** sampled bytes (sizes derived deterministically from the header) *)
  first_seen : float;  (** simulated time of the first sampled packet *)
  last_seen : float;
  reason : reason;
}

type config = {
  sample_rate : int;  (** sample every Nth packet; 1 = every packet *)
  active_timeout : float;  (** seconds; cut a record after this lifetime *)
  idle_timeout : float;  (** seconds; export after this silence *)
  max_entries : int;  (** flow-cache capacity across all ingresses *)
}

val default_config : config
(** 1-in-1 sampling, 60 s active / 15 s idle, 4096 entries. *)

type t

val create : ?config:config -> unit -> t
(** @raise Invalid_argument if [sample_rate < 1] or [max_entries < 1]. *)

val config : t -> config

val observe : t -> now:float -> ingress:int -> Header.t -> unit
(** Account one packet entering at [ingress].  Expiry of the touched
    entry is checked here; other entries age out via {!sweep}/{!flush}.
    [now] must not decrease across calls. *)

val sweep : t -> now:float -> unit
(** Export every entry past its idle or active timeout at [now].
    Called opportunistically (the monitor piggybacks it on sampler
    ticks); correctness only needs the final {!flush}. *)

val flush : t -> now:float -> unit
(** End of run: {!sweep}, then export everything left as [Flush]. *)

val observed_packets : t -> int
val sampled_packets : t -> int
val active_entries : t -> int

val exports : t -> record list
(** All exported records in sequence order. *)

val reason_name : reason -> string

val to_json : t -> string
(** The export stream as a self-contained [difane-flows-v1] document:
    [{"schema":"difane-flows-v1","sample_rate":N,...,"records":[...]}].
    Header fields are rendered by name; floats with [%.9g] — the output
    is bit-identical across runs that sampled the same packets. *)

val pp : Format.formatter -> t -> unit
(** One line per exported record, sequence order. *)

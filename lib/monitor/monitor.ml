type config = {
  flow : Flow_records.config;
  interval : float;
  capacity : int;
  threshold : float;
  min_load : float;
  top_k : int;
}

let default_config =
  {
    flow = Flow_records.default_config;
    interval = 0.05;
    capacity = 1024;
    threshold = 1.5;
    min_load = 1.;
    top_k = 10;
  }

type t = {
  cfg : config;
  d : Deployment.t;
  flows : Flow_records.t;
  sampler : Sampler.t;
  mutable last_sweep : float;
}

let switch_labels id = [ ("switch", string_of_int id) ]

let create ?(config = default_config) d =
  let sampler = Sampler.create ~capacity:config.capacity ~interval:config.interval () in
  (* authority load drives the hotspot detector; occupancy and the
     simulator's delivery counters round out the timeline report *)
  List.iter
    (fun id -> Sampler.track_counter sampler ~labels:(switch_labels id)
        "switch_authority_hits")
    (Deployment.authority_ids d);
  Array.iter
    (fun sw -> Sampler.track_gauge sampler ~labels:(switch_labels (Switch.id sw))
        "switch_cache_occupancy")
    (Deployment.switches d);
  Sampler.track_counter sampler "sim_packets_delivered";
  Sampler.track_counter sampler "sim_cache_hit_packets";
  {
    cfg = config;
    d;
    flows = Flow_records.create ~config:config.flow ();
    sampler;
    last_sweep = 0.;
  }

let config t = t.cfg
let flow_records t = t.flows
let sampler t = t.sampler

let observe_packet t ~now ~ingress header =
  Flow_records.observe t.flows ~now ~ingress header;
  Sampler.tick t.sampler ~now;
  (* piggyback flow-cache aging on the sampler cadence so idle flows
     export near their deadline instead of all at the end *)
  if now -. t.last_sweep >= t.cfg.interval then begin
    Flow_records.sweep t.flows ~now;
    t.last_sweep <- now
  end

let finish t ~now =
  Sampler.finish t.sampler ~now;
  Flow_records.flush t.flows ~now

(* {2 Rule attribution} *)

type rule_report = {
  rule_id : int;
  priority : int;
  partitions : (int * int) list;
  cache_hits : int64;
  authority_hits : int64;
}

let rule_total r = Int64.add r.cache_hits r.authority_hits

(* pid -> authority switch, and rule id -> the partitions holding a clip
   of it: the static half of the provenance chain *)
let chain_of t rule_id =
  let asg = Deployment.assignment t.d in
  (Deployment.partitioner t.d).Partitioner.partitions
  |> List.filter_map (fun (p : Partitioner.partition) ->
         match Classifier.find p.Partitioner.table rule_id with
         | Some _ -> Some (p.Partitioner.pid, Assignment.switch_for asg p.Partitioner.pid)
         | None -> None)

(* The trace-side provenance join: decode the (origin, pid) pair a
   Cache_hit/Install postcard carries into the human chain
   policy rule -> partition -> authority switch.  Components the
   deployment no longer knows (retired pids, deleted rules) degrade to
   a marker instead of hiding the rest of the chain. *)
let describe_provenance t ~origin ~pid =
  if origin < 0 && pid < 0 then None
  else begin
    let rule_part =
      if origin < 0 then "rule ?"
      else
        match Classifier.find (Deployment.policy t.d) origin with
        | Some (r : Rule.t) -> Printf.sprintf "rule %d prio %d" origin r.Rule.priority
        | None -> Printf.sprintf "rule %d (retired)" origin
    in
    let part_part =
      if pid < 0 then ""
      else
        match Assignment.switch_for (Deployment.assignment t.d) pid with
        | auth -> Printf.sprintf " -> pid %d @ authority %d" pid auth
        | exception Not_found -> Printf.sprintf " -> pid %d (retired)" pid
    in
    Some (rule_part ^ part_part)
  end

(* Provenance of a live cache entry, full origin set included: a merged
   (aggregated) entry stands for several policy rules, each contributing
   a sub-region.  Per-hit counters are already exact — the switch
   attributes each packet to the part whose region it fell in — so this
   is the human-readable join for operators asking "what is this TCAM
   entry, and whose packets does it absorb?" *)
let describe_cache_entry t ~switch ~cache_rule =
  let sw = Deployment.switch t.d switch in
  match Switch.cache_meta_of_rule sw cache_rule with
  | None -> None
  | Some m ->
      let kind =
        match m.Switch.kind with
        | Switch.Fragment -> "fragment"
        | Switch.Cover -> "cover"
        | Switch.Exact -> "exact"
      in
      let parts =
        m.Switch.parts
        |> List.map (fun (p : Switch.cache_part) ->
               match describe_provenance t ~origin:p.Switch.part_origin ~pid:(-1) with
               | Some s -> Printf.sprintf "%s (rank %d)" s p.Switch.part_rank
               | None -> Printf.sprintf "rule ? (rank %d)" p.Switch.part_rank)
        |> String.concat " + "
      in
      let pid_part =
        if m.Switch.pid < 0 then ""
        else
          match Assignment.switch_for (Deployment.assignment t.d) m.Switch.pid with
          | auth -> Printf.sprintf " -> pid %d @ authority %d" m.Switch.pid auth
          | exception Not_found -> Printf.sprintf " -> pid %d (retired)" m.Switch.pid
      in
      Some (Printf.sprintf "%s%s: %s" kind pid_part parts)

let rule_reports t =
  let cache = Hashtbl.create 64 and auth = Hashtbl.create 64 in
  let bump tbl k v =
    Hashtbl.replace tbl k (Int64.add v (Option.value ~default:0L (Hashtbl.find_opt tbl k)))
  in
  Array.iter
    (fun sw ->
      List.iter
        (fun (id, c, a) ->
          bump cache id c;
          bump auth id a)
        (Switch.origin_breakdown sw))
    (Deployment.switches t.d);
  Classifier.rules (Deployment.policy t.d)
  |> List.map (fun (r : Rule.t) ->
         {
           rule_id = r.Rule.id;
           priority = r.Rule.priority;
           partitions = chain_of t r.Rule.id;
           cache_hits = Option.value ~default:0L (Hashtbl.find_opt cache r.Rule.id);
           authority_hits = Option.value ~default:0L (Hashtbl.find_opt auth r.Rule.id);
         })
  |> List.sort (fun a b -> Int.compare a.rule_id b.rule_id)

let heavy_hitters ?k t =
  let k = Option.value ~default:t.cfg.top_k k in
  rule_reports t
  |> List.filter (fun r -> rule_total r > 0L)
  |> List.stable_sort (fun a b -> Int64.compare (rule_total b) (rule_total a))
  |> List.filteri (fun i _ -> i < k)

let dead_rules t = List.filter (fun r -> rule_total r = 0L) (rule_reports t)

type region_report = {
  pid : int;
  authority : int;
  region_cache_hits : int64;
  misses_served : int64;
  efficacy : float;
}

let region_efficacy t =
  let cache = Hashtbl.create 16 and miss = Hashtbl.create 16 in
  let bump tbl k v =
    Hashtbl.replace tbl k (Int64.add v (Option.value ~default:0L (Hashtbl.find_opt tbl k)))
  in
  Array.iter
    (fun sw ->
      List.iter (fun (pid, n) -> bump cache pid n) (Switch.cache_load sw);
      List.iter (fun (pid, n) -> bump miss pid n) (Switch.partition_load sw))
    (Deployment.switches t.d);
  let asg = Deployment.assignment t.d in
  (Deployment.partitioner t.d).Partitioner.partitions
  |> List.map (fun (p : Partitioner.partition) ->
         let pid = p.Partitioner.pid in
         let c = Option.value ~default:0L (Hashtbl.find_opt cache pid) in
         let m = Option.value ~default:0L (Hashtbl.find_opt miss pid) in
         let total = Int64.add c m in
         {
           pid;
           authority = Assignment.switch_for asg pid;
           region_cache_hits = c;
           misses_served = m;
           efficacy =
             (if total = 0L then 0.
              else Int64.to_float c /. Int64.to_float total);
         })
  |> List.sort (fun a b -> Int.compare a.pid b.pid)

(* {2 Timelines and hotspots} *)

let authority_series t =
  let want = Deployment.authority_ids t.d in
  Sampler.series t.sampler
  |> List.filter_map (fun (s : Sampler.series) ->
         if s.Sampler.name <> "switch_authority_hits" then None
         else
           match List.assoc_opt "switch" s.Sampler.labels with
           | Some v ->
               let id = int_of_string v in
               if List.mem id want then Some (id, s.Sampler.points) else None
           | None -> None)
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let hotspots t =
  Hotspot.detect ~threshold:t.cfg.threshold ~min_load:t.cfg.min_load
    (authority_series t)

let persistent_hotspots ?(windows = 3) t = Hotspot.persistent ~windows (hotspots t)

(* {2 Reports} *)

let fl = Printf.sprintf "%.9g"

(* JSON contexts must never print nan/inf raw (unparseable document);
   finite values keep the compact %.9g spelling. *)
let jf f = if Float.is_finite f then fl f else Telemetry.json_float f

let points_json pts =
  let b = Buffer.create 128 in
  Buffer.add_char b '[';
  Array.iteri
    (fun i (p : Sampler.point) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"t\":%s,\"v\":%s}" (jf p.Sampler.at) (jf p.Sampler.v)))
    pts;
  Buffer.add_char b ']';
  Buffer.contents b

let to_json t =
  let b = Buffer.create 8192 in
  Buffer.add_string b "{\"schema\":\"difane-monitor-v1\"";
  Buffer.add_string b (Printf.sprintf ",\"interval\":%s" (jf t.cfg.interval));
  Buffer.add_string b ",\"heavy_hitters\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      let chain =
        r.partitions
        |> List.map (fun (pid, auth) ->
               Printf.sprintf "{\"pid\":%d,\"authority\":%d}" pid auth)
        |> String.concat ","
      in
      Buffer.add_string b
        (Printf.sprintf
           "{\"rule\":%d,\"priority\":%d,\"cache_hits\":%Ld,\"authority_hits\":%Ld,\
            \"partitions\":[%s]}"
           r.rule_id r.priority r.cache_hits r.authority_hits chain))
    (heavy_hitters t);
  Buffer.add_string b "],\"dead_rules\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (string_of_int r.rule_id))
    (dead_rules t);
  Buffer.add_string b "],\"regions\":[";
  List.iteri
    (fun i (r : region_report) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"pid\":%d,\"authority\":%d,\"cache_hits\":%Ld,\"misses_served\":%Ld,\
            \"efficacy\":%s}"
           r.pid r.authority r.region_cache_hits r.misses_served (jf r.efficacy)))
    (region_efficacy t);
  Buffer.add_string b "],\"authority_load\":[";
  List.iteri
    (fun i (id, pts) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"switch\":%d,\"points\":%s}" id (points_json pts)))
    (authority_series t);
  Buffer.add_string b "],\"hotspots\":[";
  List.iteri
    (fun i (e : Hotspot.event) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"window_start\":%s,\"window_end\":%s,\"switch\":%d,\"load\":%s,\
            \"total\":%s,\"share\":%s,\"ratio\":%s}"
           (jf e.Hotspot.window_start) (jf e.Hotspot.window_end) e.Hotspot.switch_id
           (jf e.Hotspot.load) (jf e.Hotspot.total) (jf e.Hotspot.share)
           (jf e.Hotspot.ratio)))
    (hotspots t);
  Buffer.add_string b "]}";
  Buffer.contents b

let pp_chain ppf partitions =
  match partitions with
  | [] -> Format.fprintf ppf "(no partition holds it)"
  | ps ->
      Format.fprintf ppf "via %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf (pid, auth) -> Format.fprintf ppf "pid %d@@sw%d" pid auth))
        ps

let pp ppf t =
  let hh = heavy_hitters t in
  Format.fprintf ppf "== heavy hitters (top %d of %d live rules) ==@."
    (List.length hh)
    (List.length (List.filter (fun r -> rule_total r > 0L) (rule_reports t)));
  List.iter
    (fun r ->
      Format.fprintf ppf "  rule %d (prio %d): %Ld hits (%Ld cache + %Ld authority) %a@."
        r.rule_id r.priority (rule_total r) r.cache_hits r.authority_hits pp_chain
        r.partitions)
    hh;
  (match dead_rules t with
  | [] -> Format.fprintf ppf "== dead rules == (none)@."
  | dead ->
      Format.fprintf ppf "== dead rules (%d, never hit) ==@.  %a@." (List.length dead)
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           (fun ppf r -> Format.fprintf ppf "%d" r.rule_id))
        dead);
  Format.fprintf ppf "== region cache efficacy ==@.";
  List.iter
    (fun (r : region_report) ->
      Format.fprintf ppf
        "  pid %d @@ sw%d: %Ld cache hits, %Ld misses served (efficacy %.1f%%)@." r.pid
        r.authority r.region_cache_hits r.misses_served (100. *. r.efficacy))
    (region_efficacy t);
  Format.fprintf ppf "== authority load timeline (cumulative misses served) ==@.";
  let series = authority_series t in
  let windows = List.fold_left (fun m (_, p) -> max m (Array.length p)) 0 series in
  for w = 0 to windows - 1 do
    let at =
      List.fold_left
        (fun acc (_, pts) ->
          if w < Array.length pts then pts.(w).Sampler.at else acc)
        0. series
    in
    Format.fprintf ppf "  t=%-8s" (fl at);
    List.iter
      (fun (id, pts) ->
        let v = if w < Array.length pts then pts.(w).Sampler.v else 0. in
        Format.fprintf ppf " sw%d=%-6s" id (fl v))
      series;
    Format.fprintf ppf "@."
  done;
  (match hotspots t with
  | [] -> Format.fprintf ppf "== hotspots == (none)@."
  | events ->
      Format.fprintf ppf "== hotspots (%d windows over %.2fx fair share) ==@."
        (List.length events) t.cfg.threshold;
      List.iter (fun e -> Format.fprintf ppf "  %a@." Hotspot.pp_event e) events);
  let fr = t.flows in
  Format.fprintf ppf
    "== flow records == %d exported (%d packets observed, %d sampled, 1-in-%d)@."
    (List.length (Flow_records.exports fr))
    (Flow_records.observed_packets fr)
    (Flow_records.sampled_packets fr)
    (Flow_records.config fr).Flow_records.sample_rate

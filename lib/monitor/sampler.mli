(** Time-series sampler: registry instruments → bounded ring buffers.

    The telemetry registry answers "how much, in total"; the sampler
    turns that into "how much, {e when}" by snapshotting selected
    counters and gauges at fixed simulated-time boundaries
    ([interval], [2·interval], …).  Reads go through the registry's
    shared instrument cells, so a sample is a handful of loads — cheap
    enough to take on the data path.

    There is no timer: the discrete-event simulators have no periodic
    wall clock to hang one on.  Instead callers {!tick} with the current
    simulated time from whatever event is already firing (the monitor
    does it per observed packet) and the sampler lazily catches up every
    boundary it crossed since the last call, recording each boundary's
    value once.  Quiet stretches thus sample at the {e next} event —
    values are unchanged in between, so nothing is lost — and the final
    {!finish} closes the tail.

    Counters are recorded relative to their value when tracking started,
    so a cumulative, process-wide registry still yields a per-run
    timeline.  Ring buffers are bounded: past [capacity] points the
    oldest fall off. *)

type point = { at : float; v : float }

type series = {
  name : string;
  labels : (string * string) list;
  points : point array;  (** oldest first; at most [capacity] *)
  dropped : int;  (** points lost to ring wraparound *)
}

type t

val create : ?capacity:int -> interval:float -> unit -> t
(** [capacity] points per series, default 1024.
    @raise Invalid_argument if [interval <= 0] or [capacity < 1]. *)

val interval : t -> float

val track_counter : t -> ?labels:(string * string) list -> string -> unit
(** Snapshot this counter (get-or-created in the registry) at every
    boundary, baselined to its value now. *)

val track_gauge : t -> ?labels:(string * string) list -> string -> unit

val tick : t -> now:float -> unit
(** Record every crossed boundary [k·interval <= now] not yet recorded.
    Monotone [now]s; a stale [now] is a no-op. *)

val finish : t -> now:float -> unit
(** {!tick}, then record one final point at [now] itself if it lies past
    the last boundary — the partial last window. *)

val series : t -> series list
(** Tracked series in tracking order. *)

type point = { at : float; v : float }

type series = {
  name : string;
  labels : (string * string) list;
  points : point array;
  dropped : int;
}

type source =
  | Counter of { cell : Telemetry.counter; baseline : int }
  | Gauge of Telemetry.gauge

(* One bounded ring per tracked instrument. *)
type track = {
  name : string;
  labels : (string * string) list;
  source : source;
  ring : point array;
  mutable head : int;  (** next write position *)
  mutable count : int;  (** live points, <= capacity *)
  mutable written : int;  (** total points ever written *)
}

type t = {
  ivl : float;
  capacity : int;
  mutable tracks : track list;  (** reverse tracking order *)
  mutable next_boundary : float;
}

let create ?(capacity = 1024) ~interval () =
  if interval <= 0. then invalid_arg "Sampler.create: interval <= 0";
  if capacity < 1 then invalid_arg "Sampler.create: capacity < 1";
  { ivl = interval; capacity; tracks = []; next_boundary = interval }

let interval t = t.ivl

let add_track t ~name ~labels source =
  t.tracks <-
    {
      name;
      labels;
      source;
      ring = Array.make t.capacity { at = 0.; v = 0. };
      head = 0;
      count = 0;
      written = 0;
    }
    :: t.tracks

let track_counter t ?(labels = []) name =
  let cell = Telemetry.counter ~labels name in
  add_track t ~name ~labels (Counter { cell; baseline = Telemetry.value cell })

let track_gauge t ?(labels = []) name =
  add_track t ~name ~labels (Gauge (Telemetry.gauge ~labels name))

let read = function
  | Counter { cell; baseline } -> float_of_int (Telemetry.value cell - baseline)
  | Gauge g -> Telemetry.gauge_value g

let record tr ~at =
  tr.ring.(tr.head) <- { at; v = read tr.source };
  tr.head <- (tr.head + 1) mod Array.length tr.ring;
  if tr.count < Array.length tr.ring then tr.count <- tr.count + 1;
  tr.written <- tr.written + 1

let sample_all t ~at = List.iter (fun tr -> record tr ~at) t.tracks

let tick t ~now =
  while t.next_boundary <= now do
    sample_all t ~at:t.next_boundary;
    t.next_boundary <- t.next_boundary +. t.ivl
  done

let finish t ~now =
  tick t ~now;
  let last_boundary = t.next_boundary -. t.ivl in
  if now > last_boundary then sample_all t ~at:now

let series_of_track tr =
  let cap = Array.length tr.ring in
  let start = (tr.head - tr.count + cap) mod cap in
  {
    name = tr.name;
    labels = tr.labels;
    points = Array.init tr.count (fun i -> tr.ring.((start + i) mod cap));
    dropped = tr.written - tr.count;
  }

let series t = List.rev_map series_of_track t.tracks

(** The flow-level observability facade: one object that watches a
    {!Deployment} while a simulation drives packets through it, and
    afterwards answers the questions the registry's end-of-run totals
    cannot:

    - {b which flows} — sampled NetFlow-style records ({!Flow_records});
    - {b which rules} — heavy-hitter / dead-rule attribution built from
      the provenance pair [(origin rule, serving partition)] that the
      switches thread from policy rule through authority table into
      every installed cache rule;
    - {b when} — per-authority load, cache hit-rate and TCAM occupancy
      timelines from the {!Sampler};
    - {b where it hurts} — authority {!Hotspot} events from those
      timelines.

    Wire-up is two calls: {!observe_packet} on every packet entering the
    network (the simulators do this when given [?monitor]) and {!finish}
    once the run ends.  Reports are deterministic: for a fixed seed the
    JSON is bit-identical across runs. *)

type config = {
  flow : Flow_records.config;
  interval : float;  (** sampler boundary spacing, simulated seconds *)
  capacity : int;  (** ring capacity per sampled series *)
  threshold : float;  (** hotspot share threshold, × fair share *)
  min_load : float;  (** ignore windows with fewer total misses *)
  top_k : int;  (** heavy hitters reported by default *)
}

val default_config : config
(** 1-in-1 sampling, 0.05 s interval, 1024-point rings, 1.5× threshold,
    top 10. *)

type t

val create : ?config:config -> Deployment.t -> t
(** Start watching [d]: tracks every authority switch's served-miss
    counter, every switch's cache occupancy gauge and the simulator's
    delivered/cache-hit counters.  Create {e after}
    [Telemetry.reset ()] (or rely on counter baselining) for a per-run
    view. *)

val config : t -> config
val flow_records : t -> Flow_records.t
val sampler : t -> Sampler.t

val observe_packet : t -> now:float -> ingress:int -> Header.t -> unit
(** Feed one packet: samples it into the flow cache and lets the
    sampler catch up any crossed boundaries. *)

val finish : t -> now:float -> unit
(** End of run: flush the flow cache, close the sampler tail. *)

(** {1 Rule attribution} *)

type rule_report = {
  rule_id : int;
  priority : int;
  partitions : (int * int) list;
      (** provenance chain tail: [(pid, authority switch)] for every
          partition holding a clip of this rule *)
  cache_hits : int64;  (** packets matched by cache rules spliced from it *)
  authority_hits : int64;  (** packets answered from authority tables *)
}

val rule_total : rule_report -> int64

val describe_provenance : t -> origin:int -> pid:int -> string option
(** Decode a packed provenance pair (as carried by {!Ptrace.Cache_hit}
    and {!Ptrace.Install} postcards) into the human-readable chain
    [rule <id> prio <p> -> pid <pid> @ authority <switch>].  [None] when
    both components are unknown ([-1]); retired pids and deleted rules
    are marked rather than dropped. *)

val describe_cache_entry : t -> switch:int -> cache_rule:int -> string option
(** Provenance of a live cache entry, {e full origin set} included: an
    aggregated (buddy-merged) entry stands for several policy rules, and
    this lists every one with its rank — e.g.
    [fragment -> pid 2 @ authority 5: rule 3 prio 20 (rank 4) + rule 7
    prio 10 (rank 2)].  Per-rule hit counters stay exact regardless (the
    switch attributes each packet to the merged part whose sub-region it
    fell in); [None] when the entry is unknown or carries no recorded
    provenance. *)

val heavy_hitters : ?k:int -> t -> rule_report list
(** Policy rules by descending total hits (ties: ascending id), top [k]
    (default [config.top_k]); zero-hit rules excluded. *)

val dead_rules : t -> rule_report list
(** Policy rules no packet ever hit, ascending id — install-before-need
    noise, or policy that can be garbage-collected. *)

type region_report = {
  pid : int;
  authority : int;  (** the switch assigned this partition *)
  region_cache_hits : int64;  (** ingress cache hits attributed to the region *)
  misses_served : int64;  (** misses its authority answered *)
  efficacy : float;  (** cache hits / (cache hits + misses); 0 when idle *)
}

val region_efficacy : t -> region_report list
(** Per-partition cache efficacy, ascending pid: how much of each
    flowspace region's traffic the spliced cache entries absorbed. *)

(** {1 Timelines and hotspots} *)

val authority_series : t -> (int * Sampler.point array) list
(** Cumulative misses served per authority switch at each sampler
    boundary, ascending switch id. *)

val hotspots : t -> Hotspot.event list
(** {!Hotspot.detect} over {!authority_series} with the config's
    threshold and minimum load. *)

val persistent_hotspots : ?windows:int -> t -> Hotspot.event list
(** {!Hotspot.persistent} over {!hotspots}: only switches hot for at
    least [windows] (default 3) consecutive windows — the offline view
    of the condition that triggers an adaptive migration. *)

(** {1 Reports} *)

val to_json : t -> string
(** Everything above as one [difane-monitor-v1] document. *)

val pp : Format.formatter -> t -> unit
(** The human-readable report: heavy hitters with provenance chains,
    dead rules, region efficacy, the per-authority load timeline and any
    hotspots. *)

(** The congestion model: finite port buffers, serialization delay,
    ECN-style marking, and credit-based backpressure.

    The paper's overload figures saturate on one bottleneck — the
    authority switch's flow-setup queue.  Everything else in the
    simulated network used to be infinite: links had a (write-only)
    bandwidth, switch ports had no buffers, so congestion showed up
    purely as latency.  This module gives the data-plane stack a shared
    vocabulary for finite resources:

    - a {!config} record carried by {!Deployment.config}, threaded as an
      optional argument into {!Dataplane.packet} and
      {!Flowsim.run_difane}, and exposed as CLI flags;
    - a {e virtual-clock} per-port queue ({!t}) for the functional
      walks ([Deployment.inject], [Dataplane.packet]), which execute one
      packet at a time: each directed port remembers how far into the
      future its transmitter is booked, so back-to-back packets see each
      other's backlog without a discrete-event engine;
    - drop-tail and ECN accounting counters mirrored into the telemetry
      registry.

    The discrete-event simulator ({!Flowsim}) builds its own per-port
    queues from {!Server} instances — real queued events — but reads the
    same {!config}.

    With {!default} (unbounded buffers, bandwidth ignored) every code
    path is bit-identical to the pre-congestion behaviour; that
    differential property is tested. *)

type mode =
  | Drop_tail  (** full buffers and full setup queues silently shed *)
  | Credit
      (** credit-based flow control on tunnel traffic to authority
          switches: an upstream-driven shared credit pool per authority
          bounds the misses in flight toward it; an ingress finding the
          pool at or below {!config.credit_low_water} defers re-splicing
          and degrades gracefully to the controller-fallback path
          (separately accounted) instead of shedding the miss *)

type config = {
  buffer_capacity : int option;
      (** per-port packet buffer (excluding the packet in transmission);
          [None] = unbounded, the legacy model *)
  ecn_threshold : int option;
      (** mark packets that arrive to a queue at least this deep
          (ECN-style congestion signal); [None] = no marking *)
  packet_bits : int;  (** modelled packet size for serialization delay *)
  model_bandwidth : bool;
      (** pay {!Topology.serialization_delay} per hop; without it port
          queues can never build and finite buffers never bite *)
  mode : mode;
  credit_pool : int;  (** shared credits per authority switch ([Credit]) *)
  credit_low_water : int;
      (** per-tunnel threshold: an ingress whose authority pool has
          [<= credit_low_water] credits left defers to the controller
          path rather than consuming the last credits *)
}

val default : config
(** Unbounded buffers, no marking, bandwidth ignored, [Drop_tail] —
    congestion modelling off; behaviour is bit-identical to the
    pre-congestion code paths. *)

val enabled : config -> bool
(** Whether any part of the model is on ([model_bandwidth], a finite
    [buffer_capacity], an [ecn_threshold], or [Credit] mode). *)

val validate : config -> unit
(** @raise Invalid_argument on a non-positive [packet_bits],
    [buffer_capacity]/[ecn_threshold] < 0, [credit_pool] < 1 or
    [credit_low_water] < 0 (or >= [credit_pool]) in [Credit] mode. *)

(** {1 Virtual-clock port queues}

    State for the one-packet-at-a-time walks.  Each directed port
    [(from, to)] tracks [busy_until] — when its transmitter frees.  A
    packet arriving at [now] waits [busy_until - now], occupying one
    buffer slot per serialization time of backlog.  Callers must present
    non-decreasing [now] values for depths to mean anything (both walks
    do; queues drain as simulated time advances). *)

type t

type stats = {
  transits : int;  (** packets offered to any port *)
  drops : int;  (** packets shed by a full buffer *)
  marks : int;  (** packets ECN-marked *)
  peak_depth : int;  (** deepest queue observed at any arrival *)
}

val create : config -> t
(** @raise Invalid_argument as {!validate}. *)

val config : t -> config

val transit :
  t -> now:float -> from:int -> Topology.link ->
  [ `Forward of float * bool | `Drop ]
(** Offer one packet to the directed port [from -> other end of link] at
    simulated time [now].  [`Forward (delay, marked)] is the queueing
    wait plus serialization time (0 when bandwidth is not modelled) —
    propagation latency is {e not} included, callers add [link.latency]
    themselves.  [`Drop] means the buffer was full (drop-tail). *)

val depth : t -> now:float -> from:int -> to_:int -> int
(** Packets currently queued on a directed port (0 for an unknown or
    drained port). *)

val stats : t -> stats
val reset : t -> unit
(** Forget all port backlogs and zero {!stats}. *)

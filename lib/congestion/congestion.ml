type mode = Drop_tail | Credit

type config = {
  buffer_capacity : int option;
  ecn_threshold : int option;
  packet_bits : int;
  model_bandwidth : bool;
  mode : mode;
  credit_pool : int;
  credit_low_water : int;
}

let default =
  {
    buffer_capacity = None;
    ecn_threshold = None;
    packet_bits = 12_000 (* a 1500-byte MTU frame *);
    model_bandwidth = false;
    mode = Drop_tail;
    credit_pool = 64;
    credit_low_water = 0;
  }

let enabled c =
  c.model_bandwidth || c.buffer_capacity <> None || c.ecn_threshold <> None
  || c.mode = Credit

let validate c =
  if c.packet_bits <= 0 then invalid_arg "Congestion: nonpositive packet_bits";
  (match c.buffer_capacity with
  | Some b when b < 0 -> invalid_arg "Congestion: negative buffer_capacity"
  | _ -> ());
  (match c.ecn_threshold with
  | Some e when e < 0 -> invalid_arg "Congestion: negative ecn_threshold"
  | _ -> ());
  if c.mode = Credit then begin
    if c.credit_pool < 1 then invalid_arg "Congestion: credit_pool must be >= 1";
    if c.credit_low_water < 0 then invalid_arg "Congestion: negative credit_low_water";
    if c.credit_low_water >= c.credit_pool then
      invalid_arg "Congestion: credit_low_water must be below credit_pool"
  end

(* Registry mirrors, shared by every state: how much the congestion model
   shed or marked process-wide (the per-state [stats] record carries the
   per-run split). *)
let m_transits = Telemetry.counter "congestion_port_transits"
let m_drops = Telemetry.counter "congestion_queue_drops"
let m_marks = Telemetry.counter "congestion_ecn_marks"
let g_peak = Telemetry.gauge "congestion_queue_peak"

(* One directed port: when its transmitter frees, and the serialization
   time its link implies (remembered so [depth] can convert the booking
   back into packets). *)
type port = { mutable busy_until : float; mutable ser : float }

type t = {
  cfg : config;
  ports : (int * int, port) Hashtbl.t;
  mutable transits : int;
  mutable drops : int;
  mutable marks : int;
  mutable peak_depth : int;
}

type stats = { transits : int; drops : int; marks : int; peak_depth : int }

let create cfg =
  validate cfg;
  { cfg; ports = Hashtbl.create 32; transits = 0; drops = 0; marks = 0; peak_depth = 0 }

let config t = t.cfg

let port t key ~ser =
  match Hashtbl.find_opt t.ports key with
  | Some p ->
      p.ser <- ser;
      p
  | None ->
      let p = { busy_until = 0.; ser } in
      Hashtbl.add t.ports key p;
      p

let other_end (l : Topology.link) from =
  if l.Topology.src = from then l.Topology.dst else l.Topology.src

(* Packets waiting in the buffer at an arrival seeing [wait] seconds of
   booked transmitter time: the head packet is on the wire (its residual
   counts toward [wait] but it holds no buffer slot), every further
   whole-or-partial serialization time is one queued packet — the same
   convention as [Server]: capacity counts the backlog, not the job in
   service. *)
let queued ~wait ~ser =
  if ser <= 0. || wait <= 0. then 0
  else max 0 (int_of_float (Float.ceil ((wait /. ser) -. 1e-9)) - 1)

let depth t ~now ~from ~to_ =
  match Hashtbl.find_opt t.ports (from, to_) with
  | None -> 0
  | Some p -> queued ~wait:(p.busy_until -. now) ~ser:p.ser

let transit t ~now ~from (l : Topology.link) =
  let to_ = other_end l from in
  let ser =
    if t.cfg.model_bandwidth then Topology.serialization_delay l ~bits:t.cfg.packet_bits
    else 0.
  in
  let p = port t (from, to_) ~ser in
  t.transits <- t.transits + 1;
  Telemetry.incr m_transits;
  let wait = Float.max 0. (p.busy_until -. now) in
  let depth = queued ~wait ~ser in
  if depth > t.peak_depth then begin
    t.peak_depth <- depth;
    Telemetry.set_max g_peak (float_of_int depth)
  end;
  match t.cfg.buffer_capacity with
  | Some cap when wait > 0. && depth >= cap ->
      t.drops <- t.drops + 1;
      Telemetry.incr m_drops;
      Ptrace.emit ~at:now Ptrace.Queue_drop ~switch:from ~rule:(-1) ~aux:depth;
      `Drop
  | _ ->
      let marked =
        match t.cfg.ecn_threshold with
        | Some e -> wait > 0. && depth >= e
        | None -> false
      in
      if marked then begin
        t.marks <- t.marks + 1;
        Telemetry.incr m_marks;
        Ptrace.emit ~at:now Ptrace.Ecn ~switch:from ~rule:(-1) ~aux:depth
      end;
      p.busy_until <- Float.max now p.busy_until +. ser;
      `Forward (wait +. ser, marked)

let stats (t : t) =
  { transits = t.transits; drops = t.drops; marks = t.marks; peak_depth = t.peak_depth }

let reset t =
  Hashtbl.reset t.ports;
  t.transits <- 0;
  t.drops <- 0;
  t.marks <- 0;
  t.peak_depth <- 0

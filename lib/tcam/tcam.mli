(** A functional model of a TCAM bank.

    Capacity-bounded, priority-ordered ternary match table with per-entry
    statistics (packet counts, install/last-hit times) and idle/hard
    timeouts — the state a hardware switch exposes to DIFANE.  The model
    is mutable (a switch's table is inherently stateful) but confined:
    all observation goes through the accessors below.

    The per-packet path is sub-linear: entries are indexed by tuple space
    search (Srinivasan et al.) — one hash group per distinct mask vector,
    maintained incrementally across insert/remove/expire — so a lookup
    costs one hash probe per distinct mask shape instead of a scan of the
    whole bank.  On rule sets where nearly every entry has its own mask
    vector the index degenerates to one probe per entry, so the table
    falls back to a plain linear scan ({!index_degenerate}); semantics
    are identical either way (property-tested).  Eviction keeps an
    intrusive LRU list (O(1) per touch) and expiry a lazy min-heap on
    each entry's next deadline, so neither walks the bank.

    Time is a [float] of seconds supplied by the caller (the simulator's
    clock); the TCAM never reads a wall clock. *)

type t

type entry = {
  rule : Rule.t;
  installed_at : float;
  mutable last_hit : float;
  mutable packets : int64;
  mutable bytes : int64;
  idle_timeout : float option;  (** evict after this much hit silence *)
  hard_timeout : float option;  (** evict this long after install *)
}

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity < 0].  A capacity of [0] models a
    switch with no TCAM (everything misses). *)

val create_linear : capacity:int -> t
(** Like {!create} but with the tuple-space index disabled: every lookup
    takes the linear-scan path — the reference semantics, kept for
    benchmarking and differential testing; results are identical to an
    indexed table's on any operation sequence. *)

val capacity : t -> int
val occupancy : t -> int
val is_full : t -> bool
val entries : t -> entry list
(** In table (priority) order. *)

val find : t -> int -> entry option
(** Entry by rule id. *)

val mem : t -> int -> bool

(** {1 Index introspection} *)

val index_groups : t -> int
(** Number of distinct mask vectors currently held — the tuple-space
    probe count upper bound. *)

val index_degenerate : t -> bool
(** True when the index would currently fall back to the linear scan
    (too many distinct mask vectors for tuple search to win, or the
    index was disabled at {!create}). *)

(** {1 Mutation} *)

val insert :
  ?idle_timeout:float -> ?hard_timeout:float -> t -> now:float -> Rule.t ->
  [ `Ok | `Replaced of entry | `Full ]
(** Install a rule.  A rule with the same id replaces the old entry
    (OpenFlow flow-mod semantics); the displaced entry is returned with
    its final counters so the caller can emit a flow-removed
    notification instead of silently losing them.  [`Full] is returned,
    and nothing changes, when the table is at capacity. *)

type displaced = {
  evicted : entry list;  (** LRU victims, in eviction order *)
  replaced : entry option;  (** same-id entry displaced by the new rule *)
  bounced : bool;  (** capacity 0: the rule itself did not fit *)
}

val insert_or_evict :
  ?idle_timeout:float -> ?hard_timeout:float -> t -> now:float -> Rule.t ->
  Rule.t list
(** Install, evicting least-recently-hit entries as needed to make room.
    Returns the evicted rules (empty when none; the incoming rule itself
    when it bounced off a zero-capacity table).  This is the reactive
    cache-install path of DIFANE ingress switches. *)

val insert_or_evict_entries :
  ?idle_timeout:float -> ?hard_timeout:float -> t -> now:float -> Rule.t ->
  displaced
(** Like {!insert_or_evict} but returning the full displaced entries —
    LRU victims and any same-id replaced entry — so callers can report
    final counters (flow-removed notifications). *)

val remove : t -> int -> bool
(** Remove by rule id; [false] if absent.  Not counted as an eviction. *)

val remove_where : t -> (Rule.t -> bool) -> int
(** Remove all entries whose rule satisfies the predicate; returns the
    number removed. *)

val clear : t -> unit

val expire : t -> now:float -> Rule.t list
(** Remove every entry whose idle or hard timeout has elapsed at [now];
    returns the removed rules.  Counted as {e expirations}, not
    evictions: timeout churn and capacity pressure are separate
    signals. *)

val expire_entries : t -> now:float -> entry list
(** Like {!expire} but returning the full expired entries. *)

(** {1 Lookup} *)

val lookup : t -> now:float -> ?bytes:int -> Header.t -> Rule.t option
(** Highest-priority matching entry; bumps its counters and [last_hit]
    and marks it most recently used.  [bytes] defaults to a 64-byte
    minimum-size packet. *)

val peek : t -> Header.t -> Rule.t option
(** Like [lookup] but with no statistics side effects. *)

val touch : t -> now:float -> int -> bool
(** Refresh an entry's idle deadline and LRU position without counting a
    hit (packet/byte counters untouched).  Returns [false] if no live
    entry has that id.  The caching layer uses this to keep every member
    of a cover set warm while any one of them absorbs traffic — an unhit
    high-rank dependency must not idle out from under the group. *)

(** {1 Statistics} *)

type stats = {
  hits : int64;
  misses : int64;
  inserts : int64;
  evictions : int64;  (** LRU victims only — capacity pressure *)
  expirations : int64;  (** idle/hard timeouts — cache churn *)
}

val stats : t -> stats
val reset_stats : t -> unit

val hit_rate : t -> float
(** Hits over lookups since the last reset; [nan] before any lookup —
    renderers must map it to [null]/omission, never print it raw into
    JSON. *)

val pp : Format.formatter -> t -> unit

(* Registry mirrors: bumped on the same line as the per-bank fields, so
   the process-wide totals cannot drift from the sum of per-bank stats. *)
let m_hits = Telemetry.counter "tcam_hits"
let m_misses = Telemetry.counter "tcam_misses"
let m_inserts = Telemetry.counter "tcam_inserts"
let m_evictions = Telemetry.counter "tcam_evictions"
let m_expirations = Telemetry.counter "tcam_expirations"

type entry = {
  rule : Rule.t;
  installed_at : float;
  mutable last_hit : float;
  mutable packets : int64;
  mutable bytes : int64;
  idle_timeout : float option;
  hard_timeout : float option;
}

(* Internal wrapper: the public entry plus the intrusive LRU links and
   the liveness bit the lazy expiry heap checks.  A node leaves every
   structure through [detach]; heap records outlive it and are skipped. *)
type node = {
  e : entry;
  mutable prev : node option;  (* towards the LRU end *)
  mutable next : node option;  (* towards the MRU end *)
  mutable live : bool;
}

(* Array-backed binary min-heap of (deadline, node).  Deadlines are the
   value at push time; idle timeouts move an entry's true deadline
   forward on every hit, so a popped record is re-validated against the
   entry and re-pushed when stale (lazy deletion — hits never touch the
   heap, which keeps the per-packet path O(1)). *)
module Heap = struct
  type t = { mutable arr : (float * node) array; mutable len : int }

  let create () = { arr = [||]; len = 0 }
  let clear h = h.arr <- [||]; h.len <- 0

  let swap h i j =
    let tmp = h.arr.(i) in
    h.arr.(i) <- h.arr.(j);
    h.arr.(j) <- tmp

  let rec sift_up h i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if fst h.arr.(i) < fst h.arr.(p) then begin
        swap h i p;
        sift_up h p
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = if l < h.len && fst h.arr.(l) < fst h.arr.(i) then l else i in
    let m = if r < h.len && fst h.arr.(r) < fst h.arr.(m) then r else m in
    if m <> i then begin
      swap h i m;
      sift_down h m
    end

  let push h d n =
    if h.len = Array.length h.arr then begin
      let cap = max 8 (2 * h.len) in
      let arr = Array.make cap (d, n) in
      Array.blit h.arr 0 arr 0 h.len;
      h.arr <- arr
    end;
    h.arr.(h.len) <- (d, n);
    h.len <- h.len + 1;
    sift_up h (h.len - 1)

  let peek_deadline h = if h.len = 0 then None else Some (fst h.arr.(0))

  let pop h =
    let top = h.arr.(0) in
    h.len <- h.len - 1;
    h.arr.(0) <- h.arr.(h.len);
    sift_down h 0;
    top
end

(* One tuple-space group per distinct mask vector: rules whose predicate
   shares masks and masked values collide into a priority-sorted bucket,
   so a lookup is one hash probe per group. *)
type group = {
  masks : int64 array;  (* per field *)
  buckets : (int64 array, node list) Hashtbl.t;  (* priority order *)
  mutable members : int;
}

type stats = {
  hits : int64;
  misses : int64;
  inserts : int64;
  evictions : int64;
  expirations : int64;
}

type t = {
  cap : int;
  use_index : bool;
  by_id : (int, node) Hashtbl.t;
  groups : (int64 array, group) Hashtbl.t;
  mutable lru_head : node option;  (* least recently touched *)
  mutable lru_tail : node option;  (* most recently touched *)
  heap : Heap.t;
  mutable size : int;
  mutable hits : int64;
  mutable misses : int64;
  mutable inserts : int64;
  mutable evictions : int64;
  mutable expirations : int64;
}

let make_tcam ~index ~capacity =
  if capacity < 0 then invalid_arg "Tcam.create: negative capacity";
  {
    cap = capacity;
    use_index = index;
    by_id = Hashtbl.create 64;
    groups = Hashtbl.create 16;
    lru_head = None;
    lru_tail = None;
    heap = Heap.create ();
    size = 0;
    hits = 0L;
    misses = 0L;
    inserts = 0L;
    evictions = 0L;
    expirations = 0L;
  }

let create ~capacity = make_tcam ~index:true ~capacity
let create_linear ~capacity = make_tcam ~index:false ~capacity

let capacity t = t.cap
let occupancy t = t.size
let is_full t = t.size >= t.cap
let find t id = Option.map (fun n -> n.e) (Hashtbl.find_opt t.by_id id)
let mem t id = Hashtbl.mem t.by_id id

let fold_nodes t f acc =
  let rec go acc = function None -> acc | Some n -> go (f acc n) n.next in
  go acc t.lru_head

let entries t =
  fold_nodes t (fun acc n -> n.e :: acc) []
  |> List.sort (fun a b -> Rule.compare_priority a.rule b.rule)

(* ---- LRU list ---- *)

let lru_unlink t n =
  (match n.prev with Some p -> p.next <- n.next | None -> t.lru_head <- n.next);
  (match n.next with Some s -> s.prev <- n.prev | None -> t.lru_tail <- n.prev);
  n.prev <- None;
  n.next <- None

let lru_append t n =
  n.prev <- t.lru_tail;
  n.next <- None;
  (match t.lru_tail with Some p -> p.next <- Some n | None -> t.lru_head <- Some n);
  t.lru_tail <- Some n

let lru_touch t n =
  match n.next with
  | None -> ()  (* already most recently used *)
  | Some _ ->
      lru_unlink t n;
      lru_append t n

(* ---- tuple-space index ---- *)

let mask_vector (r : Rule.t) =
  Array.init (Pred.arity r.pred) (fun i -> Ternary.mask (Pred.field r.pred i))

(* Ternary.value reads wildcard positions as 0, so a rule's value vector
   is already its own masked key. *)
let value_vector (r : Rule.t) =
  Array.init (Pred.arity r.pred) (fun i -> Ternary.value (Pred.field r.pred i))

let masked_key masks h =
  Array.init (Array.length masks) (fun i -> Int64.logand masks.(i) (Header.field h i))

let bucket_insert n bucket =
  let rec go = function
    | [] -> [ n ]
    | x :: rest ->
        if Rule.compare_priority n.e.rule x.e.rule <= 0 then n :: x :: rest
        else x :: go rest
  in
  go bucket

let index_add t n =
  let mv = mask_vector n.e.rule in
  let g =
    match Hashtbl.find_opt t.groups mv with
    | Some g -> g
    | None ->
        let g = { masks = mv; buckets = Hashtbl.create 8; members = 0 } in
        Hashtbl.add t.groups mv g;
        g
  in
  let key = value_vector n.e.rule in
  let bucket = Option.value ~default:[] (Hashtbl.find_opt g.buckets key) in
  Hashtbl.replace g.buckets key (bucket_insert n bucket);
  g.members <- g.members + 1

let index_remove t n =
  let mv = mask_vector n.e.rule in
  match Hashtbl.find_opt t.groups mv with
  | None -> ()
  | Some g ->
      let key = value_vector n.e.rule in
      (match Hashtbl.find_opt g.buckets key with
      | None -> ()
      | Some bucket -> (
          match List.filter (fun x -> x != n) bucket with
          | [] -> Hashtbl.remove g.buckets key
          | b -> Hashtbl.replace g.buckets key b));
      g.members <- g.members - 1;
      if g.members = 0 then Hashtbl.remove t.groups mv

let index_groups t = Hashtbl.length t.groups

(* A hash probe costs roughly as much as scanning a handful of rules;
   with nearly one group per entry, tuple search only adds overhead. *)
let index_degenerate t =
  (not t.use_index)
  ||
  let g = Hashtbl.length t.groups in
  g > 8 && 4 * g > 3 * t.size

(* ---- expiry deadlines ---- *)

let deadline_of e =
  match (e.idle_timeout, e.hard_timeout) with
  | None, None -> None
  | Some i, None -> Some (e.last_hit +. i)
  | None, Some h -> Some (e.installed_at +. h)
  | Some i, Some h -> Some (Float.min (e.last_hit +. i) (e.installed_at +. h))

let expired e ~now =
  (match e.idle_timeout with Some d -> now -. e.last_hit >= d | None -> false)
  || match e.hard_timeout with Some d -> now -. e.installed_at >= d | None -> false

(* ---- attach / detach ---- *)

let attach t n =
  Hashtbl.replace t.by_id n.e.rule.Rule.id n;
  lru_append t n;
  index_add t n;
  t.size <- t.size + 1;
  match deadline_of n.e with Some d -> Heap.push t.heap d n | None -> ()

let detach t n =
  n.live <- false;
  Hashtbl.remove t.by_id n.e.rule.Rule.id;
  lru_unlink t n;
  index_remove t n;
  t.size <- t.size - 1

(* ---- mutation ---- *)

let make_entry ?idle_timeout ?hard_timeout ~now rule =
  {
    rule;
    installed_at = now;
    last_hit = now;
    packets = 0L;
    bytes = 0L;
    idle_timeout;
    hard_timeout;
  }

let make_node e = { e; prev = None; next = None; live = true }

let insert ?idle_timeout ?hard_timeout t ~now rule =
  let displaced =
    match Hashtbl.find_opt t.by_id rule.Rule.id with
    | Some old ->
        detach t old;
        Some old.e
    | None -> None
  in
  if displaced = None && is_full t then `Full
  else begin
    attach t (make_node (make_entry ?idle_timeout ?hard_timeout ~now rule));
    t.inserts <- Int64.add t.inserts 1L;
    Telemetry.incr m_inserts;
    match displaced with Some e -> `Replaced e | None -> `Ok
  end

let evict_lru t =
  match t.lru_head with
  | None -> None
  | Some n ->
      detach t n;
      t.evictions <- Int64.add t.evictions 1L;
      Telemetry.incr m_evictions;
      Some n.e

type displaced = { evicted : entry list; replaced : entry option; bounced : bool }

let insert_or_evict_entries ?idle_timeout ?hard_timeout t ~now rule =
  if t.cap = 0 then { evicted = []; replaced = None; bounced = true }
  else begin
    let evicted = ref [] in
    while (not (mem t rule.Rule.id)) && is_full t do
      match evict_lru t with
      | Some e -> evicted := e :: !evicted
      | None -> ()
    done;
    let replaced =
      match insert ?idle_timeout ?hard_timeout t ~now rule with
      | `Replaced e -> Some e
      | `Ok | `Full -> None
    in
    { evicted = List.rev !evicted; replaced; bounced = false }
  end

let insert_or_evict ?idle_timeout ?hard_timeout t ~now rule =
  let d = insert_or_evict_entries ?idle_timeout ?hard_timeout t ~now rule in
  let evicted = List.map (fun e -> e.rule) d.evicted in
  if d.bounced then evicted @ [ rule ] else evicted

let remove t id =
  match Hashtbl.find_opt t.by_id id with
  | Some n ->
      detach t n;
      true
  | None -> false

let remove_where t f =
  let victims = fold_nodes t (fun acc n -> if f n.e.rule then n :: acc else acc) [] in
  List.iter (detach t) victims;
  List.length victims

let clear t =
  fold_nodes t (fun () n -> n.live <- false) ();
  Hashtbl.reset t.by_id;
  Hashtbl.reset t.groups;
  t.lru_head <- None;
  t.lru_tail <- None;
  Heap.clear t.heap;
  t.size <- 0

let expire_entries t ~now =
  let gone = ref [] in
  let running = ref true in
  while !running do
    match Heap.peek_deadline t.heap with
    | Some d when d <= now -> (
        let _, n = Heap.pop t.heap in
        if n.live then
          if expired n.e ~now then begin
            detach t n;
            gone := n.e :: !gone
          end
          else
            (* a hit moved the idle deadline forward since the push:
               re-key the record at the entry's current deadline *)
            match deadline_of n.e with
            | Some d' -> Heap.push t.heap d' n
            | None -> ())
    | _ -> running := false
  done;
  let gone = List.sort (fun a b -> Rule.compare_priority a.rule b.rule) !gone in
  let k = List.length gone in
  t.expirations <- Int64.add t.expirations (Int64.of_int k);
  Telemetry.add m_expirations k;
  gone

let expire t ~now = List.map (fun e -> e.rule) (expire_entries t ~now)

(* ---- lookup ---- *)

let best_match_linear t h =
  fold_nodes t
    (fun best n ->
      if Rule.matches n.e.rule h then
        match best with
        | Some (b : node) when not (Rule.beats n.e.rule b.e.rule) -> best
        | _ -> Some n
      else best)
    None

let best_match_tss t h =
  let best = ref None in
  Hashtbl.iter
    (fun _ g ->
      match Hashtbl.find_opt g.buckets (masked_key g.masks h) with
      | Some (n :: _) -> (
          (* the bucket holds every entry whose predicate matches exactly
             the headers with this masked key, best priority first *)
          match !best with
          | Some (b : node) when not (Rule.beats n.e.rule b.e.rule) -> ()
          | _ -> best := Some n)
      | _ -> ())
    t.groups;
  !best

let best_match t h =
  if index_degenerate t then best_match_linear t h else best_match_tss t h

let lookup t ~now ?(bytes = 64) h =
  match best_match t h with
  | Some n ->
      let e = n.e in
      e.last_hit <- now;
      e.packets <- Int64.add e.packets 1L;
      e.bytes <- Int64.add e.bytes (Int64.of_int bytes);
      lru_touch t n;
      t.hits <- Int64.add t.hits 1L;
      Telemetry.incr m_hits;
      Some e.rule
  | None ->
      t.misses <- Int64.add t.misses 1L;
      Telemetry.incr m_misses;
      None

let peek t h = Option.map (fun n -> n.e.rule) (best_match t h)

(* Liveness refresh without a hit: push the idle deadline forward and
   move the entry to MRU, but leave the hit/packet counters alone.  The
   expiry heap needs no update — deadlines are revalidated from
   [last_hit] lazily at pop time.  Used to keep a cover set's unhit
   high-rank members alive (and LRU-adjacent) while any member of the
   group is absorbing traffic. *)
let touch t ~now id =
  match Hashtbl.find_opt t.by_id id with
  | Some n ->
      n.e.last_hit <- now;
      lru_touch t n;
      true
  | None -> false

(* ---- statistics ---- *)

let stats t =
  {
    hits = t.hits;
    misses = t.misses;
    inserts = t.inserts;
    evictions = t.evictions;
    expirations = t.expirations;
  }

let reset_stats t =
  t.hits <- 0L;
  t.misses <- 0L;
  t.inserts <- 0L;
  t.evictions <- 0L;
  t.expirations <- 0L

let hit_rate t =
  let total = Int64.add t.hits t.misses in
  if Int64.equal total 0L then Float.nan
  else Int64.to_float t.hits /. Int64.to_float total

let pp ppf t =
  Format.fprintf ppf "@[<v>TCAM %d/%d@,%a@]" (occupancy t) t.cap
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf e ->
         Format.fprintf ppf "%a (pkts=%Ld)" Rule.pp e.rule e.packets))
    (entries t)

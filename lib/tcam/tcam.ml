(* Registry mirrors: bumped on the same line as the per-bank fields, so
   the process-wide totals cannot drift from the sum of per-bank stats. *)
let m_hits = Telemetry.counter "tcam_hits"
let m_misses = Telemetry.counter "tcam_misses"
let m_inserts = Telemetry.counter "tcam_inserts"
let m_evictions = Telemetry.counter "tcam_evictions"

type entry = {
  rule : Rule.t;
  installed_at : float;
  mutable last_hit : float;
  mutable packets : int64;
  mutable bytes : int64;
  idle_timeout : float option;
  hard_timeout : float option;
}

type stats = { hits : int64; misses : int64; inserts : int64; evictions : int64 }

type t = {
  cap : int;
  mutable table : entry list; (* kept in Rule.compare_priority order *)
  mutable hits : int64;
  mutable misses : int64;
  mutable inserts : int64;
  mutable evictions : int64;
}

let create ~capacity =
  if capacity < 0 then invalid_arg "Tcam.create: negative capacity";
  { cap = capacity; table = []; hits = 0L; misses = 0L; inserts = 0L; evictions = 0L }

let capacity t = t.cap
let occupancy t = List.length t.table
let is_full t = occupancy t >= t.cap
let entries t = t.table
let find t id = List.find_opt (fun e -> e.rule.Rule.id = id) t.table
let mem t id = Option.is_some (find t id)

let insert_sorted table e =
  let rec go = function
    | [] -> [ e ]
    | x :: rest ->
        if Rule.compare_priority e.rule x.rule <= 0 then e :: x :: rest else x :: go rest
  in
  go table

let make_entry ?idle_timeout ?hard_timeout ~now rule =
  {
    rule;
    installed_at = now;
    last_hit = now;
    packets = 0L;
    bytes = 0L;
    idle_timeout;
    hard_timeout;
  }

let insert ?idle_timeout ?hard_timeout t ~now rule =
  let existed = mem t rule.Rule.id in
  if (not existed) && is_full t then `Full
  else begin
    if existed then t.table <- List.filter (fun e -> e.rule.Rule.id <> rule.Rule.id) t.table;
    t.table <- insert_sorted t.table (make_entry ?idle_timeout ?hard_timeout ~now rule);
    t.inserts <- Int64.add t.inserts 1L;
    Telemetry.incr m_inserts;
    if existed then `Replaced else `Ok
  end

let evict_lru t =
  match t.table with
  | [] -> None
  | first :: _ ->
      let victim =
        List.fold_left
          (fun acc e -> if e.last_hit < acc.last_hit then e else acc)
          first t.table
      in
      t.table <- List.filter (fun e -> e != victim) t.table;
      t.evictions <- Int64.add t.evictions 1L;
      Telemetry.incr m_evictions;
      Some victim

let insert_or_evict_entries ?idle_timeout ?hard_timeout t ~now rule =
  if t.cap = 0 then [ make_entry ~now rule ] (* nothing fits: bounced *)
  else begin
    let evicted = ref [] in
    while (not (mem t rule.Rule.id)) && is_full t do
      match evict_lru t with
      | Some e -> evicted := e :: !evicted
      | None -> ()
    done;
    ignore (insert ?idle_timeout ?hard_timeout t ~now rule);
    List.rev !evicted
  end

let insert_or_evict ?idle_timeout ?hard_timeout t ~now rule =
  List.map (fun e -> e.rule) (insert_or_evict_entries ?idle_timeout ?hard_timeout t ~now rule)

let remove t id =
  let before = occupancy t in
  t.table <- List.filter (fun e -> e.rule.Rule.id <> id) t.table;
  occupancy t < before

let remove_where t f =
  let before = occupancy t in
  t.table <- List.filter (fun e -> not (f e.rule)) t.table;
  before - occupancy t

let clear t = t.table <- []

let expired e ~now =
  (match e.idle_timeout with Some d -> now -. e.last_hit >= d | None -> false)
  || match e.hard_timeout with Some d -> now -. e.installed_at >= d | None -> false

let expire_entries t ~now =
  let gone, kept = List.partition (expired ~now) t.table in
  t.table <- kept;
  t.evictions <- Int64.add t.evictions (Int64.of_int (List.length gone));
  Telemetry.add m_evictions (List.length gone);
  gone

let expire t ~now = List.map (fun e -> e.rule) (expire_entries t ~now)

let lookup t ~now ?(bytes = 64) h =
  match List.find_opt (fun e -> Rule.matches e.rule h) t.table with
  | Some e ->
      e.last_hit <- now;
      e.packets <- Int64.add e.packets 1L;
      e.bytes <- Int64.add e.bytes (Int64.of_int bytes);
      t.hits <- Int64.add t.hits 1L;
      Telemetry.incr m_hits;
      Some e.rule
  | None ->
      t.misses <- Int64.add t.misses 1L;
      Telemetry.incr m_misses;
      None

let peek t h =
  Option.map (fun e -> e.rule) (List.find_opt (fun e -> Rule.matches e.rule h) t.table)

let stats t = { hits = t.hits; misses = t.misses; inserts = t.inserts; evictions = t.evictions }

let reset_stats t =
  t.hits <- 0L;
  t.misses <- 0L;
  t.inserts <- 0L;
  t.evictions <- 0L

let hit_rate t =
  let total = Int64.add t.hits t.misses in
  if Int64.equal total 0L then Float.nan
  else Int64.to_float t.hits /. Int64.to_float total

let pp ppf t =
  Format.fprintf ppf "@[<v>TCAM %d/%d@,%a@]" (occupancy t) t.cap
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf e ->
         Format.fprintf ppf "%a (pkts=%Ld)" Rule.pp e.rule e.packets))
    t.table

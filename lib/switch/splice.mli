(** Cache-rule splicing: DIFANE's dependency-aware wildcard caching.

    Caching the rule a packet matched is unsafe when a higher-priority
    rule overlaps it — the cached copy would steal that rule's packets at
    the ingress switch.  DIFANE's answer is to cache not the rule but the
    {e independent piece} of the rule that the packet actually fell into:
    the rule's predicate clipped to the authority partition, minus every
    higher-priority overlapping predicate, restricted to the disjoint
    fragment containing the packet.  Pieces spliced this way never overlap
    each other (across rules {e and} across partitions), so the ingress
    cache bank needs no internal priorities and can never corrupt the
    policy — the correctness property the test suite checks exhaustively. *)

type piece = {
  origin : Rule.t;  (** the partition-table rule the packet matched *)
  pred : Pred.t;  (** the independent fragment containing the packet *)
}

val for_header : Classifier.t -> Header.t -> piece option
(** [for_header table h]: the independent piece of [table]'s winning rule
    that contains [h]; [None] when no rule matches.  The piece satisfies
    [Pred.matches piece.pred h] and overlaps no rule that beats
    [piece.origin]. *)

val cache_priority : Classifier.t -> Rule.t -> int
(** The cache-bank priority for rules spliced or covered from [origin] in
    this partition table: the origin's rank counted from the table's
    bottom (last rule = 1, first = table length).  Explicit, dependency-
    aware priorities replace the old "all cache rules share priority 0"
    constant, whose hidden assumption — that cached rules never overlap —
    the cover-set and aggregation machinery breaks on purpose: ranks make
    any overlap between cached entries resolve exactly as the authority
    table would.  Exact-match fallback entries keep priority 0, below
    every rank. *)

val cache_rule : next_id:(unit -> int) -> Classifier.t -> piece -> Rule.t
(** Materialise a piece as an installable cache rule carrying the origin's
    action at {!cache_priority} of its origin. *)

val cover_set : Classifier.t -> Rule.t -> Rule.t list
(** [cover_set table r]: [r] plus the transitive closure of its direct
    dependencies, in table order (best first) — the Infinite-CacheFlow
    cover set.  Installing every member at its own {!cache_priority}
    caches [r]'s {e whole} predicate safely: each member's overlap
    structure is reproduced inside the cache, so the highest-priority
    cached member matching a header is the rule the authority table would
    pick.  Worth installing when {!dependent_set_cost} is small. *)

val pieces_of_rule : Classifier.t -> Rule.t -> Pred.t list
(** All independent pieces of one rule (its effective region as disjoint
    predicates) — used by the ablation bench to count worst-case cache
    cost per rule. *)

val dependent_set_cost : Classifier.t -> Rule.t -> int
(** Size of the naive alternative: cache the rule plus every rule in its
    transitive direct-dependency closure (the CacheFlow "dependent set").
    The A-SPLICE ablation compares this against splicing. *)

type bank_hit = Cache_bank | Authority_bank
type verdict = Local of Action.t * bank_hit | Tunnel of int | Unmatched | Misconfigured

type stats = {
  cache_hits : int64;
  authority_hits : int64;
  tunnelled : int64;
  unmatched : int64;
  misconfigured : int64;
}

(* Per-switch registry handles, created once at [create]: increments on
   the packet path are plain field writes, no lookup, no allocation. *)
type tele = {
  m_cache_hits : Telemetry.counter;
  m_authority_hits : Telemetry.counter;
  m_tunnelled : Telemetry.counter;
  m_unmatched : Telemetry.counter;
  m_misconfigured : Telemetry.counter;
  m_stale_rejected : Telemetry.counter;
  m_cache_occupancy : Telemetry.gauge;
}

(* Cache-entry provenance.  A plain spliced entry has one part; an entry
   produced by buddy-merging fragments carries one part per absorbed
   origin, each remembering the sub-predicate that origin contributed so
   a hit can be attributed to the origin whose region the packet actually
   fell in (parts are kept in descending-rank order, so the first
   matching part is the one the policy would pick). *)
type cache_kind = Fragment | Cover | Exact

type cache_part = { part_origin : int; part_rank : int; part_pred : Pred.t }

type cache_meta = {
  pid : int;
  kind : cache_kind;
  parts : cache_part list;
  group : (int * int list) option;
      (* cover sets are only sound while complete: the broad low-rank
         rule relies on its higher-rank dependencies being resident to
         steal the packets it must not decide.  Members of one cover set
         share a (group id, member cache-rule ids) tag;
         [drop_cover_orphans] removes every member of any group that is
         no longer whole, so a partial set can never decide a packet,
         and a hit on any member refreshes the whole group's idle
         deadlines so unhit high-rank dependencies don't idle out from
         under it. *)
}

let meta_primary_origin m =
  match m.parts with p :: _ -> p.part_origin | [] -> -1

type t = {
  id : int;
  cache : Tcam.t;
  mutable authority : (Partitioner.partition * Indexed.t) list;
      (* each partition table carries a tuple-space index for the hot path *)
  mutable partition_bank : Rule.t list; (* disjoint regions; order irrelevant *)
  mutable partition_index : Indexed.t option;
      (* tuple-space index over the committed bank, rebuilt on each
         (rare) control-plane replacement so the per-packet partition
         scan is sub-linear; [None] when the bank is empty or cannot be
         indexed (duplicate ids from a confused controller) — then the
         lookup falls back to the linear scan *)
  cache_origin : (int, cache_meta) Hashtbl.t;
      (* cache rule id -> provenance: serving partition id (-1 when the
         installer didn't know it — degraded exact-match fallbacks),
         entry kind, and the origin set threaded from policy rule through
         authority table to installed cache entry *)
  origin_cache_hits : (int, int64) Hashtbl.t; (* origin rule id -> cache-bank packets *)
  origin_auth_hits : (int, int64) Hashtbl.t; (* origin rule id -> authority-bank packets *)
  partition_hits : (int, int64) Hashtbl.t; (* partition id -> misses served *)
  pid_cache_hits : (int, int64) Hashtbl.t;
      (* partition id -> cache-bank packets absorbed by entries spliced
         from that partition — the cache-efficacy side of the ledger
         whose miss side is [partition_hits] at the authority *)
  mutable next_cache_id : int;
  mutable notifications : Message.t list; (* reverse order *)
  mutable pending_partition : Rule.t list; (* staged until the next barrier *)
  mutable partition_committed : bool;
      (* a barrier has committed the partition bank: adds arriving after
         it (retransmissions whose first copy was lost) merge directly
         instead of staging for a barrier that will never come *)
  seen_xids : (int, Message.t list) Hashtbl.t;
      (* xid -> responses already sent: retransmitted requests are
         re-acked, not re-applied *)
  seen_order : int Queue.t; (* xid admission order, for pruning *)
  mutable epoch : int;
      (* highest master epoch seen; 0 = unfenced (single controller) *)
  mutable stale_rejected : int; (* frames refused for carrying an old epoch *)
  mutable stale_accepted : int; (* must stay 0: the fencing invariant *)
  mutable cache_hits : int64;
  mutable authority_hits : int64;
  mutable tunnelled : int64;
  mutable unmatched : int64;
  mutable misconfigured : int64;
  tele : tele;
}

let cache_rule_base = 2_000_000

let create ~id ~cache_capacity =
  let labels = [ ("switch", string_of_int id) ] in
  {
    id;
    cache = Tcam.create ~capacity:cache_capacity;
    authority = [];
    partition_bank = [];
    partition_index = None;
    cache_origin = Hashtbl.create 64;
    origin_cache_hits = Hashtbl.create 64;
    origin_auth_hits = Hashtbl.create 64;
    partition_hits = Hashtbl.create 16;
    pid_cache_hits = Hashtbl.create 16;
    next_cache_id = cache_rule_base + (id * 100_000);
    notifications = [];
    pending_partition = [];
    partition_committed = false;
    seen_xids = Hashtbl.create 64;
    seen_order = Queue.create ();
    epoch = 0;
    stale_rejected = 0;
    stale_accepted = 0;
    cache_hits = 0L;
    authority_hits = 0L;
    tunnelled = 0L;
    unmatched = 0L;
    misconfigured = 0L;
    tele =
      {
        m_cache_hits = Telemetry.counter ~labels "switch_cache_hits";
        m_authority_hits = Telemetry.counter ~labels "switch_authority_hits";
        m_tunnelled = Telemetry.counter ~labels "switch_tunnelled";
        m_unmatched = Telemetry.counter ~labels "switch_unmatched";
        m_misconfigured = Telemetry.counter ~labels "switch_misconfigured";
        m_stale_rejected = Telemetry.counter ~labels "switch_stale_rejected";
        m_cache_occupancy = Telemetry.gauge ~labels "switch_cache_occupancy";
      };
  }

(* The occupancy gauge tracks the cache TCAM level through installs,
   evictions and expiry, so the monitor's sampler can turn it into a
   timeline without polling every switch. *)
let sync_occupancy t = Telemetry.set t.tele.m_cache_occupancy (float_of_int (Tcam.occupancy t.cache))

let id t = t.id

let rebuild_partition_index t =
  t.partition_index <-
    (match t.partition_bank with
    | [] -> None
    | r :: _ -> (
        match Classifier.create (Pred.schema r.Rule.pred) t.partition_bank with
        | c -> Some (Indexed.of_classifier c)
        | exception Invalid_argument _ -> None))

(* Internal wholesale replacement: what the hardware does with whatever
   the control channel delivered.  Rules with a non-tunnel action stay
   in the bank — [process] counts packets hitting them as
   [misconfigured] instead of crashing the switch mid-dispatch. *)
let set_partition_bank t rules =
  t.partition_bank <- rules;
  t.partition_committed <- true;
  rebuild_partition_index t

let install_partition_rules t rules =
  List.iter
    (fun (r : Rule.t) ->
      match r.action with
      | Action.To_authority _ -> ()
      | _ -> invalid_arg "Switch.install_partition_rules: non-partition action")
    rules;
  set_partition_bank t rules

let install_authority t (p : Partitioner.partition) =
  t.authority <-
    (p, Indexed.of_classifier p.table)
    :: List.filter (fun ((q : Partitioner.partition), _) -> q.pid <> p.pid) t.authority

let drop_authority t pid =
  t.authority <- List.filter (fun ((q : Partitioner.partition), _) -> q.pid <> pid) t.authority

let authority_partitions t = List.map fst t.authority
let partition_rules t = t.partition_bank

let bump tbl key n =
  let prev = Option.value ~default:0L (Hashtbl.find_opt tbl key) in
  Hashtbl.replace tbl key (Int64.add prev n)

let notify_removed t ~now reason (e : Tcam.entry) =
  let cookie =
    match Hashtbl.find_opt t.cache_origin e.Tcam.rule.Rule.id with
    | Some m -> meta_primary_origin m
    | None -> -1
  in
  t.notifications <-
    Message.Flow_removed
      {
        Message.removed_rule = e.Tcam.rule.Rule.id;
        cookie;
        reason;
        final_packets = e.Tcam.packets;
        final_bytes = e.Tcam.bytes;
        lifetime = now -. e.Tcam.installed_at;
      }
    :: t.notifications

(* A cover set decides packets correctly only while every member is
   resident: the broad low-rank rule counts on its higher-rank
   dependencies to catch the headers it must not answer.  Any removal
   path (LRU eviction, idle/hard expiry, targeted invalidation, explicit
   delete) can take one member out from under the rest, so after each
   such removal — and after every install batch, whose evictions can
   break a group mid-install — the survivors of any incomplete group are
   scrubbed.  They report [Replaced] like other displacement paths; the
   next miss simply re-serves. *)
let drop_cover_orphans t ~now =
  let doomed =
    List.filter
      (fun (e : Tcam.entry) ->
        match Hashtbl.find_opt t.cache_origin e.Tcam.rule.Rule.id with
        | Some { group = Some (_, members); _ } ->
            not (List.for_all (Tcam.mem t.cache) members)
        | _ -> false)
      (Tcam.entries t.cache)
  in
  List.iter
    (fun (e : Tcam.entry) ->
      Ptrace.emit_control ~at:now Ptrace.Invalidate ~switch:t.id
        ~rule:e.Tcam.rule.Rule.id ~aux:Ptrace.invalidate_cover_orphan;
      notify_removed t ~now Message.Replaced e;
      ignore (Tcam.remove t.cache e.Tcam.rule.Rule.id);
      Hashtbl.remove t.cache_origin e.Tcam.rule.Rule.id)
    doomed;
  if doomed <> [] then sync_occupancy t;
  List.length doomed

let apply_flow_mod t ~now (fm : Message.flow_mod) =
  match (fm.bank, fm.command) with
  | Message.Cache, Message.Add ->
      ignore
        (Tcam.insert ?idle_timeout:fm.idle_timeout ?hard_timeout:fm.hard_timeout t.cache
           ~now fm.rule);
      Ptrace.emit_control ~at:now Ptrace.Install ~switch:t.id ~rule:fm.rule.Rule.id
        ~aux:0;
      sync_occupancy t
  | Message.Cache, (Message.Delete | Message.Delete_strict) ->
      ignore (Tcam.remove t.cache fm.rule.Rule.id);
      Hashtbl.remove t.cache_origin fm.rule.Rule.id;
      Ptrace.emit_control ~at:now Ptrace.Invalidate ~switch:t.id ~rule:fm.rule.Rule.id
        ~aux:Ptrace.invalidate_delete;
      (* a controller delete can take one cover-set member; the rest of
         its group must not stay behind to misdecide packets *)
      ignore (drop_cover_orphans t ~now);
      sync_occupancy t
  | (Message.Authority | Message.Partition), _ ->
      invalid_arg "Switch.apply_flow_mod: authority/partition banks are replaced wholesale"

(* Replay memory: how many acknowledged xids a switch remembers.  A
   retransmission arriving after its xid was pruned would be re-applied —
   the cap just bounds memory; at the control plane's retransmission
   limits the window is never approached. *)
let seen_cap = 8192

let remember t xid responses =
  if not (Hashtbl.mem t.seen_xids xid) then begin
    Queue.add xid t.seen_order;
    if Queue.length t.seen_order > seen_cap then
      Hashtbl.remove t.seen_xids (Queue.pop t.seen_order)
  end;
  Hashtbl.replace t.seen_xids xid responses

(* acknowledge state-changing requests that have no reply of their own,
   so a controller on a lossy channel can stop retransmitting; xid 0
   marks an untracked (fire-and-forget) request *)
let ack xid = if xid = 0 then [] else [ Message.Ack xid ]

let dispatch_control t ~now ~xid msg =
  match msg with
  | Message.Hello -> [ Message.Hello ]
  | Message.Echo_request c -> [ Message.Echo_reply c ]
  | Message.Barrier_request x ->
      (* barrier semantics: staged partition-bank updates commit as one
         atomic replacement before the reply goes out *)
      if t.pending_partition <> [] then begin
        set_partition_bank t (List.rev t.pending_partition);
        t.pending_partition <- []
      end;
      (* even an empty commit closes the installation: adds whose frames
         were all lost arrive later as retransmissions and must merge *)
      t.partition_committed <- true;
      [ Message.Barrier_reply x ]
  | Message.Flow_mod fm -> (
      match (fm.Message.bank, fm.Message.command) with
      | Message.Cache, _ ->
          apply_flow_mod t ~now fm;
          ack xid
      | Message.Partition, Message.Add ->
          (if t.partition_committed then begin
             (* the barrier that closed this batch already passed (the
                original frame was lost; this is its retransmission):
                merge into the live bank — regions are disjoint and rule
                ids stable, so replace-by-id converges.  A non-tunnel
                action is kept too: [process] surfaces it as
                [misconfigured] rather than dropping it silently here *)
             t.partition_bank <-
               fm.Message.rule
               :: List.filter
                    (fun (r : Rule.t) -> r.Rule.id <> fm.Message.rule.Rule.id)
                    t.partition_bank;
             rebuild_partition_index t
           end
           else t.pending_partition <- fm.Message.rule :: t.pending_partition);
          ack xid
      | Message.Partition, (Message.Delete | Message.Delete_strict)
      | Message.Authority, _ ->
          ack xid)
  | Message.Stats_request { Message.table_bank = Message.Cache; cookie } ->
      let flows =
        List.map
          (fun (e : Tcam.entry) ->
            {
              Message.rule_id = e.rule.Rule.id;
              packets = e.Tcam.packets;
              bytes = e.Tcam.bytes;
              duration = now -. e.Tcam.installed_at;
            })
          (Tcam.entries t.cache)
      in
      [ Message.Stats_reply { Message.request_cookie = cookie; flows } ]
  | Message.Stats_request _ -> [ Message.Stats_reply { Message.request_cookie = 0; flows = [] } ]
  | Message.Install_partition { Message.pid; region; table_rules } ->
      install_authority t
        {
          Partitioner.pid;
          region;
          table = Classifier.create (Pred.schema region) table_rules;
        };
      ack xid
  | Message.Drop_partition pid ->
      drop_authority t pid;
      ack xid
  | Message.Echo_reply _ | Message.Barrier_reply _ | Message.Stats_reply _
  | Message.Packet_in _ | Message.Packet_out _ | Message.Flow_removed _
  | Message.Ack _ ->
      []

let handle_control ?(xid = 0) ?(epoch = 0) t ~now msg =
  (* Epoch fencing (replicated controllers).  A frame from a newer master
     moves the switch forward — and clears the xid replay memory, because
     the new master allocates xids from its own space.  A frame from an
     older (deposed) master is refused without being applied, but still
     acked: replies carry the switch's current epoch, which is how the
     deposed leader learns it lost.  Epoch 0 frames are unfenced
     (single-controller deployments) and always accepted. *)
  if epoch > t.epoch then begin
    t.epoch <- epoch;
    Hashtbl.reset t.seen_xids;
    Queue.clear t.seen_order;
    (* abandon the deposed master's open install transaction: its staged
       partition adds must not leak into the new master's batch (the new
       batch replaces the bank wholesale at its own barrier) *)
    t.pending_partition <- [];
    t.partition_committed <- false
  end;
  if epoch <> 0 && epoch < t.epoch then begin
    t.stale_rejected <- t.stale_rejected + 1;
    Telemetry.incr t.tele.m_stale_rejected;
    ack xid
  end
  else
    (* idempotency per xid: a duplicate (retransmitted or channel-duplicated)
       request is answered from memory without re-applying its effect — a
       replayed barrier must not commit rules staged since, a replayed
       partition add must not double a rule *)
    match (if xid = 0 then None else Hashtbl.find_opt t.seen_xids xid) with
    | Some responses -> responses
    | None ->
        let responses = dispatch_control t ~now ~xid msg in
        if xid <> 0 then remember t xid responses;
        responses

(* Partition regions are disjoint, so at most one rule matches; the
   index turns the old whole-bank scan into a handful of hash probes. *)
let partition_lookup t h =
  match t.partition_index with
  | Some idx -> Indexed.first_match idx h
  | None -> List.find_opt (fun (r : Rule.t) -> Rule.matches r h) t.partition_bank

let authority_lookup t h =
  List.find_map
    (fun ((p : Partitioner.partition), idx) ->
      if Pred.matches p.region h then
        Option.map (fun r -> (p, r)) (Indexed.first_match idx h)
      else None)
    t.authority

(* Which origin's region did a packet hitting a (possibly merged) cache
   entry actually fall in?  Single-part metas — the overwhelmingly common
   case — answer without touching the predicate; merged entries walk
   their rank-ordered parts, so attribution is exact per packet even when
   one installed rule stands for several policy rules. *)
let attribute_hit m h =
  match m.parts with
  | [ p ] -> p.part_origin
  | [] -> -1
  | p :: _ as parts -> (
      match List.find_opt (fun q -> Pred.matches q.part_pred h) parts with
      | Some q -> q.part_origin
      | None -> p.part_origin)

let process t ~now h =
  match Tcam.lookup t.cache ~now h with
  | Some r ->
      t.cache_hits <- Int64.add t.cache_hits 1L;
      Telemetry.incr t.tele.m_cache_hits;
      (match Hashtbl.find_opt t.cache_origin r.Rule.id with
      | Some m ->
          let origin = attribute_hit m h in
          bump t.origin_cache_hits origin 1L;
          if m.pid >= 0 then bump t.pid_cache_hits m.pid 1L;
          (* a cover set lives and dies as one unit: traffic absorbed by
             any member keeps the whole group's idle deadlines fresh, or
             an unhit high-rank dependency would expire and take the
             group (and its hit stream) with it *)
          (match m.group with
          | Some (_, members) ->
              List.iter
                (fun id ->
                  if id <> r.Rule.id then ignore (Tcam.touch t.cache ~now id))
                members
          | None -> ());
          Ptrace.emit ~at:now Ptrace.Cache_hit ~switch:t.id ~rule:r.Rule.id
            ~aux:(Ptrace.pack_provenance ~origin ~pid:m.pid)
      | None ->
          Ptrace.emit ~at:now Ptrace.Cache_hit ~switch:t.id ~rule:r.Rule.id ~aux:0);
      Local (r.Rule.action, Cache_bank)
  | None -> (
      match authority_lookup t h with
      | Some (_, r) ->
          t.authority_hits <- Int64.add t.authority_hits 1L;
          Telemetry.incr t.tele.m_authority_hits;
          bump t.origin_auth_hits r.Rule.id 1L;
          Ptrace.emit ~at:now Ptrace.Authority_hit ~switch:t.id ~rule:r.Rule.id ~aux:0;
          Local (r.Rule.action, Authority_bank)
      | None -> (
          match partition_lookup t h with
          | Some { Rule.action = Action.To_authority a; _ } ->
              t.tunnelled <- Int64.add t.tunnelled 1L;
              Telemetry.incr t.tele.m_tunnelled;
              Ptrace.emit ~at:now Ptrace.Miss ~switch:t.id ~rule:(-1) ~aux:a;
              Tunnel a
          | Some _ ->
              (* a partition rule claimed the header but cannot tunnel
                 it: a misconfigured bank, not uncovered flowspace *)
              t.misconfigured <- Int64.add t.misconfigured 1L;
              Telemetry.incr t.tele.m_misconfigured;
              Misconfigured
          | None ->
              t.unmatched <- Int64.add t.unmatched 1L;
              Telemetry.incr t.tele.m_unmatched;
              Unmatched))

type miss_reply = {
  action : Action.t;
  cache_rule : Rule.t;
  origin_id : int;
  pid : int;
  installs : (Rule.t * cache_meta) list;
}

let exact_pred schema h =
  Pred.make schema
    (List.init (Schema.arity schema) (fun i ->
         Ternary.exact ~width:(Schema.field_bits schema i) (Header.field h i)))

let serve_miss ?(mode = `Spliced) ?cover_limit t ~now h =
  match
    List.find_opt
      (fun ((p : Partitioner.partition), _) -> Pred.matches p.region h)
      t.authority
  with
  | None -> None
  | Some (p, _) -> (
      match Splice.for_header p.table h with
      | None -> None
      | Some piece ->
          (* the authority switch forwards this packet itself: count it
             against the origin rule like any other hit, and against the
             partition for load rebalancing *)
          t.authority_hits <- Int64.add t.authority_hits 1L;
          Telemetry.incr t.tele.m_authority_hits;
          bump t.origin_auth_hits piece.origin.Rule.id 1L;
          bump t.partition_hits p.Partitioner.pid 1L;
          Ptrace.emit ~at:now Ptrace.Authority_serve ~switch:t.id
            ~rule:piece.origin.Rule.id ~aux:p.Partitioner.pid;
          let next_id () =
            let i = t.next_cache_id in
            t.next_cache_id <- i + 1;
            i
          in
          let pid = p.Partitioner.pid in
          let part_of (r : Rule.t) rank =
            { part_origin = r.id; part_rank = rank; part_pred = r.pred }
          in
          let fragment () =
            let r = Splice.cache_rule ~next_id p.table piece in
            ( r,
              [ (r, { pid; kind = Fragment; group = None;
                      parts = [ { (part_of piece.origin r.Rule.priority) with
                                  part_pred = piece.pred } ] }) ] )
          in
          let cache_rule, installs =
            match mode with
            | `Spliced -> (
                match cover_limit with
                | Some limit
                  when Splice.dependent_set_cost p.table piece.origin <= limit ->
                    (* the whole dependency closure fits the budget:
                       install the rule and its covers at their ranks
                       instead of a per-packet clipped fragment — broader
                       entries, and later misses on the same rule are
                       already covered *)
                    let members =
                      List.map
                        (fun (r : Rule.t) ->
                          let rank = Splice.cache_priority p.table r in
                          ( Rule.make ~id:(next_id ()) ~priority:rank r.pred
                              r.action,
                            r, rank ))
                        (Splice.cover_set p.table piece.origin)
                    in
                    (* one atomic group per serve, tagged with every
                       member's cache-rule id: if any member is later
                       evicted or expired the whole set goes with it,
                       and a hit on any member keeps all of them warm *)
                    let group =
                      Some
                        ( next_id (),
                          List.map (fun (cr, _, _) -> cr.Rule.id) members )
                    in
                    let covers =
                      List.map
                        (fun (cr, r, rank) ->
                          ( cr,
                            { pid; kind = Cover; group;
                              parts = [ part_of r rank ] } ))
                        members
                    in
                    let primary =
                      (* the entry standing for the origin rule itself:
                         the last of the table-ordered cover set *)
                      match List.rev covers with
                      | (r, _) :: _ -> r
                      | [] -> assert false
                    in
                    (primary, covers)
                | Some _ | None -> fragment ())
            | `Microflow ->
                (* exact match on the packet's own header: always safe,
                   and under aggregation adjacent microflows merge into
                   wider exact-union blocks *)
                let pr = exact_pred (Classifier.schema p.table) h in
                let r =
                  Rule.make ~id:(next_id ()) ~priority:0 pr
                    piece.origin.Rule.action
                in
                ( r,
                  [ (r, { pid; kind = Exact; group = None;
                          parts = [ { part_origin = piece.origin.Rule.id;
                                      part_rank = 0; part_pred = pr } ] }) ] )
          in
          Some
            {
              action = piece.origin.Rule.action;
              cache_rule;
              origin_id = piece.origin.Rule.id;
              pid;
              installs;
            })


let install_cache_meta ?idle_timeout ?hard_timeout t ~now rule meta =
  let d = Tcam.insert_or_evict_entries ?idle_timeout ?hard_timeout t.cache ~now rule in
  List.iter
    (fun (e : Tcam.entry) ->
      Ptrace.emit ~at:now Ptrace.Replace ~switch:t.id ~rule:e.Tcam.rule.Rule.id
        ~aux:Ptrace.replace_evicted;
      notify_removed t ~now Message.Evicted e)
    d.Tcam.evicted;
  (* a same-id reinstall displaces the old entry: report its final
     counters (cookie read before the provenance mapping is replaced)
     so rule attribution survives the churn *)
  Option.iter
    (fun (e : Tcam.entry) ->
      Ptrace.emit ~at:now Ptrace.Replace ~switch:t.id ~rule:e.Tcam.rule.Rule.id
        ~aux:Ptrace.replace_displaced;
      notify_removed t ~now Message.Replaced e;
      Hashtbl.remove t.cache_origin e.Tcam.rule.Rule.id)
    d.Tcam.replaced;
  if not d.Tcam.bounced then begin
    (match meta with
    | Some m ->
        Ptrace.emit ~at:now Ptrace.Install ~switch:t.id ~rule:rule.Rule.id
          ~aux:(Ptrace.pack_provenance ~origin:(meta_primary_origin m) ~pid:m.pid);
        Hashtbl.replace t.cache_origin rule.Rule.id m
    | None ->
        Ptrace.emit ~at:now Ptrace.Install ~switch:t.id ~rule:rule.Rule.id
          ~aux:(Ptrace.pack_provenance ~origin:(-1) ~pid:(-1)))
  end;
  let rules = List.map (fun (e : Tcam.entry) -> e.Tcam.rule) d.Tcam.evicted in
  List.iter (fun (r : Rule.t) -> Hashtbl.remove t.cache_origin r.id) rules;
  sync_occupancy t;
  rules

let install_cache_rule ?idle_timeout ?hard_timeout ?origin_id ?(pid = -1) t ~now rule =
  (* back-compat single-origin install: wrap the provenance pair into a
     one-part meta; fully specified predicates are exact entries (the
     degraded controller path), everything else is a spliced fragment *)
  let meta =
    Option.map
      (fun origin ->
        let kind = if Pred.size_log2 rule.Rule.pred = 0 then Exact else Fragment in
        {
          pid;
          kind;
          group = None;
          parts =
            [ { part_origin = origin;
                part_rank = rule.Rule.priority;
                part_pred = rule.Rule.pred } ];
        })
      origin_id
  in
  let evicted = install_cache_meta ?idle_timeout ?hard_timeout t ~now rule meta in
  (* a single plain install is never part of a cover batch, so any group
     its eviction broke can be scrubbed immediately *)
  ignore (drop_cover_orphans t ~now);
  evicted

(* Aggregation absorbing an entry into a broader merged rule: the old
   entry leaves the TCAM reporting [Replaced] with its final counters —
   the same provenance-remap signal a same-id reinstall emits — so
   nothing downstream loses attribution when installed rules coalesce. *)
let absorb_cache_rule t ~now cid =
  match
    List.find_opt (fun (e : Tcam.entry) -> e.Tcam.rule.Rule.id = cid)
      (Tcam.entries t.cache)
  with
  | None -> false
  | Some e ->
      Ptrace.emit ~at:now Ptrace.Replace ~switch:t.id ~rule:cid
        ~aux:Ptrace.replace_displaced;
      notify_removed t ~now Message.Replaced e;
      ignore (Tcam.remove t.cache cid);
      Hashtbl.remove t.cache_origin cid;
      sync_occupancy t;
      true

(* Migration cleanup: evict cache entries spliced from a retired (or
   rolled-back) partition.  They report [Replaced] — the same signal a
   same-id reinstall emits — so the controller's provenance retirement
   machinery remaps them; the next miss re-splices under the live pid. *)
let invalidate_cache_pids t ~now pids =
  let doomed =
    List.filter
      (fun (e : Tcam.entry) ->
        match Hashtbl.find_opt t.cache_origin e.Tcam.rule.Rule.id with
        | Some m -> List.mem m.pid pids
        | None -> false)
      (Tcam.entries t.cache)
  in
  List.iter
    (fun (e : Tcam.entry) ->
      Ptrace.emit_control ~at:now Ptrace.Invalidate ~switch:t.id
        ~rule:e.Tcam.rule.Rule.id ~aux:Ptrace.invalidate_migration;
      notify_removed t ~now Message.Replaced e;
      ignore (Tcam.remove t.cache e.Tcam.rule.Rule.id);
      Hashtbl.remove t.cache_origin e.Tcam.rule.Rule.id)
    doomed;
  sync_occupancy t;
  ignore (drop_cover_orphans t ~now);
  List.length doomed

let expire_cache t ~now =
  let gone = Tcam.expire_entries t.cache ~now in
  List.iter
    (fun (e : Tcam.entry) ->
      let reason =
        match e.Tcam.hard_timeout with
        | Some d when now -. e.Tcam.installed_at >= d -> Message.Hard_timeout
        | _ -> Message.Idle_timeout
      in
      Ptrace.emit_control ~at:now Ptrace.Replace ~switch:t.id
        ~rule:e.Tcam.rule.Rule.id
        ~aux:
          (if reason = Message.Hard_timeout then Ptrace.replace_hard
           else Ptrace.replace_idle);
      notify_removed t ~now reason e)
    gone;
  let rules = List.map (fun (e : Tcam.entry) -> e.Tcam.rule) gone in
  List.iter (fun (r : Rule.t) -> Hashtbl.remove t.cache_origin r.id) rules;
  sync_occupancy t;
  (* expiring one cover-set member (an unhit high-rank dependency idles
     out first) invalidates its whole group *)
  if rules <> [] then ignore (drop_cover_orphans t ~now);
  rules

(* Crash semantics: the device reboots blank.  Every bank, staged update,
   counter and the xid replay memory are gone; the id and cache capacity
   (hardware) survive.  The controller is expected to resync afterwards. *)
let reset t =
  Tcam.clear t.cache;
  t.authority <- [];
  t.partition_bank <- [];
  t.partition_index <- None;
  t.pending_partition <- [];
  t.partition_committed <- false;
  Hashtbl.reset t.cache_origin;
  Hashtbl.reset t.origin_cache_hits;
  Hashtbl.reset t.origin_auth_hits;
  Hashtbl.reset t.partition_hits;
  Hashtbl.reset t.pid_cache_hits;
  Hashtbl.reset t.seen_xids;
  Queue.clear t.seen_order;
  t.epoch <- 0;
  t.stale_rejected <- 0;
  t.stale_accepted <- 0;
  t.notifications <- [];
  t.cache_hits <- 0L;
  t.authority_hits <- 0L;
  t.tunnelled <- 0L;
  t.unmatched <- 0L;
  t.misconfigured <- 0L;
  sync_occupancy t

let fresh_cache_id t =
  let i = t.next_cache_id in
  t.next_cache_id <- i + 1;
  i

let drain_notifications t =
  let n = List.rev t.notifications in
  t.notifications <- [];
  n

let epoch t = t.epoch
let stale_rejected t = t.stale_rejected
let stale_accepted t = t.stale_accepted
let cache t = t.cache
let cache_occupancy t = Tcam.occupancy t.cache
let cache_meta_of_rule t cid = Hashtbl.find_opt t.cache_origin cid

let origin_of_cache_rule t cid =
  Option.map meta_primary_origin (Hashtbl.find_opt t.cache_origin cid)

let origins_of_cache_rule t cid =
  match Hashtbl.find_opt t.cache_origin cid with
  | None -> []
  | Some m ->
      List.sort_uniq Int.compare (List.map (fun p -> p.part_origin) m.parts)

let provenance_of_cache_rule t cid =
  Option.map (fun m -> (meta_primary_origin m, m.pid)) (Hashtbl.find_opt t.cache_origin cid)

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let partition_load t = sorted_bindings t.partition_hits
let cache_load t = sorted_bindings t.pid_cache_hits

let origin_breakdown t =
  let merged = Hashtbl.create 64 in
  Hashtbl.iter (fun k v -> Hashtbl.replace merged k (v, 0L)) t.origin_cache_hits;
  Hashtbl.iter
    (fun k v ->
      let c = match Hashtbl.find_opt merged k with Some (c, _) -> c | None -> 0L in
      Hashtbl.replace merged k (c, v))
    t.origin_auth_hits;
  Hashtbl.fold (fun k (c, a) acc -> (k, c, a) :: acc) merged []
  |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)

let aggregate_counters t =
  List.map (fun (k, c, a) -> (k, Int64.add c a)) (origin_breakdown t)

let stats t =
  {
    cache_hits = t.cache_hits;
    authority_hits = t.authority_hits;
    tunnelled = t.tunnelled;
    unmatched = t.unmatched;
    misconfigured = t.misconfigured;
  }

let reset_stats t =
  t.cache_hits <- 0L;
  t.authority_hits <- 0L;
  t.tunnelled <- 0L;
  t.unmatched <- 0L;
  t.misconfigured <- 0L;
  Hashtbl.reset t.origin_cache_hits;
  Hashtbl.reset t.origin_auth_hits;
  Hashtbl.reset t.partition_hits;
  Hashtbl.reset t.pid_cache_hits

let pp ppf t =
  Format.fprintf ppf "switch %d: cache %d/%d, %d authority partitions, %d partition rules"
    t.id (Tcam.occupancy t.cache) (Tcam.capacity t.cache) (List.length t.authority)
    (List.length t.partition_bank)

type piece = { origin : Rule.t; pred : Pred.t }

(* Clip the winner's predicate against each higher-priority overlap,
   keeping only the disjoint fragment containing the packet.  One
   hyper-rectangle survives each step, so the walk is linear in the
   blocker count — materialising the full disjoint cover (which can
   fragment combinatorially) is never needed.  Pieces spliced from
   different headers of the same rule may overlap each other, which is
   harmless: they carry the same action.  Pieces of different rules are
   always disjoint (each excludes the other's whole predicate). *)
let for_header table h =
  match Classifier.first_match table h with
  | None -> None
  | Some origin ->
      let blockers =
        Classifier.rules table
        |> List.filter (fun r -> Rule.beats r origin && Rule.overlaps r origin)
        |> List.map (fun (r : Rule.t) -> r.pred)
      in
      let pred =
        List.fold_left
          (fun piece b ->
            if Pred.overlaps piece b then Pred.clip_to_holder piece h b else piece)
          origin.Rule.pred blockers
      in
      Some { origin; pred }

(* Cache-rule priority: the origin's rank in its partition table, counted
   from the bottom (the last rule ranks 1, the first ranks N).  Two
   properties make this the right priority space for the ingress cache:

   - it is strictly decreasing along [Rule.compare_priority] table order,
     so cached copies of whole rules (cover sets) beat each other exactly
     as the authority table would — ties included, because table order
     already breaks priority ties by id;
   - a spliced fragment excludes every rule that beats its origin, so
     giving the fragment its origin's rank can never steal a packet from
     a higher-ranked cached rule (no such rule overlaps the fragment),
     while correctly beating any lower-ranked cover rule it overlaps.

   Ranks start at 1; the exact-match fallbacks installed by the degraded
   controller path keep priority 0 and thus never outrank a spliced or
   cover entry.  Ranks from different partition tables never interact:
   partition tables are clipped to disjoint regions. *)
let cache_priority table (origin : Rule.t) =
  let rec rank n = function
    | [] -> 1 (* unknown origin: floor rank, still above exact fallbacks *)
    | (r : Rule.t) :: rest -> if r.id = origin.id then n else rank (n - 1) rest
  in
  rank (Classifier.length table) (Classifier.rules table)

let cache_rule ~next_id table piece =
  Rule.make ~id:(next_id ())
    ~priority:(cache_priority table piece.origin)
    piece.pred piece.origin.Rule.action

(* The CacheFlow-style cover set of a rule: the rule itself plus the
   transitive closure of its direct dependencies, in table order (best
   first).  Installing every member at its own rank reproduces the
   authority table's semantics over the union of their predicates: any
   header matching a member is decided by the highest-ranked cached
   member containing it, which the closure property makes the same rule
   the full table would pick. *)
let cover_set table (r : Rule.t) =
  let seen = Hashtbl.create 16 in
  let rec visit (r : Rule.t) =
    if not (Hashtbl.mem seen r.id) then begin
      Hashtbl.add seen r.id ();
      List.iter visit (Classifier.direct_dependencies table r)
    end
  in
  visit r;
  List.filter (fun (x : Rule.t) -> Hashtbl.mem seen x.id) (Classifier.rules table)

let pieces_of_rule table (r : Rule.t) =
  let blockers =
    Classifier.rules table
    |> List.filter (fun r' -> Rule.beats r' r && Rule.overlaps r' r)
    |> List.map (fun (r' : Rule.t) -> r'.pred)
  in
  Pred.subtract_all r.pred blockers

let dependent_set_cost table r =
  (* Transitive closure over direct-dependency edges. *)
  let seen = Hashtbl.create 16 in
  let rec visit (r : Rule.t) =
    if not (Hashtbl.mem seen r.id) then begin
      Hashtbl.add seen r.id ();
      List.iter visit (Classifier.direct_dependencies table r)
    end
  in
  visit r;
  Hashtbl.length seen

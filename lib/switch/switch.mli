(** The DIFANE data-plane switch.

    Each switch holds three priority banks, consulted in order:

    + {b cache} — reactively installed, bounded TCAM ({!Tcam});
    + {b authority} — the partitions this switch is authority for
      (clipped rule tables installed by the controller);
    + {b partition} — one rule per flowspace region mapping it to that
      region's authority switch (installed everywhere).

    Processing a header yields a {!verdict}: either the policy action
    (cache hit, or this switch is the authority for the header's region)
    or an instruction to tunnel the packet to an authority switch.  When
    an authority switch serves a miss it also emits the spliced cache rule
    that the ingress switch should install ({!serve_miss}). *)

type t

type bank_hit = Cache_bank | Authority_bank

type verdict =
  | Local of Action.t * bank_hit  (** decided here, and by which bank *)
  | Tunnel of int  (** partition-rule match: send to this authority switch *)
  | Unmatched  (** no bank matched (non-total policy) *)
  | Misconfigured
      (** a partition rule claimed the header but cannot tunnel it (its
          action is not [To_authority]) — a broken partition bank, kept
          distinct from genuinely uncovered flowspace so drop reporting
          upstream ({!Dataplane.result.drop_reason}) can tell operator
          error from policy gaps *)

val create : id:int -> cache_capacity:int -> t
val id : t -> int

(** {1 Control-plane installs} *)

val install_partition_rules : t -> Rule.t list -> unit
(** Replace the partition bank.  Every rule's action must be
    [To_authority]; @raise Invalid_argument otherwise. *)

val install_authority : t -> Partitioner.partition -> unit
(** Add (or replace, by partition id) an authority table. *)

val drop_authority : t -> int -> unit
(** Remove the authority table for a partition id. *)

val authority_partitions : t -> Partitioner.partition list

val partition_rules : t -> Rule.t list
(** The committed partition bank (staged rules excluded) — used by the
    HA experiment's duplicate-install audit. *)

val apply_flow_mod : t -> now:float -> Message.flow_mod -> unit
(** OpenFlow-style entry point used by the controller: [Add]/[Delete] on
    the cache bank ([Authority]/[Partition] banks are replaced wholesale
    via the functions above; flow-mods to them raise). *)

val handle_control : ?xid:int -> ?epoch:int -> t -> now:float -> Message.t -> Message.t list
(** The switch's control-protocol state machine: echo requests get
    replies; cache-bank flow-mods apply immediately; partition-bank
    flow-mod adds are {e staged} and committed as one atomic bank
    replacement by the next barrier (whose reply then acknowledges
    them) — the commit applies whatever the channel delivered, so a
    staged rule with a non-tunnel action does not crash the switch: it
    sits in the bank and {!process} counts packets it claims as
    [misconfigured]; [Install_partition]/[Drop_partition] replace or remove an
    authority table and are acknowledged with [Ack xid]; stats requests
    are answered from the cache TCAM's live counters.  Unsolicited
    replies and data-plane messages yield no response.

    The handler is {e idempotent per xid} (when [xid <> 0]): a request
    whose xid was already processed — a controller retransmission or a
    channel duplicate — returns the original responses without
    re-applying its effect.  [xid = 0] (the default) marks an untracked
    request: no dedup, no ack.

    It is also {e epoch-fenced} (when [epoch <> 0]): a frame carrying an
    epoch older than the highest this switch has seen is refused without
    being applied (counted in {!stale_rejected}) but still acked, so the
    deposed master's retransmission machinery terminates — and since
    every reply frame carries the switch's current epoch, the deposed
    master learns it lost.  A frame from a {e newer} epoch advances the
    switch, clears the xid replay memory (the new master allocates xids
    from its own space) and abandons any staged partition updates (the
    deposed master's open transaction must not leak into the new
    master's batch).  [epoch = 0] (the default) is unfenced:
    single-controller deployments never reject. *)

val epoch : t -> int
(** Highest master epoch seen since the last {!reset} (0 = unfenced). *)

val stale_rejected : t -> int
(** Control frames refused for carrying a stale epoch. *)

val stale_accepted : t -> int
(** Stale-epoch frames that were nonetheless applied — the fencing
    invariant is that this is always 0; the E-HA experiment asserts it. *)

val reset : t -> unit
(** Crash semantics: the device reboots blank — all three banks, staged
    partition updates, counters, notifications and the xid replay memory
    are cleared.  Identity and cache capacity survive.  Pair with a
    controller-side resync ({!Control_plane.restart_switch}). *)

val fresh_cache_id : t -> int
(** Allocate a cache-rule id from this switch's id space — used by
    controller-path (degraded-mode) reactive installs, which build the
    cache rule outside {!serve_miss}. *)

(** {1 Data plane} *)

val process : t -> now:float -> Header.t -> verdict
(** One lookup through the three banks, updating cache statistics.  The
    cache and partition banks are probed through incrementally maintained
    tuple-space indexes, so the per-packet cost is sub-linear in both
    table sizes.  A header claimed by a partition rule that cannot tunnel
    (its action is not [To_authority]) yields [Misconfigured] and is
    tallied as [misconfigured], not [unmatched]. *)

(** {1 Cache-entry provenance}

    Every installed cache entry carries a {!cache_meta}: the serving
    partition, the entry kind, and one {!cache_part} per policy rule the
    entry stands for.  Plain spliced fragments and cover rules have a
    single part; entries produced by buddy-merging ({!Aggregate}) carry
    one part per absorbed origin, each remembering the sub-predicate that
    origin contributed — so a cache hit is attributed to the origin whose
    region the packet actually fell in, exactly, even after merging. *)

type cache_kind =
  | Fragment  (** a spliced independent piece (DIFANE's default) *)
  | Cover  (** a whole rule installed as part of a CacheFlow cover set *)
  | Exact  (** a fully specified entry (microflow / degraded fallback) *)

type cache_part = {
  part_origin : int;  (** policy rule id *)
  part_rank : int;  (** that rule's cache priority ({!Splice.cache_priority}) *)
  part_pred : Pred.t;  (** the sub-region this origin contributed *)
}

type cache_meta = {
  pid : int;  (** serving partition id; [-1] when unknown *)
  kind : cache_kind;
  parts : cache_part list;  (** descending rank; never empty for
                                installer-known provenance *)
  group : (int * int list) option;
      (** cover-set atomicity tag: [(group id, member cache-rule ids)]
          shared by every member of one installed cover set, [None] for
          ungrouped entries.  A cover set decides packets correctly only
          while complete — the broad low-rank rule relies on its
          higher-rank dependencies being resident — so
          {!drop_cover_orphans} scrubs the survivors of any group that
          lost a member, and a hit on any member refreshes the idle
          deadlines of them all ({!Tcam.touch}) so unhit dependencies
          don't idle out from under the group. *)
}

type miss_reply = {
  action : Action.t;  (** the policy action to apply to the packet *)
  cache_rule : Rule.t;  (** primary rule the ingress switch should install *)
  origin_id : int;  (** policy rule the cache rule was spliced from *)
  pid : int;  (** authority partition that served the miss — with
                  [origin_id], the provenance pair the ingress install
                  records so every later cache hit stays attributable to
                  both the policy rule and the flowspace region *)
  installs : (Rule.t * cache_meta) list;
      (** everything the ingress switch should install, with provenance:
          the singleton [cache_rule] for a plain spliced or microflow
          miss, or the full cover set (each member at its own rank) when
          the cover path fired.  Install these via {!Aggregate.install}
          or {!install_cache_meta}. *)
}

val serve_miss :
  ?mode:[ `Spliced | `Microflow ] -> ?cover_limit:int -> t -> now:float ->
  Header.t -> miss_reply option
(** Authority-switch path for a tunnelled miss packet: look up the
    header in this switch's authority tables; return the policy action
    together with the cache rules for the ingress switch — DIFANE's
    spliced wildcard piece by default, or an exact-match microflow entry
    with [~mode:`Microflow] (the Ethane-style ablation).  With
    [~cover_limit:n] (spliced mode only), a rule whose CacheFlow
    dependent set has at most [n] members is cached as its whole cover
    set instead of a clipped fragment: every member installs at its own
    {!Splice.cache_priority} rank, reproducing the authority table's
    overlap resolution inside the cache while covering the rule's entire
    predicate.  [None] if this switch is not authority for the header (a
    misrouted packet). *)

val install_cache_rule :
  ?idle_timeout:float -> ?hard_timeout:float -> ?origin_id:int -> ?pid:int -> t ->
  now:float -> Rule.t -> Rule.t list
(** Install a (spliced) cache rule, evicting LRU entries when full;
    returns evictions.  Every displaced entry — LRU victim or a same-id
    entry replaced by the reinstall — is reported through
    {!drain_notifications} with its final counters ([Evicted] or
    [Replaced] reason), so provenance accounting never loses packets to
    churn.  [origin_id] keeps counters attributable; [pid]
    (the serving partition from {!miss_reply}) additionally attributes
    the entry's future hits to its flowspace region (default [-1] =
    unknown, e.g. degraded exact-match fallbacks).  A hard timeout bounds
    how long a stale entry can survive a policy change (hits keep
    postponing an idle timeout indefinitely). *)

val install_cache_meta :
  ?idle_timeout:float -> ?hard_timeout:float -> t -> now:float -> Rule.t ->
  cache_meta option -> Rule.t list
(** The meta-carrying core of {!install_cache_rule}: install a cache
    entry recording the given provenance (possibly multi-part, from
    aggregation or a cover set).  [None] installs without provenance.
    Same eviction/notification contract as {!install_cache_rule}. *)

val absorb_cache_rule : t -> now:float -> int -> bool
(** Remove a cache entry that aggregation absorbed into a broader merged
    rule.  The entry reports [Replaced] through {!drain_notifications}
    with its final counters — the same provenance-remap signal a same-id
    reinstall emits — so attribution survives the coalescing.  Returns
    [false] if no live entry has that id. *)

val expire_cache : t -> now:float -> Rule.t list

val drop_cover_orphans : t -> now:float -> int
(** Scrub the surviving members of every cover set that is no longer
    complete (see {!cache_meta.group}): a broad cover rule left without
    its higher-rank dependencies would answer packets those dependencies
    must decide.  Every internal removal path (expiry, invalidation,
    explicit delete, plain installs' evictions) already calls this;
    batch installers ({!Aggregate.install}, the dataplane miss path)
    call it at batch boundaries, where a mid-batch eviction may have
    broken a group.  Scrubbed entries report [Replaced] with final
    counters, like other displacements.  Returns entries removed. *)

val invalidate_cache_pids : t -> now:float -> int list -> int
(** Evict every cache entry whose provenance pid is in the list — the
    migration scrub: a retired source region's splices (or an aborted
    split's sub-region splices) must not keep firing under a dead pid.
    Each eviction is reported via {!drain_notifications} with reason
    [Replaced] (final counters intact) so the controller retires its
    provenance records; the next miss re-splices under the live pid.
    Returns the number of entries evicted. *)

val drain_notifications : t -> Message.t list
(** Flow-removed notifications queued since the last drain: one per cache
    entry that expired or was evicted, carrying its final counters.  The
    control plane forwards these to the controller so per-rule statistics
    stay exact across cache churn. *)

(** {1 Introspection} *)

val cache : t -> Tcam.t
val cache_occupancy : t -> int

val origin_of_cache_rule : t -> int -> int option
(** Map a cache-rule id back to the policy rule it was spliced from —
    how flow counters stay attributable to original rules
    (transparency).  For a merged entry this is the {e primary}
    (highest-ranked) origin; see {!origins_of_cache_rule} for the set. *)

val origins_of_cache_rule : t -> int -> int list
(** All policy rules a cache entry stands for (sorted, deduplicated) —
    singleton for plain entries, the absorbed-origin set for merged
    ones.  Empty when the entry has no recorded provenance. *)

val cache_meta_of_rule : t -> int -> cache_meta option
(** Full provenance of a cache entry, parts included. *)

val provenance_of_cache_rule : t -> int -> (int * int) option
(** The provenance pair of a cache rule: [(primary origin policy rule
    id, serving partition id)]; the pid is [-1] when the installer
    didn't know it. *)

val aggregate_counters : t -> (int * int64) list
(** Per-origin-rule packet counts accumulated by this switch's cache bank
    (including entries since evicted), plus authority-table hits. *)

val origin_breakdown : t -> (int * int64 * int64) list
(** Per-origin-rule [(id, cache-bank packets, authority-bank packets)] —
    the split behind {!aggregate_counters}, which the monitor's
    heavy-hitter report uses to show how much of a rule's load the
    ingress caches absorbed. *)

val partition_load : t -> (int * int64) list
(** Misses this switch has served per partition id — the measurement the
    controller's traffic-aware rebalancing consumes (paper §5). *)

val cache_load : t -> (int * int64) list
(** Cache-bank hits per serving partition id — pairs with the
    authorities' {!partition_load} to measure per-region cache efficacy
    (how much traffic each region's spliced entries absorbed vs how many
    misses its authority still served). *)

type stats = {
  cache_hits : int64;
  authority_hits : int64;
  tunnelled : int64;
  unmatched : int64;
  misconfigured : int64;
      (** packets that matched a partition rule whose action was not
          [To_authority] — a broken partition bank, counted apart from
          genuinely uncovered flowspace ([unmatched]) *)
}

val stats : t -> stats
(** Per-switch packet-verdict tallies since the last {!reset_stats}.
    Every increment also bumps the process-wide registry (labelled
    [switch=<id>]), so {!Telemetry.snapshot} and this accessor agree. *)

val reset_stats : t -> unit
(** Also clears the per-origin and per-partition hit breakdowns. *)

val pp : Format.formatter -> t -> unit

(** Assigning partitions to authority switches.

    The controller balances authority load: partitions are placed on
    authority switches so that per-switch TCAM usage (or, with weights,
    expected miss traffic) is even.  Greedy longest-processing-time
    bin-packing — within 4/3 of optimal, and cheap enough to re-run on
    every policy or membership change.

    For availability each partition can be {e replicated}: one primary
    plus [replication - 1] backups on distinct switches, all of which
    hold the partition's authority rules.  Failover then only swaps the
    partition rules to point at a backup — no rule transfer is needed
    (the paper's fast-failover argument). *)

type t

val greedy :
  ?weights:(int * float) list ->
  ?replication:int ->
  Partitioner.t ->
  authority_switches:int list ->
  t
(** Sort partitions by weight (default: clipped-table size) descending,
    place each primary on the least-loaded authority switch, then add
    backups on the least-loaded switches not already holding the
    partition.  [replication] defaults to 1 (no backups) and is capped at
    the number of authority switches.
    @raise Invalid_argument when [authority_switches] is empty or
    [replication < 1]. *)

val switch_for : t -> int -> int
(** Primary authority switch of a partition id.  @raise Not_found. *)

val replicas_of : t -> int -> int list
(** All switches holding a partition (primary first).  @raise Not_found. *)

val partitions_of : t -> int -> int list
(** Partition ids hosted by a switch as primary. *)

val hosted_by : t -> int -> int list
(** Partition ids a switch holds as primary {e or} backup. *)

val replication : t -> int

val loads : t -> (int * float) list
(** Per-authority-switch total primary weight, ascending by switch id. *)

val imbalance : t -> float
(** max load / mean load over primaries; 1.0 = perfect. *)

val split_pid :
  t -> src:int -> lo:int * int list -> hi:int * int list -> t
(** Replace partition [src] with its two migration sub-regions, keeping
    the given replica lists verbatim (they are journaled — replay must
    not re-derive them).  The source's weight is split evenly between
    the children until fresh load windows accrue. *)

val merge_pid : t -> src:int * int list -> lo:int -> hi:int -> t
(** Undo {!split_pid} on migration abort: drop [lo]/[hi] and restore
    [src] with its original replica list at [lo]'s position. *)

val all_replicas : t -> (int * int list) list
(** Every partition's replica list (primary first), ascending by pid —
    the journal's [Partition_layout] snapshot form. *)

val of_replicas :
  replicas:(int * int list) list ->
  weights:(int * float) list ->
  authorities:int list ->
  replication:int ->
  t
(** Rebuild an assignment from a journaled layout verbatim.
    @raise Invalid_argument when [authorities] is empty. *)

val reassign : t -> failed:int -> t
(** Remove a failed switch.  Partitions whose primary failed are promoted
    to their first surviving backup when one exists (no data movement);
    partitions left without any replica are re-placed greedily.  Backup
    sets are topped back up on the survivors.
    @raise Invalid_argument when [failed] was the only authority. *)

val pp : Format.formatter -> t -> unit

(** A deployed DIFANE network.

    Gathers the pieces — topology, per-node switches, the partitioner's
    output and the partition→authority assignment — and implements the
    packet walk of the paper's Figure 1: ingress cache lookup, tunnel to
    the authority switch on a miss, reactive cache install back at the
    ingress.  This module is the {e functional} data plane (exact
    behaviour, path taken, hop latency along shortest paths); the
    discrete-event simulator in [difane_sim] layers queueing and service
    times on top of it for the timing experiments. *)

type t

type config = {
  k : int;  (** number of flowspace partitions *)
  heuristic : Partitioner.heuristic;
  cache_capacity : int;  (** per-switch cache TCAM entries *)
  cache_idle_timeout : float option;  (** seconds; [None] = never expire *)
  cache_hard_timeout : float option;
      (** upper bound on any cache entry's lifetime; the knob that bounds
          staleness across lazy policy updates (experiment F-DYN) *)
  balance : [ `Rules | `Volume ];
      (** what the partition→authority assignment balances: TCAM usage
          ([`Rules]) or expected miss traffic under uniform headers
          ([`Volume], weight = flowspace volume of each region) *)
  replication : int;
      (** authority replicas per partition (>= 1).  Backups hold the
          partition's rules ahead of time, so failover is a partition-rule
          swap with no rule transfer (paper §5). *)
  cache_mode : [ `Spliced | `Microflow ];
      (** what authority switches install at the ingress on a miss:
          DIFANE's spliced wildcard piece, or an Ethane-style exact-match
          entry covering only that header (the ablation the paper's
          wildcard-caching argument rests on) *)
  tunnel_to : [ `Primary | `Nearest_replica ];
      (** which replica a miss is tunnelled to: the partition's primary,
          or the replica closest to the ingress switch (the controller
          installs per-ingress partition rules; with replication >= 2
          this converts authority placement spread into shorter
          detours) *)
  authority_tcam : int option;
      (** per-authority-switch TCAM budget for authority tables.  When
          set, [build] verifies the partitioning fits (every switch's
          hosted tables sum within budget) and raises otherwise —
          undersized budgets should be fixed with a larger [k] or
          {!Partitioner.compute_bounded}, not discovered in production. *)
  congestion : Congestion.config;
      (** the data-plane congestion model ({!Congestion.default} = off:
          infinite buffers, zero serialization — the legacy walk,
          bit-identical).  When enabled, every leg of {!inject} books
          time on per-port virtual-clock queues: queueing delay adds to
          {!outcome.latency}, a full buffer drops the packet, and in
          [Credit] mode an ingress finding the authority's inbound port
          saturated defers re-splicing to the controller path
          ({!backpressured_misses}) instead of shedding the miss. *)
  aggregation : Aggregate.config;
      (** cache-rule aggregation ({!Aggregate.default} = off: the plain
          one-install-per-miss path, bit-identical to the seed).  When
          enabled, miss installs flow through {!Aggregate.install}
          (subsumption suppression + buddy merging) and rules with small
          dependent sets are cached as CacheFlow cover sets
          ([cover_limit]) — fewer, wider TCAM entries deciding every
          packet identically. *)
}

val default_config : config
(** k = 4, best-cut, 1000-entry caches, 10 s idle timeout, no hard
    timeout. *)

val build :
  ?config:config ->
  ?install:bool ->
  policy:Classifier.t ->
  topology:Topology.t ->
  authority_ids:int list ->
  unit ->
  t
(** Partition the policy, assign partitions to [authority_ids], install
    authority tables there and partition rules everywhere.  With
    [install = false] the switches are left blank — the configuration is
    then pushed over the control channels with
    {!Control_plane.push_deployment}, which is how a real controller
    would do it.
    @raise Invalid_argument on an empty [authority_ids] or ids outside
    the topology. *)

val policy : t -> Classifier.t
val topology : t -> Topology.t
val partitioner : t -> Partitioner.t
val assignment : t -> Assignment.t
val switch : t -> int -> Switch.t
val switches : t -> Switch.t array
val authority_ids : t -> int list
val config : t -> config

(** {1 Packet walk} *)

type outcome = {
  action : Action.t;  (** what the policy says happens to the packet *)
  path : int list;  (** switches traversed, ingress first *)
  latency : float;  (** propagation latency along [path] *)
  cache_hit : bool;  (** decided by the ingress cache bank *)
  authority : int option;  (** authority switch visited, when missed *)
  installed : Rule.t option;  (** cache rule installed at the ingress *)
  degraded : bool;
      (** served via the controller fallback — NOX-style reactive setup,
          the mode a run degrades to instead of wedging.  Reached either
          because no replica of the header's partition was alive
          ({!degraded_misses}) or, in credit mode, because backpressure
          deferred the miss ({!backpressured_misses}) *)
}

val inject : ?pkt:int -> t -> now:float -> ingress:int -> Header.t -> outcome
(** Walk one packet through the network, mutating switch state (cache
    counters and reactive installs) exactly as DIFANE would.  When every
    replica of the header's partition is unreachable the miss is served
    degraded: the controller answers from the policy directly and
    installs an exact-match entry at the ingress (see {!outcome.degraded}
    and {!degraded_misses}).

    Each call opens a fresh {!Ptrace} packet context; [pkt] instead
    continues an already-open traced packet (the DES controller-fallback
    path hands its own packet id so the trace stays one causal path). *)

val expire_caches : t -> now:float -> int
(** Run cache timeouts on every switch; returns entries expired. *)

val flush_caches : t -> unit

(** {1 Dynamics} *)

val update_policy : ?flush:bool -> t -> now:float -> Classifier.t -> t
(** Re-partition for a new policy and reinstall authority tables and
    partition rules everywhere.  With [flush = true] (default) every
    reactive cache entry is dropped too — strict consistency.  With
    [flush = false] stale spliced entries linger until their idle timeout
    (the paper's lazy-expiry mode, measured by experiment F-DYN).  Switch
    identities and statistics carry over. *)

val mark_unreachable : t -> int -> unit
(** Data-plane failure model: tunnels to this switch stop working (link or
    device down), {e before} any controller reaction.  With replication
    >= 2 a miss then falls back to the partition's backup replica purely
    in the data plane — the paper's zero-controller failover.  Without a
    live replica the miss degrades to the controller path (see
    {!inject}). *)

val mark_reachable : t -> int -> unit

val resolve_authority : t -> ?ingress:int -> Header.t -> nominal:int -> int option
(** Where a miss packet tunnelled toward [nominal] actually lands.  With
    [tunnel_to = `Primary]: the nominal authority when reachable, else
    the first reachable replica of the header's partition.  With
    [`Nearest_replica] and an [ingress]: the reachable replica closest to
    the ingress. *)

val invalidate_origins : ?now:float -> t -> origins:(int -> bool) -> int
(** Remove every cached entry spliced from a policy rule selected by
    [origins], across all switches; returns entries removed (including
    cover-set members scrubbed because their group lost a member — see
    {!Switch.drop_cover_orphans}).  The targeted-invalidation
    consistency mode: after a policy change only the affected rules'
    cache entries need to go. *)

val changed_rule_ids : old_policy:Classifier.t -> Classifier.t -> int list
(** Rule ids whose definition differs between two policies (changed
    predicate/action/priority, or present in only one) — what a
    controller invalidates on an incremental update. *)

val fail_authority : t -> int -> t
(** Authority-switch failover: promote backups for the failed switch's
    partitions (or re-place them when no backup exists) and reinstall
    partition rules.  The failed switch keeps forwarding cached flows but
    no longer serves misses.
    @raise Invalid_argument when it was the only authority. *)

val restore_authority : t -> int -> t
(** Undo a {!fail_authority}: the switch (restarted, blank) rejoins the
    authority pool, partitions are re-placed over the enlarged set and
    the deltas installed.  A no-op when the switch is already in the
    pool. *)

val adopt : model:t -> network:t -> t
(** Controller takeover: [model] is a deployment a standby rebuilt by
    journal replay over scratch switches; [network] is the deployment
    wired to the physical network.  The result keeps [model]'s controller
    decisions (policy, partitioner, assignment, authority pool) and
    [network]'s physical state (the switch array, reachability table and
    degraded counter — shared mutable references, so physical facts keep
    accumulating in place).  Pair with a reliable
    {!Control_plane.push_deployment}: switch-side xid idempotency and
    replace-by-id banks make the re-push converge without duplicate
    installs. *)

val degraded_misses : t -> int
(** Misses served via the controller fallback (no live replica) since
    [build] — the separate accounting the fault experiments report. *)

val controller_serve :
  ?cause:[ `Failure | `Backpressure ] -> t -> now:float -> ingress:int -> Header.t -> outcome
(** Serve a miss on the controller path directly (the NOX-style fallback
    {!inject} reaches when no replica is alive): answer from the policy,
    install an exact-match entry at the ingress.  [cause] selects the
    accounting — [`Failure] (default) counts toward {!degraded_misses},
    [`Backpressure] toward {!backpressured_misses}.  The DES uses this to
    defer re-splicing when credit-mode backpressure fires, where the
    replicas are alive and {!inject} would wrongly walk the congested
    authority path. *)

val backpressured_misses : t -> int
(** Misses deferred to the controller path by credit-mode backpressure (a
    saturated authority inbound port) since [build] — graceful
    degradation under overload, counted apart from {!degraded_misses}
    (failure) so the two causes stay distinguishable. *)

val congestion_state : t -> Congestion.t option
(** The live port-queue state, when the congestion model is enabled —
    lets callers read {!Congestion.stats} (drops, marks, peak depth) for
    a finished run. *)

val aggregator : t -> Aggregate.t
(** The deployment's aggregation engine — the DES install path routes
    through it so walk-based and event-based planes share counters. *)

val aggregate_stats : t -> Aggregate.stats
(** Aggregation counters since [build]: installs performed, buddy merges,
    suppressed (subsumed) installs, cover-set members installed. *)

val last_new_authority_installs : t -> int
(** Authority tables newly pushed to a switch by the most recent
    [build]/[update_policy]/[fail_authority], including background backup
    replenishment. *)

val measured_partition_loads : t -> (int * float) list
(** Misses served per partition id, aggregated over every authority
    switch — the live traffic measurement rebalancing uses. *)

val rebalance : t -> loads:(int * float) list -> t
(** Re-place partitions on the {e same} authority set using measured
    per-partition loads instead of static weights (the paper's periodic
    load rebalancing).  The flowspace partitions themselves are
    unchanged — only partition rules move, and pre-installed tables are
    kept where the new assignment agrees with the old. *)

val last_new_primary_installs : t -> int
(** The subset of {!last_new_authority_installs} that was on the serving
    path (a table pushed to a partition's new {e primary}).  With
    replication >= 2 a failover promotes warm backups, so this is
    typically zero — the point of pre-installed backups. *)

(** {1 Staged region migration}

    The adaptive-rebalancing stages.  Model-swapping functions
    ({!apply_split}, {!unsplit}, {!apply_layout}) are what journal replay
    runs over a scratch model; physical-only functions ({!flip_split},
    {!scrub_split}) are additionally re-applied to the adopted network at
    takeover, so neither path double-applies the other's half.  The
    staging invariant: after every individual stage, a miss in the
    migrating region still reaches an authority switch holding its
    rules. *)

val apply_split : t -> Journal.migration -> t
(** Stage 1: swap the source partition for its two journaled sub-regions
    in the partitioner and assignment, and install the sub-region
    authority tables at their replicas.  Ingress partition rules still
    point at the source, whose table stays — no serving gap. *)

val flip_split : t -> unit
(** Stage 2 (physical only): rewrite every switch's partition bank from
    the already-split model.  Misses now tunnel to the sub-region
    replicas; the source table lingers (inert) until commit. *)

val unsplit : t -> Journal.migration -> t
(** Roll the model back to the source partition (migration abort before
    flip).  Physical cleanup is {!scrub_split}[ ~aborted:true]. *)

val scrub_split : t -> now:float -> Journal.migration -> aborted:bool -> int
(** Stage 3 (physical only): retire the losing tables — the source's on
    commit, the sub-regions' on abort — and evict cache entries spliced
    under the retired pids ({!Switch.invalidate_cache_pids}, so
    provenance is remapped through the [Flow_removed]/[Replaced] path).
    Returns cache entries invalidated. *)

val apply_layout : t -> regions:(int * Pred.t) list -> replicas:(int * int list) list -> t
(** Restore a journaled [Partition_layout] snapshot verbatim: refit the
    partitioner to the recorded regions, rebuild the assignment from the
    recorded replica lists, reinstall.  Replay-only — snapshots must
    reproduce re-cut layouts that re-running the partitioner could not. *)

(** {1 Global checks (used by tests)} *)

val semantically_equal : t -> Header.t list -> bool
(** Every probe header gets exactly the original classifier's action. *)

val total_cache_entries : t -> int

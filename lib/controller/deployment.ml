let log_src = Logs.Src.create "difane.deployment" ~doc:"DIFANE deployment events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  k : int;
  heuristic : Partitioner.heuristic;
  cache_capacity : int;
  cache_idle_timeout : float option;
  cache_hard_timeout : float option;
  balance : [ `Rules | `Volume ];
  replication : int;
  cache_mode : [ `Spliced | `Microflow ];
  tunnel_to : [ `Primary | `Nearest_replica ];
  authority_tcam : int option;
  congestion : Congestion.config;
  aggregation : Aggregate.config;
}

let default_config =
  {
    k = 4;
    heuristic = Partitioner.Best_cut;
    cache_capacity = 1000;
    cache_idle_timeout = Some 10.;
    cache_hard_timeout = None;
    balance = `Rules;
    replication = 1;
    cache_mode = `Spliced;
    tunnel_to = `Primary;
    authority_tcam = None;
    congestion = Congestion.default;
    aggregation = Aggregate.default;
  }

type t = {
  policy : Classifier.t;
  topology : Topology.t;
  switches : Switch.t array;
  partitioner : Partitioner.t;
  assignment : Assignment.t;
  authority_ids : int list;
  config : config;
  unreachable : (int, unit) Hashtbl.t;
  degraded_count : int ref;
      (* misses served via the controller path because no replica of
         their partition was alive; shared across functional updates *)
  backpressured_count : int ref;
      (* misses deferred to the controller path by credit-mode
         backpressure (the authority's inbound port was saturated);
         counted apart from [degraded_count] — overload, not failure *)
  cong : Congestion.t option;
      (* port virtual clocks; [None] when the congestion model is off,
         which reproduces the legacy infinite-buffer walk bit-for-bit *)
  agg : Aggregate.t;
      (* aggregation engine + counters; with [config.aggregation]
         disabled it degenerates to plain provenance installs *)
  mutable last_new_installs : int;
  mutable last_new_primary_installs : int;
}

let m_backpressured = Telemetry.counter "deployment_backpressured_misses"

let install_all ?(fresh_tables = true) d =
  let prules =
    Partitioner.partition_rules d.partitioner
      ~assignment:(Assignment.switch_for d.assignment)
  in
  let new_installs = ref 0 in
  let new_primary_installs = ref 0 in
  Array.iteri
    (fun i sw ->
      Switch.install_partition_rules sw prules;
      (* drop authority tables the new assignment no longer places here;
         on a policy change every table is stale *)
      List.iter
        (fun (p : Partitioner.partition) ->
          let keep =
            (not fresh_tables)
            && (try List.mem i (Assignment.replicas_of d.assignment p.pid)
                with Not_found -> false)
          in
          if not keep then Switch.drop_authority sw p.pid)
        (Switch.authority_partitions sw))
    d.switches;
  List.iter
    (fun (p : Partitioner.partition) ->
      List.iter
        (fun host ->
          let sw = d.switches.(host) in
          let already =
            List.exists
              (fun (q : Partitioner.partition) -> q.pid = p.pid)
              (Switch.authority_partitions sw)
          in
          if not already then begin
            incr new_installs;
            if host = Assignment.switch_for d.assignment p.pid then
              incr new_primary_installs;
            Switch.install_authority sw p
          end)
        (Assignment.replicas_of d.assignment p.pid))
    d.partitioner.Partitioner.partitions;
  d.last_new_installs <- !new_installs;
  d.last_new_primary_installs <- !new_primary_installs;
  Log.debug (fun m ->
      m "installed %d partition rules/switch, %d new authority tables (%d primary)"
        (List.length prules) !new_installs !new_primary_installs)

let assignment_weights config (partitioner : Partitioner.t) =
  match config.balance with
  | `Rules -> None
  | `Volume ->
      Some
        (List.map
           (fun (p : Partitioner.partition) -> (p.pid, Pred.size p.region))
           partitioner.Partitioner.partitions)

let build ?(config = default_config) ?(install : bool = true) ~policy ~topology
    ~authority_ids () =
  if authority_ids = [] then invalid_arg "Deployment.build: no authority switches";
  Congestion.validate config.congestion;
  let n = Topology.nodes topology in
  List.iter
    (fun a ->
      if a < 0 || a >= n then invalid_arg "Deployment.build: authority id outside topology")
    authority_ids;
  let switches =
    Array.init n (fun id -> Switch.create ~id ~cache_capacity:config.cache_capacity)
  in
  let partitioner = Partitioner.compute ~heuristic:config.heuristic policy ~k:config.k in
  if config.replication < 1 then invalid_arg "Deployment.build: replication must be >= 1";
  let assignment =
    Assignment.greedy ?weights:(assignment_weights config partitioner)
      ~replication:config.replication partitioner ~authority_switches:authority_ids
  in
  let d =
    { policy; topology; switches; partitioner; assignment; authority_ids; config;
      unreachable = Hashtbl.create 4; degraded_count = ref 0; backpressured_count = ref 0;
      cong =
        (if Congestion.enabled config.congestion then Some (Congestion.create config.congestion)
         else None);
      agg = Aggregate.create config.aggregation;
      last_new_installs = 0; last_new_primary_installs = 0 }
  in
  (match config.authority_tcam with
  | None -> ()
  | Some budget ->
      List.iter
        (fun a ->
          let usage =
            List.fold_left
              (fun acc pid ->
                let p =
                  List.find
                    (fun (p : Partitioner.partition) -> p.pid = pid)
                    partitioner.Partitioner.partitions
                in
                acc + Classifier.length p.table)
              0 (Assignment.hosted_by assignment a)
          in
          if usage > budget then
            invalid_arg
              (Printf.sprintf
                 "Deployment.build: authority %d needs %d TCAM entries (budget %d); \
                  raise k or use Partitioner.compute_bounded"
                 a usage budget))
        authority_ids);
  if install then install_all d;
  d

let policy d = d.policy
let topology d = d.topology
let partitioner d = d.partitioner
let assignment d = d.assignment
let switch d i = d.switches.(i)
let switches d = d.switches
let authority_ids d = d.authority_ids
let config d = d.config

let mark_unreachable d i = Hashtbl.replace d.unreachable i ()
let mark_reachable d i = Hashtbl.remove d.unreachable i
let is_reachable d i = not (Hashtbl.mem d.unreachable i)

let resolve_authority d ?ingress h ~nominal =
  match (d.config.tunnel_to, ingress) with
  | `Nearest_replica, Some from -> (
      let pid = (Partitioner.find d.partitioner h).Partitioner.pid in
      let reachable =
        List.filter (is_reachable d) (Assignment.replicas_of d.assignment pid)
      in
      let dist a = Option.value ~default:infinity (Topology.distance d.topology from a) in
      match reachable with
      | [] -> None
      | first :: rest ->
          Some (List.fold_left (fun best a -> if dist a < dist best then a else best) first rest))
  | (`Primary | `Nearest_replica), _ ->
      if is_reachable d nominal then Some nominal
      else
        (* the partition rule's backup action: try the replicas in order *)
        let pid = (Partitioner.find d.partitioner h).Partitioner.pid in
        List.find_opt (is_reachable d) (Assignment.replicas_of d.assignment pid)

type outcome = {
  action : Action.t;
  path : int list;
  latency : float;
  cache_hit : bool;
  authority : int option;
  installed : Rule.t option;
  degraded : bool;
}

let leg topo a b =
  if a = b then Some ([ a ], 0.)
  else
    match Topology.shortest_path topo a b with
    | None -> None
    | Some p -> Some (p, Topology.path_latency topo p)

(* Append [next] to [path] without repeating the junction node. *)
let join path next = path @ List.tl next

let deliver topo ~from action =
  match Action.egress action with
  | None -> ([ from ], 0.) (* dropped (or counted-and-dropped) at [from] *)
  | Some egress -> (
      match leg topo from egress with
      | Some (p, l) -> (p, l)
      | None -> ([ from ], 0.))

let exact_pred schema h =
  Pred.make schema
    (List.init (Schema.arity schema) (fun i ->
         Ternary.exact ~width:(Schema.field_bits schema i) (Header.field h i)))

(* Degraded mode: every replica of the header's partition is dead, so the
   miss falls back to the controller (NOX-style reactive setup).  The
   controller knows the policy, decides the packet, and installs an
   exact-match entry at the ingress so the rest of the flow stays in the
   data plane.  Counted separately — a run under total authority loss
   reports degraded throughput instead of wedging. *)
let controller_fallback ?(cause = `Failure) d ~now ~ingress h =
  (match cause with
  | `Failure -> incr d.degraded_count
  | `Backpressure ->
      incr d.backpressured_count;
      Telemetry.incr m_backpressured);
  let sw = d.switches.(ingress) in
  let action = Option.value ~default:Action.Drop (Classifier.action d.policy h) in
  let origin =
    Option.map (fun (r : Rule.t) -> r.Rule.id) (Classifier.first_match d.policy h)
  in
  Ptrace.emit ~at:now Ptrace.Controller ~switch:ingress
    ~rule:(Option.value ~default:(-1) origin)
    ~aux:(match cause with `Failure -> 0 | `Backpressure -> 1);
  let rule =
    Rule.make ~id:(Switch.fresh_cache_id sw) ~priority:0
      (exact_pred (Classifier.schema d.policy) h)
      action
  in
  (* the controller still knows which region the header falls in, so even
     degraded installs carry the full (origin, pid) provenance pair *)
  let pid = (Partitioner.find d.partitioner h).Partitioner.pid in
  (match origin with
  | Some o ->
      (* exact fallbacks flow through the aggregation pipeline too:
         adjacent degraded installs buddy-merge into wider exact blocks *)
      let meta =
        { Switch.pid; kind = Switch.Exact; group = None;
          parts = [ { Switch.part_origin = o; part_rank = 0;
                      part_pred = rule.Rule.pred } ] }
      in
      ignore
        (Aggregate.install ?idle_timeout:d.config.cache_idle_timeout
           ?hard_timeout:d.config.cache_hard_timeout d.agg sw ~now [ (rule, meta) ])
  | None ->
      ignore
        (Switch.install_cache_rule ?idle_timeout:d.config.cache_idle_timeout
           ?hard_timeout:d.config.cache_hard_timeout ~pid sw ~now rule));
  let path, latency = deliver d.topology ~from:ingress action in
  Ptrace.emit ~at:(now +. latency) Ptrace.Deliver
    ~switch:(List.fold_left (fun _ n -> n) ingress path)
    ~rule:(-1) ~aux:0;
  { action; path; latency; cache_hit = false; authority = None;
    installed = Some rule; degraded = true }

(* Pay the congestion model along a node path starting at [now]: book
   each hop's egress port in arrival order.  Returns the queueing delay
   to add on top of the path's propagation latency, or [`Queue_full] when
   a finite buffer sheds the packet. *)
let congested_leg cong topo ~now path =
  match cong with
  | None -> `Ok 0.
  | Some c ->
      let rec go extra elapsed = function
        | [] | [ _ ] -> `Ok extra
        | a :: (b :: _ as rest) -> (
            match Topology.link_between topo a b with
            | None -> invalid_arg "Deployment: non-adjacent leg"
            | Some l -> (
                match Congestion.transit c ~now:(now +. elapsed) ~from:a l with
                | `Drop -> `Queue_full
                | `Forward (delay, _marked) ->
                    go (extra +. delay) (elapsed +. delay +. l.Topology.latency) rest))
      in
      go 0. 0. path

(* Credit-mode backpressure signal for the walk-based plane: the shared
   pool bounds misses queued into the authority, so an ingress defers
   re-splicing (controller fallback) when the authority's inbound port
   holds [credit_pool - credit_low_water] or more packets — the same
   threshold the DES reaches when outstanding credits sink to the low
   water mark. *)
let authority_saturated cong ~now p1 =
  match cong with
  | None -> false
  | Some c -> (
      let cfg = Congestion.config c in
      cfg.Congestion.mode = Congestion.Credit
      &&
      match List.rev p1 with
      | auth :: prev :: _ ->
          Congestion.depth c ~now ~from:prev ~to_:auth
          >= cfg.Congestion.credit_pool - cfg.Congestion.credit_low_water
      | _ -> false)

let queue_drop ~now ~ingress =
  Ptrace.emit ~at:now Ptrace.Drop ~switch:ingress ~rule:(-1)
    ~aux:Ptrace.drop_queue_full;
  { action = Action.Drop; path = [ ingress ]; latency = 0.; cache_hit = false;
    authority = None; installed = None; degraded = false }

(* Transit postcards for a shortcut leg: one per node entered. *)
let emit_leg ~at = function
  | [] -> ()
  | _ :: rest ->
      List.iter
        (fun n -> Ptrace.emit ~at Ptrace.Transit ~switch:n ~rule:(-1) ~aux:0)
        rest

let last_node ~default path = List.fold_left (fun _ n -> n) default path

(* [cong] is threaded explicitly (rather than read from [d]) so that
   semantic checks can run the same walk with congestion bypassed — a
   full buffer must not make [semantically_equal] report a policy
   divergence. *)
let inject_impl ?pkt ~cong d ~now ~ingress h =
  (* [pkt]: the caller (the DES controller path) already opened a traced
     packet for this header — continue it instead of starting a second
     path for the same packet *)
  (match pkt with
  | Some p -> Ptrace.resume_packet ~pkt:p h
  | None -> ignore (Ptrace.begin_packet now h));
  let sw = d.switches.(ingress) in
  match Switch.process sw ~now h with
  | Switch.Local (action, bank) -> (
      let path, latency = deliver d.topology ~from:ingress action in
      match congested_leg cong d.topology ~now path with
      | `Queue_full -> queue_drop ~now ~ingress
      | `Ok extra ->
          emit_leg ~at:now path;
          Ptrace.emit ~at:(now +. latency +. extra) Ptrace.Deliver
            ~switch:(last_node ~default:ingress path)
            ~rule:(-1)
            ~aux:(if bank = Switch.Cache_bank then 1 else 0);
          {
            action;
            path;
            latency = latency +. extra;
            cache_hit = (bank = Switch.Cache_bank);
            authority = (if bank = Switch.Authority_bank then Some ingress else None);
            installed = None;
            degraded = false;
          })
  | Switch.Tunnel nominal -> (
      match resolve_authority d ~ingress h ~nominal with
      | None ->
          (* no live replica holds this partition *)
          controller_fallback d ~now ~ingress h
      | Some auth -> (
      let to_auth = leg d.topology ingress auth in
      match to_auth with
      | None ->
          Ptrace.emit ~at:now Ptrace.Drop ~switch:ingress ~rule:(-1)
            ~aux:Ptrace.drop_unreachable;
          { action = Action.Drop; path = [ ingress ]; latency = 0.; cache_hit = false;
            authority = None; installed = None; degraded = false }
      | Some (p1, l1) -> (
          if authority_saturated cong ~now p1 then begin
            Ptrace.emit ~at:now Ptrace.Backpressure ~switch:auth ~rule:(-1) ~aux:0;
            controller_fallback ~cause:`Backpressure d ~now ~ingress h
          end
          else
          match congested_leg cong d.topology ~now p1 with
          | `Queue_full -> queue_drop ~now ~ingress
          | `Ok e1 -> (
          emit_leg ~at:now p1;
          match
            Switch.serve_miss ~mode:d.config.cache_mode
              ?cover_limit:(Aggregate.cover_limit d.config.aggregation)
              d.switches.(auth) ~now h
          with
          | None ->
              (* misrouted: the authority lost its partition (e.g. a crash
                 wiped it, or failover left stale partition rules); rescue
                 the packet through the controller rather than dropping *)
              let o = controller_fallback d ~now ~ingress h in
              { o with path = join p1 o.path; latency = l1 +. e1 +. o.latency }
          | Some { Switch.action; cache_rule; origin_id = _; pid = _; installs } -> (
              ignore
                (Aggregate.install ?idle_timeout:d.config.cache_idle_timeout
                   ?hard_timeout:d.config.cache_hard_timeout d.agg sw ~now installs);
              let p2, l2 = deliver d.topology ~from:auth action in
              match congested_leg cong d.topology ~now:(now +. l1 +. e1) p2 with
              | `Queue_full -> queue_drop ~now ~ingress
              | `Ok e2 ->
                  emit_leg ~at:(now +. l1 +. e1) p2;
                  Ptrace.emit ~at:(now +. l1 +. e1 +. l2 +. e2) Ptrace.Deliver
                    ~switch:(last_node ~default:auth p2)
                    ~rule:(-1) ~aux:0;
                  {
                    action;
                    path = join p1 p2;
                    latency = l1 +. e1 +. l2 +. e2;
                    cache_hit = false;
                    authority = Some auth;
                    installed = Some cache_rule;
                    degraded = false;
                  })))))
  | Switch.Unmatched ->
      Ptrace.emit ~at:now Ptrace.Drop ~switch:ingress ~rule:(-1)
        ~aux:Ptrace.drop_unmatched;
      { action = Action.Drop; path = [ ingress ]; latency = 0.; cache_hit = false;
        authority = None; installed = None; degraded = false }
  | Switch.Misconfigured ->
      Ptrace.emit ~at:now Ptrace.Drop ~switch:ingress ~rule:(-1)
        ~aux:Ptrace.drop_misconfigured;
      { action = Action.Drop; path = [ ingress ]; latency = 0.; cache_hit = false;
        authority = None; installed = None; degraded = false }

let inject ?pkt d ~now ~ingress h = inject_impl ?pkt ~cong:d.cong d ~now ~ingress h

let controller_serve ?cause d ~now ~ingress h = controller_fallback ?cause d ~now ~ingress h

let expire_caches d ~now =
  Array.fold_left (fun acc sw -> acc + List.length (Switch.expire_cache sw ~now)) 0 d.switches

let flush_caches d = Array.iter (fun sw -> Tcam.clear (Switch.cache sw)) d.switches

let update_policy ?(flush = true) d ~now new_policy =
  ignore now;
  let partitioner =
    Partitioner.compute ~heuristic:d.config.heuristic new_policy ~k:d.config.k
  in
  let assignment =
    Assignment.greedy ?weights:(assignment_weights d.config partitioner)
      ~replication:d.config.replication partitioner ~authority_switches:d.authority_ids
  in
  let d' = { d with policy = new_policy; partitioner; assignment } in
  install_all d';
  (* Strict consistency drops every reactive cache entry — stale spliced
     pieces may disagree with the new policy.  Lazy mode leaves them to
     their idle timeouts (experiment F-DYN measures the exposure). *)
  if flush then flush_caches d';
  d'

let invalidate_origins ?(now = 0.) d ~origins =
  Array.fold_left
    (fun acc sw ->
      let cache = Switch.cache sw in
      let victims =
        List.filter
          (fun (e : Tcam.entry) ->
            (* a merged entry stands for several policy rules: it must go
               if ANY of its absorbed origins changed — the conservative
               direction; survivors re-splice on their next miss *)
            List.exists origins
              (Switch.origins_of_cache_rule sw e.Tcam.rule.Rule.id))
          (Tcam.entries cache)
      in
      List.iter (fun (e : Tcam.entry) -> ignore (Tcam.remove cache e.Tcam.rule.Rule.id)) victims;
      (* removing one cover-set member must take its whole group: the
         broad member alone would answer packets its dependencies own *)
      let orphans = Switch.drop_cover_orphans sw ~now in
      acc + List.length victims + orphans)
    0 d.switches

let changed_rule_ids ~old_policy new_policy =
  let ids c = List.map (fun (r : Rule.t) -> r.id) (Classifier.rules c) in
  let all = List.sort_uniq Int.compare (ids old_policy @ ids new_policy) in
  List.filter
    (fun id ->
      match (Classifier.find old_policy id, Classifier.find new_policy id) with
      | None, None -> false
      | Some _, None | None, Some _ -> true
      | Some a, Some b -> not (Rule.equal a b))
    all

let fail_authority d failed =
  Log.info (fun m -> m "authority %d failed; promoting backups" failed);
  let assignment = Assignment.reassign d.assignment ~failed in
  let authority_ids = List.filter (fun a -> a <> failed) d.authority_ids in
  (* The failed switch keeps its cache but loses authority duties. *)
  List.iter
    (fun (p : Partitioner.partition) -> Switch.drop_authority d.switches.(failed) p.pid)
    (Switch.authority_partitions d.switches.(failed));
  let d' = { d with assignment; authority_ids } in
  (* same policy, same partitions: pre-installed backup tables stay valid *)
  install_all ~fresh_tables:false d';
  d'

let restore_authority d i =
  if List.mem i d.authority_ids then d
  else begin
    Log.info (fun m -> m "authority %d rejoins the pool; re-placing partitions" i);
    let authority_ids = List.sort Int.compare (i :: d.authority_ids) in
    let assignment =
      Assignment.greedy ?weights:(assignment_weights d.config d.partitioner)
        ~replication:d.config.replication d.partitioner ~authority_switches:authority_ids
    in
    let d' = { d with assignment; authority_ids } in
    install_all ~fresh_tables:false d';
    d'
  end

(* A standby controller rebuilds deployment state by replaying the
   journal over a *model* deployment (scratch switches, same static
   inputs).  Taking over, it adopts the *physical* network of the
   deployment it replaces: the real switch array, reachability table and
   degraded counter — shared mutable state that records physical facts —
   while keeping the replayed policy, partitioner and assignment (the
   controller decisions the journal is authoritative for).  The new
   leader then re-pushes its configuration reliably; switch-side
   idempotency makes any divergence converge without duplicate installs. *)
let adopt ~model ~network =
  {
    model with
    switches = network.switches;
    topology = network.topology;
    unreachable = network.unreachable;
    degraded_count = network.degraded_count;
    backpressured_count = network.backpressured_count;
    cong = network.cong;
  }

let degraded_misses d = !(d.degraded_count)
let backpressured_misses d = !(d.backpressured_count)
let congestion_state d = d.cong
let aggregator d = d.agg
let aggregate_stats d = Aggregate.stats d.agg

let measured_partition_loads d =
  let totals = Hashtbl.create 16 in
  Array.iter
    (fun sw ->
      List.iter
        (fun (pid, n) ->
          let prev = Option.value ~default:0. (Hashtbl.find_opt totals pid) in
          Hashtbl.replace totals pid (prev +. Int64.to_float n))
        (Switch.partition_load sw))
    d.switches;
  (* every partition appears, even if it served no misses *)
  List.map
    (fun (p : Partitioner.partition) ->
      (p.pid, Option.value ~default:0. (Hashtbl.find_opt totals p.pid)))
    d.partitioner.Partitioner.partitions

let rebalance d ~loads =
  Log.info (fun m -> m "rebalancing %d partitions on measured load" (List.length loads));
  let assignment =
    Assignment.greedy ~weights:loads ~replication:d.config.replication d.partitioner
      ~authority_switches:d.authority_ids
  in
  let d' = { d with assignment } in
  install_all ~fresh_tables:false d';
  d'

(* ---- staged region migration ----

   A migration moves a sub-region of an overloaded partition to another
   authority in three stages, each separately journaled so a takeover
   mid-migration can resume or roll back.  The stage functions below keep
   a strict discipline: [apply_split]/[unsplit] swap the *model* (and
   install/keep tables so every stage is blackhole-free), [flip_split]
   and [scrub_split] touch only the physical switches — replay applies
   them to a scratch model, takeover re-applies the physical half to the
   adopted network without double-swapping the model. *)

let partition_of d pid =
  List.find
    (fun (p : Partitioner.partition) -> p.pid = pid)
    d.partitioner.Partitioner.partitions

let apply_split d (m : Journal.migration) =
  let regions =
    List.concat_map
      (fun (p : Partitioner.partition) ->
        if p.pid = m.src_pid then
          [ (m.lo_pid, m.lo_region); (m.hi_pid, m.hi_region) ]
        else [ (p.pid, p.region) ])
      d.partitioner.Partitioner.partitions
  in
  let partitioner = Partitioner.refit d.partitioner d.policy ~regions in
  let assignment =
    Assignment.split_pid d.assignment ~src:m.src_pid
      ~lo:(m.lo_pid, m.lo_replicas)
      ~hi:(m.hi_pid, m.hi_replicas)
  in
  let d' = { d with partitioner; assignment } in
  (* Install the sub-region tables at their replicas.  Ingress partition
     banks still point at the source, whose table stays in place — at no
     instant is a miss without a live authority holding its rules. *)
  let install pid replicas =
    let p = partition_of d' pid in
    List.iter (fun host -> Switch.install_authority d'.switches.(host) p) replicas
  in
  install m.lo_pid m.lo_replicas;
  install m.hi_pid m.hi_replicas;
  Log.info (fun f ->
      f "migration m%d: split p%d into p%d/p%d; sub-region tables installed"
        m.mid m.src_pid m.lo_pid m.hi_pid);
  d'

let flip_split d =
  (* Physical stage 2: rewrite every ingress partition bank from the
     already-split model, atomically per switch (the bank is replaced
     wholesale).  The source's authority table survives until commit, so
     a miss racing the flip lands on *some* table either way. *)
  let prules =
    Partitioner.partition_rules d.partitioner
      ~assignment:(Assignment.switch_for d.assignment)
  in
  Array.iter (fun sw -> Switch.install_partition_rules sw prules) d.switches

let unsplit d (m : Journal.migration) =
  let regions =
    List.concat_map
      (fun (p : Partitioner.partition) ->
        if p.pid = m.lo_pid then [ (m.src_pid, m.src_region) ]
        else if p.pid = m.hi_pid then []
        else [ (p.pid, p.region) ])
      d.partitioner.Partitioner.partitions
  in
  let partitioner = Partitioner.refit d.partitioner d.policy ~regions in
  let assignment =
    Assignment.merge_pid d.assignment
      ~src:(m.src_pid, m.src_replicas)
      ~lo:m.lo_pid ~hi:m.hi_pid
  in
  Log.info (fun f -> f "migration m%d: rolled back to p%d" m.mid m.src_pid);
  { d with partitioner; assignment }

let scrub_split d ~now (m : Journal.migration) ~aborted =
  let dead_pids = if aborted then [ m.lo_pid; m.hi_pid ] else [ m.src_pid ] in
  if aborted then begin
    List.iter
      (fun host -> Switch.drop_authority d.switches.(host) m.lo_pid)
      m.lo_replicas;
    List.iter
      (fun host -> Switch.drop_authority d.switches.(host) m.hi_pid)
      m.hi_replicas
  end
  else
    List.iter
      (fun host -> Switch.drop_authority d.switches.(host) m.src_pid)
      m.src_replicas;
  Array.fold_left
    (fun acc sw -> acc + Switch.invalidate_cache_pids sw ~now dead_pids)
    0 d.switches

let apply_layout d ~regions ~replicas =
  let partitioner = Partitioner.refit d.partitioner d.policy ~regions in
  let weights =
    List.map
      (fun (p : Partitioner.partition) ->
        (p.pid, float_of_int (Classifier.length p.table)))
      partitioner.Partitioner.partitions
  in
  let assignment =
    Assignment.of_replicas ~replicas ~weights ~authorities:d.authority_ids
      ~replication:d.config.replication
  in
  let d' = { d with partitioner; assignment } in
  install_all d';
  d'

let last_new_authority_installs d = d.last_new_installs
let last_new_primary_installs d = d.last_new_primary_installs

let semantically_equal d probes =
  List.for_all
    (fun h ->
      let expected = Classifier.action d.policy h in
      let ingress = 0 in
      (* bypass the congestion model: this is a semantic check, and a
         full buffer is not a policy divergence *)
      let got = (inject_impl ~cong:None d ~now:0. ~ingress h).action in
      match expected with
      | Some a -> Action.equal a got
      | None -> Action.equal Action.Drop got)
    probes

let total_cache_entries d =
  Array.fold_left (fun acc sw -> acc + Switch.cache_occupancy sw) 0 d.switches

(** Replicated DIFANE controllers.

    A cluster of [controllers] replicas shares one write-ahead
    {!Journal}.  At any time exactly one replica — the {e leader} —
    masters the network through a {!Control_plane}; the rest are
    standbys exchanging heartbeats with it over their own (faultable)
    channels.  When a standby misses enough heartbeats it starts an
    election: the lowest-id live, connected replica wins, the cluster
    epoch increments, and the winner rebuilds the leader's exact
    deployment by decoding the journal and replaying every entry through
    the same deployment code the old leader ran, adopts the physical
    switches into it ({!Deployment.adopt}), and re-pushes the
    configuration reliably.

    Split brain is prevented by {e epoch fencing}: every control frame
    carries its sender's epoch, switches reject stale-epoch masters
    (acking with their current epoch so the deposed leader learns it
    lost), and journal appends from a superseded leader are refused
    ({!fenced_appends}).  Because the re-push rides the xid-idempotent
    reliable channel onto replace-by-id switch banks, a takeover
    installs nothing twice — {!duplicate_installs} audits that.

    The cluster owns the fault plan's event schedule: switch and link
    events are forwarded to the live control plane (and physical truth
    is re-seeded into each new leader's), controller crash/restart
    events flip replicas up and down. *)

type t

type config = {
  controllers : int;  (** replicas (>= 1); replica 0 leads initially *)
  heartbeat_interval : float;
  heartbeat_miss_limit : int;
      (** missed heartbeats before a standby starts an election *)
  snapshot_every : int;
      (** compact the journal when its tail grows past this many entries *)
  cp : Control_plane.config;
}

val default_config : config
(** 3 controllers, 150 ms heartbeats, 3 misses, snapshot every 64
    entries, {!Control_plane.default_config} underneath. *)

val create :
  ?config:config ->
  ?faults:Fault.plan ->
  ?dconfig:Deployment.config ->
  policy:Classifier.t ->
  topology:Topology.t ->
  authority_ids:int list ->
  unit ->
  t
(** Build the initial deployment (uninstalled), journal it, and seat
    replica 0 as leader at epoch 1.  Nothing is transmitted yet — call
    {!push_deployment} at simulation start, then {!tick} periodically.
    With [faults], every controller↔switch channel and every heartbeat
    channel gets its own deterministic fault stream from the plan, and
    the plan's events fire during {!tick}. *)

val push_deployment : t -> now:float -> unit
val update_policy : t -> now:float -> ?strict:bool -> Classifier.t -> unit

val tick : t -> now:float -> unit
(** Advance the cluster: fire due fault events, exchange heartbeats, run
    failure detection (possibly electing a new leader and rebuilding),
    tick the leading control plane and every retired one (deposed/halted
    masters keep draining their in-flight frames so the switches can
    fence them), and compact the journal when due. *)

val isolate : t -> now:float -> int -> bool -> unit
(** Partition controller [c] away from (or, with [false], back into) the
    control network: it stops sending and hearing heartbeats.  An
    isolated leader keeps mastering until the switches fence it — the
    split-brain scenario the E-HA experiment exercises. *)

(** {1 Observation} *)

val leader : t -> int
val epoch : t -> int
val leader_cp : t -> Control_plane.t
val deployment : t -> Deployment.t
val journal : t -> Journal.t
val controller_up : t -> int -> bool

val takeovers : t -> int
val takeover_latencies : t -> float list
(** Per takeover: seconds from the moment the leader was lost (crash or
    isolation) to the standby seating itself, in takeover order. *)

val entries_replayed : t -> int
(** Journal entries replayed across all takeovers. *)

val snapshots : t -> int
val fenced_appends : t -> int
(** Journal writes refused because the appending leader's epoch had been
    superseded. *)

val stale_rejected : t -> int
(** Stale-epoch control frames the switches refused, summed. *)

val stale_accepted : t -> int
(** Stale-epoch frames applied anyway — the fencing invariant is that
    this is always 0. *)

val duplicate_installs : t -> int
(** Duplicate ids across every switch's partition bank, authority tables
    and cache TCAM — the split-brain/re-push audit; must be 0. *)

val retransmissions : t -> int
val giveups : t -> int
val pending_requests : t -> int
val stats : t -> Control_plane.stats
(** Loss counters aggregated over every control plane this cluster has
    seated (current leader and retired masters alike). *)

val reset_stats : t -> unit
(** Reset the loss/retransmission counters of every seated control
    plane (election, takeover and journal history survive). *)

val cluster_log : t -> (float * string) list
(** Timestamped elections, crashes, snapshots and fencing records, in
    time order — with the leader's {!Control_plane.fault_log}, the
    replayable trace a seeded run reproduces exactly. *)

type t = {
  replicas : (int * int list) list; (* pid -> switches, primary first *)
  weights : (int * float) list;
  authorities : int list;
  replication : int;
}

let weight_of weights pid = Option.value ~default:0. (List.assoc_opt pid weights)

(* Greedy placement: heaviest partitions first, each replica on the
   least-loaded switch that does not already hold the partition. *)
let place ~existing ~weights ~authorities ~replication pids =
  let load = Hashtbl.create 8 in
  List.iter (fun a -> Hashtbl.replace load a 0.) authorities;
  List.iter
    (fun (pid, replicas) ->
      match replicas with
      | primary :: _ when Hashtbl.mem load primary ->
          Hashtbl.replace load primary (Hashtbl.find load primary +. weight_of weights pid)
      | _ -> ())
    existing;
  let r = min replication (List.length authorities) in
  let sorted =
    List.sort (fun a b -> Float.compare (weight_of weights b) (weight_of weights a)) pids
  in
  List.fold_left
    (fun acc pid ->
      let rec pick chosen n =
        if n = 0 then List.rev chosen
        else
          let candidates = List.filter (fun a -> not (List.mem a chosen)) authorities in
          match candidates with
          | [] -> List.rev chosen
          | first :: _ ->
              let best =
                List.fold_left
                  (fun b a -> if Hashtbl.find load a < Hashtbl.find load b then a else b)
                  first candidates
              in
              (* only the primary counts toward balancing load *)
              if chosen = [] then
                Hashtbl.replace load best (Hashtbl.find load best +. weight_of weights pid);
              pick (best :: chosen) (n - 1)
      in
      (pid, pick [] r) :: acc)
    existing sorted

let greedy ?weights ?(replication = 1) partitioner ~authority_switches =
  if authority_switches = [] then invalid_arg "Assignment.greedy: no authority switches";
  if replication < 1 then invalid_arg "Assignment.greedy: replication must be >= 1";
  let parts = partitioner.Partitioner.partitions in
  let weights =
    match weights with
    | Some w -> w
    | None ->
        List.map
          (fun (p : Partitioner.partition) ->
            (p.pid, float_of_int (Classifier.length p.table)))
          parts
  in
  let pids = List.map (fun (p : Partitioner.partition) -> p.pid) parts in
  {
    replicas = place ~existing:[] ~weights ~authorities:authority_switches ~replication pids;
    weights;
    authorities = authority_switches;
    replication;
  }

let replicas_of t pid =
  match List.assoc_opt pid t.replicas with
  | Some rs -> rs
  | None -> raise Not_found

let switch_for t pid =
  match replicas_of t pid with
  | primary :: _ -> primary
  | [] -> raise Not_found

let partitions_of t sw =
  List.filter_map
    (fun (pid, rs) -> match rs with primary :: _ when primary = sw -> Some pid | _ -> None)
    t.replicas

let hosted_by t sw =
  List.filter_map (fun (pid, rs) -> if List.mem sw rs then Some pid else None) t.replicas

let replication t = t.replication

let loads t =
  List.map
    (fun a ->
      ( a,
        List.fold_left
          (fun acc pid -> acc +. weight_of t.weights pid)
          0. (partitions_of t a) ))
    (List.sort Int.compare t.authorities)

let imbalance t =
  let ls = List.map snd (loads t) in
  match ls with
  | [] -> 1.0
  | _ ->
      let total = List.fold_left ( +. ) 0. ls in
      let mean = total /. float_of_int (List.length ls) in
      if mean = 0. then 1.0 else List.fold_left Float.max 0. ls /. mean

(* Migration support: swap [src] for its two sub-regions (keeping the
   journaled replica lists verbatim), or the reverse on abort.  The split
   halves the source's measured weight between the children — the real
   ratio is unknown until new windows accrue, and halving keeps the load
   estimate conservative without re-measuring. *)
let split_pid t ~src ~lo:(lo_pid, lo_replicas) ~hi:(hi_pid, hi_replicas) =
  let w = weight_of t.weights src /. 2. in
  let replicas =
    List.concat_map
      (fun (pid, rs) ->
        if pid = src then [ (lo_pid, lo_replicas); (hi_pid, hi_replicas) ]
        else [ (pid, rs) ])
      t.replicas
  in
  let weights =
    (lo_pid, w) :: (hi_pid, w)
    :: List.filter (fun (pid, _) -> pid <> src) t.weights
  in
  { t with replicas; weights }

let merge_pid t ~src:(src_pid, src_replicas) ~lo ~hi =
  let w = weight_of t.weights lo +. weight_of t.weights hi in
  let replicas =
    List.concat_map
      (fun (pid, rs) ->
        if pid = lo then [ (src_pid, src_replicas) ]
        else if pid = hi then []
        else [ (pid, rs) ])
      t.replicas
  in
  let weights =
    (src_pid, w)
    :: List.filter (fun (pid, _) -> pid <> lo && pid <> hi) t.weights
  in
  { t with replicas; weights }

let all_replicas t =
  List.sort (fun (a, _) (b, _) -> Int.compare a b) t.replicas

let of_replicas ~replicas ~weights ~authorities ~replication =
  if authorities = [] then invalid_arg "Assignment.of_replicas: no authority switches";
  { replicas; weights; authorities; replication }

let reassign t ~failed =
  let survivors = List.filter (fun a -> a <> failed) t.authorities in
  if survivors = [] then invalid_arg "Assignment.reassign: no surviving authority switches";
  (* Drop the failed switch from every replica list; promote backups. *)
  let pruned =
    List.map (fun (pid, rs) -> (pid, List.filter (fun a -> a <> failed) rs)) t.replicas
  in
  let kept, orphaned = List.partition (fun (_, rs) -> rs <> []) pruned in
  let replicas =
    place ~existing:kept ~weights:t.weights ~authorities:survivors
      ~replication:t.replication
      (List.map fst orphaned)
  in
  (* Top surviving partitions back up to the replication factor. *)
  let r = min t.replication (List.length survivors) in
  let replicas =
    List.map
      (fun (pid, rs) ->
        let missing = r - List.length rs in
        if missing <= 0 then (pid, rs)
        else
          let extra =
            List.filter (fun a -> not (List.mem a rs)) survivors
            |> List.filteri (fun i _ -> i < missing)
          in
          (pid, rs @ extra))
      replicas
  in
  { t with authorities = survivors; replicas }

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (a, l) ->
         Format.fprintf ppf "authority %d: primaries %a (load %.0f)" a
           (Format.pp_print_list
              ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
              Format.pp_print_int)
           (partitions_of t a) l))
    (loads t)

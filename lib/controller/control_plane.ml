let log_src = Logs.Src.create "difane.control" ~doc:"DIFANE control-plane events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  channel_latency : float;
  echo_interval : float;
  echo_miss_limit : int;
  stats_interval : float;
  rebalance_interval : float option;
  retx_timeout : float;
  retx_backoff : float;
  retx_limit : int;
  adaptive : bool;
  hotspot_threshold : float;
  hotspot_window : int;
  migration_step : float;
}

let default_config =
  {
    channel_latency = 1e-3;
    echo_interval = 1.0;
    echo_miss_limit = 3;
    stats_interval = 5.0;
    rebalance_interval = None;
    retx_timeout = 0.1;
    retx_backoff = 2.0;
    retx_limit = 6;
    adaptive = false;
    hotspot_threshold = 2.0;
    hotspot_window = 3;
    migration_step = 0.05;
  }

type port = {
  to_switch : Channel.t;
  to_controller : Channel.t;
  mutable alive : bool; (* the real device still responds *)
  mutable link_up : bool; (* the control link carries frames *)
  mutable outstanding_echo : bool;
  mutable missed_echoes : int;
  mutable declared_dead : bool;
}

(* One unacknowledged state-changing request: retransmitted with
   exponential backoff until acked, given up, or its switch dies. *)
type pending_req = {
  req_msg : Message.t;
  mutable next_retry : float;
  mutable interval : float;
  mutable retries : int;
}

type stats = {
  dropped : int;
  duplicated : int;
  corrupted : int;
  reordered : int;
  decode_errors : int;
  link_dropped : int;
}


(* Registry mirrors: bumped on the same line as the per-plane fields, so
   process-wide totals track the sum over all control planes exactly. *)
let m_retransmissions = Telemetry.counter "ctrl_retransmissions"
let m_giveups = Telemetry.counter "ctrl_giveups"
let m_cancelled = Telemetry.counter "ctrl_cancelled"
let m_link_dropped = Telemetry.counter "ctrl_link_dropped"
let m_degraded = Telemetry.counter "ctrl_degraded_handled"
let m_switch_deaths = Telemetry.counter "ctrl_switch_deaths"
let m_failovers = Telemetry.counter "ctrl_authority_failovers"
let m_recoveries = Telemetry.counter "ctrl_recoveries"
let m_policy_updates = Telemetry.counter "ctrl_policy_updates"
let m_rebalances = Telemetry.counter "ctrl_rebalances"
let m_migrations_started = Telemetry.counter "rebalance_migrations_started"
let m_migrations_committed = Telemetry.counter "rebalance_migrations_committed"
let m_migrations_aborted = Telemetry.counter "rebalance_migrations_aborted"
let m_rules_moved = Telemetry.counter "rebalance_rules_moved"
let m_windows_to_recovery = Telemetry.counter "rebalance_windows_to_recovery"

type migration_stage = Installed | Flipped

type t = {
  mutable deployment : Deployment.t;
  config : config;
  mutable epoch : int; (* master epoch stamped on every frame; 0 = unfenced *)
  mutable deposed : bool; (* a reply carried a newer epoch: we lost mastership *)
  journal : (at:float -> Journal.entry -> unit) option;
      (* write-ahead journal sink; the cluster passes a fenced appender *)
  ports : port array;
  retired : (int, int64) Hashtbl.t; (* origin -> packets of removed entries *)
  live : (int * int, int * int64) Hashtbl.t;
      (* (switch, cache rule id) -> (origin, packets): latest stats snapshot *)
  pending : (int * int, pending_req) Hashtbl.t; (* (switch, xid) -> request *)
  demoted : (int, unit) Hashtbl.t; (* dead authorities awaiting restoration *)
  mutable fault_events : Fault.event list; (* future events, time order *)
  mutable last_echo : float;
  mutable last_stats : float;
  mutable last_rebalance : float;
  mutable rebalances : int;
  mutable active_migration : (Journal.migration * migration_stage * float) option;
      (* in-flight staged migration: spec, stage reached, stage time *)
  mutable next_mid : int;
  mutable last_auth_cum : (int * float) list;
      (* per-authority cumulative miss count at the last window boundary *)
  mutable streaks : (int * int) list; (* authority -> consecutive hot windows *)
  mutable windows_seen : int;
  mutable recovery_watch : (int * int) option;
      (* (hot authority, window count at migration begin): when it first
         measures non-hot again, windows-to-recovery is recorded *)
  mutable migrations_started : int;
  mutable migrations_committed : int;
  mutable migrations_aborted : int;
  mutable rules_moved : int;
  mutable failed : int list; (* reverse failure order *)
  mutable next_xid : int;
  mutable retransmissions : int;
  mutable giveups : int;
  mutable cancelled : int;
  mutable link_dropped : int;
  mutable degraded_handled : int64; (* packet-in misses served while degraded *)
  mutable log : (float * string) list; (* reverse order *)
}

let record t ~now fmt =
  Printf.ksprintf
    (fun s ->
      t.log <- (now, s) :: t.log;
      Telemetry.Trace.event ~at:now ~name:"control" s;
      Log.info (fun m -> m "t=%.3f %s" now s))
    fmt

let create ?(config = default_config) ?faults ?(epoch = 0) ?journal ?(channel_offset = 0)
    ?(demoted = []) ?(presumed_dead = []) ?(next_mid = 0) deployment =
  let schema = Classifier.schema (Deployment.policy deployment) in
  let n = Array.length (Deployment.switches deployment) in
  let injector i =
    match faults with
    | None -> None
    | Some plan -> Some (Fault.injector plan ~channel:(channel_offset + i))
  in
  let demoted_tbl = Hashtbl.create 4 in
  List.iter (fun i -> Hashtbl.replace demoted_tbl i ()) demoted;
  {
    deployment;
    config;
    epoch;
    deposed = false;
    journal;
    ports =
      Array.init n (fun i ->
          {
            to_switch =
              Channel.create ?fault:(injector (2 * i)) schema
                ~latency:config.channel_latency;
            to_controller =
              Channel.create ?fault:(injector ((2 * i) + 1)) schema
                ~latency:config.channel_latency;
            alive = true;
            link_up = true;
            outstanding_echo = false;
            missed_echoes = 0;
            declared_dead = List.mem i presumed_dead;
          });
    retired = Hashtbl.create 64;
    live = Hashtbl.create 64;
    pending = Hashtbl.create 64;
    demoted = demoted_tbl;
    fault_events = (match faults with None -> [] | Some p -> p.Fault.events);
    last_echo = neg_infinity;
    last_stats = neg_infinity;
    last_rebalance = neg_infinity;
    rebalances = 0;
    active_migration = None;
    next_mid;
    last_auth_cum = [];
    streaks = [];
    windows_seen = 0;
    recovery_watch = None;
    migrations_started = 0;
    migrations_committed = 0;
    migrations_aborted = 0;
    rules_moved = 0;
    failed = List.rev presumed_dead;
    next_xid = 1;
    retransmissions = 0;
    giveups = 0;
    cancelled = 0;
    link_dropped = 0;
    degraded_handled = 0L;
    log = [];
  }

let deployment t = t.deployment
let epoch t = t.epoch
let deposed t = t.deposed

let demoted_authorities t =
  Hashtbl.fold (fun i () acc -> i :: acc) t.demoted [] |> List.sort Int.compare

let journal_entry t ~now e =
  match t.journal with None -> () | Some append -> append ~at:now e

let xid t =
  let x = t.next_xid in
  t.next_xid <- x + 1;
  x

let transmit t i ~now ~xid msg =
  let port = t.ports.(i) in
  if port.link_up then Channel.send port.to_switch ~now ~xid ~epoch:t.epoch msg
  else begin
    t.link_dropped <- t.link_dropped + 1;
    Telemetry.incr m_link_dropped
  end

let send_to_switch t i ~now msg = transmit t i ~now ~xid:(xid t) msg

(* Reliable path: remember the request under its xid and retransmit until
   the switch acknowledges it (flow-mods, barriers and partition
   transfers all answer with their xid). *)
let send_reliable t i ~now msg =
  let x = xid t in
  transmit t i ~now ~xid:x msg;
  Hashtbl.replace t.pending (i, x)
    {
      req_msg = msg;
      next_retry = now +. t.config.retx_timeout;
      interval = t.config.retx_timeout;
      retries = 0;
    }

let cancel_pending t i =
  let victims =
    Hashtbl.fold (fun (j, x) _ acc -> if j = i then (j, x) :: acc else acc) t.pending []
  in
  List.iter (fun k -> Hashtbl.remove t.pending k) victims;
  t.cancelled <- t.cancelled + List.length victims;
  Telemetry.add m_cancelled (List.length victims);
  List.length victims

(* ---- staged region migration (adaptive rebalancing) ----

   Stage discipline: every stage journals first (write-ahead via the
   cluster's fenced appender), then mutates the deployment, then sends
   the corresponding reliable messages.  Journal append and state change
   happen in the same tick, so a takeover replaying the journal always
   reconstructs exactly the stage the switches are in. *)

let partition_table t pid =
  List.find
    (fun (p : Partitioner.partition) -> p.pid = pid)
    (Deployment.partitioner t.deployment).Partitioner.partitions

let send_install t ~now pid replicas =
  let p = partition_table t pid in
  List.iter
    (fun host ->
      if not t.ports.(host).declared_dead then
        send_reliable t host ~now
          (Message.Install_partition
             { Message.pid = p.pid; region = p.region;
               table_rules = Classifier.rules p.table }))
    replicas

let send_drop t ~now pid replicas =
  List.iter
    (fun host ->
      if not t.ports.(host).declared_dead then
        send_reliable t host ~now (Message.Drop_partition pid))
    replicas

(* Retransmitting a sub-region install after its migration aborted would
   resurrect the dropped table: forget those requests. *)
let cancel_pending_installs t pids =
  let victims =
    Hashtbl.fold
      (fun k req acc ->
        match req.req_msg with
        | Message.Install_partition { Message.pid; _ } when List.mem pid pids ->
            k :: acc
        | _ -> acc)
      t.pending []
  in
  List.iter (Hashtbl.remove t.pending) victims;
  t.cancelled <- t.cancelled + List.length victims;
  Telemetry.add m_cancelled (List.length victims)

let migration_refs (m : Journal.migration) =
  m.Journal.src_replicas @ m.Journal.lo_replicas @ m.Journal.hi_replicas

let commit_migration t ~now (m : Journal.migration) =
  journal_entry t ~now (Journal.Migration_commit m.Journal.mid);
  let invalidated = Deployment.scrub_split t.deployment ~now m ~aborted:false in
  send_drop t ~now m.Journal.src_pid m.Journal.src_replicas;
  t.active_migration <- None;
  t.migrations_committed <- t.migrations_committed + 1;
  Telemetry.incr m_migrations_committed;
  record t ~now "migration m%d committed: p%d retired, %d stale cache entries evicted"
    m.Journal.mid m.Journal.src_pid invalidated

let abort_migration t ~now (m : Journal.migration) ~reason =
  journal_entry t ~now (Journal.Migration_abort m.Journal.mid);
  t.deployment <- Deployment.unsplit t.deployment m;
  let invalidated = Deployment.scrub_split t.deployment ~now m ~aborted:true in
  cancel_pending_installs t [ m.Journal.lo_pid; m.Journal.hi_pid ];
  send_drop t ~now m.Journal.lo_pid m.Journal.lo_replicas;
  send_drop t ~now m.Journal.hi_pid m.Journal.hi_replicas;
  t.active_migration <- None;
  t.recovery_watch <- None;
  t.migrations_aborted <- t.migrations_aborted + 1;
  Telemetry.incr m_migrations_aborted;
  record t ~now "migration m%d aborted (%s): p%d restored, %d cache entries evicted"
    m.Journal.mid reason m.Journal.src_pid invalidated

(* An authority referenced by the in-flight migration died.  Before the
   flip the sub-regions carry no traffic, so roll back and let the
   regular failover handle the death; after the flip they are the serving
   tables, so commit early — retiring the source is then the only
   consistent direction. *)
let resolve_migration_on_death t ~now i =
  match t.active_migration with
  | Some (m, stage, _) when List.mem i (migration_refs m) -> (
      match stage with
      | Installed ->
          abort_migration t ~now m ~reason:(Printf.sprintf "authority %d died" i)
      | Flipped -> commit_migration t ~now m)
  | _ -> ()

let declare_dead t ~now i =
  let port = t.ports.(i) in
  if not port.declared_dead then begin
    port.declared_dead <- true;
    t.failed <- i :: t.failed;
    Telemetry.incr m_switch_deaths;
    record t ~now "switch %d missed %d echoes; declared dead" i t.config.echo_miss_limit;
    journal_entry t ~now (Journal.Declared_dead i);
    (* a dead device cannot serve tunnelled misses either *)
    Deployment.mark_unreachable t.deployment i;
    let dropped = cancel_pending t i in
    if dropped > 0 then record t ~now "cancelled %d in-flight requests to switch %d" dropped i;
    (* resolve an in-flight migration before failover re-places partitions:
       the journal then replays abort/commit against the pre-failover
       layout, the same order the live engine applied *)
    resolve_migration_on_death t ~now i;
    (* Authority failover, if the dead switch held that duty and a
       survivor exists to take it. *)
    let auths = Deployment.authority_ids t.deployment in
    if List.mem i auths && List.length auths > 1 then begin
      t.deployment <- Deployment.fail_authority t.deployment i;
      Hashtbl.replace t.demoted i ();
      Telemetry.incr m_failovers;
      record t ~now "authority %d demoted; backups promoted" i;
      journal_entry t ~now (Journal.Fail_authority i)
    end
  end

(* Aggregate a stats reply: refresh the live snapshot of this switch's
   cache entries.  Cache-rule ids map back to the policy rule they were
   spliced from via the install-time origin record (the cookie the
   authority switch set; we read the switch model's copy). *)
let absorb_stats t i (reply : Message.stats_reply) =
  let sw = Deployment.switch t.deployment i in
  List.iter
    (fun (f : Message.flow_stats) ->
      match Switch.origin_of_cache_rule sw f.rule_id with
      | None -> ()
      | Some origin -> Hashtbl.replace t.live (i, f.rule_id) (origin, f.packets))
    reply.Message.flows

let config_for_switch t i =
  let d = t.deployment in
  let partitioner = Deployment.partitioner d in
  let assignment = Deployment.assignment d in
  let prules =
    Partitioner.partition_rules partitioner ~assignment:(Assignment.switch_for assignment)
  in
  let tables =
    List.map
      (fun pid ->
        List.find
          (fun (p : Partitioner.partition) -> p.pid = pid)
          partitioner.Partitioner.partitions)
      (Assignment.hosted_by assignment i)
  in
  (prules, tables)

let push_switch t i ~now =
  let prules, tables = config_for_switch t i in
  List.iter
    (fun rule ->
      send_reliable t i ~now
        (Message.Flow_mod
           { Message.command = Message.Add; bank = Message.Partition; rule;
             idle_timeout = None; hard_timeout = None }))
    prules;
  send_reliable t i ~now (Message.Barrier_request i);
  List.iter
    (fun (p : Partitioner.partition) ->
      send_reliable t i ~now
        (Message.Install_partition
           { Message.pid = p.pid; region = p.region;
             table_rules = Classifier.rules p.table }))
    tables

(* Take a switch back into service: clear liveness state, rejoin the
   authority pool if failover had demoted it, and re-push its whole
   configuration reliably.  Shared by scheduled restarts and by the
   recovery from a premature death declaration. *)
let recover t ~now i =
  let port = t.ports.(i) in
  port.missed_echoes <- 0;
  port.outstanding_echo <- false;
  Deployment.mark_reachable t.deployment i;
  if port.declared_dead then begin
    port.declared_dead <- false;
    t.failed <- List.filter (fun j -> j <> i) t.failed;
    Telemetry.incr m_recoveries;
    journal_entry t ~now (Journal.Recovered i)
  end;
  if Hashtbl.mem t.demoted i then begin
    Hashtbl.remove t.demoted i;
    t.deployment <- Deployment.restore_authority t.deployment i;
    record t ~now "authority %d restored to the pool" i;
    journal_entry t ~now (Journal.Restore_authority i)
  end;
  push_switch t i ~now

let process_reply t ~now i (x, msg) =
  let port = t.ports.(i) in
  (* any response carrying a tracked xid retires its request *)
  if x <> 0 then Hashtbl.remove t.pending (i, x);
  match msg with
  | Message.Echo_reply _ ->
      if port.declared_dead then begin
        (* the declaration was premature (lost echoes, not a dead
           device): take the switch back *)
        record t ~now "switch %d answered an echo after being declared dead; recovering" i;
        recover t ~now i
      end
      else begin
        port.outstanding_echo <- false;
        port.missed_echoes <- 0
      end
  | Message.Stats_reply reply -> absorb_stats t i reply
  | Message.Barrier_reply _ | Message.Hello | Message.Ack _ -> ()
  | Message.Packet_in p ->
      (* DIFANE's whole point: switches do not punt packets.  A packet-in
         only appears in degraded mode — every replica of the packet's
         partition is dead — and then the controller answers it NOX-style
         from the policy itself. *)
      let action =
        Option.value ~default:Action.Drop
          (Classifier.action (Deployment.policy t.deployment) p.Message.header)
      in
      t.degraded_handled <- Int64.add t.degraded_handled 1L;
      Telemetry.incr m_degraded;
      transmit t i ~now ~xid:0
        (Message.Packet_out
           { Message.out_switch = i; out_header = p.Message.header; action })
  | Message.Flow_removed f ->
      (* final counters from an expired/evicted cache entry: retire them
         so nothing is lost to churn, and drop the live snapshot *)
      Hashtbl.remove t.live (i, f.Message.removed_rule);
      if f.Message.cookie >= 0 then begin
        let prev = Option.value ~default:0L (Hashtbl.find_opt t.retired f.Message.cookie) in
        Hashtbl.replace t.retired f.Message.cookie
          (Int64.add prev f.Message.final_packets)
      end
  | Message.Echo_request _ | Message.Barrier_request _ | Message.Stats_request _
  | Message.Flow_mod _ | Message.Packet_out _ | Message.Install_partition _
  | Message.Drop_partition _ ->
      ()

let push_deployment t ~now =
  Array.iteri
    (fun i port -> if not port.declared_dead then push_switch t i ~now)
    t.ports

(* ---- closed-loop hotspot detection ----

   Per-authority miss load comes from the switches' monotonic
   [authority_hits] counters (they survive splits and failovers, unlike
   per-partition tallies whose pids retire mid-migration).  An authority
   is hot in a window when its share of the window's misses exceeds
   [hotspot_threshold] times fair share; [hotspot_window] consecutive hot
   windows trigger a migration. *)

let authority_cumulative t =
  List.map
    (fun a ->
      ( a,
        Int64.to_float
          (Switch.stats (Deployment.switch t.deployment a)).Switch.authority_hits ))
    (List.sort Int.compare (Deployment.authority_ids t.deployment))

let legacy_rebalance t ~now ~loads =
  t.deployment <- Deployment.rebalance t.deployment ~loads;
  t.rebalances <- t.rebalances + 1;
  Telemetry.incr m_rebalances;
  journal_entry t ~now (Journal.Rebalance loads)

let begin_migration t ~now ~src_auth ~dst =
  let d = t.deployment in
  let assignment = Deployment.assignment d in
  let loads = Deployment.measured_partition_loads d in
  let load pid = Option.value ~default:0. (List.assoc_opt pid loads) in
  (* the hottest partition the overloaded authority serves as primary *)
  match
    List.sort
      (fun a b -> Float.compare (load b) (load a))
      (Assignment.partitions_of assignment src_auth)
  with
  | [] ->
      (* hot without any primary partition (all demoted?): nothing to cut *)
      t.streaks <- List.map (fun (a, _) -> (a, 0)) t.streaks
  | src_pid :: _ -> (
      match
        Partitioner.split_region (Deployment.partitioner d)
          (Deployment.policy d) ~pid:src_pid
      with
      | None ->
          (* no productive cut left in the hot region: fall back to
             whole-partition re-placement on measured load *)
          record t ~now
            "hotspot at authority %d but p%d has no productive cut; \
             falling back to load rebalance"
            src_auth src_pid;
          legacy_rebalance t ~now ~loads;
          t.streaks <- List.map (fun (a, _) -> (a, 0)) t.streaks
      | Some ((lo_pid, lo_region), (hi_pid, hi_region)) ->
          let src_replicas = Assignment.replicas_of assignment src_pid in
          let auths =
            List.sort Int.compare (Deployment.authority_ids d)
          in
          let r = Assignment.replication assignment in
          let hi_replicas =
            dst
            :: (List.filter (fun a -> a <> dst) auths
               |> List.filteri (fun i _ -> i < r - 1))
          in
          let m =
            {
              Journal.mid = t.next_mid;
              src_pid;
              src_region = (partition_table t src_pid).Partitioner.region;
              src_replicas;
              lo_pid;
              lo_region;
              lo_replicas = src_replicas;
              hi_pid;
              hi_region;
              hi_replicas;
            }
          in
          t.next_mid <- t.next_mid + 1;
          journal_entry t ~now (Journal.Migration_begin m);
          t.deployment <- Deployment.apply_split t.deployment m;
          send_install t ~now lo_pid m.Journal.lo_replicas;
          send_install t ~now hi_pid m.Journal.hi_replicas;
          let moved = Classifier.length (partition_table t hi_pid).Partitioner.table in
          t.rules_moved <- t.rules_moved + moved;
          Telemetry.add m_rules_moved moved;
          t.active_migration <- Some (m, Installed, now);
          t.migrations_started <- t.migrations_started + 1;
          Telemetry.incr m_migrations_started;
          t.recovery_watch <- Some (src_auth, t.windows_seen);
          t.streaks <- List.map (fun (a, _) -> (a, 0)) t.streaks;
          record t ~now
            "hotspot: authority %d overloaded; migrating p%d's sub-region p%d \
             (%d rules) to authority %d (m%d)"
            src_auth src_pid hi_pid moved dst m.Journal.mid)

let adaptive_window t ~now =
  t.windows_seen <- t.windows_seen + 1;
  let cum = authority_cumulative t in
  let deltas =
    List.map
      (fun (a, c) ->
        let prev = Option.value ~default:0. (List.assoc_opt a t.last_auth_cum) in
        (a, Float.max 0. (c -. prev)))
      cum
  in
  t.last_auth_cum <- cum;
  let n = List.length deltas in
  let total = List.fold_left (fun s (_, d) -> s +. d) 0. deltas in
  let fair = if n = 0 then 0. else total /. float_of_int n in
  let hot d = n >= 2 && d >= 1. && d > t.config.hotspot_threshold *. fair in
  t.streaks <-
    List.map
      (fun (a, d) ->
        let s = Option.value ~default:0 (List.assoc_opt a t.streaks) in
        (a, if hot d then s + 1 else 0))
      deltas;
  (match t.recovery_watch with
  | Some (auth, w0) when t.active_migration = None -> (
      match List.assoc_opt auth deltas with
      | Some d when not (hot d) ->
          Telemetry.add m_windows_to_recovery (t.windows_seen - w0);
          record t ~now "authority %d back under fair share %d windows after migration began"
            auth (t.windows_seen - w0);
          t.recovery_watch <- None
      | _ -> ())
  | _ -> ());
  if t.active_migration = None then begin
    let candidates =
      List.filter
        (fun (a, _) ->
          Option.value ~default:0 (List.assoc_opt a t.streaks)
          >= t.config.hotspot_window)
        deltas
    in
    match
      List.sort (fun (_, x) (_, y) -> Float.compare y x) candidates
    with
    | [] -> ()
    | (src_auth, _) :: _ -> (
        match
          List.sort
            (fun (a, x) (b, y) ->
              match Float.compare x y with 0 -> Int.compare a b | c -> c)
            (List.filter (fun (a, _) -> a <> src_auth) deltas)
        with
        | [] -> () (* a single authority: nowhere to move load *)
        | (dst, _) :: _ -> begin_migration t ~now ~src_auth ~dst)
  end

let advance_migration t ~now =
  match t.active_migration with
  | Some (m, Installed, since) when now -. since >= t.config.migration_step ->
      journal_entry t ~now (Journal.Migration_flip m.Journal.mid);
      Deployment.flip_split t.deployment;
      t.active_migration <- Some (m, Flipped, now);
      record t ~now "migration m%d: ingress partition rules flipped to p%d/p%d"
        m.Journal.mid m.Journal.lo_pid m.Journal.hi_pid
  | Some (m, Flipped, since) when now -. since >= t.config.migration_step ->
      commit_migration t ~now m
  | _ -> ()

(* ---- fault events ---- *)

let crash_switch t ~now i =
  let port = t.ports.(i) in
  port.alive <- false;
  (* the device loses every bank and counter the moment it dies *)
  Switch.reset (Deployment.switch t.deployment i);
  Deployment.mark_unreachable t.deployment i;
  record t ~now "switch %d crashed (state lost)" i

let restart_switch t ~now i =
  t.ports.(i).alive <- true;
  (* the device rebooted blank: recover re-pushes its partition bank and
     whatever authority tables the current assignment gives it, all with
     retransmission tracking *)
  recover t ~now i;
  record t ~now "switch %d restarted; resync pushed" i

let set_link t ~now i up =
  t.ports.(i).link_up <- up;
  record t ~now "control link to switch %d %s" i (if up then "restored" else "down")

let apply_fault_events t ~now =
  let rec go = function
    | ev :: rest when Fault.event_time ev <= now ->
        (match ev with
        | Fault.Crash { switch; _ } -> crash_switch t ~now switch
        | Fault.Restart { switch; _ } -> restart_switch t ~now switch
        | Fault.Link_down { switch; _ } -> set_link t ~now switch false
        | Fault.Link_up { switch; _ } -> set_link t ~now switch true
        | Fault.Controller_crash _ | Fault.Controller_restart _ ->
            (* controller replica lifecycle is the cluster's business; a
               standalone control plane has no replicas to lose *)
            ());
        go rest
    | rest -> t.fault_events <- rest
  in
  go t.fault_events

(* ---- retransmission ---- *)

let retransmit_due t ~now =
  (* sorted for a deterministic retransmission order regardless of hash
     internals: the fault plan's reproducibility depends on it *)
  let due =
    Hashtbl.fold
      (fun (i, x) req acc -> if req.next_retry <= now then ((i, x), req) :: acc else acc)
      t.pending []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun ((i, x), req) ->
      let port = t.ports.(i) in
      if port.declared_dead then begin
        Hashtbl.remove t.pending (i, x);
        t.cancelled <- t.cancelled + 1;
        Telemetry.incr m_cancelled
      end
      else if req.retries >= t.config.retx_limit then begin
        Hashtbl.remove t.pending (i, x);
        t.giveups <- t.giveups + 1;
        Telemetry.incr m_giveups;
        record t ~now "gave up on xid %d to switch %d after %d retransmissions" x i
          req.retries
      end
      else begin
        transmit t i ~now ~xid:x req.req_msg;
        req.retries <- req.retries + 1;
        req.interval <- req.interval *. t.config.retx_backoff;
        req.next_retry <- now +. req.interval;
        t.retransmissions <- t.retransmissions + 1;
        Telemetry.incr m_retransmissions
      end)
    due

(* Deliver controller->switch frames to the (shared) switch devices and
   queue their responses.  This is transport, not mastership: a deposed
   controller's in-flight frames still reach the switch — which fences
   them by epoch — and their acks still come back. *)
let deliver_to_switches t ~now =
  Array.iteri
    (fun i port ->
      let frames = Channel.poll port.to_switch ~now in
      if not port.link_up then begin
        t.link_dropped <- t.link_dropped + List.length frames;
        Telemetry.add m_link_dropped (List.length frames)
      end
      else if port.alive then begin
        let sw = Deployment.switch t.deployment i in
        List.iter
          (fun (x, frame_epoch, msg) ->
            let responses = Switch.handle_control ~xid:x ~epoch:frame_epoch sw ~now msg in
            List.iter
              (fun r ->
                (* replies carry the switch's current epoch: how a deposed
                   leader learns a newer master exists *)
                Channel.send port.to_controller ~now ~xid:x ~epoch:(Switch.epoch sw) r)
              responses)
          frames;
        List.iter
          (fun n -> Channel.send port.to_controller ~now ~xid:0 ~epoch:(Switch.epoch sw) n)
          (Switch.drain_notifications sw)
      end)
    t.ports

let depose t ~now observed =
  if not t.deposed then begin
    t.deposed <- true;
    let dropped = Hashtbl.length t.pending in
    Hashtbl.reset t.pending;
    t.cancelled <- t.cancelled + dropped;
    Telemetry.add m_cancelled dropped;
    record t ~now "fenced: observed epoch %d above own %d; deposed (dropped %d pending)"
      observed t.epoch dropped
  end

(* The controller process stopped (crash): it masters nothing from now
   on, but frames it already put on the wire still deliver — the cluster
   keeps ticking a halted control plane as pure transport. *)
let halt t ~now =
  if not t.deposed then begin
    t.deposed <- true;
    let dropped = Hashtbl.length t.pending in
    Hashtbl.reset t.pending;
    t.cancelled <- t.cancelled + dropped;
    Telemetry.add m_cancelled dropped;
    record t ~now "controller process stopped (%d pending dropped)" dropped
  end

let tick t ~now =
  if t.deposed then begin
    (* A deposed controller is transport only: frames already in flight
       deliver (and get fenced), replies drain, nothing new is sent and
       no duty — echoes, stats, failure detection, retransmission — runs. *)
    deliver_to_switches t ~now;
    Array.iter (fun port -> ignore (Channel.poll port.to_controller ~now)) t.ports
  end
  else begin
  (* 0. scheduled faults fire first: they shape everything below *)
  apply_fault_events t ~now;
  (* 1. periodic echoes with failure detection *)
  if now -. t.last_echo >= t.config.echo_interval then begin
    t.last_echo <- now;
    Array.iteri
      (fun i port ->
        if port.declared_dead then
          (* keep probing a declared-dead switch: a reply proves the
             declaration premature and triggers recovery *)
          send_to_switch t i ~now (Message.Echo_request i)
        else begin
          if port.outstanding_echo then begin
            port.missed_echoes <- port.missed_echoes + 1;
            if port.missed_echoes >= t.config.echo_miss_limit then declare_dead t ~now i
          end;
          if not port.declared_dead then begin
            port.outstanding_echo <- true;
            send_to_switch t i ~now (Message.Echo_request i)
          end
        end)
      t.ports
  end;
  (* 2. periodic stats collection *)
  if now -. t.last_stats >= t.config.stats_interval then begin
    t.last_stats <- now;
    Array.iteri
      (fun i port ->
        if not port.declared_dead then
          send_to_switch t i ~now
            (Message.Stats_request { Message.table_bank = Message.Cache; cookie = i }))
      t.ports
  end;
  (* 2b. periodic load management.  Legacy mode re-places whole partitions
        on measured load; adaptive mode closes the hotspot loop — detect
        over a window, then re-cut and migrate in staged steps. *)
  (match t.config.rebalance_interval with
  | Some interval when now -. t.last_rebalance >= interval ->
      t.last_rebalance <- now;
      if t.config.adaptive then adaptive_window t ~now
      else begin
        let loads = Deployment.measured_partition_loads t.deployment in
        if List.exists (fun (_, l) -> l > 0.) loads then
          legacy_rebalance t ~now ~loads
      end
  | _ -> ());
  (* 2c. advance an in-flight staged migration *)
  if t.config.adaptive then advance_migration t ~now;
  (* 3. deliver controller->switch frames; collect switch responses and
        any queued asynchronous notifications (flow-removed).  A downed
        link kills arriving frames on the wire in both directions. *)
  deliver_to_switches t ~now;
  (* 4. deliver switch->controller frames.  A reply carrying an epoch
        above our own means a newer master exists: stop mastering. *)
  Array.iteri
    (fun i port ->
      let replies = Channel.poll port.to_controller ~now in
      if not port.link_up then begin
        t.link_dropped <- t.link_dropped + List.length replies;
        Telemetry.add m_link_dropped (List.length replies)
      end
      else
        List.iter
          (fun (x, reply_epoch, msg) ->
            if t.epoch > 0 && reply_epoch > t.epoch then depose t ~now reply_epoch
            else process_reply t ~now i (x, msg))
          replies)
    t.ports;
  (* 5. retransmit what the lossy channels have not delivered *)
  retransmit_due t ~now
  end

let rebalances t = t.rebalances
let migration_active t = t.active_migration <> None
let migrations_started t = t.migrations_started
let migrations_committed t = t.migrations_committed
let migrations_aborted t = t.migrations_aborted
let rules_moved t = t.rules_moved

(* Takeover resolution for a migration the crashed leader left in
   flight: the cluster replays the journal, finds the reached stage, and
   the new leader finishes it — commit if the flip already happened (the
   sub-regions are serving), abort otherwise.  Journaled through this
   plane's own (fenced, new-epoch) appender, then applied to the adopted
   physical network. *)
let finish_inherited_migration t ~now (m : Journal.migration) ~committed =
  if committed then begin
    journal_entry t ~now (Journal.Migration_commit m.Journal.mid);
    let invalidated = Deployment.scrub_split t.deployment ~now m ~aborted:false in
    t.migrations_committed <- t.migrations_committed + 1;
    Telemetry.incr m_migrations_committed;
    record t ~now
      "takeover: inherited migration m%d was flipped; committed (%d cache entries evicted)"
      m.Journal.mid invalidated
  end
  else begin
    journal_entry t ~now (Journal.Migration_abort m.Journal.mid);
    let invalidated = Deployment.scrub_split t.deployment ~now m ~aborted:true in
    t.migrations_aborted <- t.migrations_aborted + 1;
    Telemetry.incr m_migrations_aborted;
    record t ~now
      "takeover: inherited migration m%d was not yet flipped; aborted (%d cache entries evicted)"
      m.Journal.mid invalidated
  end

let rule_counters t =
  let totals = Hashtbl.copy t.retired in
  Hashtbl.iter
    (fun _ (origin, packets) ->
      let prev = Option.value ~default:0L (Hashtbl.find_opt totals origin) in
      Hashtbl.replace totals origin (Int64.add prev packets))
    t.live;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let failed_switches t = List.rev t.failed

let delete_cached_origin t ~now ~origin_id =
  let deleted = ref 0 in
  Array.iteri
    (fun i port ->
      if not port.declared_dead then begin
        let sw = Deployment.switch t.deployment i in
        List.iter
          (fun (e : Tcam.entry) ->
            (* membership in the entry's full origin set, not just its
               primary: a merged entry standing for several policy rules
               must be deleted when ANY of them changes *)
            if List.mem origin_id (Switch.origins_of_cache_rule sw e.Tcam.rule.Rule.id)
            then begin
              incr deleted;
              send_reliable t i ~now
                (Message.Flow_mod
                   {
                     Message.command = Message.Delete;
                     bank = Message.Cache;
                     rule = e.Tcam.rule;
                     idle_timeout = None;
                     hard_timeout = None;
                   })
            end)
          (Tcam.entries (Switch.cache sw))
      end)
    t.ports;
  !deleted

(* A policy change driven through the control plane: the deployment
   re-partitions and reinstalls its tables, and every cache entry spliced
   from a changed rule is deleted with reliable flow-mods — strict
   consistency that survives lossy channels and failovers racing the
   deletions. *)
let update_policy t ~now ?(strict = true) policy =
  let old_policy = Deployment.policy t.deployment in
  let changed = Deployment.changed_rule_ids ~old_policy policy in
  journal_entry t ~now (Journal.Policy_update { rules = Classifier.rules policy; strict });
  t.deployment <- Deployment.update_policy ~flush:false t.deployment ~now policy;
  Telemetry.incr m_policy_updates;
  if strict then
    List.iter (fun id -> ignore (delete_cached_origin t ~now ~origin_id:id)) changed;
  record t ~now "policy updated: %d rules changed%s" (List.length changed)
    (if strict then ", strict deletions sent" else "")

let control_frames t =
  Array.fold_left
    (fun acc p -> acc + Channel.frames_carried p.to_switch + Channel.frames_carried p.to_controller)
    0 t.ports

let control_bytes t =
  Array.fold_left
    (fun acc p -> acc + Channel.bytes_carried p.to_switch + Channel.bytes_carried p.to_controller)
    0 t.ports

let stats t =
  Array.fold_left
    (fun acc p ->
      let add (s : Channel.stats) acc =
        {
          acc with
          dropped = acc.dropped + s.Channel.dropped;
          duplicated = acc.duplicated + s.Channel.duplicated;
          corrupted = acc.corrupted + s.Channel.corrupted;
          reordered = acc.reordered + s.Channel.reordered;
          decode_errors = acc.decode_errors + s.Channel.decode_errors;
        }
      in
      add (Channel.stats p.to_switch) (add (Channel.stats p.to_controller) acc))
    { dropped = 0; duplicated = 0; corrupted = 0; reordered = 0; decode_errors = 0;
      link_dropped = t.link_dropped }
    t.ports


let reset_stats t =
  t.retransmissions <- 0;
  t.giveups <- 0;
  t.cancelled <- 0;
  t.link_dropped <- 0;
  t.degraded_handled <- 0L;
  Array.iter
    (fun p ->
      Channel.reset_stats p.to_switch;
      Channel.reset_stats p.to_controller)
    t.ports

let retransmissions t = t.retransmissions
let giveups t = t.giveups
let cancelled t = t.cancelled
let pending_requests t = Hashtbl.length t.pending

let in_flight t =
  Array.fold_left
    (fun acc p -> acc + Channel.pending p.to_switch + Channel.pending p.to_controller)
    0 t.ports
let degraded_handled t = t.degraded_handled
let fault_log t = List.rev t.log

(* Test hook: make a switch stop responding (device death). *)
let kill_switch t i = t.ports.(i).alive <- false

(* Test hook: enqueue a message on the switch->controller channel as if
   the device had sent it (exercises e.g. the degraded packet-in path). *)
let inject_packet_in t ~now i msg =
  Channel.send t.ports.(i).to_controller ~now ~xid:0 msg

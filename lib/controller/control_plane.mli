(** The controller's runtime control plane.

    Wraps a {!Deployment} with per-switch {!Channel}s and drives the
    live duties the paper gives the DIFANE controller beyond initial rule
    placement:

    - {b liveness}: periodic echo requests; a switch that misses enough
      replies is declared failed, triggering authority failover;
    - {b statistics}: periodic cache-bank stats polling, aggregated back
      to {e original policy rule ids} so per-rule counters survive
      splicing and eviction (the transparency property);
    - {b cache management}: explicit deletion of cache entries by origin
      rule (used by strict policy updates);
    - {b reliability}: every state-changing request (flow-mod, barrier,
      partition transfer) is xid-tracked and retransmitted with
      exponential backoff until the switch acknowledges it.  Paired with
      the switch side's per-xid idempotency, installs converge over
      channels that drop, duplicate, corrupt and reorder frames;
    - {b recovery}: scheduled {!Fault.event}s (crash/restart, link flap)
      are applied during {!tick}; a restarted switch is resynced from
      scratch and, if failover had demoted it, rejoins the authority
      pool.

    All traffic crosses the channels encoded, so the byte/frame counters
    here are the control-plane overhead of the deployment. *)

type t

type config = {
  channel_latency : float;  (** one-way controller↔switch latency *)
  echo_interval : float;
  echo_miss_limit : int;  (** missed echoes before a switch is declared dead *)
  stats_interval : float;
  rebalance_interval : float option;
      (** when set, the controller periodically re-places partitions on
          the authorities using the measured per-partition miss load
          (paper §5's load rebalancing, automated) *)
  retx_timeout : float;  (** first retransmission after this long unacked *)
  retx_backoff : float;  (** interval multiplier per retransmission *)
  retx_limit : int;  (** retransmissions before giving a request up *)
  adaptive : bool;
      (** close the loop: instead of the legacy whole-partition
          re-placement, each [rebalance_interval] window runs the hotspot
          detector, and a persistent hotspot triggers a staged, journaled
          sub-region migration (re-cut the hot region, move the split-off
          half to the least-loaded authority).  Default [false] — the
          legacy behaviour is untouched. *)
  hotspot_threshold : float;
      (** an authority is hot in a window when its miss load exceeds this
          multiple of fair share (> 1.0; default 2.0) *)
  hotspot_window : int;
      (** consecutive hot windows before a migration triggers (default 3) *)
  migration_step : float;
      (** seconds between migration stages (install → flip → commit) —
          long enough for the previous stage's reliable installs to be
          acknowledged (default 0.05) *)
}

val default_config : config
(** 1 ms channels, 1 s echoes, 3 misses, 5 s stats, no auto-rebalance,
    retransmit after 100 ms doubling up to 6 attempts; adaptive
    rebalancing off (threshold 2.0, window 3, 50 ms stages when on). *)

val rebalances : t -> int
(** Automatic rebalances performed so far. *)

val migration_active : t -> bool
(** A staged migration is in flight (begun, not yet committed/aborted).
    The cluster defers snapshot compaction while true — the compacted
    history must not straddle an unresolved migration. *)

val migrations_started : t -> int
val migrations_committed : t -> int
val migrations_aborted : t -> int

val rules_moved : t -> int
(** Authority-table rules shipped to migration destinations so far. *)

val finish_inherited_migration :
  t -> now:float -> Journal.migration -> committed:bool -> unit
(** Takeover resolution: the previous leader crashed mid-migration and
    journal replay found stage [committed = false] (installed, not
    flipped — roll back) or [committed = true] (flipped — finish the
    retirement).  Journals the resolution through this plane's fenced
    appender and scrubs the adopted physical switches; the model side was
    already resolved during replay.  Called by {!Cluster.elect}. *)

val create :
  ?config:config ->
  ?faults:Fault.plan ->
  ?epoch:int ->
  ?journal:(at:float -> Journal.entry -> unit) ->
  ?channel_offset:int ->
  ?demoted:int list ->
  ?presumed_dead:int list ->
  ?next_mid:int ->
  Deployment.t ->
  t
(** With [faults], every channel gets its own deterministic fault stream
    from the plan (switch [i]'s controller→switch channel is fault
    channel [channel_offset + 2i], the reverse direction
    [channel_offset + 2i + 1]) and the plan's scheduled events fire
    during {!tick} (controller crash/restart events are ignored — they
    are the {!Cluster}'s business).

    The remaining options serve replicated controllers:
    - [epoch] (default 0 = unfenced) is stamped on every outgoing frame;
    - [journal] receives a {!Journal.entry} for every state-changing
      decision (liveness verdicts, failovers, restorations, policy
      updates, rebalances) — the cluster passes a fenced appender;
    - [demoted] and [presumed_dead] seed the failover bookkeeping when a
      standby takes over from a rebuilt deployment: [presumed_dead]
      switches start declared-dead (the echo machinery keeps probing
      them, so a live one recovers), [demoted] ones rejoin the authority
      pool when they answer again;
    - [next_mid] seeds migration-id allocation above every mid the
      journal already holds, keeping mids unique across takeovers. *)

val epoch : t -> int

val deposed : t -> bool
(** A reply frame carried an epoch above our own: a newer master exists.
    A deposed control plane stops mastering — {!tick} only drains
    channels (in-flight frames still deliver and get fenced switch-side),
    sends nothing, and runs no failure detection. *)

val demoted_authorities : t -> int list
(** Authorities failed over away from and not yet restored (sorted) —
    with {!failed_switches}, the state a standby needs to seed
    [demoted]/[presumed_dead] at takeover. *)

val halt : t -> now:float -> unit
(** The controller process stopped (crash): drop every pending request
    and stop mastering, exactly like being deposed — except nothing was
    learned from the network.  Frames already on the wire still deliver
    during subsequent {!tick}s (the cluster keeps ticking a halted
    control plane as pure transport). *)

val deployment : t -> Deployment.t
(** The current deployment (changes after failover). *)

val push_deployment : t -> now:float -> unit
(** Transmit the deployment's entire configuration over the control
    channels as encoded messages: every switch gets its partition rules
    as staged flow-mods closed by a barrier, and each authority replica
    gets its tables as [Install_partition] transfers.  The switches apply
    everything as the frames arrive (during subsequent {!tick}s).  This
    is the message-driven equivalent of [Deployment.build]'s direct
    installation — pair it with [Deployment.build ~install:false].  All
    of it is sent reliably (tracked + retransmitted). *)

val tick : t -> now:float -> unit
(** Advance the control plane to [now]: fire due fault events, emit due
    echoes and stats requests, deliver due frames in both directions,
    process replies, run failure detection (possibly failing over
    authorities), and retransmit unacknowledged requests.  Call it
    periodically from the simulation loop; it is idempotent within a
    tick period. *)

val rule_counters : t -> (int * int64) list
(** Packets per original policy rule id, as of the last stats
    collection, aggregated over every switch's cache bank. *)

val failed_switches : t -> int list
(** Switches declared dead so far (in failure order). *)

val update_policy : t -> now:float -> ?strict:bool -> Classifier.t -> unit
(** Install a new policy: the deployment re-partitions and the tables
    move in place; with [strict] (default) every cache entry spliced
    from a changed rule is then deleted via reliable flow-mods, so the
    strict-consistency guarantee holds even when the deletions race a
    lossy channel or an authority failover. *)

val delete_cached_origin : t -> now:float -> origin_id:int -> int
(** Send cache-bank deletions for every cached piece spliced from this
    policy rule, across all switches; returns entries deleted.  This is
    the targeted invalidation used by strict policy updates. *)

val control_frames : t -> int
val control_bytes : t -> int
(** Total control-plane traffic so far, both directions. *)

(** {1 Faults and reliability} *)

type stats = {
  dropped : int;  (** frames the fault injector swallowed *)
  duplicated : int;
  corrupted : int;
  reordered : int;
  decode_errors : int;  (** frames discarded at decode (corruption) *)
  link_dropped : int;  (** frames killed by an administratively-down link *)
}

val stats : t -> stats
(** Loss counters aggregated over every channel in both directions.
    Every underlying increment also bumps the process-wide registry
    ([channel_*], [ctrl_*]), so {!Telemetry.snapshot} agrees. *)

val reset_stats : t -> unit
(** Zero this control plane's loss, retransmission and degraded-mode
    counters, including its channels' (registry totals are process-wide
    and unaffected). *)

val retransmissions : t -> int
val giveups : t -> int
(** Requests abandoned after [retx_limit] retransmissions. *)

val cancelled : t -> int
(** In-flight requests dropped because their switch was declared dead. *)

val pending_requests : t -> int
(** Requests still awaiting acknowledgement — 0 once installs converge. *)

val in_flight : t -> int
(** Frames sitting on this control plane's channels in either direction
    (sent but not yet polled). *)

val degraded_handled : t -> int64
(** Packet-in misses the controller answered NOX-style because every
    replica of the packet's partition was dead (degraded mode). *)

val fault_log : t -> (float * string) list
(** Timestamped record of fault events, failovers, give-ups and
    recoveries, in time order — the replayable event sequence a seeded
    run reproduces exactly. *)

val crash_switch : t -> now:float -> int -> unit
(** The device dies losing all state ({!Switch.reset}); tunnelled misses
    to it start failing immediately.  Failure detection will declare it
    dead after [echo_miss_limit] missed echoes (triggering authority
    failover) unless it restarts first. *)

val restart_switch : t -> now:float -> int -> unit
(** The device comes back blank: liveness state clears, it rejoins the
    authority pool if failover had demoted it, and the controller
    re-pushes its whole configuration reliably (state resync). *)

val set_link : t -> now:float -> int -> bool -> unit
(** Administratively flap the control link: while down, frames already
    in flight and new sends in both directions are dropped (and
    counted); the data plane is unaffected. *)

val kill_switch : t -> int -> unit
(** Test hook: the device stops responding to control messages (its
    data plane may keep running on stale state).  Failure detection will
    notice after [echo_miss_limit] missed echoes. *)

val inject_packet_in : t -> now:float -> int -> Message.t -> unit
(** Test hook: enqueue a message on switch [i]'s switch→controller
    channel as if the device had sent it (used to exercise the degraded
    packet-in path without a full simulation). *)

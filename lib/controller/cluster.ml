let log_src = Logs.Src.create "difane.cluster" ~doc:"DIFANE controller-cluster events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  controllers : int;
  heartbeat_interval : float;
  heartbeat_miss_limit : int;
  snapshot_every : int;
  cp : Control_plane.config;
}

let default_config =
  {
    controllers = 3;
    heartbeat_interval = 0.15;
    heartbeat_miss_limit = 3;
    snapshot_every = 64;
    cp = Control_plane.default_config;
  }

type replica = {
  rid : int;
  mutable up : bool;
  mutable isolated : bool; (* partitioned away from the other controllers *)
  mutable last_heard : float; (* last current-epoch heartbeat received *)
}

type t = {
  config : config;
  faults : Fault.plan option; (* events stripped: the cluster applies them *)
  dconfig : Deployment.config;
  topology : Topology.t;
  schema : Schema.t;
  journal : Journal.t;
  epoch_cell : int ref; (* the cluster-wide current epoch *)
  fenced_appends : int ref; (* journal writes refused from stale leaders *)
  replicas : replica array;
  hb : Channel.t option array array; (* [i].(j): heartbeat channel i -> j *)
  mutable last_hb : float;
  mutable leader_ : int;
  mutable cp : Control_plane.t; (* the current leader's control plane *)
  mutable retired_cps : Control_plane.t list;
      (* previous masters, ticked as transport until their wires drain *)
  mutable events : Fault.event list; (* future events, time order *)
  crashed : (int, unit) Hashtbl.t; (* physically-down switches *)
  links_down : (int, unit) Hashtbl.t;
  mutable leader_lost_at : float option;
  mutable takeover_latencies : float list; (* reverse order *)
  mutable replayed : int; (* journal entries replayed across takeovers *)
  mutable snapshots : int;
  mutable log : (float * string) list; (* reverse order *)
  nswitches : int;
}

(* Registry mirrors for the replication layer, plus a gauge for the
   current epoch so a snapshot shows where mastership stands. *)
let m_elections = Telemetry.counter "cluster_elections"
let m_snapshots = Telemetry.counter "cluster_snapshots"
let m_fenced_appends = Telemetry.counter "cluster_fenced_appends"
let m_replayed = Telemetry.counter "cluster_entries_replayed"
let g_epoch = Telemetry.gauge "cluster_epoch"

let record t ~now fmt =
  Printf.ksprintf
    (fun s ->
      t.log <- (now, s) :: t.log;
      Telemetry.Trace.event ~at:now ~name:"cluster" s;
      Log.info (fun m -> m "t=%.3f %s" now s))
    fmt

(* Journal writes are fenced like control frames: an appender minted for
   epoch [e] only writes while [e] is still the cluster epoch, so a
   not-yet-deposed old master cannot corrupt the log a standby will
   replay. *)
let appender ~journal ~epoch_cell ~fenced for_epoch ~at entry =
  if !epoch_cell = for_epoch then ignore (Journal.append journal ~at entry)
  else begin
    incr fenced;
    Telemetry.incr m_fenced_appends
  end

let switch_channel_span t = 2 * t.nswitches

let stripped_faults t =
  Option.map (fun p -> { p with Fault.events = [] }) t.faults

let create ?(config = default_config) ?faults ?(dconfig = Deployment.default_config)
    ~policy ~topology ~authority_ids () =
  if config.controllers < 1 then invalid_arg "Cluster.create: controllers < 1";
  let schema = Classifier.schema policy in
  let n = Topology.nodes topology in
  let journal = Journal.create () in
  let epoch_cell = ref 1 in
  Telemetry.set g_epoch 1.;
  let fenced = ref 0 in
  ignore (Journal.append journal ~at:0. (Journal.Epoch { epoch = 1; leader = 0 }));
  ignore
    (Journal.append journal ~at:0.
       (Journal.Build { policy = Classifier.rules policy; authority_ids }));
  let deployment =
    Deployment.build ~config:dconfig ~install:false ~policy ~topology ~authority_ids ()
  in
  let faults_no_events = Option.map (fun p -> { p with Fault.events = [] }) faults in
  let cp =
    Control_plane.create ~config:config.cp ?faults:faults_no_events ~epoch:1
      ~journal:(appender ~journal ~epoch_cell ~fenced 1)
      ~channel_offset:0 deployment
  in
  let nc = config.controllers in
  (* heartbeat fault-channel ids live above every control-plane range:
     controller c's switch channels occupy [2nc, 2nc + 2n) *)
  let hb_base = 2 * n * nc in
  let hb =
    Array.init nc (fun i ->
        Array.init nc (fun j ->
            if i = j then None
            else
              let fault =
                Option.map
                  (fun p -> Fault.injector p ~channel:(hb_base + (i * nc) + j))
                  faults
              in
              Some (Channel.create ?fault schema ~latency:config.cp.Control_plane.channel_latency)))
  in
  {
    config;
    faults;
    dconfig;
    topology;
    schema;
    journal;
    epoch_cell;
    fenced_appends = fenced;
    replicas =
      Array.init nc (fun rid -> { rid; up = true; isolated = false; last_heard = 0. });
    hb;
    last_hb = neg_infinity;
    leader_ = 0;
    cp;
    retired_cps = [];
    events = (match faults with None -> [] | Some p -> p.Fault.events);
    crashed = Hashtbl.create 4;
    links_down = Hashtbl.create 4;
    leader_lost_at = None;
    takeover_latencies = [];
    replayed = 0;
    snapshots = 0;
    log = [];
    nswitches = n;
  }

let leader t = t.leader_
let epoch t = !(t.epoch_cell)
let leader_cp t = t.cp
let deployment t = Control_plane.deployment t.cp
let journal t = t.journal
let takeovers t = List.length t.takeover_latencies
let takeover_latencies t = List.rev t.takeover_latencies
let entries_replayed t = t.replayed
let snapshots t = t.snapshots
let fenced_appends t = !(t.fenced_appends)
let controller_up t c = t.replicas.(c).up
let cluster_log t = List.rev t.log

let all_cps t = t.cp :: t.retired_cps

let retransmissions t =
  List.fold_left (fun acc cp -> acc + Control_plane.retransmissions cp) 0 (all_cps t)

let giveups t = List.fold_left (fun acc cp -> acc + Control_plane.giveups cp) 0 (all_cps t)

let pending_requests t = Control_plane.pending_requests t.cp

let stats t =
  List.fold_left
    (fun (acc : Control_plane.stats) cp ->
      let s = Control_plane.stats cp in
      {
        Control_plane.dropped = acc.Control_plane.dropped + s.Control_plane.dropped;
        duplicated = acc.Control_plane.duplicated + s.Control_plane.duplicated;
        corrupted = acc.Control_plane.corrupted + s.Control_plane.corrupted;
        reordered = acc.Control_plane.reordered + s.Control_plane.reordered;
        decode_errors = acc.Control_plane.decode_errors + s.Control_plane.decode_errors;
        link_dropped = acc.Control_plane.link_dropped + s.Control_plane.link_dropped;
      })
    {
      Control_plane.dropped = 0;
      duplicated = 0;
      corrupted = 0;
      reordered = 0;
      decode_errors = 0;
      link_dropped = 0;
    }
    (all_cps t)

let reset_stats t = List.iter Control_plane.reset_stats (all_cps t)

let stale_rejected t =
  Array.fold_left
    (fun acc sw -> acc + Switch.stale_rejected sw)
    0
    (Deployment.switches (deployment t))

let stale_accepted t =
  Array.fold_left
    (fun acc sw -> acc + Switch.stale_accepted sw)
    0
    (Deployment.switches (deployment t))

(* The split-brain audit: after any run, no switch bank may hold the same
   rule (or partition table) twice.  Fencing plus xid dedup plus
   replace-by-id banks guarantee it; the E-HA experiment asserts it. *)
let duplicate_installs t =
  let dups ids = List.length ids - List.length (List.sort_uniq Int.compare ids) in
  Array.fold_left
    (fun acc sw ->
      let partition = List.map (fun (r : Rule.t) -> r.Rule.id) (Switch.partition_rules sw) in
      let tables =
        List.map (fun (p : Partitioner.partition) -> p.Partitioner.pid)
          (Switch.authority_partitions sw)
      in
      let cache =
        List.map (fun (e : Tcam.entry) -> e.Tcam.rule.Rule.id)
          (Tcam.entries (Switch.cache sw))
      in
      acc + dups partition + dups tables + dups cache)
    0
    (Deployment.switches (deployment t))

let push_deployment t ~now = Control_plane.push_deployment t.cp ~now

let update_policy t ~now ?strict policy =
  Control_plane.update_policy t.cp ~now ?strict policy

let isolate t ~now c partitioned =
  t.replicas.(c).isolated <- partitioned;
  record t ~now "controller %d %s the control network" c
    (if partitioned then "partitioned from" else "rejoined");
  if partitioned && c = t.leader_ then t.leader_lost_at <- Some now

(* ---- takeover: rebuild by replay, fence the old master ---- *)

(* The standby reads the journal back through its own codec (proving the
   bytes round-trip) and replays every entry through the same deployment
   code the leader ran, over scratch switches.  The result is the model
   it adopts the physical network into. *)
let rebuild t ~now =
  let decoded =
    match Journal.decode t.schema (Journal.encode t.journal) with
    | Ok j -> j
    | Error e -> invalid_arg ("Cluster: journal failed to decode at takeover: " ^ e)
  in
  let model = ref None in
  let demoted = ref [] in
  let dead = ref [] in
  let replayed = ref 0 in
  (* a migration whose begin was replayed but whose commit/abort was not:
     the crashed leader left it in flight — the new leader must resolve *)
  let inflight = ref None in
  (* mids must stay unique across takeovers: the new leader allocates
     above everything the journal has seen *)
  let next_mid = ref 0 in
  Journal.replay decoded (fun entry ->
      incr replayed;
      match entry with
      | Journal.Build { policy; authority_ids } ->
          model :=
            Some
              (Deployment.build ~config:t.dconfig
                 ~policy:(Classifier.create t.schema policy)
                 ~topology:t.topology ~authority_ids ())
      | Journal.Policy_update { rules; strict = _ } ->
          model :=
            Option.map
              (fun m ->
                Deployment.update_policy ~flush:false m ~now
                  (Classifier.create t.schema rules))
              !model
      | Journal.Fail_authority s ->
          model := Option.map (fun m -> Deployment.fail_authority m s) !model;
          demoted := s :: !demoted
      | Journal.Restore_authority s ->
          model := Option.map (fun m -> Deployment.restore_authority m s) !model;
          demoted := List.filter (fun x -> x <> s) !demoted
      | Journal.Declared_dead s ->
          Option.iter (fun m -> Deployment.mark_unreachable m s) !model;
          dead := s :: !dead
      | Journal.Recovered s ->
          Option.iter (fun m -> Deployment.mark_reachable m s) !model;
          dead := List.filter (fun x -> x <> s) !dead
      | Journal.Rebalance loads ->
          model := Option.map (fun m -> Deployment.rebalance m ~loads) !model
      | Journal.Migration_begin m ->
          model := Option.map (fun md -> Deployment.apply_split md m) !model;
          inflight := Some (m, `Installed);
          next_mid := max !next_mid (m.Journal.mid + 1)
      | Journal.Migration_flip _ ->
          Option.iter Deployment.flip_split !model;
          inflight :=
            (match !inflight with Some (m, _) -> Some (m, `Flipped) | None -> None)
      | Journal.Migration_commit _ ->
          (match !inflight with
          | Some (m, _) ->
              Option.iter
                (fun md -> ignore (Deployment.scrub_split md ~now m ~aborted:false))
                !model
          | None -> ());
          inflight := None
      | Journal.Migration_abort _ ->
          (match !inflight with
          | Some (m, _) ->
              model := Option.map (fun md -> Deployment.unsplit md m) !model;
              Option.iter
                (fun md -> ignore (Deployment.scrub_split md ~now m ~aborted:true))
                !model
          | None -> ());
          inflight := None
      | Journal.Partition_layout { regions; replicas } ->
          model :=
            Option.map (fun md -> Deployment.apply_layout md ~regions ~replicas) !model
      | Journal.Epoch _ -> ());
  t.replayed <- t.replayed + !replayed;
  Telemetry.add m_replayed !replayed;
  match !model with
  | None -> invalid_arg "Cluster: journal holds no Build entry"
  | Some model ->
      ( !replayed,
        model,
        List.sort Int.compare !demoted,
        List.rev !dead,
        !inflight,
        !next_mid )

let elect t ~now ~detector =
  let candidates =
    Array.to_list t.replicas
    |> List.filter_map (fun r -> if r.up && not r.isolated then Some r.rid else None)
  in
  match candidates with
  | [] -> record t ~now "controller %d found no live candidate: cluster is headless" detector
  | winner :: _ ->
      if winner = t.leader_ && t.replicas.(winner).up
         && (not t.replicas.(winner).isolated)
         && not (Control_plane.deposed t.cp)
      then begin
        (* false detection (lossy heartbeats): the leader is fine *)
        t.replicas.(detector).last_heard <- now;
        record t ~now "controller %d suspected the leader wrongly; backing off" detector
      end
      else begin
        let new_epoch = !(t.epoch_cell) + 1 in
        t.epoch_cell := new_epoch;
        Telemetry.incr m_elections;
        Telemetry.set g_epoch (float_of_int new_epoch);
        ignore
          (Journal.append t.journal ~at:now
             (Journal.Epoch { epoch = new_epoch; leader = winner }));
        let replayed, model, demoted, dead, inflight, next_mid = rebuild t ~now in
        (* a migration the crashed leader left unresolved: roll it back if
           the flip never happened (the sub-regions carry no traffic yet),
           finish the retirement if it did (they are the serving path).
           Resolve the scratch model here; the journal entry and the
           physical scrub go through the new control plane below. *)
        let model, resolution =
          match inflight with
          | None -> (model, None)
          | Some (m, `Installed) ->
              let model = Deployment.unsplit model m in
              ignore (Deployment.scrub_split model ~now m ~aborted:true);
              (model, Some (m, false))
          | Some (m, `Flipped) ->
              ignore (Deployment.scrub_split model ~now m ~aborted:false);
              (model, Some (m, true))
        in
        let network = Control_plane.deployment t.cp in
        let d = Deployment.adopt ~model ~network in
        let cp' =
          Control_plane.create ~config:t.config.cp ?faults:(stripped_faults t)
            ~epoch:new_epoch
            ~journal:
              (appender ~journal:t.journal ~epoch_cell:t.epoch_cell
                 ~fenced:t.fenced_appends new_epoch)
            ~channel_offset:(switch_channel_span t * winner)
            ~demoted ~presumed_dead:dead ~next_mid d
        in
        (* the new master inherits the physical truth about devices and
           links the cluster has been tracking *)
        Hashtbl.iter (fun s () -> Control_plane.kill_switch cp' s) t.crashed;
        Hashtbl.iter (fun s () -> Control_plane.set_link cp' ~now s false) t.links_down;
        Option.iter
          (fun (m, committed) ->
            Control_plane.finish_inherited_migration cp' ~now m ~committed)
          resolution;
        (* the old master — crashed (already halted) or merely cut off and
           still mastering until the switches fence it — stays around as
           transport *)
        t.retired_cps <- t.cp :: t.retired_cps;
        t.leader_ <- winner;
        t.cp <- cp';
        Array.iter (fun r -> r.last_heard <- now) t.replicas;
        let latency =
          match t.leader_lost_at with Some lost -> now -. lost | None -> 0.
        in
        t.leader_lost_at <- None;
        t.takeover_latencies <- latency :: t.takeover_latencies;
        Telemetry.Trace.span ~at:(now -. latency) ~dur:latency ~name:"takeover"
          (Printf.sprintf "controller %d seated at epoch %d" winner new_epoch);
        record t ~now
          "controller %d elected leader at epoch %d (detector %d, %d entries replayed, \
           takeover %.3fs)"
          winner new_epoch detector replayed latency;
        (* converge the network onto the rebuilt deployment: reliable,
           idempotent re-push *)
        Control_plane.push_deployment cp' ~now
      end

(* ---- scheduled fault events (the cluster owns the schedule) ---- *)

let apply_event t ~now = function
  | Fault.Crash { switch; _ } ->
      Hashtbl.replace t.crashed switch ();
      Control_plane.crash_switch t.cp ~now switch;
      List.iter (fun cp -> Control_plane.kill_switch cp switch) t.retired_cps
  | Fault.Restart { switch; _ } ->
      Hashtbl.remove t.crashed switch;
      if not (Control_plane.deposed t.cp) then Control_plane.restart_switch t.cp ~now switch
      else
        record t ~now "switch %d restarted with no live master; resync waits for a leader"
          switch
  | Fault.Link_down { switch; _ } ->
      Hashtbl.replace t.links_down switch ();
      Control_plane.set_link t.cp ~now switch false
  | Fault.Link_up { switch; _ } ->
      Hashtbl.remove t.links_down switch;
      Control_plane.set_link t.cp ~now switch true
  | Fault.Controller_crash { controller; _ } ->
      t.replicas.(controller).up <- false;
      record t ~now "controller %d crashed" controller;
      if controller = t.leader_ then begin
        t.leader_lost_at <- Some now;
        Control_plane.halt t.cp ~now
      end
  | Fault.Controller_restart { controller; _ } ->
      t.replicas.(controller).up <- true;
      t.replicas.(controller).last_heard <- now;
      record t ~now "controller %d restarted as standby" controller

let apply_events t ~now =
  let rec go = function
    | ev :: rest when Fault.event_time ev <= now ->
        apply_event t ~now ev;
        go rest
    | rest -> t.events <- rest
  in
  go t.events

(* ---- heartbeats and failure detection ---- *)

let heartbeats t ~now =
  (if now -. t.last_hb >= t.config.heartbeat_interval then begin
     t.last_hb <- now;
     let l = t.replicas.(t.leader_) in
     if l.up && (not l.isolated) && not (Control_plane.deposed t.cp) then
       Array.iter
         (fun r ->
           if r.rid <> t.leader_ then
             match t.hb.(t.leader_).(r.rid) with
             | Some ch ->
                 Channel.send ch ~now ~xid:0 ~epoch:!(t.epoch_cell)
                   (Message.Echo_request t.leader_)
             | None -> ())
         t.replicas
   end);
  (* drain every heartbeat channel; only a live, connected replica hears *)
  Array.iteri
    (fun i row ->
      Array.iteri
        (fun j ch ->
          match ch with
          | None -> ()
          | Some ch ->
              let frames = Channel.poll ch ~now in
              let receiver = t.replicas.(j) in
              if receiver.up && (not receiver.isolated) && not t.replicas.(i).isolated
              then
                List.iter
                  (fun (_, ep, msg) ->
                    match msg with
                    | Message.Echo_request _ when ep = !(t.epoch_cell) ->
                        receiver.last_heard <- now
                    | _ -> ())
                  frames)
        row)
    t.hb

let detect t ~now =
  let timeout =
    float_of_int t.config.heartbeat_miss_limit *. t.config.heartbeat_interval
  in
  let detector =
    Array.to_list t.replicas
    |> List.find_opt (fun r ->
           r.rid <> t.leader_ && r.up && (not r.isolated)
           && now -. r.last_heard > timeout)
  in
  match detector with
  | Some r ->
      record t ~now "controller %d missed heartbeats for %.3fs; starting election" r.rid
        (now -. r.last_heard);
      elect t ~now ~detector:r.rid
  | None -> ()

(* ---- snapshots ---- *)

(* Compact the journal to a summary of the leader's current state: the
   current policy and full authority pool, replayed failovers and
   outstanding death verdicts, the exact partition layout and placement,
   closed by the current epoch.  The [Partition_layout] entry is what
   keeps adaptive-migration history compactable: a replayed [Build] alone
   cannot reproduce a re-cut layout, so the snapshot records the regions
   and replica lists verbatim.  Rebalance/migration step history is
   dropped — the layout entry already captures its outcome. *)
let snapshot t ~now =
  let d = Control_plane.deployment t.cp in
  let demoted = Control_plane.demoted_authorities t.cp in
  let dead = Control_plane.failed_switches t.cp in
  let pool = List.sort_uniq Int.compare (Deployment.authority_ids d @ demoted) in
  let layout =
    Journal.Partition_layout
      {
        regions =
          List.map
            (fun (p : Partitioner.partition) -> (p.Partitioner.pid, p.Partitioner.region))
            (Deployment.partitioner d).Partitioner.partitions;
        replicas = Assignment.all_replicas (Deployment.assignment d);
      }
  in
  let entries =
    (Journal.Build { policy = Classifier.rules (Deployment.policy d); authority_ids = pool }
    :: List.map (fun s -> Journal.Fail_authority s) demoted)
    @ List.map (fun s -> Journal.Declared_dead s) dead
    @ [ layout; Journal.Epoch { epoch = !(t.epoch_cell); leader = t.leader_ } ]
  in
  Journal.snapshot t.journal ~at:now entries;
  t.snapshots <- t.snapshots + 1;
  Telemetry.incr m_snapshots;
  record t ~now "journal snapshot: %d entries summarise the history" (List.length entries)

let tick t ~now =
  apply_events t ~now;
  heartbeats t ~now;
  detect t ~now;
  Control_plane.tick t.cp ~now;
  List.iter (fun cp -> Control_plane.tick cp ~now) t.retired_cps;
  if
    Journal.tail_length t.journal >= t.config.snapshot_every
    && t.replicas.(t.leader_).up
    && (not (Control_plane.deposed t.cp))
    && not (Control_plane.migration_active t.cp)
  then snapshot t ~now

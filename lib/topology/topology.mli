(** Network topologies.

    An undirected weighted graph of switches.  DIFANE uses it to pick
    authority switches, to compute the tunnelling paths of cache-miss
    packets, and to measure {e stretch} — the detour a miss packet takes
    through its authority switch relative to the direct path. *)

type t

type link = { src : int; dst : int; latency : float; bandwidth : float }
(** [latency] in seconds one-way, [bandwidth] in bits/second.  Links are
    symmetric. *)

val create : nodes:int -> link list -> t
(** @raise Invalid_argument on endpoints outside [0..nodes-1], self-loops,
    duplicate links, or a non-positive (or NaN) [bandwidth] — the field
    feeds {!serialization_delay}, so a link that cannot serialize a
    packet is a construction bug, not a runtime surprise. *)

val serialization_delay : link -> bits:int -> float
(** Seconds this link's transmitter needs to put [bits] on the wire —
    the per-hop service time of the congestion model's port queues.
    @raise Invalid_argument on negative [bits]. *)

val nodes : t -> int
val links : t -> link list
val degree : t -> int -> int
val neighbors : t -> int -> int list
val link_between : t -> int -> int -> link option
val is_connected : t -> bool

(** {1 Paths} *)

val shortest_path : t -> int -> int -> int list option
(** Minimum-latency path as a node list including both endpoints;
    [Some [v]] when [src = dst]; [None] when unreachable. *)

val path_latency : t -> int list -> float
(** Sum of link latencies along a node path.
    @raise Invalid_argument if consecutive nodes are not adjacent. *)

val distance : t -> int -> int -> float option
(** Latency of the shortest path. *)

val hop_count : t -> int -> int -> int option
(** Hops (links) on the minimum-latency path. *)

val all_distances : t -> int -> float array
(** Single-source latencies; [infinity] where unreachable. *)

val stretch : t -> src:int -> via:int -> dst:int -> float
(** [distance src via + distance via dst) / distance src dst] — the paper's
    stretch metric for a miss packet detouring through authority switch
    [via].  [1.0] when [via] is on a shortest path; [infinity] when
    unreachable; by convention 1.0 when [src = dst]. *)

(** {1 Generators}

    All generators take an explicit [rand] uniform-float source so that
    experiments are reproducible. *)

val line : int -> ?latency:float -> unit -> t
val star : int -> ?latency:float -> unit -> t
(** [star n] has hub [0] and [n-1] spokes. *)

val full_mesh : int -> ?latency:float -> unit -> t

val fat_tree : int -> t
(** The k-ary fat-tree of data centres ([k] even): [k²/4] core, [k²/2]
    aggregation, [k²/2] edge switches.  Nodes are numbered core first,
    then per-pod aggregation and edge. *)

val waxman :
  rand:(unit -> float) -> nodes:int -> ?alpha:float -> ?beta:float ->
  ?latency_scale:float -> unit -> t
(** Waxman random WAN: nodes placed uniformly in the unit square, edge
    probability [alpha * exp (-d / (beta * sqrt 2))], link latency
    proportional to Euclidean distance.  A spanning tree over nearest
    placed neighbours is added first so the result is always connected. *)

val campus : rand:(unit -> float) -> edge_switches:int -> unit -> t
(** Two-tier campus/enterprise network: 2 core switches (node 0,1), one
    distribution switch per 4 edge switches, edge switches dual-homed to
    their distribution pair where possible. *)

(** {1 Failure derivation} *)

val without_link : t -> int -> int -> t
(** The same topology minus the (undirected) link between two nodes;
    unchanged when no such link exists.  Node count is preserved. *)

val without_node : t -> int -> t
(** The same node set with every link touching the node removed — models
    a dead switch while keeping ids stable.
    @raise Invalid_argument if the node is out of range. *)

val pp : Format.formatter -> t -> unit

type link = { src : int; dst : int; latency : float; bandwidth : float }

type t = {
  n : int;
  links : link list;
  adj : (int * link) list array; (* neighbour, connecting link *)
}

let create ~nodes links =
  if nodes < 1 then invalid_arg "Topology.create: need at least one node";
  let adj = Array.make nodes [] in
  let seen = Hashtbl.create 16 in
  List.iter
    (fun l ->
      if l.src < 0 || l.src >= nodes || l.dst < 0 || l.dst >= nodes then
        invalid_arg "Topology.create: endpoint out of range";
      if l.src = l.dst then invalid_arg "Topology.create: self loop";
      if not (l.bandwidth > 0.) then
        invalid_arg "Topology.create: nonpositive bandwidth";
      let key = (min l.src l.dst, max l.src l.dst) in
      if Hashtbl.mem seen key then invalid_arg "Topology.create: duplicate link";
      Hashtbl.add seen key ();
      adj.(l.src) <- (l.dst, l) :: adj.(l.src);
      adj.(l.dst) <- (l.src, l) :: adj.(l.dst))
    links;
  { n = nodes; links; adj }

let nodes t = t.n
let links t = t.links
let degree t v = List.length t.adj.(v)
let neighbors t v = List.map fst t.adj.(v)

let link_between t a b =
  List.find_opt (fun (v, _) -> v = b) t.adj.(a) |> Option.map snd

(* Dijkstra over latency with a simple leftist-ish pairing via sorted
   list insertion; fine for the network sizes simulated here. *)
module Pq = struct
  let create () = ref []

  let push q prio v =
    let rec go = function
      | [] -> [ (prio, v) ]
      | (p, x) :: rest -> if prio <= p then (prio, v) :: (p, x) :: rest else (p, x) :: go rest
    in
    q := go !q

  let pop q =
    match !q with
    | [] -> None
    | (p, v) :: rest ->
        q := rest;
        Some (p, v)
end

let dijkstra t src =
  if src < 0 || src >= t.n then invalid_arg "Topology: node out of range";
  let dist = Array.make t.n infinity in
  let prev = Array.make t.n (-1) in
  dist.(src) <- 0.;
  let q = Pq.create () in
  Pq.push q 0. src;
  let rec loop () =
    match Pq.pop q with
    | None -> ()
    | Some (d, u) ->
        if d <= dist.(u) then
          List.iter
            (fun (v, l) ->
              let nd = d +. l.latency in
              if nd < dist.(v) then begin
                dist.(v) <- nd;
                prev.(v) <- u;
                Pq.push q nd v
              end)
            t.adj.(u);
        loop ()
  in
  loop ();
  (dist, prev)

let all_distances t src = fst (dijkstra t src)

let shortest_path t src dst =
  if src < 0 || src >= t.n || dst < 0 || dst >= t.n then
    invalid_arg "Topology: node out of range";
  if src = dst then Some [ src ]
  else
    let dist, prev = dijkstra t src in
    if dist.(dst) = infinity then None
    else
      let rec build acc v = if v = src then src :: acc else build (v :: acc) prev.(v) in
      Some (build [] dst)

let serialization_delay (l : link) ~bits =
  if bits < 0 then invalid_arg "Topology.serialization_delay: negative bits";
  float_of_int bits /. l.bandwidth

let path_latency t path =
  let rec go acc = function
    | [] | [ _ ] -> acc
    | a :: (b :: _ as rest) -> (
        match link_between t a b with
        | None -> invalid_arg "Topology.path_latency: non-adjacent nodes"
        | Some l -> go (acc +. l.latency) rest)
  in
  go 0. path

let distance t src dst =
  if dst < 0 || dst >= t.n then invalid_arg "Topology: node out of range";
  let d = (all_distances t src).(dst) in
  if d = infinity then None else Some d

let hop_count t src dst = Option.map (fun p -> List.length p - 1) (shortest_path t src dst)

let is_connected t =
  let dist = all_distances t 0 in
  Array.for_all (fun d -> d < infinity) dist

let stretch t ~src ~via ~dst =
  if src = dst then 1.0
  else
    match (distance t src via, distance t via dst, distance t src dst) with
    | Some a, Some b, Some c when c > 0. -> (a +. b) /. c
    | Some _, Some _, Some _ -> 1.0
    | _ -> infinity

(* ---- generators ---- *)

let default_bw = 1e10

let mk_link ?(latency = 50e-6) src dst = { src; dst; latency; bandwidth = default_bw }

let line n ?(latency = 50e-6) () =
  create ~nodes:n (List.init (n - 1) (fun i -> mk_link ~latency i (i + 1)))

let star n ?(latency = 50e-6) () =
  create ~nodes:n (List.init (n - 1) (fun i -> mk_link ~latency 0 (i + 1)))

let full_mesh n ?(latency = 50e-6) () =
  let links = ref [] in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      links := mk_link ~latency i j :: !links
    done
  done;
  create ~nodes:n !links

let fat_tree k =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Topology.fat_tree: k must be even >= 2";
  let half = k / 2 in
  let cores = half * half in
  let aggs = k * half and edges = k * half in
  let n = cores + aggs + edges in
  let agg pod i = cores + (pod * half) + i in
  let edge pod i = cores + aggs + (pod * half) + i in
  let links = ref [] in
  for pod = 0 to k - 1 do
    for a = 0 to half - 1 do
      (* aggregation a of this pod connects to core group a *)
      for c = 0 to half - 1 do
        links := mk_link (agg pod a) ((a * half) + c) :: !links
      done;
      for e = 0 to half - 1 do
        links := mk_link (agg pod a) (edge pod e) :: !links
      done
    done
  done;
  create ~nodes:n !links

let waxman ~rand ~nodes:n ?(alpha = 0.4) ?(beta = 0.4) ?(latency_scale = 1e-3) () =
  if n < 2 then invalid_arg "Topology.waxman: need >= 2 nodes";
  let xs = Array.init n (fun _ -> (rand (), rand ())) in
  let dist i j =
    let xi, yi = xs.(i) and xj, yj = xs.(j) in
    Float.hypot (xi -. xj) (yi -. yj)
  in
  let links = ref [] in
  let connected = Hashtbl.create 16 in
  let add i j =
    let key = (min i j, max i j) in
    if not (Hashtbl.mem connected key) then begin
      Hashtbl.add connected key ();
      links := mk_link ~latency:(Float.max 10e-6 (dist i j *. latency_scale)) i j :: !links
    end
  in
  (* Spanning backbone: connect each node to its nearest already-placed
     node, guaranteeing connectivity. *)
  for i = 1 to n - 1 do
    let best = ref 0 in
    for j = 1 to i - 1 do
      if dist i j < dist i !best then best := j
    done;
    add i !best
  done;
  let l = Float.sqrt 2. in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let p = alpha *. Float.exp (-.dist i j /. (beta *. l)) in
      if rand () < p then add i j
    done
  done;
  create ~nodes:n !links

let campus ~rand ~edge_switches () =
  if edge_switches < 1 then invalid_arg "Topology.campus: need >= 1 edge switch";
  let dists = (edge_switches + 3) / 4 in
  let core0 = 0 and core1 = 1 in
  let dist_node i = 2 + i in
  let edge_node i = 2 + dists + i in
  let n = 2 + dists + edge_switches in
  let links = ref [ mk_link ~latency:20e-6 core0 core1 ] in
  for d = 0 to dists - 1 do
    links := mk_link ~latency:50e-6 (dist_node d) core0 :: !links;
    links := mk_link ~latency:50e-6 (dist_node d) core1 :: !links
  done;
  for e = 0 to edge_switches - 1 do
    let d = e / 4 in
    links := mk_link ~latency:100e-6 (edge_node e) (dist_node d) :: !links;
    (* dual-home to a second distribution switch when one exists *)
    if dists > 1 && rand () < 0.7 then begin
      let d2 = (d + 1) mod dists in
      links := mk_link ~latency:100e-6 (edge_node e) (dist_node d2) :: !links
    end
  done;
  create ~nodes:n !links

let without_link t a b =
  let keep l =
    not ((l.src = a && l.dst = b) || (l.src = b && l.dst = a))
  in
  create ~nodes:t.n (List.filter keep t.links)

let without_node t v =
  if v < 0 || v >= t.n then invalid_arg "Topology.without_node: out of range";
  create ~nodes:t.n (List.filter (fun l -> l.src <> v && l.dst <> v) t.links)

let pp ppf t =
  Format.fprintf ppf "@[<v>graph: %d nodes, %d links@]" t.n (List.length t.links)

type config = {
  cache_idle_timeout : float option;
  cache_hard_timeout : float option;
  cache_mode : [ `Spliced | `Microflow ];
  max_ttl : int;
}

let default_config =
  { cache_idle_timeout = Some 10.; cache_hard_timeout = None; cache_mode = `Spliced;
    max_ttl = 64 }

type drop_reason =
  | Ttl
  | Unmatched
  | Misconfigured
  | Unreachable
  | No_authority
  | Queue_full

type result = {
  action : Action.t;
  delivered : bool;
  drop_reason : drop_reason option;
  trace : int list;
  encapsulations : int;
  latency : float;
  marked : bool;
}

(* Mutable walk state: the packet's position, hop trace (reversed),
   remaining TTL, accumulated latency (propagation + queueing when the
   congestion model is on) and ECN mark. *)
type walk = {
  routing : Routing.t;
  congestion : Congestion.t option;
  mutable at : int;
  mutable rev_trace : int list;
  mutable ttl : int;
  mutable latency : float;
  mutable encaps : int;
  mutable marked : bool;
}

(* One hop: queue at the egress port of the current switch (finite
   buffers can shed the packet here), then pay propagation. *)
let hop w ~now next =
  match Topology.link_between (Routing.topology w.routing) w.at next with
  | None -> invalid_arg "Dataplane: next hop is not adjacent"
  | Some l -> (
      let queueing =
        match w.congestion with
        | None -> `Forward (0., false)
        | Some c -> Congestion.transit c ~now:(now +. w.latency) ~from:w.at l
      in
      match queueing with
      | `Drop -> `Dropped
      | `Forward (wait, marked) ->
          if marked then w.marked <- true;
          w.latency <- w.latency +. wait +. l.Topology.latency;
          w.at <- next;
          w.rev_trace <- next :: w.rev_trace;
          w.ttl <- w.ttl - 1;
          Ptrace.emit ~at:(now +. w.latency) Ptrace.Transit ~switch:next ~rule:(-1)
            ~aux:(if marked then 1 else 0);
          `Forwarded)

(* Carry an encapsulated packet to its tunnel endpoint.  Transit switches
   forward on the underlay tables only — no flow-table lookups. *)
let tunnel_to w ~now dst =
  w.encaps <- w.encaps + 1;
  let rec go () =
    if w.at = dst then `Arrived
    else if w.ttl <= 0 then `Ttl_exceeded
    else
      match Routing.next_hop w.routing ~from:w.at ~dst with
      | None -> `Unreachable
      | Some next -> (
          match hop w ~now next with `Dropped -> `Queue_full | `Forwarded -> go ())
  in
  go ()

let finish w ~action ~delivered ~drop_reason =
  {
    action;
    delivered;
    drop_reason;
    trace = List.rev w.rev_trace;
    encapsulations = w.encaps;
    latency = w.latency;
    marked = w.marked;
  }

let reason_code = function
  | Ttl -> Ptrace.drop_ttl
  | Unmatched -> Ptrace.drop_unmatched
  | Misconfigured -> Ptrace.drop_misconfigured
  | Unreachable -> Ptrace.drop_unreachable
  | No_authority -> Ptrace.drop_no_authority
  | Queue_full -> Ptrace.drop_queue_full

let dropped w ~now reason =
  Ptrace.emit ~at:(now +. w.latency) Ptrace.Drop ~switch:w.at ~rule:(-1)
    ~aux:(reason_code reason);
  finish w ~action:Action.Drop ~delivered:false ~drop_reason:(Some reason)

let delivered_at w ~now action =
  Ptrace.emit ~at:(now +. w.latency) Ptrace.Deliver ~switch:w.at ~rule:(-1) ~aux:0;
  finish w ~action ~delivered:true ~drop_reason:None

let deliver_action w ~now action =
  (* a forwarding action tunnels to the egress switch; anything else
     terminates where we stand — a matched [Drop] is a policy verdict,
     not a network drop, so [drop_reason] stays [None] *)
  match Action.egress action with
  | None -> delivered_at w ~now action
  | Some egress -> (
      if egress = w.at then delivered_at w ~now action
      else
        match tunnel_to w ~now egress with
        | `Arrived -> delivered_at w ~now action
        | `Ttl_exceeded -> dropped w ~now Ttl
        | `Unreachable -> dropped w ~now Unreachable
        | `Queue_full -> dropped w ~now Queue_full)

let packet ?(config = default_config) ?congestion ~routing ~switch ~now ~ingress header =
  let w =
    { routing; congestion; at = ingress; rev_trace = [ ingress ]; ttl = config.max_ttl;
      latency = 0.; encaps = 0; marked = false }
  in
  ignore (Ptrace.begin_packet now header);
  let ingress_sw = switch ingress in
  match Switch.process ingress_sw ~now header with
  | Switch.Local (action, _) -> deliver_action w ~now action
  | Switch.Unmatched -> dropped w ~now Unmatched
  | Switch.Misconfigured -> dropped w ~now Misconfigured
  | Switch.Tunnel authority -> (
      if authority = w.at then
        (* the ingress is the authority's neighbourless corner case: a
           partition rule pointing at self would be a controller bug *)
        dropped w ~now No_authority
      else
        match tunnel_to w ~now authority with
        | `Ttl_exceeded -> dropped w ~now Ttl
        | `Unreachable -> dropped w ~now Unreachable
        | `Queue_full -> dropped w ~now Queue_full
        | `Arrived -> (
            match Switch.serve_miss ~mode:config.cache_mode (switch authority) ~now header with
            | None -> dropped w ~now No_authority
            | Some { Switch.action; installs; _ } ->
                List.iter
                  (fun (r, meta) ->
                    ignore
                      (Switch.install_cache_meta
                         ?idle_timeout:config.cache_idle_timeout
                         ?hard_timeout:config.cache_hard_timeout ingress_sw ~now r
                         (Some meta)))
                  installs;
                (* batch boundary: see Aggregate.install — an eviction
                   during the batch may have broken a cover group *)
                ignore (Switch.drop_cover_orphans ingress_sw ~now);
                deliver_action w ~now action))

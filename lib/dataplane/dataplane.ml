type config = {
  cache_idle_timeout : float option;
  cache_hard_timeout : float option;
  cache_mode : [ `Spliced | `Microflow ];
  max_ttl : int;
}

let default_config =
  { cache_idle_timeout = Some 10.; cache_hard_timeout = None; cache_mode = `Spliced;
    max_ttl = 64 }

type result = {
  action : Action.t;
  delivered : bool;
  trace : int list;
  encapsulations : int;
  latency : float;
  ttl_exceeded : bool;
}

(* Mutable walk state: the packet's position, hop trace (reversed),
   remaining TTL and accumulated propagation latency. *)
type walk = {
  routing : Routing.t;
  mutable at : int;
  mutable rev_trace : int list;
  mutable ttl : int;
  mutable latency : float;
  mutable encaps : int;
}

let hop w next =
  match Topology.link_between (Routing.topology w.routing) w.at next with
  | None -> invalid_arg "Dataplane: next hop is not adjacent"
  | Some l ->
      w.latency <- w.latency +. l.Topology.latency;
      w.at <- next;
      w.rev_trace <- next :: w.rev_trace;
      w.ttl <- w.ttl - 1

(* Carry an encapsulated packet to its tunnel endpoint.  Transit switches
   forward on the underlay tables only — no flow-table lookups. *)
let tunnel_to w dst =
  w.encaps <- w.encaps + 1;
  let rec go () =
    if w.at = dst then `Arrived
    else if w.ttl <= 0 then `Ttl_exceeded
    else
      match Routing.next_hop w.routing ~from:w.at ~dst with
      | None -> `Unreachable
      | Some next ->
          hop w next;
          go ()
  in
  go ()

let finish w ~action ~delivered ~ttl_exceeded =
  {
    action;
    delivered;
    trace = List.rev w.rev_trace;
    encapsulations = w.encaps;
    latency = w.latency;
    ttl_exceeded;
  }

let deliver_action w action =
  (* a forwarding action tunnels to the egress switch; anything else
     terminates where we stand *)
  match Action.egress action with
  | None -> finish w ~action ~delivered:true ~ttl_exceeded:false
  | Some egress -> (
      if egress = w.at then finish w ~action ~delivered:true ~ttl_exceeded:false
      else
        match tunnel_to w egress with
        | `Arrived -> finish w ~action ~delivered:true ~ttl_exceeded:false
        | `Ttl_exceeded -> finish w ~action:Action.Drop ~delivered:false ~ttl_exceeded:true
        | `Unreachable -> finish w ~action:Action.Drop ~delivered:false ~ttl_exceeded:false)

let packet ?(config = default_config) ~routing ~switch ~now ~ingress header =
  let w =
    { routing; at = ingress; rev_trace = [ ingress ]; ttl = config.max_ttl; latency = 0.;
      encaps = 0 }
  in
  let ingress_sw = switch ingress in
  match Switch.process ingress_sw ~now header with
  | Switch.Local (action, _) -> deliver_action w action
  | Switch.Unmatched -> finish w ~action:Action.Drop ~delivered:false ~ttl_exceeded:false
  | Switch.Tunnel authority -> (
      if authority = w.at then
        (* the ingress is the authority's neighbourless corner case: a
           partition rule pointing at self would be a controller bug *)
        finish w ~action:Action.Drop ~delivered:false ~ttl_exceeded:false
      else
        match tunnel_to w authority with
        | `Ttl_exceeded -> finish w ~action:Action.Drop ~delivered:false ~ttl_exceeded:true
        | `Unreachable -> finish w ~action:Action.Drop ~delivered:false ~ttl_exceeded:false
        | `Arrived -> (
            match Switch.serve_miss ~mode:config.cache_mode (switch authority) ~now header with
            | None -> finish w ~action:Action.Drop ~delivered:false ~ttl_exceeded:false
            | Some { Switch.action; cache_rule; origin_id; pid } ->
                ignore
                  (Switch.install_cache_rule ?idle_timeout:config.cache_idle_timeout
                     ?hard_timeout:config.cache_hard_timeout ~origin_id ~pid ingress_sw
                     ~now cache_rule);
                deliver_action w action))

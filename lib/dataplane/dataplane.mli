(** The hop-by-hop data plane: encapsulation and per-switch forwarding.

    {!Deployment.inject} computes a packet's fate using shortest paths
    directly; this module executes the same packet the way the paper's
    Click switches do — one switch at a time:

    + the ingress switch runs its three-bank lookup;
    + a miss is {e encapsulated} toward its authority switch and carried
      there hop by hop on the underlay's next-hop tables ({!Routing}),
      bypassing flow tables at transit switches (tunnelled packets are
      only decapsulated at their tunnel endpoint);
    + the authority switch decapsulates, serves the miss (splice +
      cache-install back at the ingress), re-encapsulates toward the
      egress switch;
    + the egress switch decapsulates and delivers.

    The equivalence [walk = inject] (same action, same latency) is a
    property test: the shortcut and the faithful executor must agree.

    With [?congestion] supplied every hop additionally books time on the
    egress port's virtual-clock queue ({!Congestion.transit}): queueing
    delay adds to [latency], a full buffer drops the packet
    ([Queue_full]) and crossing the ECN threshold sets [marked]. *)

type config = {
  cache_idle_timeout : float option;
  cache_hard_timeout : float option;
  cache_mode : [ `Spliced | `Microflow ];
  max_ttl : int;  (** hop budget; loops or ttl exhaustion drop the packet *)
}

val default_config : config
(** 10 s idle timeout, spliced caching, TTL 64. *)

type drop_reason =
  | Ttl  (** hop budget exhausted (routing loop or pathologically long detour) *)
  | Unmatched  (** no bank matched at the ingress (non-total policy) *)
  | Misconfigured  (** a partition rule claimed the header but cannot tunnel it *)
  | Unreachable  (** underlay has no path to the tunnel endpoint *)
  | No_authority  (** tunnelled to a switch that is not authority for the header *)
  | Queue_full  (** shed by a finite port buffer (congestion model only) *)

type result = {
  action : Action.t;  (** what happened to the packet *)
  delivered : bool;  (** reached its verdict (including a matched [Drop] policy action) *)
  drop_reason : drop_reason option;
      (** [None] iff the packet reached a policy verdict.  A matched rule
          whose action is [Drop] is a {e delivered} verdict
          ([drop_reason = None]); this field reports only {e network}
          drops — the old API overloaded [delivered]/[ttl_exceeded] and
          made switch drops look like policy verdicts. *)
  trace : int list;  (** every switch traversed, in order, ingress first *)
  encapsulations : int;  (** tunnel headers pushed (0 for a local drop) *)
  latency : float;  (** propagation along [trace], plus queueing when congested *)
  marked : bool;  (** ECN congestion-experienced (never set without [?congestion]) *)
}

val packet :
  ?config:config ->
  ?congestion:Congestion.t ->
  routing:Routing.t ->
  switch:(int -> Switch.t) ->
  now:float ->
  ingress:int ->
  Header.t ->
  result
(** Execute one packet.  Mutates switch state (cache counters and
    reactive installs) exactly like the real data plane.  [?congestion]
    additionally mutates the shared port clocks; omitting it reproduces
    the legacy infinite-buffer, zero-serialization walk exactly. *)

type frame = { arrives : float; seq : int; bytes : Bytes.t }

type stats = {
  dropped : int;
  duplicated : int;
  corrupted : int;
  reordered : int;
  decode_errors : int;
}

let no_stats = { dropped = 0; duplicated = 0; corrupted = 0; reordered = 0; decode_errors = 0 }

(* Registry mirrors, shared by all channels: bumped on the same line as
   the per-channel fields so the totals cannot drift. *)
let m_frames = Telemetry.counter "channel_frames"
let m_bytes = Telemetry.counter "channel_bytes"
let m_dropped = Telemetry.counter "channel_dropped"
let m_duplicated = Telemetry.counter "channel_duplicated"
let m_corrupted = Telemetry.counter "channel_corrupted"
let m_reordered = Telemetry.counter "channel_reordered"
let m_decode_errors = Telemetry.counter "channel_decode_errors"

type t = {
  schema : Schema.t;
  latency : float;
  fault : Fault.injector option;
  mutable queue : frame list;
      (* descending (arrives, seq): newest frames in front, so the
         fault-free fast path is an O(1) prepend and poll takes the
         arrived suffix; jittered frames insert a few steps down *)
  mutable next_seq : int;
  mutable frames : int;
  mutable carried : int;
  mutable stats : stats;
}

let create ?fault schema ~latency =
  if latency < 0. then invalid_arg "Channel.create: negative latency";
  { schema; latency; fault; queue = []; next_seq = 0; frames = 0; carried = 0;
    stats = no_stats }

let frame_after (a : frame) (b : frame) =
  a.arrives > b.arrives || (a.arrives = b.arrives && a.seq > b.seq)

let enqueue t ~arrives bytes =
  let f = { arrives; seq = t.next_seq; bytes } in
  t.next_seq <- t.next_seq + 1;
  let rec insert = function
    | head :: rest when frame_after head f -> head :: insert rest
    | tail -> f :: tail
  in
  match t.queue with
  | head :: _ when frame_after head f -> t.queue <- insert t.queue
  | _ -> t.queue <- f :: t.queue

let corrupt_copy token bytes =
  let b = Bytes.copy bytes in
  let len = Bytes.length b in
  if len > 0 then begin
    let off = token mod len in
    let mask = ((token lsr 8) land 0xff) lor 1 in
    Bytes.set_uint8 b off (Bytes.get_uint8 b off lxor mask)
  end;
  b

let send t ~now ~xid ?epoch msg =
  let bytes = Message.encode ~xid ?epoch msg in
  t.frames <- t.frames + 1;
  Telemetry.incr m_frames;
  t.carried <- t.carried + Bytes.length bytes;
  Telemetry.add m_bytes (Bytes.length bytes);
  match t.fault with
  | None -> enqueue t ~arrives:(now +. t.latency) bytes
  | Some inj -> (
      match Fault.fate inj with
      | Fault.Lost ->
          t.stats <- { t.stats with dropped = t.stats.dropped + 1 };
          Telemetry.incr m_dropped
      | Fault.Deliver deliveries ->
          if List.length deliveries > 1 then begin
            t.stats <- { t.stats with duplicated = t.stats.duplicated + 1 };
            Telemetry.incr m_duplicated
          end;
          List.iter
            (fun (d : Fault.delivery) ->
              let bytes =
                match d.Fault.corrupt with
                | None -> bytes
                | Some token ->
                    t.stats <- { t.stats with corrupted = t.stats.corrupted + 1 };
                    Telemetry.incr m_corrupted;
                    corrupt_copy token bytes
              in
              let held = if d.Fault.held_back then t.latency else 0. in
              if d.Fault.held_back then begin
                t.stats <- { t.stats with reordered = t.stats.reordered + 1 };
                Telemetry.incr m_reordered
              end;
              enqueue t ~arrives:(now +. t.latency +. d.Fault.extra_delay +. held) bytes)
            deliveries)

let poll t ~now =
  (* queue is descending, so everything due sits at the tail *)
  let rec split acc = function
    | f :: rest when f.arrives > now -> split (f :: acc) rest
    | due -> (List.rev acc, due)
  in
  let future, due = split [] t.queue in
  t.queue <- future;
  (* [due] is descending too: reverse while decoding for FIFO order *)
  List.fold_left
    (fun acc f ->
      match Message.decode t.schema f.bytes with
      | Ok (xid, epoch, msg) -> (xid, epoch, msg) :: acc
      | Error _ ->
          (* an undecodable frame is a survivable network condition, not a
             crash: count it and let retransmission recover the payload *)
          t.stats <- { t.stats with decode_errors = t.stats.decode_errors + 1 };
          Telemetry.incr m_decode_errors;
          acc)
    [] due

let pending t = List.length t.queue
let frames_carried t = t.frames
let bytes_carried t = t.carried
let latency t = t.latency
let stats t = t.stats
let reset_stats t =
  t.frames <- 0;
  t.carried <- 0;
  t.stats <- no_stats

(** A simulated control channel.

    A unidirectional, latency-delayed byte channel between a controller
    and one switch.  Frames are carried {e encoded} — every message pays
    the wire codec on both ends, so a deployment driven through channels
    proves the whole control plane is serialisable, and byte counters
    give the control-overhead numbers the evaluation reports.

    A channel is reliable and in-order by default.  Created with a
    {!Fault.injector} it becomes {e lossy}: frames can be dropped,
    duplicated, corrupted in flight, jittered or reordered, each
    deterministically from the injector's seeded stream and counted in
    {!stats}.  A frame that no longer decodes (corruption) is dropped and
    counted, never raised — surviving a bad frame is the control plane's
    job, crashing on one would be the simulator's bug. *)

type t

(** Cumulative fault counters of one channel. *)
type stats = {
  dropped : int;  (** frames lost in flight *)
  duplicated : int;  (** frames delivered twice *)
  corrupted : int;  (** frames with a byte flipped in flight *)
  reordered : int;  (** frames held back behind later sends *)
  decode_errors : int;  (** polled frames that failed to decode *)
}

val create : ?fault:Fault.injector -> Schema.t -> latency:float -> t
(** @raise Invalid_argument on negative latency. *)

val send : t -> now:float -> xid:int -> ?epoch:int -> Message.t -> unit
(** Enqueue a frame; it becomes receivable at [now + latency] (plus any
    injected jitter), or never, if the injector drops it.  [epoch]
    defaults to [0] (unfenced). *)

val poll : t -> now:float -> (int * int * Message.t) list
(** Dequeue (and decode) every frame that has arrived by [now], oldest
    arrival first, as [(xid, epoch, message)].  Undecodable frames are
    silently dropped and counted in [stats.decode_errors]. *)

val pending : t -> int
(** Frames sent but not yet polled (including in-flight ones). *)

val frames_carried : t -> int
val bytes_carried : t -> int
val latency : t -> float

val stats : t -> stats
(** Fault counters; all zero on a reliable channel.  Every increment
    also bumps the process-wide [channel_*] registry counters, so
    {!Telemetry.snapshot} and these accessors agree. *)

val reset_stats : t -> unit
(** Zero this channel's fault and frame/byte counters (queue contents
    survive; the registry totals are process-wide and unaffected). *)

(** The control-plane protocol.

    An OpenFlow-1.0-flavoured message set: the subset DIFANE and the
    reactive baselines need (flow-mod, packet-in/out, barrier, per-flow
    stats), plus DIFANE's one extension — the cache-install that an
    authority switch sends to an ingress switch over the data plane.

    Messages carry a [bank] tag telling the receiving switch which of its
    three priority banks (cache > authority > partition) the flow-mod
    targets; in the paper this is encoded in priority ranges, here it is
    explicit and type-checked. *)

type bank = Cache | Authority | Partition

type flow_mod_command = Add | Delete | Delete_strict

type flow_mod = {
  command : flow_mod_command;
  bank : bank;
  rule : Rule.t;
  idle_timeout : float option;
  hard_timeout : float option;
}

type packet_in = {
  ingress : int;  (** switch that punted the packet *)
  header : Header.t;
  reason : [ `No_match | `Explicit ];
}

type packet_out = { out_switch : int; out_header : Header.t; action : Action.t }

type stats_request = { table_bank : bank; cookie : int }

type flow_stats = { rule_id : int; packets : int64; bytes : int64; duration : float }

type stats_reply = { request_cookie : int; flows : flow_stats list }

type removed_reason = Idle_timeout | Hard_timeout | Evicted | Deleted | Replaced

type flow_removed = {
  removed_rule : int;  (** rule id *)
  cookie : int;
      (** opaque value set at install time; DIFANE stores the origin
          policy-rule id of a spliced cache entry here ([-1] if unset) *)
  reason : removed_reason;
  final_packets : int64;
  final_bytes : int64;
  lifetime : float;  (** seconds installed *)
}

type table_transfer = {
  pid : int;  (** partition id *)
  region : Pred.t;
  table_rules : Rule.t list;  (** clipped authority rules, table order *)
}

type t =
  | Hello
  | Echo_request of int
  | Echo_reply of int
  | Flow_mod of flow_mod
  | Packet_in of packet_in
  | Packet_out of packet_out
  | Barrier_request of int
  | Barrier_reply of int
  | Stats_request of stats_request
  | Stats_reply of stats_reply
  | Flow_removed of flow_removed
      (** switch→controller: a flow entry expired or was evicted, with
          its final counters — how the controller keeps per-rule counts
          exact across cache churn *)
  | Install_partition of table_transfer
      (** controller→switch: atomically install (or replace) one
          partition's authority table — the bundle-style transfer the
          controller uses for initial installation, policy updates and
          backup replication *)
  | Drop_partition of int
      (** controller→switch: remove the authority table for a partition *)
  | Ack of int
      (** switch→controller: positive acknowledgement of a state-changing
          request ([Flow_mod]/[Install_partition]/[Drop_partition]) that
          has no reply of its own, carrying the request's xid — what the
          controller's retransmission machinery keys on when the control
          channel is lossy *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Wire format}

    A compact binary framing (20-byte header: version, type, length, xid,
    the sender's {e epoch}, and an FNV-1a checksum of the rest of the
    frame — same spirit as OpenFlow 1.0) used by the tests to guarantee
    the control channel is serialisable, and by the simulator to charge
    realistic message sizes to control links.  The checksum means a byte
    flipped in flight is {e detected} at decode time (it cannot silently
    install a different rule), so a lossy channel can drop-and-count
    corrupt frames and rely on retransmission.

    The epoch implements {e fencing} for replicated controllers: every
    control frame carries the sending master's epoch, a switch rejects
    frames from a stale epoch, and replies always carry the switch's
    current epoch so a deposed leader learns it lost.  Epoch [0] means
    "unfenced" (single-controller deployments never reject). *)

val encode : xid:int -> ?epoch:int -> t -> Bytes.t
(** [epoch] defaults to [0] (unfenced). *)

val decode : Schema.t -> Bytes.t -> (int * int * t, string) result
(** Returns [(xid, epoch, message)].  The schema is needed to rebuild
    predicates and headers.  Errors on truncated or corrupt frames rather
    than raising. *)

val wire_size : xid:int -> ?epoch:int -> t -> int
(** [Bytes.length (encode ~xid ?epoch t)]. *)

val fnv1a : ?hole:int * int -> Bytes.t -> int64
(** FNV-1a hash of a buffer, with an optional [(offset, length)] window
    treated as zero (where the checksum itself is stored).  Shared with
    the journal's record framing. *)

val rules_to_bytes : Rule.t list -> Bytes.t

val rules_of_bytes : Schema.t -> Bytes.t -> (Rule.t list, string) result
(** Length-prefixed rule-list codec built on the frame codec's rule
    encoding — the journal uses it to persist policies and tables. *)

type bank = Cache | Authority | Partition
type flow_mod_command = Add | Delete | Delete_strict

type flow_mod = {
  command : flow_mod_command;
  bank : bank;
  rule : Rule.t;
  idle_timeout : float option;
  hard_timeout : float option;
}

type packet_in = {
  ingress : int;
  header : Header.t;
  reason : [ `No_match | `Explicit ];
}

type packet_out = { out_switch : int; out_header : Header.t; action : Action.t }
type stats_request = { table_bank : bank; cookie : int }
type flow_stats = { rule_id : int; packets : int64; bytes : int64; duration : float }
type stats_reply = { request_cookie : int; flows : flow_stats list }

type removed_reason = Idle_timeout | Hard_timeout | Evicted | Deleted | Replaced

type flow_removed = {
  removed_rule : int;
  cookie : int;
  reason : removed_reason;
  final_packets : int64;
  final_bytes : int64;
  lifetime : float;
}

type table_transfer = { pid : int; region : Pred.t; table_rules : Rule.t list }

type t =
  | Hello
  | Echo_request of int
  | Echo_reply of int
  | Flow_mod of flow_mod
  | Packet_in of packet_in
  | Packet_out of packet_out
  | Barrier_request of int
  | Barrier_reply of int
  | Stats_request of stats_request
  | Stats_reply of stats_reply
  | Flow_removed of flow_removed
  | Install_partition of table_transfer
  | Drop_partition of int
  | Ack of int

let equal_flow_mod a b =
  a.command = b.command && a.bank = b.bank && Rule.equal a.rule b.rule
  && a.idle_timeout = b.idle_timeout
  && a.hard_timeout = b.hard_timeout

let equal a b =
  match (a, b) with
  | Hello, Hello -> true
  | Echo_request x, Echo_request y
  | Echo_reply x, Echo_reply y
  | Barrier_request x, Barrier_request y
  | Barrier_reply x, Barrier_reply y
  | Ack x, Ack y ->
      x = y
  | Flow_mod x, Flow_mod y -> equal_flow_mod x y
  | Packet_in x, Packet_in y ->
      x.ingress = y.ingress && Header.equal x.header y.header && x.reason = y.reason
  | Packet_out x, Packet_out y ->
      x.out_switch = y.out_switch
      && Header.equal x.out_header y.out_header
      && Action.equal x.action y.action
  | Stats_request x, Stats_request y -> x = y
  | Stats_reply x, Stats_reply y -> x = y
  | Flow_removed x, Flow_removed y -> x = y
  | Install_partition x, Install_partition y ->
      x.pid = y.pid && Pred.equal x.region y.region
      && List.length x.table_rules = List.length y.table_rules
      && List.for_all2 Rule.equal x.table_rules y.table_rules
  | Drop_partition x, Drop_partition y -> x = y
  | ( ( Hello | Echo_request _ | Echo_reply _ | Flow_mod _ | Packet_in _ | Packet_out _
      | Barrier_request _ | Barrier_reply _ | Stats_request _ | Stats_reply _
      | Flow_removed _ | Install_partition _ | Drop_partition _ | Ack _ ),
      _ ) ->
      false

let bank_to_string = function Cache -> "cache" | Authority -> "authority" | Partition -> "partition"

let pp ppf = function
  | Hello -> Format.pp_print_string ppf "hello"
  | Echo_request c -> Format.fprintf ppf "echo_request(%d)" c
  | Echo_reply c -> Format.fprintf ppf "echo_reply(%d)" c
  | Flow_mod f ->
      Format.fprintf ppf "flow_mod(%s,%s,%a)"
        (match f.command with Add -> "add" | Delete -> "del" | Delete_strict -> "del_strict")
        (bank_to_string f.bank) Rule.pp f.rule
  | Packet_in p -> Format.fprintf ppf "packet_in(sw%d,%a)" p.ingress Header.pp p.header
  | Packet_out p ->
      Format.fprintf ppf "packet_out(sw%d,%a,%a)" p.out_switch Header.pp p.out_header
        Action.pp p.action
  | Barrier_request x -> Format.fprintf ppf "barrier_request(%d)" x
  | Barrier_reply x -> Format.fprintf ppf "barrier_reply(%d)" x
  | Stats_request s ->
      Format.fprintf ppf "stats_request(%s,%d)" (bank_to_string s.table_bank) s.cookie
  | Stats_reply s ->
      Format.fprintf ppf "stats_reply(%d,%d flows)" s.request_cookie (List.length s.flows)
  | Install_partition t ->
      Format.fprintf ppf "install_partition(P%d,%d rules)" t.pid (List.length t.table_rules)
  | Drop_partition pid -> Format.fprintf ppf "drop_partition(P%d)" pid
  | Ack x -> Format.fprintf ppf "ack(%d)" x
  | Flow_removed f ->
      Format.fprintf ppf "flow_removed(#%d,%s,%Ld pkts)" f.removed_rule
        (match f.reason with
        | Idle_timeout -> "idle"
        | Hard_timeout -> "hard"
        | Evicted -> "evicted"
        | Deleted -> "deleted"
        | Replaced -> "replaced")
        f.final_packets

(* ---- wire format ---- *)

let version = 0x02

let type_code = function
  | Hello -> 0
  | Echo_request _ -> 2
  | Echo_reply _ -> 3
  | Flow_mod _ -> 14
  | Packet_in _ -> 10
  | Packet_out _ -> 13
  | Barrier_request _ -> 18
  | Barrier_reply _ -> 19
  | Stats_request _ -> 16
  | Stats_reply _ -> 17
  | Flow_removed _ -> 11
  | Install_partition _ -> 30
  | Drop_partition _ -> 31
  | Ack _ -> 32

module W = struct
  let u8 b v = Buffer.add_uint8 b (v land 0xff)
  let u16 b v = Buffer.add_uint16_be b (v land 0xffff)
  let u32 b v = Buffer.add_int32_be b (Int32.of_int v)
  let u64 b v = Buffer.add_int64_be b v
  let f64 b v = u64 b (Int64.bits_of_float v)
end

module R = struct
  (* cursor-based reader returning result *)
  type t = { buf : Bytes.t; mutable pos : int }

  let create buf = { buf; pos = 0 }

  let need r n =
    if r.pos + n > Bytes.length r.buf then Error "truncated frame" else Ok ()

  let u8 r =
    match need r 1 with
    | Error e -> Error e
    | Ok () ->
        let v = Bytes.get_uint8 r.buf r.pos in
        r.pos <- r.pos + 1;
        Ok v

  let u16 r =
    match need r 2 with
    | Error e -> Error e
    | Ok () ->
        let v = Bytes.get_uint16_be r.buf r.pos in
        r.pos <- r.pos + 2;
        Ok v

  let u32 r =
    match need r 4 with
    | Error e -> Error e
    | Ok () ->
        let v = Int32.to_int (Bytes.get_int32_be r.buf r.pos) land 0xffffffff in
        r.pos <- r.pos + 4;
        Ok v

  let u64 r =
    match need r 8 with
    | Error e -> Error e
    | Ok () ->
        let v = Bytes.get_int64_be r.buf r.pos in
        r.pos <- r.pos + 8;
        Ok v

  let f64 r = Result.map Int64.float_of_bits (u64 r)
end

let ( let* ) = Result.bind

let encode_pred b pred =
  W.u8 b (Pred.arity pred);
  for i = 0 to Pred.arity pred - 1 do
    let f = Pred.field pred i in
    W.u8 b (Ternary.width f);
    W.u64 b (Ternary.value f);
    W.u64 b (Ternary.mask f)
  done

let decode_pred schema r =
  let* arity = R.u8 r in
  if arity <> Schema.arity schema then Error "predicate arity mismatch"
  else
    let rec go i acc =
      if i >= arity then Ok (Pred.make schema (List.rev acc))
      else
        let* w = R.u8 r in
        let* v = R.u64 r in
        let* m = R.u64 r in
        if w <> Schema.field_bits schema i then Error "field width mismatch"
        else go (i + 1) (Ternary.make ~width:w ~value:v ~mask:m :: acc)
    in
    go 0 []

let encode_header b h =
  let vs = Header.values h in
  W.u8 b (Array.length vs);
  Array.iter (fun v -> W.u64 b v) vs

let decode_header schema r =
  let* arity = R.u8 r in
  if arity <> Schema.arity schema then Error "header arity mismatch"
  else
    let rec go i acc =
      if i >= arity then Ok (Header.make schema (Array.of_list (List.rev acc)))
      else
        let* v = R.u64 r in
        go (i + 1) (v :: acc)
    in
    go 0 []

let encode_action b = function
  | Action.Forward p ->
      W.u8 b 0;
      W.u32 b p
  | Action.Drop -> W.u8 b 1
  | Action.Count_and_forward p ->
      W.u8 b 2;
      W.u32 b p
  | Action.To_authority a ->
      W.u8 b 3;
      W.u32 b a
  | Action.Redirect_controller -> W.u8 b 4

let decode_action r =
  let* tag = R.u8 r in
  match tag with
  | 0 ->
      let* p = R.u32 r in
      Ok (Action.Forward p)
  | 1 -> Ok Action.Drop
  | 2 ->
      let* p = R.u32 r in
      Ok (Action.Count_and_forward p)
  | 3 ->
      let* a = R.u32 r in
      Ok (Action.To_authority a)
  | 4 -> Ok Action.Redirect_controller
  | _ -> Error "unknown action tag"

let bank_code = function Cache -> 0 | Authority -> 1 | Partition -> 2

let decode_bank = function
  | 0 -> Ok Cache
  | 1 -> Ok Authority
  | 2 -> Ok Partition
  | _ -> Error "unknown bank"

let encode_timeout b = function
  | None -> W.u8 b 0
  | Some v ->
      W.u8 b 1;
      W.f64 b v

let decode_timeout r =
  let* tag = R.u8 r in
  match tag with
  | 0 -> Ok None
  | 1 ->
      let* v = R.f64 r in
      Ok (Some v)
  | _ -> Error "bad timeout tag"

let encode_rule b (rule : Rule.t) =
  W.u32 b rule.id;
  W.u32 b (rule.priority land 0x7fffffff);
  encode_pred b rule.pred;
  encode_action b rule.action

let decode_rule schema r =
  let* id = R.u32 r in
  let* priority = R.u32 r in
  let* pred = decode_pred schema r in
  let* action = decode_action r in
  Ok (Rule.make ~id ~priority pred action)

let encode_body b = function
  | Hello -> ()
  | Echo_request c | Echo_reply c -> W.u32 b c
  | Barrier_request x | Barrier_reply x -> W.u32 b x
  | Flow_mod f ->
      W.u8 b (match f.command with Add -> 0 | Delete -> 1 | Delete_strict -> 2);
      W.u8 b (bank_code f.bank);
      encode_timeout b f.idle_timeout;
      encode_timeout b f.hard_timeout;
      encode_rule b f.rule
  | Packet_in p ->
      W.u32 b p.ingress;
      W.u8 b (match p.reason with `No_match -> 0 | `Explicit -> 1);
      encode_header b p.header
  | Packet_out p ->
      W.u32 b p.out_switch;
      encode_header b p.out_header;
      encode_action b p.action
  | Stats_request s ->
      W.u8 b (bank_code s.table_bank);
      W.u32 b s.cookie
  | Stats_reply s ->
      W.u32 b s.request_cookie;
      W.u32 b (List.length s.flows);
      List.iter
        (fun f ->
          W.u32 b f.rule_id;
          W.u64 b f.packets;
          W.u64 b f.bytes;
          W.f64 b f.duration)
        s.flows
  | Install_partition t ->
      W.u32 b t.pid;
      encode_pred b t.region;
      W.u32 b (List.length t.table_rules);
      List.iter (encode_rule b) t.table_rules
  | Drop_partition pid -> W.u32 b pid
  | Ack x -> W.u32 b x
  | Flow_removed f ->
      W.u32 b f.removed_rule;
      W.u32 b (f.cookie land 0x7fffffff);
      W.u8 b
        (match f.reason with
        | Idle_timeout -> 0
        | Hard_timeout -> 1
        | Evicted -> 2
        | Deleted -> 3
        | Replaced -> 4);
      W.u64 b f.final_packets;
      W.u64 b f.final_bytes;
      W.f64 b f.lifetime

(* FNV-1a over a buffer, treating [hole] (an [(offset, length)] window,
   e.g. a frame's checksum slot) as zero.  Not cryptographic — it only
   needs to catch the simulator's fault injector flipping bytes in
   flight, and it doubles as the journal's record checksum. *)
let fnv1a ?hole buf =
  let lo, hi = match hole with None -> (0, 0) | Some (off, len) -> (off, off + len) in
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to Bytes.length buf - 1 do
    let byte = if i >= lo && i < hi then 0 else Bytes.get_uint8 buf i in
    h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) 0x100000001b3L
  done;
  !h

let checksum buf = fnv1a ~hole:(12, 8) buf

let encode ~xid ?(epoch = 0) t =
  let body = Buffer.create 64 in
  encode_body body t;
  let frame = Buffer.create (Buffer.length body + 20) in
  W.u8 frame version;
  W.u8 frame (type_code t);
  W.u16 frame (Buffer.length body + 20);
  W.u32 frame xid;
  W.u32 frame epoch;
  (* 8 bytes of checksum to reach a 20-byte header; filled in below *)
  W.u64 frame 0L;
  Buffer.add_buffer frame body;
  let bytes = Buffer.to_bytes frame in
  Bytes.set_int64_be bytes 12 (checksum bytes);
  bytes

let decode schema buf =
  let r = R.create buf in
  let* v = R.u8 r in
  if v <> version then Error "bad version"
  else
    let* ty = R.u8 r in
    let* len = R.u16 r in
    if len <> Bytes.length buf then Error "length mismatch"
    else
      let* xid = R.u32 r in
      let* epoch = R.u32 r in
      let* stored_sum = R.u64 r in
      let* () =
        if Int64.equal stored_sum (checksum buf) then Ok ()
        else Error "checksum mismatch"
      in
      let* msg =
        match ty with
        | 0 -> Ok Hello
        | 2 ->
            let* c = R.u32 r in
            Ok (Echo_request c)
        | 3 ->
            let* c = R.u32 r in
            Ok (Echo_reply c)
        | 18 ->
            let* c = R.u32 r in
            Ok (Barrier_request c)
        | 19 ->
            let* c = R.u32 r in
            Ok (Barrier_reply c)
        | 14 ->
            let* cmd = R.u8 r in
            let* command =
              match cmd with
              | 0 -> Ok Add
              | 1 -> Ok Delete
              | 2 -> Ok Delete_strict
              | _ -> Error "unknown flow_mod command"
            in
            let* bank_raw = R.u8 r in
            let* bank = decode_bank bank_raw in
            let* idle_timeout = decode_timeout r in
            let* hard_timeout = decode_timeout r in
            let* rule = decode_rule schema r in
            Ok (Flow_mod { command; bank; rule; idle_timeout; hard_timeout })
        | 10 ->
            let* ingress = R.u32 r in
            let* reason_raw = R.u8 r in
            let* reason =
              match reason_raw with
              | 0 -> Ok `No_match
              | 1 -> Ok `Explicit
              | _ -> Error "unknown packet_in reason"
            in
            let* header = decode_header schema r in
            Ok (Packet_in { ingress; header; reason })
        | 13 ->
            let* out_switch = R.u32 r in
            let* out_header = decode_header schema r in
            let* action = decode_action r in
            Ok (Packet_out { out_switch; out_header; action })
        | 16 ->
            let* bank_raw = R.u8 r in
            let* table_bank = decode_bank bank_raw in
            let* cookie = R.u32 r in
            Ok (Stats_request { table_bank; cookie })
        | 17 ->
            let* request_cookie = R.u32 r in
            let* count = R.u32 r in
            let rec go i acc =
              if i >= count then Ok (List.rev acc)
              else
                let* rule_id = R.u32 r in
                let* packets = R.u64 r in
                let* bytes = R.u64 r in
                let* duration = R.f64 r in
                go (i + 1) ({ rule_id; packets; bytes; duration } :: acc)
            in
            let* flows = go 0 [] in
            Ok (Stats_reply { request_cookie; flows })
        | 11 ->
            let* removed_rule = R.u32 r in
            let* cookie_raw = R.u32 r in
            let cookie = if cookie_raw = 0x7fffffff then -1 else cookie_raw in
            let* reason_raw = R.u8 r in
            let* reason =
              match reason_raw with
              | 0 -> Ok Idle_timeout
              | 1 -> Ok Hard_timeout
              | 2 -> Ok Evicted
              | 3 -> Ok Deleted
              | 4 -> Ok Replaced
              | _ -> Error "unknown removal reason"
            in
            let* final_packets = R.u64 r in
            let* final_bytes = R.u64 r in
            let* lifetime = R.f64 r in
            Ok (Flow_removed { removed_rule; cookie; reason; final_packets; final_bytes; lifetime })
        | 30 ->
            let* pid = R.u32 r in
            let* region = decode_pred schema r in
            let* count = R.u32 r in
            let rec go i acc =
              if i >= count then Ok (List.rev acc)
              else
                let* rule = decode_rule schema r in
                go (i + 1) (rule :: acc)
            in
            let* table_rules = go 0 [] in
            Ok (Install_partition { pid; region; table_rules })
        | 31 ->
            let* pid = R.u32 r in
            Ok (Drop_partition pid)
        | 32 ->
            let* x = R.u32 r in
            Ok (Ack x)
        | _ -> Error "unknown message type"
      in
      if r.R.pos <> Bytes.length buf then Error "trailing bytes"
      else Ok (xid, epoch, msg)

let wire_size ~xid ?epoch t = Bytes.length (encode ~xid ?epoch t)

(* ---- rule-list codec, shared with the journal ---- *)

let rules_to_bytes rules =
  let b = Buffer.create 256 in
  W.u32 b (List.length rules);
  List.iter (encode_rule b) rules;
  Buffer.to_bytes b

let rules_of_bytes schema buf =
  let r = R.create buf in
  let* count = R.u32 r in
  let rec go i acc =
    if i >= count then Ok (List.rev acc)
    else
      let* rule = decode_rule schema r in
      go (i + 1) (rule :: acc)
  in
  let* rules = go 0 [] in
  if r.R.pos <> Bytes.length buf then Error "trailing bytes" else Ok rules

type t = { width : int; value : int64; mask : int64 }

let max_width = 62

let ( &: ) = Int64.logand
let ( |: ) = Int64.logor
let ( ^: ) = Int64.logxor
let lnot64 = Int64.lognot

let ones w = if w = 0 then 0L else Int64.shift_right_logical Int64.minus_one (64 - w)

let check_width w =
  if w < 1 || w > max_width then
    invalid_arg (Printf.sprintf "Ternary: width %d not in 1..%d" w max_width)

let make ~width ~value ~mask =
  check_width width;
  let m = mask &: ones width in
  { width; value = value &: m; mask = m }

let any w =
  check_width w;
  { width = w; value = 0L; mask = 0L }

let exact ~width v = make ~width ~value:v ~mask:(ones width)

let prefix ~width v len =
  check_width width;
  if len < 0 || len > width then
    invalid_arg (Printf.sprintf "Ternary.prefix: length %d not in 0..%d" len width);
  let m = if len = 0 then 0L else Int64.shift_left (ones len) (width - len) in
  make ~width ~value:v ~mask:m

let width t = t.width
let value t = t.value
let mask t = t.mask

let bit t i =
  if i < 0 || i >= t.width then
    invalid_arg (Printf.sprintf "Ternary.bit: %d not in 0..%d" i (t.width - 1));
  let b = Int64.shift_left 1L i in
  if b &: t.mask = 0L then `Any else if b &: t.value = 0L then `Zero else `One

let of_string s =
  let symbols =
    String.to_seq s |> Seq.filter (fun c -> c <> '_') |> List.of_seq
  in
  let w = List.length symbols in
  check_width w;
  let step (value, mask) c =
    let value = Int64.shift_left value 1 and mask = Int64.shift_left mask 1 in
    match c with
    | '0' -> (value, mask |: 1L)
    | '1' -> (value |: 1L, mask |: 1L)
    | 'x' | 'X' -> (value, mask)
    | c -> invalid_arg (Printf.sprintf "Ternary.of_string: bad character %C" c)
  in
  let value, mask = List.fold_left step (0L, 0L) symbols in
  { width = w; value; mask }

let of_ipv4 s =
  let addr, len =
    match String.split_on_char '/' s with
    | [ a ] -> (a, 32)
    | [ a; l ] -> (
        match int_of_string_opt l with
        | Some l when l >= 0 && l <= 32 -> (a, l)
        | _ -> invalid_arg (Printf.sprintf "Ternary.of_ipv4: bad prefix length in %S" s))
    | _ -> invalid_arg (Printf.sprintf "Ternary.of_ipv4: malformed %S" s)
  in
  match String.split_on_char '.' addr with
  | [ a; b; c; d ] ->
      let octet x =
        match int_of_string_opt x with
        | Some v when v >= 0 && v <= 255 -> v
        | _ -> invalid_arg (Printf.sprintf "Ternary.of_ipv4: bad octet %S" x)
      in
      let v =
        Int64.of_int
          ((octet a lsl 24) lor (octet b lsl 16) lor (octet c lsl 8) lor octet d)
      in
      prefix ~width:32 v len
  | _ -> invalid_arg (Printf.sprintf "Ternary.of_ipv4: malformed %S" s)

let looks_dotted s = String.contains s '.'
let looks_decimal s = s <> "" && String.for_all (fun c -> c >= '0' && c <= '9') s

let bit_chars s =
  s <> ""
  && String.for_all (fun c -> c = '0' || c = '1' || c = 'x' || c = 'X' || c = '_') s

let bit_length s =
  String.fold_left (fun n c -> if c = '_' then n else n + 1) 0 s

(* Shape dispatch.  The one genuine ambiguity is an all-[01] token, which
   reads as binary or decimal: it is binary exactly when its digit count
   equals the field width (the Policy_io convention), decimal otherwise. *)
let of_value_string ~width s =
  if s = "*" then any width
  else if looks_dotted s then begin
    if width <> 32 then
      invalid_arg "Ternary.of_value_string: IPv4 syntax on a non-32-bit field";
    of_ipv4 s
  end
  else if bit_chars s && bit_length s = width then of_string s
  else if bit_chars s && String.exists (fun c -> c = 'x' || c = 'X') s then
    invalid_arg "Ternary.of_value_string: bit-string width mismatch"
  else if looks_decimal s then
    match Int64.of_string_opt s with
    | Some v -> exact ~width v
    | None -> invalid_arg (Printf.sprintf "Ternary.of_value_string: bad number %S" s)
  else invalid_arg (Printf.sprintf "Ternary.of_value_string: cannot parse %S" s)

let to_string t =
  String.init t.width (fun i ->
      match bit t (t.width - 1 - i) with `Zero -> '0' | `One -> '1' | `Any -> 'x')

let pp ppf t = Format.pp_print_string ppf (to_string t)

let equal a b = a.width = b.width && Int64.equal a.value b.value && Int64.equal a.mask b.mask

let compare a b =
  let c = Int.compare a.width b.width in
  if c <> 0 then c
  else
    let c = Int64.compare a.mask b.mask in
    if c <> 0 then c else Int64.compare a.value b.value

let hash t = Hashtbl.hash (t.width, t.value, t.mask)

let matches t v = (v ^: t.value) &: t.mask = 0L
let is_any t = t.mask = 0L
let is_exact t = Int64.equal t.mask (ones t.width)

let popcount64 x =
  let rec go acc x = if x = 0L then acc else go (acc + 1) (x &: Int64.sub x 1L) in
  go 0 x

let specified_bits t = popcount64 t.mask
let wildcard_bits t = t.width - specified_bits t
let size t = Float.pow 2. (float_of_int (wildcard_bits t))

let inter a b =
  if a.width <> b.width then invalid_arg "Ternary.inter: width mismatch";
  let common = a.mask &: b.mask in
  if (a.value ^: b.value) &: common <> 0L then None
  else Some { width = a.width; value = a.value |: b.value; mask = a.mask |: b.mask }

let overlaps a b = Option.is_some (inter a b)

(* Buddy merge: two values with the same mask whose specified bits differ
   in exactly one position denote adjacent blocks, and wildcarding that
   position yields exactly their union — no extra concrete values.  The
   prefix-aggregation primitive (two /32s into a /31, and recursively). *)
let buddy_union a b =
  if a.width <> b.width then invalid_arg "Ternary.buddy_union: width mismatch";
  if a.mask <> b.mask then None
  else
    let d = a.value ^: b.value in
    if d <> 0L && d &: Int64.sub d 1L = 0L then
      Some { width = a.width; value = a.value &: lnot64 d; mask = a.mask &: lnot64 d }
    else None

let subsumes a b =
  a.width = b.width
  && a.mask &: b.mask = a.mask
  && (a.value ^: b.value) &: a.mask = 0L

(* Disjoint subtraction.  Walk the bits where [b] is specified but [a] is
   wildcard, from most to least significant.  The piece emitted at bit [j]
   agrees with [b] on all such earlier bits and differs at [j]; the pieces
   are therefore pairwise disjoint and their union is a - b. *)
let subtract a b =
  if a.width <> b.width then invalid_arg "Ternary.subtract: width mismatch";
  if not (overlaps a b) then [ a ]
  else
    let free = b.mask &: lnot64 a.mask in
    let rec go j fixed_mask fixed_value acc =
      if j < 0 then acc
      else
        let bitj = Int64.shift_left 1L j in
        if bitj &: free = 0L then go (j - 1) fixed_mask fixed_value acc
        else
          let piece =
            {
              width = a.width;
              mask = a.mask |: fixed_mask |: bitj;
              value = a.value |: fixed_value |: (lnot64 b.value &: bitj);
            }
          in
          go (j - 1) (fixed_mask |: bitj) (fixed_value |: (b.value &: bitj)) (piece :: acc)
    in
    go (a.width - 1) 0L 0L []

let split t i =
  if i < 0 || i >= t.width then invalid_arg "Ternary.split: bit out of range";
  let b = Int64.shift_left 1L i in
  if b &: t.mask <> 0L then None
  else
    let mask = t.mask |: b in
    Some ({ t with mask }, { t with mask; value = t.value |: b })

let first_wildcard_msb t =
  let rec go j =
    if j < 0 then None
    else if Int64.shift_left 1L j &: t.mask = 0L then Some j
    else go (j - 1)
  in
  go (t.width - 1)

let enumerate ?(limit = 1024) t =
  (* Positions of wildcard bits, least significant first. *)
  let wilds =
    List.filter
      (fun j -> Int64.shift_left 1L j &: t.mask = 0L)
      (List.init t.width (fun j -> j))
  in
  let n = List.length wilds in
  let count =
    if n >= 30 then limit else min limit (1 lsl n)
  in
  List.init count (fun k ->
      (* Spread the bits of [k] over the wildcard positions. *)
      let v, _ =
        List.fold_left
          (fun (v, i) j ->
            let v = if (k lsr i) land 1 = 1 then v |: Int64.shift_left 1L j else v in
            (v, i + 1))
          (t.value, 0) wilds
      in
      v)

let random_point rand_bits t =
  let rec fill v j =
    if j >= t.width then v
    else if Int64.shift_left 1L j &: t.mask <> 0L then fill v (j + 1)
    else
      let b = Int64.of_int (rand_bits 1 land 1) in
      fill (v |: Int64.shift_left b j) (j + 1)
  in
  fill t.value 0

type t = {
  schema : Schema.t;
  values : int64 array;
  key_lo : int64;
  key_hi : int64;
  key_exact : bool;
  khash : int;
}

let truncate bits v =
  Int64.logand v (Int64.shift_right_logical Int64.minus_one (64 - bits))

(* Avalanche a 64-bit lane into an accumulator (splitmix64 finalizer). *)
let mix64 h v =
  let h = Int64.logxor h v in
  let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 30)) 0xbf58476d1ce4e5b9L in
  let h = Int64.mul (Int64.logxor h (Int64.shift_right_logical h 27)) 0x94d049bb133111ebL in
  Int64.logxor h (Int64.shift_right_logical h 31)

(* Int-pack the header into two 63-bit lanes, little-endian by schema
   position.  For schemas up to 126 total bits (the ACL 5-tuple's 104
   included) the packing is injective — two headers of the same schema are
   equal iff their lanes are — so the per-packet paths (cachesim interning,
   flow-record cache, monitor) compare two ints instead of walking the
   values array or building a string.  Wider schemas fall back to using
   the lanes as a mixed fingerprint and comparing values on collision. *)
let pack schema values =
  let lo = ref 0L and hi = ref 0L and used = ref 0 in
  let exact = Schema.total_bits schema <= 126 in
  if exact then
    Array.iteri
      (fun i v ->
        let bits = Schema.field_bits schema i in
        let pos = !used in
        (if pos < 63 then begin
           lo := Int64.logor !lo (truncate 63 (Int64.shift_left v pos));
           let spill = pos + bits - 63 in
           if spill > 0 then
             hi := Int64.logor !hi (Int64.shift_right_logical v (bits - spill))
         end
         else hi := Int64.logor !hi (Int64.shift_left v (pos - 63)));
        used := pos + bits)
      values
  else
    Array.iter
      (fun v ->
        lo := mix64 !lo v;
        hi := mix64 (Int64.logxor !hi 0x9e3779b97f4a7c15L) !lo)
      values;
  let khash =
    Int64.to_int (mix64 (mix64 0x9e3779b97f4a7c15L !lo) !hi) land max_int
  in
  (!lo, !hi, exact, khash)

let make schema values =
  if Array.length values <> Schema.arity schema then
    invalid_arg "Header.make: arity mismatch";
  let values =
    Array.mapi (fun i v -> truncate (Schema.field_bits schema i) v) values
  in
  let key_lo, key_hi, key_exact, khash = pack schema values in
  { schema; values; key_lo; key_hi; key_exact; khash }

let of_fields schema assoc =
  let values =
    Array.init (Schema.arity schema) (fun i ->
        match List.assoc_opt (Schema.field_name schema i) assoc with
        | Some v -> v
        | None -> 0L)
  in
  List.iter (fun (name, _) -> ignore (Schema.index schema name)) assoc;
  make schema values

let schema t = t.schema
let field t i = t.values.(i)
let get t name = t.values.(Schema.index t.schema name)
let values t = Array.copy t.values
let key_lo t = t.key_lo
let key_hi t = t.key_hi
let key_exact t = t.key_exact

let equal a b =
  a.khash = b.khash
  && (a.schema == b.schema || Schema.equal a.schema b.schema)
  &&
  if a.key_exact && b.key_exact then
    Int64.equal a.key_lo b.key_lo && Int64.equal a.key_hi b.key_hi
  else Array.for_all2 Int64.equal a.values b.values

let compare a b =
  let rec go i =
    if i >= Array.length a.values then 0
    else
      let c = Int64.compare a.values.(i) b.values.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let hash t = t.khash

let pp ppf t =
  Format.fprintf ppf "@[<h>{";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%s=%Ld" (Schema.field_name t.schema i) v)
    t.values;
  Format.fprintf ppf "}@]"

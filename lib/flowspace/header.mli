(** Concrete packet headers: one point of the flowspace.

    A header assigns a concrete value to every field of a schema.  This is
    the thing a switch matches against its TCAM banks. *)

type t

val make : Schema.t -> int64 array -> t
(** [make schema values] builds a header.  Each value is truncated to its
    field's width.  @raise Invalid_argument on arity mismatch. *)

val of_fields : Schema.t -> (string * int64) list -> t
(** Named construction; unnamed fields default to [0].
    @raise Not_found on an unknown field name. *)

val schema : t -> Schema.t
val field : t -> int -> int64
val get : t -> string -> int64
val values : t -> int64 array

val equal : t -> t -> bool
val compare : t -> t -> int

val hash : t -> int
(** Precomputed at {!make}; constant-time on every per-packet path. *)

(** {2 Int-packed key}

    [make] packs the header's fields, little-endian by schema position,
    into two 63-bit lanes.  When {!key_exact} is [true] (schemas up to
    126 total bits, including the ACL 5-tuple's 104), the packing is
    injective: two headers of the same schema are equal iff their
    [(key_lo, key_hi)] pairs are, so hot paths can key hash tables on two
    ints with no per-packet allocation.  Wider schemas get a mixed
    fingerprint instead — still a valid hash, but not injective. *)

val key_lo : t -> int64
val key_hi : t -> int64
val key_exact : t -> bool
val pp : Format.formatter -> t -> unit

type t = { schema : Schema.t; fields : Ternary.t array }

let check schema fields =
  if Array.length fields <> Schema.arity schema then
    invalid_arg "Pred: arity mismatch";
  Array.iteri
    (fun i f ->
      if Ternary.width f <> Schema.field_bits schema i then
        invalid_arg
          (Printf.sprintf "Pred: field %s expects width %d, got %d"
             (Schema.field_name schema i)
             (Schema.field_bits schema i) (Ternary.width f)))
    fields

let any schema =
  {
    schema;
    fields = Array.init (Schema.arity schema) (fun i -> Ternary.any (Schema.field_bits schema i));
  }

let make schema l =
  let fields = Array.of_list l in
  check schema fields;
  { schema; fields }

let of_fields schema assoc =
  let base = any schema in
  let fields = Array.copy base.fields in
  List.iter
    (fun (name, tern) ->
      let i = Schema.index schema name in
      fields.(i) <- tern)
    assoc;
  check schema fields;
  { schema; fields }

let of_strings schema assoc =
  of_fields schema (List.map (fun (n, s) -> (n, Ternary.of_string s)) assoc)

let with_field t i f =
  if Ternary.width f <> Schema.field_bits t.schema i then
    invalid_arg "Pred.with_field: width mismatch";
  let fields = Array.copy t.fields in
  fields.(i) <- f;
  { t with fields }

let schema t = t.schema
let field t i = t.fields.(i)
let arity t = Array.length t.fields

let pp ppf t =
  Format.fprintf ppf "@[<h>[";
  Array.iteri
    (fun i f ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%s=%a" (Schema.field_name t.schema i) Ternary.pp f)
    t.fields;
  Format.fprintf ppf "]@]"

let to_string t = Format.asprintf "%a" pp t

let equal a b =
  Schema.equal a.schema b.schema && Array.for_all2 Ternary.equal a.fields b.fields

let compare a b =
  let rec go i =
    if i >= Array.length a.fields then 0
    else
      let c = Ternary.compare a.fields.(i) b.fields.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let hash t = Hashtbl.hash (Array.map Ternary.hash t.fields)

let matches t h =
  let rec go i =
    i >= Array.length t.fields
    || (Ternary.matches t.fields.(i) (Header.field h i) && go (i + 1))
  in
  go 0

let is_any t = Array.for_all Ternary.is_any t.fields

let specified_bits t =
  Array.fold_left (fun acc f -> acc + Ternary.specified_bits f) 0 t.fields

let size_log2 t = Array.fold_left (fun acc f -> acc + Ternary.wildcard_bits f) 0 t.fields
let size t = Float.pow 2. (float_of_int (size_log2 t))

let inter a b =
  let n = Array.length a.fields in
  let out = Array.make n a.fields.(0) in
  let rec go i =
    if i >= n then Some { a with fields = out }
    else
      match Ternary.inter a.fields.(i) b.fields.(i) with
      | None -> None
      | Some f ->
          out.(i) <- f;
          go (i + 1)
  in
  go 0

let overlaps a b = Option.is_some (inter a b)
let subsumes a b = Array.for_all2 Ternary.subsumes a.fields b.fields

(* Exact-union merge of hyper-rectangles: all fields equal except one,
   where the two ternary values are buddies.  The result covers exactly
   the union of the operands, so replacing both rules by the merged rule
   can never change which headers are covered. *)
let buddy_union a b =
  let n = Array.length a.fields in
  let rec go i merged =
    if i >= n then Option.map (fun (j, f) ->
        let fields = Array.copy a.fields in
        fields.(j) <- f;
        { a with fields }) merged
    else if Ternary.equal a.fields.(i) b.fields.(i) then go (i + 1) merged
    else
      match (merged, Ternary.buddy_union a.fields.(i) b.fields.(i)) with
      | None, Some f -> go (i + 1) (Some (i, f))
      | _, _ -> None (* two differing fields, or not buddies *)
  in
  go 0 None

(* Disjoint tuple subtraction: the piece for field [i] combines the
   fields before [i] clipped to [b], a disjoint piece of [a_i - b_i] at
   [i], and [a]'s own fields after [i].  Pieces from different [i] differ
   on field [i] (one is inside [b_i], the other outside), so the whole
   cover is pairwise disjoint. *)
let subtract a b =
  match inter a b with
  | None -> [ a ]
  | Some _ ->
      let n = Array.length a.fields in
      let rec go i acc =
        if i >= n then List.rev acc
        else
          let pieces = Ternary.subtract a.fields.(i) b.fields.(i) in
          let acc =
            List.fold_left
              (fun acc piece ->
                let fields =
                  Array.mapi
                    (fun j f ->
                      if j < i then Option.get (Ternary.inter f b.fields.(j))
                      else if j = i then piece
                      else f)
                    a.fields
                in
                { a with fields } :: acc)
              acc pieces
          in
          go (i + 1) acc
      in
      go 0 []

let subtract_all a bs =
  List.fold_left
    (fun pieces b -> List.concat_map (fun p -> subtract p b) pieces)
    [ a ] bs

(* Witness search for a - union(bs) != empty: clip away one blocker at a
   time, branching over the disjoint pieces, bailing out at the first
   piece that survives every blocker. *)
let diff_nonempty a bs =
  let rec go piece = function
    | [] -> true
    | b :: rest ->
        if not (overlaps piece b) then go piece rest
        else List.exists (fun q -> go q rest) (subtract piece b)
  in
  go a bs

let clip_to_holder a h b =
  if not (matches a h) then invalid_arg "Pred.clip_to_holder: header outside a";
  if matches b h then invalid_arg "Pred.clip_to_holder: header inside b";
  match List.find_opt (fun q -> matches q h) (subtract a b) with
  | Some q -> q
  | None -> invalid_arg "Pred.clip_to_holder: no piece holds the header"

let split p fi bit =
  match Ternary.split p.fields.(fi) bit with
  | None -> None
  | Some (lo, hi) -> Some (with_field p fi lo, with_field p fi hi)

let random_point rand_bits t =
  Header.make t.schema (Array.map (Ternary.random_point rand_bits) t.fields)

let enumerate ?(limit = 256) t =
  (* Cartesian product of per-field enumerations, cut off at [limit]. *)
  let rec go i acc =
    if i >= Array.length t.fields then acc
    else
      let vals = Ternary.enumerate ~limit t.fields.(i) in
      let acc =
        List.concat_map (fun partial -> List.map (fun v -> v :: partial) vals) acc
      in
      let acc = List.filteri (fun k _ -> k < limit) acc in
      go (i + 1) acc
  in
  go 0 [ [] ]
  |> List.map (fun rev_fields -> Header.make t.schema (Array.of_list (List.rev rev_fields)))

(** Predicates: ternary tuples over a schema.

    A predicate denotes a hyper-rectangular region of the flowspace — one
    ternary value per schema field.  Rules, partitions and cache entries
    all carry predicates; the DIFANE partitioner cuts them, and the
    cache-splicing algorithm subtracts them. *)

type t

(** {1 Construction} *)

val any : Schema.t -> t
(** The whole flowspace. *)

val make : Schema.t -> Ternary.t list -> t
(** One ternary value per field, in schema order.
    @raise Invalid_argument on arity or width mismatch. *)

val of_fields : Schema.t -> (string * Ternary.t) list -> t
(** Named construction; unnamed fields are fully wildcarded.
    @raise Not_found on an unknown field name,
    @raise Invalid_argument on width mismatch. *)

val of_strings : Schema.t -> (string * string) list -> t
(** [of_fields] with {!Ternary.of_string} applied to each value. *)

val with_field : t -> int -> Ternary.t -> t
(** Functional update of one field. *)

(** {1 Accessors} *)

val schema : t -> Schema.t
val field : t -> int -> Ternary.t
val arity : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** {1 Predicates} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val matches : t -> Header.t -> bool
val is_any : t -> bool

val specified_bits : t -> int
(** Total non-wildcard bits over all fields — the "TCAM specificity". *)

val size : t -> float
(** Number of concrete headers denoted (product of field sizes). *)

val size_log2 : t -> int
(** [log2 (size t)]: total wildcard bits.  Exact, and safer than [size]
    for comparisons. *)

(** {1 Algebra} *)

val inter : t -> t -> t option
val overlaps : t -> t -> bool
val subsumes : t -> t -> bool

val buddy_union : t -> t -> t option
(** [buddy_union a b] is the predicate denoting {e exactly} the union of
    [a] and [b], when the two hyper-rectangles are adjacent: equal on
    every field but one, where the ternary values are buddies
    ({!Ternary.buddy_union}).  Merging such a pair into the result covers
    no header the operands did not — the legality core of cache-rule
    aggregation.  [None] when no exact single-rectangle union exists
    (including when [a] = [b]). *)

val subtract : t -> t -> t list
(** [subtract a b] is a pairwise-disjoint list of predicates whose union
    is [a - b].  At most [Schema.total_bits] pieces. *)

val subtract_all : t -> t list -> t list
(** [subtract_all a bs] is a disjoint cover of [a - union bs].  Piece
    count can grow with [List.length bs]; used on the short
    higher-priority-overlap lists of cache splicing. *)

val diff_nonempty : t -> t list -> bool
(** [diff_nonempty a bs] iff some header lies in [a] but in no [b] —
    i.e. [subtract_all a bs <> []], decided by depth-first witness search
    with early exit instead of materialising the cover.  This is the
    predicate dependency analysis actually needs, and it stays fast where
    the full cover would fragment combinatorially. *)

val clip_to_holder : t -> Header.t -> t -> t
(** [clip_to_holder a h b]: given [Pred.matches a h] and
    [not (Pred.matches b h)], the disjoint piece of [a - b] that contains
    [h].  One subtraction step of the splicing walk.
    @raise Invalid_argument if the preconditions fail. *)

val split : t -> int -> int -> (t * t) option
(** [split p field bit] cuts predicate [p] along one wildcard bit of one
    field; [None] if that bit is specified.  The halves are disjoint and
    their union is [p]. *)

val random_point : (int -> int) -> t -> Header.t
(** Uniform concrete header inside the predicate, given a [rand_bits]
    source. *)

val enumerate : ?limit:int -> t -> Header.t list
(** Concrete headers of the predicate, up to [limit] (default 256). *)

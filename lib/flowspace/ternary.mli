(** Ternary bit-vectors: the atoms of flowspace.

    A ternary value of width [w] assigns to each of its [w] bit positions
    one of [0], [1] or [x] ("don't care").  It denotes the set of concrete
    [w]-bit values obtained by substituting [0]/[1] for every [x].  TCAM
    entries, IP prefixes and OpenFlow wildcard fields are all ternary
    values, and the DIFANE partitioning and cache-splicing algorithms are
    built on the algebra below (intersection, subsumption, disjoint
    subtraction).

    Bit positions are numbered from the most significant bit: the first
    character of [to_string t] is bit [width t - 1].  Widths up to 62 bits
    are supported, which covers every OpenFlow 1.0 header field. *)

type t

val max_width : int
(** Largest supported width (62). *)

(** {1 Construction} *)

val make : width:int -> value:int64 -> mask:int64 -> t
(** [make ~width ~value ~mask] is the ternary value whose bit [i] is
    specified (as bit [i] of [value]) when bit [i] of [mask] is set, and
    is [x] otherwise.  Value bits outside the mask or the width are
    ignored.  @raise Invalid_argument if [width] is not in [1..max_width]. *)

val any : int -> t
(** [any w] is the all-wildcard value of width [w]: it matches everything. *)

val exact : width:int -> int64 -> t
(** [exact ~width v] has every bit specified; it matches only [v]. *)

val prefix : width:int -> int64 -> int -> t
(** [prefix ~width v len] specifies the [len] most significant bits to the
    corresponding bits of [v]; the rest are wildcards.  [prefix ~width:32 v
    24] is the IPv4 prefix [v/24].  @raise Invalid_argument if [len] is not
    in [0..width]. *)

val of_string : string -> t
(** [of_string "01xx"] parses a ternary value, most significant bit first.
    Accepts ['0'], ['1'], ['x'], ['X'] and ignores ['_'] separators.
    @raise Invalid_argument on other characters or unsupported widths. *)

val of_ipv4 : string -> t
(** [of_ipv4 "10.1.2.0/24"] is the 32-bit prefix; a bare address
    ("10.1.2.3") is an exact /32 match.
    @raise Invalid_argument on malformed addresses or prefix lengths. *)

val of_value_string : width:int -> string -> t
(** Operator-friendly field syntax, by shape: [*] → {!any}; dotted quad
    or CIDR → {!of_ipv4} (width must be 32); a [0/1/x] string whose digit
    count equals [width] → {!of_string}; a decimal integer → {!exact}.
    An all-[01] token is binary exactly when its digit count equals the
    field width, decimal otherwise.
    @raise Invalid_argument when the shape and width clash or nothing
    parses. *)

(** {1 Accessors} *)

val width : t -> int
val value : t -> int64
(** Specified bits; wildcard positions read as [0]. *)

val mask : t -> int64
(** Set bits are specified positions. *)

val bit : t -> int -> [ `Zero | `One | `Any ]
(** [bit t i] is the symbol at position [i] (0 = least significant).
    @raise Invalid_argument if [i] is outside [0..width-1]. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

(** {1 Predicates} *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val matches : t -> int64 -> bool
(** [matches t v] is true iff the concrete value [v] is in the set
    denoted by [t]. *)

val is_any : t -> bool
val is_exact : t -> bool

val specified_bits : t -> int
(** Number of non-wildcard positions. *)

val wildcard_bits : t -> int

val size : t -> float
(** Number of concrete values denoted, i.e. [2. ** wildcard_bits].  Float
    to stay exact-enough for the up-to-62-bit widths used here. *)

(** {1 Algebra} *)

val inter : t -> t -> t option
(** [inter a b] is the ternary value denoting the set intersection of [a]
    and [b], or [None] when they are disjoint.  The intersection of two
    ternary values is always itself ternary. *)

val overlaps : t -> t -> bool
(** [overlaps a b] iff [inter a b <> None]. *)

val subsumes : t -> t -> bool
(** [subsumes a b] iff the set of [a] contains the set of [b]. *)

val buddy_union : t -> t -> t option
(** [buddy_union a b] is the ternary value denoting {e exactly} the union
    of [a] and [b], when one exists and is distinct from both: the two
    values must share a mask and differ in exactly one specified bit,
    which the result wildcards (two adjacent /32s into one /31).  [None]
    otherwise — in particular when [a] and [b] are equal, overlap, or are
    not mergeable without covering extra values.
    @raise Invalid_argument on width mismatch. *)

val subtract : t -> t -> t list
(** [subtract a b] is a list of {e pairwise-disjoint} ternary values whose
    union is exactly the set difference [a - b].  Returns [[a]] when the
    operands are disjoint and [[]] when [b] subsumes [a].  The list has at
    most [width a] elements. *)

val split : t -> int -> (t * t) option
(** [split t i] refines the wildcard at bit [i] into the two halves with
    that bit fixed to [0] and to [1].  [None] if bit [i] is already
    specified.  This is the cut primitive of the DIFANE partitioner. *)

val first_wildcard_msb : t -> int option
(** Position of the most significant wildcard bit, if any. *)

val enumerate : ?limit:int -> t -> int64 list
(** All concrete values of [t] in increasing order, up to [limit]
    (default 1024). *)

val random_point : (int -> int) -> t -> int64
(** [random_point rand_bits t] draws a uniform member of [t]; [rand_bits n]
    must return [n] uniformly random bits as a non-negative int. *)

(* Instrument cells are atomic so worker domains can bump them while the
   simulator is sharded across cores: every mutation is a commutative
   monoid operation (add, max), so the *final* value any snapshot sees is
   independent of interleaving — the registry stays deterministic under
   parallelism even though individual increments race. *)

type counter = int Atomic.t
type gauge = float Atomic.t

type histogram = {
  bounds : float array;  (* strictly increasing upper bounds *)
  counts : counter array;  (* length bounds + 1; last is the +inf bucket *)
  sum : gauge;
  hcount : counter;
}

type cell = C of counter | G of gauge | H of histogram

(* Keyed by name + canonical (sorted) labels; the key also fixes snapshot
   order, so it doubles as the determinism guarantee. *)
type registered = { name : string; labels : (string * string) list; cell : cell }

let registry : (string, registered) Hashtbl.t = Hashtbl.create 64

(* Registration and snapshots are rare; a single lock keeps the Hashtbl
   safe if a worker domain ever registers an instrument. *)
let registry_lock = Mutex.create ()

let locked f =
  Mutex.lock registry_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock registry_lock) f

let atomic_add_float (a : float Atomic.t) v =
  let rec go () =
    let cur = Atomic.get a in
    if not (Atomic.compare_and_set a cur (cur +. v)) then go ()
  in
  go ()

let atomic_max_float (a : float Atomic.t) v =
  let rec go () =
    let cur = Atomic.get a in
    if v > cur && not (Atomic.compare_and_set a cur v) then go ()
  in
  go ()

let canon_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let key name labels =
  String.concat "\x00" (name :: List.concat_map (fun (k, v) -> [ k; v ]) labels)

let kind_name = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let register name labels make check =
  let labels = canon_labels labels in
  let k = key name labels in
  locked @@ fun () ->
  match Hashtbl.find_opt registry k with
  | Some r -> (
      match check r.cell with
      | Some v -> v
      | None ->
          invalid_arg
            (Printf.sprintf "Telemetry: %S is already registered as a %s" name
               (kind_name r.cell)))
  | None ->
      let cell, v = make () in
      Hashtbl.replace registry k { name; labels; cell };
      v

let counter ?(labels = []) name =
  register name labels
    (fun () ->
      let c = Atomic.make 0 in
      (C c, c))
    (function C c -> Some c | _ -> None)

let incr c = ignore (Atomic.fetch_and_add c 1)
let add c n = ignore (Atomic.fetch_and_add c n)
let value c = Atomic.get c

let gauge ?(labels = []) name =
  register name labels
    (fun () ->
      let g = Atomic.make 0. in
      (G g, g))
    (function G g -> Some g | _ -> None)

let set g v = Atomic.set g v
let set_max g v = atomic_max_float g v
let gauge_value g = Atomic.get g

(* ~15.6 ns .. 4^13 µs ≈ 134 s, log-spaced: wide enough for everything
   from a single TCAM lookup (tens of nanoseconds on the zero-alloc hot
   path) to a whole chaos run without per-site tuning.  The three
   sub-microsecond rungs keep nanosecond-scale latencies from collapsing
   into one bucket; every pre-existing bound is still present. *)
let default_buckets = Array.init 17 (fun i -> 1e-6 *. (4. ** float_of_int (i - 3)))

let histogram ?(labels = []) ?(buckets = default_buckets) name =
  register name labels
    (fun () ->
      let n = Array.length buckets in
      for i = 1 to n - 1 do
        if buckets.(i) <= buckets.(i - 1) then
          invalid_arg "Telemetry.histogram: bucket bounds must be strictly increasing"
      done;
      let h =
        {
          bounds = Array.copy buckets;
          counts = Array.init (n + 1) (fun _ -> Atomic.make 0);
          sum = Atomic.make 0.;
          hcount = Atomic.make 0;
        }
      in
      (H h, h))
    (function H h -> Some h | _ -> None)

let observe h v =
  let n = Array.length h.bounds in
  let i = ref 0 in
  while !i < n && v > h.bounds.(!i) do
    Stdlib.incr i
  done;
  ignore (Atomic.fetch_and_add h.counts.(!i) 1);
  atomic_add_float h.sum v;
  ignore (Atomic.fetch_and_add h.hcount 1)

let histogram_count h = Atomic.get h.hcount
let histogram_sum h = Atomic.get h.sum

type value_kind =
  | Counter of int
  | Gauge of float
  | Histogram of { buckets : (float * int) list; count : int; sum : float }

type sample = { name : string; labels : (string * string) list; v : value_kind }

let compare_labels a b =
  compare (List.map (fun (k, v) -> (k, v)) a) (List.map (fun (k, v) -> (k, v)) b)

let snapshot () =
  (locked @@ fun () ->
   Hashtbl.fold
     (fun _ r acc ->
       let v =
         match r.cell with
         | C c -> Counter (Atomic.get c)
         | G g -> Gauge (Atomic.get g)
         | H h ->
             let cum = ref 0 in
             let buckets =
               List.init
                 (Array.length h.counts)
                 (fun i ->
                   cum := !cum + Atomic.get h.counts.(i);
                   let bound =
                     if i < Array.length h.bounds then h.bounds.(i) else infinity
                   in
                   (bound, !cum))
             in
             Histogram
               { buckets; count = Atomic.get h.hcount; sum = Atomic.get h.sum }
       in
       { name = r.name; labels = r.labels; v } :: acc)
     registry [])
  |> List.sort (fun a b ->
         match String.compare a.name b.name with
         | 0 -> compare_labels a.labels b.labels
         | c -> c)

let counter_total samples name =
  List.fold_left
    (fun acc s ->
      match s.v with Counter n when s.name = name -> acc + n | _ -> acc)
    0 samples

let find samples ?labels name =
  List.find_map
    (fun s ->
      if s.name = name
         && match labels with None -> true | Some l -> s.labels = canon_labels l
      then Some s.v
      else None)
    samples

(* ---- trace ring buffer ---- *)

module Trace = struct
  type event = { at : float; dur : float; name : string; detail : string }

  let dummy = { at = 0.; dur = 0.; name = ""; detail = "" }

  (* One ring per lane, one writer per lane: a sharded simulator binds
     each worker domain to its shard's lane, so emission stays a plain
     store and the read side concatenates lanes in lane-id order — the
     same deterministic merge rule as the engine's shard merge.  The
     single-domain default is lane 0, bound to the enabling domain. *)
  type lane = {
    lane_id : int;
    ring : event array;
    mutable next : int;  (* total emitted; next slot = next mod capacity *)
  }

  type state = {
    mutable on : bool;
    mutable capacity : int;
    mutable lanes : lane list;
  }

  let st = { on = false; capacity = 0; lanes = [] }
  let lock = Mutex.create ()

  let locked f =
    Mutex.lock lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

  let lane_for id =
    locked @@ fun () ->
    match List.find_opt (fun l -> l.lane_id = id) st.lanes with
    | Some l -> l
    | None ->
        let l = { lane_id = id; ring = Array.make st.capacity dummy; next = 0 } in
        st.lanes <- l :: st.lanes;
        l

  let dls : lane option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

  let bind ~lane = if st.on then Domain.DLS.set dls (Some (lane_for lane))
  let unbind () = Domain.DLS.set dls None

  (* An emitting domain nobody bound still gets its own private lane
     (far above any shard index), never a data race on someone else's. *)
  let cur_lane () =
    match Domain.DLS.get dls with
    | Some l -> l
    | None ->
        let l = lane_for (1_000_000 + (Domain.self () :> int)) in
        Domain.DLS.set dls (Some l);
        l

  let enable ?(capacity = 4096) () =
    if capacity < 1 then invalid_arg "Telemetry.Trace.enable: capacity < 1";
    locked (fun () ->
        st.capacity <- capacity;
        st.lanes <- []);
    st.on <- true;
    Domain.DLS.set dls None;
    bind ~lane:0

  let disable () = st.on <- false
  let enabled () = st.on

  let clear () =
    locked @@ fun () ->
    List.iter
      (fun l ->
        Array.fill l.ring 0 (Array.length l.ring) dummy;
        l.next <- 0)
      st.lanes

  let span ~at ~dur ~name detail =
    if st.on then begin
      let l = cur_lane () in
      l.ring.(l.next mod Array.length l.ring) <- { at; dur; name; detail };
      l.next <- l.next + 1
    end

  let event ~at ~name detail = span ~at ~dur:0. ~name detail

  let sorted_lanes () =
    locked (fun () ->
        List.sort (fun a b -> Int.compare a.lane_id b.lane_id) st.lanes)

  let emitted () = List.fold_left (fun acc l -> acc + l.next) 0 (sorted_lanes ())

  let lane_events l =
    let cap = Array.length l.ring in
    if cap = 0 then []
    else begin
      let n = min l.next cap in
      let first = if l.next <= cap then 0 else l.next mod cap in
      List.init n (fun i -> l.ring.((first + i) mod cap))
    end

  let events () = List.concat_map lane_events (sorted_lanes ())

  let pp_timeline ?filter ppf () =
    let evs = events () in
    let dropped = emitted () - List.length evs in
    let evs =
      match filter with None -> evs | Some keep -> List.filter keep evs
    in
    if evs = [] then Format.fprintf ppf "(trace empty)@."
    else begin
      if dropped > 0 then Format.fprintf ppf "... %d earlier events overwritten@." dropped;
      List.iter
        (fun e ->
          if e.dur > 0. then
            Format.fprintf ppf "%10.3f  %-10s %s [%.3fs]@." e.at e.name e.detail e.dur
          else Format.fprintf ppf "%10.3f  %-10s %s@." e.at e.name e.detail)
        evs
    end
end

let reset () =
  (locked @@ fun () ->
   Hashtbl.iter
     (fun _ r ->
       match r.cell with
       | C c -> Atomic.set c 0
       | G g -> Atomic.set g 0.
       | H h ->
           Array.iter (fun c -> Atomic.set c 0) h.counts;
           Atomic.set h.sum 0.;
           Atomic.set h.hcount 0)
     registry);
  Trace.clear ()

(* ---- rendering ---- *)

let pp_labels ppf labels =
  if labels <> [] then
    Format.fprintf ppf "{%s}"
      (String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels))

let pp_text ppf samples =
  List.iter
    (fun s ->
      match s.v with
      | Counter n -> Format.fprintf ppf "%s%a %d@." s.name pp_labels s.labels n
      | Gauge g -> Format.fprintf ppf "%s%a %g@." s.name pp_labels s.labels g
      | Histogram { buckets; count; sum } ->
          Format.fprintf ppf "%s%a count=%d sum=%g@." s.name pp_labels s.labels count sum;
          List.iter
            (fun (bound, cum) ->
              if cum > 0 then
                if Float.is_integer (Float.round bound) && bound < 1e15 then
                  Format.fprintf ppf "  le=%g %d@." bound cum
                else Format.fprintf ppf "  le=%.3g %d@." bound cum)
            buckets)
    samples

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_nan f then "null"
  else if f = infinity then "\"+inf\""
  else if f = neg_infinity then "\"-inf\""
  else Printf.sprintf "%.17g" f

let to_json samples =
  let b = Buffer.create 1024 in
  Buffer.add_string b "{\"schema\":\"difane-metrics-v1\",\"metrics\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "{\"name\":\"%s\"" (json_escape s.name));
      if s.labels <> [] then begin
        Buffer.add_string b ",\"labels\":{";
        List.iteri
          (fun j (k, v) ->
            if j > 0 then Buffer.add_char b ',';
            Buffer.add_string b
              (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
          s.labels;
        Buffer.add_char b '}'
      end;
      (match s.v with
      | Counter n ->
          Buffer.add_string b (Printf.sprintf ",\"type\":\"counter\",\"value\":%d" n)
      | Gauge g ->
          Buffer.add_string b
            (Printf.sprintf ",\"type\":\"gauge\",\"value\":%s" (json_float g))
      | Histogram { buckets; count; sum } ->
          Buffer.add_string b
            (Printf.sprintf ",\"type\":\"histogram\",\"count\":%d,\"sum\":%s,\"buckets\":["
               count (json_float sum));
          List.iteri
            (fun j (bound, cum) ->
              if j > 0 then Buffer.add_char b ',';
              Buffer.add_string b
                (Printf.sprintf "{\"le\":%s,\"count\":%d}" (json_float bound) cum))
            buckets;
          Buffer.add_char b ']');
      Buffer.add_char b '}')
    samples;
  Buffer.add_string b "]}";
  Buffer.contents b

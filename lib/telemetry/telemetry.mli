(** Process-wide metrics registry and event-trace ring buffer.

    DIFANE's evaluation is measurement-driven — flow-setup throughput,
    cache behaviour, loss under faults — so measurement is part of the
    architecture, not bolted on per experiment.  Every stateful module
    (TCAM banks, switches, channels, control planes, the cluster, the
    simulators) registers named, optionally labelled instruments here and
    bumps them on the same code path that updates its private tallies, so
    one {!snapshot} call reports the whole system and the per-module
    [stats] accessors can never drift from what the registry says.

    Design constraints, in order:

    - {b zero-allocation increments}: an instrument handle is a mutable
      cell; {!incr}/{!add}/{!observe} mutate it in place.  Registry
      lookup (hashing, label canonicalisation) happens once, at
      {!counter}/{!gauge}/{!histogram} time — create handles at module or
      object creation, never on the hot path;
    - {b deterministic snapshots}: {!snapshot} orders samples by
      [(name, labels)], so two runs that did the same work render
      byte-identical text/JSON — the property the seeded-replay
      experiments extend to their telemetry;
    - {b bounded memory}: the trace buffer is a fixed-capacity ring,
      disabled by default; when off, an emit is one load and a branch;
    - {b domain safety}: instrument cells are atomic and every mutation is
      a commutative monoid operation (add, max), so worker domains of a
      sharded simulation can bump shared instruments and the final
      snapshot is independent of interleaving.  Registration and
      snapshots take a lock; the trace ring remains single-domain.

    The registry is process-wide and cumulative: instruments created
    twice under the same name and labels share one cell, and values
    accumulate across runs until {!reset}.  Callers that want a
    per-run view reset first (the CLI's [--metrics] does). *)

(** {1 Instruments} *)

type counter
(** Monotonic integer count (until {!reset}). *)

type gauge
(** Last-set floating-point level (queue depth, epoch, occupancy). *)

type histogram
(** Bucketed distribution of observed values with count and sum. *)

val counter : ?labels:(string * string) list -> string -> counter
(** Get or create.  @raise Invalid_argument if the name+labels pair is
    already registered as a different instrument kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int

val gauge : ?labels:(string * string) list -> string -> gauge
val set : gauge -> float -> unit

val set_max : gauge -> float -> unit
(** High-water mark: keep the larger of the current and given value. *)

val gauge_value : gauge -> float

val default_buckets : float array
(** Log-spaced seconds, ~15.6 ns to ~134 s (powers of 4): the span of
    everything this codebase times, from a single zero-alloc TCAM
    lookup (tens of nanoseconds) to a whole chaos run. *)

val histogram :
  ?labels:(string * string) list -> ?buckets:float array -> string -> histogram
(** [buckets] are upper bounds, strictly increasing; an implicit +∞
    bucket catches the rest.  Defaults to {!default_buckets}.
    @raise Invalid_argument on a kind clash or, for a new instrument,
    unsorted bounds. *)

val observe : histogram -> float -> unit
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** {1 Snapshots} *)

type value_kind =
  | Counter of int
  | Gauge of float
  | Histogram of {
      buckets : (float * int) list;
          (** (upper bound, cumulative count), +∞ last *)
      count : int;
      sum : float;
    }

type sample = { name : string; labels : (string * string) list; v : value_kind }

val snapshot : unit -> sample list
(** Every registered instrument, sorted by [(name, labels)] — the
    deterministic whole-system view. *)

val reset : unit -> unit
(** Zero every instrument (registration survives; handles stay valid)
    and clear the trace buffer. *)

val counter_total : sample list -> string -> int
(** Sum of every counter sample with this name across its label sets;
    0 if none.  The convenient form for assertions and reports. *)

val find : sample list -> ?labels:(string * string) list -> string -> value_kind option

val pp_text : Format.formatter -> sample list -> unit
(** One [name{k=v,...} value] line per sample, snapshot order. *)

val to_json : sample list -> string
(** The same snapshot as a self-contained JSON document:
    [{"schema":"difane-metrics-v1","metrics":[...]}]. *)

val json_float : float -> string
(** Render a float as a JSON token: [nan] becomes [null] and the
    infinities become the strings ["+inf"]/["-inf"] — JSON has no
    spelling for any of them, and a bare [nan] in the output makes the
    whole document unparseable.  Every JSON renderer in the tree must
    route floats that can be undefined (e.g. {!Tcam.hit_rate} before any
    lookup) through this. *)

(** {1 Event tracing} *)

module Trace : sig
  (** A bounded ring of typed, simulated-time-stamped events.  Disabled
      by default; the fault-injection paths emit into it when enabled, so
      [difane trace] can print the causal timeline of a chaos run
      without the string log paying for it when nobody is looking. *)

  type event = {
    at : float;  (** simulated seconds *)
    dur : float;  (** span length; 0 for point events *)
    name : string;  (** event class, e.g. "control", "cluster", "takeover" *)
    detail : string;
  }

  val enable : ?capacity:int -> unit -> unit
  (** Start recording into fresh lanes ([capacity] events per lane,
      default 4096) and bind the calling domain to lane 0 — the
      single-domain default.
      @raise Invalid_argument if [capacity < 1]. *)

  val disable : unit -> unit
  val enabled : unit -> bool

  val clear : unit -> unit
  (** Empty every lane (bindings and capacity survive). *)

  val bind : lane:int -> unit
  (** Route this domain's events to [lane]'s ring (created on first
      use).  A sharded simulator binds each worker to its shard index —
      one writer per lane — so a multi-domain run records safely and
      {!events} stays deterministic.  No-op when disabled. *)

  val unbind : unit -> unit
  (** Drop this domain's lane binding.  An unbound domain that emits
      anyway gets a private high-numbered lane, never a shared ring. *)

  val event : at:float -> name:string -> string -> unit
  (** Record a point event; no-op (one branch) when disabled. *)

  val span : at:float -> dur:float -> name:string -> string -> unit
  (** Record a span that started at [at] and lasted [dur] seconds. *)

  val emitted : unit -> int
  (** Events emitted since enable/clear, including any the ring has
      since overwritten. *)

  val events : unit -> event list
  (** Lanes in lane-id order, each lane oldest first, at most
      [capacity] events per lane (the newest survive wraparound) — the
      deterministic merge: the same run emits the same list at any
      domain count. *)

  val pp_timeline : ?filter:(event -> bool) -> Format.formatter -> unit -> unit
  (** The buffer as a timeline, one line per event surviving [filter]
      (default: all). *)
end

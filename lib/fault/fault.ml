type link = {
  drop : float;
  duplicate : float;
  corrupt : float;
  jitter : float;
  reorder : float;
}

let check_prob name p =
  if p < 0. || p > 1. then invalid_arg (Printf.sprintf "Fault: %s not in [0,1]" name)

let make_link ~drop ~duplicate ~corrupt ~jitter ~reorder =
  check_prob "drop" drop;
  check_prob "duplicate" duplicate;
  check_prob "corrupt" corrupt;
  check_prob "reorder" reorder;
  if jitter < 0. then invalid_arg "Fault: negative jitter";
  { drop; duplicate; corrupt; jitter; reorder }

let ideal_link = { drop = 0.; duplicate = 0.; corrupt = 0.; jitter = 0.; reorder = 0. }

let lossy_link ?duplicate ?corrupt ?jitter ?reorder drop =
  let quarter = drop /. 4. in
  make_link ~drop
    ~duplicate:(Option.value ~default:quarter duplicate)
    ~corrupt:(Option.value ~default:quarter corrupt)
    ~jitter:(Option.value ~default:0. jitter)
    ~reorder:(Option.value ~default:quarter reorder)

type event =
  | Crash of { switch : int; at : float }
  | Restart of { switch : int; at : float }
  | Link_down of { switch : int; at : float }
  | Link_up of { switch : int; at : float }
  | Controller_crash of { controller : int; at : float }
  | Controller_restart of { controller : int; at : float }

let event_time = function
  | Crash { at; _ } | Restart { at; _ } | Link_down { at; _ } | Link_up { at; _ }
  | Controller_crash { at; _ } | Controller_restart { at; _ } ->
      at

let pp_event ppf = function
  | Crash { switch; at } -> Format.fprintf ppf "t=%.3f crash(sw%d)" at switch
  | Restart { switch; at } -> Format.fprintf ppf "t=%.3f restart(sw%d)" at switch
  | Link_down { switch; at } -> Format.fprintf ppf "t=%.3f link_down(sw%d)" at switch
  | Link_up { switch; at } -> Format.fprintf ppf "t=%.3f link_up(sw%d)" at switch
  | Controller_crash { controller; at } ->
      Format.fprintf ppf "t=%.3f controller_crash(c%d)" at controller
  | Controller_restart { controller; at } ->
      Format.fprintf ppf "t=%.3f controller_restart(c%d)" at controller

type plan = { seed : int; link : link; events : event list; controllers : int }

let plan ?(seed = 42) ?(link = ideal_link) ?(events = []) ?(controllers = 1) () =
  if controllers < 1 then invalid_arg "Fault.plan: controllers < 1";
  {
    seed;
    link;
    events =
      List.stable_sort (fun a b -> Float.compare (event_time a) (event_time b)) events;
    controllers;
  }

type injector = { link : link; rng : Prng.t }

let injector (plan : plan) ~channel =
  (* a stream that depends on (seed, channel) only: channel ids far apart
     in Prng's splitmix state space so adjacent channels do not correlate *)
  { link = plan.link; rng = Prng.create ((plan.seed * 0x3779) lxor (channel * 0x9e37)) }

type delivery = { extra_delay : float; held_back : bool; corrupt : int option }
type fate = Lost | Deliver of delivery list

let fate t =
  (* fixed draw count per frame keeps the stream aligned across replays
     even when the link config makes some draws irrelevant *)
  let u_drop = Prng.float t.rng in
  let u_dup = Prng.float t.rng in
  let u_cor = Prng.float t.rng in
  let u_reord = Prng.float t.rng in
  let u_jit1 = Prng.float t.rng in
  let u_jit2 = Prng.float t.rng in
  let token = 1 + Prng.int t.rng 0x3fffffff in
  if u_drop < t.link.drop then Lost
  else
    let delivery u_jit =
      {
        extra_delay = u_jit *. t.link.jitter;
        held_back = u_reord < t.link.reorder;
        corrupt = (if u_cor < t.link.corrupt then Some token else None);
      }
    in
    let first = delivery u_jit1 in
    if u_dup < t.link.duplicate then
      (* the duplicate travels clean: corrupting both copies of a frame
         would make duplication indistinguishable from loss *)
      Deliver [ first; { (delivery u_jit2) with corrupt = None } ]
    else Deliver [ first ]

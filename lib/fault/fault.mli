(** Deterministic fault injection for the simulated control plane.

    A {!plan} describes everything that goes wrong in a run: the
    steady-state imperfection of every control channel (frame drop,
    duplication, corruption, latency jitter, reordering) and a schedule
    of discrete events (switch crashes and restarts, link flaps).  The
    plan is seeded; every channel derives an independent random stream
    from the seed and its channel id, so the same plan replayed over the
    same message sequence produces byte-identical failures regardless of
    how channels interleave.  That determinism is what makes chaos runs
    debuggable: a failure found at seed 7 is reproduced by seed 7. *)

(** Per-frame failure probabilities of one control channel. *)
type link = {
  drop : float;  (** frame silently lost *)
  duplicate : float;  (** frame delivered twice *)
  corrupt : float;  (** one byte of the frame is flipped in flight *)
  jitter : float;  (** extra delivery latency, uniform in [0, jitter] s *)
  reorder : float;  (** frame is held back one extra channel latency *)
}

val ideal_link : link
(** All-zero: the reliable channel the happy path assumes. *)

val lossy_link :
  ?duplicate:float -> ?corrupt:float -> ?jitter:float -> ?reorder:float ->
  float -> link
(** [lossy_link drop] with optional companions; unset fields default to
    a small fraction of [drop] (duplicate, corrupt, reorder = drop/4)
    and no jitter, so a single loss-rate knob exercises every failure
    mode at once.  @raise Invalid_argument if any probability is outside
    [0, 1]. *)

(** Scheduled control-plane events, applied by {!Control_plane.tick}
    (crash/restart also drive the data-plane reachability model when a
    plan is given to [Flowsim.run_difane]). *)
type event =
  | Crash of { switch : int; at : float }
      (** the device powers off: loses all switch state, stops
          responding; tunnels toward it fail *)
  | Restart of { switch : int; at : float }
      (** the device comes back blank and must be resynced *)
  | Link_down of { switch : int; at : float }
      (** control link flaps down: frames in either direction die on the
          wire (the device itself keeps running on its installed state) *)
  | Link_up of { switch : int; at : float }
  | Controller_crash of { controller : int; at : float }
      (** a controller replica dies losing its in-memory state; if it was
          the leader, the surviving replicas elect a new one which
          rebuilds the deployment from the journal ({!Cluster}).  Ignored
          by a single [Control_plane]. *)
  | Controller_restart of { controller : int; at : float }
      (** the replica rejoins as a standby (snapshot-load + replay) *)

val event_time : event -> float
val pp_event : Format.formatter -> event -> unit

type plan = {
  seed : int;
  link : link;
  events : event list;
  controllers : int;  (** controller replicas (default 1: no replication) *)
}

val plan : ?seed:int -> ?link:link -> ?events:event list -> ?controllers:int -> unit -> plan
(** Build a plan; [events] are sorted by time.  Defaults: seed 42,
    {!ideal_link}, no events, 1 controller.
    @raise Invalid_argument when [controllers < 1]. *)

(** {1 Per-channel injection} *)

type injector
(** The deterministic fault stream of one channel.  Draws are consumed
    one per frame sent, in send order. *)

val injector : plan -> channel:int -> injector
(** The stream for channel [channel]; distinct ids give independent
    streams, equal ids (same seed) give identical ones. *)

(** What happens to one frame: either it is lost, or it is delivered as
    one or two copies (duplication), each with an extra delay and an
    optional corruption token. *)
type delivery = {
  extra_delay : float;  (** jitter, seconds *)
  held_back : bool;  (** reordered: delay by one extra channel latency *)
  corrupt : int option;  (** when set, flip a byte derived from this token *)
}

type fate = Lost | Deliver of delivery list

val fate : injector -> fate
(** Decide the fate of the next frame.  Consumes a fixed number of
    random draws per call, so streams stay aligned across replays. *)

(* difane — run the paper's experiments and operate on policy files.

   Each experiment subcommand regenerates one table/figure of the SIGCOMM
   2010 evaluation on the simulated substrate; `all` runs the full suite
   in DESIGN.md order.  `check` and `deploy` work on difane-policy files
   (see Policy_io). *)

open Cmdliner

let seed_arg =
  let doc = "PRNG seed; every experiment is deterministic given the seed." in
  Arg.(value & opt int 42 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let quick_arg =
  let doc = "Shrink workload sizes for a fast smoke run." in
  Arg.(value & flag & info [ "q"; "quick" ] ~doc)

let metrics_arg =
  let doc =
    "After the run, dump the full telemetry snapshot (every registered counter,      gauge and histogram, deterministic order) in this format: $(b,text) or $(b,json)."
  in
  Arg.(
    value
    & opt (some (enum [ ("text", `Text); ("json", `Json) ])) None
    & info [ "metrics" ] ~docv:"FORMAT" ~doc)

(* Reset first so the snapshot reports this run alone, not process history. *)
let with_metrics metrics run =
  Telemetry.reset ();
  run ();
  match metrics with
  | None -> ()
  | Some `Text -> Format.printf "%a%!" Telemetry.pp_text (Telemetry.snapshot ())
  | Some `Json -> print_endline (Telemetry.to_json (Telemetry.snapshot ()))

let experiment name summary run =
  let doc = summary in
  let term =
    Term.(
      const (fun seed quick metrics -> with_metrics metrics (fun () -> run ~seed ~quick))
      $ seed_arg $ quick_arg $ metrics_arg)
  in
  Cmd.v (Cmd.info name ~doc) term

(* ---- operator commands over policy files ---- *)

let policy_arg =
  let doc = "Policy file (difane-policy v1 format; see Policy_io)." in
  Arg.(required & opt (some non_dir_file) None & info [ "p"; "policy" ] ~docv:"FILE" ~doc)

let topology_arg =
  let doc =
    "Topology: line:N, star:N, mesh:N, waxman:N or campus:EDGES (seeded by --seed)."
  in
  Arg.(value & opt string "line:8" & info [ "t"; "topology" ] ~docv:"KIND:N" ~doc)

let authorities_arg =
  let doc = "Comma-separated authority switch ids." in
  Arg.(value & opt string "1" & info [ "a"; "authorities" ] ~docv:"IDS" ~doc)

let k_arg =
  let doc = "Number of flowspace partitions." in
  Arg.(value & opt int 8 & info [ "k" ] ~docv:"K" ~doc)

let cache_arg =
  let doc = "Per-switch cache capacity (TCAM entries)." in
  Arg.(value & opt int 1000 & info [ "cache" ] ~docv:"N" ~doc)

let flows_arg =
  let doc = "Flows to simulate." in
  Arg.(value & opt int 20_000 & info [ "flows" ] ~docv:"N" ~doc)

let alpha_arg =
  let doc = "Zipf skew of flow popularity." in
  Arg.(value & opt float 1.0 & info [ "alpha" ] ~docv:"A" ~doc)

let parse_topology ~seed spec =
  let fail () = invalid_arg (Printf.sprintf "unknown topology %S" spec) in
  match String.split_on_char ':' spec with
  | [ kind; n ] -> (
      match (kind, int_of_string_opt n) with
      | "line", Some n -> Topology.line n ()
      | "star", Some n -> Topology.star n ()
      | "mesh", Some n -> Topology.full_mesh n ()
      | "waxman", Some n ->
          let rng = Prng.create seed in
          Topology.waxman ~rand:(fun () -> Prng.float rng) ~nodes:n ()
      | "campus", Some n ->
          let rng = Prng.create seed in
          Topology.campus ~rand:(fun () -> Prng.float rng) ~edge_switches:n ()
      | _ -> fail ())
  | _ -> fail ()

let parse_ids s =
  String.split_on_char ',' s
  |> List.filter_map (fun x -> int_of_string_opt (String.trim x))

let load_policy_or_die policy_file =
  match Policy_io.load policy_file with
  | Ok policy -> policy
  | Error e ->
      Printf.eprintf "error: %s\n" e;
      exit 1

let check_cmd =
  let run policy_file =
    let policy = load_policy_or_die policy_file in
    let shadowed = Classifier.shadowed policy in
    let dead = Classifier.dead_rules policy in
    Printf.printf "rules            : %d\n" (Classifier.length policy);
    Printf.printf "schema           : %s\n"
      (Format.asprintf "%a" Schema.pp (Classifier.schema policy));
    Printf.printf "total (no gaps)  : %b\n" (Classifier.is_total policy);
    Printf.printf "dependency depth : %d\n" (Classifier.dependency_depth policy);
    Printf.printf "overlapping pairs: %d\n" (Classifier.overlap_count policy);
    Printf.printf "shadowed rules   : %d\n" (List.length shadowed);
    List.iter
      (fun r -> Printf.printf "  shadowed: %s\n" (Format.asprintf "%a" Rule.pp r))
      shadowed;
    Printf.printf "dead rules       : %d\n" (List.length dead);
    List.iter
      (fun (r : Rule.t) ->
        if not (List.exists (fun (s : Rule.t) -> s.id = r.id) shadowed) then
          Printf.printf "  dead (combination): %s\n" (Format.asprintf "%a" Rule.pp r))
      dead
  in
  let doc = "Analyse a policy file: totality, dependency depth, shadowed/dead rules." in
  Cmd.v (Cmd.info "check" ~doc) Term.(const run $ policy_arg)

let faults_arg =
  let doc =
    "Run the simulation under a seeded fault plan with this control-frame loss rate \
     (0..1): the deployment is first pushed over lossy control channels (reliably, \
     with retransmission), then during the traffic run cache-install messages are \
     dropped at the rate, the first authority switch crashes a quarter of the way \
     into the run and restarts at the half-way mark, and misses with no live \
     replica degrade to the controller path."
  in
  Arg.(value & opt (some float) None & info [ "faults" ] ~docv:"LOSS" ~doc)

(* reliable-channel timers (PR-1 machinery), threaded into Control_plane *)
let echo_interval_arg =
  let doc = "Controller echo-probe interval in seconds (liveness detection)." in
  Arg.(value & opt (some float) None & info [ "echo-interval" ] ~docv:"S" ~doc)

let retx_timeout_arg =
  let doc = "Seconds before the first retransmission of an unacked request." in
  Arg.(value & opt (some float) None & info [ "retx-timeout" ] ~docv:"S" ~doc)

let retx_backoff_arg =
  let doc = "Retransmission interval multiplier (exponential backoff factor)." in
  Arg.(value & opt (some float) None & info [ "retx-backoff" ] ~docv:"X" ~doc)

let retx_limit_arg =
  let doc = "Retransmissions before a request is given up." in
  Arg.(value & opt (some int) None & info [ "retx-limit" ] ~docv:"N" ~doc)

let cp_config_of_flags echo_interval retx_timeout retx_backoff retx_limit =
  let d = Control_plane.default_config in
  {
    d with
    Control_plane.echo_interval =
      Option.value ~default:d.Control_plane.echo_interval echo_interval;
    retx_timeout = Option.value ~default:d.Control_plane.retx_timeout retx_timeout;
    retx_backoff = Option.value ~default:d.Control_plane.retx_backoff retx_backoff;
    retx_limit = Option.value ~default:d.Control_plane.retx_limit retx_limit;
  }

(* ---- congestion-model flags (finite buffers / backpressure), shared by
   chaos | ha | deploy.  All off by default: the default Congestion.config
   is the legacy infinite-buffer plane and published numbers assume it. ---- *)

let buffers_arg =
  let doc =
    "Per-port packet buffer capacity; arriving packets past it are shed drop-tail. \
     Omitted means infinite (legacy) buffers."
  in
  Arg.(value & opt (some int) None & info [ "buffers" ] ~docv:"N" ~doc)

let ecn_arg =
  let doc =
    "Mark packets congestion-experienced when their outgoing port queue is at least \
     this deep (telemetry only; no marking when omitted)."
  in
  Arg.(value & opt (some int) None & info [ "ecn" ] ~docv:"N" ~doc)

let model_bandwidth_arg =
  let doc =
    "Charge per-hop serialization delay (packet bits / link bandwidth) so link \
     bandwidth becomes a modelled resource."
  in
  Arg.(value & flag & info [ "model-bandwidth" ] ~doc)

let fc_arg =
  let doc =
    "Flow control for misses tunnelled to authority switches: $(b,drop-tail) sheds at \
     full port buffers, $(b,credit) backpressures the ingresses at a saturated \
     authority (they defer re-splicing and fall back to the controller path)."
  in
  Arg.(
    value
    & opt
        (enum [ ("drop-tail", Congestion.Drop_tail); ("credit", Congestion.Credit) ])
        Congestion.Drop_tail
    & info [ "fc" ] ~docv:"MODE" ~doc)

let credit_pool_arg =
  let doc = "Credit-mode: misses in flight allowed per authority switch." in
  Arg.(value & opt (some int) None & info [ "credit-pool" ] ~docv:"N" ~doc)

let credit_low_water_arg =
  let doc = "Credit-mode: backpressure when the pool drains to this many credits." in
  Arg.(value & opt (some int) None & info [ "credit-low-water" ] ~docv:"N" ~doc)

let packet_bits_arg =
  let doc = "Modelled packet size in bits (default 12000 — a 1500-byte MTU frame)." in
  Arg.(value & opt (some int) None & info [ "packet-bits" ] ~docv:"BITS" ~doc)

let congestion_term =
  let mk buffers ecn model_bw fc pool low bits =
    let d = Congestion.default in
    {
      Congestion.buffer_capacity = buffers;
      ecn_threshold = ecn;
      model_bandwidth = model_bw;
      mode = fc;
      credit_pool = Option.value ~default:d.Congestion.credit_pool pool;
      credit_low_water = Option.value ~default:d.Congestion.credit_low_water low;
      packet_bits = Option.value ~default:d.Congestion.packet_bits bits;
    }
  in
  Term.(
    const mk $ buffers_arg $ ecn_arg $ model_bandwidth_arg $ fc_arg $ credit_pool_arg
    $ credit_low_water_arg $ packet_bits_arg)

let deploy_cmd =
  let run policy_file topo_spec auths k cache flows alpha faults congestion seed
      echo_interval retx_timeout retx_backoff retx_limit metrics =
    with_metrics metrics @@ fun () ->
    let policy = load_policy_or_die policy_file in
    try
      let topology = parse_topology ~seed topo_spec in
      let authority_ids = parse_ids auths in
      let config =
        { Deployment.default_config with k; cache_capacity = cache; balance = `Volume;
          congestion }
      in
      (* with faults the switches start blank and the configuration is
         pushed over the lossy control channels below — the realistic path *)
      let d =
        Deployment.build ~config ~install:(faults = None) ~policy ~topology
          ~authority_ids ()
      in
      let part = Deployment.partitioner d in
      Printf.printf "deployed %d rules as %d partitions over authorities %s\n"
        part.Partitioner.source_rules
        (List.length part.Partitioner.partitions)
        auths;
      Printf.printf "TCAM: %d total entries (%.2fx), max %d per authority\n"
        part.Partitioner.total_entries part.Partitioner.duplication
        part.Partitioner.max_entries;
      let rng = Prng.create seed in
      let profile =
        {
          Traffic.default with
          flows;
          rate = 20_000.;
          alpha;
          distinct_headers = max 100 (flows / 10);
          packets_per_flow_mean = 3.0;
          ingresses = [ 0 ];
        }
      in
      let workload = Traffic.generate rng policy profile in
      let fault_plan =
        Option.map
          (fun loss ->
            let span = float_of_int flows /. profile.Traffic.rate in
            let victim = List.hd authority_ids in
            Fault.plan ~seed
              ~link:(Fault.lossy_link loss)
              ~events:
                [
                  Fault.Crash { switch = victim; at = span /. 4. };
                  Fault.Restart { switch = victim; at = span /. 2. };
                ]
              ())
          faults
      in
      (* control-plane phase: push the configuration reliably over the
         lossy channels before traffic starts, and report that work *)
      Option.iter
        (fun plan ->
          let cp_config =
            cp_config_of_flags echo_interval retx_timeout retx_backoff retx_limit
          in
          let cp =
            Control_plane.create ~config:cp_config
              ~faults:{ plan with Fault.events = [] }
              d
          in
          Control_plane.push_deployment cp ~now:0.;
          let step = 0.01 and horizon = 60.0 in
          let t = ref 0. in
          while
            !t < horizon
            && not
                 (Control_plane.pending_requests cp = 0
                 && Control_plane.in_flight cp = 0)
          do
            t := !t +. step;
            Control_plane.tick cp ~now:!t
          done;
          let s = Control_plane.stats cp in
          Printf.printf "control push   : converged in %.2f s simulated\n" !t;
          Printf.printf
            "  frames lost %d, corrupt %d, decode errors %d, duplicated %d, reordered %d\n"
            (s.Control_plane.dropped + s.Control_plane.link_dropped)
            s.Control_plane.corrupted s.Control_plane.decode_errors
            s.Control_plane.duplicated s.Control_plane.reordered;
          Printf.printf "  retransmissions %d, give-ups %d, still pending %d\n"
            (Control_plane.retransmissions cp)
            (Control_plane.giveups cp)
            (Control_plane.pending_requests cp))
        fault_plan;
      let r = Flowsim.run { Flowsim.Config.default with faults = fault_plan } d workload in
      Printf.printf "simulated %d flows (%d packets) over %.2f s\n" r.Flowsim.offered_flows
        r.Flowsim.delivered_packets r.Flowsim.duration;
      if Congestion.enabled congestion then
        Printf.printf
          "congestion     : %d queue drops, %d ECN marks, %d backpressured misses\n"
          r.Flowsim.queue_drops r.Flowsim.ecn_marks r.Flowsim.backpressured;
      Printf.printf "cache hit rate : %s\n"
        (Table.fmt_pct
           (float_of_int r.Flowsim.cache_hit_packets
           /. float_of_int (max 1 r.Flowsim.delivered_packets)));
      (match r.Flowsim.first_packet_delay with
      | Some s ->
          Printf.printf "first-packet delay: p50 %.0f us, p99 %.0f us\n"
            (1e6 *. s.Summary.p50) (1e6 *. s.Summary.p99)
      | None -> ());
      if Array.length r.Flowsim.stretches > 0 then begin
        let s = Summary.of_array r.Flowsim.stretches in
        Printf.printf "miss stretch   : mean %.2f, p95 %.2f\n" s.Summary.mean s.Summary.p95
      end;
      Option.iter
        (fun loss ->
          Printf.printf
            "faults (%s loss): %d installs lost, %d packets served degraded, %d flows \
             dropped\n"
            (Table.fmt_pct loss) r.Flowsim.install_drops r.Flowsim.degraded_packets
            r.Flowsim.dropped_flows;
          Printf.printf "  degraded misses %d (controller-served), outage drops %d\n"
            (Deployment.degraded_misses d)
            r.Flowsim.outage_drops)
        faults
    with Invalid_argument e ->
      Printf.eprintf "error: %s\n" e;
      exit 1
  in
  let doc = "Deploy a policy file over a topology and simulate Zipf traffic." in
  Cmd.v (Cmd.info "deploy" ~doc)
    Term.(
      const run $ policy_arg $ topology_arg $ authorities_arg $ k_arg $ cache_arg
      $ flows_arg $ alpha_arg $ faults_arg $ congestion_term $ seed_arg
      $ echo_interval_arg $ retx_timeout_arg $ retx_backoff_arg $ retx_limit_arg
      $ metrics_arg)

let partition_cmd =
  let run policy_file k max_entries =
    let policy = load_policy_or_die policy_file in
    let part =
      match max_entries with
      | Some budget -> Partitioner.compute_bounded policy ~max_entries:budget
      | None -> Partitioner.compute policy ~k
    in
    Printf.printf "%d rules -> %d partitions, %d total entries (%.2fx), max %d
"
      part.Partitioner.source_rules
      (List.length part.Partitioner.partitions)
      part.Partitioner.total_entries part.Partitioner.duplication
      part.Partitioner.max_entries;
    Table.print ~title:"partitions"
      ~header:[ "pid"; "entries"; "region" ]
      (part.Partitioner.partitions
      |> List.sort (fun (a : Partitioner.partition) b ->
             Int.compare (Classifier.length b.table) (Classifier.length a.table))
      |> List.filteri (fun i _ -> i < 32)
      |> List.map (fun (p : Partitioner.partition) ->
             [
               string_of_int p.pid;
               string_of_int (Classifier.length p.table);
               Pred.to_string p.region;
             ]))
  in
  let max_entries_arg =
    let doc = "Split until every partition fits this TCAM budget (overrides --k)." in
    Arg.(value & opt (some int) None & info [ "max-entries" ] ~docv:"N" ~doc)
  in
  let doc = "Partition a policy file and print the per-authority TCAM cost." in
  Cmd.v (Cmd.info "partition" ~doc) Term.(const run $ policy_arg $ k_arg $ max_entries_arg)

let optimize_cmd =
  let run policy_file output =
    let policy = load_policy_or_die policy_file in
    let minimised, report = Optimize.minimise policy in
    Printf.printf "%s\n" (Format.asprintf "%a" Optimize.pp_report report);
    match output with
    | None -> print_string (Policy_io.to_string minimised)
    | Some path ->
        Policy_io.save path minimised;
        Printf.printf "written to %s\n" path
  in
  let output_arg =
    let doc = "Write the minimised policy here instead of stdout." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)
  in
  let doc =
    "Minimise a policy file (redundancy removal + sibling merging), exactly."
  in
  Cmd.v (Cmd.info "optimize" ~doc) Term.(const run $ policy_arg $ output_arg)

(* ---- fault experiments with CI-checkable invariants ---- *)

let check_arg =
  let doc =
    "Exit nonzero unless the run upholds the fault-tolerance invariants: zero \
     give-ups, zero duplicate installs and zero stale-epoch acceptances (ha), full \
     recovery, and bit-identical seeded replay."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

let chaos_cmd =
  let run seed quick congestion echo_interval retx_timeout retx_backoff retx_limit check
      metrics =
    with_metrics metrics @@ fun () ->
    let rows =
      Experiments.E_chaos.run ~seed ~quick ~congestion ?echo_interval ?retx_timeout
        ?retx_backoff ?retx_limit ()
    in
    Experiments.E_chaos.print rows;
    if check then begin
      let failures =
        List.concat_map
          (fun (r : Experiments.E_chaos.row) ->
            let at msg = Printf.sprintf "%s at %s loss" msg (Table.fmt_pct r.loss) in
            (if r.giveups > 0 then [ at (Printf.sprintf "%d give-ups" r.giveups) ] else [])
            @ (if not r.recovered then [ at "did not recover" ] else [])
            @ if not r.replay_identical then [ at "replay diverged" ] else [])
          rows
      in
      match failures with
      | [] -> print_endline "chaos check: all invariants hold"
      | fs ->
          List.iter (fun f -> Printf.eprintf "chaos check FAILED: %s\n" f) fs;
          exit 1
    end
  in
  let doc = "Fault-injection sweep: frame loss vs recovery." in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run $ seed_arg $ quick_arg $ congestion_term $ echo_interval_arg
      $ retx_timeout_arg $ retx_backoff_arg $ retx_limit_arg $ check_arg $ metrics_arg)

let ha_cmd =
  let run seed quick congestion echo_interval retx_timeout retx_backoff retx_limit check
      metrics =
    with_metrics metrics @@ fun () ->
    let rows =
      Experiments.E_ha.run ~seed ~quick ~congestion ?echo_interval ?retx_timeout
        ?retx_backoff ?retx_limit ()
    in
    Experiments.E_ha.print rows;
    if check then begin
      let failures =
        List.concat_map
          (fun (r : Experiments.E_ha.row) ->
            let at msg = Printf.sprintf "%s at %s loss" msg (Table.fmt_pct r.loss) in
            (if r.giveups > 0 then [ at (Printf.sprintf "%d give-ups" r.giveups) ] else [])
            @ (if r.dup_installs > 0 then
                 [ at (Printf.sprintf "%d duplicate installs" r.dup_installs) ]
               else [])
            @ (if r.stale_accepted > 0 then
                 [ at (Printf.sprintf "%d stale-epoch frames accepted" r.stale_accepted) ]
               else [])
            @ (if not r.recovered then [ at "did not recover" ] else [])
            @ if not r.replay_identical then [ at "replay diverged" ] else [])
          rows
      in
      match failures with
      | [] -> print_endline "ha check: all invariants hold"
      | fs ->
          List.iter (fun f -> Printf.eprintf "ha check FAILED: %s\n" f) fs;
          exit 1
    end
  in
  let doc =
    "Controller high-availability sweep: leader crash, journal-replay takeover, \
     split-brain fencing."
  in
  Cmd.v (Cmd.info "ha" ~doc)
    Term.(
      const run $ seed_arg $ quick_arg $ congestion_term $ echo_interval_arg
      $ retx_timeout_arg $ retx_backoff_arg $ retx_limit_arg $ check_arg $ metrics_arg)

let incast_cmd =
  let incast_check_arg =
    let doc =
      "Exit nonzero unless the sweep shows graceful degradation at the top rate \
       (drop-tail sheds, credit backpressures, credit loses a strictly smaller flow \
       fraction and completes strictly more flows) and a seeded re-run reproduces \
       every row exactly."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let run seed quick check metrics =
    with_metrics metrics @@ fun () ->
    let rows = Experiments.E_incast.run ~seed ~quick () in
    Experiments.E_incast.print rows;
    if check then begin
      let failures =
        Experiments.E_incast.check rows
        @
        if Experiments.E_incast.run ~seed ~quick () = rows then []
        else [ "seeded re-run diverged" ]
      in
      match failures with
      | [] -> print_endline "incast check: all invariants hold"
      | fs ->
          List.iter (fun f -> Printf.eprintf "incast check FAILED: %s\n" f) fs;
          exit 1
    end
  in
  let doc =
    "Incast/overload sweep on one authority switch: loss vs latency under drop-tail \
     buffers vs credit-based flow control (the congestion model's graceful-degradation \
     evidence)."
  in
  Cmd.v (Cmd.info "incast" ~doc)
    Term.(const run $ seed_arg $ quick_arg $ incast_check_arg $ metrics_arg)

(* adaptive-rebalancing detection knobs, shared by rebalance | monitor *)
let hotspot_threshold_arg =
  let doc =
    "An authority is hot in a window when its miss load exceeds this multiple of the \
     fair per-authority share (> 1.0)."
  in
  Arg.(value & opt float 2.0 & info [ "hotspot-threshold" ] ~docv:"X" ~doc)

let hotspot_window_arg =
  let doc = "Consecutive hot windows before a hotspot counts as persistent." in
  Arg.(value & opt int 3 & info [ "hotspot-window" ] ~docv:"N" ~doc)

let rebalance_cmd =
  let rebalance_check_arg =
    let doc =
      "Exit nonzero unless every gate holds: no duplicate installs, no stale-epoch \
       acceptances, no dangling migration, the journal decodes, semantic equivalence, \
       the adaptive runs recover the tail under 2x the pre-crowd baseline (and commit \
       at least one migration, including after the master crash), the static baseline \
       does not recover, and the seeded adaptive run replays bit-identically."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let run seed quick hotspot_threshold hotspot_window check metrics =
    with_metrics metrics @@ fun () ->
    let rows =
      Experiments.E_rebalance.run ~seed ~quick ~hotspot_threshold ~hotspot_window ()
    in
    Experiments.E_rebalance.print rows;
    if check then begin
      match Experiments.E_rebalance.check rows with
      | [] -> print_endline "rebalance check: all invariants hold"
      | fs ->
          List.iter (fun f -> Printf.eprintf "rebalance check FAILED: %s\n" f) fs;
          exit 1
    end
  in
  let doc =
    "Flash-crowd adaptive repartitioning: static baseline vs the closed-loop hotspot \
     detector driving staged, journaled sub-region migrations, plus a master-crash \
     run resolved by journal replay at takeover."
  in
  Cmd.v (Cmd.info "rebalance" ~doc)
    Term.(
      const run $ seed_arg $ quick_arg $ hotspot_threshold_arg $ hotspot_window_arg
      $ rebalance_check_arg $ metrics_arg)

let scale_cmd =
  let domains_arg =
    let doc =
      "Worker domains for the sharded run.  Any count yields byte-identical \
       results (compare the digest lines)."
    in
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)
  in
  let scale_check_arg =
    let doc =
      "Exit nonzero unless the scale claims hold: the full spec's flow count was \
       offered (over a million flows across at least 200 switches), no flow leaked, \
       nonzero setup throughput, delays recorded."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let run seed quick domains check metrics =
    with_metrics metrics @@ fun () ->
    if domains < 1 then begin
      Printf.eprintf "error: --domains must be >= 1\n";
      exit 2
    end;
    let spec =
      { (if quick then Experiments.E_scale.quick_spec
         else Experiments.E_scale.default_spec)
        with Experiments.E_scale.domains }
    in
    let r = Experiments.E_scale.run ~seed spec in
    Experiments.E_scale.print spec r;
    if check then begin
      match Experiments.E_scale.check ~floors:(not quick) spec r with
      | [] -> print_endline "scale check: all invariants hold"
      | fs ->
          List.iter (fun f -> Printf.eprintf "scale check FAILED: %s\n" f) fs;
          exit 1
    end
  in
  let doc =
    "Sharded ingress simulation at scale: a million-flow workload over 256 switches, \
     split into independent shards spread across OCaml domains, with a result digest \
     that is byte-identical at any domain count."
  in
  Cmd.v (Cmd.info "scale" ~doc)
    Term.(const run $ seed_arg $ quick_arg $ domains_arg $ scale_check_arg $ metrics_arg)

let trace_cmd =
  let scenario_arg =
    let doc = "Fault scenario to replay: $(b,chaos) or $(b,ha)." in
    Arg.(
      value
      & opt (enum [ ("chaos", `Chaos); ("ha", `Ha) ]) `Chaos
      & info [ "scenario" ] ~docv:"NAME" ~doc)
  in
  let loss_arg =
    let doc = "Control-frame loss rate for the replay (0..1)." in
    Arg.(value & opt float 0.10 & info [ "loss" ] ~docv:"LOSS" ~doc)
  in
  let capacity_arg =
    let doc = "Trace ring capacity: the newest N events survive (per lane)." in
    Arg.(value & opt int 4096 & info [ "capacity" ] ~docv:"N" ~doc)
  in
  let filter_arg =
    let doc =
      "Keep only events whose name or detail contains $(docv) (a switch id, a flow \
       key, an event class like $(b,takeover) — any substring)."
    in
    Arg.(value & opt (some string) None & info [ "filter" ] ~docv:"STR" ~doc)
  in
  let since_arg =
    let doc = "Keep only events at or after this simulated time (seconds)." in
    Arg.(value & opt (some float) None & info [ "since" ] ~docv:"T" ~doc)
  in
  let until_arg =
    let doc = "Keep only events at or before this simulated time (seconds)." in
    Arg.(value & opt (some float) None & info [ "until" ] ~docv:"T" ~doc)
  in
  let run seed quick scenario loss capacity filter since until echo_interval
      retx_timeout retx_backoff retx_limit =
    Telemetry.reset ();
    Telemetry.Trace.enable ~capacity ();
    (match scenario with
    | `Chaos ->
        Experiments.E_chaos.replay_one ~seed ~quick ~loss ?echo_interval ?retx_timeout
          ?retx_backoff ?retx_limit ()
    | `Ha ->
        Experiments.E_ha.replay_one ~seed ~quick ~loss ?echo_interval ?retx_timeout
          ?retx_backoff ?retx_limit ());
    Telemetry.Trace.disable ();
    let contains hay needle =
      let nh = String.length hay and nn = String.length needle in
      let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
      nn = 0 || go 0
    in
    let keep =
      match (filter, since, until) with
      | None, None, None -> None
      | _ ->
          Some
            (fun (e : Telemetry.Trace.event) ->
              (match filter with
              | Some s -> contains e.Telemetry.Trace.name s || contains e.Telemetry.Trace.detail s
              | None -> true)
              && (match since with Some t -> e.Telemetry.Trace.at >= t | None -> true)
              && match until with Some t -> e.Telemetry.Trace.at <= t | None -> true)
    in
    Telemetry.Trace.pp_timeline ?filter:keep Format.std_formatter ();
    Format.print_flush ()
  in
  let doc =
    "Replay one seeded fault scenario with event tracing enabled and print the      timeline of control-plane, cluster and takeover events (simulated time)."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(
      const run $ seed_arg $ quick_arg $ scenario_arg $ loss_arg $ capacity_arg
      $ filter_arg $ since_arg $ until_arg $ echo_interval_arg $ retx_timeout_arg
      $ retx_backoff_arg $ retx_limit_arg)

let paths_cmd =
  let scenario_arg =
    let doc =
      "Scenario to replay with postcard tracing enabled: $(b,chaos), \
       $(b,rebalance) (adaptive run only), $(b,scale) or $(b,mon) (monitored run; \
       provenance annotations join through the monitor)."
    in
    Arg.(
      value
      & opt
          (enum
             [ ("chaos", `Chaos); ("rebalance", `Rebalance); ("scale", `Scale);
               ("mon", `Mon) ])
          `Rebalance
      & info [ "scenario" ] ~docv:"NAME" ~doc)
  in
  let domains_arg =
    let doc =
      "Worker domains for the $(b,scale) scenario.  The reconstructed paths (and \
       their JSON) are byte-identical at any count."
    in
    Arg.(value & opt int 1 & info [ "domains" ] ~docv:"N" ~doc)
  in
  let capacity_arg =
    let doc = "Postcard ring capacity per shard: the newest N postcards survive." in
    Arg.(value & opt int 65536 & info [ "capacity" ] ~docv:"N" ~doc)
  in
  let flow_arg =
    let doc =
      "Keep only the path(s) of this packed 5-tuple key, written $(b,HI:LO) in hex \
       (as printed in the text output) or a single hex value (high lane 0)."
    in
    Arg.(value & opt (some string) None & info [ "flow" ] ~docv:"KEY" ~doc)
  in
  let switch_arg =
    let doc = "Keep only paths with at least one hop at this switch." in
    Arg.(value & opt (some int) None & info [ "switch" ] ~docv:"ID" ~doc)
  in
  let outcome_arg =
    let doc = "Keep only paths with this outcome: $(b,delivered), $(b,dropped) or $(b,incomplete)." in
    Arg.(
      value
      & opt
          (some
             (enum
                [ ("delivered", `Delivered); ("dropped", `Dropped);
                  ("incomplete", `Incomplete) ]))
          None
      & info [ "outcome" ] ~docv:"O" ~doc)
  in
  let since_arg =
    let doc = "Keep only paths starting at or after this simulated time (seconds)." in
    Arg.(value & opt (some float) None & info [ "since" ] ~docv:"T" ~doc)
  in
  let until_arg =
    let doc = "Keep only paths starting at or before this simulated time (seconds)." in
    Arg.(value & opt (some float) None & info [ "until" ] ~docv:"T" ~doc)
  in
  let json_arg =
    let doc = "Print the selected paths as a difane-paths-v1 JSON document." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let limit_arg =
    let doc = "Paths spelled out in the text rendering." in
    Arg.(value & opt int 20 & info [ "limit" ] ~docv:"N" ~doc)
  in
  let paths_check_arg =
    let doc =
      "Exit nonzero unless every causal invariant holds over the whole trace: one \
       terminal per path, no forwarding loops within a tunnel leg, every cache hit \
       preceded by a live install, every provenance-carrying install by an authority \
       serve or controller fallback, every serve by an ingress miss, backpressured \
       misses resolved at the controller, and queue-full drops consistent with the \
       congestion layer."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let run seed quick scenario domains capacity flow switch outcome since until json
      limit check =
    if domains < 1 then begin
      Printf.eprintf "error: --domains must be >= 1\n";
      exit 2
    end;
    Telemetry.reset ();
    Ptrace.enable ~capacity ();
    let describe = ref None in
    (match scenario with
    | `Chaos -> Experiments.E_chaos.replay_one ~seed ~quick ()
    | `Rebalance -> Experiments.E_rebalance.replay_one ~seed ~quick ()
    | `Scale ->
        let spec =
          { (if quick then Experiments.E_scale.quick_spec
             else Experiments.E_scale.default_spec)
            with Experiments.E_scale.domains }
        in
        ignore (Experiments.E_scale.run ~seed spec)
    | `Mon ->
        let m, _ = Experiments.E_mon.run_monitored ~seed ~quick () in
        describe :=
          Some (fun ~origin ~pid -> Monitor.describe_provenance m ~origin ~pid));
    Ptrace.disable ();
    let t = Paths.reconstruct () in
    let q_key =
      match flow with
      | None -> None
      | Some s -> (
          let hex v = int_of_string ("0x" ^ v) in
          try
            match String.index_opt s ':' with
            | Some i ->
                Some
                  ( hex (String.sub s (i + 1) (String.length s - i - 1)),
                    hex (String.sub s 0 i) )
            | None -> Some (hex s, 0)
          with _ ->
            Printf.eprintf "error: --flow expects HI:LO (hex) or a hex key\n";
            exit 2)
    in
    let q =
      { Paths.q_key; q_switch = switch; q_outcome = outcome; q_since = since;
        q_until = until }
    in
    let sel = Paths.select q t in
    if json then (print_string (Paths.to_json ~paths:sel t); print_newline ())
    else begin
      Paths.pp ?describe:!describe ~limit Format.std_formatter sel;
      Paths.pp_summary Format.std_formatter t;
      Format.print_flush ()
    end;
    if check then begin
      (* under --json stdout is the document; the verdict goes to stderr *)
      match Paths.check t with
      | [] ->
          if json then prerr_endline "paths check: all causal invariants hold"
          else print_endline "paths check: all causal invariants hold"
      | fs ->
          List.iter (fun f -> Printf.eprintf "paths check FAILED: %s\n" f) fs;
          exit 1
    end
  in
  let doc =
    "Replay one scenario with causal packet-path tracing enabled, reconstruct \
     per-packet paths from the postcard rings, query them (by 5-tuple key, switch, \
     outcome, time window) and check the causal invariants the DIFANE planes must \
     uphold."
  in
  Cmd.v (Cmd.info "paths" ~doc)
    Term.(
      const run $ seed_arg $ quick_arg $ scenario_arg $ domains_arg $ capacity_arg
      $ flow_arg $ switch_arg $ outcome_arg $ since_arg $ until_arg $ json_arg
      $ limit_arg $ paths_check_arg)

let aggregate_cmd =
  let cases_arg =
    let doc = "Number of randomized differential cases." in
    Arg.(value & opt int 8 & info [ "cases" ] ~docv:"N" ~doc)
  in
  let packets_arg =
    let doc = "Packets compared per case." in
    Arg.(value & opt int 400 & info [ "packets" ] ~docv:"N" ~doc)
  in
  let agg_check_arg =
    let doc =
      "Exit nonzero unless forwarding is bit-identical with aggregation on and \
       off across every case (the CI aggregate-smoke gate)."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  let run seed quick cases packets check =
    let cases = if quick then min cases 4 else cases in
    let packets_per_case = if quick then min packets 200 else packets in
    let r = Diffgate.run ~seed ~cases ~packets_per_case () in
    Diffgate.print r;
    if check && not (Diffgate.passed r) then exit 1
  in
  let doc =
    "Differential gate for cache-rule aggregation: twin deployments (aggregation \
     on vs off) driven by identical randomized policies, packet streams and \
     cache-management interleavings must forward every packet identically."
  in
  Cmd.v (Cmd.info "aggregate" ~doc)
    Term.(const run $ seed_arg $ quick_arg $ cases_arg $ packets_arg $ agg_check_arg)

let monitor_cmd =
  let sample_rate_arg =
    let doc = "Flow sampling rate: account every Nth packet (NetFlow-style 1-in-N)." in
    Arg.(value & opt int 1 & info [ "sample-rate" ] ~docv:"N" ~doc)
  in
  let interval_arg =
    let doc =
      "Time-series sampling interval in simulated seconds (default: 1/20 of the run)."
    in
    Arg.(value & opt (some float) None & info [ "interval" ] ~docv:"S" ~doc)
  in
  let threshold_arg =
    let doc = "Hotspot threshold as a multiple of the fair per-authority share." in
    Arg.(value & opt float 1.5 & info [ "threshold" ] ~docv:"X" ~doc)
  in
  let top_k_arg =
    let doc = "Heavy-hitter rules to report." in
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc)
  in
  let json_arg =
    let doc = "Print the monitor report as a difane-monitor-v1 JSON document." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  let flows_out_arg =
    let doc = "Write the sampled flow records (difane-flows-v1 JSON) to this file." in
    Arg.(value & opt (some string) None & info [ "flows-out" ] ~docv:"FILE" ~doc)
  in
  let hotspot_threshold_override_arg =
    let doc =
      "Override --threshold with the adaptive rebalancer's spelling of the same knob \
       (hot = miss load over this multiple of fair share)."
    in
    Arg.(value & opt (some float) None & info [ "hotspot-threshold" ] ~docv:"X" ~doc)
  in
  let run seed quick alpha sample_rate interval threshold hotspot_threshold
      hotspot_window top_k json flows_out =
    (* per-run registry view, same contract as --metrics *)
    Telemetry.reset ();
    let threshold = Option.value ~default:threshold hotspot_threshold in
    let m, _ =
      Experiments.E_mon.run_monitored ~seed ~quick ~alpha ~sample_rate ?interval
        ~threshold ~top_k ()
    in
    if json then print_endline (Monitor.to_json m)
    else begin
      Format.printf "%a%!" Monitor.pp m;
      (* the streak view the adaptive rebalancer would act on *)
      match Monitor.persistent_hotspots ~windows:hotspot_window m with
      | [] ->
          Format.printf "== persistent hotspots (>= %d consecutive windows) == (none)@."
            hotspot_window
      | events ->
          Format.printf "== persistent hotspots (>= %d consecutive windows) ==@."
            hotspot_window;
          List.iter (fun e -> Format.printf "  %a@." Hotspot.pp_event e) events
    end;
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Flow_records.to_json (Monitor.flow_records m));
        output_char oc '\n';
        close_out oc;
        Format.eprintf "flow records written to %s@." path)
      flows_out
  in
  let doc =
    "Run the monitored skewed-Zipf scenario and report heavy-hitter rules with      provenance chains, per-region cache efficacy, the per-authority load timeline      and any authority hotspots.  Deterministic for a fixed seed."
  in
  Cmd.v (Cmd.info "monitor" ~doc)
    Term.(
      const run $ seed_arg $ quick_arg $ alpha_arg $ sample_rate_arg $ interval_arg
      $ threshold_arg $ hotspot_threshold_override_arg $ hotspot_window_arg $ top_k_arg
      $ json_arg $ flows_out_arg)

let experiments =
  [
    experiment "table1" "Rule-set characteristics (Table 1)" (fun ~seed ~quick ->
        Experiments.T1.print (Experiments.T1.run ~seed ~quick ()));
    experiment "throughput" "Flow-setup throughput, DIFANE vs NOX" (fun ~seed ~quick ->
        Experiments.F_tput.print (Experiments.F_tput.run ~seed ~quick ()));
    experiment "scaling" "Throughput vs number of authority switches" (fun ~seed ~quick ->
        Experiments.F_scale.print (Experiments.F_scale.run ~seed ~quick ()));
    experiment "delay" "First-packet delay CDFs" (fun ~seed ~quick ->
        Experiments.F_delay.print (Experiments.F_delay.run ~seed ~quick ()));
    experiment "partition-sweep" "TCAM entries vs number of partitions" (fun ~seed ~quick ->
        Experiments.F_part.print (Experiments.F_part.run ~seed ~quick ()));
    experiment "missrate" "Cache miss rate vs cache size" (fun ~seed ~quick ->
        Experiments.F_miss.print (Experiments.F_miss.run ~seed ~quick ()));
    experiment "stretch" "Stretch CDF by authority placement" (fun ~seed ~quick ->
        Experiments.F_stretch.print (Experiments.F_stretch.run ~seed ~quick ()));
    experiment "dynamics" "Policy-update consistency vs cache timeout" (fun ~seed ~quick ->
        Experiments.F_dyn.print (Experiments.F_dyn.run ~seed ~quick ()));
    experiment "ablation-cut" "Best-cut vs fixed-dimension partitioning" (fun ~seed ~quick ->
        Experiments.A_cut.print (Experiments.A_cut.run ~seed ~quick ()));
    experiment "ablation-splice" "Splice vs dependent-set cache cost" (fun ~seed ~quick ->
        Experiments.A_splice.print (Experiments.A_splice.run ~seed ~quick ()));
    experiment "control-overhead" "Control-plane frames and bytes" (fun ~seed ~quick ->
        Experiments.E_ctrl.print (Experiments.E_ctrl.run ~seed ~quick ()));
    experiment "cache-sweep" "Ingress cache size vs authority load" (fun ~seed ~quick ->
        Experiments.E_cache.print (Experiments.E_cache.run ~seed ~quick ()));
    chaos_cmd;
    ha_cmd;
    incast_cmd;
    rebalance_cmd;
    scale_cmd;
    trace_cmd;
    paths_cmd;
    aggregate_cmd;
    monitor_cmd;
    experiment "monitor-report" "Flow monitoring: heavy hitters, hotspots, determinism"
      (fun ~seed ~quick -> Experiments.E_mon.print (Experiments.E_mon.run ~seed ~quick ()));
    experiment "all" "Run every experiment in DESIGN.md order" (fun ~seed ~quick ->
        Experiments.run_all ~seed ~quick ());
    check_cmd;
    deploy_cmd;
    partition_cmd;
    optimize_cmd;
  ]

let main =
  let doc = "reproduce the DIFANE (SIGCOMM 2010) evaluation" in
  Cmd.group (Cmd.info "difane" ~version:"1.0.0" ~doc) experiments

let () = exit (Cmd.eval main)

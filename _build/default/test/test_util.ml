(* Shared helpers for the test suites. *)

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f
let qt ?(count = 200) name gen prop = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* Deterministic PRNG for sampling-based checks. *)
let rng = ref 0x9E3779B97F4A7C15L

let rand_bits n =
  (* splitmix64 step, truncated *)
  rng := Int64.add !rng 0x9E3779B97F4A7C15L;
  let z = !rng in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  Int64.to_int (Int64.logand z (Int64.sub (Int64.shift_left 1L n) 1L))

(* QCheck generators for ternary values and predicates. *)

let gen_ternary ?(width = 8) () =
  let open QCheck2.Gen in
  list_repeat width (oneofl [ '0'; '1'; 'x' ]) >|= fun cs ->
  Ternary.of_string (String.init width (List.nth cs))

let gen_point width =
  let open QCheck2.Gen in
  map Int64.of_int (int_bound ((1 lsl width) - 1))

let gen_pred_tiny2 =
  let open QCheck2.Gen in
  let* a = gen_ternary ~width:8 () in
  let* b = gen_ternary ~width:8 () in
  return (Pred.make Schema.tiny2 [ a; b ])

let gen_header_tiny2 =
  let open QCheck2.Gen in
  let* a = gen_point 8 in
  let* b = gen_point 8 in
  return (Header.make Schema.tiny2 [| a; b |])

(* Alcotest testables *)
let ternary = Alcotest.testable Ternary.pp Ternary.equal
let pred = Alcotest.testable Pred.pp Pred.equal
let header = Alcotest.testable Header.pp Header.equal
let action = Alcotest.testable Action.pp Action.equal

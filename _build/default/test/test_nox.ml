open Test_util

let s2 = Schema.tiny2
let h a b = Header.make s2 [| Int64.of_int a; Int64.of_int b |]

let policy =
  Classifier.of_specs s2
    [
      (20, [ ("f1", "00000001") ], Action.Drop);
      (10, [ ("f1", "0xxxxxxx") ], Action.Forward 2);
      (0, [], Action.Drop);
    ]

let build () = Nox.build ~policy ~topology:(Topology.line 3 ()) ()

let test_first_packet_punts () =
  let n = build () in
  let o = Nox.inject n ~now:0. ~ingress:0 (h 2 9) in
  check Alcotest.bool "punted" true o.Nox.punted;
  check action "action" (Action.Forward 2) o.Nox.action;
  check Alcotest.bool "latency includes RTT" true (o.Nox.latency >= (Nox.config n).Nox.rtt);
  check Alcotest.int64 "one packet-in" 1L (Nox.packet_ins n)

let test_second_packet_cached () =
  let n = build () in
  ignore (Nox.inject n ~now:0. ~ingress:0 (h 2 9));
  let o = Nox.inject n ~now:1. ~ingress:0 (h 2 9) in
  check Alcotest.bool "not punted" false o.Nox.punted;
  check Alcotest.int64 "still one packet-in" 1L (Nox.packet_ins n)

let test_microflow_is_exact () =
  let n = build () in
  let o = Nox.inject n ~now:0. ~ingress:0 (h 2 9) in
  let r = Option.get o.Nox.installed in
  check Alcotest.bool "matches its header" true (Rule.matches r (h 2 9));
  (* exact match: a different header in the same rule's region still punts *)
  check Alcotest.bool "no wildcard" false (Rule.matches r (h 2 10));
  let o2 = Nox.inject n ~now:1. ~ingress:0 (h 2 10) in
  check Alcotest.bool "second header punts too" true o2.Nox.punted

let test_per_ingress_caches () =
  let n = build () in
  ignore (Nox.inject n ~now:0. ~ingress:0 (h 2 9));
  let o = Nox.inject n ~now:1. ~ingress:1 (h 2 9) in
  check Alcotest.bool "other ingress misses" true o.Nox.punted

let prop_nox_equals_policy =
  qt ~count:80 "NOX always applies the policy action"
    QCheck2.Gen.(list_size (int_range 1 40) gen_header_tiny2)
    (fun headers ->
      let n = build () in
      List.for_all
        (fun hd ->
          let o = Nox.inject n ~now:0. ~ingress:0 hd in
          match Classifier.action policy hd with
          | Some a -> Action.equal a o.Nox.action
          | None -> false)
        headers)

let prop_punts_bounded_by_distinct_headers =
  qt ~count:40 "packet-ins <= distinct headers"
    QCheck2.Gen.(list_size (int_range 1 60) gen_header_tiny2)
    (fun headers ->
      let n = build () in
      List.iter (fun hd -> ignore (Nox.inject n ~now:0. ~ingress:0 hd)) headers;
      let distinct =
        List.sort_uniq Header.compare headers |> List.length
      in
      Int64.to_int (Nox.packet_ins n) <= distinct)

let suite =
  [
    ( "nox",
      [
        tc "first packet punts to controller" test_first_packet_punts;
        tc "second packet served from microflow table" test_second_packet_cached;
        tc "microflow rules are exact-match" test_microflow_is_exact;
        tc "caches are per-ingress" test_per_ingress_caches;
        prop_nox_equals_policy;
        prop_punts_bounded_by_distinct_headers;
      ] );
  ]

(* Policy minimisation: exact, equivalence-preserving. *)

open Test_util

let s2 = Schema.tiny2

let test_remove_redundant () =
  let c =
    Classifier.of_specs s2
      [
        (30, [ ("f1", "0xxxxxxx") ], Action.Drop);
        (20, [ ("f1", "00xxxxxx") ], Action.Forward 1);
        (* shadowed *)
        (10, [], Action.Forward 2);
      ]
  in
  let c' = Optimize.remove_redundant c in
  check Alcotest.int "one removed" 2 (Classifier.length c');
  check Alcotest.bool "equivalent" true (Equiv.equivalent c c')

let test_merge_siblings_basic () =
  (* two halves of a /7 written as two /8s *)
  let c =
    Classifier.of_specs s2
      [
        (10, [ ("f1", "0000101x"); ("f2", "1xxxxxxx") ], Action.Drop);
        (10, [ ("f1", "00001010") ], Action.Forward 1);
        (10, [ ("f1", "00001011") ], Action.Forward 1);
        (0, [], Action.Drop);
      ]
  in
  (* rules 1+2 are siblings but rule 0 (same priority, earlier id) steals
     part of their union: the guard must still allow the merge because
     rule 0 keeps winning on its region either way *)
  let c' = Optimize.merge_siblings c in
  check Alcotest.bool "equivalent" true (Equiv.equivalent c c');
  check Alcotest.int "merged" 3 (Classifier.length c')

let test_merge_blocked_when_unsafe () =
  (* same-priority middle rule with a between id: merging 0 and 2 would
     let the merged (id 0) rule steal the middle rule's headers *)
  let c =
    Classifier.create s2
      [
        Rule.make ~id:0 ~priority:5 (Pred.of_strings s2 [ ("f1", "00000010") ]) (Action.Forward 1);
        Rule.make ~id:1 ~priority:5
          (Pred.of_strings s2 [ ("f1", "0000001x"); ("f2", "1xxxxxxx") ])
          Action.Drop;
        Rule.make ~id:2 ~priority:5 (Pred.of_strings s2 [ ("f1", "00000011") ]) (Action.Forward 1);
      ]
  in
  let c' = Optimize.merge_siblings c in
  check Alcotest.bool "still equivalent" true (Equiv.equivalent c c');
  (* the unsafe merge must have been rejected *)
  check Alcotest.int "no merge" 3 (Classifier.length c')

let test_range_reexpansion_merges () =
  (* a contiguous aligned port range expanded to prefixes, written as
     sibling exact matches: minimisation folds them back *)
  let rules =
    List.mapi
      (fun i v ->
        Rule.make ~id:i ~priority:5
          (Pred.of_fields s2 [ ("f1", Ternary.exact ~width:8 (Int64.of_int v)) ])
          (Action.Forward 1))
      [ 8; 9; 10; 11 ]
  in
  let c = Classifier.create s2 rules in
  let c', report = Optimize.minimise c in
  check Alcotest.bool "equivalent" true (Equiv.equivalent c c');
  check Alcotest.int "folded to one prefix" 1 (Classifier.length c');
  check Alcotest.int "three merges" 3 report.Optimize.merged_siblings

let test_report () =
  let c =
    Classifier.of_specs s2
      [
        (30, [ ("f1", "0xxxxxxx") ], Action.Drop);
        (20, [ ("f1", "00xxxxxx") ], Action.Forward 1);
        (* shadowed *)
        (10, [ ("f1", "10000000") ], Action.Forward 2);
        (10, [ ("f1", "10000001") ], Action.Forward 2);
        (0, [], Action.Drop);
      ]
  in
  let c', report = Optimize.minimise c in
  check Alcotest.int "input" 5 report.Optimize.input_rules;
  check Alcotest.int "output" 3 report.Optimize.output_rules;
  check Alcotest.int "redundant" 1 report.Optimize.removed_redundant;
  check Alcotest.int "merged" 1 report.Optimize.merged_siblings;
  check Alcotest.bool "equivalent" true (Equiv.equivalent c c')

let gen_policy =
  let open QCheck2.Gen in
  let* n = int_range 1 8 in
  let* specs =
    list_repeat n
      (triple (int_bound 6) gen_pred_tiny2 (oneofl [ Action.Drop; Action.Forward 1 ]))
  in
  let rules = List.mapi (fun i (pr, pd, a) -> Rule.make ~id:i ~priority:pr pd a) specs in
  return (Classifier.create s2 rules)

let prop_minimise_preserves =
  qt ~count:60 "minimise preserves semantics exactly" gen_policy (fun c ->
      let c', report = Optimize.minimise c in
      Equiv.equivalent c c'
      && report.Optimize.output_rules <= report.Optimize.input_rules
      && report.Optimize.output_rules = Classifier.length c')

let prop_minimise_idempotent =
  qt ~count:30 "minimise is idempotent" gen_policy (fun c ->
      let c', _ = Optimize.minimise c in
      let c'', report = Optimize.minimise c' in
      Classifier.length c' = Classifier.length c''
      && report.Optimize.removed_redundant = 0
      && report.Optimize.merged_siblings = 0)

let suite =
  [
    ( "optimize",
      [
        tc "remove redundant" test_remove_redundant;
        tc "merge siblings" test_merge_siblings_basic;
        tc "unsafe merges rejected" test_merge_blocked_when_unsafe;
        tc "range re-expansion folds" test_range_reexpansion_merges;
        tc "report" test_report;
        prop_minimise_preserves;
        prop_minimise_idempotent;
      ] );
  ]

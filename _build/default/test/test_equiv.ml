open Test_util

let s2 = Schema.tiny2
let h a b = Header.make s2 [| Int64.of_int a; Int64.of_int b |]

let firewall =
  Classifier.of_specs s2
    [
      (30, [ ("f1", "00000001") ], Action.Drop);
      (20, [ ("f1", "000000xx"); ("f2", "1xxxxxxx") ], Action.Forward 1);
      (10, [ ("f1", "0xxxxxxx") ], Action.Forward 2);
      (0, [], Action.Drop);
    ]

let test_self_equivalent () =
  check Alcotest.bool "reflexive" true (Equiv.equivalent firewall firewall)

let test_priority_encoding_irrelevant () =
  (* same semantics, different priority numbers *)
  let renumbered =
    Classifier.of_specs s2
      [
        (400, [ ("f1", "00000001") ], Action.Drop);
        (30, [ ("f1", "000000xx"); ("f2", "1xxxxxxx") ], Action.Forward 1);
        (7, [ ("f1", "0xxxxxxx") ], Action.Forward 2);
        (1, [], Action.Drop);
      ]
  in
  check Alcotest.bool "equivalent" true (Equiv.equivalent firewall renumbered)

let test_shadow_elimination_equivalent () =
  let shadowy =
    Classifier.of_specs s2
      [
        (30, [ ("f1", "0xxxxxxx") ], Action.Drop);
        (20, [ ("f1", "00xxxxxx") ], Action.Forward 1);
        (* shadowed *)
        (0, [], Action.Forward 2);
      ]
  in
  check Alcotest.bool "remove_shadowed preserves semantics" true
    (Equiv.equivalent shadowy (Classifier.remove_shadowed shadowy))

let test_detects_difference () =
  let tweaked =
    Classifier.of_specs s2
      [
        (30, [ ("f1", "00000001") ], Action.Drop);
        (20, [ ("f1", "000000xx"); ("f2", "1xxxxxxx") ], Action.Forward 1);
        (10, [ ("f1", "0xxxxxxx") ], Action.Forward 9);
        (* different egress *)
        (0, [], Action.Drop);
      ]
  in
  check Alcotest.bool "not equivalent" false (Equiv.equivalent firewall tweaked);
  match Equiv.counterexample firewall tweaked with
  | None -> Alcotest.fail "expected a counterexample"
  | Some w ->
      let a = Classifier.action firewall w and b = Classifier.action tweaked w in
      check Alcotest.bool "witness disagrees" false (a = b)

let test_unmatched_matters () =
  let partial = Classifier.of_specs s2 [ (1, [ ("f1", "1xxxxxxx") ], Action.Drop) ] in
  let total = Classifier.default_deny partial in
  (* they agree on matched headers but differ on the unmatched half *)
  check Alcotest.bool "partial <> totalised" false (Equiv.equivalent partial total);
  check Alcotest.bool "unmatched region nonempty" false
    (Region.is_empty (Equiv.unmatched_region partial));
  check Alcotest.bool "total policy has empty unmatched" true
    (Region.is_empty (Equiv.unmatched_region total))

let test_decision_region () =
  let r = Equiv.decision_region firewall (Action.Forward 1) in
  check Alcotest.bool "decided header in" true (Region.matches r (h 0 128));
  check Alcotest.bool "stolen header out" true (not (Region.matches r (h 1 128)));
  check Alcotest.bool "other action out" true (not (Region.matches r (h 4 0)))

let test_agree_on_partition () =
  let part = Partitioner.compute firewall ~k:4 in
  List.iter
    (fun (p : Partitioner.partition) ->
      check Alcotest.bool "clipped table agrees inside its region" true
        (Equiv.agree_on firewall p.table p.region))
    part.Partitioner.partitions

let test_schema_mismatch () =
  let other = Classifier.of_specs Schema.ip_pair [ (1, [], Action.Drop) ] in
  try
    ignore (Equiv.equivalent firewall other);
    Alcotest.fail "schema mismatch accepted"
  with Invalid_argument _ -> ()

(* property: Equiv agrees with exhaustive point sampling *)
let gen_small_classifier =
  let open QCheck2.Gen in
  let* n = int_range 1 5 in
  let* specs =
    list_repeat n
      (triple (int_bound 8) gen_pred_tiny2 (oneofl [ Action.Drop; Action.Forward 1 ]))
  in
  let rules = List.mapi (fun i (pr, pd, a) -> Rule.make ~id:i ~priority:pr pd a) specs in
  return (Classifier.create s2 rules)

let prop_equiv_matches_sampling =
  qt ~count:60 "equivalent <-> no sampled disagreement (+witness validity)"
    QCheck2.Gen.(triple gen_small_classifier gen_small_classifier
                   (list_size (return 64) gen_header_tiny2))
    (fun (a, b, samples) ->
      match Equiv.counterexample a b with
      | Some w ->
          (* exact check found a difference: the witness must disagree *)
          Classifier.action a w <> Classifier.action b w
      | None ->
          (* exact equivalence: no sampled point may disagree *)
          List.for_all (fun pt -> Classifier.action a pt = Classifier.action b pt) samples)

let suite =
  [
    ( "equiv",
      [
        tc "reflexive" test_self_equivalent;
        tc "priority renumbering" test_priority_encoding_irrelevant;
        tc "shadow elimination" test_shadow_elimination_equivalent;
        tc "detects differences with witness" test_detects_difference;
        tc "unmatched region counts" test_unmatched_matters;
        tc "decision region" test_decision_region;
        tc "partition tables agree on their regions" test_agree_on_partition;
        tc "schema mismatch rejected" test_schema_mismatch;
        prop_equiv_matches_sampling;
      ] );
  ]

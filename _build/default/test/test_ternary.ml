open Test_util

let t = Ternary.of_string

let test_roundtrip () =
  List.iter
    (fun s -> check Alcotest.string "roundtrip" s Ternary.(to_string (of_string s)))
    [ "0"; "1"; "x"; "01xx"; "xxxxxxxx"; "10101010"; "x0x1x0x1" ]

let test_separators () =
  check ternary "underscores ignored" (t "10101010") (t "1010_1010")

let test_of_string_bad () =
  Alcotest.check_raises "bad char" (Invalid_argument "Ternary.of_string: bad character '2'")
    (fun () -> ignore (t "012"));
  (try
     ignore (t (String.make 70 'x'));
     Alcotest.fail "width 70 accepted"
   with Invalid_argument _ -> ())

let test_constructors () =
  check ternary "any" (t "xxxx") (Ternary.any 4);
  check ternary "exact" (t "0101") (Ternary.exact ~width:4 5L);
  check ternary "prefix 2" (t "01xx") (Ternary.prefix ~width:4 4L 2);
  check ternary "prefix 0" (t "xxxx") (Ternary.prefix ~width:4 9L 0);
  check ternary "prefix full" (t "1001") (Ternary.prefix ~width:4 9L 4);
  (* value bits below the prefix are masked away *)
  check ternary "prefix masks low bits" (Ternary.prefix ~width:4 4L 2) (Ternary.prefix ~width:4 7L 2)

let test_bit () =
  let v = t "01x0" in
  check Alcotest.bool "bit0 zero" true (Ternary.bit v 0 = `Zero);
  check Alcotest.bool "bit1 any" true (Ternary.bit v 1 = `Any);
  check Alcotest.bool "bit2 one" true (Ternary.bit v 2 = `One);
  check Alcotest.bool "bit3 zero" true (Ternary.bit v 3 = `Zero)

let test_matches () =
  let v = t "1x0x" in
  let yes = [ 0b1000; 0b1001; 0b1100; 0b1101 ] and no = [ 0b0000; 0b1010; 0b1111 ] in
  List.iter (fun x -> check Alcotest.bool "yes" true (Ternary.matches v (Int64.of_int x))) yes;
  List.iter (fun x -> check Alcotest.bool "no" false (Ternary.matches v (Int64.of_int x))) no

let test_size () =
  check (Alcotest.float 0.0) "size" 4.0 (Ternary.size (t "1x0x"));
  check (Alcotest.float 0.0) "size exact" 1.0 (Ternary.size (t "1101"));
  check (Alcotest.float 0.0) "size any" 16.0 (Ternary.size (t "xxxx"))

let test_inter () =
  check (Alcotest.option ternary) "compatible" (Some (t "110x")) (Ternary.inter (t "1x0x") (t "x10x"));
  check (Alcotest.option ternary) "disjoint" None (Ternary.inter (t "1xxx") (t "0xxx"));
  check (Alcotest.option ternary) "inter any" (Some (t "10x1")) (Ternary.inter (t "xxxx") (t "10x1"))

let test_subsumes () =
  check Alcotest.bool "any subsumes all" true (Ternary.subsumes (t "xxxx") (t "01x1"));
  check Alcotest.bool "not subsumed" false (Ternary.subsumes (t "01x1") (t "xxxx"));
  check Alcotest.bool "self" true (Ternary.subsumes (t "01x1") (t "01x1"));
  check Alcotest.bool "overlap not subsume" false (Ternary.subsumes (t "1xx0") (t "x110"))

let test_subtract_basic () =
  (* xxxx - 1xxx = 0xxx *)
  check (Alcotest.list ternary) "half" [ t "0xxx" ] (Ternary.subtract (t "xxxx") (t "1xxx"));
  (* disjoint -> unchanged *)
  check (Alcotest.list ternary) "disjoint" [ t "0xxx" ] (Ternary.subtract (t "0xxx") (t "1xxx"));
  (* subsumed -> empty *)
  check (Alcotest.list ternary) "subsumed" [] (Ternary.subtract (t "10xx") (t "1xxx"));
  check (Alcotest.list ternary) "self" [] (Ternary.subtract (t "10x1") (t "10x1"))

let test_split () =
  match Ternary.split (t "1xx0") 1 with
  | None -> Alcotest.fail "split failed"
  | Some (lo, hi) ->
      check ternary "lo" (t "1x00") lo;
      check ternary "hi" (t "1x10") hi;
      check (Alcotest.option (Alcotest.pair ternary ternary)) "specified bit" None
        (Ternary.split (t "1xx0") 0)

let test_first_wildcard () =
  check (Alcotest.option Alcotest.int) "msb wildcard" (Some 2) (Ternary.first_wildcard_msb (t "1xx0"));
  check (Alcotest.option Alcotest.int) "none" None (Ternary.first_wildcard_msb (t "1010"))

let test_enumerate () =
  let vs = Ternary.enumerate (t "1x0x") |> List.sort Int64.compare in
  check (Alcotest.list Alcotest.int64) "enumerate" [ 8L; 9L; 12L; 13L ] vs;
  check Alcotest.int "limit" 4 (List.length (Ternary.enumerate ~limit:4 (t "xxxxxxxx")))

let test_random_point () =
  let v = t "1x0x1xx0" in
  for _ = 1 to 50 do
    let p = Ternary.random_point rand_bits v in
    if not (Ternary.matches v p) then Alcotest.fail "random point escapes ternary"
  done

(* --- properties --- *)

let prop_inter_sound =
  qt "inter = set intersection (sampled)"
    QCheck2.Gen.(triple (gen_ternary ()) (gen_ternary ()) (gen_point 8))
    (fun (a, b, p) ->
      let lhs =
        match Ternary.inter a b with None -> false | Some i -> Ternary.matches i p
      in
      lhs = (Ternary.matches a p && Ternary.matches b p))

let prop_subtract_exact =
  qt "subtract = set difference (sampled)"
    QCheck2.Gen.(triple (gen_ternary ()) (gen_ternary ()) (gen_point 8))
    (fun (a, b, p) ->
      let pieces = Ternary.subtract a b in
      let in_pieces = List.exists (fun q -> Ternary.matches q p) pieces in
      in_pieces = (Ternary.matches a p && not (Ternary.matches b p)))

let prop_subtract_disjoint =
  qt "subtract pieces pairwise disjoint"
    QCheck2.Gen.(pair (gen_ternary ()) (gen_ternary ()))
    (fun (a, b) ->
      let pieces = Ternary.subtract a b in
      let rec ok = function
        | [] -> true
        | p :: rest -> List.for_all (fun q -> not (Ternary.overlaps p q)) rest && ok rest
      in
      ok pieces)

let prop_subsumes_iff_subtract_empty =
  qt "subsumes b a <-> a - b = []"
    QCheck2.Gen.(pair (gen_ternary ()) (gen_ternary ()))
    (fun (a, b) -> Ternary.subsumes b a = (Ternary.subtract a b = []))

let prop_split_partitions =
  qt "split halves partition the parent"
    QCheck2.Gen.(pair (gen_ternary ()) (gen_point 8))
    (fun (a, p) ->
      match Ternary.first_wildcard_msb a with
      | None -> true
      | Some j -> (
          match Ternary.split a j with
          | None -> false
          | Some (lo, hi) ->
              (not (Ternary.overlaps lo hi))
              && Ternary.matches a p = (Ternary.matches lo p || Ternary.matches hi p)))

let prop_size_counts =
  qt "size = number of enumerated points" (gen_ternary ())
    (fun a -> int_of_float (Ternary.size a) = List.length (Ternary.enumerate ~limit:4096 a))

let suite =
  [
    ( "ternary",
      [
        tc "roundtrip" test_roundtrip;
        tc "separators" test_separators;
        tc "of_string rejects garbage" test_of_string_bad;
        tc "constructors" test_constructors;
        tc "bit access" test_bit;
        tc "matches" test_matches;
        tc "size" test_size;
        tc "inter" test_inter;
        tc "subsumes" test_subsumes;
        tc "subtract basics" test_subtract_basic;
        tc "split" test_split;
        tc "first wildcard" test_first_wildcard;
        tc "enumerate" test_enumerate;
        tc "random point stays inside" test_random_point;
        prop_inter_sound;
        prop_subtract_exact;
        prop_subtract_disjoint;
        prop_subsumes_iff_subtract_empty;
        prop_split_partitions;
        prop_size_counts;
      ] );
  ]

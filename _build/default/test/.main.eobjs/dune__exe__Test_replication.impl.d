test/test_replication.ml: Action Alcotest Assignment Classifier Deployment Header Int Int64 List Option Partitioner Prng QCheck2 Schema Switch Test_util Topology

test/test_integration.ml: Action Alcotest Array Classifier Control_plane Deployment Flowsim Int64 List Option Policy_gen Prng QCheck2 Switch Test_util Topology Traffic

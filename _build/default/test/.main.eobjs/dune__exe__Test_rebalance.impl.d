test/test_rebalance.ml: Action Alcotest Assignment Classifier Deployment Float Header Int64 List Partitioner Policy_gen Pred Prng QCheck2 Region Schema Test_util Topology

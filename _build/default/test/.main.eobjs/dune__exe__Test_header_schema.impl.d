test/test_header_schema.ml: Action Alcotest Array Header List Schema Test_util

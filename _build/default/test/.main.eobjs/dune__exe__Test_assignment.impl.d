test/test_assignment.ml: Alcotest Assignment Float List Partitioner Policy_gen Prng QCheck2 Schema Test_util

test/test_region.ml: Alcotest Header Int64 List Pred QCheck2 Region Schema Test_util

test/test_splice.ml: Action Alcotest Classifier Header Int64 List Option Pred QCheck2 Region Rule Schema Splice Test_util

test/test_classifier.ml: Action Alcotest Classifier Header Int Int64 List Option Pred QCheck2 Region Rule Schema Test_util

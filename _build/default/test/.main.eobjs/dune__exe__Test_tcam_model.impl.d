test/test_tcam_model.ml: Action Header Int Int64 List Option Pred QCheck2 Rule Schema Tcam Test_util

test/test_sim.ml: Action Alcotest Array Cachesim Classifier Deployment Engine Float Flowsim Header Int64 List Nox Prng QCheck2 Schema Server Summary Test_util Topology Traffic

test/test_dataplane.ml: Action Alcotest Classifier Dataplane Deployment Float Header Int64 List Prng Routing Schema Test_util Topology

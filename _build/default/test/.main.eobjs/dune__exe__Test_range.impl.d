test/test_range.ml: Alcotest Int64 List QCheck2 Range Ternary Test_util

test/test_partitioner.ml: Action Alcotest Classifier Header Int64 List Option Partitioner Policy_gen Pred Prng QCheck2 Region Rule Schema Test_util

test/main.mli:

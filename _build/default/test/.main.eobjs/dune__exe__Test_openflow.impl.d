test/test_openflow.ml: Action Alcotest Bytes Header Int64 List Message Pred QCheck2 Rule Schema Test_util

test/test_switch.ml: Action Alcotest Classifier Header Int64 List Message Option Partitioner Pred QCheck2 Rule Schema Switch Test_util

test/test_pred.ml: Alcotest Header Int64 List Pred QCheck2 Schema Test_util

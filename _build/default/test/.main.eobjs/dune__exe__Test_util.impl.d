test/test_util.ml: Action Alcotest Header Int64 List Pred QCheck2 QCheck_alcotest Schema String Ternary

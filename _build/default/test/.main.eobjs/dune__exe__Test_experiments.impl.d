test/test_experiments.ml: Alcotest Cdf Experiments Float Flowsim Int List Test_util

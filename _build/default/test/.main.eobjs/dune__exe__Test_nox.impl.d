test/test_nox.ml: Action Alcotest Classifier Header Int64 List Nox Option QCheck2 Rule Schema Test_util Topology

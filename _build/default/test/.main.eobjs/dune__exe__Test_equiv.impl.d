test/test_equiv.ml: Action Alcotest Classifier Equiv Header Int64 List Partitioner QCheck2 Region Rule Schema Test_util

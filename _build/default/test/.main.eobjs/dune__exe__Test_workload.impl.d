test/test_workload.ml: Alcotest Array Classifier Float Header Int List Option Policy_gen Prng Rule Schema Test_util Traffic Zipf

test/test_stats.ml: Alcotest Cdf Float List QCheck2 String Summary Table Test_util

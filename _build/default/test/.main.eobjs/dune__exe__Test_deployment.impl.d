test/test_deployment.ml: Action Alcotest Array Classifier Deployment Header Int64 List Option Prng QCheck2 Schema String Switch Test_util Topology

test/test_optimize.ml: Action Alcotest Classifier Equiv Int64 List Optimize Pred QCheck2 Rule Schema Ternary Test_util

test/test_tcam.ml: Action Alcotest Classifier Header Int64 List Option Pred QCheck2 Rule Schema Tcam Test_util

test/test_ternary.ml: Alcotest Int64 List QCheck2 String Ternary Test_util

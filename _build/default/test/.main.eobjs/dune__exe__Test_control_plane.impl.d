test/test_control_plane.ml: Action Alcotest Assignment Channel Classifier Control_plane Deployment Header Int64 List Message Option Partitioner Pred Prng Rule Schema Switch Test_util Topology

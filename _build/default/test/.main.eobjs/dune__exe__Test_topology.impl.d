test/test_topology.ml: Alcotest Int List Placement Prng QCheck2 Test_util Topology

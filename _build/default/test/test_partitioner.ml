open Test_util

let s2 = Schema.tiny2
let h a b = Header.make s2 [| Int64.of_int a; Int64.of_int b |]

let quad_policy =
  (* four disjoint quadrant rules + default *)
  Classifier.of_specs s2
    [
      (10, [ ("f1", "0xxxxxxx"); ("f2", "0xxxxxxx") ], Action.Forward 1);
      (10, [ ("f1", "0xxxxxxx"); ("f2", "1xxxxxxx") ], Action.Forward 2);
      (10, [ ("f1", "1xxxxxxx"); ("f2", "0xxxxxxx") ], Action.Forward 3);
      (10, [ ("f1", "1xxxxxxx"); ("f2", "1xxxxxxx") ], Action.Drop);
    ]

let deep_policy = Policy_gen.acl (Prng.create 17) { Policy_gen.default_acl with rules = 200 }

let regions_disjoint_cover parts schema =
  let region = Region.of_preds schema (List.map (fun (p : Partitioner.partition) -> p.region) parts) in
  let covers = Region.equal_sets region (Region.full schema) in
  let rec disjoint = function
    | [] -> true
    | (p : Partitioner.partition) :: rest ->
        List.for_all (fun (q : Partitioner.partition) -> not (Pred.overlaps p.region q.region)) rest
        && disjoint rest
  in
  covers && disjoint parts

let test_k1 () =
  let r = Partitioner.compute quad_policy ~k:1 in
  check Alcotest.int "one partition" 1 (List.length r.partitions);
  check Alcotest.int "all rules" 4 r.total_entries;
  check (Alcotest.float 1e-9) "no duplication" 1.0 r.duplication

let test_k4_quadrants () =
  let r = Partitioner.compute quad_policy ~k:4 in
  check Alcotest.int "four partitions" 4 (List.length r.partitions);
  (* disjoint rules split perfectly: one rule per partition *)
  check Alcotest.int "max 1 per partition" 1 r.max_entries;
  check Alcotest.bool "disjoint cover" true
    (regions_disjoint_cover r.partitions s2)

let test_find () =
  let r = Partitioner.compute quad_policy ~k:4 in
  let p = Partitioner.find r (h 200 10) in
  check Alcotest.bool "region contains header" true (Pred.matches p.region (h 200 10));
  (* the partition's table decides the header like the original policy *)
  check (Alcotest.option action) "same action" (Classifier.action quad_policy (h 200 10))
    (Classifier.action p.table (h 200 10))

let test_partition_rules () =
  let r = Partitioner.compute quad_policy ~k:4 in
  let rules = Partitioner.partition_rules r ~assignment:(fun pid -> 100 + pid) in
  check Alcotest.int "one per partition" 4 (List.length rules);
  List.iter
    (fun (rl : Rule.t) ->
      match rl.action with
      | Action.To_authority a ->
          if a < 100 || a > 103 then Alcotest.fail "wrong assignment"
      | _ -> Alcotest.fail "partition rule must tunnel")
    rules

let test_monotone_entries () =
  (* more partitions -> per-partition max shrinks, total grows slowly *)
  let r1 = Partitioner.compute deep_policy ~k:1 in
  let r8 = Partitioner.compute deep_policy ~k:8 in
  let r32 = Partitioner.compute deep_policy ~k:32 in
  check Alcotest.bool "max decreases" true (r8.max_entries < r1.max_entries);
  check Alcotest.bool "max decreases more" true (r32.max_entries <= r8.max_entries);
  check Alcotest.bool "total grows" true (r32.total_entries >= r1.total_entries);
  check Alcotest.bool "duplication bounded" true (r32.duplication < 3.0)

let test_fixed_dimension_worse () =
  (* the ablation: cutting only dimension 0 cannot beat best-cut balance *)
  let best = Partitioner.compute deep_policy ~k:16 in
  let fixed =
    Partitioner.compute ~heuristic:(Partitioner.Fixed_dimension 0) deep_policy ~k:16
  in
  check Alcotest.bool "best-cut max <= fixed max" true
    (best.max_entries <= fixed.max_entries)

let test_k_too_large () =
  (* tiny classifier, huge k: partitioner must stop when bits run out *)
  let c = Classifier.of_specs s2 [ (1, [], Action.Drop) ] in
  let r = Partitioner.compute c ~k:10 in
  check Alcotest.bool "stops gracefully" true (List.length r.partitions <= 10);
  check Alcotest.bool "still covers" true (regions_disjoint_cover r.partitions s2)

let test_invalid () =
  (try
     ignore (Partitioner.compute quad_policy ~k:0);
     Alcotest.fail "k=0 accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Partitioner.compute (Classifier.create s2 []) ~k:1);
    Alcotest.fail "empty classifier accepted"
  with Invalid_argument _ -> ()

(* --- properties --- *)

let gen_policy =
  let open QCheck2.Gen in
  let* n = int_range 1 10 in
  let* specs = list_repeat n (pair (int_bound 10) gen_pred_tiny2) in
  let rules = List.mapi (fun i (pr, pd) -> Rule.make ~id:i ~priority:pr pd (Action.Forward i)) specs in
  return (Classifier.create s2 rules)

let prop_disjoint_cover =
  qt ~count:60 "partitions disjoint and cover"
    QCheck2.Gen.(pair gen_policy (int_range 1 9))
    (fun (c, k) ->
      let r = Partitioner.compute c ~k in
      regions_disjoint_cover r.partitions s2)

let prop_semantics_preserved =
  qt ~count:60 "clipped lookup = original lookup"
    QCheck2.Gen.(triple gen_policy (int_range 1 9) gen_header_tiny2)
    (fun (c, k, pt) ->
      let r = Partitioner.compute c ~k in
      let p = Partitioner.find r pt in
      let lhs = Option.map (fun (x : Rule.t) -> x.action) (Classifier.first_match p.table pt) in
      let rhs = Option.map (fun (x : Rule.t) -> x.action) (Classifier.first_match c pt) in
      (match (lhs, rhs) with
      | None, None -> true
      | Some a, Some b -> Action.equal a b
      | _ -> false))

let prop_total_entries_consistent =
  qt ~count:60 "metrics agree with partitions"
    QCheck2.Gen.(pair gen_policy (int_range 1 9))
    (fun (c, k) ->
      let r = Partitioner.compute c ~k in
      let sizes = List.map (fun (p : Partitioner.partition) -> Classifier.length p.table) r.partitions in
      r.total_entries = List.fold_left ( + ) 0 sizes
      && r.max_entries = List.fold_left max 0 sizes)

let suite =
  [
    ( "partitioner",
      [
        tc "k=1 identity" test_k1;
        tc "quadrants split cleanly" test_k4_quadrants;
        tc "find and local semantics" test_find;
        tc "partition rules" test_partition_rules;
        tc "entries vs k monotonicity" test_monotone_entries;
        tc "fixed-dimension ablation is worse" test_fixed_dimension_worse;
        tc "k larger than splittable" test_k_too_large;
        tc "invalid inputs" test_invalid;
        prop_disjoint_cover;
        prop_semantics_preserved;
        prop_total_entries_consistent;
      ] );
  ]

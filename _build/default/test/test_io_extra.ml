(* Histograms, policy files, and codec robustness. *)

open Test_util

let s2 = Schema.tiny2

(* --- histogram --- *)

let test_histogram_linear () =
  let h = Histogram.create ~lo:0. ~hi:10. ~buckets:5 () in
  Histogram.add_all h [ 0.; 1.9; 2.; 5.5; 9.99; -1.; 10.; 42. ];
  check Alcotest.int "total" 8 (Histogram.total h);
  check Alcotest.int "underflow" 1 (Histogram.underflow h);
  check Alcotest.int "overflow" 2 (Histogram.overflow h);
  let counts = List.map (fun (_, _, c) -> c) (Histogram.buckets h) in
  check (Alcotest.list Alcotest.int) "bucket counts" [ 2; 1; 1; 0; 1 ] counts

let test_histogram_log () =
  let h = Histogram.create ~log_scale:true ~lo:1e-6 ~hi:1. ~buckets:6 () in
  Histogram.add h 1e-5;
  Histogram.add h 1e-2;
  let hits =
    Histogram.buckets h |> List.filter (fun (_, _, c) -> c > 0) |> List.length
  in
  check Alcotest.int "spread over log buckets" 2 hits;
  (* bucket edges are geometric: first edge pair ratio = overall^(1/6) *)
  match Histogram.buckets h with
  | (lo0, hi0, _) :: _ ->
      check (Alcotest.float 1e-6) "geometric edge" (Float.pow 1e6 (1. /. 6.)) (hi0 /. lo0)
  | [] -> Alcotest.fail "no buckets"

let test_histogram_mean_and_errors () =
  let h = Histogram.create ~lo:0. ~hi:1. ~buckets:2 () in
  check Alcotest.bool "empty mean nan" true (Float.is_nan (Histogram.mean h));
  Histogram.add_all h [ 1.; 2.; 3. ];
  check (Alcotest.float 1e-9) "mean exact despite overflow" 2. (Histogram.mean h);
  (try
     ignore (Histogram.create ~lo:1. ~hi:0. ~buckets:3 ());
     Alcotest.fail "inverted range accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Histogram.create ~log_scale:true ~lo:0. ~hi:1. ~buckets:3 ());
    Alcotest.fail "log scale with lo=0 accepted"
  with Invalid_argument _ -> ()

(* --- policy io --- *)

let sample_policy =
  Classifier.of_specs s2
    [
      (40, [ ("f1", "00000001") ], Action.Drop);
      (20, [ ("f1", "0000_00xx"); ("f2", "1xxxxxxx") ], Action.Forward 1);
      (10, [], Action.Count_and_forward 2);
      (0, [], Action.Drop);
    ]

let test_policy_roundtrip () =
  let text = Policy_io.to_string sample_policy in
  match Policy_io.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok c ->
      check Alcotest.int "rule count" (Classifier.length sample_policy) (Classifier.length c);
      check Alcotest.bool "semantically identical" true (Equiv.equivalent sample_policy c)

let test_policy_file_roundtrip () =
  let path = Filename.temp_file "difane" ".policy" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Policy_io.save path sample_policy;
      match Policy_io.load path with
      | Ok c -> check Alcotest.bool "equivalent" true (Equiv.equivalent sample_policy c)
      | Error e -> Alcotest.failf "load failed: %s" e)

let test_policy_handwritten () =
  let text =
    String.concat "\n"
      [
        "# difane-policy v1";
        "# schema: f1/8,f2/8";
        "";
        "# block one host";
        "40 f1=00000001 drop";
        "10 f1=0xxxxxxx,f2=1111_0000 fwd:3";
        "0 * drop";
        "";
      ]
  in
  match Policy_io.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok c ->
      check Alcotest.int "three rules" 3 (Classifier.length c);
      let h a b = Header.make (Classifier.schema c) [| Int64.of_int a; Int64.of_int b |] in
      check (Alcotest.option action) "fwd rule" (Some (Action.Forward 3))
        (Classifier.action c (h 2 0xF0));
      check (Alcotest.option action) "drop host" (Some Action.Drop)
        (Classifier.action c (h 1 0xF0))

let test_value_syntax () =
  let t32 v = Ternary.of_value_string ~width:32 v in
  check ternary "cidr" (Ternary.prefix ~width:32 0x0A010200L 24) (t32 "10.1.2.0/24");
  check ternary "bare addr" (Ternary.exact ~width:32 0x0A010203L) (t32 "10.1.2.3");
  check ternary "star" (Ternary.any 32) (t32 "*");
  let t16 v = Ternary.of_value_string ~width:16 v in
  check ternary "decimal" (Ternary.exact ~width:16 80L) (t16 "80");
  (* all-01 tokens: binary when digit count = width, decimal otherwise *)
  check ternary "binary when width matches" (Ternary.of_string "0000000000001010")
    (t16 "0000000000001010");
  check ternary "decimal when shorter" (Ternary.exact ~width:16 10L) (t16 "10");
  check ternary "x-string" (Ternary.of_string "000000000101xxxx") (t16 "000000000101xxxx");
  List.iter
    (fun (w, v) ->
      try
        ignore (Ternary.of_value_string ~width:w v);
        Alcotest.failf "accepted %S" v
      with Invalid_argument _ -> ())
    [
      (16, "10.0.0.1"); (* dotted on non-32-bit *)
      (32, "10.0.0.256"); (* bad octet *)
      (32, "10.0.0.0/33"); (* bad prefix *)
      (16, "01xx"); (* bit string of wrong width *)
      (16, "eighty"); (* garbage *)
    ]

let test_policy_friendly_syntax () =
  let text =
    String.concat "\n"
      [
        "# difane-policy v1";
        "# schema: src_ip/32,dst_ip/32,src_port/16,dst_port/16,proto/8";
        "40 src_ip=10.0.0.0/8,proto=6 drop";
        "20 dst_port=80 fwd:2";
        "10 * fwd:1";
      ]
  in
  match Policy_io.of_string text with
  | Error e -> Alcotest.failf "parse failed: %s" e
  | Ok c ->
      let h fields = Header.of_fields (Classifier.schema c) fields in
      check (Alcotest.option action) "cidr drop" (Some Action.Drop)
        (Classifier.action c (h [ ("src_ip", 0x0A123456L); ("proto", 6L) ]));
      check (Alcotest.option action) "port fwd" (Some (Action.Forward 2))
        (Classifier.action c (h [ ("dst_port", 80L) ]));
      check (Alcotest.option action) "default" (Some (Action.Forward 1))
        (Classifier.action c (h [ ("dst_port", 81L) ]))

let test_crlf_tolerated () =
  let text =
    String.concat "\r\n"
      [ "# difane-policy v1"; "# schema: f1/8,f2/8"; "5 f1=0000000x drop"; "0 * fwd:1"; "" ]
  in
  match Policy_io.of_string text with
  | Ok c -> check Alcotest.int "two rules" 2 (Classifier.length c)
  | Error e -> Alcotest.failf "CRLF rejected: %s" e

let test_policy_errors () =
  let expect_error text =
    match Policy_io.of_string text with
    | Ok _ -> Alcotest.failf "accepted: %s" (String.escaped text)
    | Error _ -> ()
  in
  expect_error "garbage";
  expect_error "# difane-policy v1\n# schema: f1/0\n";
  expect_error "# difane-policy v1\n# schema: f1/8\n5 f1=0000000x explode\n";
  expect_error "# difane-policy v1\n# schema: f1/8\nnope * drop\n";
  expect_error "# difane-policy v1\n# schema: f1/8\n5 f9=0000000x drop\n";
  (* infrastructure actions cannot be serialised *)
  let infra =
    Classifier.create s2
      [ Rule.make ~id:0 ~priority:1 (Pred.any s2) (Action.To_authority 3) ]
  in
  try
    ignore (Policy_io.to_string infra);
    Alcotest.fail "tunnel action serialised"
  with Invalid_argument _ -> ()

let prop_policy_roundtrip =
  qt ~count:60 "generated policies survive the file format"
    QCheck2.Gen.(list_size (int_range 1 10) (pair (int_bound 50) gen_pred_tiny2))
    (fun specs ->
      let rules =
        List.mapi
          (fun i (pr, pd) ->
            Rule.make ~id:i ~priority:pr pd
              (if i mod 2 = 0 then Action.Drop else Action.Forward i))
          specs
      in
      let c = Classifier.create s2 rules in
      match Policy_io.of_string (Policy_io.to_string c) with
      | Ok c' -> Equiv.equivalent c c'
      | Error _ -> false)

(* --- codec robustness: corrupted frames must error, never raise --- *)

let prop_codec_never_raises =
  qt ~count:300 "decode of corrupted frames returns Error (no exception)"
    QCheck2.Gen.(triple (int_bound 200) (int_bound 255) gen_pred_tiny2)
    (fun (pos, byte, pd) ->
      let msg =
        Message.Flow_mod
          { Message.command = Message.Add; bank = Message.Cache;
            rule = Rule.make ~id:1 ~priority:2 pd Action.Drop;
            idle_timeout = Some 1.; hard_timeout = None }
      in
      let frame = Message.encode ~xid:9 msg in
      let corrupted = Bytes.copy frame in
      let pos = pos mod Bytes.length corrupted in
      Bytes.set_uint8 corrupted pos byte;
      match Message.decode s2 corrupted with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let prop_codec_truncation_never_raises =
  qt ~count:100 "decode of truncated frames returns Error (no exception)"
    QCheck2.Gen.(int_bound 100)
    (fun cut ->
      let msg = Message.Packet_in { Message.ingress = 3;
                                    header = Header.make s2 [| 7L; 9L |];
                                    reason = `No_match } in
      let frame = Message.encode ~xid:1 msg in
      let n = min cut (Bytes.length frame) in
      match Message.decode s2 (Bytes.sub frame 0 n) with
      | Ok _ | Error _ -> true
      | exception _ -> false)

(* --- DES flowsim agrees with the policy --- *)

let prop_flowsim_respects_policy =
  qt ~count:30 "every DES-delivered flow followed the policy"
    QCheck2.Gen.(list_size (int_range 1 30) gen_header_tiny2)
    (fun headers ->
      let policy =
        Classifier.of_specs s2
          [
            (20, [ ("f1", "00000001") ], Action.Drop);
            (10, [ ("f1", "0xxxxxxx") ], Action.Forward 2);
            (0, [], Action.Drop);
          ]
      in
      let d =
        Deployment.build ~policy ~topology:(Topology.line 3 ()) ~authority_ids:[ 1 ] ()
      in
      let flows =
        List.mapi
          (fun i h ->
            { Traffic.flow_id = i; header = h; ingress = 0;
              start = float_of_int i *. 1e-3; packets = 2; interval = 1e-4 })
          headers
      in
      let r = Flowsim.run_difane d flows in
      (* all flows complete (low load, total policy), and the switch
         counters attribute every delivered packet *)
      r.Flowsim.completed_flows = List.length headers
      && r.Flowsim.dropped_flows = 0
      &&
      let counted =
        Array.fold_left
          (fun acc sw ->
            List.fold_left (fun a (_, n) -> Int64.add a n) acc (Switch.aggregate_counters sw))
          0L (Deployment.switches d)
      in
      Int64.to_int counted = r.Flowsim.delivered_packets)

let suite =
  [
    ( "histogram",
      [
        tc "linear buckets" test_histogram_linear;
        tc "log buckets" test_histogram_log;
        tc "mean and validation" test_histogram_mean_and_errors;
      ] );
    ( "policy io",
      [
        tc "roundtrip" test_policy_roundtrip;
        tc "file roundtrip" test_policy_file_roundtrip;
        tc "hand-written file" test_policy_handwritten;
        tc "friendly value syntax" test_value_syntax;
        tc "cidr/decimal policy file" test_policy_friendly_syntax;
        tc "CRLF files tolerated" test_crlf_tolerated;
        tc "error cases" test_policy_errors;
        prop_policy_roundtrip;
      ] );
    ( "codec fuzz",
      [ prop_codec_never_raises; prop_codec_truncation_never_raises ] );
    ( "des consistency", [ prop_flowsim_respects_policy ] );
  ]

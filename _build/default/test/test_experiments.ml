(* Smoke + shape tests for the experiment drivers: every driver must run
   in quick mode, be deterministic in its seed, and reproduce the paper's
   qualitative result ("who wins, roughly by how much"). *)

open Test_util

let seed = 7

let test_t1 () =
  let rows = Experiments.T1.run ~seed ~quick:true () in
  check Alcotest.int "five rule sets" 5 (List.length rows);
  List.iter
    (fun (r : Experiments.T1.row) ->
      check Alcotest.bool "rules positive" true (r.rules > 0);
      check Alcotest.bool "depth >= 1" true (r.depth >= 1))
    rows;
  (* deeper ACL really is deeper *)
  let depth label =
    (List.find (fun (r : Experiments.T1.row) -> r.label = label) rows).Experiments.T1.depth
  in
  check Alcotest.bool "acl-deep deeper than acl-small" true
    (depth "acl-deep" > depth "acl-small")

let test_t1_deterministic () =
  let a = Experiments.T1.run ~seed ~quick:true () in
  let b = Experiments.T1.run ~seed ~quick:true () in
  check Alcotest.bool "same rows" true (a = b)

let test_tput_shape () =
  let points = Experiments.F_tput.run ~seed ~quick:true () in
  (* at the highest offered rate DIFANE must beat NOX by a wide margin *)
  let last = List.nth points (List.length points - 1) in
  check Alcotest.bool "DIFANE >= 3x NOX at saturation" true
    (last.Experiments.F_tput.difane.Flowsim.setup_throughput
     >= 3. *. last.Experiments.F_tput.nox.Flowsim.setup_throughput);
  (* NOX saturates near its controller capacity *)
  let nox_capacity = 1. /. Flowsim.default_timing.Flowsim.controller_service in
  check Alcotest.bool "NOX capped by controller" true
    (last.Experiments.F_tput.nox.Flowsim.setup_throughput < 1.2 *. nox_capacity)

let test_scale_linear () =
  let points = Experiments.F_scale.run ~seed ~quick:true () in
  match points with
  | p1 :: rest ->
      List.iter
        (fun (p : Experiments.F_scale.point) ->
          let expected =
            p1.Experiments.F_scale.throughput *. float_of_int p.authority_switches
          in
          if Float.abs (p.throughput -. expected) /. expected > 0.2 then
            Alcotest.failf "scaling not linear: %d switches -> %.0f (expected %.0f)"
              p.authority_switches p.throughput expected)
        rest
  | [] -> Alcotest.fail "no points"

let test_delay_gap () =
  let t = Experiments.F_delay.run ~seed ~quick:true () in
  check Alcotest.bool "NOX at least 10x slower" true (t.Experiments.F_delay.ratio > 10.);
  check Alcotest.bool "DIFANE sub-millisecond" true (t.Experiments.F_delay.difane_median < 1e-3)

let test_partition_shape () =
  let points = Experiments.F_part.run ~seed ~quick:true () in
  (* per-switch max falls with k; duplication stays bounded *)
  let by_label l =
    List.filter (fun (p : Experiments.F_part.point) -> p.label = l) points
  in
  List.iter
    (fun label ->
      match by_label label with
      | [] -> Alcotest.failf "no points for %s" label
      | ps ->
          let sorted =
            List.sort (fun (a : Experiments.F_part.point) b -> Int.compare a.k b.k) ps
          in
          let first = List.hd sorted and last = List.nth sorted (List.length sorted - 1) in
          check Alcotest.bool (label ^ ": max shrinks") true
            (last.Experiments.F_part.max_entries <= first.Experiments.F_part.max_entries);
          check Alcotest.bool (label ^ ": duplication bounded") true
            (last.Experiments.F_part.duplication < 2.5))
    [ "acl-small"; "prefix-5k" ]

let test_miss_shape () =
  let points = Experiments.F_miss.run ~seed ~quick:true () in
  (* wildcard caching never loses to microflow caching, and wins clearly
     at the largest cache size *)
  List.iter
    (fun (p : Experiments.F_miss.point) ->
      check Alcotest.bool "wildcard <= microflow" true
        (p.wildcard_miss_rate <= p.microflow_miss_rate +. 1e-9);
      check Alcotest.bool "OPT is a floor" true
        (p.wildcard_opt_miss_rate <= p.wildcard_miss_rate +. 1e-9))
    points;
  let biggest =
    List.fold_left
      (fun (acc : Experiments.F_miss.point) p ->
        if p.Experiments.F_miss.cache_size > acc.cache_size then p else acc)
      (List.hd points) points
  in
  check Alcotest.bool "clear win at large cache" true
    (biggest.microflow_miss_rate > 1.5 *. biggest.wildcard_miss_rate)

let test_stretch_shape () =
  let series = Experiments.F_stretch.run ~seed ~quick:true () in
  check Alcotest.int "five placements" 5 (List.length series);
  let mean name =
    (List.find (fun (s : Experiments.F_stretch.series) -> s.placement = name) series)
      .Experiments.F_stretch.mean
  in
  (* informed placement beats random *)
  check Alcotest.bool "centroid <= random" true (mean "centroid" <= mean "random");
  (* proximity-aware tunnelling to replicated authorities beats every
     primary-only placement *)
  check Alcotest.bool "nearest-replica wins" true
    (mean "k-median+nearest" <= mean "centroid" +. 1e-9);

  List.iter
    (fun (s : Experiments.F_stretch.series) ->
      check Alcotest.bool "stretch >= 1" true (Cdf.inverse s.stretch 0.01 >= 1.0 -. 1e-9))
    series

let test_dyn_shape () =
  let points = Experiments.F_dyn.run ~seed ~quick:true () in
  let strict =
    List.find
      (fun (p : Experiments.F_dyn.point) -> p.mode = Experiments.F_dyn.Strict_flush)
      points
  in
  check Alcotest.int "strict flush has no stale packets" 0
    strict.Experiments.F_dyn.stale_packets;
  let targeted =
    List.find
      (fun (p : Experiments.F_dyn.point) -> p.mode = Experiments.F_dyn.Targeted)
      points
  in
  check Alcotest.int "targeted invalidation has no stale packets" 0
    targeted.Experiments.F_dyn.stale_packets;
  let lazies =
    List.filter
      (fun (p : Experiments.F_dyn.point) -> p.mode = Experiments.F_dyn.Lazy_expiry)
      points
  in
  List.iter
    (fun (p : Experiments.F_dyn.point) ->
      (* staleness is bounded by the hard timeout (plus one sweep period) *)
      check Alcotest.bool "stale window bounded by timeout" true
        (p.stale_window <= p.timeout +. (p.timeout /. 4.) +. 1e-6))
    lazies

let test_ablation_cut () =
  let points = Experiments.A_cut.run ~seed ~quick:true () in
  List.iter
    (fun (p : Experiments.A_cut.point) ->
      check Alcotest.bool "best-cut beats the poor fixed dimension" true
        (p.best_max <= p.proto_max && p.best_total <= p.proto_total))
    points

let test_ablation_splice () =
  let t = Experiments.A_splice.run ~seed ~quick:true () in
  check (Alcotest.float 1e-9) "splicing installs one entry" 1.0
    t.Experiments.A_splice.splice_mean;
  check Alcotest.bool "dependent sets cost more" true
    (t.Experiments.A_splice.dependent_mean > 1.5)

let test_control_overhead () =
  let rows = Experiments.E_ctrl.run ~seed ~quick:true () in
  check Alcotest.int "three scenarios" 3 (List.length rows);
  List.iter
    (fun (r : Experiments.E_ctrl.row) ->
      check Alcotest.bool "frames positive" true (r.frames > 0);
      check Alcotest.bool "bytes > frames (16-byte headers)" true (r.bytes > r.frames))
    rows

let test_cache_sweep () =
  let points = Experiments.E_cache.run ~seed ~quick:true () in
  (* bigger caches absorb more traffic *)
  let sorted =
    List.sort
      (fun (a : Experiments.E_cache.point) b -> Int.compare a.cache_size b.cache_size)
      points
  in
  let rec monotone = function
    | (a : Experiments.E_cache.point) :: (b :: _ as rest) ->
        if a.hit_rate > b.hit_rate +. 0.02 then
          Alcotest.failf "hit rate fell from %f to %f" a.hit_rate b.hit_rate
        else monotone rest
    | _ -> ()
  in
  monotone sorted;
  List.iter
    (fun (p : Experiments.E_cache.point) ->
      check (Alcotest.float 1e-9) "hit + authority = 1" 1. (p.hit_rate +. p.authority_load))
    points

let suite =
  [
    ( "experiments",
      [
        tc "table 1" test_t1;
        tc "table 1 deterministic" test_t1_deterministic;
        tc "throughput shape" test_tput_shape;
        tc "scaling linear" test_scale_linear;
        tc "delay gap" test_delay_gap;
        tc "partitioning shape" test_partition_shape;
        tc "miss-rate shape" test_miss_shape;
        tc "stretch shape" test_stretch_shape;
        tc "dynamics shape" test_dyn_shape;
        tc "cut ablation" test_ablation_cut;
        tc "splice ablation" test_ablation_splice;
        tc "control overhead" test_control_overhead;
        tc "cache sweep" test_cache_sweep;
      ] );
  ]

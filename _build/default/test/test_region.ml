open Test_util

let s2 = Schema.tiny2
let p fields = Pred.of_strings s2 fields
let h a b = Header.make s2 [| Int64.of_int a; Int64.of_int b |]

let quadrant f1 f2 = p [ ("f1", f1); ("f2", f2) ]

let test_empty_full () =
  check Alcotest.bool "empty" true (Region.is_empty (Region.empty s2));
  check Alcotest.bool "full matches" true (Region.matches (Region.full s2) (h 1 2));
  check Alcotest.bool "full nonempty" false (Region.is_empty (Region.full s2))

let test_union_inter () =
  let top = Region.of_pred (quadrant "xxxxxxxx" "1xxxxxxx") in
  let right = Region.of_pred (quadrant "1xxxxxxx" "xxxxxxxx") in
  let u = Region.union top right in
  check Alcotest.bool "in top" true (Region.matches u (h 0 255));
  check Alcotest.bool "in right" true (Region.matches u (h 255 0));
  check Alcotest.bool "outside" false (Region.matches u (h 0 0));
  let i = Region.inter top right in
  check Alcotest.bool "in corner" true (Region.matches i (h 255 255));
  check Alcotest.bool "not in top-left" false (Region.matches i (h 0 255))

let test_diff_cover () =
  let d = Region.diff (Region.full s2) (Region.of_pred (quadrant "1xxxxxxx" "1xxxxxxx")) in
  check Alcotest.bool "corner gone" false (Region.matches d (h 255 255));
  check Alcotest.bool "rest stays" true (Region.matches d (h 0 0));
  (* quadrants tile the space *)
  let quads =
    Region.of_preds s2
      [
        quadrant "0xxxxxxx" "0xxxxxxx";
        quadrant "0xxxxxxx" "1xxxxxxx";
        quadrant "1xxxxxxx" "0xxxxxxx";
        quadrant "1xxxxxxx" "1xxxxxxx";
      ]
  in
  check Alcotest.bool "tiles cover" true (Region.equal_sets quads (Region.full s2))

let test_subsumes () =
  let half = Region.of_pred (quadrant "1xxxxxxx" "xxxxxxxx") in
  let corner = Region.of_pred (quadrant "1xxxxxxx" "1xxxxxxx") in
  check Alcotest.bool "half ⊇ corner" true (Region.subsumes half corner);
  check Alcotest.bool "corner ⊉ half" false (Region.subsumes corner half);
  check Alcotest.bool "full ⊇ anything" true (Region.subsumes (Region.full s2) half)

let test_compact () =
  let r = Region.of_preds s2 [ quadrant "1xxxxxxx" "1xxxxxxx"; quadrant "1xxxxxxx" "xxxxxxxx" ] in
  let c = Region.compact r in
  check Alcotest.int "one pred left" 1 (List.length (Region.preds c));
  check Alcotest.bool "same set" true (Region.equal_sets r c)

let test_size_upper () =
  let r = Region.of_preds s2 [ quadrant "1xxxxxxx" "xxxxxxxx"; quadrant "0xxxxxxx" "xxxxxxxx" ] in
  check (Alcotest.float 0.0) "disjoint size exact" 65536.0 (Region.size_upper r)

let test_size_exact () =
  (* two overlapping halves cover 3/4 of the 16-bit space *)
  let r =
    Region.of_preds s2
      [ quadrant "1xxxxxxx" "xxxxxxxx"; quadrant "xxxxxxxx" "1xxxxxxx" ]
  in
  check (Alcotest.float 0.0) "upper bound double-counts" 65536.0 (Region.size_upper r);
  check (Alcotest.float 0.0) "exact" 49152.0 (Region.size_exact r);
  let d = Region.disjointify r in
  let rec disjoint = function
    | [] -> true
    | p :: rest -> List.for_all (fun q -> not (Pred.overlaps p q)) rest && disjoint rest
  in
  check Alcotest.bool "disjointified" true (disjoint (Region.preds d));
  check Alcotest.bool "same set" true (Region.equal_sets r d)

(* --- properties --- *)

let gen_region =
  QCheck2.Gen.(list_size (int_bound 4) gen_pred_tiny2 >|= Region.of_preds s2)

let prop_diff_exact =
  qt "diff = set difference"
    QCheck2.Gen.(triple gen_region gen_region gen_header_tiny2)
    (fun (a, b, pt) ->
      Region.matches (Region.diff a b) pt
      = (Region.matches a pt && not (Region.matches b pt)))

let prop_inter_exact =
  qt "inter = set intersection"
    QCheck2.Gen.(triple gen_region gen_region gen_header_tiny2)
    (fun (a, b, pt) ->
      Region.matches (Region.inter a b) pt = (Region.matches a pt && Region.matches b pt))

let prop_compact_preserves =
  qt "compact preserves the set"
    QCheck2.Gen.(pair gen_region gen_header_tiny2)
    (fun (a, pt) -> Region.matches (Region.compact a) pt = Region.matches a pt)

let prop_disjointify_preserves =
  qt "disjointify preserves the set"
    QCheck2.Gen.(pair gen_region gen_header_tiny2)
    (fun (a, pt) -> Region.matches (Region.disjointify a) pt = Region.matches a pt)

let prop_size_exact_bounded =
  qt "size_exact <= size_upper" gen_region (fun a ->
      Region.size_exact a <= Region.size_upper a +. 1e-6)

let prop_subsumes_diff =
  qt "subsumes a b <-> diff b a empty"
    QCheck2.Gen.(pair gen_region gen_region)
    (fun (a, b) -> Region.subsumes a b = Region.is_empty (Region.diff b a))

let suite =
  [
    ( "region",
      [
        tc "empty / full" test_empty_full;
        tc "union / inter" test_union_inter;
        tc "diff and exact cover" test_diff_cover;
        tc "subsumes" test_subsumes;
        tc "compact" test_compact;
        tc "size_upper on disjoint preds" test_size_upper;
        tc "size_exact and disjointify" test_size_exact;
        prop_diff_exact;
        prop_inter_exact;
        prop_compact_preserves;
        prop_disjointify_preserves;
        prop_size_exact_bounded;
        prop_subsumes_diff;
      ] );
  ]

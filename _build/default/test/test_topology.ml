open Test_util

let mk ~nodes links =
  Topology.create ~nodes
    (List.map
       (fun (a, b, lat) -> { Topology.src = a; dst = b; latency = lat; bandwidth = 1e9 })
       links)

(* A diamond: 0-1-3 is longer than 0-2-3. *)
let diamond = mk ~nodes:4 [ (0, 1, 3.); (1, 3, 3.); (0, 2, 1.); (2, 3, 1.); (1, 2, 1.) ]

let test_validation () =
  (try
     ignore (mk ~nodes:2 [ (0, 2, 1.) ]);
     Alcotest.fail "out-of-range endpoint accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (mk ~nodes:2 [ (0, 0, 1.) ]);
     Alcotest.fail "self loop accepted"
   with Invalid_argument _ -> ());
  try
    ignore (mk ~nodes:2 [ (0, 1, 1.); (1, 0, 2.) ]);
    Alcotest.fail "duplicate link accepted"
  with Invalid_argument _ -> ()

let test_shortest_path () =
  check (Alcotest.option (Alcotest.list Alcotest.int)) "min latency path"
    (Some [ 0; 2; 3 ])
    (Topology.shortest_path diamond 0 3);
  check (Alcotest.option (Alcotest.float 1e-9)) "distance" (Some 2.)
    (Topology.distance diamond 0 3);
  check (Alcotest.option Alcotest.int) "hops" (Some 2) (Topology.hop_count diamond 0 3);
  check (Alcotest.option (Alcotest.list Alcotest.int)) "self" (Some [ 1 ])
    (Topology.shortest_path diamond 1 1)

let test_disconnected () =
  let g = mk ~nodes:3 [ (0, 1, 1.) ] in
  check (Alcotest.option (Alcotest.list Alcotest.int)) "unreachable" None
    (Topology.shortest_path g 0 2);
  check Alcotest.bool "not connected" false (Topology.is_connected g);
  check Alcotest.bool "diamond connected" true (Topology.is_connected diamond)

let test_path_latency () =
  check (Alcotest.float 1e-9) "sum" 6. (Topology.path_latency diamond [ 0; 1; 3 ]);
  try
    ignore (Topology.path_latency diamond [ 0; 3 ]);
    Alcotest.fail "non-adjacent accepted"
  with Invalid_argument _ -> ()

let test_stretch () =
  (* via node 2 (on the shortest path): stretch 1 *)
  check (Alcotest.float 1e-9) "on-path via" 1.0 (Topology.stretch diamond ~src:0 ~via:2 ~dst:3);
  (* via node 1: best 0→1 is 0-2-1 (2), best 1→3 is 1-2-3 (2): (2+2)/2 *)
  check (Alcotest.float 1e-9) "detour via" 2.0 (Topology.stretch diamond ~src:0 ~via:1 ~dst:3);
  check (Alcotest.float 1e-9) "src=dst" 1.0 (Topology.stretch diamond ~src:2 ~via:0 ~dst:2)

let test_generators () =
  let line = Topology.line 5 () in
  check Alcotest.int "line nodes" 5 (Topology.nodes line);
  check (Alcotest.option Alcotest.int) "line hop count" (Some 4) (Topology.hop_count line 0 4);
  let star = Topology.star 6 () in
  check Alcotest.int "star hub degree" 5 (Topology.degree star 0);
  check (Alcotest.option Alcotest.int) "spoke-spoke" (Some 2) (Topology.hop_count star 1 5);
  let mesh = Topology.full_mesh 4 () in
  check Alcotest.int "mesh links" 6 (List.length (Topology.links mesh));
  let ft = Topology.fat_tree 4 in
  check Alcotest.int "fat-tree k=4 nodes" 20 (Topology.nodes ft);
  check Alcotest.bool "fat-tree connected" true (Topology.is_connected ft);
  check Alcotest.int "fat-tree links" 32 (List.length (Topology.links ft))

let test_random_generators () =
  let rng = Prng.create 42 in
  let rand () = Prng.float rng in
  let w = Topology.waxman ~rand ~nodes:30 () in
  check Alcotest.int "waxman nodes" 30 (Topology.nodes w);
  check Alcotest.bool "waxman connected" true (Topology.is_connected w);
  let c = Topology.campus ~rand ~edge_switches:10 () in
  check Alcotest.bool "campus connected" true (Topology.is_connected c);
  check Alcotest.int "campus nodes" (2 + 3 + 10) (Topology.nodes c)

(* --- placement --- *)

let test_placement_strategies () =
  let rng = Prng.create 9 in
  let rand () = Prng.float rng in
  let topo = Topology.waxman ~rand ~nodes:40 () in
  let k = 4 in
  let score p = Placement.mean_nearest_distance topo p in
  let km = Placement.k_median topo ~k in
  check Alcotest.int "k nodes" k (List.length km);
  check Alcotest.int "distinct" k (List.length (List.sort_uniq Int.compare km));
  (* greedy k-median must beat the non-interacting strategies on its own
     objective for this graph *)
  check Alcotest.bool "beats centroid picks" true
    (score km <= score (Placement.centroid topo ~k) +. 1e-12);
  check Alcotest.bool "beats degree picks" true
    (score km <= score (Placement.by_degree topo ~k) +. 1e-12);
  check Alcotest.bool "beats random picks" true
    (score km <= score (Placement.random ~rand topo ~k) +. 1e-12)

let test_placement_objective_monotone () =
  let topo = Topology.line 10 () in
  (* more authorities never hurt the objective *)
  let s2 = Placement.mean_nearest_distance topo (Placement.k_median topo ~k:2) in
  let s4 = Placement.mean_nearest_distance topo (Placement.k_median topo ~k:4) in
  check Alcotest.bool "monotone" true (s4 <= s2);
  (* full coverage: objective 0 when every node is an authority *)
  check (Alcotest.float 1e-12) "all nodes" 0.
    (Placement.mean_nearest_distance topo (Placement.k_median topo ~k:10))

let test_placement_validation () =
  let topo = Topology.line 4 () in
  (try
     ignore (Placement.k_median topo ~k:0);
     Alcotest.fail "k=0 accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Placement.by_degree topo ~k:9);
     Alcotest.fail "k>n accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Placement.mean_nearest_distance topo []);
    Alcotest.fail "empty placement accepted"
  with Invalid_argument _ -> ()

let prop_triangle_inequality =
  qt "stretch >= 1 for all via"
    QCheck2.Gen.(triple (int_bound 3) (int_bound 3) (int_bound 3))
    (fun (s, v, d) -> Topology.stretch diamond ~src:s ~via:v ~dst:d >= 1.0 -. 1e-9)

let prop_waxman_connected =
  qt ~count:20 "waxman always connected" QCheck2.Gen.(int_range 2 60) (fun n ->
      let rng = Prng.create n in
      let rand () = Prng.float rng in
      Topology.is_connected (Topology.waxman ~rand ~nodes:n ()))

let prop_dijkstra_symmetric =
  qt ~count:50 "undirected distances are symmetric"
    QCheck2.Gen.(pair (int_bound 3) (int_bound 3))
    (fun (a, b) -> Topology.distance diamond a b = Topology.distance diamond b a)

let suite =
  [
    ( "topology",
      [
        tc "link validation" test_validation;
        tc "shortest path" test_shortest_path;
        tc "disconnected graphs" test_disconnected;
        tc "path latency" test_path_latency;
        tc "stretch metric" test_stretch;
        tc "deterministic generators" test_generators;
        tc "random generators" test_random_generators;
        tc "placement strategies" test_placement_strategies;
        tc "placement objective monotone" test_placement_objective_monotone;
        tc "placement validation" test_placement_validation;
        prop_triangle_inequality;
        prop_waxman_connected;
        prop_dijkstra_symmetric;
      ] );
  ]

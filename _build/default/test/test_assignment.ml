open Test_util

let s2 = Schema.tiny2

let policy = Policy_gen.acl (Prng.create 3) { Policy_gen.default_acl with rules = 150 }
let ignore_s2 = ignore s2

let test_greedy_covers_all () =
  ignore_s2;
  let part = Partitioner.compute policy ~k:8 in
  let a = Assignment.greedy part ~authority_switches:[ 10; 20; 30 ] in
  List.iter
    (fun (p : Partitioner.partition) ->
      let sw = Assignment.switch_for a p.pid in
      if not (List.mem sw [ 10; 20; 30 ]) then Alcotest.fail "assigned outside pool")
    part.Partitioner.partitions;
  let total =
    List.fold_left (fun acc sw -> acc + List.length (Assignment.partitions_of a sw)) 0
      [ 10; 20; 30 ]
  in
  check Alcotest.int "every partition placed once" (List.length part.Partitioner.partitions) total

let test_balance () =
  let part = Partitioner.compute policy ~k:16 in
  let a = Assignment.greedy part ~authority_switches:[ 0; 1; 2; 3 ] in
  check Alcotest.bool "reasonably balanced" true (Assignment.imbalance a < 1.6)

let test_custom_weights () =
  let part = Partitioner.compute policy ~k:4 in
  let pids = List.map (fun (p : Partitioner.partition) -> p.pid) part.Partitioner.partitions in
  (* one hot partition: it must sit alone on one switch *)
  let weights = List.map (fun pid -> (pid, if pid = List.hd pids then 1000. else 1.)) pids in
  let a = Assignment.greedy ~weights part ~authority_switches:[ 0; 1 ] in
  let hot_switch = Assignment.switch_for a (List.hd pids) in
  check Alcotest.int "hot partition isolated" 1
    (List.length (Assignment.partitions_of a hot_switch))

let test_reassign () =
  let part = Partitioner.compute policy ~k:8 in
  let a = Assignment.greedy part ~authority_switches:[ 0; 1; 2 ] in
  let orphaned = Assignment.partitions_of a 1 in
  let a' = Assignment.reassign a ~failed:1 in
  check (Alcotest.list Alcotest.int) "failed switch empty" [] (Assignment.partitions_of a' 1);
  List.iter
    (fun pid ->
      let sw = Assignment.switch_for a' pid in
      if sw = 1 then Alcotest.fail "orphan still on failed switch";
      if not (List.mem sw [ 0; 2 ]) then Alcotest.fail "orphan misplaced")
    orphaned;
  (* survivors keep their partitions *)
  List.iter
    (fun pid ->
      if Assignment.switch_for a pid <> 1 then
        check Alcotest.int "unchanged" (Assignment.switch_for a pid) (Assignment.switch_for a' pid))
    (List.map (fun (p : Partitioner.partition) -> p.pid) part.Partitioner.partitions)

let test_single_authority_errors () =
  let part = Partitioner.compute policy ~k:2 in
  (try
     ignore (Assignment.greedy part ~authority_switches:[]);
     Alcotest.fail "empty pool accepted"
   with Invalid_argument _ -> ());
  let a = Assignment.greedy part ~authority_switches:[ 5 ] in
  try
    ignore (Assignment.reassign a ~failed:5);
    Alcotest.fail "reassign with no survivors accepted"
  with Invalid_argument _ -> ()

let prop_loads_sum =
  qt ~count:40 "loads sum to total weight" QCheck2.Gen.(int_range 1 20) (fun k ->
      let part = Partitioner.compute policy ~k in
      let a = Assignment.greedy part ~authority_switches:[ 0; 1; 2 ] in
      let total = List.fold_left (fun acc (_, l) -> acc +. l) 0. (Assignment.loads a) in
      let expected = float_of_int part.Partitioner.total_entries in
      Float.abs (total -. expected) < 1e-6)

let suite =
  [
    ( "assignment",
      [
        tc "greedy places every partition" test_greedy_covers_all;
        tc "balance" test_balance;
        tc "custom weights" test_custom_weights;
        tc "reassign on failure" test_reassign;
        tc "degenerate pools" test_single_authority_errors;
        prop_loads_sum;
      ] );
  ]

open Test_util

let test_single_value () =
  check (Alcotest.list ternary) "point range" [ Ternary.exact ~width:8 7L ]
    (Range.to_prefixes ~width:8 7L 7L)

let test_full_range () =
  check (Alcotest.list ternary) "full" [ Ternary.any 8 ] (Range.to_prefixes ~width:8 0L 255L)

let test_classic_expansion () =
  (* [1..6] over 3 bits: 001, 01x, 10x, 110 *)
  let ps = Range.to_prefixes ~width:3 1L 6L in
  check (Alcotest.list ternary) "1..6"
    [ Ternary.of_string "001"; Ternary.of_string "01x"; Ternary.of_string "10x"; Ternary.of_string "110" ]
    ps

let test_worst_case () =
  (* [1 .. 2^w - 2] is the classic worst case: 2w - 2 prefixes. *)
  check Alcotest.int "worst case w=16" 30 (Range.expansion_count ~width:16 1L 65534L);
  (* The thesis/paper motivating example: [1..32766] on 16 bits. *)
  let n = Range.expansion_count ~width:16 1L 32766L in
  check Alcotest.int "1..32766" 28 n

let test_errors () =
  (try
     ignore (Range.to_prefixes ~width:8 5L 4L);
     Alcotest.fail "lo>hi accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Range.to_prefixes ~width:8 0L 256L);
    Alcotest.fail "hi too big accepted"
  with Invalid_argument _ -> ()

let test_of_ternary () =
  check (Alcotest.option (Alcotest.pair Alcotest.int64 Alcotest.int64)) "prefix"
    (Some (8L, 11L))
    (Range.of_ternary (Ternary.of_string "10xx"));
  check (Alcotest.option (Alcotest.pair Alcotest.int64 Alcotest.int64)) "exact"
    (Some (9L, 9L))
    (Range.of_ternary (Ternary.of_string "1001"));
  check (Alcotest.option (Alcotest.pair Alcotest.int64 Alcotest.int64)) "not a prefix" None
    (Range.of_ternary (Ternary.of_string "1x0x"))

(* --- properties --- *)

let gen_bounds =
  let open QCheck2.Gen in
  let* a = int_bound 255 in
  let* b = int_bound 255 in
  return (Int64.of_int (min a b), Int64.of_int (max a b))

let prop_cover_exact =
  qt "prefixes cover exactly the range"
    QCheck2.Gen.(pair gen_bounds (gen_point 8))
    (fun ((lo, hi), v) ->
      let ps = Range.to_prefixes ~width:8 lo hi in
      List.exists (fun p -> Ternary.matches p v) ps
      = (Int64.compare lo v <= 0 && Int64.compare v hi <= 0))

let prop_disjoint =
  qt "prefixes pairwise disjoint" gen_bounds (fun (lo, hi) ->
      let ps = Range.to_prefixes ~width:8 lo hi in
      let rec ok = function
        | [] -> true
        | p :: rest -> List.for_all (fun q -> not (Ternary.overlaps p q)) rest && ok rest
      in
      ok ps)

let prop_count_matches =
  qt "expansion_count = list length" gen_bounds (fun (lo, hi) ->
      Range.expansion_count ~width:8 lo hi = List.length (Range.to_prefixes ~width:8 lo hi))

let prop_bound =
  qt "at most 2w-2 prefixes" gen_bounds (fun (lo, hi) ->
      Range.expansion_count ~width:8 lo hi <= (2 * 8) - 2)

let suite =
  [
    ( "range",
      [
        tc "single value" test_single_value;
        tc "full range" test_full_range;
        tc "classic 1..6/3bit expansion" test_classic_expansion;
        tc "worst-case expansion counts" test_worst_case;
        tc "bound errors" test_errors;
        tc "of_ternary" test_of_ternary;
        prop_cover_exact;
        prop_disjoint;
        prop_count_matches;
        prop_bound;
      ] );
  ]

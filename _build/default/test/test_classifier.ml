open Test_util

let s2 = Schema.tiny2
let h a b = Header.make s2 [| Int64.of_int a; Int64.of_int b |]

(* The worked example used throughout: a firewall with one broad accept
   shadow-chained under narrower rules. *)
let firewall =
  Classifier.of_specs s2
    [
      (40, [ ("f1", "00000001"); ("f2", "xxxxxxxx") ], Action.Drop);
      (30, [ ("f1", "0000000x"); ("f2", "1xxxxxxx") ], Action.Forward 1);
      (20, [ ("f1", "000000xx") ], Action.Forward 2);
      (10, [], Action.Drop);
    ]

let test_first_match () =
  check (Alcotest.option action) "top rule" (Some Action.Drop) (Classifier.action firewall (h 1 0));
  check (Alcotest.option action) "second" (Some (Action.Forward 1))
    (Classifier.action firewall (h 0 128));
  check (Alcotest.option action) "third" (Some (Action.Forward 2))
    (Classifier.action firewall (h 2 0));
  check (Alcotest.option action) "default" (Some Action.Drop)
    (Classifier.action firewall (h 200 0))

let test_priority_order () =
  (* f1=1, f2=128 matches rules 0,1,2,3; rule 0 must win. *)
  match Classifier.first_match firewall (h 1 128) with
  | Some r -> check Alcotest.int "highest priority wins" 0 r.Rule.id
  | None -> Alcotest.fail "no match"

let test_tie_break () =
  let c =
    Classifier.of_specs s2
      [ (5, [], Action.Forward 1); (5, [], Action.Forward 2) ]
  in
  check (Alcotest.option action) "lower id wins ties" (Some (Action.Forward 1))
    (Classifier.action c (h 0 0))

let test_duplicate_ids () =
  let r1 = Rule.make ~id:0 ~priority:1 (Pred.any s2) Action.Drop in
  try
    ignore (Classifier.create s2 [ r1; r1 ]);
    Alcotest.fail "duplicate ids accepted"
  with Invalid_argument _ -> ()

let test_total () =
  check Alcotest.bool "firewall total" true (Classifier.is_total firewall);
  let partial = Classifier.of_specs s2 [ (5, [ ("f1", "1xxxxxxx") ], Action.Drop) ] in
  check Alcotest.bool "partial not total" false (Classifier.is_total partial);
  let made_total = Classifier.default_deny partial in
  check Alcotest.bool "default_deny totalises" true (Classifier.is_total made_total);
  check (Alcotest.option action) "unmatched now dropped" (Some Action.Drop)
    (Classifier.action made_total (h 0 0));
  check Alcotest.int "idempotent on total" (Classifier.length firewall)
    (Classifier.length (Classifier.default_deny firewall))

let test_add_remove () =
  let c = Classifier.remove firewall 0 in
  check Alcotest.int "removed" 3 (Classifier.length c);
  check (Alcotest.option action) "next rule exposed" (Some (Action.Forward 2))
    (Classifier.action c (h 1 0));
  let c = Classifier.add c (Rule.make ~id:9 ~priority:99 (Pred.any s2) (Action.Forward 7)) in
  check (Alcotest.option action) "new top" (Some (Action.Forward 7)) (Classifier.action c (h 1 0))

let test_shadowing () =
  let c =
    Classifier.of_specs s2
      [
        (20, [ ("f1", "0xxxxxxx") ], Action.Drop);
        (10, [ ("f1", "00xxxxxx") ], Action.Forward 1);
        (5, [ ("f1", "1xxxxxxx") ], Action.Forward 2);
      ]
  in
  let shadowed = Classifier.shadowed c in
  check Alcotest.int "one shadowed" 1 (List.length shadowed);
  check Alcotest.int "rule 1 shadowed" 1 (List.hd shadowed).Rule.id;
  let cleaned = Classifier.remove_shadowed c in
  check Alcotest.int "cleaned length" 2 (Classifier.length cleaned)

let test_dead_rules () =
  (* Rule killed only by the union of two earlier rules: not syntactically
     shadowed but still dead. *)
  let c =
    Classifier.of_specs s2
      [
        (30, [ ("f1", "0xxxxxxx"); ("f2", "0000_0000") ], Action.Drop);
        (20, [ ("f1", "1xxxxxxx"); ("f2", "0000_0000") ], Action.Drop);
        (10, [ ("f2", "0000_0000") ], Action.Forward 1);
      ]
  in
  check Alcotest.int "no single-rule shadow" 0 (List.length (Classifier.shadowed c));
  let dead = Classifier.dead_rules c in
  check Alcotest.int "one dead" 1 (List.length dead);
  check Alcotest.int "rule 2 dead" 2 (List.hd dead).Rule.id

let test_effective_region () =
  let r3 = Option.get (Classifier.find firewall 2) in
  let eff = Classifier.effective_region firewall r3 in
  (* headers decided by rule 2: f1 in 0..3 minus rule0 (f1=1) minus
     rule1 (f1 in {0,1} & f2>=128) *)
  check Alcotest.bool "f1=2 kept" true (Region.matches eff (h 2 128));
  check Alcotest.bool "f1=1 stolen" false (Region.matches eff (h 1 77));
  check Alcotest.bool "f1=0 hi f2 stolen" false (Region.matches eff (h 0 128));
  check Alcotest.bool "f1=0 lo f2 kept" true (Region.matches eff (h 0 0))

let test_dependency_depth () =
  check Alcotest.int "firewall chain" 4 (Classifier.dependency_depth firewall);
  let flat =
    Classifier.of_specs s2
      [
        (10, [ ("f1", "00000000") ], Action.Drop);
        (10, [ ("f1", "00000001") ], Action.Forward 1);
        (10, [ ("f1", "00000010") ], Action.Forward 2);
      ]
  in
  check Alcotest.int "independent rules depth 1" 1 (Classifier.dependency_depth flat)

let test_direct_dependencies () =
  (* In the firewall, rule 2 depends on rules 0 and 1 directly. *)
  let r2 = Option.get (Classifier.find firewall 2) in
  let deps = Classifier.direct_dependencies firewall r2 |> List.map (fun r -> r.Rule.id) in
  check (Alcotest.list Alcotest.int) "deps of rule2" [ 0; 1 ] (List.sort Int.compare deps);
  (* An indirect-only ancestor is not a direct dependency: rule C's overlap
     with A is entirely inside B which sits between them. *)
  let c =
    Classifier.of_specs s2
      [
        (30, [ ("f1", "000000xx") ], Action.Drop);
        (20, [ ("f1", "0000xxxx") ], Action.Forward 1);
        (10, [ ("f1", "00xxxxxx") ], Action.Forward 2);
      ]
  in
  let bottom = Option.get (Classifier.find c 2) in
  let deps = Classifier.direct_dependencies c bottom |> List.map (fun r -> r.Rule.id) in
  check (Alcotest.list Alcotest.int) "only the covering middle rule" [ 1 ]
    (List.sort Int.compare deps)

let test_overlap_count () =
  check Alcotest.int "firewall overlaps" 6 (Classifier.overlap_count firewall)

(* --- properties --- *)

let gen_action =
  QCheck2.Gen.(oneofl [ Action.Drop; Action.Forward 1; Action.Forward 2; Action.Count_and_forward 1 ])

let gen_classifier =
  let open QCheck2.Gen in
  let* n = int_range 1 8 in
  let* specs =
    list_repeat n (triple (int_bound 15) gen_pred_tiny2 gen_action)
  in
  let rules = List.mapi (fun i (pr, pd, a) -> Rule.make ~id:i ~priority:pr pd a) specs in
  return (Classifier.create s2 rules)

let prop_effective_region_decides =
  qt "effective region = headers the rule decides"
    QCheck2.Gen.(pair gen_classifier gen_header_tiny2)
    (fun (c, pt) ->
      match Classifier.first_match c pt with
      | None ->
          List.for_all
            (fun r -> not (Region.matches (Classifier.effective_region c r) pt))
            (Classifier.rules c)
      | Some winner ->
          List.for_all
            (fun (r : Rule.t) ->
              Region.matches (Classifier.effective_region c r) pt = (r.id = winner.Rule.id))
            (Classifier.rules c))

let prop_remove_shadowed_semantics =
  qt "remove_shadowed preserves semantics"
    QCheck2.Gen.(pair gen_classifier gen_header_tiny2)
    (fun (c, pt) ->
      let a = Classifier.action c pt and b = Classifier.action (Classifier.remove_shadowed c) pt in
      (match (a, b) with
      | None, None -> true
      | Some x, Some y -> Action.equal x y
      | _ -> false))

let prop_default_deny_total =
  qt "default_deny is total" gen_classifier (fun c ->
      Classifier.is_total (Classifier.default_deny c))

let suite =
  [
    ( "classifier",
      [
        tc "first match" test_first_match;
        tc "priority order" test_priority_order;
        tc "equal-priority tie break" test_tie_break;
        tc "duplicate ids rejected" test_duplicate_ids;
        tc "totality / default deny" test_total;
        tc "add / remove" test_add_remove;
        tc "shadowing" test_shadowing;
        tc "dead rules (combination kill)" test_dead_rules;
        tc "effective region" test_effective_region;
        tc "dependency depth" test_dependency_depth;
        tc "direct dependencies" test_direct_dependencies;
        tc "overlap count" test_overlap_count;
        prop_effective_region_decides;
        prop_remove_shadowed_semantics;
        prop_default_deny_total;
      ] );
  ]

open Test_util

let s2 = Schema.tiny2
let p fields = Pred.of_strings s2 fields
let h a b = Header.make s2 [| Int64.of_int a; Int64.of_int b |]

let test_any () =
  let a = Pred.any s2 in
  check Alcotest.bool "matches everything" true (Pred.matches a (h 3 200));
  check Alcotest.bool "is_any" true (Pred.is_any a);
  check Alcotest.int "size_log2" 16 (Pred.size_log2 a)

let test_of_fields_default_wild () =
  let q = p [ ("f1", "00000001") ] in
  check Alcotest.bool "f2 wild" true (Pred.matches q (h 1 255));
  check Alcotest.bool "f1 constrained" false (Pred.matches q (h 2 255))

let test_named_errors () =
  (try
     ignore (Pred.of_strings s2 [ ("nope", "xxxxxxxx") ]);
     Alcotest.fail "unknown field accepted"
   with Not_found -> ());
  try
    ignore (Pred.of_strings s2 [ ("f1", "xxx") ]);
    Alcotest.fail "width mismatch accepted"
  with Invalid_argument _ -> ()

let test_inter_subsumes () =
  let a = p [ ("f1", "1xxxxxxx") ] and b = p [ ("f2", "0xxxxxxx") ] in
  (match Pred.inter a b with
  | None -> Alcotest.fail "orthogonal fields must intersect"
  | Some i ->
      check Alcotest.bool "point in" true (Pred.matches i (h 128 0));
      check Alcotest.bool "point out" false (Pred.matches i (h 0 0)));
  check Alcotest.bool "any subsumes" true (Pred.subsumes (Pred.any s2) a);
  check Alcotest.bool "a not subsume any" false (Pred.subsumes a (Pred.any s2));
  check (Alcotest.option pred) "disjoint fields" None
    (Pred.inter (p [ ("f1", "1xxxxxxx") ]) (p [ ("f1", "0xxxxxxx") ]))

let test_subtract_tuple () =
  (* full - {f1=1xxxxxxx, f2=1xxxxxxx} leaves the L-shape. *)
  let a = Pred.any s2 and b = p [ ("f1", "1xxxxxxx"); ("f2", "1xxxxxxx") ] in
  let pieces = Pred.subtract a b in
  check Alcotest.int "two pieces" 2 (List.length pieces);
  let covered pt = List.exists (fun q -> Pred.matches q pt) pieces in
  check Alcotest.bool "corner removed" false (covered (h 255 255));
  check Alcotest.bool "left kept" true (covered (h 0 255));
  check Alcotest.bool "bottom kept" true (covered (h 255 0));
  check Alcotest.bool "origin kept" true (covered (h 0 0))

let test_split () =
  let a = Pred.any s2 in
  match Pred.split a 0 7 with
  | None -> Alcotest.fail "split failed"
  | Some (lo, hi) ->
      check Alcotest.bool "lo side" true (Pred.matches lo (h 0 9));
      check Alcotest.bool "hi side" true (Pred.matches hi (h 200 9));
      check Alcotest.bool "disjoint" false (Pred.overlaps lo hi)

let test_enumerate () =
  let q = p [ ("f1", "000000x1"); ("f2", "0000000x") ] in
  let hs = Pred.enumerate q in
  check Alcotest.int "4 points" 4 (List.length hs);
  List.iter (fun x -> check Alcotest.bool "inside" true (Pred.matches q x)) hs

(* --- properties --- *)

let prop_inter_sound =
  qt "pred inter = set intersection"
    QCheck2.Gen.(triple gen_pred_tiny2 gen_pred_tiny2 gen_header_tiny2)
    (fun (a, b, pt) ->
      let lhs = match Pred.inter a b with None -> false | Some i -> Pred.matches i pt in
      lhs = (Pred.matches a pt && Pred.matches b pt))

let prop_subtract_exact =
  qt "pred subtract = set difference"
    QCheck2.Gen.(triple gen_pred_tiny2 gen_pred_tiny2 gen_header_tiny2)
    (fun (a, b, pt) ->
      let pieces = Pred.subtract a b in
      List.exists (fun q -> Pred.matches q pt) pieces
      = (Pred.matches a pt && not (Pred.matches b pt)))

let prop_subtract_disjoint =
  qt "pred subtract pieces disjoint"
    QCheck2.Gen.(pair gen_pred_tiny2 gen_pred_tiny2)
    (fun (a, b) ->
      let pieces = Pred.subtract a b in
      let rec ok = function
        | [] -> true
        | x :: rest -> List.for_all (fun y -> not (Pred.overlaps x y)) rest && ok rest
      in
      ok pieces)

let prop_subtract_all_exact =
  qt "subtract_all = difference of union"
    QCheck2.Gen.(triple gen_pred_tiny2 (list_size (int_bound 4) gen_pred_tiny2) gen_header_tiny2)
    (fun (a, bs, pt) ->
      let pieces = Pred.subtract_all a bs in
      List.exists (fun q -> Pred.matches q pt) pieces
      = (Pred.matches a pt && not (List.exists (fun b -> Pred.matches b pt) bs)))

let prop_diff_nonempty_agrees =
  qt "diff_nonempty <-> subtract_all nonempty"
    QCheck2.Gen.(pair gen_pred_tiny2 (list_size (int_bound 5) gen_pred_tiny2))
    (fun (a, bs) -> Pred.diff_nonempty a bs = (Pred.subtract_all a bs <> []))

let prop_clip_to_holder =
  qt "clip_to_holder keeps the header, avoids the blocker"
    QCheck2.Gen.(triple gen_pred_tiny2 gen_pred_tiny2 gen_header_tiny2)
    (fun (a, b, h) ->
      if not (Pred.matches a h) || Pred.matches b h then true
      else
        let piece = Pred.clip_to_holder a h b in
        Pred.matches piece h && (not (Pred.overlaps piece b)) && Pred.subsumes a piece)

let prop_subsumes_definition =
  qt "subsumes agrees with sampled membership"
    QCheck2.Gen.(triple gen_pred_tiny2 gen_pred_tiny2 gen_header_tiny2)
    (fun (a, b, pt) ->
      (not (Pred.subsumes a b)) || (not (Pred.matches b pt)) || Pred.matches a pt)

let suite =
  [
    ( "pred",
      [
        tc "any" test_any;
        tc "named fields default to wildcard" test_of_fields_default_wild;
        tc "named construction errors" test_named_errors;
        tc "inter / subsumes" test_inter_subsumes;
        tc "tuple subtraction" test_subtract_tuple;
        tc "split" test_split;
        tc "enumerate" test_enumerate;
        prop_inter_sound;
        prop_subtract_exact;
        prop_subtract_disjoint;
        prop_subtract_all_exact;
        prop_diff_nonempty_agrees;
        prop_clip_to_holder;
        prop_subsumes_definition;
      ] );
  ]

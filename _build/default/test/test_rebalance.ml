(* Bounded partitioning and traffic-measured rebalancing (paper §5). *)

open Test_util

let s2 = Schema.tiny2
let h a b = Header.make s2 [| Int64.of_int a; Int64.of_int b |]

let policy = Policy_gen.acl (Prng.create 8) { Policy_gen.default_acl with rules = 250 }

(* --- compute_bounded --- *)

let test_bounded_fits () =
  let budget = 40 in
  let r = Partitioner.compute_bounded policy ~max_entries:budget in
  List.iter
    (fun (p : Partitioner.partition) ->
      if Classifier.length p.table > budget then
        Alcotest.failf "partition %d has %d entries (budget %d)" p.pid
          (Classifier.length p.table) budget)
    r.Partitioner.partitions;
  check Alcotest.bool "uses several partitions" true
    (List.length r.Partitioner.partitions > 1)

let test_bounded_minimal_when_it_fits () =
  let r = Partitioner.compute_bounded policy ~max_entries:10_000 in
  check Alcotest.int "single partition suffices" 1 (List.length r.Partitioner.partitions)

let test_bounded_cap () =
  let r = Partitioner.compute_bounded ~max_partitions:4 policy ~max_entries:1 in
  check Alcotest.bool "capped" true (List.length r.Partitioner.partitions <= 4)

let test_bounded_invalid () =
  try
    ignore (Partitioner.compute_bounded policy ~max_entries:0);
    Alcotest.fail "max_entries=0 accepted"
  with Invalid_argument _ -> ()

let prop_bounded_still_covers =
  qt ~count:20 "bounded partitions still tile the flowspace"
    QCheck2.Gen.(int_range 5 60)
    (fun budget ->
      let small =
        Policy_gen.acl (Prng.create budget) { Policy_gen.default_acl with rules = 80 }
      in
      let r = Partitioner.compute_bounded small ~max_entries:budget in
      let region =
        Region.of_preds (Classifier.schema small)
          (List.map (fun (p : Partitioner.partition) -> p.region) r.Partitioner.partitions)
      in
      Region.equal_sets region (Region.full (Classifier.schema small)))

(* --- measured loads and rebalance --- *)

let tiny_policy =
  Classifier.of_specs s2
    [
      (10, [ ("f1", "0xxxxxxx") ], Action.Forward 3);
      (10, [ ("f1", "1xxxxxxx") ], Action.Forward 3);
      (0, [], Action.Drop);
    ]

let build () =
  let config = { Deployment.default_config with k = 4; cache_capacity = 0 } in
  Deployment.build ~config ~policy:tiny_policy ~topology:(Topology.line 5 ())
    ~authority_ids:[ 1; 3 ] ()

let test_measured_loads () =
  let d = build () in
  (* hammer one corner of the flowspace: that partition gets the load *)
  for i = 0 to 99 do
    ignore (Deployment.inject d ~now:0. ~ingress:0 (h (i mod 16) (i mod 8)))
  done;
  let loads = Deployment.measured_partition_loads d in
  check Alcotest.int "every partition listed" 4 (List.length loads);
  let total = List.fold_left (fun acc (_, l) -> acc +. l) 0. loads in
  check (Alcotest.float 1e-9) "all misses measured" 100. total;
  let hottest = List.fold_left (fun acc (_, l) -> Float.max acc l) 0. loads in
  check Alcotest.bool "load is skewed" true (hottest >= 99.)

let test_rebalance_moves_hot_partition () =
  let d = build () in
  for i = 0 to 99 do
    ignore (Deployment.inject d ~now:0. ~ingress:0 (h (i mod 16) (i mod 8)))
  done;
  let loads = Deployment.measured_partition_loads d in
  let hot_pid, _ = List.fold_left (fun (bp, bl) (p, l) -> if l > bl then (p, l) else (bp, bl)) (-1, -1.) loads in
  let d' = Deployment.rebalance d ~loads in
  (* the hot partition must sit alone on its authority switch *)
  let host = Assignment.switch_for (Deployment.assignment d') hot_pid in
  check (Alcotest.list Alcotest.int) "hot partition isolated" [ hot_pid ]
    (Assignment.partitions_of (Deployment.assignment d') host);
  (* semantics survive the move *)
  let rng = Prng.create 3 in
  let probes = List.init 200 (fun _ -> h (Prng.int rng 256) (Prng.int rng 256)) in
  check Alcotest.bool "still correct" true (Deployment.semantically_equal d' probes)

let test_rebalance_keeps_partitions () =
  let d = build () in
  let before = (Deployment.partitioner d).Partitioner.partitions in
  let d' = Deployment.rebalance d ~loads:(List.map (fun (p : Partitioner.partition) -> (p.pid, 1.)) before) in
  let after = (Deployment.partitioner d').Partitioner.partitions in
  check Alcotest.int "same partition count" (List.length before) (List.length after);
  List.iter2
    (fun (a : Partitioner.partition) (b : Partitioner.partition) ->
      check Alcotest.bool "same regions" true (Pred.equal a.region b.region))
    before after

let suite =
  [
    ( "bounded partitioning",
      [
        tc "fits the budget" test_bounded_fits;
        tc "minimal when everything fits" test_bounded_minimal_when_it_fits;
        tc "partition cap respected" test_bounded_cap;
        tc "invalid budget rejected" test_bounded_invalid;
        prop_bounded_still_covers;
      ] );
    ( "rebalance",
      [
        tc "measured loads" test_measured_loads;
        tc "hot partition isolated" test_rebalance_moves_hot_partition;
        tc "partitions unchanged" test_rebalance_keeps_partitions;
      ] );
  ]

open Test_util

let s2 = Schema.tiny2
let h a b = Header.make s2 [| Int64.of_int a; Int64.of_int b |]

let policy =
  Classifier.of_specs s2
    [
      (30, [ ("f1", "00000001") ], Action.Drop);
      (20, [ ("f1", "000000xx"); ("f2", "1xxxxxxx") ], Action.Forward 4);
      (10, [ ("f1", "0xxxxxxx") ], Action.Forward 3);
      (0, [], Action.Drop);
    ]

(* line topology 0-1-2-3-4, authorities at 1 and 3 *)
let build ?(config = Deployment.default_config) () =
  Deployment.build ~config ~policy ~topology:(Topology.line 5 ())
    ~authority_ids:[ 1; 3 ] ()

let test_build_installs () =
  let d = build () in
  (* every switch has partition rules; only authorities have tables *)
  Array.iteri
    (fun i sw ->
      let n_auth = List.length (Switch.authority_partitions sw) in
      if List.mem i [ 1; 3 ] then (
        if n_auth = 0 then Alcotest.failf "authority %d has no partitions" i)
      else check Alcotest.int "non-authority empty" 0 n_auth)
    (Deployment.switches d)

let test_first_packet_path () =
  let d = build () in
  let o = Deployment.inject d ~now:0. ~ingress:0 (h 2 0) in
  check action "action" (Action.Forward 3) o.Deployment.action;
  check Alcotest.bool "was a miss" false o.Deployment.cache_hit;
  check Alcotest.bool "visited an authority" true (Option.is_some o.Deployment.authority);
  check Alcotest.bool "installed a cache rule" true (Option.is_some o.Deployment.installed);
  (* the path detours through the authority on its way to egress 3 *)
  let auth = Option.get o.Deployment.authority in
  check Alcotest.bool "path passes authority" true (List.mem auth o.Deployment.path);
  check Alcotest.int "path starts at ingress" 0 (List.hd o.Deployment.path)

let test_second_packet_cut_through () =
  let d = build () in
  ignore (Deployment.inject d ~now:0. ~ingress:0 (h 2 0));
  let o = Deployment.inject d ~now:0.1 ~ingress:0 (h 2 0) in
  check Alcotest.bool "cache hit" true o.Deployment.cache_hit;
  check (Alcotest.option Alcotest.int) "no authority" None o.Deployment.authority;
  check (Alcotest.list Alcotest.int) "direct path" [ 0; 1; 2; 3 ] o.Deployment.path

let test_drop_stays_local () =
  let d = build () in
  let o = Deployment.inject d ~now:0. ~ingress:0 (h 1 0) in
  check action "dropped" Action.Drop o.Deployment.action;
  (* the drop verdict happens at the authority; the packet dies there *)
  check Alcotest.bool "no egress leg" true (List.length o.Deployment.path <= 3)

let test_semantics_random_probes () =
  let d = build () in
  let rng = Prng.create 77 in
  let probes =
    List.init 300 (fun _ -> h (Prng.int rng 256) (Prng.int rng 256))
  in
  check Alcotest.bool "all probes agree with policy" true
    (Deployment.semantically_equal d probes)

let test_cache_timeout_expiry () =
  let config =
    { Deployment.default_config with cache_idle_timeout = Some 1.0; cache_capacity = 10 }
  in
  let d = build ~config () in
  ignore (Deployment.inject d ~now:0. ~ingress:0 (h 2 0));
  check Alcotest.bool "cached" true (Deployment.total_cache_entries d > 0);
  let expired = Deployment.expire_caches d ~now:5. in
  check Alcotest.bool "expired" true (expired > 0);
  check Alcotest.int "caches empty" 0 (Deployment.total_cache_entries d)

let test_update_policy () =
  let d = build () in
  ignore (Deployment.inject d ~now:0. ~ingress:0 (h 2 0));
  (* flip the broad rule's action *)
  let policy' =
    Classifier.of_specs s2
      [
        (30, [ ("f1", "00000001") ], Action.Drop);
        (10, [ ("f1", "0xxxxxxx") ], Action.Forward 2);
        (0, [], Action.Drop);
      ]
  in
  let d' = Deployment.update_policy d ~now:1. policy' in
  check Alcotest.int "caches flushed" 0 (Deployment.total_cache_entries d');
  let o = Deployment.inject d' ~now:2. ~ingress:0 (h 2 0) in
  check action "new action" (Action.Forward 2) o.Deployment.action

let test_failover () =
  let d = build () in
  let d' = Deployment.fail_authority d 1 in
  check (Alcotest.list Alcotest.int) "one authority left" [ 3 ]
    (Deployment.authority_ids d');
  (* all partitions now served by 3; semantics intact *)
  let rng = Prng.create 5 in
  let probes = List.init 100 (fun _ -> h (Prng.int rng 256) (Prng.int rng 256)) in
  check Alcotest.bool "still correct" true (Deployment.semantically_equal d' probes);
  (* and every miss goes to switch 3 *)
  Deployment.flush_caches d';
  let o = Deployment.inject d' ~now:0. ~ingress:0 (h 2 0) in
  check (Alcotest.option Alcotest.int) "authority 3" (Some 3) o.Deployment.authority;
  try
    ignore (Deployment.fail_authority d' 3);
    Alcotest.fail "last authority failover accepted"
  with Invalid_argument _ -> ()

let test_authority_tcam_budget () =
  (* plenty of budget: builds fine *)
  let generous = { Deployment.default_config with authority_tcam = Some 1000 } in
  ignore
    (Deployment.build ~config:generous ~policy ~topology:(Topology.line 5 ())
       ~authority_ids:[ 1; 3 ] ());
  (* impossible budget: rejected with guidance, not deployed broken *)
  let tiny = { Deployment.default_config with authority_tcam = Some 1 } in
  try
    ignore
      (Deployment.build ~config:tiny ~policy ~topology:(Topology.line 5 ())
         ~authority_ids:[ 1; 3 ] ());
    Alcotest.fail "undersized TCAM accepted"
  with Invalid_argument msg ->
    let contains hay needle =
      let n = String.length needle and h = String.length hay in
      let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
      go 0
    in
    check Alcotest.bool "mentions the remedy" true (contains msg "compute_bounded")

let test_bad_build () =
  (try
     ignore
       (Deployment.build ~policy ~topology:(Topology.line 3 ()) ~authority_ids:[] ());
     Alcotest.fail "no authorities accepted"
   with Invalid_argument _ -> ());
  try
    ignore
      (Deployment.build ~policy ~topology:(Topology.line 3 ()) ~authority_ids:[ 9 ] ());
    Alcotest.fail "out-of-range authority accepted"
  with Invalid_argument _ -> ()

(* property: DIFANE vs centralized classifier on arbitrary header streams,
   including cache reuse between packets *)
let prop_end_to_end_equivalence =
  qt ~count:60 "deployment = classifier for whole packet streams"
    QCheck2.Gen.(list_size (int_range 1 60) gen_header_tiny2)
    (fun headers ->
      let d = build () in
      List.for_all
        (fun hd ->
          let o = Deployment.inject d ~now:0. ~ingress:0 hd in
          match Classifier.action policy hd with
          | Some a -> Action.equal a o.Deployment.action
          | None -> false)
        headers)

let suite =
  [
    ( "deployment",
      [
        tc "build installs banks" test_build_installs;
        tc "first packet detours via authority" test_first_packet_path;
        tc "second packet cuts through" test_second_packet_cut_through;
        tc "drop handled at authority" test_drop_stays_local;
        tc "random probe equivalence" test_semantics_random_probes;
        tc "cache timeout expiry" test_cache_timeout_expiry;
        tc "policy update is consistent" test_update_policy;
        tc "authority failover" test_failover;
        tc "authority TCAM budget" test_authority_tcam_budget;
        tc "build validation" test_bad_build;
        prop_end_to_end_equivalence;
      ] );
  ]

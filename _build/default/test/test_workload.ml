open Test_util

(* --- prng --- *)

let test_prng_determinism () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Prng.int64 a) (Prng.int64 b)
  done;
  let c = Prng.create 8 in
  check Alcotest.bool "different seed differs" true (Prng.int64 (Prng.create 7) <> Prng.int64 c)

let test_prng_bounds () =
  let rng = Prng.create 1 in
  for _ = 1 to 1000 do
    let v = Prng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "int out of bounds";
    let f = Prng.float rng in
    if f < 0. || f >= 1. then Alcotest.fail "float out of bounds"
  done

let test_prng_uniformity () =
  let rng = Prng.create 3 in
  let buckets = Array.make 10 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let i = Prng.int rng 10 in
    buckets.(i) <- buckets.(i) + 1
  done;
  Array.iter
    (fun c ->
      let expected = float_of_int n /. 10. in
      if Float.abs (float_of_int c -. expected) > expected *. 0.1 then
        Alcotest.fail "bucket deviates > 10%")
    buckets

let test_exponential_mean () =
  let rng = Prng.create 5 in
  let n = 20_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Prng.exponential rng ~rate:4.
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 0.25) > 0.01 then
    Alcotest.failf "exponential mean %f too far from 0.25" mean

let test_sampling () =
  let rng = Prng.create 9 in
  let arr = Array.init 10 (fun i -> i) in
  let s = Prng.sample_without_replacement rng 5 arr in
  check Alcotest.int "five" 5 (List.length s);
  check Alcotest.int "distinct" 5 (List.length (List.sort_uniq Int.compare s));
  try
    ignore (Prng.sample_without_replacement rng 11 arr);
    Alcotest.fail "oversample accepted"
  with Invalid_argument _ -> ()

(* --- zipf --- *)

let test_zipf_pmf () =
  let z = Zipf.create ~n:3 ~alpha:1.0 in
  (* weights 1, 1/2, 1/3 -> total 11/6 *)
  check (Alcotest.float 1e-9) "pmf 1" (6. /. 11.) (Zipf.pmf z 1);
  check (Alcotest.float 1e-9) "pmf 2" (3. /. 11.) (Zipf.pmf z 2);
  check (Alcotest.float 1e-9) "pmf 3" (2. /. 11.) (Zipf.pmf z 3);
  check (Alcotest.float 1e-9) "cdf 3" 1.0 (Zipf.cdf z 3)

let test_zipf_uniform () =
  let z = Zipf.create ~n:4 ~alpha:0.0 in
  check (Alcotest.float 1e-9) "uniform pmf" 0.25 (Zipf.pmf z 3)

let test_zipf_draw_skew () =
  let z = Zipf.create ~n:100 ~alpha:1.2 in
  let rng = Prng.create 11 in
  let counts = Array.make 101 0 in
  let n = 30_000 in
  for _ = 1 to n do
    let k = Zipf.draw z rng in
    counts.(k) <- counts.(k) + 1
  done;
  check Alcotest.bool "rank1 most popular" true (counts.(1) > counts.(2));
  let empirical = float_of_int counts.(1) /. float_of_int n in
  if Float.abs (empirical -. Zipf.pmf z 1) > 0.02 then
    Alcotest.failf "rank-1 frequency %f vs pmf %f" empirical (Zipf.pmf z 1)

let test_head_mass () =
  let z = Zipf.create ~n:1000 ~alpha:1.0 in
  let k = Zipf.head_mass z 0.5 in
  check Alcotest.bool "half the mass in few ranks" true (k < 100);
  check Alcotest.bool "cdf reaches target" true (Zipf.cdf z k >= 0.5);
  check Alcotest.bool "minimal" true (k = 1 || Zipf.cdf z (k - 1) < 0.5)

(* --- policy generators --- *)

let test_acl_shape () =
  let rng = Prng.create 21 in
  let c = Policy_gen.acl rng { Policy_gen.default_acl with rules = 300 } in
  let n = Classifier.length c in
  check Alcotest.bool "about 300 rules" true (n >= 250 && n <= 330);
  check Alcotest.bool "total" true (Classifier.is_total c);
  check Alcotest.bool "has chains" true (Classifier.dependency_depth c >= 3)

let test_acl_determinism () =
  let mk () = Policy_gen.acl (Prng.create 33) { Policy_gen.default_acl with rules = 100 } in
  let a = mk () and b = mk () in
  check Alcotest.int "same size" (Classifier.length a) (Classifier.length b);
  List.iter2
    (fun r1 r2 ->
      if not (Rule.equal r1 r2) then Alcotest.fail "generator not deterministic")
    (Classifier.rules a) (Classifier.rules b)

let test_prefix_table () =
  let rng = Prng.create 5 in
  let c = Policy_gen.prefix_table rng { Policy_gen.default_prefixes with prefixes = 500 } in
  check Alcotest.int "500 + default" 501 (Classifier.length c);
  check Alcotest.bool "total" true (Classifier.is_total c);
  (* LPM: all rules match only on dst_ip; any header must resolve *)
  let h = Header.of_fields Schema.ip_pair [ ("dst_ip", 0x0A000001L) ] in
  check Alcotest.bool "lookup works" true (Option.is_some (Classifier.action c h))

let test_prefix_determinism () =
  let mk () =
    Policy_gen.prefix_table (Prng.create 44)
      { Policy_gen.default_prefixes with prefixes = 200 }
  in
  let a = mk () and b = mk () in
  List.iter2
    (fun r1 r2 -> if not (Rule.equal r1 r2) then Alcotest.fail "prefix gen not deterministic")
    (Classifier.rules a) (Classifier.rules b)

let test_prng_split_independent () =
  let parent = Prng.create 5 in
  let child = Prng.split parent in
  let a = List.init 20 (fun _ -> Prng.int64 parent) in
  let b = List.init 20 (fun _ -> Prng.int64 child) in
  check Alcotest.bool "streams differ" true (a <> b);
  (* copy reproduces the remaining stream exactly *)
  let c1 = Prng.create 9 in
  ignore (Prng.int64 c1);
  let c2 = Prng.copy c1 in
  check Alcotest.int64 "copy replays" (Prng.int64 c1) (Prng.int64 c2)

let test_evaluation_sets () =
  let sets = Policy_gen.evaluation_sets ~seed:1 in
  check Alcotest.int "five sets" 5 (List.length sets);
  List.iter
    (fun (s : Policy_gen.named) ->
      check Alcotest.bool (s.label ^ " nonempty") true (Classifier.length s.classifier > 0))
    sets

(* --- traffic --- *)

let small_policy =
  Policy_gen.acl (Prng.create 99) { Policy_gen.default_acl with rules = 50; chains = 5 }

let test_headers_for () =
  let rng = Prng.create 2 in
  let hs = Traffic.headers_for rng small_policy 64 in
  check Alcotest.int "population" 64 (Array.length hs);
  Array.iter
    (fun h ->
      if Option.is_none (Classifier.action small_policy h) then
        Alcotest.fail "header escapes total policy")
    hs

let test_generate_flows () =
  let rng = Prng.create 4 in
  let profile =
    { Traffic.default with flows = 500; distinct_headers = 40; ingresses = [ 0; 1; 2 ] }
  in
  let flows = Traffic.generate rng small_policy profile in
  check Alcotest.int "count" 500 (List.length flows);
  let sorted = List.for_all2 (fun a b -> a.Traffic.start <= b.Traffic.start)
      (List.filteri (fun i _ -> i < 499) flows)
      (List.tl flows)
  in
  check Alcotest.bool "sorted by start" true sorted;
  List.iter
    (fun f ->
      if not (List.mem f.Traffic.ingress [ 0; 1; 2 ]) then Alcotest.fail "bad ingress";
      if f.Traffic.packets < 1 then Alcotest.fail "empty flow")
    flows

let test_zipf_popularity () =
  let rng = Prng.create 4 in
  let profile =
    { Traffic.default with flows = 5000; distinct_headers = 100; alpha = 1.2 }
  in
  let flows = Traffic.generate rng small_policy profile in
  let weights = Traffic.offered_headers flows in
  let counts = List.map snd weights |> List.sort (fun a b -> Int.compare b a) in
  let top = List.hd counts in
  let total = List.fold_left ( + ) 0 counts in
  check Alcotest.bool "skewed" true (float_of_int top /. float_of_int total > 0.1)

let suite =
  [
    ( "prng",
      [
        tc "determinism" test_prng_determinism;
        tc "bounds" test_prng_bounds;
        tc "uniformity" test_prng_uniformity;
        tc "exponential mean" test_exponential_mean;
        tc "sampling" test_sampling;
        tc "split and copy" test_prng_split_independent;
      ] );
    ( "zipf",
      [
        tc "pmf/cdf" test_zipf_pmf;
        tc "alpha=0 uniform" test_zipf_uniform;
        tc "draw skew" test_zipf_draw_skew;
        tc "head mass" test_head_mass;
      ] );
    ( "policy_gen",
      [
        tc "acl shape" test_acl_shape;
        tc "acl determinism" test_acl_determinism;
        tc "prefix table" test_prefix_table;
        tc "prefix determinism" test_prefix_determinism;
        tc "evaluation sets" test_evaluation_sets;
      ] );
    ( "traffic",
      [
        tc "header population" test_headers_for;
        tc "flow generation" test_generate_flows;
        tc "zipf popularity" test_zipf_popularity;
      ] );
  ]

(* Schema, Header and Action: the small types everything else builds on. *)

open Test_util

(* --- schema --- *)

let test_schema_create () =
  let s = Schema.create [ { Schema.name = "a"; bits = 4 }; { Schema.name = "b"; bits = 62 } ] in
  check Alcotest.int "arity" 2 (Schema.arity s);
  check Alcotest.int "bits a" 4 (Schema.field_bits s 0);
  check Alcotest.int "bits b" 62 (Schema.field_bits s 1);
  check Alcotest.string "name" "b" (Schema.field_name s 1);
  check Alcotest.int "index" 1 (Schema.index s "b");
  check Alcotest.int "total" 66 (Schema.total_bits s)

let test_schema_errors () =
  (try
     ignore (Schema.create []);
     Alcotest.fail "empty schema accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Schema.create [ { Schema.name = "a"; bits = 0 } ]);
     Alcotest.fail "zero-width field accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Schema.create [ { Schema.name = "a"; bits = 63 } ]);
     Alcotest.fail "63-bit field accepted"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Schema.create [ { Schema.name = "a"; bits = 4 }; { Schema.name = "a"; bits = 8 } ]);
     Alcotest.fail "duplicate names accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Schema.index Schema.tiny2 "nope");
    Alcotest.fail "unknown name accepted"
  with Not_found -> ()

let test_stock_schemas () =
  check Alcotest.int "5-tuple arity" 5 (Schema.arity Schema.acl_5tuple);
  check Alcotest.int "5-tuple bits" 104 (Schema.total_bits Schema.acl_5tuple);
  check Alcotest.int "openflow arity" 7 (Schema.arity Schema.openflow_basic);
  check Alcotest.int "ip pair" 64 (Schema.total_bits Schema.ip_pair);
  check Alcotest.bool "equal to self" true (Schema.equal Schema.tiny2 Schema.tiny2);
  check Alcotest.bool "distinct schemas differ" false
    (Schema.equal Schema.tiny2 Schema.ip_pair)

(* --- header --- *)

let test_header_truncation () =
  (* values wider than the field are truncated to its width *)
  let h = Header.make Schema.tiny2 [| 0x1FFL; 0x102L |] in
  check Alcotest.int64 "f1 truncated" 0xFFL (Header.field h 0);
  check Alcotest.int64 "f2 truncated" 0x02L (Header.field h 1)

let test_header_named () =
  let h = Header.of_fields Schema.acl_5tuple [ ("dst_port", 80L); ("proto", 6L) ] in
  check Alcotest.int64 "named" 80L (Header.get h "dst_port");
  check Alcotest.int64 "named 2" 6L (Header.get h "proto");
  check Alcotest.int64 "unnamed defaults to zero" 0L (Header.get h "src_ip");
  try
    ignore (Header.of_fields Schema.acl_5tuple [ ("bogus", 1L) ]);
    Alcotest.fail "unknown field accepted"
  with Not_found -> ()

let test_header_errors () =
  try
    ignore (Header.make Schema.tiny2 [| 1L |]);
    Alcotest.fail "arity mismatch accepted"
  with Invalid_argument _ -> ()

let test_header_compare () =
  let h1 = Header.make Schema.tiny2 [| 1L; 2L |] in
  let h2 = Header.make Schema.tiny2 [| 1L; 3L |] in
  check Alcotest.bool "equal self" true (Header.equal h1 h1);
  check Alcotest.bool "unequal" false (Header.equal h1 h2);
  check Alcotest.bool "ordering" true (Header.compare h1 h2 < 0);
  check Alcotest.bool "antisym" true (Header.compare h2 h1 > 0);
  (* values returns a copy: mutating it must not corrupt the header *)
  let vs = Header.values h1 in
  vs.(0) <- 99L;
  check Alcotest.int64 "values is a copy" 1L (Header.field h1 0)

(* --- action --- *)

let test_action_basics () =
  check Alcotest.bool "fwd equal" true (Action.equal (Action.Forward 2) (Action.Forward 2));
  check Alcotest.bool "fwd unequal" false (Action.equal (Action.Forward 2) (Action.Forward 3));
  check Alcotest.bool "kinds differ" false (Action.equal Action.Drop (Action.Forward 0));
  check Alcotest.string "pp" "fwd(3)" (Action.to_string (Action.Forward 3));
  check Alcotest.string "pp drop" "drop" (Action.to_string Action.Drop)

let test_action_classification () =
  check Alcotest.bool "tunnel is infra" true (Action.is_infrastructure (Action.To_authority 1));
  check Alcotest.bool "controller is infra" true (Action.is_infrastructure Action.Redirect_controller);
  check Alcotest.bool "fwd is policy" false (Action.is_infrastructure (Action.Forward 1));
  check (Alcotest.option Alcotest.int) "egress of fwd" (Some 4) (Action.egress (Action.Forward 4));
  check (Alcotest.option Alcotest.int) "egress of count" (Some 2)
    (Action.egress (Action.Count_and_forward 2));
  check (Alcotest.option Alcotest.int) "drop has no egress" None (Action.egress Action.Drop)

let test_action_compare_total () =
  let all =
    [ Action.Forward 1; Action.Drop; Action.Count_and_forward 2; Action.To_authority 3;
      Action.Redirect_controller ]
  in
  (* compare must be a total order consistent with equal *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let c1 = Action.compare a b and c2 = Action.compare b a in
          if Action.equal a b then check Alcotest.int "equal -> 0" 0 c1
          else if c1 = 0 then Alcotest.fail "unequal actions compare 0";
          check Alcotest.int "antisymmetric" (-c1) c2)
        all)
    all

let suite =
  [
    ( "schema",
      [
        tc "create and access" test_schema_create;
        tc "validation" test_schema_errors;
        tc "stock schemas" test_stock_schemas;
      ] );
    ( "header",
      [
        tc "truncation to field width" test_header_truncation;
        tc "named construction" test_header_named;
        tc "arity validation" test_header_errors;
        tc "equality and compare" test_header_compare;
      ] );
    ( "action",
      [
        tc "equality and printing" test_action_basics;
        tc "infrastructure vs policy" test_action_classification;
        tc "total order" test_action_compare_total;
      ] );
  ]

(* ISP VPN: destination-prefix forwarding over a Waxman WAN.

   A 5000-prefix routing policy (the paper's ISP/VPN stand-in) deployed
   over a 40-node random WAN.  Compares authority-switch placement
   strategies by the stretch miss packets suffer, and shows the
   load-balance the greedy assignment achieves.

     dune exec examples/isp_vpn.exe *)

let printf = Printf.printf

let () =
  let seed = 7 in
  let rng = Prng.create seed in
  let topo_rng = Prng.split rng in
  let topology = Topology.waxman ~rand:(fun () -> Prng.float topo_rng) ~nodes:40 () in
  printf "WAN: %s\n" (Format.asprintf "%a" Topology.pp topology);

  let policy =
    Policy_gen.prefix_table (Prng.split rng)
      { Policy_gen.default_prefixes with prefixes = 5000; egresses = 8 }
  in
  printf "Policy: %d destination prefixes\n\n" (Classifier.length policy);

  let placement_rng = Prng.split rng in
  let placements =
    [
      ("random", Placement.random ~rand:(fun () -> Prng.float placement_rng) topology ~k:4);
      ("top-degree", Placement.by_degree topology ~k:4);
      ("centroid", Placement.centroid topology ~k:4);
      ("k-median", Placement.k_median topology ~k:4);
    ]
  in

  let headers = Traffic.headers_for (Prng.split rng) policy 1000 in
  let probe_rng = Prng.split rng in
  let probes =
    List.init 4000 (fun i ->
        (Prng.int probe_rng (Topology.nodes topology), headers.(i mod Array.length headers)))
  in

  let placements =
    placements @ [ ("k-median+nearest", Placement.k_median topology ~k:4) ]
  in
  let rows =
    List.map
      (fun (name, authorities) ->
        let nearest = name = "k-median+nearest" in
        let config =
          {
            Deployment.default_config with
            k = 16;
            cache_capacity = 0;
            balance = `Volume;
            tunnel_to = (if nearest then `Nearest_replica else `Primary);
            replication = (if nearest then 4 else 1);
          }
        in
        let d = Deployment.build ~config ~policy ~topology ~authority_ids:authorities () in
        let stretches =
          List.filter_map
            (fun (ingress, h) ->
              let o = Deployment.inject d ~now:0. ~ingress h in
              match (o.Deployment.authority, Action.egress o.Deployment.action) with
              | Some via, Some egress when ingress <> egress ->
                  Some (Topology.stretch topology ~src:ingress ~via ~dst:egress)
              | _ -> None)
            probes
        in
        let s = Summary.of_list stretches in
        let imbalance = Assignment.imbalance (Deployment.assignment d) in
        ( name,
          String.concat "," (List.map string_of_int authorities),
          s,
          imbalance ))
      placements
  in
  Table.print ~title:"stretch of miss packets by authority placement"
    ~header:[ "placement"; "authorities"; "p50"; "mean"; "p95"; "TCAM imbalance" ]
    (List.map
       (fun (name, auths, s, imb) ->
         [
           name;
           auths;
           Printf.sprintf "%.2f" s.Summary.p50;
           Printf.sprintf "%.2f" s.Summary.mean;
           Printf.sprintf "%.2f" s.Summary.p95;
           Printf.sprintf "%.2f" imb;
         ])
       rows);

  printf "\nInterpretation: every miss detours through its authority switch.  With\n";
  printf "primary-only tunnelling, central placement keeps the detour short; with\n";
  printf "replicated partitions and nearest-replica tunnelling, spread (k-median)\n";
  printf "placement nearly erases it -- the paper's replication knob doing double\n";
  printf "duty.\n"

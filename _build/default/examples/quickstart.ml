(* Quickstart: the DIFANE packet walk on a five-switch line.

   Build a tiny access-control policy, deploy it with two authority
   switches, and watch what happens to the first and second packet of a
   flow: the first detours through an authority switch (which installs a
   spliced cache rule at the ingress), the second cuts through.

     dune exec examples/quickstart.exe *)

let printf = Printf.printf

let () =
  let schema = Schema.tiny2 in

  (* A policy with a dependency chain: a narrow drop shadowing a broad
     accept — the case where caching the matched rule naively would be
     unsafe. *)
  let policy =
    Classifier.of_specs schema
      [
        (30, [ ("f1", "00000001") ], Action.Drop);
        (20, [ ("f1", "000000xx"); ("f2", "1xxxxxxx") ], Action.Forward 4);
        (10, [ ("f1", "0xxxxxxx") ], Action.Forward 3);
        (0, [], Action.Drop);
      ]
  in
  printf "Policy (highest priority first):\n%s\n\n"
    (Format.asprintf "%a" Classifier.pp policy);

  (* Topology: 0 - 1 - 2 - 3 - 4, authorities at switches 1 and 3. *)
  let topology = Topology.line 5 () in
  let d = Deployment.build ~policy ~topology ~authority_ids:[ 1; 3 ] () in
  printf "Deployed: %d partitions over authority switches 1 and 3\n"
    (List.length (Deployment.partitioner d).Partitioner.partitions);
  printf "%s\n\n" (Format.asprintf "%a" Assignment.pp (Deployment.assignment d));

  let show_path o =
    String.concat " -> " (List.map string_of_int o.Deployment.path)
  in
  let h f1 f2 = Header.make schema [| Int64.of_int f1; Int64.of_int f2 |] in

  (* First packet of a flow matching the broad accept rule. *)
  let pkt = h 2 5 in
  printf "First packet %s from switch 0:\n" (Format.asprintf "%a" Header.pp pkt);
  let o1 = Deployment.inject d ~now:0.0 ~ingress:0 pkt in
  printf "  action    : %s\n" (Action.to_string o1.Deployment.action);
  printf "  path      : %s   (detours via authority %s)\n" (show_path o1)
    (match o1.Deployment.authority with Some a -> string_of_int a | None -> "-");
  printf "  latency   : %.0f us\n" (1e6 *. o1.Deployment.latency);
  (match o1.Deployment.installed with
  | Some r ->
      printf "  installed : spliced cache rule %s\n"
        (Format.asprintf "%a" Rule.pp r)
  | None -> printf "  installed : nothing\n");

  (* Second packet of the same flow: served by the ingress cache. *)
  let o2 = Deployment.inject d ~now:0.1 ~ingress:0 pkt in
  printf "\nSecond packet:\n";
  printf "  cache hit : %b\n" o2.Deployment.cache_hit;
  printf "  path      : %s   (straight to egress)\n" (show_path o2);
  printf "  latency   : %.0f us\n" (1e6 *. o2.Deployment.latency);

  (* The spliced cache rule must not swallow the narrow drop rule. *)
  let blocked = h 1 5 in
  let o3 = Deployment.inject d ~now:0.2 ~ingress:0 blocked in
  printf "\nPacket %s (matches the high-priority drop):\n"
    (Format.asprintf "%a" Header.pp blocked);
  printf "  action    : %s  (cache hit: %b — the cached piece excluded it)\n"
    (Action.to_string o3.Deployment.action)
    o3.Deployment.cache_hit;

  (* Per-switch view. *)
  printf "\nSwitch state:\n";
  Array.iter
    (fun sw -> printf "  %s\n" (Format.asprintf "%a" Switch.pp sw))
    (Deployment.switches d);

  (* The same packets executed hop by hop on the underlay's next-hop
     tables, with explicit encapsulation — the faithful data plane. *)
  let routing = Routing.compute topology in
  Deployment.flush_caches d;
  let walk = Dataplane.packet ~routing ~switch:(Deployment.switch d) ~now:1.0 ~ingress:0 pkt in
  printf "\nHop-by-hop replay of the first packet:\n";
  printf "  trace     : %s\n"
    (String.concat " -> " (List.map string_of_int walk.Dataplane.trace));
  printf "  tunnels   : %d (ingress->authority, authority->egress)\n"
    walk.Dataplane.encapsulations;
  printf "  latency   : %.0f us (matches the shortcut above)\n"
    (1e6 *. walk.Dataplane.latency);

  (* And the whole thing stays faithful to the original classifier. *)
  let rng = Prng.create 1 in
  let probes =
    List.init 1000 (fun _ -> h (Prng.int rng 256) (Prng.int rng 256))
  in
  printf "\n1000 random probes agree with the original policy: %b\n"
    (Deployment.semantically_equal d probes)

(* Policy update: changing the rules while traffic is flowing.

   An operator tightens an ACL at runtime.  DIFANE's two consistency
   modes:
   - strict: the controller flushes every reactive cache entry with the
     update — no packet is ever handled by the old policy afterwards;
   - lazy: cached entries drain via their hard timeout — cheaper, but
     stale decisions linger for a bounded window.

     dune exec examples/policy_update.exe *)

let printf = Printf.printf

let () =
  let schema = Schema.tiny2 in
  let open_policy =
    Classifier.of_specs schema
      [
        (10, [ ("f1", "0xxxxxxx") ], Action.Forward 3);
        (0, [], Action.Drop);
      ]
  in
  (* The update blocks a previously allowed subnet. *)
  let locked_policy =
    Classifier.of_specs schema
      [
        (20, [ ("f1", "0001xxxx") ], Action.Drop);
        (10, [ ("f1", "0xxxxxxx") ], Action.Forward 3);
        (0, [], Action.Drop);
      ]
  in
  let topology = Topology.line 5 () in
  let h v = Header.make schema [| Int64.of_int v; 0L |] in
  let victim = h 0x15 (* inside the newly blocked 0001xxxx subnet *) in

  let run ~flush =
    let config =
      {
        Deployment.default_config with
        cache_idle_timeout = None;
        cache_hard_timeout = Some 1.0;
      }
    in
    let d = Deployment.build ~config ~policy:open_policy ~topology ~authority_ids:[ 1; 3 ] () in
    (* Warm the ingress cache with the soon-to-be-blocked flow. *)
    let o = Deployment.inject d ~now:0.0 ~ingress:0 victim in
    printf "  t=0.0  first packet: %s (cached at ingress)\n"
      (Action.to_string o.Deployment.action);
    let d = Deployment.update_policy ~flush d ~now:0.5 locked_policy in
    printf "  t=0.5  policy updated (%s)\n" (if flush then "strict flush" else "lazy");
    let probe t =
      ignore (Deployment.expire_caches d ~now:t);
      let o = Deployment.inject d ~now:t ~ingress:0 victim in
      printf "  t=%.1f  packet to blocked subnet: %-8s (cache hit: %b)\n" t
        (Action.to_string o.Deployment.action)
        o.Deployment.cache_hit
    in
    probe 0.6;
    probe 0.9;
    probe 1.1 (* past the 1 s hard timeout: stale entry is gone *)
  in

  printf "== strict consistency ==\n";
  run ~flush:true;
  printf "\n== lazy (timeout-bounded) consistency ==\n";
  run ~flush:false;
  printf "\nWith strict flushing the block is immediate; lazily, the stale cached\n";
  printf "accept survives until its hard timeout (bounded staleness).\n"

(* Failover: losing an authority switch mid-run.

   DIFANE's availability story (paper §5): with replication, every
   partition's rules are pre-installed on a backup authority switch, so
   when the primary dies the controller only swaps partition rules — no
   rule transfer — and misses keep being served.

     dune exec examples/failover.exe *)

let printf = Printf.printf

let () =
  let seed = 11 in
  let rng = Prng.create seed in
  let schema = Schema.acl_5tuple in
  ignore schema;
  let policy =
    Policy_gen.acl (Prng.split rng)
      { Policy_gen.default_acl with rules = 500; chains = 30 }
  in
  let topology = Topology.full_mesh 6 () in
  let authorities = [ 1; 2; 3 ] in

  let run ~replication =
    let config =
      { Deployment.default_config with k = 9; replication; cache_capacity = 200 }
    in
    let d = Deployment.build ~config ~policy ~topology ~authority_ids:authorities () in
    let headers = Traffic.headers_for (Prng.split (Prng.create seed)) policy 500 in
    let probe ~d ~n ~from =
      let ok = ref 0 in
      for i = 0 to n - 1 do
        let h = headers.(i mod Array.length headers) in
        let o = Deployment.inject d ~now:0. ~ingress:from h in
        let expected = Option.value ~default:Action.Drop (Classifier.action policy h) in
        if Action.equal o.Deployment.action expected then incr ok
      done;
      !ok
    in
    let before = probe ~d ~n:500 ~from:0 in
    let victim = List.hd authorities in
    let d = Deployment.fail_authority d victim in
    let installs = Deployment.last_new_primary_installs d in
    let background = Deployment.last_new_authority_installs d - installs in
    let after = probe ~d ~n:500 ~from:0 in
    (before, victim, installs, background, after, d)
  in

  printf "== replication = 1 (no backups) ==\n";
  let b1, v1, i1, g1, a1, _ = run ~replication:1 in
  printf "before failure: %d/500 packets correct\n" b1;
  printf "authority %d fails -> %d serving-path table pushes (+%d background)\n" v1 i1 g1;
  printf "after failover: %d/500 packets correct\n\n" a1;

  printf "== replication = 2 (hot backups) ==\n";
  let b2, v2, i2, g2, a2, d2 = run ~replication:2 in
  printf "before failure: %d/500 packets correct\n" b2;
  printf
    "authority %d fails -> %d serving-path table pushes (+%d background backup refills)\n"
    v2 i2 g2;
  printf "after failover: %d/500 packets correct\n" a2;

  (* A second failure leaves a single authority; the system degrades but
     stays correct. *)
  let d3 = Deployment.fail_authority d2 (List.hd (Deployment.authority_ids d2)) in
  printf "\nsecond failure -> authorities left: %s\n"
    (String.concat "," (List.map string_of_int (Deployment.authority_ids d3)));
  let rng2 = Prng.create 99 in
  let probes =
    List.init 300 (fun _ ->
        Pred.random_point (fun n -> Prng.bits rng2 n) (Pred.any (Classifier.schema policy)))
  in
  printf "still policy-faithful on 300 random probes: %b\n"
    (Deployment.semantically_equal d3 probes)

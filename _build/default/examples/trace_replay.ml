(* Trace replay: record a workload once, replay it against different cache
   configurations.

   This is the methodology of the paper era's trace-driven cache studies
   (e.g. the REANNZ IXP trace in follow-on work): freeze a traffic trace
   to a file, then compare caching schemes on the *identical* packet
   sequence.  Here: record 20k Zipf flows, replay them through spliced
   wildcard caching and microflow caching across cache sizes.

     dune exec examples/trace_replay.exe *)

let printf = Printf.printf

let () =
  let seed = 4 in
  let rng = Prng.create seed in
  let policy =
    Policy_gen.acl (Prng.split rng)
      { Policy_gen.default_acl with rules = 800; chains = 40 }
  in
  let schema = Classifier.schema policy in

  (* 1. record *)
  let profile =
    {
      Traffic.default with
      flows = 20_000;
      distinct_headers = 1_500;
      alpha = 1.0;
      packets_per_flow_mean = 3.0;
    }
  in
  let flows = Traffic.generate (Prng.split rng) policy profile in
  let path = Filename.temp_file "difane" ".trace" in
  Trace.save path schema flows;
  printf "recorded %d flows to %s (%d bytes)\n" (List.length flows) path
    (let st = open_in path in
     let n = in_channel_length st in
     close_in st;
     n);

  (* 2. replay — from the file, as a separate consumer would *)
  let replayed =
    match Trace.load path schema with
    | Ok f -> f
    | Error e -> failwith e
  in
  Sys.remove path;
  printf "replayed %d flows\n\n" (List.length replayed);

  let stream = Cachesim.packet_stream replayed in
  printf "packet stream: %d packets over %d distinct headers\n\n"
    (Array.length stream) profile.Traffic.distinct_headers;

  let sizes = [ 25; 50; 100; 200; 400; 800 ] in
  let results = Cachesim.sweep policy ~cache_sizes:sizes stream in
  Table.print
    ~title:"miss rate vs cache size (same trace; OPT = clairvoyant floor)"
    ~header:
      [ "cache entries"; "wildcard (DIFANE)"; "wildcard OPT"; "microflow (Ethane)";
        "advantage" ]
    (List.map
       (fun (size, (w : Cachesim.result), (m : Cachesim.result)) ->
         let opt = Cachesim.run_opt Cachesim.Wildcard_splice policy ~cache_size:size stream in
         [
           string_of_int size;
           Table.fmt_pct w.Cachesim.miss_rate;
           Table.fmt_pct opt.Cachesim.miss_rate;
           Table.fmt_pct m.Cachesim.miss_rate;
           (if w.Cachesim.miss_rate > 0. then
              Printf.sprintf "%.1fx" (m.Cachesim.miss_rate /. w.Cachesim.miss_rate)
            else "inf");
         ])
       results);

  let _, w, m = List.nth results (List.length results - 1) in
  printf "\nworking sets: %d spliced pieces vs %d exact headers\n"
    w.Cachesim.distinct_keys m.Cachesim.distinct_keys;
  printf "(aggregation is why DIFANE's wildcard cache wins at equal TCAM budget)\n"

examples/trace_replay.ml: Array Cachesim Classifier Filename List Policy_gen Printf Prng Sys Table Trace Traffic

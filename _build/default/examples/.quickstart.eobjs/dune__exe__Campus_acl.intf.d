examples/campus_acl.mli:

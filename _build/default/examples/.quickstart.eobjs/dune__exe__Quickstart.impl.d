examples/quickstart.ml: Action Array Assignment Classifier Dataplane Deployment Format Header Int64 List Partitioner Printf Prng Routing Rule Schema String Switch Topology

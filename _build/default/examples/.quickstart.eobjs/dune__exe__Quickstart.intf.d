examples/quickstart.mli:

examples/isp_vpn.mli:

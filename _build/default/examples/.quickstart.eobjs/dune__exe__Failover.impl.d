examples/failover.ml: Action Array Classifier Deployment List Option Policy_gen Pred Printf Prng Schema String Topology Traffic

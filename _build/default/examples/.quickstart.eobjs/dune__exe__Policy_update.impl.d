examples/policy_update.ml: Action Classifier Deployment Header Int64 Printf Schema Topology

examples/isp_vpn.ml: Action Array Assignment Classifier Deployment Format List Placement Policy_gen Printf Prng String Summary Table Topology Traffic

examples/campus_acl.ml: Array Classifier Deployment Float Flowsim Format Hashtbl Int64 List Option Partitioner Policy_gen Printf Prng Rule String Summary Switch Table Tcam Topology Traffic

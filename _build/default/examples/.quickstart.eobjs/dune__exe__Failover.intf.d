examples/failover.mli:

examples/policy_update.mli:

(** A functional model of a TCAM bank.

    Capacity-bounded, priority-ordered ternary match table with per-entry
    statistics (packet counts, install/last-hit times) and idle/hard
    timeouts — the state a hardware switch exposes to DIFANE.  The model
    is mutable (a switch's table is inherently stateful) but confined:
    all observation goes through the accessors below.

    Time is a [float] of seconds supplied by the caller (the simulator's
    clock); the TCAM never reads a wall clock. *)

type t

type entry = {
  rule : Rule.t;
  installed_at : float;
  mutable last_hit : float;
  mutable packets : int64;
  mutable bytes : int64;
  idle_timeout : float option;  (** evict after this much hit silence *)
  hard_timeout : float option;  (** evict this long after install *)
}

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity < 0].  A capacity of [0] models a
    switch with no TCAM (everything misses). *)

val capacity : t -> int
val occupancy : t -> int
val is_full : t -> bool
val entries : t -> entry list
(** In table (priority) order. *)

val find : t -> int -> entry option
(** Entry by rule id. *)

val mem : t -> int -> bool

(** {1 Mutation} *)

val insert :
  ?idle_timeout:float -> ?hard_timeout:float -> t -> now:float -> Rule.t ->
  [ `Ok | `Replaced | `Full ]
(** Install a rule.  A rule with the same id replaces the old entry
    (preserving nothing — OpenFlow flow-mod semantics); [`Full] is
    returned, and nothing changes, when the table is at capacity. *)

val insert_or_evict :
  ?idle_timeout:float -> ?hard_timeout:float -> t -> now:float -> Rule.t ->
  Rule.t list
(** Install, evicting least-recently-hit entries as needed to make room.
    Returns the evicted rules (empty when none).  This is the reactive
    cache-install path of DIFANE ingress switches. *)

val insert_or_evict_entries :
  ?idle_timeout:float -> ?hard_timeout:float -> t -> now:float -> Rule.t ->
  entry list
(** Like {!insert_or_evict} but returning the full evicted entries, so
    callers can report final counters (flow-removed notifications). *)

val remove : t -> int -> bool
(** Remove by rule id; [false] if absent. *)

val remove_where : t -> (Rule.t -> bool) -> int
(** Remove all entries whose rule satisfies the predicate; returns the
    number removed. *)

val clear : t -> unit

val expire : t -> now:float -> Rule.t list
(** Evict every entry whose idle or hard timeout has elapsed at [now];
    returns the evicted rules. *)

val expire_entries : t -> now:float -> entry list
(** Like {!expire} but returning the full expired entries. *)

(** {1 Lookup} *)

val lookup : t -> now:float -> ?bytes:int -> Header.t -> Rule.t option
(** Highest-priority matching entry; bumps its counters and [last_hit].
    [bytes] defaults to a 64-byte minimum-size packet. *)

val peek : t -> Header.t -> Rule.t option
(** Like [lookup] but with no statistics side effects. *)

(** {1 Statistics} *)

type stats = { hits : int64; misses : int64; inserts : int64; evictions : int64 }

val stats : t -> stats
val reset_stats : t -> unit

val hit_rate : t -> float
(** Hits over lookups since the last reset; [nan] before any lookup. *)

val pp : Format.formatter -> t -> unit

(* One group per distinct mask vector.  Keys are the header values ANDed
   with the group's masks; rules whose predicate shares the mask vector
   and key collide into a priority-sorted bucket (overlaps with identical
   predicates, e.g. equal-priority duplicates). *)

type group = {
  masks : int64 array; (* per field *)
  best_priority : int; (* highest priority in the group *)
  table : (int64 array, Rule.t list) Hashtbl.t; (* bucket in table order *)
}

type t = {
  source : Classifier.t;
  groups : group array; (* best_priority desc *)
  degenerate : bool; (* too many groups: linear scan is cheaper *)
}

let mask_vector (r : Rule.t) =
  Array.map Ternary.mask (Array.of_list (List.init (Pred.arity r.pred) (Pred.field r.pred)))

let key_of_values masks values = Array.map2 Int64.logand masks values
let key_of_rule masks (r : Rule.t) =
  Array.init (Array.length masks) (fun i -> Ternary.value (Pred.field r.pred i))

let of_classifier source =
  let by_mask : (int64 array, Rule.t list ref) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let mv = mask_vector r in
      match Hashtbl.find_opt by_mask mv with
      | Some l -> l := r :: !l
      | None -> Hashtbl.add by_mask mv (ref [ r ]))
    (Classifier.rules source);
  let groups =
    Hashtbl.fold
      (fun masks rules acc ->
        let rules = List.sort Rule.compare_priority !rules in
        let table = Hashtbl.create (2 * List.length rules) in
        List.iter
          (fun r ->
            let key = key_of_rule masks r in
            let bucket = Option.value ~default:[] (Hashtbl.find_opt table key) in
            Hashtbl.replace table key (bucket @ [ r ]))
          rules;
        let best_priority =
          match rules with r :: _ -> r.Rule.priority | [] -> min_int
        in
        { masks; best_priority; table } :: acc)
      by_mask []
    |> List.sort (fun a b -> Int.compare b.best_priority a.best_priority)
    |> Array.of_list
  in
  (* A hash probe costs roughly as much as scanning a handful of rules;
     with nearly one group per rule, tuple search only adds overhead. *)
  let degenerate =
    Array.length groups > 8 && 4 * Array.length groups > 3 * Classifier.length source
  in
  { source; groups; degenerate }

let length t = Classifier.length t.source
let groups t = Array.length t.groups
let degenerate t = t.degenerate
let classifier t = t.source

let first_match_tss t h =
  let values = Header.values h in
  let best = ref None in
  let beats_best (r : Rule.t) =
    match !best with None -> true | Some b -> Rule.beats r b
  in
  (try
     Array.iter
       (fun g ->
         (* groups are sorted by best priority: once the current winner
            outranks everything a group could hold, stop *)
         (match !best with
         | Some (b : Rule.t) when b.priority > g.best_priority -> raise Exit
         | _ -> ());
         match Hashtbl.find_opt g.table (key_of_values g.masks values) with
         | None -> ()
         | Some bucket -> (
             match List.find_opt (fun r -> beats_best r) bucket with
             | Some r -> best := Some r
             | None -> ()))
       t.groups
   with Exit -> ());
  !best

let first_match t h =
  if t.degenerate then Classifier.first_match t.source h else first_match_tss t h

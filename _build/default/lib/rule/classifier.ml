type t = { schema : Schema.t; rules : Rule.t list (* table order *) }

let sort_rules rules = List.sort Rule.compare_priority rules

let create schema rules =
  List.iter
    (fun (r : Rule.t) ->
      if not (Schema.equal (Pred.schema r.pred) schema) then
        invalid_arg "Classifier.create: rule schema mismatch")
    rules;
  let ids = List.map (fun (r : Rule.t) -> r.id) rules in
  if List.length (List.sort_uniq Int.compare ids) <> List.length ids then
    invalid_arg "Classifier.create: duplicate rule ids";
  { schema; rules = sort_rules rules }

let of_specs schema specs =
  let rules =
    List.mapi
      (fun i (priority, fields, action) ->
        Rule.make ~id:i ~priority (Pred.of_strings schema fields) action)
      specs
  in
  create schema rules

let schema t = t.schema
let rules t = t.rules
let length t = List.length t.rules
let find t id = List.find_opt (fun (r : Rule.t) -> r.id = id) t.rules

let add t r =
  if Option.is_some (find t r.Rule.id) then
    invalid_arg "Classifier.add: duplicate rule id";
  { t with rules = sort_rules (r :: t.rules) }

let remove t id = { t with rules = List.filter (fun (r : Rule.t) -> r.id <> id) t.rules }
let first_match t h = List.find_opt (fun r -> Rule.matches r h) t.rules
let action t h = Option.map (fun (r : Rule.t) -> r.action) (first_match t h)

let covered_region t =
  Region.of_preds t.schema (List.map (fun (r : Rule.t) -> r.pred) t.rules)

let is_total t = Region.subsumes (covered_region t) (Region.full t.schema)

let default_deny t =
  if is_total t then t
  else
    let min_priority =
      List.fold_left (fun acc (r : Rule.t) -> min acc r.priority) 0 t.rules
    in
    let max_id = List.fold_left (fun acc (r : Rule.t) -> max acc r.id) (-1) t.rules in
    add t
      (Rule.make ~id:(max_id + 1) ~priority:(min_priority - 1) (Pred.any t.schema)
         Action.Drop)

let earlier t (r : Rule.t) =
  List.filter (fun r' -> Rule.beats r' r) t.rules

let effective_region t r =
  let blockers =
    earlier t r |> List.filter (Rule.overlaps r) |> List.map (fun (b : Rule.t) -> b.pred)
  in
  Region.of_preds t.schema (Pred.subtract_all r.Rule.pred blockers)

let shadowed t =
  List.filter (fun r -> List.exists (fun r' -> Rule.shadows r' r) t.rules) t.rules

let dead_rules t =
  List.filter (fun r -> Region.is_empty (effective_region t r)) t.rules

let remove_shadowed t =
  let dead = shadowed t in
  {
    t with
    rules = List.filter (fun r -> not (List.memq r dead)) t.rules;
  }

(* [b] is a direct dependency of [r] when some header is matched by both
   [r] and [b] but by no rule whose priority lies strictly between them:
   i.e. the overlap of [r] and [b] survives subtraction of every
   in-between rule. *)
let direct_dependencies t r =
  let earlier_rules = earlier t r |> List.filter (Rule.overlaps r) in
  List.filter
    (fun (b : Rule.t) ->
      match Pred.inter r.Rule.pred b.pred with
      | None -> false
      | Some ov ->
          let between =
            List.filter (fun r' -> Rule.beats b r') earlier_rules
            |> List.map (fun (x : Rule.t) -> x.pred)
          in
          Pred.diff_nonempty ov between)
    earlier_rules

let dependency_depth t =
  (* Longest chain following direct-dependency edges.  Memoised over the
     table-order index: edges always point to earlier rules. *)
  let arr = Array.of_list t.rules in
  let n = Array.length arr in
  let index_of = Hashtbl.create n in
  Array.iteri (fun i r -> Hashtbl.replace index_of r.Rule.id i) arr;
  let memo = Array.make n 0 in
  let rec depth i =
    if memo.(i) > 0 then memo.(i)
    else begin
      let deps = direct_dependencies t arr.(i) in
      let d =
        1
        + List.fold_left
            (fun acc (b : Rule.t) -> max acc (depth (Hashtbl.find index_of b.id)))
            0 deps
      in
      memo.(i) <- d;
      d
    end
  in
  let best = ref 0 in
  for i = 0 to n - 1 do
    best := max !best (depth i)
  done;
  !best

let overlap_depth t =
  let arr = Array.of_list t.rules in
  let n = Array.length arr in
  let depth = Array.make n 1 in
  (* table order: earlier rules beat later ones, so one forward pass *)
  for j = 0 to n - 1 do
    for i = 0 to j - 1 do
      if Rule.overlaps arr.(i) arr.(j) && depth.(i) + 1 > depth.(j) then
        depth.(j) <- depth.(i) + 1
    done
  done;
  Array.fold_left max 0 depth

let overlap_count t =
  let rec go acc = function
    | [] -> acc
    | r :: rest ->
        let acc =
          acc + List.length (List.filter (fun r' -> Rule.overlaps r r') rest)
        in
        go acc rest
  in
  go 0 t.rules

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Rule.pp)
    t.rules

let decision_region c action =
  let regions =
    Classifier.rules c
    |> List.filter (fun (r : Rule.t) -> Action.equal r.action action)
    |> List.map (Classifier.effective_region c)
  in
  List.fold_left Region.union (Region.empty (Classifier.schema c)) regions

let unmatched_region c =
  Region.diff
    (Region.full (Classifier.schema c))
    (Region.of_preds (Classifier.schema c)
       (List.map (fun (r : Rule.t) -> r.pred) (Classifier.rules c)))

let actions_of c =
  Classifier.rules c
  |> List.map (fun (r : Rule.t) -> r.action)
  |> List.sort_uniq Action.compare

let check_schemas a b =
  if not (Schema.equal (Classifier.schema a) (Classifier.schema b)) then
    invalid_arg "Equiv: schema mismatch"

(* The first region (as disjoint pieces) where the two classifiers
   disagree, or [] when equivalent. *)
let disagreement a b =
  check_schemas a b;
  let actions = List.sort_uniq Action.compare (actions_of a @ actions_of b) in
  let mismatches =
    List.concat_map
      (fun action ->
        let ra = decision_region a action and rb = decision_region b action in
        Region.preds (Region.diff ra rb) @ Region.preds (Region.diff rb ra))
      actions
  in
  let unmatched =
    let ua = unmatched_region a and ub = unmatched_region b in
    Region.preds (Region.diff ua ub) @ Region.preds (Region.diff ub ua)
  in
  mismatches @ unmatched

let equivalent a b = disagreement a b = []

let min_point pred =
  (* wildcard bits resolve to zero: the smallest header of the region *)
  Pred.random_point (fun _ -> 0) pred

let counterexample a b =
  match disagreement a b with [] -> None | piece :: _ -> Some (min_point piece)

let clip c region =
  let rules =
    List.filter_map
      (fun (r : Rule.t) -> Option.map (Rule.with_pred r) (Pred.inter r.pred region))
      (Classifier.rules c)
  in
  Classifier.create (Classifier.schema c) rules

let agree_on a b region =
  check_schemas a b;
  equivalent (clip a region) (clip b region)

(** Policy rules: priority + predicate + action.

    Higher [priority] wins; ties are broken by lower [id] (insertion
    order), matching how OpenFlow switches resolve equal-priority
    overlaps deterministically in practice. *)

type t = private { id : int; priority : int; pred : Pred.t; action : Action.t }

val make : id:int -> priority:int -> Pred.t -> Action.t -> t
val with_pred : t -> Pred.t -> t
val with_action : t -> Action.t -> t
val with_priority : t -> int -> t
val with_id : t -> int -> t

val matches : t -> Header.t -> bool

val beats : t -> t -> bool
(** [beats a b]: in a table containing both, [a] is consulted before [b]. *)

val overlaps : t -> t -> bool
(** Predicates intersect. *)

val shadows : t -> t -> bool
(** [shadows a b]: [a] beats [b] and [a]'s predicate subsumes [b]'s, so
    [b] can never fire while [a] is present. *)

val equal : t -> t -> bool
val compare_priority : t -> t -> int
(** Table order: descending priority, then ascending id. *)

val pp : Format.formatter -> t -> unit

type t =
  | Forward of int
  | Drop
  | Count_and_forward of int
  | To_authority of int
  | Redirect_controller

let equal a b =
  match (a, b) with
  | Forward x, Forward y | Count_and_forward x, Count_and_forward y -> x = y
  | To_authority x, To_authority y -> x = y
  | Drop, Drop | Redirect_controller, Redirect_controller -> true
  | (Forward _ | Drop | Count_and_forward _ | To_authority _ | Redirect_controller), _ ->
      false

let rank = function
  | Forward _ -> 0
  | Drop -> 1
  | Count_and_forward _ -> 2
  | To_authority _ -> 3
  | Redirect_controller -> 4

let compare a b =
  match (a, b) with
  | Forward x, Forward y
  | Count_and_forward x, Count_and_forward y
  | To_authority x, To_authority y ->
      Int.compare x y
  | _ -> Int.compare (rank a) (rank b)

let to_string = function
  | Forward p -> Printf.sprintf "fwd(%d)" p
  | Drop -> "drop"
  | Count_and_forward p -> Printf.sprintf "count,fwd(%d)" p
  | To_authority a -> Printf.sprintf "to_authority(%d)" a
  | Redirect_controller -> "to_controller"

let pp ppf t = Format.pp_print_string ppf (to_string t)

let is_infrastructure = function
  | To_authority _ | Redirect_controller -> true
  | Forward _ | Drop | Count_and_forward _ -> false

let egress = function
  | Forward p | Count_and_forward p -> Some p
  | Drop | To_authority _ | Redirect_controller -> None

(** Forwarding actions.

    The policy-level outcomes a rule can prescribe.  DIFANE additionally
    uses two infrastructure actions that never appear in user policies:
    tunnelling a cache miss to an authority switch, and the encapsulated
    forward an authority switch applies on behalf of an ingress switch. *)

type t =
  | Forward of int  (** deliver out of the network at egress switch [id] *)
  | Drop
  | Count_and_forward of int
      (** monitoring rule: bump a counter, then deliver at egress [id] *)
  | To_authority of int
      (** partition rule: tunnel to authority switch [id] (infrastructure) *)
  | Redirect_controller  (** reactive baselines: punt to the controller *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val is_infrastructure : t -> bool
(** True for [To_authority] and [Redirect_controller]: actions synthesised
    by DIFANE/baselines rather than written by the operator. *)

val egress : t -> int option
(** The egress switch the action delivers to, if it delivers. *)

lib/rule/action.mli: Format

lib/rule/optimize.mli: Classifier Format

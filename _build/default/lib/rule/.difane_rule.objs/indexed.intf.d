lib/rule/indexed.mli: Classifier Header Rule

lib/rule/classifier.mli: Action Format Header Region Rule Schema

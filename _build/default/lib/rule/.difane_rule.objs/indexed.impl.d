lib/rule/indexed.ml: Array Classifier Hashtbl Header Int Int64 List Option Pred Rule Ternary

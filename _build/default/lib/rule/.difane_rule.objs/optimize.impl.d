lib/rule/optimize.ml: Action Classifier Equiv Format Int64 List Pred Rule Ternary

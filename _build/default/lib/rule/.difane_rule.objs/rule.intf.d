lib/rule/rule.mli: Action Format Header Pred

lib/rule/policy_io.ml: Action Array Buffer Classifier Fun Int64 List Pred Printf Range Result Rule Schema String Ternary

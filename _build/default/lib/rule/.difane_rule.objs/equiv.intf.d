lib/rule/equiv.mli: Action Classifier Header Pred Region

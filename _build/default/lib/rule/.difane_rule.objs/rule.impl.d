lib/rule/rule.ml: Action Format Int Pred

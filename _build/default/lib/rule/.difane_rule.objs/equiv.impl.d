lib/rule/equiv.ml: Action Classifier List Option Pred Region Rule Schema

lib/rule/action.ml: Format Int Printf

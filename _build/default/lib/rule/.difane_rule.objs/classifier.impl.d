lib/rule/classifier.ml: Action Array Format Hashtbl Int List Option Pred Region Rule Schema

lib/rule/policy_io.mli: Classifier

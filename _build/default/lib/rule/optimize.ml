type report = {
  input_rules : int;
  output_rules : int;
  removed_redundant : int;
  merged_siblings : int;
}

let remove_redundant c =
  let dead = Classifier.dead_rules c in
  List.fold_left (fun acc (r : Rule.t) -> Classifier.remove acc r.id) c dead

(* Two predicates are siblings when they agree on every field except one,
   where their ternaries differ in exactly one specified bit; the merge
   wildcards that bit.  Their union is exactly the merged predicate, so
   replacing both by the merge adds no headers. *)
let sibling_merge p q =
  let n = Pred.arity p in
  let rec scan i found =
    if i >= n then found
    else
      let a = Pred.field p i and b = Pred.field q i in
      if Ternary.equal a b then scan (i + 1) found
      else
        match found with
        | Some _ -> None (* differ in two fields: not siblings *)
        | None ->
            if
              Ternary.mask a = Ternary.mask b
              && (let diff = Int64.logxor (Ternary.value a) (Ternary.value b) in
                  Int64.logand diff (Int64.sub diff 1L) = 0L && diff <> 0L)
              && Int64.logand (Ternary.mask a)
                   (Int64.logxor (Ternary.value a) (Ternary.value b))
                 = Int64.logxor (Ternary.value a) (Ternary.value b)
            then
              let bit = Int64.logxor (Ternary.value a) (Ternary.value b) in
              let merged =
                Ternary.make ~width:(Ternary.width a)
                  ~value:(Int64.logand (Ternary.value a) (Int64.lognot bit))
                  ~mask:(Int64.logand (Ternary.mask a) (Int64.lognot bit))
              in
              scan (i + 1) (Some (i, merged))
            else None
  in
  match scan 0 None with
  | Some (i, merged) -> Some (Pred.with_field p i merged)
  | None -> None

let merge_pass c =
  let rules = Classifier.rules c in
  let apply (r : Rule.t) (q : Rule.t) pred =
    let c' = Classifier.remove (Classifier.remove c r.id) q.id in
    Classifier.add c' (Rule.with_pred (Rule.with_id r (min r.id q.id)) pred)
  in
  (* find the first mergeable pair whose merge provably changes nothing:
     equal-priority ties resolve by rule id, so a merge can steal headers
     from a third same-priority rule sitting between the two — the
     region-scoped equivalence check rejects those *)
  let rec find = function
    | [] -> None
    | (r : Rule.t) :: rest -> (
        let candidate =
          List.find_map
            (fun (q : Rule.t) ->
              if q.priority = r.priority && Action.equal q.action r.action then
                match sibling_merge r.pred q.pred with
                | Some pred ->
                    let c' = apply r q pred in
                    if Equiv.agree_on c c' pred then Some c' else None
                | None -> None
              else None)
            rest
        in
        match candidate with Some c' -> Some c' | None -> find rest)
  in
  find rules

let merge_siblings c =
  let rec go c n =
    if n = 0 then c (* defensive bound: at most one merge per input rule *)
    else match merge_pass c with None -> c | Some c' -> go c' (n - 1)
  in
  go c (Classifier.length c)

let minimise c =
  let input_rules = Classifier.length c in
  let rec fixpoint c =
    let c' = merge_siblings (remove_redundant c) in
    if Classifier.length c' = Classifier.length c then c' else fixpoint c'
  in
  let out = fixpoint c in
  let after_redundant = Classifier.length (remove_redundant c) in
  {
    (* the split between the two mechanisms is approximate when they
       interact; the totals are exact *)
    input_rules;
    output_rules = Classifier.length out;
    removed_redundant = input_rules - after_redundant;
    merged_siblings = after_redundant - Classifier.length out;
  }
  |> fun report -> (out, report)

let pp_report ppf r =
  Format.fprintf ppf "%d -> %d rules (%d redundant removed, %d sibling merges)"
    r.input_rules r.output_rules r.removed_redundant r.merged_siblings

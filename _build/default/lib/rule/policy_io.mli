(** Policy files: a self-contained text format for classifiers.

    Lets operators author and version policies outside the code, and lets
    the CLI deploy them — the file embeds its schema, so a loaded policy
    can never be misinterpreted against the wrong header layout.

    {v
    # difane-policy v1
    # schema: src_ip/32,dst_ip/32
    # <priority> <field>=<ternary>[,<field>=<ternary>] <action>
    40  src_ip=00001010xxxxxxxxxxxxxxxxxxxxxxxx  drop
    10  *                                         fwd:3
    v}

    Field values accept the full {!Ternary.of_value_string} syntax:
    ternary bit strings ([0]/[1]/[x], ['_'] separators), IPv4 CIDR
    notation on 32-bit fields ([10.0.0.0/24]), bare decimal integers
    ([80]), and [*].  Omitted fields are wildcards; [*] alone is the
    match-anything predicate.  Actions: [drop], [fwd:N], [count_fwd:N].
    Rule ids are assigned in file order; equal priorities keep file order
    (first wins). *)

val to_string : Classifier.t -> string
(** @raise Invalid_argument if the classifier contains infrastructure
    actions (tunnel/controller), which have no place in a policy file. *)

val of_string : string -> (Classifier.t, string) result
(** Parse a policy, reconstructing the schema from the header.  Errors
    carry line numbers. *)

val save : string -> Classifier.t -> unit
val load : string -> (Classifier.t, string) result

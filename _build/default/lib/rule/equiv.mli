(** Exact semantic comparison of classifiers.

    Two classifiers are equivalent when every header receives the same
    action (including "no rule matches").  The check is exact — region
    algebra over the full flowspace, no sampling — which is what makes it
    usable as the oracle for DIFANE's correctness claims: the union of a
    deployment's partition tables must be equivalent to the original
    policy, shadow elimination must preserve equivalence, and so on.

    Cost grows with rule count and overlap structure (effective regions
    are computed by repeated subtraction); intended for policies up to a
    few hundred rules, i.e. tests and verification passes, not the data
    plane. *)

val decision_region : Classifier.t -> Action.t -> Region.t
(** All headers the classifier maps to exactly this action. *)

val unmatched_region : Classifier.t -> Region.t
(** Headers no rule matches. *)

val equivalent : Classifier.t -> Classifier.t -> bool
(** Same schema and same header→action function.
    @raise Invalid_argument on schema mismatch. *)

val counterexample : Classifier.t -> Classifier.t -> Header.t option
(** A witness header on which the two classifiers disagree; [None] iff
    {!equivalent}. *)

val agree_on : Classifier.t -> Classifier.t -> Pred.t -> bool
(** Equivalence restricted to one region of the flowspace — the per-
    partition correctness condition (a clipped authority table only has
    to agree with the policy inside its own region). *)

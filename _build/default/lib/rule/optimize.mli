(** Equivalence-preserving policy minimisation.

    DIFANE takes caching, not compression, as its answer to TCAM scarcity
    — but the two compose: fewer authority-table entries mean smaller
    partitions for free.  This module offers the safe subset of classic
    TCAM minimisation, every step exact (property-tested against
    {!Equiv}):

    - {b redundancy removal}: drop rules no header can ever reach
      (shadowed by one rule, or dead under a combination);
    - {b sibling merging}: two rules with the same priority and action
      whose predicates are the two halves of one wildcard bit collapse
      into one rule — exactly undoing range expansion's blow-up where
      the ranges were contiguous.

    Counter transparency caveat: merging rules pools their counters, the
    reason the paper refuses compression for {e cached} rules.  Use this
    on authored policies before deployment, not on live tables. *)

type report = {
  input_rules : int;
  output_rules : int;
  removed_redundant : int;
  merged_siblings : int;
}

val remove_redundant : Classifier.t -> Classifier.t
(** Drop every rule whose effective region is empty. *)

val merge_siblings : Classifier.t -> Classifier.t
(** Repeatedly merge same-priority, same-action sibling predicates until
    a fixed point.  Rule ids of merged rules are the lower of each
    pair. *)

val minimise : Classifier.t -> Classifier.t * report
(** [remove_redundant] then [merge_siblings] to a joint fixed point. *)

val pp_report : Format.formatter -> report -> unit

let version_line = "# difane-policy v1"

let schema_line schema =
  let fields =
    Schema.fields schema |> Array.to_list
    |> List.map (fun (f : Schema.field) -> Printf.sprintf "%s/%d" f.name f.bits)
  in
  "# schema: " ^ String.concat "," fields

let action_to_string = function
  | Action.Drop -> "drop"
  | Action.Forward p -> Printf.sprintf "fwd:%d" p
  | Action.Count_and_forward p -> Printf.sprintf "count_fwd:%d" p
  | Action.To_authority _ | Action.Redirect_controller ->
      invalid_arg "Policy_io: infrastructure action in a policy file"

(* Render a field in the friendliest shape that parses back identically:
   dotted CIDR for prefix-shaped 32-bit fields, decimal for exact values
   that don't collide with the binary interpretation, bits otherwise. *)
let field_to_string f =
  let w = Ternary.width f in
  if w = 32 then
    match Range.of_ternary f with
    | Some (lo, _) ->
        let len = Ternary.specified_bits f in
        let b i = Int64.to_int (Int64.logand (Int64.shift_right_logical lo i) 0xFFL) in
        if len = 32 then Printf.sprintf "%d.%d.%d.%d" (b 24) (b 16) (b 8) (b 0)
        else Printf.sprintf "%d.%d.%d.%d/%d" (b 24) (b 16) (b 8) (b 0) len
    | None -> Ternary.to_string f
  else if Ternary.is_exact f then
    let s = Int64.to_string (Ternary.value f) in
    (* decimal is only unambiguous when it cannot be read as a full-width
       bit string *)
    if String.length s <> w then s else Ternary.to_string f
  else Ternary.to_string f

let pred_to_string pred =
  if Pred.is_any pred then "*"
  else
    let schema = Pred.schema pred in
    List.init (Pred.arity pred) (fun i -> i)
    |> List.filter_map (fun i ->
           let f = Pred.field pred i in
           if Ternary.is_any f then None
           else Some (Printf.sprintf "%s=%s" (Schema.field_name schema i) (field_to_string f)))
    |> String.concat ","

let to_string c =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf version_line;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (schema_line (Classifier.schema c));
  Buffer.add_char buf '\n';
  List.iter
    (fun (r : Rule.t) ->
      Buffer.add_string buf
        (Printf.sprintf "%d %s %s\n" r.priority (pred_to_string r.pred)
           (action_to_string r.action)))
    (Classifier.rules c);
  Buffer.contents buf

let ( let* ) = Result.bind

let parse_schema line =
  match String.index_opt line ':' with
  | None -> Error "missing schema header"
  | Some i ->
      let spec = String.sub line (i + 1) (String.length line - i - 1) in
      let fields =
        String.split_on_char ',' spec
        |> List.map String.trim
        |> List.filter (fun s -> s <> "")
      in
      let* parsed =
        List.fold_left
          (fun acc f ->
            let* acc = acc in
            match String.split_on_char '/' f with
            | [ name; bits ] -> (
                match int_of_string_opt bits with
                | Some b when b >= 1 -> Ok ({ Schema.name; bits = b } :: acc)
                | _ -> Error (Printf.sprintf "bad field width in %S" f))
            | _ -> Error (Printf.sprintf "bad field spec %S" f))
          (Ok []) fields
      in
      (try Ok (Schema.create (List.rev parsed))
       with Invalid_argument e -> Error e)

let parse_action lineno s =
  let fail () = Error (Printf.sprintf "line %d: unknown action %S" lineno s) in
  match String.split_on_char ':' s with
  | [ "drop" ] -> Ok Action.Drop
  | [ "fwd"; p ] -> (
      match int_of_string_opt p with Some p -> Ok (Action.Forward p) | None -> fail ())
  | [ "count_fwd"; p ] -> (
      match int_of_string_opt p with
      | Some p -> Ok (Action.Count_and_forward p)
      | None -> fail ())
  | _ -> fail ()

let parse_pred schema lineno s =
  if s = "*" then Ok (Pred.any schema)
  else
    let* fields =
      List.fold_left
        (fun acc part ->
          let* acc = acc in
          match String.index_opt part '=' with
          | None -> Error (Printf.sprintf "line %d: bad field match %S" lineno part)
          | Some i ->
              let name = String.sub part 0 i in
              let tern = String.sub part (i + 1) (String.length part - i - 1) in
              let* w =
                try Ok (Schema.field_bits schema (Schema.index schema name))
                with Not_found -> Error (Printf.sprintf "line %d: unknown field %S" lineno name)
              in
              let* t =
                try Ok (Ternary.of_value_string ~width:w tern)
                with Invalid_argument e -> Error (Printf.sprintf "line %d: %s" lineno e)
              in
              Ok ((name, t) :: acc))
        (Ok [])
        (String.split_on_char ',' s)
    in
    try Ok (Pred.of_fields schema fields) with
    | Not_found -> Error (Printf.sprintf "line %d: unknown field name" lineno)
    | Invalid_argument e -> Error (Printf.sprintf "line %d: %s" lineno e)

(* Split on runs of spaces/tabs. *)
let tokens line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun s -> s <> "")

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let of_string text =
  match List.map strip_cr (String.split_on_char '\n' text) with
  | v :: s :: rest ->
      if String.trim v <> version_line then Error "not a difane-policy v1 file"
      else
        let* schema = parse_schema (String.trim s) in
        let rec go lineno next_id acc = function
          | [] -> Ok (Classifier.create schema (List.rev acc))
          | line :: rest -> (
              let t = String.trim line in
              if t = "" || t.[0] = '#' then go (lineno + 1) next_id acc rest
              else
                match tokens t with
                | [ prio; pred; action ] ->
                    let* priority =
                      match int_of_string_opt prio with
                      | Some p -> Ok p
                      | None -> Error (Printf.sprintf "line %d: bad priority %S" lineno prio)
                    in
                    let* pred = parse_pred schema lineno pred in
                    let* action = parse_action lineno action in
                    go (lineno + 1) (next_id + 1)
                      (Rule.make ~id:next_id ~priority pred action :: acc)
                      rest
                | _ -> Error (Printf.sprintf "line %d: expected <priority> <match> <action>" lineno))
        in
        go 3 0 [] rest
  | _ -> Error "not a difane-policy v1 file"

let save path c =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string c))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))

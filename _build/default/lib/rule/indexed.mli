(** Indexed classifiers: tuple-space-search lookup.

    A linear scan over a big rule table is fine for semantics but not for
    a hot data-plane path.  Tuple space search (Srinivasan et al.) groups
    rules by their {e mask vector} — which bits of which fields they
    specify — so that within a group a lookup is a single hash probe on
    the masked header.  A full lookup probes one hash table per distinct
    mask vector, visiting groups in decreasing best-priority order and
    stopping as soon as no remaining group can beat the current winner.

    Tuple space search only pays off when rules {e share} mask vectors
    (as in multi-length prefix tables with few distinct lengths, or
    microflow tables).  On rule sets where nearly every rule has a unique
    mask vector — e.g. ClassBench-style ACLs with random prefix lengths —
    it degenerates to one hash probe per rule and loses to a plain linear
    scan, so [of_classifier] detects that shape and falls back to the
    scan internally ({!degenerate}).

    Semantics are identical to {!Classifier.first_match} (property-tested
    against it); authority switches build one index per partition table. *)

type t

val of_classifier : Classifier.t -> t
val length : t -> int

val groups : t -> int
(** Number of distinct mask vectors — the probe count upper bound. *)

val degenerate : t -> bool
(** True when the index decided a linear scan is cheaper (too many
    distinct mask vectors for tuple search to win). *)

val first_match : t -> Header.t -> Rule.t option
(** Exactly {!Classifier.first_match} on the underlying table. *)

val classifier : t -> Classifier.t
(** The table this index was built from. *)

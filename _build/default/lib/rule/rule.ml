type t = { id : int; priority : int; pred : Pred.t; action : Action.t }

let make ~id ~priority pred action = { id; priority; pred; action }
let with_pred t pred = { t with pred }
let with_action t action = { t with action }
let with_priority t priority = { t with priority }
let with_id t id = { t with id }
let matches t h = Pred.matches t.pred h

let compare_priority a b =
  let c = Int.compare b.priority a.priority in
  if c <> 0 then c else Int.compare a.id b.id

let beats a b = compare_priority a b < 0
let overlaps a b = Pred.overlaps a.pred b.pred
let shadows a b = beats a b && Pred.subsumes a.pred b.pred

let equal a b =
  a.id = b.id && a.priority = b.priority && Pred.equal a.pred b.pred
  && Action.equal a.action b.action

let pp ppf t =
  Format.fprintf ppf "@[<h>#%d p%d %a -> %a@]" t.id t.priority Pred.pp t.pred
    Action.pp t.action

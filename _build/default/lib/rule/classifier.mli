(** Classifiers: prioritised rule tables with linear-scan semantics.

    A classifier is the canonical, centralised form of a network policy:
    the highest-priority matching rule decides each packet.  DIFANE's
    correctness criterion is that the distributed deployment forwards
    every packet exactly as the original classifier would, and the
    analyses here (first-match, effective regions, overlap structure,
    dependency depth) are what the partitioner, the cache-splicing
    algorithm and the test suite are built on. *)

type t

(** {1 Construction} *)

val create : Schema.t -> Rule.t list -> t
(** Rules are sorted into table order ({!Rule.compare_priority}).
    @raise Invalid_argument if any rule's predicate has a different
    schema, or if two rules share an id. *)

val of_specs : Schema.t -> (int * (string * string) list * Action.t) list -> t
(** [(priority, named ternary strings, action)] triples; ids are assigned
    in list order.  Convenience for tests and examples. *)

val schema : t -> Schema.t
val rules : t -> Rule.t list
(** In table order (highest priority first). *)

val length : t -> int
val find : t -> int -> Rule.t option
(** Rule by id. *)

val add : t -> Rule.t -> t
val remove : t -> int -> t
(** Remove by id; unchanged if absent. *)

(** {1 Semantics} *)

val first_match : t -> Header.t -> Rule.t option
(** The rule that decides this header, if any. *)

val action : t -> Header.t -> Action.t option

val default_deny : t -> t
(** Append a lowest-priority drop-everything rule if no rule already
    matches everything, making the classifier total. *)

val is_total : t -> bool
(** Every header matches some rule.  Decided exactly via region algebra. *)

(** {1 Analyses} *)

val effective_region : t -> Rule.t -> Region.t
(** The set of headers this rule actually decides: its predicate minus all
    rules that beat it and overlap it.  Empty iff the rule is dead. *)

val shadowed : t -> Rule.t list
(** Rules shadowed by a {e single} earlier rule (cheap syntactic check). *)

val dead_rules : t -> Rule.t list
(** Rules whose effective region is empty — includes rules killed only by
    a {e combination} of earlier rules.  Exact but costlier. *)

val remove_shadowed : t -> t

val direct_dependencies : t -> Rule.t -> Rule.t list
(** Rules that beat [r], overlap it, and whose overlap is not already
    fully hidden by an even-earlier overlapping rule — the edges of the
    CacheFlow-style dependency graph, restricted to direct ancestors.
    These are exactly the rules whose absence from a cache would corrupt
    [r]'s semantics. *)

val dependency_depth : t -> int
(** Length of the longest direct-dependency chain in the table (1 = all
    rules independent).  The "depth" statistic of evaluation Table 1.
    Exact; cost grows with the overlap structure — see {!overlap_depth}
    for an upper bound that stays cheap on very large tables. *)

val overlap_depth : t -> int
(** Longest chain in the plain overlap DAG (edges: earlier rule overlaps
    later rule), an upper bound on {!dependency_depth} computable with
    O(n²) cheap intersection tests and no subtraction. *)

val overlap_count : t -> int
(** Number of ordered pairs (a beats b, a overlaps b). *)

val pp : Format.formatter -> t -> unit

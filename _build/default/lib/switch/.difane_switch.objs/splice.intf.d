lib/switch/splice.mli: Classifier Header Pred Rule

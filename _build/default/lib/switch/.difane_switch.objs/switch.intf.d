lib/switch/switch.mli: Action Format Header Message Partitioner Rule Tcam

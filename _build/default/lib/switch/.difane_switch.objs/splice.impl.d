lib/switch/splice.ml: Classifier Hashtbl List Pred Rule

lib/switch/switch.ml: Action Classifier Format Hashtbl Header Indexed Int Int64 List Message Option Partitioner Pred Rule Schema Splice Tcam Ternary

type piece = { origin : Rule.t; pred : Pred.t }

(* Clip the winner's predicate against each higher-priority overlap,
   keeping only the disjoint fragment containing the packet.  One
   hyper-rectangle survives each step, so the walk is linear in the
   blocker count — materialising the full disjoint cover (which can
   fragment combinatorially) is never needed.  Pieces spliced from
   different headers of the same rule may overlap each other, which is
   harmless: they carry the same action.  Pieces of different rules are
   always disjoint (each excludes the other's whole predicate). *)
let for_header table h =
  match Classifier.first_match table h with
  | None -> None
  | Some origin ->
      let blockers =
        Classifier.rules table
        |> List.filter (fun r -> Rule.beats r origin && Rule.overlaps r origin)
        |> List.map (fun (r : Rule.t) -> r.pred)
      in
      let pred =
        List.fold_left
          (fun piece b ->
            if Pred.overlaps piece b then Pred.clip_to_holder piece h b else piece)
          origin.Rule.pred blockers
      in
      Some { origin; pred }

let cache_priority = 0 (* pieces are disjoint; any constant works *)

let cache_rule ~next_id piece =
  Rule.make ~id:(next_id ()) ~priority:cache_priority piece.pred piece.origin.Rule.action

let pieces_of_rule table (r : Rule.t) =
  let blockers =
    Classifier.rules table
    |> List.filter (fun r' -> Rule.beats r' r && Rule.overlaps r' r)
    |> List.map (fun (r' : Rule.t) -> r'.pred)
  in
  Pred.subtract_all r.pred blockers

let dependent_set_cost table r =
  (* Transitive closure over direct-dependency edges. *)
  let seen = Hashtbl.create 16 in
  let rec visit (r : Rule.t) =
    if not (Hashtbl.mem seen r.id) then begin
      Hashtbl.add seen r.id ();
      List.iter visit (Classifier.direct_dependencies table r)
    end
  in
  visit r;
  Hashtbl.length seen

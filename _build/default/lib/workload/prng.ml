type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = mix (int64 t) }
let copy t = { state = t.state }

let bits t n =
  if n < 0 || n > 30 then invalid_arg "Prng.bits: n must be in 0..30";
  if n = 0 then 0
  else Int64.to_int (Int64.shift_right_logical (int64 t) (64 - n))

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: nonpositive bound";
  (* rejection-free for our purposes: 63-bit modulo bias is negligible at
     the bounds used (< 2^32), but rejection keeps it exact. *)
  let rec go () =
    let v = Int64.to_int (Int64.shift_right_logical (int64 t) 1) in
    let r = v mod bound in
    if v - r + (bound - 1) >= 0 then r else go ()
  in
  go ()

let int64_bound t bound =
  if Int64.compare bound 0L <= 0 then invalid_arg "Prng.int64_bound: nonpositive bound";
  let rec go () =
    let v = Int64.shift_right_logical (int64 t) 1 in
    let r = Int64.rem v bound in
    if Int64.compare (Int64.add (Int64.sub v r) (Int64.sub bound 1L)) 0L >= 0 then r else go ()
  in
  go ()

let float t =
  Int64.to_float (Int64.shift_right_logical (int64 t) 11) *. 0x1.0p-53

let bool t = Int64.logand (int64 t) 1L = 1L

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Prng.exponential: nonpositive rate";
  let u = 1. -. float t in
  -.Float.log u /. rate

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Prng.choose: empty array";
  arr.(int t (Array.length arr))

let sample_without_replacement t k arr =
  if k > Array.length arr then invalid_arg "Prng.sample_without_replacement: k too large";
  let copy = Array.copy arr in
  shuffle t copy;
  Array.to_list (Array.sub copy 0 k)

type flow = {
  flow_id : int;
  header : Header.t;
  ingress : int;
  start : float;
  packets : int;
  interval : float;
}

type profile = {
  flows : int;
  rate : float;
  alpha : float;
  distinct_headers : int;
  packets_per_flow_mean : float;
  packet_interval : float;
  ingresses : int list;
  burstiness : float;
}

let default =
  {
    flows = 10_000;
    rate = 10_000.;
    alpha = 1.0;
    distinct_headers = 1_000;
    packets_per_flow_mean = 1.0;
    packet_interval = 1e-4;
    ingresses = [ 0 ];
    burstiness = 1.0;
  }

let headers_for rng classifier n =
  let rules = Array.of_list (Classifier.rules classifier) in
  let nrules = Array.length rules in
  if nrules = 0 then invalid_arg "Traffic.headers_for: empty classifier";
  let rand_bits k = Prng.bits rng k in
  Array.init n (fun i ->
      let r = rules.(i mod nrules) in
      (* Prefer a point the rule actually decides; a few rejection tries,
         then accept whatever point of the predicate we got (it is still a
         valid header, just charged to an earlier rule). *)
      let rec try_point k =
        let h = Pred.random_point rand_bits r.Rule.pred in
        if k = 0 then h
        else
          match Classifier.first_match classifier h with
          | Some w when w.Rule.id = r.Rule.id -> h
          | _ -> try_point (k - 1)
      in
      try_point 4)

let geometric rng mean =
  if mean <= 1.0 then 1
  else
    (* geometric with success prob 1/mean, support >= 1 *)
    let p = 1. /. mean in
    let u = Prng.float rng in
    1 + int_of_float (Float.log1p (-.u) /. Float.log1p (-.p))

let generate rng classifier profile =
  if profile.flows < 0 then invalid_arg "Traffic.generate: negative flow count";
  let headers = headers_for rng classifier profile.distinct_headers in
  let zipf = Zipf.create ~n:profile.distinct_headers ~alpha:profile.alpha in
  (* Popularity rank -> header index: shuffle so rank order is not
     correlated with rule priority order. *)
  let rank_to_header = Array.init profile.distinct_headers (fun i -> i) in
  Prng.shuffle rng rank_to_header;
  let ingresses = Array.of_list profile.ingresses in
  if Array.length ingresses = 0 then invalid_arg "Traffic.generate: no ingresses";
  if profile.burstiness < 1.0 then invalid_arg "Traffic.generate: burstiness must be >= 1";
  (* Two-state Markov-modulated Poisson arrivals: the on state runs
     [burstiness]x the average rate, the off state slows down so the
     long-run average stays [rate]; both states last ~50 flows. *)
  let on = ref true in
  let until_toggle = ref 50 in
  let current_rate () =
    if profile.burstiness <= 1.0 then profile.rate
    else begin
      decr until_toggle;
      if !until_toggle <= 0 then begin
        on := not !on;
        until_toggle := 50
      end;
      if !on then profile.rate *. profile.burstiness
      else
        (* chosen so that equal time in both states averages to [rate] *)
        profile.rate *. profile.burstiness
        /. ((2. *. profile.burstiness) -. 1.)
    end
  in
  let now = ref 0. in
  List.init profile.flows (fun flow_id ->
      now := !now +. Prng.exponential rng ~rate:(current_rate ());
      let rank = Zipf.draw zipf rng in
      let header = headers.(rank_to_header.(rank - 1)) in
      {
        flow_id;
        header;
        ingress = Prng.choose rng ingresses;
        start = !now;
        packets = geometric rng profile.packets_per_flow_mean;
        interval = profile.packet_interval;
      })

let offered_headers flows =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let key = f.header in
      let prev = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (prev + f.packets))
    flows;
  Hashtbl.fold (fun h c acc -> (h, c) :: acc) tbl []

let version_line = "# difane-trace v1"

let schema_line schema =
  let fields =
    Schema.fields schema |> Array.to_list
    |> List.map (fun (f : Schema.field) -> Printf.sprintf "%s/%d" f.name f.bits)
  in
  "# schema: " ^ String.concat "," fields

let to_string schema flows =
  let buf = Buffer.create (64 * (List.length flows + 2)) in
  Buffer.add_string buf version_line;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (schema_line schema);
  Buffer.add_char buf '\n';
  List.iter
    (fun (f : Traffic.flow) ->
      Buffer.add_string buf
        (Printf.sprintf "%d %d %.9f %d %.9f" f.flow_id f.ingress f.start f.packets
           f.interval);
      Array.iter
        (fun v ->
          Buffer.add_char buf ' ';
          Buffer.add_string buf (Int64.to_string v))
        (Header.values f.header);
      Buffer.add_char buf '\n')
    flows;
  Buffer.contents buf

let ( let* ) = Result.bind

let parse_line schema lineno line =
  match String.split_on_char ' ' (String.trim line) with
  | flow_id :: ingress :: start :: packets :: interval :: fields ->
      let fail what = Error (Printf.sprintf "line %d: bad %s" lineno what) in
      let int s what = match int_of_string_opt s with Some v -> Ok v | None -> fail what in
      let flt s what = match float_of_string_opt s with Some v -> Ok v | None -> fail what in
      let* flow_id = int flow_id "flow id" in
      let* ingress = int ingress "ingress" in
      let* start = flt start "start time" in
      let* packets = int packets "packet count" in
      let* interval = flt interval "interval" in
      if List.length fields <> Schema.arity schema then fail "field count"
      else
        let* values =
          List.fold_left
            (fun acc s ->
              let* acc = acc in
              match Int64.of_string_opt s with
              | Some v -> Ok (v :: acc)
              | None -> fail "field value")
            (Ok []) fields
        in
        let header = Header.make schema (Array.of_list (List.rev values)) in
        Ok { Traffic.flow_id; ingress; start; packets; interval; header }
  | _ -> Error (Printf.sprintf "line %d: truncated record" lineno)

let strip_cr s =
  let n = String.length s in
  if n > 0 && s.[n - 1] = '\r' then String.sub s 0 (n - 1) else s

let of_string schema text =
  let lines = List.map strip_cr (String.split_on_char '\n' text) in
  match lines with
  | v :: s :: rest ->
      if String.trim v <> version_line then Error "not a difane-trace v1 file"
      else if String.trim s <> schema_line schema then
        Error
          (Printf.sprintf "schema mismatch: trace has %S, expected %S" (String.trim s)
             (schema_line schema))
      else
        let rec go lineno acc = function
          | [] -> Ok (List.rev acc)
          | line :: rest ->
              let t = String.trim line in
              if t = "" || String.length t > 0 && t.[0] = '#' then go (lineno + 1) acc rest
              else
                let* flow = parse_line schema lineno line in
                go (lineno + 1) (flow :: acc) rest
        in
        go 3 [] rest
  | _ -> Error "not a difane-trace v1 file"

let save path schema flows =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string schema flows))

let load path schema =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      of_string schema text)

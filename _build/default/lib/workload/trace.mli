(** Flow-trace serialisation.

    A plain-text, line-oriented format for flow workloads so experiments
    can replay the {e same} trace across runs, configurations, and
    systems — the role the paper's two-day IXP packet trace plays in its
    cache experiments.  The format embeds the schema, so loading against
    a different header layout fails loudly rather than misparsing.

    Format (one record per line, [#] comments ignored):
    {v
    # difane-trace v1
    # schema: src_ip/32,dst_ip/32
    <flow_id> <ingress> <start> <packets> <interval> <field0> <field1> ...
    v} *)

val to_string : Schema.t -> Traffic.flow list -> string

val of_string : Schema.t -> string -> (Traffic.flow list, string) result
(** Errors on version/schema mismatch, truncated records, or unparsable
    fields, with a line number in the message. *)

val save : string -> Schema.t -> Traffic.flow list -> unit
(** Write to a file.  @raise Sys_error on I/O failure. *)

val load : string -> Schema.t -> (Traffic.flow list, string) result

(** Deterministic pseudo-random numbers (splitmix64).

    Every generator in the repository takes an explicit [Prng.t] so that
    each experiment is a pure function of its seed — a requirement for
    reproducing the paper's figures run-over-run. *)

type t

val create : int -> t
(** Seeded stream; equal seeds give equal streams. *)

val split : t -> t
(** Derive an independent stream (advances the parent). *)

val copy : t -> t

val int64 : t -> int64
(** Next raw 64-bit value. *)

val bits : t -> int -> int
(** [bits t n] is [n] uniform bits, [0 <= n <= 30]. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0..bound-1].  @raise Invalid_argument if
    [bound <= 0]. *)

val int64_bound : t -> int64 -> int64
(** Uniform in [0..bound-1] for any positive 63-bit bound. *)

val float : t -> float
(** Uniform in [0,1). *)

val bool : t -> bool
val exponential : t -> rate:float -> float
(** Exponentially distributed with the given rate (mean [1/rate]). *)

val shuffle : t -> 'a array -> unit
val choose : t -> 'a array -> 'a
(** @raise Invalid_argument on an empty array. *)

val sample_without_replacement : t -> int -> 'a array -> 'a list
(** [sample_without_replacement t k arr]: [k] distinct elements.
    @raise Invalid_argument if [k > Array.length arr]. *)

(** Zipf-distributed sampling.

    Internet flow popularity is famously Zipfian — a handful of rules see
    most of the traffic — which is the property that makes DIFANE's (and
    any) rule caching effective.  The sampler draws rank [k] (1-based)
    with probability proportional to [1 / k^alpha]. *)

type t

val create : n:int -> alpha:float -> t
(** Support [1..n]; [alpha >= 0] ([alpha = 0] is uniform).
    @raise Invalid_argument otherwise.  O(n) setup, O(log n) draws. *)

val n : t -> int
val alpha : t -> float

val draw : t -> Prng.t -> int
(** A rank in [1..n]. *)

val pmf : t -> int -> float
(** Probability of rank [k].  @raise Invalid_argument outside [1..n]. *)

val cdf : t -> int -> float
(** Cumulative probability of ranks [1..k]. *)

val head_mass : t -> float -> int
(** [head_mass t q] is the smallest [k] with [cdf t k >= q]: how many top
    ranks soak up fraction [q] of the traffic. *)

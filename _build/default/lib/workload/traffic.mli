(** Traffic generation: Zipf-popular flows against a policy.

    A {e flow} is a sequence of identically-headed packets entering the
    network at one ingress switch.  Popularity across flows follows a
    Zipf law over the policy's rules (the empirical property caching
    relies on); arrivals are Poisson. *)

type flow = {
  flow_id : int;
  header : Header.t;
  ingress : int;  (** ingress switch node id *)
  start : float;  (** arrival time of the first packet, seconds *)
  packets : int;  (** total packets in the flow *)
  interval : float;  (** gap between consecutive packets of the flow *)
}

type profile = {
  flows : int;
  rate : float;  (** aggregate flow arrival rate, flows/second *)
  alpha : float;  (** Zipf skew over distinct flow headers *)
  distinct_headers : int;  (** size of the flow-header population *)
  packets_per_flow_mean : float;
      (** geometric mean; 1.0 gives the paper's single-packet worst case *)
  packet_interval : float;
  ingresses : int list;  (** ingress switches, sampled uniformly *)
  burstiness : float;
      (** arrival burstiness: 1.0 = Poisson; larger values use a two-state
          on/off modulation where the "on" state arrives [burstiness]
          times faster than average — cache-churn-heavy traffic *)
}

val default : profile

val headers_for : Prng.t -> Classifier.t -> int -> Header.t array
(** A population of [n] distinct concrete headers biased to exercise the
    classifier's rules roughly uniformly: header [i] is sampled from rule
    [i mod rules]'s predicate (rejection-corrected so that dead regions
    don't dominate). *)

val generate : Prng.t -> Classifier.t -> profile -> flow list
(** Flows sorted by [start] time.  Header popularity is Zipf([alpha]) over
    the header population. *)

val offered_headers : flow list -> (Header.t * int) list
(** Distinct headers with their total packet counts — the oracle weights
    used by cache-placement experiments. *)

type acl_profile = {
  rules : int;
  chain_depth : int;
  chains : int;
  port_exact_fraction : float;
  port_range_fraction : float;
  egresses : int;
}

let default_acl =
  {
    rules = 1000;
    chain_depth = 5;
    chains = 40;
    port_exact_fraction = 0.3;
    port_range_fraction = 0.05;
    egresses = 4;
  }

let random_ternary rng ~width ~min_len ~max_len =
  let len = min_len + Prng.int rng (max_len - min_len + 1) in
  let v = Prng.int64_bound rng (Int64.shift_left 1L (width - 1)) in
  Ternary.prefix ~width (Int64.shift_left v 1) len

(* Extend a prefix by [extra] bits, choosing the new bits at random; the
   result is strictly more specific, creating a dependency edge. *)
let deepen rng t extra =
  let w = Ternary.width t in
  let cur = Ternary.specified_bits t in
  let extra = min extra (w - cur) in
  let rec go t k =
    if k = 0 then t
    else
      match Ternary.first_wildcard_msb t with
      | None -> t
      | Some j ->
          let lo, hi = Option.get (Ternary.split t j) in
          go (if Prng.bool rng then lo else hi) (k - 1)
  in
  go t extra

let random_egress rng egresses = Action.Forward (Prng.int rng (max 1 egresses))

let acl rng profile =
  let schema = Schema.acl_5tuple in
  let src = Schema.index schema "src_ip"
  and dst = Schema.index schema "dst_ip"
  and dport = Schema.index schema "dst_port"
  and proto = Schema.index schema "proto" in
  let next_id = ref 0 in
  let fresh_id () =
    let i = !next_id in
    incr next_id;
    i
  in
  let out = ref [] in
  let emit priority pred action =
    out := Rule.make ~id:(fresh_id ()) ~priority pred action :: !out
  in
  let budget = ref (max 1 (profile.rules - 1)) in
  let alternate_action rng level =
    if level mod 2 = 0 then Action.Drop else random_egress rng profile.egresses
  in
  (* Port condition for one rule: possibly exact, possibly a TCAM-expanded
     range (which consumes several budget units), else wildcard. *)
  let port_terns rng =
    let u = Prng.float rng in
    if u < profile.port_range_fraction then begin
      let lo = Prng.int rng 1024 and span = 1 + Prng.int rng 2000 in
      let lo = Int64.of_int lo in
      let hi = Int64.add lo (Int64.of_int span) in
      Range.to_prefixes ~width:16 lo hi
    end
    else if u < profile.port_range_fraction +. profile.port_exact_fraction then
      [ Ternary.exact ~width:16 (Int64.of_int (Prng.int rng 65536)) ]
    else [ Ternary.any 16 ]
  in
  (* One dependency chain: a stack of progressively more specific rules
     with alternating actions, the DIFANE-hostile structure. *)
  let build_chain () =
    let base_src = random_ternary rng ~width:32 ~min_len:8 ~max_len:12 in
    let base_dst = random_ternary rng ~width:32 ~min_len:8 ~max_len:12 in
    let depth = 1 + Prng.int rng profile.chain_depth in
    let rec level k src_t dst_t =
      if k >= depth || !budget <= 0 then ()
      else begin
        let priority = 10 + (k * 10) in
        let ports = port_terns rng in
        List.iter
          (fun pt ->
            if !budget > 0 then begin
              decr budget;
              let pred =
                Pred.any schema
                |> (fun p -> Pred.with_field p src src_t)
                |> (fun p -> Pred.with_field p dst dst_t)
                |> (fun p -> Pred.with_field p dport pt)
                |> fun p ->
                if Prng.float rng < 0.5 then
                  Pred.with_field p proto (Ternary.exact ~width:8 (if Prng.bool rng then 6L else 17L))
                else p
              in
              emit priority pred (alternate_action rng k)
            end)
          ports;
        level (k + 1) (deepen rng src_t (2 + Prng.int rng 3)) (deepen rng dst_t (2 + Prng.int rng 3))
      end
    in
    level 0 base_src base_dst
  in
  for _ = 1 to profile.chains do
    if !budget > 0 then build_chain ()
  done;
  (* Fill the remaining budget with independent exact-ish rules. *)
  while !budget > 0 do
    decr budget;
    let pred =
      Pred.any schema
      |> (fun p -> Pred.with_field p src (random_ternary rng ~width:32 ~min_len:16 ~max_len:28))
      |> (fun p -> Pred.with_field p dst (random_ternary rng ~width:32 ~min_len:16 ~max_len:28))
    in
    emit 5 pred (alternate_action rng (Prng.int rng 2))
  done;
  emit 0 (Pred.any schema) Action.Drop;
  Classifier.create schema !out

type prefix_profile = {
  prefixes : int;
  egresses : int;
  length_weights : (int * float) list;
}

let default_prefixes =
  {
    prefixes = 5000;
    egresses = 8;
    length_weights =
      [ (8, 0.02); (12, 0.05); (16, 0.18); (20, 0.2); (24, 0.45); (28, 0.08); (32, 0.02) ];
  }

let pick_weighted rng weights =
  let total = List.fold_left (fun acc (_, w) -> acc +. w) 0. weights in
  let target = Prng.float rng *. total in
  let rec go acc = function
    | [] -> fst (List.hd weights)
    | (v, w) :: rest -> if acc +. w >= target then v else go (acc +. w) rest
  in
  go 0. weights

let prefix_table rng profile =
  let schema = Schema.ip_pair in
  let dst = Schema.index schema "dst_ip" in
  let seen = Hashtbl.create profile.prefixes in
  let out = ref [] in
  let next_id = ref 0 in
  let n = ref 0 in
  while !n < profile.prefixes do
    let len = pick_weighted rng profile.length_weights in
    let v =
      if len = 0 then 0L
      else Int64.shift_left (Prng.int64_bound rng (Int64.shift_left 1L len)) (32 - len)
    in
    let key = (v, len) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      incr n;
      let pred = Pred.with_field (Pred.any schema) dst (Ternary.prefix ~width:32 v len) in
      let id = !next_id in
      incr next_id;
      (* LPM: longer prefixes win, encoded directly as priority. *)
      out := Rule.make ~id ~priority:len pred (Action.Forward (Prng.int rng profile.egresses)) :: !out
    end
  done;
  let id = !next_id in
  out := Rule.make ~id ~priority:(-1) (Pred.any schema) (Action.Forward 0) :: !out;
  Classifier.create schema !out

type named = { label : string; classifier : Classifier.t; description : string }

let evaluation_sets ~seed =
  let rng = Prng.create seed in
  let mk label description classifier = { label; classifier; description } in
  [
    mk "acl-small"
      "campus-edge ACL stand-in: 400 rules, shallow chains"
      (acl (Prng.split rng)
         { default_acl with rules = 400; chains = 25; chain_depth = 3 });
    mk "acl-medium"
      "campus-core ACL stand-in: 2000 rules, depth-6 chains"
      (acl (Prng.split rng)
         { default_acl with rules = 2000; chains = 70; chain_depth = 6 });
    mk "acl-deep"
      "ClassBench-style ACL: 4000 rules, depth-10 chains"
      (acl (Prng.split rng)
         { default_acl with rules = 4000; chains = 100; chain_depth = 10 });
    mk "prefix-5k"
      "ISP VPN stand-in: 5000 destination prefixes"
      (prefix_table (Prng.split rng) default_prefixes);
    mk "prefix-20k"
      "backbone routing stand-in: 20000 destination prefixes"
      (prefix_table (Prng.split rng) { default_prefixes with prefixes = 20000 });
  ]

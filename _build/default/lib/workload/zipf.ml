type t = { n : int; alpha : float; cum : float array (* cum.(k-1) = cdf k *) }

let create ~n ~alpha =
  if n < 1 then invalid_arg "Zipf.create: n must be positive";
  if alpha < 0. then invalid_arg "Zipf.create: alpha must be >= 0";
  let cum = Array.make n 0. in
  let total = ref 0. in
  for k = 1 to n do
    total := !total +. (1. /. Float.pow (float_of_int k) alpha);
    cum.(k - 1) <- !total
  done;
  for k = 0 to n - 1 do
    cum.(k) <- cum.(k) /. !total
  done;
  cum.(n - 1) <- 1.0;
  { n; alpha; cum }

let n t = t.n
let alpha t = t.alpha

let search t target =
  (* least index with cum >= target *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cum.(mid) >= target then hi := mid else lo := mid + 1
  done;
  !lo + 1

let draw t rng = search t (Prng.float rng)

let pmf t k =
  if k < 1 || k > t.n then invalid_arg "Zipf.pmf: rank out of range";
  if k = 1 then t.cum.(0) else t.cum.(k - 1) -. t.cum.(k - 2)

let cdf t k =
  if k < 1 || k > t.n then invalid_arg "Zipf.cdf: rank out of range";
  t.cum.(k - 1)

let head_mass t q = search t q

lib/workload/policy_gen.ml: Action Classifier Hashtbl Int64 List Option Pred Prng Range Rule Schema Ternary

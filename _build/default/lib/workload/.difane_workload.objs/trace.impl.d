lib/workload/trace.ml: Array Buffer Fun Header Int64 List Printf Result Schema String Traffic

lib/workload/zipf.ml: Array Float Prng

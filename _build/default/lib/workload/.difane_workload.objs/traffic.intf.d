lib/workload/traffic.mli: Classifier Header Prng

lib/workload/traffic.ml: Array Classifier Float Hashtbl Header List Option Pred Prng Rule Zipf

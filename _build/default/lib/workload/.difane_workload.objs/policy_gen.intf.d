lib/workload/policy_gen.mli: Classifier Prng

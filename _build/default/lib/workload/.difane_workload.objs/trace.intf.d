lib/workload/trace.mli: Schema Traffic

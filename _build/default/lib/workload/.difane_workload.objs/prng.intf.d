lib/workload/prng.mli:

(** Synthetic policy generators.

    Stand-ins for the proprietary rule sets of the paper's evaluation
    (campus-network ACLs, ISP VPN/routing tables).  Both generators expose
    the structural knobs the DIFANE results depend on: rule count, overlap
    structure, and dependency-chain depth.  See DESIGN.md §2 for the
    substitution argument. *)

(** {1 ClassBench-style ACLs} *)

type acl_profile = {
  rules : int;  (** total rule budget (including the default rule) *)
  chain_depth : int;  (** target length of priority-dependency chains *)
  chains : int;  (** number of distinct dependency chains *)
  port_exact_fraction : float;  (** rules with an exact dst-port condition *)
  port_range_fraction : float;
      (** rules with a dst-port {e range} condition, TCAM-expanded into
          multiple entries (the classic range blow-up) *)
  egresses : int;  (** forwarding actions are spread over this many egress ids *)
}

val default_acl : acl_profile
(** 1000 rules, depth 5, 40 chains, 30% exact ports, 5% ranges, 4 egresses. *)

val acl : Prng.t -> acl_profile -> Classifier.t
(** Five-tuple ACL over {!Schema.acl_5tuple}, closed with a default-deny
    rule.  Rule count is [rules] up to range-expansion rounding. *)

(** {1 Prefix routing tables} *)

type prefix_profile = {
  prefixes : int;
  egresses : int;
  length_weights : (int * float) list;
      (** prefix-length histogram, e.g. [(16, 0.1); (24, 0.6); ...] *)
}

val default_prefixes : prefix_profile
(** 5000 prefixes with a backbone-like length mix peaking at /24 and /16. *)

val prefix_table : Prng.t -> prefix_profile -> Classifier.t
(** Destination-IP longest-prefix-match table over {!Schema.ip_pair},
    encoded with priority = prefix length, closed with a default route. *)

(** {1 Named rule sets (evaluation Table 1)} *)

type named = {
  label : string;
  classifier : Classifier.t;
  description : string;
}

val evaluation_sets : seed:int -> named list
(** The rule sets used throughout the evaluation: three ACLs of increasing
    size/depth standing in for campus networks, and two prefix tables
    standing in for ISP VPNs. *)

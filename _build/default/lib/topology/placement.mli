(** Authority-switch placement.

    Where to put the [k] authority switches decides the stretch every
    cache-miss packet pays.  This module offers the strategies compared
    by the stretch experiment plus a greedy k-median optimiser: minimise
    the mean distance from every node to its nearest authority — the
    classic facility-location relaxation of DIFANE's placement problem
    (each miss travels ingress → authority, and with volume-balanced
    partitions any authority is equally likely). *)

val random : rand:(unit -> float) -> Topology.t -> k:int -> int list
(** [k] distinct nodes, uniformly. *)

val by_degree : Topology.t -> k:int -> int list
(** The [k] highest-degree nodes. *)

val centroid : Topology.t -> k:int -> int list
(** The [k] nodes with the smallest mean distance to all nodes
    (independently — no interaction between picks). *)

val k_median : Topology.t -> k:int -> int list
(** Greedy k-median: repeatedly add the node that most reduces the total
    distance from every node to its nearest chosen authority.  Strictly
    better than {!centroid} when coverage matters (centroid's picks
    cluster; k-median's spread out). *)

val mean_nearest_distance : Topology.t -> int list -> float
(** The objective: average over all nodes of the latency to the closest
    listed authority.  @raise Invalid_argument on an empty list. *)

(** Link-state routing: the underlay DIFANE rides on.

    DIFANE does not invent routing — partition rules tunnel miss packets
    to authority switches {e over the network's ordinary shortest-path
    forwarding} (the paper assumes a link-state IGP).  This module is
    that IGP's product: per-switch next-hop tables computed from the full
    topology, recomputable after link or node failures.

    Next hops are deterministic (lowest-latency path, ties broken towards
    the lower node id) so a hop-by-hop walk is reproducible and loop-free. *)

type t

val compute : Topology.t -> t
(** All-pairs next-hop tables (n single-source Dijkstra runs). *)

val topology : t -> Topology.t

val next_hop : t -> from:int -> dst:int -> int option
(** The neighbour [from] forwards to for destination [dst]; [None] when
    [dst] is unreachable; [Some from]... never — [from = dst] yields
    [None] (already there). *)

val path : t -> from:int -> dst:int -> int list option
(** The hop-by-hop path the tables produce, endpoints included.  Agrees
    with {!Topology.shortest_path} in latency. *)

val distance : t -> from:int -> dst:int -> float option
(** Latency along {!path}. *)

val reachable : t -> from:int -> dst:int -> bool

val after_link_failure : t -> int -> int -> t
(** Recomputed tables with one link down (the IGP reconverging). *)

val after_node_failure : t -> int -> t

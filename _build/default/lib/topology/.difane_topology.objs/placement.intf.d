lib/topology/placement.mli: Topology

lib/topology/topology.ml: Array Float Format Hashtbl List Option

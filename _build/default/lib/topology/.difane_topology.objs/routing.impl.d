lib/topology/routing.ml: Array List Option Topology

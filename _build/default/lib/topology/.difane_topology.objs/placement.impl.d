lib/topology/placement.ml: Array Float Int List Topology

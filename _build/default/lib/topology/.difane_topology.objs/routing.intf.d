lib/topology/routing.mli: Topology

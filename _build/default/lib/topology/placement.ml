let check_k topo k =
  if k < 1 || k > Topology.nodes topo then
    invalid_arg "Placement: k out of range"

let random ~rand topo ~k =
  check_k topo k;
  (* Fisher-Yates over the node array, driven by the float source. *)
  let n = Topology.nodes topo in
  let arr = Array.init n (fun i -> i) in
  for i = n - 1 downto 1 do
    let j = int_of_float (rand () *. float_of_int (i + 1)) in
    let j = min i (max 0 j) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list (Array.sub arr 0 k)

let by_degree topo ~k =
  check_k topo k;
  List.init (Topology.nodes topo) (fun i -> i)
  |> List.sort (fun a b -> Int.compare (Topology.degree topo b) (Topology.degree topo a))
  |> List.filteri (fun i _ -> i < k)

let distance_matrix topo =
  Array.init (Topology.nodes topo) (fun i -> Topology.all_distances topo i)

let centroid topo ~k =
  check_k topo k;
  let dist = distance_matrix topo in
  let avg v = Array.fold_left ( +. ) 0. dist.(v) /. float_of_int (Topology.nodes topo) in
  List.init (Topology.nodes topo) (fun i -> i)
  |> List.sort (fun a b -> Float.compare (avg a) (avg b))
  |> List.filteri (fun i _ -> i < k)

let k_median topo ~k =
  check_k topo k;
  let n = Topology.nodes topo in
  let dist = distance_matrix topo in
  (* nearest.(v): distance from v to its closest chosen authority *)
  let nearest = Array.make n infinity in
  let chosen = ref [] in
  for _ = 1 to k do
    let gain c =
      (* total reduction in sum of nearest distances if we add c *)
      let sum = ref 0. in
      for v = 0 to n - 1 do
        if dist.(c).(v) < nearest.(v) then
          sum := !sum +. (min nearest.(v) 1e12 -. dist.(c).(v))
      done;
      !sum
    in
    let best = ref (-1) and best_gain = ref neg_infinity in
    for c = 0 to n - 1 do
      if not (List.mem c !chosen) then begin
        let g = gain c in
        if g > !best_gain then begin
          best := c;
          best_gain := g
        end
      end
    done;
    chosen := !best :: !chosen;
    for v = 0 to n - 1 do
      if dist.(!best).(v) < nearest.(v) then nearest.(v) <- dist.(!best).(v)
    done
  done;
  List.rev !chosen

let mean_nearest_distance topo authorities =
  if authorities = [] then invalid_arg "Placement.mean_nearest_distance: empty placement";
  let n = Topology.nodes topo in
  let dist = List.map (fun a -> Topology.all_distances topo a) authorities in
  let total = ref 0. in
  for v = 0 to n - 1 do
    total := !total +. List.fold_left (fun acc d -> Float.min acc d.(v)) infinity dist
  done;
  !total /. float_of_int n

type t = {
  topology : Topology.t;
  next : int array array; (* next.(from).(dst) = neighbour, or -1 *)
}

(* Deterministic single-source shortest paths: Dijkstra over latency with
   lexicographic (latency, node id) settling so equal-cost ties always
   resolve the same way. *)
let sssp topo src =
  let n = Topology.nodes topo in
  let dist = Array.make n infinity in
  let prev = Array.make n (-1) in
  let settled = Array.make n false in
  dist.(src) <- 0.;
  let rec pick_best best i =
    if i >= n then best
    else
      let best =
        if settled.(i) then best
        else
          match best with
          | None -> Some i
          | Some b ->
              if dist.(i) < dist.(b) || (dist.(i) = dist.(b) && i < b) then Some i
              else best
      in
      pick_best best (i + 1)
  in
  let rec loop () =
    match pick_best None 0 with
    | None -> ()
    | Some u when dist.(u) = infinity -> ()
    | Some u ->
        settled.(u) <- true;
        List.iter
          (fun v ->
            match Topology.link_between topo u v with
            | None -> ()
            | Some l ->
                let nd = dist.(u) +. l.Topology.latency in
                if nd < dist.(v) || (nd = dist.(v) && u < prev.(v)) then begin
                  dist.(v) <- nd;
                  prev.(v) <- u
                end)
          (Topology.neighbors topo u);
        loop ()
  in
  loop ();
  (dist, prev)

let compute topology =
  let n = Topology.nodes topology in
  let next = Array.make_matrix n n (-1) in
  for src = 0 to n - 1 do
    let dist, prev = sssp topology src in
    (* walk each destination's predecessor chain back to src to find the
       first hop *)
    for dst = 0 to n - 1 do
      if dst <> src && dist.(dst) < infinity then begin
        let rec first_hop v = if prev.(v) = src then v else first_hop prev.(v) in
        next.(src).(dst) <- first_hop dst
      end
    done
  done;
  { topology; next }

let topology t = t.topology

let next_hop t ~from ~dst =
  if from = dst then None
  else
    let h = t.next.(from).(dst) in
    if h < 0 then None else Some h

let path t ~from ~dst =
  if from = dst then Some [ from ]
  else
    let rec go acc v guard =
      if guard = 0 then None (* defensive: tables should never loop *)
      else if v = dst then Some (List.rev (dst :: acc))
      else
        match next_hop t ~from:v ~dst with
        | None -> None
        | Some h -> go (v :: acc) h (guard - 1)
    in
    go [] from (Topology.nodes t.topology + 1)

let distance t ~from ~dst =
  Option.map (Topology.path_latency t.topology) (path t ~from ~dst)

let reachable t ~from ~dst = from = dst || t.next.(from).(dst) >= 0
let after_link_failure t a b = compute (Topology.without_link t.topology a b)
let after_node_failure t v = compute (Topology.without_node t.topology v)

(** The hop-by-hop data plane: encapsulation and per-switch forwarding.

    {!Deployment.inject} computes a packet's fate using shortest paths
    directly; this module executes the same packet the way the paper's
    Click switches do — one switch at a time:

    + the ingress switch runs its three-bank lookup;
    + a miss is {e encapsulated} toward its authority switch and carried
      there hop by hop on the underlay's next-hop tables ({!Routing}),
      bypassing flow tables at transit switches (tunnelled packets are
      only decapsulated at their tunnel endpoint);
    + the authority switch decapsulates, serves the miss (splice +
      cache-install back at the ingress), re-encapsulates toward the
      egress switch;
    + the egress switch decapsulates and delivers.

    The equivalence [walk = inject] (same action, same latency) is a
    property test: the shortcut and the faithful executor must agree. *)

type config = {
  cache_idle_timeout : float option;
  cache_hard_timeout : float option;
  cache_mode : [ `Spliced | `Microflow ];
  max_ttl : int;  (** hop budget; loops or ttl exhaustion drop the packet *)
}

val default_config : config
(** 10 s idle timeout, spliced caching, TTL 64. *)

type result = {
  action : Action.t;  (** what happened to the packet *)
  delivered : bool;  (** reached its egress (drops at a switch are "delivered" verdicts too — [action = Drop]) *)
  trace : int list;  (** every switch traversed, in order, ingress first *)
  encapsulations : int;  (** tunnel headers pushed (0 for a local drop) *)
  latency : float;  (** propagation along [trace] *)
  ttl_exceeded : bool;
}

val packet :
  ?config:config ->
  routing:Routing.t ->
  switch:(int -> Switch.t) ->
  now:float ->
  ingress:int ->
  Header.t ->
  result
(** Execute one packet.  Mutates switch state (cache counters and
    reactive installs) exactly like the real data plane. *)

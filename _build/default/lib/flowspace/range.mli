(** Range-to-prefix expansion.

    ACLs express port conditions as integer ranges; TCAMs only hold
    ternary values.  A range [lo..hi] on a [w]-bit field expands to at
    most [2w - 2] prefixes (the classic "range expansion" blow-up that
    motivates rule-space work such as DIFANE). *)

val to_prefixes : width:int -> int64 -> int64 -> Ternary.t list
(** [to_prefixes ~width lo hi] is the minimal list of maximal prefixes
    whose disjoint union is exactly [lo..hi] (inclusive).
    @raise Invalid_argument if [lo > hi] or the bounds exceed the width. *)

val expansion_count : width:int -> int64 -> int64 -> int
(** [List.length (to_prefixes ~width lo hi)] without building the list. *)

val of_ternary : Ternary.t -> (int64 * int64) option
(** Inverse for prefix-shaped ternaries: the contiguous range a prefix
    covers.  [None] when the ternary is not a prefix (has a wildcard above
    a specified bit). *)

type field = { name : string; bits : int }
type t = { fields : field array; by_name : (string * int) list; total : int }

let create fl =
  if fl = [] then invalid_arg "Schema.create: empty field list";
  List.iter
    (fun f ->
      if f.bits < 1 || f.bits > Ternary.max_width then
        invalid_arg
          (Printf.sprintf "Schema.create: field %s has width %d" f.name f.bits))
    fl;
  let names = List.map (fun f -> f.name) fl in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Schema.create: duplicate field names";
  let fields = Array.of_list fl in
  {
    fields;
    by_name = List.mapi (fun i f -> (f.name, i)) fl;
    total = Array.fold_left (fun acc f -> acc + f.bits) 0 fields;
  }

let fields t = t.fields
let arity t = Array.length t.fields
let field_bits t i = t.fields.(i).bits
let field_name t i = t.fields.(i).name
let index t name = List.assoc name t.by_name
let total_bits t = t.total

let equal a b =
  Array.length a.fields = Array.length b.fields
  && Array.for_all2 (fun x y -> x.name = y.name && x.bits = y.bits) a.fields b.fields

let pp ppf t =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf f -> Format.fprintf ppf "%s/%d" f.name f.bits))
    t.fields

let ip_pair = create [ { name = "src_ip"; bits = 32 }; { name = "dst_ip"; bits = 32 } ]

let acl_5tuple =
  create
    [
      { name = "src_ip"; bits = 32 };
      { name = "dst_ip"; bits = 32 };
      { name = "src_port"; bits = 16 };
      { name = "dst_port"; bits = 16 };
      { name = "proto"; bits = 8 };
    ]

let openflow_basic =
  create
    [
      { name = "in_port"; bits = 16 };
      { name = "eth_type"; bits = 16 };
      { name = "src_ip"; bits = 32 };
      { name = "dst_ip"; bits = 32 };
      { name = "proto"; bits = 8 };
      { name = "src_port"; bits = 16 };
      { name = "dst_port"; bits = 16 };
    ]

let tiny2 = create [ { name = "f1"; bits = 8 }; { name = "f2"; bits = 8 } ]

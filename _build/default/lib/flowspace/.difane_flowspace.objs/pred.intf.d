lib/flowspace/pred.mli: Format Header Schema Ternary

lib/flowspace/region.ml: Format List Pred Schema

lib/flowspace/region.mli: Format Header Pred Schema

lib/flowspace/schema.ml: Array Format List Printf String Ternary

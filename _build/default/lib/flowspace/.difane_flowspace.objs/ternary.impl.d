lib/flowspace/ternary.ml: Float Format Hashtbl Int Int64 List Option Printf Seq String

lib/flowspace/pred.ml: Array Float Format Hashtbl Header List Option Printf Schema Ternary

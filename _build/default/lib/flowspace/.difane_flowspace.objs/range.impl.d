lib/flowspace/range.ml: Int64 List Ternary

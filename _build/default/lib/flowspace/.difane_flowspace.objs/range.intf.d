lib/flowspace/range.mli: Ternary

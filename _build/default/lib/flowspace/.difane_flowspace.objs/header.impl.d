lib/flowspace/header.ml: Array Format Hashtbl Int64 List Schema

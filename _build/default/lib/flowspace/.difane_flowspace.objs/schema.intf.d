lib/flowspace/schema.mli: Format

lib/flowspace/ternary.mli: Format

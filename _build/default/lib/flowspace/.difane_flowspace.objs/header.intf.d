lib/flowspace/header.mli: Format Schema

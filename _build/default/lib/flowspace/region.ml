type t = { schema : Schema.t; preds : Pred.t list }

let empty schema = { schema; preds = [] }
let full schema = { schema; preds = [ Pred.any schema ] }
let of_pred p = { schema = Pred.schema p; preds = [ p ] }
let of_preds schema preds = { schema; preds }
let schema t = t.schema
let preds t = t.preds
let is_empty t = t.preds = []
let matches t h = List.exists (fun p -> Pred.matches p h) t.preds
let union a b = { a with preds = a.preds @ b.preds }

let inter a b =
  {
    a with
    preds =
      List.concat_map
        (fun p -> List.filter_map (fun q -> Pred.inter p q) b.preds)
        a.preds;
  }

let diff a b =
  { a with preds = List.concat_map (fun p -> Pred.subtract_all p b.preds) a.preds }

let subsumes a b = is_empty (diff b a)
let equal_sets a b = subsumes a b && subsumes b a
let size_upper t = List.fold_left (fun acc p -> acc +. Pred.size p) 0. t.preds

let disjointify t =
  (* peel predicates front to back, keeping only what earlier ones did
     not already cover *)
  let rec go seen acc = function
    | [] -> List.rev acc
    | p :: rest ->
        let fresh = Pred.subtract_all p seen in
        go (p :: seen) (List.rev_append fresh acc) rest
  in
  { t with preds = go [] [] t.preds }

let size_exact t =
  List.fold_left (fun acc p -> acc +. Pred.size p) 0. (disjointify t).preds

let compact t =
  let keep p others =
    not (List.exists (fun q -> (not (Pred.equal p q)) && Pred.subsumes q p) others)
  in
  let rec dedup = function
    | [] -> []
    | p :: rest -> if List.exists (Pred.equal p) rest then dedup rest else p :: dedup rest
  in
  let preds = dedup t.preds in
  { t with preds = List.filter (fun p -> keep p preds) preds }

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Pred.pp)
    t.preds

(** Header schemas: the named dimensions of a flowspace.

    A schema fixes the ordered list of packet-header fields that rules may
    match on (an OpenFlow-style tuple).  Predicates, packet headers,
    partitions and rules are all arrays indexed by schema position. *)

type field = { name : string; bits : int }

type t

val create : field list -> t
(** @raise Invalid_argument on an empty list, duplicate names, or a field
    width outside [1..Ternary.max_width]. *)

val fields : t -> field array
val arity : t -> int
val field_bits : t -> int -> int
val field_name : t -> int -> string

val index : t -> string -> int
(** Position of a field by name.  @raise Not_found if absent. *)

val total_bits : t -> int
(** Sum of all field widths: the dimensionality of the flowspace. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** {1 Stock schemas} *)

val ip_pair : t
(** [src_ip/32, dst_ip/32] — the two-field space used for routing-style
    policies. *)

val acl_5tuple : t
(** [src_ip/32, dst_ip/32, src_port/16, dst_port/16, proto/8] — the
    classic ACL 5-tuple. *)

val openflow_basic : t
(** A trimmed OpenFlow 1.0 tuple:
    [in_port/16, eth_type/16, src_ip/32, dst_ip/32, proto/8, src_port/16,
    dst_port/16]. *)

val tiny2 : t
(** Two 8-bit fields [f1], [f2] — handy for tests and worked examples. *)

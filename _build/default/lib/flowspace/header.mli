(** Concrete packet headers: one point of the flowspace.

    A header assigns a concrete value to every field of a schema.  This is
    the thing a switch matches against its TCAM banks. *)

type t

val make : Schema.t -> int64 array -> t
(** [make schema values] builds a header.  Each value is truncated to its
    field's width.  @raise Invalid_argument on arity mismatch. *)

val of_fields : Schema.t -> (string * int64) list -> t
(** Named construction; unnamed fields default to [0].
    @raise Not_found on an unknown field name. *)

val schema : t -> Schema.t
val field : t -> int -> int64
val get : t -> string -> int64
val values : t -> int64 array

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

type t = { schema : Schema.t; values : int64 array }

let truncate bits v =
  Int64.logand v (Int64.shift_right_logical Int64.minus_one (64 - bits))

let make schema values =
  if Array.length values <> Schema.arity schema then
    invalid_arg "Header.make: arity mismatch";
  { schema; values = Array.mapi (fun i v -> truncate (Schema.field_bits schema i) v) values }

let of_fields schema assoc =
  let values =
    Array.init (Schema.arity schema) (fun i ->
        match List.assoc_opt (Schema.field_name schema i) assoc with
        | Some v -> v
        | None -> 0L)
  in
  List.iter (fun (name, _) -> ignore (Schema.index schema name)) assoc;
  make schema values

let schema t = t.schema
let field t i = t.values.(i)
let get t name = t.values.(Schema.index t.schema name)
let values t = Array.copy t.values

let equal a b =
  Schema.equal a.schema b.schema && Array.for_all2 Int64.equal a.values b.values

let compare a b =
  let rec go i =
    if i >= Array.length a.values then 0
    else
      let c = Int64.compare a.values.(i) b.values.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let hash t = Hashtbl.hash t.values

let pp ppf t =
  Format.fprintf ppf "@[<h>{";
  Array.iteri
    (fun i v ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%s=%Ld" (Schema.field_name t.schema i) v)
    t.values;
  Format.fprintf ppf "}@]"

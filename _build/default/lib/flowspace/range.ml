let check ~width lo hi =
  if width < 1 || width > Ternary.max_width then invalid_arg "Range: bad width";
  let top = Int64.shift_right_logical Int64.minus_one (64 - width) in
  if Int64.compare lo 0L < 0 || Int64.compare hi lo < 0 || Int64.compare hi top > 0
  then invalid_arg "Range: bounds out of order or out of width"

(* Greedy maximal-prefix cover: repeatedly take the largest prefix that
   starts at [lo], is aligned, and does not overshoot [hi]. *)
let fold ~width lo hi ~init ~f =
  check ~width lo hi;
  let rec go acc lo =
    if Int64.unsigned_compare lo hi > 0 then acc
    else
      (* Largest block size dividing lo (alignment)... *)
      let align =
        if Int64.equal lo 0L then width
        else
          let rec tz i =
            if Int64.logand (Int64.shift_right_logical lo i) 1L = 1L then i else tz (i + 1)
          in
          tz 0
      in
      let remaining = Int64.add (Int64.sub hi lo) 1L in
      (* ... clipped so the block fits inside the remaining span. *)
      let rec clip k =
        if k = 0 then 0
        else if Int64.unsigned_compare (Int64.shift_left 1L k) remaining <= 0 then k
        else clip (k - 1)
      in
      let k = clip align in
      let prefix_len = width - k in
      let acc = f acc (Ternary.prefix ~width lo prefix_len) in
      go acc (Int64.add lo (Int64.shift_left 1L k))
  in
  go init lo

let to_prefixes ~width lo hi =
  List.rev (fold ~width lo hi ~init:[] ~f:(fun acc t -> t :: acc))

let expansion_count ~width lo hi = fold ~width lo hi ~init:0 ~f:(fun n _ -> n + 1)

let of_ternary t =
  let w = Ternary.width t in
  (* Prefix shape: all specified bits are contiguous at the top. *)
  let rec prefix_len i =
    if i >= w then Some w
    else
      match Ternary.bit t (w - 1 - i) with
      | `Zero | `One -> prefix_len (i + 1)
      | `Any ->
          (* everything below must be Any *)
          let rec all_any j =
            j >= w
            || (match Ternary.bit t (w - 1 - j) with `Any -> all_any (j + 1) | _ -> false)
          in
          if all_any i then Some i else None
  in
  match prefix_len 0 with
  | None -> None
  | Some len ->
      let lo = Ternary.value t in
      let span = if len = w then 0L else Int64.sub (Int64.shift_left 1L (w - len)) 1L in
      Some (lo, Int64.add lo span)

(** Regions: finite unions of predicates.

    The header-space objects of Kazemian et al.'s algebra, specialised to
    the operations DIFANE needs: a region is a list of (not necessarily
    disjoint) predicates over one schema, closed under union, intersection
    and difference.  The partitioner's correctness checks ("partitions
    cover the whole space and are disjoint") are phrased over regions. *)

type t

val empty : Schema.t -> t
val full : Schema.t -> t
val of_pred : Pred.t -> t
val of_preds : Schema.t -> Pred.t list -> t

val schema : t -> Schema.t
val preds : t -> Pred.t list
(** The current representation; pairwise disjointness is {e not}
    guaranteed unless stated by the producing operation. *)

val is_empty : t -> bool
val matches : t -> Header.t -> bool

val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
(** [diff a b] has pairwise-disjoint predicates. *)

val subsumes : t -> t -> bool
(** [subsumes a b] iff every point of [b] lies in [a]. *)

val equal_sets : t -> t -> bool
(** Set equality (mutual subsumption) — independent of representation. *)

val size_upper : t -> float
(** Sum of predicate sizes: an upper bound on the number of points, exact
    when the predicates are disjoint. *)

val size_exact : t -> float
(** The exact number of points, computed by disjointifying the
    representation first (inclusion–exclusion via subtraction).  Cost
    grows with overlap structure; intended for analysis, not hot paths. *)

val disjointify : t -> t
(** An equivalent region whose predicates are pairwise disjoint. *)

val compact : t -> t
(** Remove predicates subsumed by another predicate of the region. *)

val pp : Format.formatter -> t -> unit

type frame = { arrives : float; bytes : Bytes.t }

type t = {
  schema : Schema.t;
  latency : float;
  queue : frame Queue.t;
  mutable frames : int;
  mutable carried : int;
}

let create schema ~latency =
  if latency < 0. then invalid_arg "Channel.create: negative latency";
  { schema; latency; queue = Queue.create (); frames = 0; carried = 0 }

let send t ~now ~xid msg =
  let bytes = Message.encode ~xid msg in
  t.frames <- t.frames + 1;
  t.carried <- t.carried + Bytes.length bytes;
  Queue.add { arrives = now +. t.latency; bytes } t.queue

let poll t ~now =
  let rec drain acc =
    match Queue.peek_opt t.queue with
    | Some f when f.arrives <= now ->
        ignore (Queue.pop t.queue);
        (match Message.decode t.schema f.bytes with
        | Ok (xid, msg) -> drain ((xid, msg) :: acc)
        | Error e -> failwith ("Channel.poll: undecodable frame: " ^ e))
    | Some _ | None -> List.rev acc
  in
  drain []

let pending t = Queue.length t.queue
let frames_carried t = t.frames
let bytes_carried t = t.carried
let latency t = t.latency

lib/openflow/channel.ml: Bytes List Message Queue Schema

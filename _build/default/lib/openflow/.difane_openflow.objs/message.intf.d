lib/openflow/message.mli: Action Bytes Format Header Pred Rule Schema

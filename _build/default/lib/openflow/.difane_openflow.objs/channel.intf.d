lib/openflow/channel.mli: Message Schema

lib/openflow/message.ml: Action Array Buffer Bytes Format Header Int32 Int64 List Pred Result Rule Schema Ternary

(** A simulated control channel.

    A unidirectional, latency-delayed byte channel between a controller
    and one switch.  Frames are carried {e encoded} — every message pays
    the wire codec on both ends, so a deployment driven through channels
    proves the whole control plane is serialisable, and byte counters
    give the control-overhead numbers the evaluation reports. *)

type t

val create : Schema.t -> latency:float -> t
(** @raise Invalid_argument on negative latency. *)

val send : t -> now:float -> xid:int -> Message.t -> unit
(** Enqueue a frame; it becomes receivable at [now + latency]. *)

val poll : t -> now:float -> (int * Message.t) list
(** Dequeue (and decode) every frame that has arrived by [now], in send
    order.  @raise Failure if a frame fails to decode — a channel
    carrying undecodable bytes is a bug, not a condition to handle. *)

val pending : t -> int
(** Frames sent but not yet polled (including in-flight ones). *)

val frames_carried : t -> int
val bytes_carried : t -> int
val latency : t -> float

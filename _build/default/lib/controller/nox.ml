type config = {
  cache_capacity : int;
  idle_timeout : float option;
  rtt : float;
  service_time : float;
}

let default_config =
  { cache_capacity = 10_000; idle_timeout = Some 10.; rtt = 10e-3; service_time = 50e-6 }

type t = {
  policy : Classifier.t;
  topology : Topology.t;
  switches : Switch.t array;
  config : config;
  mutable packet_ins : int64;
  mutable next_rule_id : int;
}

let build ?(config = default_config) ~policy ~topology () =
  {
    policy;
    topology;
    switches =
      Array.init (Topology.nodes topology) (fun id ->
          Switch.create ~id ~cache_capacity:config.cache_capacity);
    config;
    packet_ins = 0L;
    next_rule_id = 3_000_000;
  }

let policy t = t.policy
let topology t = t.topology
let config t = t.config
let switch t i = t.switches.(i)

type outcome = {
  action : Action.t;
  punted : bool;
  path : int list;
  latency : float;
  installed : Rule.t option;
}

let microflow_rule t ~id h action =
  let schema = Classifier.schema t.policy in
  let pred =
    Pred.make schema
      (List.init (Schema.arity schema) (fun i ->
           Ternary.exact ~width:(Schema.field_bits schema i) (Header.field h i)))
  in
  Rule.make ~id ~priority:1 pred action

let deliver topo ~from action =
  match Action.egress action with
  | None -> ([ from ], 0.)
  | Some egress -> (
      match Topology.shortest_path topo from egress with
      | Some p -> (p, Topology.path_latency topo p)
      | None -> ([ from ], 0.))

let inject t ~now ~ingress h =
  let sw = t.switches.(ingress) in
  match Tcam.lookup (Switch.cache sw) ~now h with
  | Some r ->
      let path, latency = deliver t.topology ~from:ingress r.Rule.action in
      { action = r.Rule.action; punted = false; path; latency; installed = None }
  | None ->
      t.packet_ins <- Int64.add t.packet_ins 1L;
      let action = Option.value ~default:Action.Drop (Classifier.action t.policy h) in
      let id = t.next_rule_id in
      t.next_rule_id <- id + 1;
      let rule = microflow_rule t ~id h action in
      ignore
        (Tcam.insert_or_evict ?idle_timeout:t.config.idle_timeout (Switch.cache sw) ~now rule);
      let path, dlat = deliver t.topology ~from:ingress action in
      {
        action;
        punted = true;
        path;
        latency = t.config.rtt +. t.config.service_time +. dlat;
        installed = Some rule;
      }

let packet_ins t = t.packet_ins

(** The controller's runtime control plane.

    Wraps a {!Deployment} with per-switch {!Channel}s and drives the
    live duties the paper gives the DIFANE controller beyond initial rule
    placement:

    - {b liveness}: periodic echo requests; a switch that misses enough
      replies is declared failed, triggering authority failover;
    - {b statistics}: periodic cache-bank stats polling, aggregated back
      to {e original policy rule ids} so per-rule counters survive
      splicing and eviction (the transparency property);
    - {b cache management}: explicit deletion of cache entries by origin
      rule (used by strict policy updates).

    All traffic crosses the channels encoded, so the byte/frame counters
    here are the control-plane overhead of the deployment. *)

type t

type config = {
  channel_latency : float;  (** one-way controller↔switch latency *)
  echo_interval : float;
  echo_miss_limit : int;  (** missed echoes before a switch is declared dead *)
  stats_interval : float;
  rebalance_interval : float option;
      (** when set, the controller periodically re-places partitions on
          the authorities using the measured per-partition miss load
          (paper §5's load rebalancing, automated) *)
}

val default_config : config
(** 1 ms channels, 1 s echoes, 3 misses, 5 s stats, no auto-rebalance. *)

val rebalances : t -> int
(** Automatic rebalances performed so far. *)

val create : ?config:config -> Deployment.t -> t

val deployment : t -> Deployment.t
(** The current deployment (changes after failover). *)

val push_deployment : t -> now:float -> unit
(** Transmit the deployment's entire configuration over the control
    channels as encoded messages: every switch gets its partition rules
    as staged flow-mods closed by a barrier, and each authority replica
    gets its tables as [Install_partition] transfers.  The switches apply
    everything as the frames arrive (during subsequent {!tick}s).  This
    is the message-driven equivalent of [Deployment.build]'s direct
    installation — pair it with [Deployment.build ~install:false]. *)

val tick : t -> now:float -> unit
(** Advance the control plane to [now]: emit due echoes and stats
    requests, deliver due frames in both directions, process replies, and
    run failure detection (possibly failing over authorities).  Call it
    periodically from the simulation loop; it is idempotent within a
    tick period. *)

val rule_counters : t -> (int * int64) list
(** Packets per original policy rule id, as of the last stats
    collection, aggregated over every switch's cache bank. *)

val failed_switches : t -> int list
(** Switches declared dead so far (in failure order). *)

val delete_cached_origin : t -> now:float -> origin_id:int -> int
(** Send cache-bank deletions for every cached piece spliced from this
    policy rule, across all switches; returns entries deleted.  This is
    the targeted invalidation used by strict policy updates. *)

val control_frames : t -> int
val control_bytes : t -> int
(** Total control-plane traffic so far, both directions. *)

val kill_switch : t -> int -> unit
(** Test hook: the device stops responding to control messages (its
    data plane may keep running on stale state).  Failure detection will
    notice after [echo_miss_limit] missed echoes. *)

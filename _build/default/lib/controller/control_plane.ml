let log_src = Logs.Src.create "difane.control" ~doc:"DIFANE control-plane events"

module Log = (val Logs.src_log log_src : Logs.LOG)

type config = {
  channel_latency : float;
  echo_interval : float;
  echo_miss_limit : int;
  stats_interval : float;
  rebalance_interval : float option;
}

let default_config =
  {
    channel_latency = 1e-3;
    echo_interval = 1.0;
    echo_miss_limit = 3;
    stats_interval = 5.0;
    rebalance_interval = None;
  }

type port = {
  to_switch : Channel.t;
  to_controller : Channel.t;
  mutable alive : bool; (* the real device still responds *)
  mutable outstanding_echo : bool;
  mutable missed_echoes : int;
  mutable declared_dead : bool;
}

type t = {
  mutable deployment : Deployment.t;
  config : config;
  ports : port array;
  retired : (int, int64) Hashtbl.t; (* origin -> packets of removed entries *)
  live : (int * int, int * int64) Hashtbl.t;
      (* (switch, cache rule id) -> (origin, packets): latest stats snapshot *)
  mutable last_echo : float;
  mutable last_stats : float;
  mutable last_rebalance : float;
  mutable rebalances : int;
  mutable failed : int list; (* reverse failure order *)
  mutable next_xid : int;
}

let create ?(config = default_config) deployment =
  let schema = Classifier.schema (Deployment.policy deployment) in
  let n = Array.length (Deployment.switches deployment) in
  {
    deployment;
    config;
    ports =
      Array.init n (fun _ ->
          {
            to_switch = Channel.create schema ~latency:config.channel_latency;
            to_controller = Channel.create schema ~latency:config.channel_latency;
            alive = true;
            outstanding_echo = false;
            missed_echoes = 0;
            declared_dead = false;
          });
    retired = Hashtbl.create 64;
    live = Hashtbl.create 64;
    last_echo = neg_infinity;
    last_stats = neg_infinity;
    last_rebalance = neg_infinity;
    rebalances = 0;
    failed = [];
    next_xid = 1;
  }

let deployment t = t.deployment

let xid t =
  let x = t.next_xid in
  t.next_xid <- x + 1;
  x

let send_to_switch t i ~now msg =
  Channel.send t.ports.(i).to_switch ~now ~xid:(xid t) msg

let declare_dead t ~now i =
  ignore now;
  let port = t.ports.(i) in
  if not port.declared_dead then begin
    port.declared_dead <- true;
    t.failed <- i :: t.failed;
    Log.warn (fun m -> m "switch %d missed %d echoes; declared dead" i t.config.echo_miss_limit);
    (* Authority failover, if the dead switch held that duty and a
       survivor exists to take it. *)
    let auths = Deployment.authority_ids t.deployment in
    if List.mem i auths && List.length auths > 1 then
      t.deployment <- Deployment.fail_authority t.deployment i
  end

(* Aggregate a stats reply: refresh the live snapshot of this switch's
   cache entries.  Cache-rule ids map back to the policy rule they were
   spliced from via the install-time origin record (the cookie the
   authority switch set; we read the switch model's copy). *)
let absorb_stats t i (reply : Message.stats_reply) =
  let sw = Deployment.switch t.deployment i in
  List.iter
    (fun (f : Message.flow_stats) ->
      match Switch.origin_of_cache_rule sw f.rule_id with
      | None -> ()
      | Some origin -> Hashtbl.replace t.live (i, f.rule_id) (origin, f.packets))
    reply.Message.flows

let process_reply t ~now i (_xid, msg) =
  let port = t.ports.(i) in
  match msg with
  | Message.Echo_reply _ ->
      port.outstanding_echo <- false;
      port.missed_echoes <- 0
  | Message.Stats_reply reply -> absorb_stats t i reply
  | Message.Barrier_reply _ | Message.Hello -> ()
  | Message.Packet_in _ ->
      (* DIFANE's whole point: switches do not punt packets; a packet-in
         here would indicate a misconfigured bank.  Ignore but count as a
         miss of the invariant in debug builds. *)
      ignore now
  | Message.Flow_removed f ->
      (* final counters from an expired/evicted cache entry: retire them
         so nothing is lost to churn, and drop the live snapshot *)
      Hashtbl.remove t.live (i, f.Message.removed_rule);
      if f.Message.cookie >= 0 then begin
        let prev = Option.value ~default:0L (Hashtbl.find_opt t.retired f.Message.cookie) in
        Hashtbl.replace t.retired f.Message.cookie
          (Int64.add prev f.Message.final_packets)
      end
  | Message.Echo_request _ | Message.Barrier_request _ | Message.Stats_request _
  | Message.Flow_mod _ | Message.Packet_out _ | Message.Install_partition _
  | Message.Drop_partition _ ->
      ()

let push_deployment t ~now =
  let d = t.deployment in
  let partitioner = Deployment.partitioner d in
  let assignment = Deployment.assignment d in
  let prules =
    Partitioner.partition_rules partitioner ~assignment:(Assignment.switch_for assignment)
  in
  Array.iteri
    (fun i port ->
      if not port.declared_dead then begin
        List.iter
          (fun rule ->
            send_to_switch t i ~now
              (Message.Flow_mod
                 { Message.command = Message.Add; bank = Message.Partition; rule;
                   idle_timeout = None; hard_timeout = None }))
          prules;
        send_to_switch t i ~now (Message.Barrier_request i);
        List.iter
          (fun pid ->
            let p =
              List.find
                (fun (p : Partitioner.partition) -> p.pid = pid)
                partitioner.Partitioner.partitions
            in
            send_to_switch t i ~now
              (Message.Install_partition
                 { Message.pid = p.pid; region = p.region;
                   table_rules = Classifier.rules p.table }))
          (Assignment.hosted_by assignment i)
      end)
    t.ports

let tick t ~now =
  (* 1. periodic echoes with failure detection *)
  if now -. t.last_echo >= t.config.echo_interval then begin
    t.last_echo <- now;
    Array.iteri
      (fun i port ->
        if not port.declared_dead then begin
          if port.outstanding_echo then begin
            port.missed_echoes <- port.missed_echoes + 1;
            if port.missed_echoes >= t.config.echo_miss_limit then declare_dead t ~now i
          end;
          if not port.declared_dead then begin
            port.outstanding_echo <- true;
            send_to_switch t i ~now (Message.Echo_request i)
          end
        end)
      t.ports
  end;
  (* 2. periodic stats collection *)
  if now -. t.last_stats >= t.config.stats_interval then begin
    t.last_stats <- now;
    Array.iteri
      (fun i port ->
        if not port.declared_dead then
          send_to_switch t i ~now
            (Message.Stats_request { Message.table_bank = Message.Cache; cookie = i }))
      t.ports
  end;
  (* 2b. periodic load rebalancing from measured per-partition misses *)
  (match t.config.rebalance_interval with
  | Some interval when now -. t.last_rebalance >= interval ->
      t.last_rebalance <- now;
      let loads = Deployment.measured_partition_loads t.deployment in
      if List.exists (fun (_, l) -> l > 0.) loads then begin
        t.deployment <- Deployment.rebalance t.deployment ~loads;
        t.rebalances <- t.rebalances + 1
      end
  | _ -> ());
  (* 3. deliver controller->switch frames; collect switch responses and
        any queued asynchronous notifications (flow-removed) *)
  Array.iteri
    (fun i port ->
      let frames = Channel.poll port.to_switch ~now in
      if port.alive then begin
        List.iter
          (fun (x, msg) ->
            let responses =
              Switch.handle_control (Deployment.switch t.deployment i) ~now msg
            in
            List.iter (fun r -> Channel.send port.to_controller ~now ~xid:x r) responses)
          frames;
        List.iter
          (fun n -> Channel.send port.to_controller ~now ~xid:0 n)
          (Switch.drain_notifications (Deployment.switch t.deployment i))
      end)
    t.ports;
  (* 4. deliver switch->controller frames *)
  Array.iteri
    (fun i port ->
      List.iter (process_reply t ~now i) (Channel.poll port.to_controller ~now))
    t.ports

let rebalances t = t.rebalances

let rule_counters t =
  let totals = Hashtbl.copy t.retired in
  Hashtbl.iter
    (fun _ (origin, packets) ->
      let prev = Option.value ~default:0L (Hashtbl.find_opt totals origin) in
      Hashtbl.replace totals origin (Int64.add prev packets))
    t.live;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) totals []
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let failed_switches t = List.rev t.failed

let delete_cached_origin t ~now ~origin_id =
  let deleted = ref 0 in
  Array.iteri
    (fun i port ->
      if not port.declared_dead then begin
        let sw = Deployment.switch t.deployment i in
        List.iter
          (fun (e : Tcam.entry) ->
            if Switch.origin_of_cache_rule sw e.Tcam.rule.Rule.id = Some origin_id then begin
              incr deleted;
              send_to_switch t i ~now
                (Message.Flow_mod
                   {
                     Message.command = Message.Delete;
                     bank = Message.Cache;
                     rule = e.Tcam.rule;
                     idle_timeout = None;
                     hard_timeout = None;
                   })
            end)
          (Tcam.entries (Switch.cache sw))
      end)
    t.ports;
  !deleted

let control_frames t =
  Array.fold_left
    (fun acc p -> acc + Channel.frames_carried p.to_switch + Channel.frames_carried p.to_controller)
    0 t.ports

let control_bytes t =
  Array.fold_left
    (fun acc p -> acc + Channel.bytes_carried p.to_switch + Channel.bytes_carried p.to_controller)
    0 t.ports

(* Test hook: make a switch stop responding (device death). *)
let kill_switch t i = t.ports.(i).alive <- false

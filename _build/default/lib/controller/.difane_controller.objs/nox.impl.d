lib/controller/nox.ml: Action Array Classifier Header Int64 List Option Pred Rule Schema Switch Tcam Ternary Topology

lib/controller/deployment.ml: Action Array Assignment Classifier Hashtbl Int Int64 List Logs Option Partitioner Pred Printf Rule Switch Tcam Topology

lib/controller/control_plane.mli: Deployment

lib/controller/control_plane.ml: Array Assignment Channel Classifier Deployment Hashtbl Int Int64 List Logs Message Option Partitioner Rule Switch Tcam

lib/controller/deployment.mli: Action Assignment Classifier Header Partitioner Rule Switch Topology

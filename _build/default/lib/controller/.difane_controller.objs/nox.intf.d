lib/controller/nox.mli: Action Classifier Header Rule Switch Topology

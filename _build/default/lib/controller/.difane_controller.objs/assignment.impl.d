lib/controller/assignment.ml: Classifier Float Format Hashtbl Int List Option Partitioner

lib/controller/assignment.mli: Format Partitioner

(** The reactive-controller baseline (NOX/Ethane style).

    The first packet of every flow is punted to a central controller,
    which consults the global policy, installs an exact-match (microflow)
    rule at the ingress switch and sends the packet back out.  This is
    the architecture DIFANE's evaluation compares against: correct, but
    the controller is a serial bottleneck and every miss pays a
    control-channel round trip.

    Functional behaviour lives here; the timing model (controller service
    rate, control-channel RTT) is applied by the simulator. *)

type t

type config = {
  cache_capacity : int;  (** ingress microflow-table entries *)
  idle_timeout : float option;
  rtt : float;  (** switch-controller round-trip, seconds *)
  service_time : float;  (** controller CPU per packet-in, seconds *)
}

val default_config : config
(** 10_000 entries, 10 s idle timeout, 10 ms RTT, 50 µs service. *)

val build :
  ?config:config -> policy:Classifier.t -> topology:Topology.t -> unit -> t

val policy : t -> Classifier.t
val topology : t -> Topology.t
val config : t -> config
val switch : t -> int -> Switch.t

type outcome = {
  action : Action.t;
  punted : bool;  (** the packet went to the controller *)
  path : int list;
  latency : float;  (** data-plane propagation + (if punted) RTT + service *)
  installed : Rule.t option;
}

val inject : t -> now:float -> ingress:int -> Header.t -> outcome
(** One packet: ingress microflow-table lookup, controller on miss. *)

val packet_ins : t -> int64
(** Total packets punted to the controller so far. *)

val microflow_rule : t -> id:int -> Header.t -> Action.t -> Rule.t
(** The exact-match rule the controller installs for a header. *)

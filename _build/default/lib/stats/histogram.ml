type t = {
  lo : float;
  hi : float;
  log_scale : bool;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable sum : float;
  mutable n : int;
}

let create ?(log_scale = false) ~lo ~hi ~buckets () =
  if buckets < 1 then invalid_arg "Histogram.create: need at least one bucket";
  if not (lo < hi) then invalid_arg "Histogram.create: lo must be < hi";
  if log_scale && lo <= 0. then invalid_arg "Histogram.create: log scale needs lo > 0";
  { lo; hi; log_scale; counts = Array.make buckets 0; underflow = 0; overflow = 0;
    sum = 0.; n = 0 }

let nbuckets t = Array.length t.counts

let index t v =
  let frac =
    if t.log_scale then (Float.log v -. Float.log t.lo) /. (Float.log t.hi -. Float.log t.lo)
    else (v -. t.lo) /. (t.hi -. t.lo)
  in
  int_of_float (Float.floor (frac *. float_of_int (nbuckets t)))

let add t v =
  t.sum <- t.sum +. v;
  t.n <- t.n + 1;
  if v < t.lo then t.underflow <- t.underflow + 1
  else if v >= t.hi then t.overflow <- t.overflow + 1
  else begin
    let i = min (nbuckets t - 1) (max 0 (index t v)) in
    t.counts.(i) <- t.counts.(i) + 1
  end

let add_all t = List.iter (add t)
let total t = t.n
let underflow t = t.underflow
let overflow t = t.overflow

let edge t i =
  let frac = float_of_int i /. float_of_int (nbuckets t) in
  if t.log_scale then
    Float.exp (Float.log t.lo +. (frac *. (Float.log t.hi -. Float.log t.lo)))
  else t.lo +. (frac *. (t.hi -. t.lo))

let buckets t =
  List.init (nbuckets t) (fun i -> (edge t i, edge t (i + 1), t.counts.(i)))

let mean t = if t.n = 0 then Float.nan else t.sum /. float_of_int t.n

let pp ppf t =
  let widest = Array.fold_left max 1 t.counts in
  List.iter
    (fun (lo, hi, c) ->
      let bar = String.make (c * 40 / widest) '#' in
      Format.fprintf ppf "[%10.4g, %10.4g) %6d %s@." lo hi c bar)
    (buckets t);
  if t.underflow > 0 then Format.fprintf ppf "underflow: %d@." t.underflow;
  if t.overflow > 0 then Format.fprintf ppf "overflow: %d@." t.overflow

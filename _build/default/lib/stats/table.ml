type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s

let render ?align ~header rows =
  let ncols =
    List.fold_left (fun acc r -> max acc (List.length r)) (List.length header) rows
  in
  let get l i = Option.value ~default:"" (List.nth_opt l i) in
  let widths =
    List.init ncols (fun i ->
        List.fold_left (fun acc r -> max acc (String.length (get r i)))
          (String.length (get header i))
          rows)
  in
  let aligns =
    List.init ncols (fun i ->
        match align with
        | Some l when i < List.length l -> List.nth l i
        | _ -> if i = 0 then Left else Right)
  in
  let line cells =
    String.concat "  "
      (List.mapi (fun i w -> pad (List.nth aligns i) w (get cells i)) widths)
  in
  let rule = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" (line header :: rule :: List.map line rows)

let print ?align ~title ~header rows =
  Printf.printf "\n== %s ==\n%s\n" title (render ?align ~header rows)

let fmt_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v
let fmt_pct v = Printf.sprintf "%.1f%%" (100. *. v)

let fmt_si v =
  let a = Float.abs v in
  if a >= 1e9 then Printf.sprintf "%.2fG" (v /. 1e9)
  else if a >= 1e6 then Printf.sprintf "%.2fM" (v /. 1e6)
  else if a >= 1e3 then Printf.sprintf "%.1fk" (v /. 1e3)
  else if Float.is_integer v then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.2f" v

(** Descriptive statistics over float samples. *)

type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

val of_list : float list -> t
(** @raise Invalid_argument on an empty list. *)

val of_array : float array -> t

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [0..1], linear interpolation.  The
    array must already be sorted ascending. *)

val pp : Format.formatter -> t -> unit

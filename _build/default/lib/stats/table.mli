(** Fixed-width text tables — the bench harness prints every reproduced
    paper table/figure series through this module so the output is
    uniform and diffable. *)

type align = Left | Right

val render : ?align:align list -> header:string list -> string list list -> string
(** Render rows under a header with a rule line; column widths fit the
    content.  Missing cells render empty; [align] defaults to [Left] for
    the first column and [Right] elsewhere. *)

val print : ?align:align list -> title:string -> header:string list -> string list list -> unit
(** [render] to stdout under a [== title ==] banner. *)

val fmt_float : ?decimals:int -> float -> string
val fmt_pct : float -> string
(** [fmt_pct 0.873] is ["87.3%"]. *)

val fmt_si : float -> string
(** Engineering notation: ["1.5M"], ["20k"], ["350"]. *)

(** Fixed-bucket histograms, linear or logarithmic.

    Used by the bench harness for delay and stretch distributions where a
    full CDF is overkill.  Samples outside the configured range land in
    the two overflow buckets so nothing is silently dropped. *)

type t

val create : ?log_scale:bool -> lo:float -> hi:float -> buckets:int -> unit -> t
(** [buckets >= 1]; with [log_scale] (default false) bucket edges are
    geometrically spaced and [lo] must be positive.
    @raise Invalid_argument on a bad range or bucket count. *)

val add : t -> float -> unit
val add_all : t -> float list -> unit

val total : t -> int
(** All samples seen, including overflow. *)

val underflow : t -> int
val overflow : t -> int

val buckets : t -> (float * float * int) list
(** [(lo, hi, count)] per bucket, in order. *)

val mean : t -> float
(** Mean of the raw samples (exact, not bucketised); [nan] when empty. *)

val pp : Format.formatter -> t -> unit
(** Text rendering with proportional bars. *)

type t = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
}

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.percentile: empty";
  if q <= 0. then sorted.(0)
  else if q >= 1. then sorted.(n - 1)
  else
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let of_array arr =
  let n = Array.length arr in
  if n = 0 then invalid_arg "Summary.of_array: empty";
  let sorted = Array.copy arr in
  Array.sort Float.compare sorted;
  let sum = Array.fold_left ( +. ) 0. sorted in
  let mean = sum /. float_of_int n in
  let var =
    Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0. sorted
    /. float_of_int n
  in
  {
    count = n;
    mean;
    stddev = Float.sqrt var;
    min = sorted.(0);
    max = sorted.(n - 1);
    p50 = percentile sorted 0.5;
    p90 = percentile sorted 0.9;
    p95 = percentile sorted 0.95;
    p99 = percentile sorted 0.99;
  }

let of_list l = of_array (Array.of_list l)

let pp ppf t =
  Format.fprintf ppf
    "n=%d mean=%.4g sd=%.3g min=%.4g p50=%.4g p90=%.4g p95=%.4g p99=%.4g max=%.4g"
    t.count t.mean t.stddev t.min t.p50 t.p90 t.p95 t.p99 t.max

(** Empirical CDFs — the paper reports first-packet delay and stretch as
    CDF plots; the bench harness prints them as (value, fraction) series. *)

type t

val of_list : float list -> t
(** @raise Invalid_argument on an empty list. *)

val of_array : float array -> t
val count : t -> int

val at : t -> float -> float
(** [at t x]: fraction of samples [<= x]. *)

val inverse : t -> float -> float
(** [inverse t q]: smallest sample value with CDF [>= q]. *)

val series : ?points:int -> t -> (float * float) list
(** Evenly spaced quantile series for plotting/printing,
    [(value, cumulative fraction)], default 20 points ending at the max. *)

val pp_series : ?points:int -> Format.formatter -> t -> unit

type t = float array (* sorted ascending *)

let of_array arr =
  if Array.length arr = 0 then invalid_arg "Cdf.of_array: empty";
  let a = Array.copy arr in
  Array.sort Float.compare a;
  a

let of_list l = of_array (Array.of_list l)
let count t = Array.length t

let at t x =
  (* number of samples <= x, binary search for upper bound *)
  let n = Array.length t in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  float_of_int !lo /. float_of_int n

let inverse t q =
  let n = Array.length t in
  if q <= 0. then t.(0)
  else if q >= 1. then t.(n - 1)
  else t.(min (n - 1) (int_of_float (Float.ceil (q *. float_of_int n)) - 1))

let series ?(points = 20) t =
  if points < 2 then invalid_arg "Cdf.series: need at least 2 points";
  List.init points (fun i ->
      let q = float_of_int (i + 1) /. float_of_int points in
      (inverse t q, q))

let pp_series ?points ppf t =
  List.iter (fun (v, q) -> Format.fprintf ppf "%.6g\t%.3f@." v q) (series ?points t)

lib/stats/table.mli:

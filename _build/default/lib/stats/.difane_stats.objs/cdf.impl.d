lib/stats/cdf.ml: Array Float Format List

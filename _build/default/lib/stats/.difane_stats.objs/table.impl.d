lib/stats/table.ml: Float List Option Printf String

lib/sim/flowsim.ml: Action Array Deployment Engine Float Hashtbl Int List Nox Option Rule Server Summary Switch Tcam Topology Traffic

lib/sim/engine.mli:

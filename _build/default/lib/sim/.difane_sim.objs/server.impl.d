lib/sim/server.ml: Engine Float Queue

lib/sim/cachesim.mli: Classifier Header Traffic

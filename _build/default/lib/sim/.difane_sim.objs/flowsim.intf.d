lib/sim/flowsim.mli: Deployment Nox Summary Traffic

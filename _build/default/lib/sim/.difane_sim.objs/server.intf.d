lib/sim/server.mli: Engine

lib/sim/cachesim.ml: Array Float Hashtbl Header Int64 List Pred Splice String Traffic

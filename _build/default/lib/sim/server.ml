type t = {
  engine : Engine.t;
  service_time : float;
  queue_capacity : int;
  backlog : (unit -> unit) Queue.t;
  mutable busy : bool;
  mutable accepted : int;
  mutable rejected : int;
  mutable completed : int;
  mutable busy_time : float;
  mutable started_at : float;
}

let create engine ~service_time ~queue_capacity =
  if service_time <= 0. then invalid_arg "Server.create: nonpositive service time";
  if queue_capacity < 0 then invalid_arg "Server.create: negative capacity";
  {
    engine;
    service_time;
    queue_capacity;
    backlog = Queue.create ();
    busy = false;
    accepted = 0;
    rejected = 0;
    completed = 0;
    busy_time = 0.;
    started_at = 0.;
  }

let rec start_next t =
  match Queue.take_opt t.backlog with
  | None -> t.busy <- false
  | Some job ->
      t.busy <- true;
      Engine.after t.engine ~delay:t.service_time (fun () ->
          t.completed <- t.completed + 1;
          t.busy_time <- t.busy_time +. t.service_time;
          job ();
          start_next t)

let submit t job =
  if Queue.length t.backlog >= t.queue_capacity && t.busy then begin
    t.rejected <- t.rejected + 1;
    false
  end
  else begin
    t.accepted <- t.accepted + 1;
    if t.accepted = 1 then t.started_at <- Engine.now t.engine;
    Queue.add job t.backlog;
    if not t.busy then start_next t;
    true
  end

let queue_length t = Queue.length t.backlog
let accepted t = t.accepted
let rejected t = t.rejected
let completed t = t.completed

let utilisation t =
  let elapsed = Engine.now t.engine -. t.started_at in
  if elapsed <= 0. then 0. else Float.min 1. (t.busy_time /. elapsed)
